// Package repro_bench is the benchmark harness: one testing.B benchmark per
// table and figure of the CQLA paper, plus ablation benches for the design
// choices called out in DESIGN.md. Each benchmark regenerates its artifact
// end to end and reports domain metrics (gain products, speedups, hit
// rates) through b.ReportMetric so `go test -bench=. -benchmem` prints the
// reproduced rows alongside timing.
package repro_bench

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/cqla"
	"repro/internal/ecc"
	"repro/internal/explore"
	"repro/internal/gen"
	"repro/internal/mesh"
	"repro/internal/phys"
	"repro/internal/sched"
	"repro/internal/transfer"
)

// BenchmarkTable1Params regenerates the physical-parameter table.
func BenchmarkTable1Params(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		p := phys.Projected()
		avg = p.AverageFailure()
	}
	b.ReportMetric(avg*1e9, "p0-failure-1e-9")
}

// BenchmarkTable2ECMetrics regenerates the error-correction metric summary.
func BenchmarkTable2ECMetrics(b *testing.B) {
	p := phys.Projected()
	var rows []ecc.Metrics
	for i := 0; i < b.N; i++ {
		rows = cqla.Table2Rows(p)
	}
	b.ReportMetric(rows[1].ECTime.Seconds(), "steane-L2-EC-s")
	b.ReportMetric(rows[3].ECTime.Seconds(), "bs-L2-EC-s")
}

// BenchmarkTable3Transfer regenerates the code-transfer latency matrix.
func BenchmarkTable3Transfer(b *testing.B) {
	var rt float64
	for i := 0; i < b.N; i++ {
		_, m := cqla.Table3Matrix()
		rt = (m[1][0] + m[0][1]).Seconds()
	}
	b.ReportMetric(rt, "steane-roundtrip-s")
}

// BenchmarkTable4Specialization regenerates the full specialization study:
// every input size and block budget, both codes.
func BenchmarkTable4Specialization(b *testing.B) {
	p := phys.Projected()
	var rows []cqla.Table4Row
	for i := 0; i < b.N; i++ {
		rows = cqla.Table4(p)
	}
	last := rows[len(rows)-2] // 1024-bit at 100 blocks
	b.ReportMetric(last.AreaReducedBS, "bs-area-factor-1024")
	b.ReportMetric(last.SpeedupBS, "bs-speedup-1024")
	b.ReportMetric(last.GainProductBS, "bs-gain-1024")
}

// BenchmarkTable5Hierarchy regenerates the memory-hierarchy study.
func BenchmarkTable5Hierarchy(b *testing.B) {
	p := phys.Projected()
	var rows []cqla.Table5Row
	for i := 0; i < b.N; i++ {
		rows = cqla.Table5(p)
	}
	var best cqla.Table5Row
	for _, r := range rows {
		if r.GainProduct > best.GainProduct {
			best = r
		}
	}
	b.ReportMetric(best.GainProduct, "best-gain-product")
	b.ReportMetric(best.AdderSpeedup, "best-adder-speedup")
}

// BenchmarkFig2Parallelism regenerates the 64-qubit adder profile.
func BenchmarkFig2Parallelism(b *testing.B) {
	m := cqla.New(cqla.Config{Code: ecc.Steane(), Params: phys.Projected(), ComputeBlocks: 15, ParallelTransfers: 10})
	var f cqla.Figure2
	for i := 0; i < b.N; i++ {
		f = cqla.Fig2(m, 64, 15)
	}
	b.ReportMetric(float64(f.LimitedSlots)/float64(f.UnlimitedSlots), "slowdown-at-15-blocks")
}

// BenchmarkFig6aUtilization regenerates the utilization curves.
func BenchmarkFig6aUtilization(b *testing.B) {
	p := phys.Projected()
	var curves []cqla.Figure6a
	for i := 0; i < b.N; i++ {
		curves = cqla.Fig6a(p)
	}
	last := curves[len(curves)-1]
	b.ReportMetric(last.Utilizations[0], "util-1024bit-4blocks")
	b.ReportMetric(last.Utilizations[len(last.Utilizations)-1], "util-1024bit-196blocks")
}

// BenchmarkFig6bBandwidth regenerates the superblock bandwidth balance.
func BenchmarkFig6bBandwidth(b *testing.B) {
	var f cqla.Figure6b
	for i := 0; i < b.N; i++ {
		f = cqla.Fig6b()
	}
	b.ReportMetric(float64(f.Crossover), "crossover-blocks")
}

// BenchmarkFig7Cache regenerates the cache hit-rate study.
func BenchmarkFig7Cache(b *testing.B) {
	p := phys.Projected()
	var rows []cqla.Figure7Row
	for i := 0; i < b.N; i++ {
		rows = cqla.Fig7(p)
	}
	b.ReportMetric(100*rows[0].NaiveRate, "naive-hit-pct")
	b.ReportMetric(100*rows[0].OptimRate, "optimized-hit-pct")
}

// BenchmarkFig8aModExp regenerates the modular-exponentiation time split.
func BenchmarkFig8aModExp(b *testing.B) {
	p := phys.Projected()
	var pts []cqla.AppTimes
	for i := 0; i < b.N; i++ {
		pts = cqla.Fig8a(p)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Computation.Hours(), "comp-hours-1024")
	b.ReportMetric(last.Communication.Hours(), "comm-hours-1024")
}

// BenchmarkFig8bQFT regenerates the QFT time split.
func BenchmarkFig8bQFT(b *testing.B) {
	p := phys.Projected()
	var pts []cqla.AppTimes
	for i := 0; i < b.N; i++ {
		pts = cqla.Fig8b(p)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Computation.Seconds(), "comp-s-1000")
	b.ReportMetric(last.Communication.Seconds(), "comm-s-1000")
}

// --- Ablations (design choices called out in DESIGN.md) ------------------

// BenchmarkAblationCodeChoice compares Steane vs Bacon-Shor as the CQLA's
// region code at the 256-bit working point.
func BenchmarkAblationCodeChoice(b *testing.B) {
	p := phys.Projected()
	q := 5*256 + 3
	var gpSt, gpBS float64
	for i := 0; i < b.N; i++ {
		st := cqla.New(cqla.Config{Code: ecc.Steane(), Params: p, ComputeBlocks: 36, ParallelTransfers: 10})
		bs := cqla.New(cqla.Config{Code: ecc.BaconShor(), Params: p, ComputeBlocks: 36, ParallelTransfers: 10})
		gpSt = st.GainProduct(256, q, true)
		gpBS = bs.GainProduct(256, q, true)
	}
	b.ReportMetric(gpSt, "gain-steane")
	b.ReportMetric(gpBS, "gain-bacon-shor")
}

// BenchmarkAblationFetchPolicy compares naive and optimized instruction
// fetch on the 256-bit adder.
func BenchmarkAblationFetchPolicy(b *testing.B) {
	ad := gen.CarryLookahead(256)
	var naive, opt float64
	for i := 0; i < b.N; i++ {
		naive = cache.Simulate(ad.Circuit, cache.Config{CacheQubits: 648, Policy: cache.Naive}).HitRate()
		opt = cache.Simulate(ad.Circuit, cache.Config{CacheQubits: 648, Policy: cache.Optimized}).HitRate()
	}
	b.ReportMetric(100*naive, "naive-hit-pct")
	b.ReportMetric(100*opt, "optimized-hit-pct")
}

// BenchmarkAblationAdderChoice compares the carry-lookahead and
// ripple-carry adders under the same 15-block budget.
func BenchmarkAblationAdderChoice(b *testing.B) {
	var claSlots, ripSlots int
	for i := 0; i < b.N; i++ {
		cla := circuit.BuildDAG(gen.CarryLookahead(64).Circuit)
		rip := circuit.BuildDAG(gen.RippleCarry(64).Circuit)
		claSlots = sched.ListSchedule(cla, 15).MakespanSlots
		ripSlots = sched.ListSchedule(rip, 15).MakespanSlots
	}
	b.ReportMetric(float64(claSlots), "cla-slots")
	b.ReportMetric(float64(ripSlots), "ripple-slots")
}

// BenchmarkAblationSuperblock sweeps superblock sizes around the bandwidth
// crossover.
func BenchmarkAblationSuperblock(b *testing.B) {
	sb := mesh.DefaultSuperblock()
	var margin16, margin64 float64
	for i := 0; i < b.N; i++ {
		margin16 = sb.Available(16) - sb.RequiredDraper(16)
		margin64 = sb.Available(64) - sb.RequiredDraper(64)
	}
	b.ReportMetric(margin16, "margin-16-blocks")
	b.ReportMetric(margin64, "margin-64-blocks")
}

// BenchmarkAblationLevelMix sweeps the L1:L2 addition mix around the
// paper's 1:2 policy.
func BenchmarkAblationLevelMix(b *testing.B) {
	p := phys.Projected()
	m := cqla.New(cqla.Config{Code: ecc.BaconShor(), Params: p, ComputeBlocks: 36, ParallelTransfers: 10})
	var pure2, mix12, mix11 float64
	for i := 0; i < b.N; i++ {
		s2 := m.SpeedupL2(256)
		s1 := m.SpeedupL1(256)
		pure2 = s2
		mix12 = (2*s2 + s1) / 3
		mix11 = (s2 + s1) / 2
	}
	b.ReportMetric(pure2, "speedup-pure-L2")
	b.ReportMetric(mix12, "speedup-1:2-mix")
	b.ReportMetric(mix11, "speedup-1:1-mix")
}

// BenchmarkAblationTransferWidth sweeps the memory<->cache transfer-network
// width.
func BenchmarkAblationTransferWidth(b *testing.B) {
	p := phys.Projected()
	var s5, s10, s20 float64
	for i := 0; i < b.N; i++ {
		for _, par := range []int{5, 10, 20} {
			m := cqla.New(cqla.Config{Code: ecc.BaconShor(), Params: p, ComputeBlocks: 36, ParallelTransfers: par})
			s := m.SpeedupL1(256)
			switch par {
			case 5:
				s5 = s
			case 10:
				s10 = s
			case 20:
				s20 = s
			}
		}
	}
	b.ReportMetric(s5, "L1-speedup-xfer5")
	b.ReportMetric(s10, "L1-speedup-xfer10")
	b.ReportMetric(s20, "L1-speedup-xfer20")
}

// BenchmarkEndToEndPipeline measures the full pipeline on one working
// point: generate the adder, schedule it, size the machine and report its
// figures of merit.
func BenchmarkEndToEndPipeline(b *testing.B) {
	p := phys.Projected()
	var gp float64
	for i := 0; i < b.N; i++ {
		m := cqla.New(cqla.Config{Code: ecc.BaconShor(), Params: p, ComputeBlocks: 36, ParallelTransfers: 10})
		gp = m.GainProduct(256, 5*256+3, true)
	}
	b.ReportMetric(gp, "gain-product")
}

// --- Design-space exploration engine -------------------------------------

// benchExplore runs the multi-axis pareto sweep (blocks x cache factor,
// 45 points of full 256-bit machine evaluations) through the explore
// worker pool at a fixed worker count.
func benchExplore(b *testing.B, parallel int) {
	exp, err := explore.Lookup("pareto")
	if err != nil {
		b.Fatal(err)
	}
	p := phys.Projected()
	var pts []explore.Point
	for i := 0; i < b.N; i++ {
		pts, err = explore.Run(context.Background(), exp, explore.Options{Phys: p, Parallel: parallel, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, pt := range pts {
		if g := pt.MustMetric("gain_product"); g > best {
			best = g
		}
	}
	b.ReportMetric(best, "best-gain-product")
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkExploreSerial is the single-worker baseline for the engine.
func BenchmarkExploreSerial(b *testing.B) { benchExplore(b, 1) }

// BenchmarkExploreParallel fans the same sweep across GOMAXPROCS workers;
// compare against BenchmarkExploreSerial for the engine's parallel
// speedup (near-linear until the point count stops covering the workers).
func BenchmarkExploreParallel(b *testing.B) { benchExplore(b, 0) }

// --- Hot paths under the CI regression gate ------------------------------
//
// BenchmarkConcatenatedMCLevel2 (internal/ecc) and BenchmarkDES64BitAdder
// (internal/des) are also pinned in the gate; they live next to the code
// they measure.

// BenchmarkMonteCarloXSeeded is a pinned gate benchmark: the seeded,
// sharded Monte Carlo path the montecarlo sweep runs, across the worker
// pool (throughput scales with cores; counts do not change).
func BenchmarkMonteCarloXSeeded(b *testing.B) {
	c := ecc.Steane()
	var r ecc.MonteCarloResult
	for i := 0; i < b.N; i++ {
		r = c.MonteCarloXSeeded(1e-3, 20000, 42)
	}
	b.ReportMetric(float64(r.LogicalFaults), "faults")
}

// BenchmarkMonteCarloBitSliced is a pinned gate benchmark: the transposed
// 64-trials-per-decode Monte Carlo engine on the same workload as the
// scalar BenchmarkMonteCarloXSeeded path (one worker, 20000 trials, seed
// 42), so the ratio of the two rows is the bit-slicing speedup.
func BenchmarkMonteCarloBitSliced(b *testing.B) {
	c := ecc.Steane()
	var r ecc.MonteCarloResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r = c.MonteCarloXBatchParallel(1e-3, 20000, 42, 1)
	}
	b.ReportMetric(float64(r.LogicalFaults), "faults")
}

// BenchmarkMonteCarloRareEvent is a pinned gate benchmark: the
// importance-sampled estimator in the deep sub-threshold regime where the
// naive estimator observes nothing.
func BenchmarkMonteCarloRareEvent(b *testing.B) {
	c := ecc.Steane()
	var r ecc.RareEventResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r = c.MonteCarloXRareParallel(1e-4, 20000, 42, 1)
	}
	b.ReportMetric(float64(r.FaultTrials), "fault-trials")
}

// BenchmarkTransferBatch measures the transfer-network batch model.
func BenchmarkTransferBatch(b *testing.B) {
	nw := transfer.NewNetwork(10)
	from := transfer.Encoding{Code: "[[9,1,3]]", Level: 2}
	to := transfer.Encoding{Code: "[[9,1,3]]", Level: 1}
	for i := 0; i < b.N; i++ {
		nw.BatchTime(648, from, to)
	}
}
