#!/usr/bin/env bash
# docs-smoke.sh — prove the documentation by executing it.
#
# CI's docs job runs this script from the repository root. It executes
# every example program and every command the README and docs/ present
# as copy-pasteable, then checks that no relative link in the
# documentation is broken. A doc change that documents a command this
# script does not run should add it here.
set -euo pipefail

run() {
  echo "+ $*" >&2
  "$@" > /dev/null
}

# --- every examples/* main is runnable -------------------------------
for d in examples/*/; do
  run go run "./${d%/}"
done

# --- README quickstart -----------------------------------------------
run go run ./cmd/cqla table4
run go run ./cmd/cqla floorplan
run go run ./cmd/qcirc gen -kind adder -n 8
go run ./cmd/qcirc gen -kind qft -n 8 | run go run ./cmd/qcirc sched -blocks 4

# --- README workloads section + docs/workload-format.md --------------
# gen | fmt is the identity on canonical text, and parse accepts it.
gen=$(go run ./cmd/qcirc gen -kind qft -n 8)
fmted=$(echo "$gen" | go run ./cmd/qcirc fmt)
if [ "$gen" != "$fmted" ]; then
  echo "qcirc gen | qcirc fmt is not the identity" >&2
  exit 1
fi
echo "$fmted" | run go run ./cmd/qcirc parse
run go run ./cmd/qcirc parse < internal/circuit/testdata/bell.qc
run go run ./cmd/cqla sweep -circuit internal/circuit/testdata/bell.qc
run go run ./cmd/cqla sweep workloads -format json -seed 1

# --- README sweeps section: the montecarlo estimator axis ------------
run go run ./cmd/cqla sweep montecarlo -estimator bitsliced -seed 7
run go run ./cmd/cqla sweep montecarlo -estimator rare -format json -seed 7

# --- no broken relative links in the docs ----------------------------
go run ./scripts/linkcheck README.md docs

echo "docs smoke: OK" >&2
