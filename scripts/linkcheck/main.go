// Command linkcheck validates relative links in markdown documents using
// nothing beyond the standard library. CI's docs job runs it over
// README.md and docs/; a link to a file that does not exist — or to a
// heading anchor that no heading in the target generates — fails the
// build instead of rotting silently.
//
// Usage:
//
//	go run ./scripts/linkcheck README.md docs
//
// Arguments are markdown files or directories (walked for *.md). Only
// inline links and images are checked; absolute URLs (a scheme prefix)
// are skipped — this is a repository-consistency check, not a crawler.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkPattern matches the target of an inline markdown link or image:
// [text](target) or ![alt](target), with an optional "title".
var linkPattern = regexp.MustCompile(`\]\(([^()\s]+)(?:\s+"[^"]*")?\)`)

// headingPattern matches an ATX heading line and captures its text.
var headingPattern = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md|dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		found, err := collect(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		files = append(files, found...)
	}
	broken := 0
	for _, f := range files {
		findings, err := checkFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		for _, msg := range findings {
			fmt.Printf("%s\n", msg)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) clean\n", len(files))
}

// collect expands an argument into the markdown files it names.
func collect(arg string) ([]string, error) {
	info, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{arg}, nil
	}
	var files []string
	err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".md") {
			files = append(files, path)
		}
		return nil
	})
	return files, err
}

// checkFile returns one message per broken relative link in the file.
func checkFile(file string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var findings []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkTarget(file, target); msg != "" {
				findings = append(findings, fmt.Sprintf("%s:%d: %s", file, i+1, msg))
			}
		}
	}
	return findings, nil
}

// checkTarget validates one link target; the empty string means it is
// fine (or out of scope, like an absolute URL).
func checkTarget(file, target string) string {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return ""
	}
	path, frag, _ := strings.Cut(target, "#")
	resolved := file
	if path != "" {
		resolved = filepath.Join(filepath.Dir(file), path)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
	}
	if frag == "" {
		return ""
	}
	// Anchors are only checkable on markdown targets (or the same file).
	if !strings.HasSuffix(resolved, ".md") {
		return ""
	}
	ok, err := hasAnchor(resolved, frag)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !ok {
		return fmt.Sprintf("broken link %q: no heading in %s generates anchor #%s", target, resolved, frag)
	}
	return ""
}

// hasAnchor reports whether any heading in the markdown file slugifies
// to the given fragment.
func hasAnchor(file, frag string) (bool, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return false, err
	}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headingPattern.FindStringSubmatch(line); m != nil {
			if slugify(m[1]) == frag {
				return true, nil
			}
		}
	}
	return false, nil
}

// slugify reduces a heading to its GitHub-style anchor: lower-case,
// markup and punctuation stripped, spaces to hyphens.
func slugify(heading string) string {
	heading = strings.NewReplacer("`", "", "*", "", "_", "").Replace(heading)
	var sb strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			sb.WriteRune(r)
		case r == ' ':
			sb.WriteByte('-')
		}
	}
	return sb.String()
}
