package cqla

import (
	"testing"
	"time"

	"repro/internal/ecc"
	"repro/internal/phys"
	"repro/internal/transfer"
)

func steaneMachine(blocks int) *Machine {
	return New(Config{Code: ecc.Steane(), Params: phys.Projected(), ComputeBlocks: blocks, ParallelTransfers: 10})
}

func bsMachine(blocks int) *Machine {
	return New(Config{Code: ecc.BaconShor(), Params: phys.Projected(), ComputeBlocks: blocks, ParallelTransfers: 10})
}

func TestMemoryTileDenserThanComputeTile(t *testing.T) {
	m := steaneMachine(9)
	full := m.Config().Code.AreaMM2(2, m.Config().Params)
	mem := m.MemoryTileAreaMM2()
	if mem >= full {
		t.Errorf("memory tile %.3f should be smaller than full tile %.3f", mem, full)
	}
	// Figure 3(a) promises at least an 8/3 density gain from the 8:1 ratio
	// alone; our tile model additionally strips the internal fast-EC
	// ancilla ions, so the per-data-qubit gain is larger still.
	computePerData := 3 * full
	ratio := computePerData / mem
	if ratio < 8.0/3.0 {
		t.Errorf("compute/memory density ratio = %.2f, below the 8/3 floor", ratio)
	}
	if ratio > 25 {
		t.Errorf("compute/memory density ratio = %.2f, implausibly high", ratio)
	}
}

func TestAreaScalesWithBlocksAndQubits(t *testing.T) {
	small := steaneMachine(4)
	big := steaneMachine(16)
	if small.ComputeAreaMM2() >= big.ComputeAreaMM2() {
		t.Error("compute area should grow with blocks")
	}
	if small.AreaMM2(100, false) >= small.AreaMM2(200, false) {
		t.Error("area should grow with memory qubits")
	}
	if small.AreaMM2(100, false) >= small.AreaMM2(100, true) {
		t.Error("hierarchy should add area")
	}
}

func TestAreaReductionInPaperBand(t *testing.T) {
	// Table 4 reports factors between ~3.2 and ~13.4.
	for n, blocks := range PaperBlockCounts() {
		q := 5*n + 3
		for _, k := range [2]int{blocks[0], blocks[1]} {
			st := steaneMachine(k).AreaReduction(q, false)
			bs := bsMachine(k).AreaReduction(q, false)
			if st < 2.5 || st > 14 {
				t.Errorf("n=%d k=%d: Steane area factor %.2f outside band", n, k, st)
			}
			if bs <= st {
				t.Errorf("n=%d k=%d: Bacon-Shor factor %.2f should beat Steane %.2f", n, k, bs, st)
			}
			if bs > 16 {
				t.Errorf("n=%d k=%d: Bacon-Shor factor %.2f implausibly high", n, k, bs)
			}
		}
	}
}

func TestUpToThirteenXDensity(t *testing.T) {
	// The abstract's headline: "up to a factor of thirteen savings in area".
	best := 0.0
	for n, blocks := range PaperBlockCounts() {
		q := 5*n + 3
		if f := bsMachine(blocks[0]).AreaReduction(q, false); f > best {
			best = f
		}
	}
	if best < 9 || best > 14 {
		t.Errorf("best Bacon-Shor area factor = %.1f, paper reports up to 13.4", best)
	}
}

func TestSteaneSpeedupBelowOne(t *testing.T) {
	// With Steane in both machines the CQLA can only lose time to its
	// limited blocks: speedup in (0, 1], approaching 1 with more blocks.
	m1 := steaneMachine(PaperBlockCounts()[256][0])
	m2 := steaneMachine(PaperBlockCounts()[256][1])
	s1, s2 := m1.SpeedupL2(256), m2.SpeedupL2(256)
	if s1 <= 0 || s1 > 1.0001 || s2 <= 0 || s2 > 1.0001 {
		t.Errorf("Steane speedups out of range: %.2f %.2f", s1, s2)
	}
	if s2 <= s1 {
		t.Errorf("more blocks should be faster: %.2f vs %.2f", s1, s2)
	}
}

func TestBaconShorSpeedupBand(t *testing.T) {
	// Table 4: Bacon-Shor speedups 1.47-3.0 (faster error correction
	// outruns the baseline even with few blocks).
	for n, blocks := range PaperBlockCounts() {
		s := bsMachine(blocks[1]).SpeedupL2(n)
		if s < 1.2 || s > 3.2 {
			t.Errorf("n=%d: Bacon-Shor speedup %.2f outside paper band", n, s)
		}
	}
}

func TestBaconShorIsThreeTimesSteane(t *testing.T) {
	// The codes share the schedule; the ratio is the EC-time ratio (3x).
	st := steaneMachine(36)
	bs := bsMachine(36)
	ratio := bs.SpeedupL2(256) / st.SpeedupL2(256)
	if ratio < 2.9 || ratio > 3.1 {
		t.Errorf("BS/Steane speedup ratio = %.2f, want ~3", ratio)
	}
}

func TestGainProductCombinesAreaAndSpeed(t *testing.T) {
	m := bsMachine(36)
	q := 5*256 + 3
	gp := m.GainProduct(256, q, false)
	want := m.AreaReduction(q, false) * m.SpeedupL2(256)
	if diff := gp - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("gain product %.3f != area x speed %.3f", gp, want)
	}
}

func TestLevel1BlocksCappedAtSuperblock(t *testing.T) {
	if got := steaneMachine(100).Level1Blocks(); got != MaxSuperblockBlocks {
		t.Errorf("level-1 blocks = %d, want superblock cap %d", got, MaxSuperblockBlocks)
	}
	if got := steaneMachine(9).Level1Blocks(); got != 9 {
		t.Errorf("level-1 blocks = %d, want 9", got)
	}
}

func TestTransferStallScalesWithParallelism(t *testing.T) {
	m10 := steaneMachine(36)
	m5 := New(Config{Code: ecc.Steane(), Params: phys.Projected(), ComputeBlocks: 36, ParallelTransfers: 5})
	if m5.TransferStall() <= m10.TransferStall() {
		t.Error("fewer parallel transfers should stall longer")
	}
	ratio := float64(m5.TransferStall()) / float64(m10.TransferStall())
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("stall ratio = %.2f, want ~2", ratio)
	}
}

func TestBaconShorPaysChannelPenalty(t *testing.T) {
	// Bacon-Shor needs 3 channels per transfer, so at equal network width
	// it completes fewer transfers per unit time; its stall advantage
	// comes only from the cheaper Table 3 round trip.
	st := steaneMachine(36)
	bs := bsMachine(36)
	// Steane round trip 1.9s at width 10; BS round trip 0.5s at width 10/3.
	// Net: BS stall should still be smaller but by less than the 3.8x
	// round-trip ratio.
	ratio := float64(st.TransferStall()) / float64(bs.TransferStall())
	if ratio < 1 || ratio > 3.8 {
		t.Errorf("Steane/BS stall ratio = %.2f, want within (1, 3.8)", ratio)
	}
}

func TestLevel1AdderFasterThanLevel2(t *testing.T) {
	for _, m := range []*Machine{steaneMachine(36), bsMachine(36)} {
		if m.AdderTimeL1(256) >= m.AdderTimeL2(256) {
			t.Errorf("%s: level-1 adder should be faster", m.Config().Code.Short)
		}
	}
}

func TestSpeedupL1InPaperBand(t *testing.T) {
	// Table 5: level-1 speedups between ~5 and ~18 at 10 parallel
	// transfers, roughly flat across adder sizes.
	for _, n := range Table5Sizes() {
		k := PaperBlockCounts()[n][0]
		st := New(Config{Code: ecc.Steane(), Params: phys.Projected(), ComputeBlocks: k, ParallelTransfers: 10})
		s := st.SpeedupL1(n)
		if s < 5 || s > 25 {
			t.Errorf("n=%d: Steane L1 speedup %.1f outside band", n, s)
		}
	}
}

func TestAdderSpeedupIsWeightedMean(t *testing.T) {
	m := bsMachine(36)
	want := (2*m.SpeedupL2(256) + m.SpeedupL1(256)) / 3
	if got := m.AdderSpeedup(256); got != want {
		t.Errorf("adder speedup %.3f != weighted mean %.3f", got, want)
	}
}

func TestQLAAdderTimeUsesDepth(t *testing.T) {
	m := steaneMachine(36)
	d := m.AdderDAG(64).Depth()
	if m.QLAAdderTime(64) != m.Baseline().AdderTime(d) {
		t.Error("QLA adder time should be depth x baseline slot")
	}
}

func TestSlotTimes(t *testing.T) {
	m := steaneMachine(9)
	if m.SlotTime(1) >= m.SlotTime(2) {
		t.Error("level-1 slots must be faster than level-2")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []func(){
		func() { New(Config{Code: nil, Params: phys.Projected(), ComputeBlocks: 4}) },
		func() { New(Config{Code: ecc.Steane(), Params: phys.Projected(), ComputeBlocks: 0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
	// Zero parallel transfers is normalized to 1 rather than rejected.
	m := New(Config{Code: ecc.Steane(), Params: phys.Projected(), ComputeBlocks: 4})
	if m.Config().ParallelTransfers != 1 {
		t.Error("parallel transfers should default to 1")
	}
}

func TestNewMachineErrors(t *testing.T) {
	if _, err := NewMachine(Config{Code: nil, Params: phys.Projected(), ComputeBlocks: 4}); err == nil {
		t.Error("nil code should be rejected")
	}
	if _, err := NewMachine(Config{Code: ecc.Steane(), Params: phys.Projected(), ComputeBlocks: 0}); err == nil {
		t.Error("zero compute blocks should be rejected")
	}
	if _, err := NewMachine(Config{Code: ecc.Steane(), Params: phys.Projected(), ComputeBlocks: 4, TransferOverlap: 1.5}); err == nil {
		t.Error("overlap > 1 should be rejected")
	}
	m, err := NewMachine(Config{Code: ecc.Steane(), Params: phys.Projected(), ComputeBlocks: 4})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if m.Config().CacheFactor != CacheFactor || m.Config().TransferOverlap != TransferOverlap {
		t.Error("zero-value sentinels should resolve to the paper defaults")
	}
}

// TestTransferStallExactCeiling pins the batch count at the divisibility
// boundary: when the cache qubits divide the effective transfer width
// exactly, the stall must correspond to exactly qubits/width batches — the
// old float-epsilon ceiling (+0.999999) must not round an extra batch in,
// and the integer ceiling must not drop one.
func TestTransferStallExactCeiling(t *testing.T) {
	rt := transfer.RoundTrip(
		transfer.Enc(ecc.Steane(), 2),
		transfer.Enc(ecc.Steane(), 1),
	)
	stallFor := func(parallel int) time.Duration {
		// One block, cache factor 1: exactly BlockDataQubits (9) cache
		// qubits; Steane needs one channel per transfer.
		m := New(Config{
			Code:              ecc.Steane(),
			Params:            phys.Projected(),
			ComputeBlocks:     1,
			ParallelTransfers: parallel,
			CacheFactor:       1,
		})
		return m.TransferStall()
	}
	batchesFor := func(parallel int) float64 {
		return float64(stallFor(parallel)) / ((1 - TransferOverlap) * float64(rt))
	}
	// 9 qubits over width 9: exactly one batch, not two.
	if got := batchesFor(9); got < 0.99 || got > 1.01 {
		t.Errorf("9 qubits / width 9 = %.4f batches, want exactly 1", got)
	}
	// 9 qubits over width 3: exactly three batches.
	if got := batchesFor(3); got < 2.99 || got > 3.01 {
		t.Errorf("9 qubits / width 3 = %.4f batches, want exactly 3", got)
	}
	// 9 qubits over width 8: one qubit spills into a second batch.
	if got := batchesFor(8); got < 1.99 || got > 2.01 {
		t.Errorf("9 qubits / width 8 = %.4f batches, want exactly 2", got)
	}
}

func TestAdderMemoization(t *testing.T) {
	m := steaneMachine(9)
	d1 := m.AdderDAG(64)
	d2 := m.AdderDAG(64)
	if d1 != d2 {
		t.Error("adder DAG should be memoized")
	}
}
