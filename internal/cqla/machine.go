// Package cqla is the core of the reproduction: the Compressed Quantum
// Logic Array architecture model. A Machine composes the substrate
// packages — ion-trap physics (phys), error-correction codes (ecc), circuit
// generation (gen), compute-block scheduling (sched), the teleportation
// mesh (mesh), code-transfer networks (transfer), the qubit cache (cache)
// and the fault-tolerance budget (fidelity) — into the area and performance
// models behind Tables 4 and 5 and Figures 2, 6, 7 and 8 of the paper.
//
// The CQLA specializes the homogeneous QLA into:
//
//   - dense level-2 memory with an 8:1 data:ancilla ratio,
//   - level-2 compute blocks of 9 data + 18 ancilla logical qubits,
//   - a level-1 cache plus level-1 compute region fed by code-transfer
//     networks (the quantum memory hierarchy).
package cqla

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/ecc"
	"repro/internal/gen"
	"repro/internal/memo"
	"repro/internal/phys"
	"repro/internal/qla"
	"repro/internal/sched"
	"repro/internal/transfer"
)

// Architectural constants of the CQLA design.
const (
	// BlockDataQubits is the number of logical data qubits per compute
	// block; a block hosts one fault-tolerant Toffoli's worth of state.
	BlockDataQubits = 9
	// BlockAncillaQubits is the logical ancilla provisioning per compute
	// block (the 1:2 data:ancilla ratio of Figure 3).
	BlockAncillaQubits = 18
	// MemoryShareRatio is the memory's data:ancilla ratio (8:1): eight
	// logical data qubits share one logical ancilla's worth of
	// error-correction resources, exploiting long idle coherence times.
	MemoryShareRatio = 8
	// ComputeInterconnectFactor inflates compute-region area for the
	// channels surrounding blocks (calibrated with qla.InterconnectFactor
	// against Table 4; see DESIGN.md).
	ComputeInterconnectFactor = 2.0
	// CacheFactor sizes the level-1 cache relative to the level-1 compute
	// region; Section 5.2 settles on twice the compute-region qubits.
	CacheFactor = 2.0
	// TransferOverlap is the fraction of memory<->cache transfer latency
	// hidden under surrounding level-2 additions by the static schedule;
	// only the remainder stalls the level-1 adder.
	TransferOverlap = 0.9
	// CPhaseSlots is the fault-tolerant cost of a controlled rotation in
	// two-qubit-gate slots (it is not transversal and decomposes into
	// CNOTs plus corrective single-qubit rotations).
	CPhaseSlots = 3
	// NoTransferOverlap is the Config.TransferOverlap value selecting no
	// overlap at all. The field's zero value means "paper default", so
	// literal zero overlap needs a distinct (negative) sentinel.
	NoTransferOverlap = -1.0
	// MaxSuperblockBlocks caps the level-1 compute region at one
	// superblock: past 36 blocks a superblock's perimeter bandwidth can no
	// longer feed its blocks (the Figure 6(b) crossover), so the fast tier
	// never grows beyond it regardless of problem size.
	MaxSuperblockBlocks = 36
)

// Config selects a CQLA instance.
type Config struct {
	// Code is the error-correction code of the CQLA's regions (the QLA
	// baseline always uses Steane).
	Code *ecc.Code
	// Params is the ion-trap technology point.
	Params phys.Params
	// ComputeBlocks is the number of level-2 compute blocks.
	ComputeBlocks int
	// ParallelTransfers is the memory<->cache transfer-network width (the
	// "Par Xfer" of Table 5).
	ParallelTransfers int
	// CacheFactor sizes the level-1 cache relative to the level-1 compute
	// region's data qubits. The zero value selects the paper's default
	// (the CacheFactor constant); design-space sweeps set it explicitly.
	CacheFactor float64
	// TransferOverlap is the fraction of memory<->cache transfer latency
	// the static schedule hides under surrounding level-2 additions. The
	// zero value selects the paper's default (the TransferOverlap
	// constant); pass a negative value to model no overlap at all (it is
	// clamped to 0).
	TransferOverlap float64
}

// Machine is a configured CQLA with its QLA baseline and memoized adder
// plans. Machines are safe for concurrent use: the plan memo and each
// plan's schedule memo are mutex-guarded, so one machine (or one plan) can
// be shared across a worker pool.
type Machine struct {
	cfg      Config
	baseline qla.Model
	adders   memo.Map[int, *AdderPlan]
}

// AdderPlan is the compiled form of the n-bit carry-lookahead adder: the
// generated circuit, its dependency DAG and a memo of list-scheduled
// makespans per block budget. Building one costs the circuit generation
// and DAG construction that used to be repeated inside every fresh
// Machine; a plan is immutable apart from its schedule memo and safe to
// share between machines — the arch compilation layer hands one plan to
// every machine of a sweep so the DAG is built exactly once.
type AdderPlan struct {
	adder *gen.Adder
	dag   *circuit.DAG
	depth int

	makespans memo.Map[int, int]
}

// NewAdderPlan compiles the n-bit carry-lookahead adder kernel.
func NewAdderPlan(n int) *AdderPlan {
	ad := gen.CarryLookahead(n)
	dag := circuit.BuildDAG(ad.Circuit)
	return &AdderPlan{adder: ad, dag: dag, depth: dag.Depth()}
}

// Bits returns the adder width the plan was compiled for.
func (a *AdderPlan) Bits() int { return a.adder.N }

// DAG returns the compiled dependency graph. It is shared storage; treat
// it as read-only.
func (a *AdderPlan) DAG() *circuit.DAG { return a.dag }

// Depth returns the critical-path length of the adder in slots.
func (a *AdderPlan) Depth() int { return a.depth }

// Makespan returns the list-scheduled makespan of the adder at the given
// block budget, memoized per plan.
func (a *AdderPlan) Makespan(blocks int) int {
	return a.makespans.Get(blocks, func() int {
		return sched.ListSchedule(a.dag, blocks).MakespanSlots
	})
}

// NewMachine returns a Machine for the given configuration, or an error
// describing what is wrong with it. The Config retains its historical
// zero-value sentinels (zero CacheFactor and TransferOverlap select the
// paper defaults; NoTransferOverlap selects literal zero overlap); the
// sentinel-free construction path is arch.New in internal/arch.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Code == nil {
		return nil, fmt.Errorf("cqla: nil code")
	}
	if cfg.ComputeBlocks < 1 {
		return nil, fmt.Errorf("cqla: %d compute blocks", cfg.ComputeBlocks)
	}
	if cfg.ParallelTransfers < 1 {
		cfg.ParallelTransfers = 1
	}
	if cfg.CacheFactor <= 0 {
		cfg.CacheFactor = CacheFactor
	}
	switch {
	case cfg.TransferOverlap == 0:
		cfg.TransferOverlap = TransferOverlap
	case cfg.TransferOverlap < 0:
		cfg.TransferOverlap = 0
	case cfg.TransferOverlap > 1:
		return nil, fmt.Errorf("cqla: transfer overlap %g > 1", cfg.TransferOverlap)
	}
	return &Machine{cfg: cfg, baseline: qla.NewWith(cfg.Params)}, nil
}

// New is NewMachine for call sites that treat a bad configuration as a
// programmer error: it panics instead of returning the error.
func New(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Baseline returns the QLA model results are normalized against.
func (m *Machine) Baseline() qla.Model { return m.baseline }

func (m *Machine) adder(n int) *AdderPlan {
	return m.adders.Get(n, func() *AdderPlan { return NewAdderPlan(n) })
}

// UseAdderPlan seeds the machine's adder memo with a prebuilt shared plan,
// so this machine's analytic model reuses a DAG (and its schedule memo)
// compiled once for a whole sweep instead of rebuilding its own. A plan
// already memoized for the same width is kept — interchangeable by
// construction — and the machine's results are identical either way.
func (m *Machine) UseAdderPlan(p *AdderPlan) {
	if p == nil {
		return
	}
	m.adders.Seed(p.Bits(), p)
}

// AdderDAG exposes the memoized dependency graph of the n-bit
// carry-lookahead adder (used by the figure drivers).
func (m *Machine) AdderDAG(n int) *circuit.DAG { return m.adder(n).dag }

// --- Area model ---------------------------------------------------------

// MemoryTileAreaMM2 returns the floorplan area of one logical data qubit in
// the dense memory region: the data block plus its 1/8 share of an
// error-correction ancilla block.
func (m *Machine) MemoryTileAreaMM2() float64 {
	c := m.cfg.Code
	full := c.AreaMM2(2, m.cfg.Params)
	data := float64(c.DataIons(2))
	anc := float64(c.AncillaIons(2))
	total := data + anc
	return full * (data + anc/MemoryShareRatio) / total
}

// ComputeAreaMM2 returns the area of the level-2 compute region: blocks of
// 9 data + 18 ancilla logical qubits with their interconnect.
func (m *Machine) ComputeAreaMM2() float64 {
	perBlock := float64(BlockDataQubits+BlockAncillaQubits) * m.cfg.Code.AreaMM2(2, m.cfg.Params)
	return float64(m.cfg.ComputeBlocks) * perBlock * ComputeInterconnectFactor
}

// HierarchyAreaMM2 returns the additional area of the memory hierarchy: the
// level-1 compute blocks, the level-1 cache (CacheFactor times the level-1
// compute qubits) and the code-transfer network sites.
func (m *Machine) HierarchyAreaMM2() float64 {
	c := m.cfg.Code
	l1Qubit := c.AreaMM2(1, m.cfg.Params)
	l1Compute := float64(m.cfg.ComputeBlocks) * float64(BlockDataQubits+BlockAncillaQubits) * l1Qubit * ComputeInterconnectFactor
	cacheQubits := m.cfg.CacheFactor * float64(m.cfg.ComputeBlocks*BlockDataQubits)
	cacheArea := cacheQubits * l1Qubit
	transferArea := float64(m.cfg.ParallelTransfers) * (c.AreaMM2(2, m.cfg.Params) + l1Qubit)
	return l1Compute + cacheArea + transferArea
}

// AreaMM2 returns the CQLA floorplan area for an application with the given
// number of logical data qubits in memory; withHierarchy adds the level-1
// tier.
func (m *Machine) AreaMM2(logicalQubits int, withHierarchy bool) float64 {
	area := float64(logicalQubits)*m.MemoryTileAreaMM2() + m.ComputeAreaMM2()
	if withHierarchy {
		area += m.HierarchyAreaMM2()
	}
	return area
}

// AreaReduction returns QLA area over CQLA area for the same application —
// the "Area Reduced (Factor of)" columns of Table 4.
func (m *Machine) AreaReduction(logicalQubits int, withHierarchy bool) float64 {
	return m.baseline.AreaMM2(logicalQubits) / m.AreaMM2(logicalQubits, withHierarchy)
}

// --- Performance model --------------------------------------------------

// SlotTime returns the per-slot cost at a concatenation level: computation
// is error-correction dominated, and communication overlaps with it.
func (m *Machine) SlotTime(level int) time.Duration {
	return m.cfg.Code.ECTime(level, m.cfg.Params)
}

// AdderTimeL2 returns the time of one n-bit carry-lookahead addition run
// entirely in the level-2 compute region.
func (m *Machine) AdderTimeL2(n int) time.Duration {
	a := m.adder(n)
	return time.Duration(a.Makespan(m.cfg.ComputeBlocks)) * m.SlotTime(2)
}

// QLAAdderTime returns the baseline's time for the same addition: the QLA
// achieves the unlimited-parallelism schedule at Steane level-2 speed.
func (m *Machine) QLAAdderTime(n int) time.Duration {
	return m.baseline.AdderTime(m.adder(n).depth)
}

// SpeedupL2 returns the Table 4 speedup: QLA adder time over CQLA level-2
// adder time. For the Steane CQLA this is bounded by 1 (fewer blocks than
// the QLA's ubiquitous compute), while the Bacon-Shor CQLA gains its faster
// error correction.
func (m *Machine) SpeedupL2(n int) float64 {
	return float64(m.QLAAdderTime(n)) / float64(m.AdderTimeL2(n))
}

// Level1Blocks returns the size of the level-1 compute region: the
// configured block budget capped at one superblock (the Figure 6(b)
// bandwidth crossover).
func (m *Machine) Level1Blocks() int {
	if m.cfg.ComputeBlocks > MaxSuperblockBlocks {
		return MaxSuperblockBlocks
	}
	return m.cfg.ComputeBlocks
}

// TransferStall returns the non-overlappable memory<->cache transfer time
// per level-1 addition: the level-1 cache (CacheFactor times the level-1
// region's data qubits) is refilled through the code-transfer network,
// whose effective width shrinks by the code's channel requirement; all but
// (1-TransferOverlap) of the latency hides under the surrounding level-2
// additions thanks to the static schedule. Because the level-1 region is
// capped at one superblock, the stall is independent of problem size —
// which is why the paper's level-1 speedups hold steady from 256 to 1024
// bits.
func (m *Machine) TransferStall() time.Duration {
	c := m.cfg.Code
	qubits := int(m.cfg.CacheFactor * float64(m.Level1Blocks()*BlockDataQubits))
	// Each transfer occupies ChannelsRequired network channels, so a batch
	// moves ParallelTransfers/ChannelsRequired qubits; the batch count is
	// the exact integer ceiling of qubits over that width.
	demand := qubits * c.ChannelsRequired()
	batches := (demand + m.cfg.ParallelTransfers - 1) / m.cfg.ParallelTransfers
	rt := transfer.RoundTrip(transfer.Enc(c, 2), transfer.Enc(c, 1))
	return time.Duration((1 - m.cfg.TransferOverlap) * float64(batches) * float64(rt))
}

// AdderTimeL1 returns the time of one addition run in the level-1 compute
// region: the superblock-capped schedule at level-1 error-correction speed
// plus the transfer stall.
func (m *Machine) AdderTimeL1(n int) time.Duration {
	a := m.adder(n)
	compute := time.Duration(a.Makespan(m.Level1Blocks())) * m.SlotTime(1)
	return compute + m.TransferStall()
}

// SpeedupL1 returns the level-1 speedup over the QLA baseline — the "L1
// SpeedUp" column of Table 5.
func (m *Machine) SpeedupL1(n int) float64 {
	return float64(m.QLAAdderTime(n)) / float64(m.AdderTimeL1(n))
}

// AdderSpeedup returns the average per-addition speedup under the paper's
// fidelity-safe policy of one level-1 addition for every two level-2
// additions.
func (m *Machine) AdderSpeedup(n int) float64 {
	return (2*m.SpeedupL2(n) + m.SpeedupL1(n)) / 3
}

// GainProduct returns (Area_QLA x Time_QLA) / (Area_CQLA x Time_CQLA)
// relative to the QLA's 1.0 — area reduction times speedup.
func (m *Machine) GainProduct(n int, logicalQubits int, withHierarchy bool) float64 {
	speed := m.SpeedupL2(n)
	if withHierarchy {
		speed = m.AdderSpeedup(n)
	}
	return m.AreaReduction(logicalQubits, withHierarchy) * speed
}
