package cqla

import (
	"strings"
	"testing"

	"repro/internal/phys"
)

func TestTable4Shape(t *testing.T) {
	rows := Table4(phys.Projected())
	if len(rows) != 12 {
		t.Fatalf("Table 4 has %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.AreaReducedBS <= r.AreaReducedSteane {
			t.Errorf("n=%d k=%d: BS area factor should beat Steane", r.InputSize, r.Blocks)
		}
		if r.SpeedupSteane > 1.0001 {
			t.Errorf("n=%d k=%d: Steane speedup %.2f > 1", r.InputSize, r.Blocks, r.SpeedupSteane)
		}
		if r.SpeedupBS < 1 {
			t.Errorf("n=%d k=%d: BS speedup %.2f < 1", r.InputSize, r.Blocks, r.SpeedupBS)
		}
		if gp := r.AreaReducedSteane * r.SpeedupSteane; absF(gp-r.GainProductSteane) > 1e-9 {
			t.Errorf("GP(St) inconsistent")
		}
	}
	// Within each size, more blocks trade area for speed.
	for i := 0; i+1 < len(rows); i += 2 {
		a, b := rows[i], rows[i+1]
		if a.InputSize != b.InputSize {
			t.Fatalf("row pairing broken at %d", i)
		}
		if b.AreaReducedSteane >= a.AreaReducedSteane {
			t.Errorf("n=%d: more blocks should reduce the area factor", a.InputSize)
		}
		if b.SpeedupSteane <= a.SpeedupSteane {
			t.Errorf("n=%d: more blocks should raise speedup", a.InputSize)
		}
	}
	// Gain products grow with problem size (first-block-count rows).
	if rows[10].GainProductBS <= rows[0].GainProductBS {
		t.Error("BS gain product should grow from 32 to 1024 bits")
	}
}

func TestTable5Shape(t *testing.T) {
	rows := Table5(phys.Projected())
	if len(rows) != 12 {
		t.Fatalf("Table 5 has %d rows, want 12", len(rows))
	}
	byKey := map[string]Table5Row{}
	for _, r := range rows {
		byKey[r.Code+"/"+itoa(r.ParallelTransfers)+"/"+itoa(r.AdderSize)] = r
		if r.AdderSpeedup < 1 {
			t.Errorf("%s P=%d n=%d: hierarchy should speed up the adder (got %.2f)",
				r.Code, r.ParallelTransfers, r.AdderSize, r.AdderSpeedup)
		}
		if r.L1Speedup <= r.L2Speedup {
			t.Errorf("%s n=%d: L1 should be faster than L2", r.Code, r.AdderSize)
		}
		if gp := r.AdderSpeedup * r.AreaReduced; absF(gp-r.GainProduct)/gp > 1e-9 {
			t.Errorf("GP inconsistent for %s n=%d", r.Code, r.AdderSize)
		}
	}
	// Ten parallel transfers beat five.
	for _, code := range []string{"[[7,1,3]]", "[[9,1,3]]"} {
		for _, n := range Table5Sizes() {
			ten := byKey[code+"/10/"+itoa(n)]
			five := byKey[code+"/5/"+itoa(n)]
			if ten.L1Speedup <= five.L1Speedup {
				t.Errorf("%s n=%d: 10 transfers should beat 5", code, n)
			}
		}
	}
	// Bacon-Shor gain products dominate Steane's at equal configuration.
	for _, n := range Table5Sizes() {
		if byKey["[[9,1,3]]/10/"+itoa(n)].GainProduct <= byKey["[[7,1,3]]/10/"+itoa(n)].GainProduct {
			t.Errorf("n=%d: BS gain product should dominate", n)
		}
	}
	// L1 speedup roughly flat in adder size (paper: 17.4 -> 18.2).
	st256 := byKey["[[7,1,3]]/10/256"].L1Speedup
	st1024 := byKey["[[7,1,3]]/10/1024"].L1Speedup
	if st1024 < 0.6*st256 || st1024 > 1.4*st256 {
		t.Errorf("Steane L1 speedup drifts with size: %.1f vs %.1f", st256, st1024)
	}
	// GP grows with size for fixed code and transfers.
	if byKey["[[9,1,3]]/10/1024"].GainProduct <= byKey["[[9,1,3]]/10/256"].GainProduct {
		t.Error("BS GP should grow with size")
	}
}

func TestFig2Shape(t *testing.T) {
	m := steaneMachine(15)
	f := Fig2(m, 64, 15)
	if f.UnlimitedSlots != m.AdderDAG(64).Depth() {
		t.Error("unlimited profile length should equal depth")
	}
	if f.LimitedSlots < f.UnlimitedSlots {
		t.Error("limited schedule cannot beat unlimited")
	}
	// 15 blocks keep the 64-bit adder within ~30% of unlimited runtime.
	if float64(f.LimitedSlots) > 1.3*float64(f.UnlimitedSlots) {
		t.Errorf("15 blocks: %d slots vs %d unlimited", f.LimitedSlots, f.UnlimitedSlots)
	}
	// Peak unlimited parallelism is tens of gates (Figure 2 peaks ~55).
	peak := 0
	for _, w := range f.UnlimitedProfile {
		if w > peak {
			peak = w
		}
	}
	if peak < 20 {
		t.Errorf("peak parallelism %d, expected tens of gates", peak)
	}
	// Limited profile never exceeds the block budget.
	for _, w := range f.LimitedProfile {
		if w > 15 {
			t.Errorf("limited profile exceeds 15 blocks: %d", w)
		}
	}
}

func TestFig6aShape(t *testing.T) {
	curves := Fig6a(phys.Projected())
	if len(curves) != len(PaperInputSizes()) {
		t.Fatalf("%d curves", len(curves))
	}
	for _, c := range curves {
		for i := 1; i < len(c.Utilizations); i++ {
			if c.Utilizations[i] > c.Utilizations[i-1]+1e-9 {
				t.Errorf("n=%d: utilization not monotone nonincreasing", c.AdderSize)
			}
		}
	}
	// Larger adders keep more blocks busy: at 100 blocks the 1024-bit
	// adder's utilization must exceed the 32-bit adder's.
	var u32, u1024 float64
	for _, c := range curves {
		for i, k := range c.BlockCounts {
			if k == 100 {
				if c.AdderSize == 32 {
					u32 = c.Utilizations[i]
				}
				if c.AdderSize == 1024 {
					u1024 = c.Utilizations[i]
				}
			}
		}
	}
	if u1024 <= u32 {
		t.Errorf("1024-bit utilization %.2f should exceed 32-bit %.2f at 100 blocks", u1024, u32)
	}
}

func TestFig6bShape(t *testing.T) {
	f := Fig6b()
	if f.Crossover != 36 {
		t.Errorf("crossover = %d, paper finds 36", f.Crossover)
	}
	for i, k := range f.Blocks {
		if f.RequiredWorst[i] <= f.RequiredDraper[i] {
			t.Errorf("k=%d: worst case should exceed Draper demand", k)
		}
		if k <= 36 && f.Available[i] < f.RequiredDraper[i] {
			t.Errorf("k=%d: should be bandwidth-sufficient below crossover", k)
		}
		if k > 40 && f.Available[i] >= f.RequiredDraper[i] {
			t.Errorf("k=%d: should be starved above crossover", k)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	rows := Fig7(phys.Projected())
	if len(rows) != len(Fig7Sizes())*3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.OptimRate <= r.NaiveRate {
			t.Errorf("n=%d cache=%d: optimized %.2f <= naive %.2f", r.AdderSize, r.CacheSize, r.OptimRate, r.NaiveRate)
		}
		if r.OptimRate < 0.55 || r.OptimRate > 0.95 {
			t.Errorf("n=%d: optimized rate %.2f outside expected band", r.AdderSize, r.OptimRate)
		}
	}
}

func TestFig8aShape(t *testing.T) {
	pts := Fig8a(phys.Projected())
	for i, p := range pts {
		if p.Communication >= p.Computation {
			t.Errorf("n=%d: modular exponentiation should be computation dominated", p.ProblemSize)
		}
		if i > 0 && p.Computation <= pts[i-1].Computation {
			t.Error("computation time should grow with size")
		}
	}
	// The 1024-bit run lands at hundreds of hours, as in Figure 8(a).
	last := pts[len(pts)-1]
	if h := last.Computation.Hours(); h < 100 || h > 5000 {
		t.Errorf("1024-bit modexp = %.0f hours, expected hundreds", h)
	}
}

func TestFig8bShape(t *testing.T) {
	pts := Fig8b(phys.Projected())
	for i, p := range pts {
		if p.Communication >= p.Computation {
			t.Errorf("n=%d: QFT communication should sit just below computation", p.ProblemSize)
		}
		// "closely tracks": within a small factor, unlike modexp.
		if ratio := float64(p.Communication) / float64(p.Computation); ratio < 0.4 {
			t.Errorf("n=%d: QFT communication/computation = %.2f, should track closely", p.ProblemSize, ratio)
		}
		if i > 0 && p.Computation <= pts[i-1].Computation {
			t.Error("QFT time should grow with size")
		}
	}
	// ~10^5 seconds at n=1000 (Figure 8(b)'s y-scale).
	last := pts[len(pts)-1]
	if s := last.Computation.Seconds(); s < 3e4 || s > 1e6 {
		t.Errorf("1000-qubit QFT = %.0f s, expected ~1e5", s)
	}
}

func TestTable2RowsComplete(t *testing.T) {
	rows := Table2Rows(phys.Projected())
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Code+itoa(r.Level)] = true
	}
	for _, k := range []string{"[[7,1,3]]1", "[[7,1,3]]2", "[[9,1,3]]1", "[[9,1,3]]2"} {
		if !seen[k] {
			t.Errorf("missing row %s", k)
		}
	}
}

func TestTable3MatrixShape(t *testing.T) {
	encs, m := Table3Matrix()
	if len(encs) != 4 || len(m) != 4 {
		t.Fatal("matrix should be 4x4")
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal %d not zero", i)
		}
	}
}

func TestFormatters(t *testing.T) {
	p := phys.Projected()
	t4 := FormatTable4(Table4(p))
	if !strings.Contains(t4, "1024") || !strings.Contains(t4, "GP(BSr)") {
		t.Error("Table 4 formatting incomplete")
	}
	t5 := FormatTable5(Table5(p))
	if !strings.Contains(t5, "[[9,1,3]]") {
		t.Error("Table 5 formatting incomplete")
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
