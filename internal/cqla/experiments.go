package cqla

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/ecc"
	"repro/internal/gen"
	"repro/internal/mesh"
	"repro/internal/phys"
	"repro/internal/sched"
	"repro/internal/transfer"
)

// PaperBlockCounts returns the compute-block budgets the paper evaluates
// for each modular-exponentiation input size in Table 4 (two per size).
func PaperBlockCounts() map[int][2]int {
	return map[int][2]int{
		32:   {4, 9},
		64:   {9, 16},
		128:  {16, 25},
		256:  {36, 49},
		512:  {64, 81},
		1024: {100, 121},
	}
}

// PaperInputSizes returns Table 4's input sizes in ascending order.
func PaperInputSizes() []int { return []int{32, 64, 128, 256, 512, 1024} }

// Table4Row is one row of Table 4: CQLA vs QLA for modular exponentiation
// at one (input size, compute blocks) point, for both codes.
type Table4Row struct {
	InputSize, Blocks                int
	AreaReducedSteane, AreaReducedBS float64
	SpeedupSteane, SpeedupBS         float64
	GainProductSteane, GainProductBS float64
}

// Table4 reproduces Table 4: the specialization study without the memory
// hierarchy.
func Table4(p phys.Params) []Table4Row {
	var rows []Table4Row
	blockTable := PaperBlockCounts()
	st, bs := ecc.Steane(), ecc.BaconShor()
	for _, n := range PaperInputSizes() {
		q := gen.NewModExp(n).LogicalQubits()
		for _, k := range blockTable[n] {
			mSt := New(Config{Code: st, Params: p, ComputeBlocks: k, ParallelTransfers: 10})
			mBS := New(Config{Code: bs, Params: p, ComputeBlocks: k, ParallelTransfers: 10})
			row := Table4Row{
				InputSize:         n,
				Blocks:            k,
				AreaReducedSteane: mSt.AreaReduction(q, false),
				AreaReducedBS:     mBS.AreaReduction(q, false),
				SpeedupSteane:     mSt.SpeedupL2(n),
				SpeedupBS:         mBS.SpeedupL2(n),
			}
			row.GainProductSteane = row.AreaReducedSteane * row.SpeedupSteane
			row.GainProductBS = row.AreaReducedBS * row.SpeedupBS
			rows = append(rows, row)
		}
	}
	return rows
}

// Table5Row is one row of Table 5: the memory-hierarchy study.
type Table5Row struct {
	Code              string
	ParallelTransfers int
	AdderSize         int
	L1Speedup         float64
	L2Speedup         float64
	AdderSpeedup      float64
	AreaReduced       float64
	GainProduct       float64
}

// Table5Sizes returns the adder sizes of Table 5.
func Table5Sizes() []int { return []int{256, 512, 1024} }

// Table5 reproduces Table 5: adding the level-1 cache + compute tier with 5
// or 10 parallel memory<->cache transfers.
func Table5(p phys.Params) []Table5Row {
	var rows []Table5Row
	blockTable := PaperBlockCounts()
	for _, code := range ecc.Codes() {
		for _, par := range []int{10, 5} {
			for _, n := range Table5Sizes() {
				k := blockTable[n][0]
				m := New(Config{Code: code, Params: p, ComputeBlocks: k, ParallelTransfers: par})
				q := gen.NewModExp(n).LogicalQubits()
				rows = append(rows, Table5Row{
					Code:              code.Short,
					ParallelTransfers: par,
					AdderSize:         n,
					L1Speedup:         m.SpeedupL1(n),
					L2Speedup:         m.SpeedupL2(n),
					AdderSpeedup:      m.AdderSpeedup(n),
					AreaReduced:       m.AreaReduction(q, true),
					GainProduct:       m.GainProduct(n, q, true),
				})
			}
		}
	}
	return rows
}

// Figure2 reproduces the parallelism profile of Figure 2: gates in parallel
// over time for the 64-qubit adder with unlimited resources and with a
// fixed block budget (15 in the paper).
type Figure2 struct {
	AdderSize        int
	Blocks           int
	UnlimitedProfile []int
	LimitedProfile   []int
	UnlimitedSlots   int
	LimitedSlots     int
}

// Fig2 computes Figure 2 for the given adder size and block budget.
func Fig2(m *Machine, adderSize, blocks int) Figure2 {
	a := m.adder(adderSize)
	unlimited := sched.ListSchedule(a.dag, 0)
	limited := sched.ListSchedule(a.dag, blocks)
	return Figure2{
		AdderSize:        adderSize,
		Blocks:           blocks,
		UnlimitedProfile: unlimited.Profile(a.dag.Circuit()),
		LimitedProfile:   limited.Profile(a.dag.Circuit()),
		UnlimitedSlots:   unlimited.MakespanSlots,
		LimitedSlots:     limited.MakespanSlots,
	}
}

// Figure6a is one utilization curve: adder size against block counts.
type Figure6a struct {
	AdderSize    int
	BlockCounts  []int
	Utilizations []float64
}

// Fig6aBlockCounts returns the x-axis of Figure 6(a).
func Fig6aBlockCounts() []int { return []int{4, 16, 36, 64, 100, 144, 196} }

// Fig6a computes the utilization curves for every paper input size.
func Fig6a(p phys.Params) []Figure6a {
	var out []Figure6a
	counts := Fig6aBlockCounts()
	m := New(Config{Code: ecc.Steane(), Params: p, ComputeBlocks: 1, ParallelTransfers: 1})
	for _, n := range PaperInputSizes() {
		dag := m.AdderDAG(n)
		out = append(out, Figure6a{
			AdderSize:    n,
			BlockCounts:  counts,
			Utilizations: sched.UtilizationSweep(dag, counts),
		})
	}
	return out
}

// Figure6b is the superblock bandwidth balance.
type Figure6b struct {
	Blocks         []int
	Available      []float64
	RequiredDraper []float64
	RequiredWorst  []float64
	Crossover      int
}

// Fig6bBlockCounts returns the x-axis of Figure 6(b).
func Fig6bBlockCounts() []int {
	var counts []int
	for k := 4; k <= 80; k += 4 {
		counts = append(counts, k)
	}
	return counts
}

// Fig6b computes Figure 6(b) from the mesh bandwidth model.
func Fig6b() Figure6b {
	sb := mesh.DefaultSuperblock()
	var f Figure6b
	for _, k := range Fig6bBlockCounts() {
		f.Blocks = append(f.Blocks, k)
		f.Available = append(f.Available, sb.Available(k))
		f.RequiredDraper = append(f.RequiredDraper, sb.RequiredDraper(k))
		f.RequiredWorst = append(f.RequiredWorst, sb.RequiredWorst(k))
	}
	f.Crossover = sb.Crossover()
	return f
}

// Figure7Row is one bar group of Figure 7: hit rates for one adder size.
type Figure7Row struct {
	AdderSize  int
	CacheSize  int
	Multiplier float64 // cache size as a multiple of the compute region
	NaiveRate  float64
	OptimRate  float64
}

// Fig7Sizes returns the adder sizes of Figure 7.
func Fig7Sizes() []int { return []int{64, 128, 256, 512, 1024} }

// Fig7 reproduces Figure 7: cache hit rates for naive and optimized
// instruction fetch at cache sizes {1, 1.5, 2} x the compute-region qubits.
func Fig7(p phys.Params) []Figure7Row {
	var rows []Figure7Row
	blockTable := PaperBlockCounts()
	for _, n := range Fig7Sizes() {
		ad := gen.CarryLookahead(n)
		pe := blockTable[n][0] * BlockDataQubits
		for _, mult := range []float64{1, 1.5, 2} {
			capQ := int(mult * float64(pe))
			naive := cache.Simulate(ad.Circuit, cache.Config{CacheQubits: capQ, Policy: cache.Naive})
			opt := cache.Simulate(ad.Circuit, cache.Config{CacheQubits: capQ, Policy: cache.Optimized})
			rows = append(rows, Figure7Row{
				AdderSize:  n,
				CacheSize:  capQ,
				Multiplier: mult,
				NaiveRate:  naive.HitRate(),
				OptimRate:  opt.HitRate(),
			})
		}
	}
	return rows
}

// AppTimes holds total computation and communication time for one problem
// size of an application (Figure 8).
type AppTimes struct {
	ProblemSize   int
	Computation   time.Duration
	Communication time.Duration
}

// ModExpTimes computes Figure 8(a)'s point for one input size: total
// computation and communication time of a full modular exponentiation on
// the Bacon-Shor CQLA. Computation is the adder calls divided across the
// concurrent additions a multiplication exposes; communication is the
// operand traffic through the compute-region perimeter, which the
// teleportation interconnect sustains without stalling computation.
func (m *Machine) ModExpTimes(n int) AppTimes {
	me := gen.NewModExp(n)
	adderTime := m.AdderTimeL2(n)
	comp := time.Duration(float64(me.AdderCalls()) / float64(me.ConcurrentAdders()) * float64(adderTime))

	transport := mesh.TransportTime(m.cfg.Code, 2, m.cfg.Params)
	operands := 2*n + 1
	perimeterChannels := 4.0 * math.Sqrt(float64(m.cfg.ComputeBlocks))
	commPerAdder := float64(operands) * float64(transport) / perimeterChannels
	comm := time.Duration(float64(me.AdderCalls()) / float64(me.ConcurrentAdders()) * commPerAdder)
	return AppTimes{ProblemSize: n, Computation: comp, Communication: comm}
}

// QFTTimes computes Figure 8(b)'s point for one problem size: the quantum
// Fourier transform's all-to-all personalized communication against its
// light computation. Controlled rotations are not transversal and cost
// CPhaseSlots slots each; every gate's operand pair is teleported together
// once, so communication closely tracks computation.
func (m *Machine) QFTTimes(n int) AppTimes {
	gates := gen.QFTGateCount(n)
	comp := time.Duration(gates*CPhaseSlots) * m.SlotTime(2)
	comm := time.Duration(gates) * mesh.TransportTime(m.cfg.Code, 2, m.cfg.Params)
	return AppTimes{ProblemSize: n, Computation: comp, Communication: comm}
}

// Fig8a computes Figure 8(a) across the paper's adder sizes using each
// size's paper block budget, on the Bacon-Shor code.
func Fig8a(p phys.Params) []AppTimes {
	var out []AppTimes
	blockTable := PaperBlockCounts()
	for _, n := range PaperInputSizes() {
		m := New(Config{Code: ecc.BaconShor(), Params: p, ComputeBlocks: blockTable[n][0], ParallelTransfers: 10})
		out = append(out, m.ModExpTimes(n))
	}
	return out
}

// Fig8bSizes returns Figure 8(b)'s x-axis.
func Fig8bSizes() []int { return []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000} }

// Fig8b computes Figure 8(b) on the Bacon-Shor code.
func Fig8b(p phys.Params) []AppTimes {
	m := New(Config{Code: ecc.BaconShor(), Params: p, ComputeBlocks: 36, ParallelTransfers: 10})
	var out []AppTimes
	for _, n := range Fig8bSizes() {
		out = append(out, m.QFTTimes(n))
	}
	return out
}

// Table2Rows regenerates the error-correction metric summary of Table 2.
func Table2Rows(p phys.Params) []ecc.Metrics {
	var rows []ecc.Metrics
	for _, c := range ecc.Codes() {
		for _, level := range []int{1, 2} {
			rows = append(rows, c.Metrics(level, p))
		}
	}
	return rows
}

// Table3Matrix regenerates the code-transfer latency matrix of Table 3.
func Table3Matrix() ([]transfer.Encoding, [][]time.Duration) {
	encs := transfer.Encodings()
	m := make([][]time.Duration, len(encs))
	for i, from := range encs {
		m[i] = make([]time.Duration, len(encs))
		for j, to := range encs {
			m[i][j] = transfer.MustLatency(from, to)
		}
	}
	return encs, m
}

// FormatTable4 renders Table 4 in the paper's layout.
func FormatTable4(rows []Table4Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-7s %-10s %-10s %-9s %-9s %-9s %-9s\n",
		"Input", "Blocks", "Area(St)", "Area(BSr)", "Spd(St)", "Spd(BSr)", "GP(St)", "GP(BSr)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6d %-7d %-10.2f %-10.2f %-9.2f %-9.2f %-9.2f %-9.2f\n",
			r.InputSize, r.Blocks, r.AreaReducedSteane, r.AreaReducedBS,
			r.SpeedupSteane, r.SpeedupBS, r.GainProductSteane, r.GainProductBS)
	}
	return sb.String()
}

// FormatTable5 renders Table 5 in the paper's layout.
func FormatTable5(rows []Table5Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-5s %-6s %-9s %-9s %-9s %-9s %-9s\n",
		"Code", "Xfer", "Adder", "L1 Spd", "L2 Spd", "AdderSpd", "Area", "GP")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-5d %-6d %-9.2f %-9.2f %-9.2f %-9.2f %-9.2f\n",
			r.Code, r.ParallelTransfers, r.AdderSize, r.L1Speedup, r.L2Speedup,
			r.AdderSpeedup, r.AreaReduced, r.GainProduct)
	}
	return sb.String()
}
