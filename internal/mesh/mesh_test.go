package mesh

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ecc"
	"repro/internal/phys"
)

func TestNewMeshFor(t *testing.T) {
	cases := []struct{ sites, rows, cols int }{
		{1, 1, 1},
		{4, 2, 2},
		{5, 3, 2},
		{9, 3, 3},
		{100, 10, 10},
		{101, 11, 10},
	}
	for _, c := range cases {
		m := NewMeshFor(c.sites)
		if m.Rows != c.rows || m.Cols != c.cols {
			t.Errorf("NewMeshFor(%d) = %dx%d, want %dx%d", c.sites, m.Rows, m.Cols, c.rows, c.cols)
		}
		if m.Sites() < c.sites {
			t.Errorf("mesh for %d sites holds only %d", c.sites, m.Sites())
		}
	}
}

func TestDistance(t *testing.T) {
	m := Mesh{Rows: 4, Cols: 5}
	if d := m.Distance(0, 0); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	// Site 0 = (0,0); site 19 = (3,4): distance 7.
	if d := m.Distance(0, 19); d != 7 {
		t.Errorf("corner distance = %d, want 7", d)
	}
	if m.Distance(0, 19) != m.Distance(19, 0) {
		t.Error("distance not symmetric")
	}
}

func TestAvgDistanceMatchesBruteForce(t *testing.T) {
	m := Mesh{Rows: 3, Cols: 4}
	sum := 0
	n := m.Sites()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			sum += m.Distance(a, b)
		}
	}
	brute := float64(sum) / float64(n*n)
	if math.Abs(m.AvgDistance()-brute) > 1e-9 {
		t.Errorf("AvgDistance = %g, brute force %g", m.AvgDistance(), brute)
	}
}

func TestBisection(t *testing.T) {
	if b := (Mesh{Rows: 10, Cols: 12}).Bisection(); b != 10 {
		t.Errorf("bisection = %d", b)
	}
}

func TestPurification(t *testing.T) {
	// One round of 0.9-fidelity pairs: 0.81/(0.81+0.01) ~ 0.988.
	got := PurifyFidelity(0.9)
	if math.Abs(got-0.81/0.82) > 1e-12 {
		t.Errorf("PurifyFidelity(0.9) = %g", got)
	}
	// Purification must improve any fidelity above 1/2.
	for _, f := range []float64{0.51, 0.6, 0.75, 0.99} {
		if PurifyFidelity(f) <= f {
			t.Errorf("purification did not improve f=%g", f)
		}
	}
	// And it cannot help at or below 1/2.
	if PurificationRounds(0.5, 0.9) != -1 {
		t.Error("f=0.5 should be unpurifiable")
	}
	if r := PurificationRounds(0.9, 0.99); r != 2 {
		t.Errorf("rounds(0.9 -> 0.99) = %d, want 2", r)
	}
	if r := PurificationRounds(0.95, 0.9); r != 0 {
		t.Errorf("already above target should need 0 rounds, got %d", r)
	}
}

// Property: purified fidelity stays in (1/2, 1) for inputs in (1/2, 1).
func TestPurifyRangeProperty(t *testing.T) {
	f := func(x float64) bool {
		fid := 0.5 + math.Mod(math.Abs(x), 0.5)
		if fid <= 0.5 || fid >= 1 {
			return true
		}
		p := PurifyFidelity(fid)
		return p > 0.5 && p < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransportTimeEqualsTransversalGate(t *testing.T) {
	p := phys.Projected()
	for _, c := range ecc.Codes() {
		for level := 1; level <= 2; level++ {
			if TransportTime(c, level, p) != c.TransversalGateTime(level, p) {
				t.Errorf("%s L%d transport != transversal gate time", c.Short, level)
			}
		}
	}
}

func TestFigure6bCrossoverAt36(t *testing.T) {
	sb := DefaultSuperblock()
	k := sb.Crossover()
	if k != 36 {
		t.Errorf("superblock crossover = %d blocks, paper finds 36", k)
	}
	// Below the crossover the perimeter keeps up; above it demand wins.
	if sb.Available(16) < sb.RequiredDraper(16) {
		t.Error("16-block superblock should be bandwidth-sufficient")
	}
	if sb.Available(64) >= sb.RequiredDraper(64) {
		t.Error("64-block superblock should be bandwidth-starved")
	}
}

func TestWorstCaseDemandSteeper(t *testing.T) {
	sb := DefaultSuperblock()
	for _, k := range []int{10, 40, 80} {
		if sb.RequiredWorst(k) <= sb.RequiredDraper(k) {
			t.Errorf("worst-case demand should exceed Draper demand at k=%d", k)
		}
	}
	// Worst case crosses available bandwidth far earlier.
	if sb.Available(9) >= sb.RequiredWorst(9) {
		t.Error("worst-case traffic should starve even a 9-block superblock")
	}
}

func TestAvailableScalesWithPerimeter(t *testing.T) {
	sb := DefaultSuperblock()
	// Quadrupling the blocks doubles the perimeter bandwidth.
	if math.Abs(sb.Available(64)-2*sb.Available(16)) > 1e-9 {
		t.Errorf("available(64) = %g, want 2x available(16) = %g", sb.Available(64), 2*sb.Available(16))
	}
}

func TestAllToAllTime(t *testing.T) {
	p := phys.Projected()
	bs := ecc.BaconShor()
	if AllToAllTime(1, bs, 2, p) != 0 {
		t.Error("single party all-to-all should be free")
	}
	t100 := AllToAllTime(100, bs, 2, p)
	t400 := AllToAllTime(400, bs, 2, p)
	if t100 <= 0 {
		t.Fatal("all-to-all time should be positive")
	}
	// Traffic grows ~n², bisection ~√n: time grows ~n^1.5 = 8x for 4x nodes.
	ratio := float64(t400) / float64(t100)
	if ratio < 6 || ratio > 10 {
		t.Errorf("all-to-all scaling ratio = %.1f, want ~8", ratio)
	}
}

func TestMeshPanicsOnZeroSites(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMeshFor(0)
}
