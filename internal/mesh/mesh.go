// Package mesh models the CQLA's teleportation-based interconnect: the
// two-dimensional grid of teleportation islands that routes logical qubits
// between memory, cache and compute regions. It provides the EPR-channel
// and purification model, per-qubit logical transport time, the
// superblock perimeter-bandwidth analysis behind Figure 6(b), and the
// all-to-all personalized communication cost of the QFT (Figure 8(b)).
package mesh

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ecc"
	"repro/internal/phys"
)

// Mesh is a rectangular grid of logical-qubit sites connected by
// teleportation islands.
type Mesh struct {
	Rows, Cols int
}

// NewMeshFor returns the most nearly square mesh holding at least the given
// number of sites.
func NewMeshFor(sites int) Mesh {
	if sites < 1 {
		panic(fmt.Sprintf("mesh: need at least one site, got %d", sites))
	}
	r := int(math.Ceil(math.Sqrt(float64(sites))))
	c := (sites + r - 1) / r
	return Mesh{Rows: r, Cols: c}
}

// Sites returns the total number of grid sites.
func (m Mesh) Sites() int { return m.Rows * m.Cols }

// Distance returns the Manhattan hop count between two sites given by
// linear index.
func (m Mesh) Distance(a, b int) int {
	ar, ac := a/m.Cols, a%m.Cols
	br, bc := b/m.Cols, b%m.Cols
	return abs(ar-br) + abs(ac-bc)
}

// AvgDistance returns the exact mean Manhattan distance between two
// uniformly random distinct sites: (rows+cols)/3 for large grids.
func (m Mesh) AvgDistance() float64 {
	// E|x1-x2| over uniform pairs on {0..k-1} is (k²-1)/(3k).
	ed := func(k int) float64 { return (float64(k)*float64(k) - 1) / (3 * float64(k)) }
	return ed(m.Rows) + ed(m.Cols)
}

// Bisection returns the bisection width in links (the smaller grid
// dimension) — the mesh's hard bandwidth ceiling for all-to-all traffic.
func (m Mesh) Bisection() int {
	if m.Rows < m.Cols {
		return m.Rows
	}
	return m.Cols
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// PurifyFidelity applies one round of entanglement purification to an EPR
// pair of the given fidelity (the standard two-to-one recurrence: two pairs
// of fidelity f yield one pair of fidelity f²/(f² + (1-f)²), consuming the
// second pair).
func PurifyFidelity(f float64) float64 {
	if f <= 0 || f >= 1 {
		return f
	}
	return f * f / (f*f + (1-f)*(1-f))
}

// PurificationRounds returns how many purification rounds (each consuming
// half the pairs) raise a raw pair fidelity to at least the target, or -1
// if the raw fidelity is at or below 1/2 (purification then cannot help).
func PurificationRounds(raw, target float64) int {
	if raw <= 0.5 {
		return -1
	}
	rounds := 0
	f := raw
	for f < target {
		f = PurifyFidelity(f)
		rounds++
		if rounds > 64 {
			return -1
		}
	}
	return rounds
}

// TransportTime returns the time to teleport one logical qubit between
// regions of the same encoding: correlated-pair consumption, a transversal
// CNOT, measurement and the Pauli fix-up with its trailing error
// correction — about one transversal logical gate. Because EPR distribution
// through the repeater islands is pipelined underneath error correction,
// the figure is independent of distance ("the time to transport a single
// qubit stays constant immaterial of the problem size", Section 6).
func TransportTime(c *ecc.Code, level int, p phys.Params) time.Duration {
	return c.TransversalGateTime(level, p)
}

// Superblock models the bandwidth balance of a compute superblock — the
// square cluster of compute blocks whose size Figure 6(b) optimizes.
// Bandwidth is measured in logical qubits per two-qubit-gate slot.
type Superblock struct {
	// ChannelsPerEdge is the number of teleportation channels on each
	// block-width of superblock perimeter (2 in the paper's design).
	ChannelsPerEdge int
	// ChannelCapacity is the per-channel throughput in logical qubits per
	// slot (a qubit teleport costs about one transversal-gate time ~= 2 EC
	// rounds, giving ~0.45 qubit/slot once fix-up overlap is accounted).
	ChannelCapacity float64
	// DraperDemand is the perimeter traffic one busy compute block
	// generates while running carry-lookahead additions: the three Toffoli
	// operands stream in and out over the 15-slot Toffoli, plus cat-state
	// ancilla traffic.
	DraperDemand float64
	// WorstDemand is the worst-case traffic: all nine data qubits of the
	// block exchanged every Toffoli.
	WorstDemand float64
}

// DefaultSuperblock returns the calibration used in the paper's Figure
// 6(b) analysis: crossover at 36 blocks per superblock for either code.
func DefaultSuperblock() Superblock {
	return Superblock{
		ChannelsPerEdge: 2,
		ChannelCapacity: 0.45,
		DraperDemand:    0.6,
		WorstDemand:     2.4,
	}
}

// Available returns the perimeter bandwidth of a superblock of k compute
// blocks (arranged √k x √k): perimeter block-edges times channels times
// capacity.
func (s Superblock) Available(blocks int) float64 {
	if blocks < 1 {
		return 0
	}
	side := math.Sqrt(float64(blocks))
	return 4 * side * float64(s.ChannelsPerEdge) * s.ChannelCapacity
}

// RequiredDraper returns the bandwidth demanded by k blocks running the
// Draper adder workload.
func (s Superblock) RequiredDraper(blocks int) float64 {
	return s.DraperDemand * float64(blocks)
}

// RequiredWorst returns the worst-case bandwidth demand.
func (s Superblock) RequiredWorst(blocks int) float64 {
	return s.WorstDemand * float64(blocks)
}

// Crossover returns the largest superblock size (in blocks) whose perimeter
// still satisfies the Draper-adder demand — past this point bigger
// superblocks are bandwidth-starved and it is better to build several
// smaller ones. The paper finds 36.
func (s Superblock) Crossover() int {
	k := 1
	for s.Available(k+1) >= s.RequiredDraper(k+1) {
		k++
		if k > 1<<20 {
			break
		}
	}
	return k
}

// AllToAllExchanges returns the number of pairwise personalized exchanges
// in an n-party all-to-all: n(n-1).
func AllToAllExchanges(n int) int { return n * (n - 1) }

// AllToAllTime returns the time for all-to-all personalized communication
// of n logical qubits on the mesh, following the pipelined all-port
// algorithm of Yang & Wang: total traffic n(n-1) qubit-transports spread
// over the bisection links, each transport costing one logical transport
// time.
func AllToAllTime(n int, c *ecc.Code, level int, p phys.Params) time.Duration {
	if n < 2 {
		return 0
	}
	m := NewMeshFor(n)
	transports := float64(AllToAllExchanges(n))
	perStep := float64(2 * m.Bisection()) // both directions across the cut
	steps := math.Ceil(transports / perStep)
	return time.Duration(steps) * TransportTime(c, level, p)
}
