package quantum_test

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
)

// ExampleState_simulateParsedCircuit runs a circuit written in the text
// format of docs/workload-format.md through the dense state-vector
// simulator: a Bell pair whose two measurements always agree. The rng only
// picks which branch the first measurement collapses into; the second is
// then fully determined, which is the correlation the example pins.
func Example_simulateParsedCircuit() {
	const source = "qubits 2\nh 0\ncnot 0 1\nmeasure 0\nmeasure 1\n"
	c, err := circuit.ParseString(source)
	if err != nil {
		panic(err)
	}
	st, err := circuit.Simulate(c, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	outcome, p := st.DominantBasisState()
	fmt.Printf("qubits agree: %v (probability %.0f)\n", outcome == 0 || outcome == 3, p)
	// Output:
	// qubits agree: true (probability 1)
}
