// Package quantum is a dense state-vector simulator for small quantum
// registers. The CQLA reproduction uses it as ground truth: circuits emitted
// by internal/gen (the Draper carry-lookahead adder, the ripple-carry adder,
// the QFT) are executed here to prove they compute the right function before
// their schedules are fed to the architecture model.
//
// The simulator is deliberately simple — a complex128 amplitude per basis
// state, gates applied by direct index arithmetic — because the circuits it
// validates are at most a few dozen qubits.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// State is the quantum state of an n-qubit register. Qubit 0 is the least
// significant bit of the basis-state index.
type State struct {
	n   int
	amp []complex128
}

// NewState returns an n-qubit register initialized to |0...0⟩.
func NewState(n int) *State {
	if n < 0 || n > 30 {
		panic(fmt.Sprintf("quantum: qubit count %d outside supported range [0,30]", n))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// NewBasisState returns an n-qubit register initialized to the computational
// basis state |value⟩.
func NewBasisState(n int, value uint64) *State {
	s := NewState(n)
	if value >= 1<<uint(n) {
		panic(fmt.Sprintf("quantum: basis value %d does not fit in %d qubits", value, n))
	}
	s.amp[0] = 0
	s.amp[value] = 1
	return s
}

// NumQubits returns the register width.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of basis state |i⟩.
func (s *State) Amplitude(i uint64) complex128 {
	return s.amp[i]
}

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

// Norm returns the 2-norm of the state vector; 1 for any valid state.
func (s *State) Norm() float64 {
	sum := 0.0
	for _, a := range s.amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Probability returns |⟨i|ψ⟩|².
func (s *State) Probability(i uint64) float64 {
	a := s.amp[i]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Fidelity returns |⟨ψ|φ⟩|² between two states of equal width.
func (s *State) Fidelity(o *State) float64 {
	if s.n != o.n {
		panic("quantum: fidelity between different register widths")
	}
	var ip complex128
	for i := range s.amp {
		ip += cmplx.Conj(s.amp[i]) * o.amp[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("quantum: qubit %d out of range [0,%d)", q, s.n))
	}
}

// Apply1Q applies the 2x2 unitary {{m00,m01},{m10,m11}} to qubit q.
func (s *State) Apply1Q(q int, m00, m01, m10, m11 complex128) {
	s.checkQubit(q)
	bit := uint64(1) << uint(q)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.amp[i], s.amp[j]
		s.amp[i] = m00*a0 + m01*a1
		s.amp[j] = m10*a0 + m11*a1
	}
}

// H applies a Hadamard gate to qubit q.
func (s *State) H(q int) {
	r := complex(1/math.Sqrt2, 0)
	s.Apply1Q(q, r, r, r, -r)
}

// X applies a bit-flip (NOT) to qubit q.
func (s *State) X(q int) {
	s.Apply1Q(q, 0, 1, 1, 0)
}

// Z applies a phase-flip to qubit q.
func (s *State) Z(q int) {
	s.Apply1Q(q, 1, 0, 0, -1)
}

// S applies the phase gate diag(1, i).
func (s *State) S(q int) {
	s.Apply1Q(q, 1, 0, 0, complex(0, 1))
}

// T applies the π/8 gate diag(1, e^{iπ/4}), the non-Clifford gate whose
// fault-tolerant implementation dominates Toffoli cost in the paper.
func (s *State) T(q int) {
	s.Apply1Q(q, 1, 0, 0, cmplx.Exp(complex(0, math.Pi/4)))
}

// Tdg applies the inverse of T.
func (s *State) Tdg(q int) {
	s.Apply1Q(q, 1, 0, 0, cmplx.Exp(complex(0, -math.Pi/4)))
}

// Phase applies diag(1, e^{iθ}) to qubit q.
func (s *State) Phase(q int, theta float64) {
	s.Apply1Q(q, 1, 0, 0, cmplx.Exp(complex(0, theta)))
}

// CNOT applies a controlled-NOT with the given control and target.
func (s *State) CNOT(control, target int) {
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("quantum: CNOT control equals target")
	}
	cbit := uint64(1) << uint(control)
	tbit := uint64(1) << uint(target)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&cbit != 0 && i&tbit == 0 {
			j := i | tbit
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// CZ applies a controlled-Z between qubits a and b (symmetric).
func (s *State) CZ(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("quantum: CZ on identical qubits")
	}
	abit := uint64(1) << uint(a)
	bbit := uint64(1) << uint(b)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&abit != 0 && i&bbit != 0 {
			s.amp[i] = -s.amp[i]
		}
	}
}

// CPhase applies a controlled-Phase(θ) between control and target.
func (s *State) CPhase(control, target int, theta float64) {
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("quantum: CPhase on identical qubits")
	}
	cbit := uint64(1) << uint(control)
	tbit := uint64(1) << uint(target)
	ph := cmplx.Exp(complex(0, theta))
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&cbit != 0 && i&tbit != 0 {
			s.amp[i] *= ph
		}
	}
}

// Toffoli applies a doubly-controlled NOT (CCX).
func (s *State) Toffoli(c1, c2, target int) {
	s.checkQubit(c1)
	s.checkQubit(c2)
	s.checkQubit(target)
	if c1 == c2 || c1 == target || c2 == target {
		panic("quantum: Toffoli qubits must be distinct")
	}
	b1 := uint64(1) << uint(c1)
	b2 := uint64(1) << uint(c2)
	tbit := uint64(1) << uint(target)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&b1 != 0 && i&b2 != 0 && i&tbit == 0 {
			j := i | tbit
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// Swap exchanges qubits a and b.
func (s *State) Swap(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		return
	}
	abit := uint64(1) << uint(a)
	bbit := uint64(1) << uint(b)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&abit != 0 && i&bbit == 0 {
			j := (i &^ abit) | bbit
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// Measure performs a projective measurement of qubit q in the computational
// basis using the supplied random source, collapses the state, and returns
// the observed bit.
func (s *State) Measure(q int, rng *rand.Rand) int {
	s.checkQubit(q)
	bit := uint64(1) << uint(q)
	p1 := 0.0
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&bit != 0 {
			a := s.amp[i]
			p1 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	var keepProb float64
	if outcome == 1 {
		keepProb = p1
	} else {
		keepProb = 1 - p1
	}
	if keepProb <= 0 {
		// Numerically impossible branch was drawn; force the other one.
		outcome = 1 - outcome
		keepProb = 1 - keepProb
	}
	norm := complex(1/math.Sqrt(keepProb), 0)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		match := (i&bit != 0) == (outcome == 1)
		if match {
			s.amp[i] *= norm
		} else {
			s.amp[i] = 0
		}
	}
	return outcome
}

// MeasureAll measures every qubit and returns the observed basis value.
func (s *State) MeasureAll(rng *rand.Rand) uint64 {
	var v uint64
	for q := 0; q < s.n; q++ {
		if s.Measure(q, rng) == 1 {
			v |= 1 << uint(q)
		}
	}
	return v
}

// DominantBasisState returns the basis index with the largest probability
// and that probability. For classical-reversible circuits (adders) the
// result is deterministic with probability ~1.
func (s *State) DominantBasisState() (uint64, float64) {
	best := uint64(0)
	bestP := 0.0
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		p := s.Probability(i)
		if p > bestP {
			bestP = p
			best = i
		}
	}
	return best, bestP
}
