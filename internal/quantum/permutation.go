package quantum

import "fmt"

// ApplyPermutation applies a classical reversible function to a contiguous
// view of qubits: for every basis state, the bits at the target qubit
// positions are read as an integer v and replaced by perm(v). perm must be
// a bijection on [0, 2^len(targets)); this is checked once per call.
//
// This is the standard oracle model for arithmetic too wide to decompose
// profitably in a dense simulation — modular multiplication in Shor's
// period finding uses it.
func (s *State) ApplyPermutation(targets []int, perm func(uint64) uint64) {
	s.applyPermutation(-1, targets, perm)
}

// ApplyControlledPermutation is ApplyPermutation conditioned on a control
// qubit being 1.
func (s *State) ApplyControlledPermutation(control int, targets []int, perm func(uint64) uint64) {
	s.checkQubit(control)
	for _, t := range targets {
		if t == control {
			panic("quantum: control overlaps permutation targets")
		}
	}
	s.applyPermutation(control, targets, perm)
}

func (s *State) applyPermutation(control int, targets []int, perm func(uint64) uint64) {
	if len(targets) == 0 {
		return
	}
	seen := make(map[int]bool, len(targets))
	for _, t := range targets {
		s.checkQubit(t)
		if seen[t] {
			panic(fmt.Sprintf("quantum: duplicate permutation target %d", t))
		}
		seen[t] = true
	}
	size := uint64(1) << uint(len(targets))
	// Verify bijectivity so a buggy oracle cannot silently destroy the
	// state's norm.
	hit := make([]bool, size)
	for v := uint64(0); v < size; v++ {
		w := perm(v)
		if w >= size || hit[w] {
			panic(fmt.Sprintf("quantum: permutation is not a bijection at %d -> %d", v, w))
		}
		hit[w] = true
	}

	var cbit uint64
	if control >= 0 {
		cbit = 1 << uint(control)
	}
	next := make([]complex128, len(s.amp))
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if s.amp[i] == 0 {
			continue
		}
		j := i
		if control < 0 || i&cbit != 0 {
			var v uint64
			for b, t := range targets {
				if i>>uint(t)&1 == 1 {
					v |= 1 << uint(b)
				}
			}
			w := perm(v)
			for b, t := range targets {
				tbit := uint64(1) << uint(t)
				if w>>uint(b)&1 == 1 {
					j |= tbit
				} else {
					j &^= tbit
				}
			}
		}
		next[j] = s.amp[i]
	}
	s.amp = next
}
