package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func TestNewStateIsZeroKet(t *testing.T) {
	s := NewState(3)
	if s.NumQubits() != 3 {
		t.Fatalf("width = %d", s.NumQubits())
	}
	if math.Abs(s.Probability(0)-1) > eps {
		t.Errorf("P(|000⟩) = %g", s.Probability(0))
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Errorf("norm = %g", s.Norm())
	}
}

func TestBasisState(t *testing.T) {
	s := NewBasisState(4, 0b1010)
	if p := s.Probability(0b1010); math.Abs(p-1) > eps {
		t.Errorf("P = %g", p)
	}
}

func TestXFlipsBit(t *testing.T) {
	s := NewState(2)
	s.X(1)
	if p := s.Probability(0b10); math.Abs(p-1) > eps {
		t.Errorf("X(1) gave P(|10⟩) = %g", p)
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s := NewState(1)
	s.H(0)
	if math.Abs(s.Probability(0)-0.5) > eps || math.Abs(s.Probability(1)-0.5) > eps {
		t.Errorf("H gave probs %g, %g", s.Probability(0), s.Probability(1))
	}
	s.H(0) // H is self-inverse
	if math.Abs(s.Probability(0)-1) > eps {
		t.Errorf("HH != I: P(0) = %g", s.Probability(0))
	}
}

func TestCNOTTruthTable(t *testing.T) {
	for in := uint64(0); in < 4; in++ {
		s := NewBasisState(2, in)
		s.CNOT(0, 1)
		want := in
		if in&1 != 0 {
			want ^= 2
		}
		if p := s.Probability(want); math.Abs(p-1) > eps {
			t.Errorf("CNOT |%02b⟩: P(|%02b⟩) = %g", in, want, p)
		}
	}
}

func TestToffoliTruthTable(t *testing.T) {
	for in := uint64(0); in < 8; in++ {
		s := NewBasisState(3, in)
		s.Toffoli(0, 1, 2)
		want := in
		if in&1 != 0 && in&2 != 0 {
			want ^= 4
		}
		if p := s.Probability(want); math.Abs(p-1) > eps {
			t.Errorf("Toffoli |%03b⟩: P(|%03b⟩) = %g", in, want, p)
		}
	}
}

// The standard 7-gate-depth decomposition of Toffoli into H, T, Tdg and CNOT
// must agree with the primitive Toffoli on every basis state; this is the
// decomposition the fault-tolerant cost model (15 two-qubit-gate times)
// abstracts.
func TestToffoliDecomposition(t *testing.T) {
	decomp := func(s *State, a, b, c int) {
		s.H(c)
		s.CNOT(b, c)
		s.Tdg(c)
		s.CNOT(a, c)
		s.T(c)
		s.CNOT(b, c)
		s.Tdg(c)
		s.CNOT(a, c)
		s.T(b)
		s.T(c)
		s.H(c)
		s.CNOT(a, b)
		s.T(a)
		s.Tdg(b)
		s.CNOT(a, b)
	}
	for in := uint64(0); in < 8; in++ {
		want := NewBasisState(3, in)
		want.Toffoli(0, 1, 2)
		got := NewBasisState(3, in)
		decomp(got, 0, 1, 2)
		if f := want.Fidelity(got); math.Abs(f-1) > 1e-9 {
			t.Errorf("decomposition disagrees on |%03b⟩: fidelity %g", in, f)
		}
	}
}

func TestCZSymmetric(t *testing.T) {
	a := NewState(2)
	a.H(0)
	a.H(1)
	b := a.Clone()
	a.CZ(0, 1)
	b.CZ(1, 0)
	if f := a.Fidelity(b); math.Abs(f-1) > eps {
		t.Errorf("CZ not symmetric: fidelity %g", f)
	}
}

func TestCPhaseOnlyOn11(t *testing.T) {
	s := NewBasisState(2, 0b11)
	s.CPhase(0, 1, math.Pi/2)
	a := s.Amplitude(0b11)
	if math.Abs(real(a)) > eps || math.Abs(imag(a)-1) > eps {
		t.Errorf("CPhase(π/2)|11⟩ amplitude = %v, want i", a)
	}
	s2 := NewBasisState(2, 0b01)
	s2.CPhase(0, 1, math.Pi/2)
	if p := s2.Probability(0b01); math.Abs(p-1) > eps {
		t.Errorf("CPhase acted on |01⟩")
	}
}

func TestSTRelations(t *testing.T) {
	// T² = S and S² = Z on |+⟩-like states.
	a := NewState(1)
	a.H(0)
	b := a.Clone()
	a.T(0)
	a.T(0)
	b.S(0)
	if f := a.Fidelity(b); math.Abs(f-1) > eps {
		t.Errorf("T² != S: %g", f)
	}
	c := NewState(1)
	c.H(0)
	d := c.Clone()
	c.S(0)
	c.S(0)
	d.Z(0)
	if f := c.Fidelity(d); math.Abs(f-1) > eps {
		t.Errorf("S² != Z: %g", f)
	}
	e := NewState(1)
	e.H(0)
	g := e.Clone()
	e.T(0)
	e.Tdg(0)
	if f := e.Fidelity(g); math.Abs(f-1) > eps {
		t.Errorf("T·Tdg != I: %g", f)
	}
}

func TestSwap(t *testing.T) {
	s := NewBasisState(3, 0b001)
	s.Swap(0, 2)
	if p := s.Probability(0b100); math.Abs(p-1) > eps {
		t.Errorf("swap failed: P(|100⟩) = %g", p)
	}
	s.Swap(1, 1) // no-op
	if p := s.Probability(0b100); math.Abs(p-1) > eps {
		t.Errorf("self-swap altered state")
	}
}

func TestBellStateMeasurementCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := NewState(2)
		s.H(0)
		s.CNOT(0, 1)
		m0 := s.Measure(0, rng)
		m1 := s.Measure(1, rng)
		if m0 != m1 {
			t.Fatalf("Bell state gave anti-correlated outcomes %d,%d", m0, m1)
		}
	}
}

func TestMeasureCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewState(1)
	s.H(0)
	m := s.Measure(0, rng)
	if p := s.Probability(uint64(m)); math.Abs(p-1) > eps {
		t.Errorf("post-measurement P(outcome) = %g", p)
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Errorf("post-measurement norm = %g", s.Norm())
	}
}

func TestMeasureAllDeterministicOnBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewBasisState(5, 0b10110)
	if v := s.MeasureAll(rng); v != 0b10110 {
		t.Errorf("MeasureAll = %05b", v)
	}
}

func TestDominantBasisState(t *testing.T) {
	s := NewBasisState(3, 5)
	v, p := s.DominantBasisState()
	if v != 5 || math.Abs(p-1) > eps {
		t.Errorf("dominant = %d (p=%g)", v, p)
	}
}

// Property: applying a random sequence of unitary gates preserves the norm.
func TestUnitarityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		s := NewState(n)
		for g := 0; g < 30; g++ {
			q := rng.Intn(n)
			switch rng.Intn(6) {
			case 0:
				s.H(q)
			case 1:
				s.X(q)
			case 2:
				s.T(q)
			case 3:
				s.Phase(q, rng.Float64()*2*math.Pi)
			case 4:
				r := rng.Intn(n)
				if r != q {
					s.CNOT(q, r)
				}
			case 5:
				r := rng.Intn(n)
				if r != q {
					s.CPhase(q, r, rng.Float64()*2*math.Pi)
				}
			}
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: X, Z, H, CNOT, CZ, Toffoli and Swap are self-inverse.
func TestSelfInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewState(4)
		// Random-ish initial state.
		for q := 0; q < 4; q++ {
			s.H(q)
			s.Phase(q, rng.Float64())
		}
		ref := s.Clone()
		apply := func() {
			s.X(0)
			s.Z(1)
			s.H(2)
			s.CNOT(0, 3)
			s.CZ(1, 2)
			s.Toffoli(0, 1, 2)
			s.Swap(2, 3)
		}
		apply()
		// Invert in reverse order (all involutions).
		s.Swap(2, 3)
		s.Toffoli(0, 1, 2)
		s.CZ(1, 2)
		s.CNOT(0, 3)
		s.H(2)
		s.Z(1)
		s.X(0)
		return math.Abs(s.Fidelity(ref)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnBadQubit(t *testing.T) {
	cases := []func(){
		func() { NewState(2).H(2) },
		func() { NewState(2).CNOT(0, 0) },
		func() { NewState(3).Toffoli(0, 0, 1) },
		func() { NewState(31) },
		func() { NewBasisState(2, 4) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func BenchmarkCNOT20Qubits(b *testing.B) {
	s := NewState(20)
	for q := 0; q < 20; q++ {
		s.H(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CNOT(i%19, 19)
	}
}
