package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestApply1QArbitraryUnitary checks Apply1Q with a random SU(2) matrix:
// norm preservation and agreement with a hand-computed amplitude.
func TestApply1QArbitraryUnitary(t *testing.T) {
	theta := 0.7
	c := complex(math.Cos(theta), 0)
	s := complex(math.Sin(theta), 0)
	st := NewBasisState(1, 0)
	st.Apply1Q(0, c, -s, s, c) // real rotation
	if d := cmplx.Abs(st.Amplitude(0) - c); d > 1e-12 {
		t.Errorf("amp0 off by %g", d)
	}
	if d := cmplx.Abs(st.Amplitude(1) - s); d > 1e-12 {
		t.Errorf("amp1 off by %g", d)
	}
}

// Property: random single-qubit rotations preserve the norm on multi-qubit
// states.
func TestApply1QUnitaryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := NewState(4)
		for q := 0; q < 4; q++ {
			st.H(q)
		}
		for g := 0; g < 10; g++ {
			th := rng.Float64() * 2 * math.Pi
			ph := rng.Float64() * 2 * math.Pi
			c := complex(math.Cos(th), 0)
			s := cmplx.Exp(complex(0, ph)) * complex(math.Sin(th), 0)
			st.Apply1Q(rng.Intn(4), c, -cmplx.Conj(s), s, cmplx.Conj(c))
		}
		return math.Abs(st.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMeasurementStatistics verifies the Born rule empirically: H|0⟩
// measured many times lands near 50/50.
func TestMeasurementStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ones := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		s := NewState(1)
		s.H(0)
		ones += s.Measure(0, rng)
	}
	frac := float64(ones) / trials
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("P(1) = %.3f, want ~0.5", frac)
	}
}

// TestBiasedMeasurementStatistics checks a non-uniform distribution:
// Ry-like rotation giving P(1) = sin²(θ).
func TestBiasedMeasurementStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	theta := 0.4
	want := math.Sin(theta) * math.Sin(theta)
	ones := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		s := NewState(1)
		c := complex(math.Cos(theta), 0)
		sn := complex(math.Sin(theta), 0)
		s.Apply1Q(0, c, -sn, sn, c)
		ones += s.Measure(0, rng)
	}
	frac := float64(ones) / trials
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("P(1) = %.3f, want %.3f", frac, want)
	}
}

// TestGHZCorrelations prepares a 3-qubit GHZ state and checks perfect
// correlation across all three measurements.
func TestGHZCorrelations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		s := NewState(3)
		s.H(0)
		s.CNOT(0, 1)
		s.CNOT(0, 2)
		m0 := s.Measure(0, rng)
		m1 := s.Measure(1, rng)
		m2 := s.Measure(2, rng)
		if m0 != m1 || m1 != m2 {
			t.Fatalf("GHZ gave uncorrelated outcomes %d%d%d", m0, m1, m2)
		}
	}
}
