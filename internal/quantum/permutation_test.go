package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestApplyPermutationBasis(t *testing.T) {
	// Increment mod 8 on qubits {0,1,2}.
	inc := func(v uint64) uint64 { return (v + 1) % 8 }
	s := NewBasisState(4, 0b1011) // high bit set, low bits = 3
	s.ApplyPermutation([]int{0, 1, 2}, inc)
	if p := s.Probability(0b1100); math.Abs(p-1) > 1e-12 {
		t.Errorf("increment: P(|1100⟩) = %g", p)
	}
}

func TestApplyControlledPermutation(t *testing.T) {
	inc := func(v uint64) uint64 { return (v + 1) % 4 }
	// Control clear: nothing happens.
	s := NewBasisState(3, 0b01)
	s.ApplyControlledPermutation(2, []int{0, 1}, inc)
	if p := s.Probability(0b01); math.Abs(p-1) > 1e-12 {
		t.Error("permutation applied with control clear")
	}
	// Control set: increments.
	s2 := NewBasisState(3, 0b101)
	s2.ApplyControlledPermutation(2, []int{0, 1}, inc)
	if p := s2.Probability(0b110); math.Abs(p-1) > 1e-12 {
		t.Errorf("controlled increment failed: %g", p)
	}
}

func TestPermutationOnSuperposition(t *testing.T) {
	// A permutation must preserve the norm and permute amplitudes.
	s := NewState(3)
	for q := 0; q < 3; q++ {
		s.H(q)
		s.Phase(q, float64(q))
	}
	ref := s.Clone()
	rev := func(v uint64) uint64 { return 7 - v } // bit-complement on 3 bits
	s.ApplyPermutation([]int{0, 1, 2}, rev)
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Errorf("norm = %g", s.Norm())
	}
	for v := uint64(0); v < 8; v++ {
		if s.Amplitude(rev(v)) != ref.Amplitude(v) {
			t.Errorf("amplitude %d not moved to %d", v, rev(v))
		}
	}
	// Applying it twice restores the state.
	s.ApplyPermutation([]int{0, 1, 2}, rev)
	if f := s.Fidelity(ref); math.Abs(f-1) > 1e-12 {
		t.Errorf("involution fidelity = %g", f)
	}
}

func TestPermutationSubsetOfQubits(t *testing.T) {
	// Permuting a subregister must leave other qubits untouched.
	swapBits := func(v uint64) uint64 { return (v>>1)&1 | (v&1)<<1 }
	s := NewBasisState(4, 0b1001)
	s.ApplyPermutation([]int{1, 2}, swapBits) // bits 1,2 hold 0b00: no-op
	if p := s.Probability(0b1001); math.Abs(p-1) > 1e-12 {
		t.Error("identity subcase failed")
	}
	s2 := NewBasisState(4, 0b0010) // bits(1,2) = 01 -> 10
	s2.ApplyPermutation([]int{1, 2}, swapBits)
	if p := s2.Probability(0b0100); math.Abs(p-1) > 1e-12 {
		t.Error("subregister swap failed")
	}
}

func TestPermutationRejectsNonBijection(t *testing.T) {
	s := NewState(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-bijective map")
		}
	}()
	s.ApplyPermutation([]int{0, 1}, func(uint64) uint64 { return 0 })
}

func TestPermutationRejectsBadTargets(t *testing.T) {
	cases := []func(){
		func() { NewState(2).ApplyPermutation([]int{0, 0}, func(v uint64) uint64 { return v }) },
		func() { NewState(2).ApplyControlledPermutation(0, []int{0}, func(v uint64) uint64 { return v }) },
		func() { NewState(2).ApplyPermutation([]int{5}, func(v uint64) uint64 { return v }) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: random permutations preserve the norm on random states.
func TestPermutationUnitaryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		s := NewState(n)
		for q := 0; q < n; q++ {
			s.H(q)
			s.Phase(q, rng.Float64()*math.Pi)
		}
		perm := rng.Perm(1 << uint(n))
		s.ApplyPermutation(allQubits(n), func(v uint64) uint64 { return uint64(perm[v]) })
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func allQubits(n int) []int {
	q := make([]int, n)
	for i := range q {
		q[i] = i
	}
	return q
}
