// Package cache simulates the CQLA's quantum qubit cache: the level-1
// staging tier between the slow level-2 memory and the fast level-1 compute
// region. The simulator replays a logical instruction stream (the Draper
// adder, in the paper) against an LRU cache of logical qubits and measures
// the operand hit rate under two instruction-fetch policies:
//
//   - Naive: instructions issue in program order.
//   - Optimized: because scheduling is static, the fetch window is the
//     whole program; the simulator builds the dependency list and always
//     issues the ready instruction whose operands are already cached
//     (Section 5.2: this raises the hit rate from ~20% to ~85%).
//
// Replacement is least-recently-used, as in the paper.
package cache

import (
	"container/list"
	"fmt"

	"repro/internal/circuit"
)

// Policy selects the instruction fetch strategy.
type Policy int

const (
	// Naive issues instructions in program order.
	Naive Policy = iota
	// Optimized issues ready instructions in operand-affinity order.
	Optimized
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Naive:
		return "naive"
	case Optimized:
		return "optimized"
	default:
		return fmt.Sprintf("cache.Policy(%d)", int(p))
	}
}

// Config describes one cache experiment.
type Config struct {
	// CacheQubits is the cache capacity in logical qubits. The paper
	// studies {1, 1.5, 2} x PE where PE is the compute-region size.
	CacheQubits int
	// Policy is the instruction fetch strategy.
	Policy Policy
}

// Result reports the measured hit behaviour.
type Result struct {
	Config       Config
	Instructions int
	Accesses     int
	Hits         int
	// FullHits counts instructions all of whose operands were cached — the
	// instructions that proceed without touching the transfer network.
	FullHits int
}

// HitRate returns operand hits over operand accesses.
func (r Result) HitRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Accesses)
}

// Misses returns operand accesses that went to level-2 memory.
func (r Result) Misses() int { return r.Accesses - r.Hits }

// lru is a fixed-capacity least-recently-used set of logical qubits.
type lru struct {
	capacity int
	order    *list.List // front = most recent
	index    map[int]*list.Element
}

func newLRU(capacity int) *lru {
	return &lru{capacity: capacity, order: list.New(), index: make(map[int]*list.Element)}
}

// contains reports residency without changing recency.
func (l *lru) contains(q int) bool {
	_, ok := l.index[q]
	return ok
}

// touch makes q resident and most recent, evicting the LRU entry if needed.
// It reports whether q was already resident.
func (l *lru) touch(q int) bool {
	if e, ok := l.index[q]; ok {
		l.order.MoveToFront(e)
		return true
	}
	if l.order.Len() >= l.capacity {
		back := l.order.Back()
		delete(l.index, back.Value.(int))
		l.order.Remove(back)
	}
	l.index[q] = l.order.PushFront(q)
	return false
}

// Simulate replays the circuit against the cache and returns the measured
// hit statistics.
func Simulate(c *circuit.Circuit, cfg Config) Result {
	if cfg.CacheQubits < 1 {
		panic(fmt.Sprintf("cache: capacity %d < 1", cfg.CacheQubits))
	}
	switch cfg.Policy {
	case Naive:
		return simulateOrder(c, cfg, programOrder(c))
	case Optimized:
		return simulateOptimized(c, cfg)
	default:
		panic(fmt.Sprintf("cache: unknown policy %d", int(cfg.Policy)))
	}
}

func programOrder(c *circuit.Circuit) []int {
	order := make([]int, c.Len())
	for i := range order {
		order[i] = i
	}
	return order
}

func simulateOrder(c *circuit.Circuit, cfg Config, order []int) Result {
	res := Result{Config: cfg, Instructions: len(order)}
	l := newLRU(cfg.CacheQubits)
	for _, i := range order {
		in := c.Instr(i)
		full := true
		for _, q := range in.Operands() {
			res.Accesses++
			if l.touch(q) {
				res.Hits++
			} else {
				full = false
			}
		}
		if full {
			res.FullHits++
		}
	}
	return res
}

// simulateOptimized issues instructions with the dependency-aware fetch:
// among ready instructions it picks the one with the most cached operands
// (then fewest uncached operands, then program order). Scanning the whole
// ready set per issue is acceptable at the circuit sizes the study uses.
func simulateOptimized(c *circuit.Circuit, cfg Config) Result {
	d := circuit.BuildDAG(c)
	res := Result{Config: cfg, Instructions: c.Len()}
	l := newLRU(cfg.CacheQubits)

	remaining := make([]int, c.Len())
	var ready []int
	for i := 0; i < c.Len(); i++ {
		remaining[i] = len(d.Deps(i))
		if remaining[i] == 0 {
			ready = append(ready, i)
		}
	}

	for len(ready) > 0 {
		bestIdx := 0
		bestCached, bestMissing := -1, 1<<30
		for idx, i := range ready {
			cached := 0
			ops := c.Instr(i).Operands()
			for _, q := range ops {
				if l.contains(q) {
					cached++
				}
			}
			missing := len(ops) - cached
			if cached > bestCached || (cached == bestCached && missing < bestMissing) ||
				(cached == bestCached && missing == bestMissing && i < ready[bestIdx]) {
				bestIdx, bestCached, bestMissing = idx, cached, missing
			}
		}
		i := ready[bestIdx]
		ready[bestIdx] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]

		in := c.Instr(i)
		full := true
		for _, q := range in.Operands() {
			res.Accesses++
			if l.touch(q) {
				res.Hits++
			} else {
				full = false
			}
		}
		if full {
			res.FullHits++
		}
		for _, s := range d.Succs(i) {
			remaining[s]--
			if remaining[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if res.Instructions != c.Len() {
		panic("cache: optimized fetch lost instructions")
	}
	return res
}

// Sweep runs the cache experiment over several capacities and both
// policies — one adder size's worth of Figure 7 bars.
func Sweep(c *circuit.Circuit, capacities []int) []Result {
	var out []Result
	for _, cap := range capacities {
		for _, pol := range []Policy{Naive, Optimized} {
			out = append(out, Simulate(c, Config{CacheQubits: cap, Policy: pol}))
		}
	}
	return out
}
