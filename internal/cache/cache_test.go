package cache

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
)

func TestLRUBasics(t *testing.T) {
	l := newLRU(2)
	if l.touch(1) {
		t.Error("first touch should miss")
	}
	if !l.touch(1) {
		t.Error("second touch should hit")
	}
	l.touch(2)
	l.touch(3) // evicts 1 (LRU)
	if l.contains(1) {
		t.Error("1 should have been evicted")
	}
	if !l.contains(2) || !l.contains(3) {
		t.Error("2 and 3 should be resident")
	}
	// Touching 2 makes 3 the LRU.
	l.touch(2)
	l.touch(4)
	if l.contains(3) {
		t.Error("3 should have been evicted after 2 was refreshed")
	}
}

func TestSimulateTinyCircuit(t *testing.T) {
	c := circuit.New(3)
	c.AddCNOT(0, 1) // miss, miss
	c.AddCNOT(0, 1) // hit, hit
	c.AddH(2)       // miss (evicts 0 under capacity 2)
	c.AddH(0)       // miss again
	r := Simulate(c, Config{CacheQubits: 2, Policy: Naive})
	if r.Accesses != 6 || r.Hits != 2 {
		t.Errorf("accesses=%d hits=%d, want 6/2", r.Accesses, r.Hits)
	}
	if r.FullHits != 1 {
		t.Errorf("full hits = %d, want 1", r.FullHits)
	}
	if got := r.HitRate(); got != 2.0/6.0 {
		t.Errorf("hit rate = %g", got)
	}
	if r.Misses() != 4 {
		t.Errorf("misses = %d", r.Misses())
	}
}

func TestOptimizedRespectsDependencies(t *testing.T) {
	// Optimized fetch must not reorder dependent instructions: a serial
	// chain has a fixed order regardless of affinity.
	c := circuit.New(2)
	c.AddH(0)
	c.AddCNOT(0, 1)
	c.AddH(1)
	r := Simulate(c, Config{CacheQubits: 4, Policy: Optimized})
	if r.Instructions != 3 {
		t.Errorf("executed %d instructions", r.Instructions)
	}
	// All operands fit: only compulsory misses.
	if r.Hits != r.Accesses-2 {
		t.Errorf("hits=%d accesses=%d, want only 2 compulsory misses", r.Hits, r.Accesses)
	}
}

func TestOptimizedExecutesEverything(t *testing.T) {
	ad := gen.CarryLookahead(32)
	r := Simulate(ad.Circuit, Config{CacheQubits: 50, Policy: Optimized})
	if r.Instructions != ad.Circuit.Len() {
		t.Errorf("executed %d of %d instructions", r.Instructions, ad.Circuit.Len())
	}
	var accesses int
	for _, in := range ad.Circuit.Instrs() {
		accesses += len(in.Operands())
	}
	if r.Accesses != accesses {
		t.Errorf("accesses %d, want %d", r.Accesses, accesses)
	}
}

func TestFigure7OptimizedBeatsNaive(t *testing.T) {
	// The central Figure 7 result: dependency-aware fetch raises the hit
	// rate far more than growing the cache does. (Paper: ~20% -> ~85%;
	// our adder variant measures ~44% -> ~63-70%, same shape.)
	blocks := map[int]int{64: 9, 128: 16, 256: 36}
	for n, k := range blocks {
		ad := gen.CarryLookahead(n)
		pe := 9 * k
		naive1 := Simulate(ad.Circuit, Config{CacheQubits: pe, Policy: Naive})
		naive2 := Simulate(ad.Circuit, Config{CacheQubits: 2 * pe, Policy: Naive})
		opt1 := Simulate(ad.Circuit, Config{CacheQubits: pe, Policy: Optimized})
		opt2 := Simulate(ad.Circuit, Config{CacheQubits: 2 * pe, Policy: Optimized})
		if opt1.HitRate() < naive1.HitRate()+0.15 {
			t.Errorf("n=%d: optimized %.2f not clearly above naive %.2f", n, opt1.HitRate(), naive1.HitRate())
		}
		// Optimized fetch at 1xPE beats naive even at 2xPE: the paper's
		// "increase in hit-rate is more pronounced due to the optimized
		// fetch than increasing cache size".
		if opt1.HitRate() <= naive2.HitRate() {
			t.Errorf("n=%d: optimized@PE %.2f should beat naive@2PE %.2f", n, opt1.HitRate(), naive2.HitRate())
		}
		// Larger caches still help a little under either policy.
		if opt2.HitRate() < opt1.HitRate() || naive2.HitRate() < naive1.HitRate() {
			t.Errorf("n=%d: hit rate dropped with a larger cache", n)
		}
	}
}

func TestFigure7HitRateInsensitiveToAdderSize(t *testing.T) {
	// "almost 85% immaterial of adder size and cache size" — the optimized
	// hit rate must be flat across adder sizes (ours sits near 63-70%).
	blocks := map[int]int{64: 9, 256: 36, 512: 64}
	var rates []float64
	for _, n := range []int{64, 256, 512} {
		ad := gen.CarryLookahead(n)
		cfg := Config{CacheQubits: 2 * 9 * blocks[n], Policy: Optimized}
		rates = append(rates, Simulate(ad.Circuit, cfg).HitRate())
	}
	for i := 1; i < len(rates); i++ {
		if diff := rates[i] - rates[0]; diff > 0.08 || diff < -0.08 {
			t.Errorf("optimized hit rate varies with adder size: %v", rates)
		}
	}
	for _, r := range rates {
		if r < 0.60 {
			t.Errorf("optimized hit rate %.2f below expected floor", r)
		}
	}
}

func TestSweepShape(t *testing.T) {
	ad := gen.CarryLookahead(64)
	results := Sweep(ad.Circuit, []int{81, 121, 162})
	if len(results) != 6 {
		t.Fatalf("sweep returned %d results", len(results))
	}
	for i := 0; i < len(results); i += 2 {
		if results[i].Config.Policy != Naive || results[i+1].Config.Policy != Optimized {
			t.Fatal("sweep ordering wrong")
		}
		if results[i+1].HitRate() <= results[i].HitRate() {
			t.Errorf("capacity %d: optimized should beat naive", results[i].Config.CacheQubits)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Naive.String() != "naive" || Optimized.String() != "optimized" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still render")
	}
}

func TestSimulatePanicsOnBadConfig(t *testing.T) {
	c := circuit.New(1)
	c.AddH(0)
	for _, cfg := range []Config{{CacheQubits: 0, Policy: Naive}, {CacheQubits: 4, Policy: Policy(7)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			Simulate(c, cfg)
		}()
	}
}

func BenchmarkOptimizedFetch256(b *testing.B) {
	ad := gen.CarryLookahead(256)
	cfg := Config{CacheQubits: 648, Policy: Optimized}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(ad.Circuit, cfg)
	}
}
