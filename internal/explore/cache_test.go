package explore

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/phys"
)

// TestCacheTransparency is the refactor's central regression proof: the
// per-sweep machine/compile cache must be invisible in the output. Every
// point of a cached Run is re-evaluated here through a cache-less In —
// fresh machine per point, fresh DAG per evaluation, exactly the pre-cache
// code path — and the metrics must match to the last bit, for the
// analytic engine and the discrete-event engine alike.
func TestCacheTransparency(t *testing.T) {
	cases := []struct {
		sweep  string
		engine string
	}{
		{"pareto", "analytic"}, // 45 points, one shared kernel, all-distinct machines
		{"table5", "analytic"}, // machines×sizes grid
		{"xval", "analytic"},   // evaluates both engines inside one point
		{"fig8b", "des"},       // QFT kernel through the simulator
		{"table4", "analytic"}, // the Table 4 golden path
	}
	for _, tc := range cases {
		exp, err := Lookup(tc.sweep)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Phys: phys.Projected(), Seed: 1, Engine: tc.engine, Parallel: 4}
		pts, err := Run(context.Background(), exp, opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.sweep, err)
		}
		engine, err := arch.NormalizeEngine(tc.engine)
		if err != nil {
			t.Fatal(err)
		}
		for i, pt := range pts {
			in := In{
				Phys:   opts.Phys,
				Seed:   pointSeed(opts.Seed, exp.Name, key(exp.coordsAt(i))),
				Engine: engine,
				exp:    exp,
				coords: exp.coordsAt(i),
				// cache deliberately nil: the pre-cache evaluation path.
			}
			want, err := exp.Eval(context.Background(), in)
			if err != nil {
				t.Fatalf("%s point %d: %v", tc.sweep, i, err)
			}
			// Post hooks (pareto's frontier marks) append extra metrics to
			// the cached run's points; the evaluator's own metrics must
			// form a bit-exact prefix.
			got := pt.Metrics
			if len(got) > len(want) {
				got = got[:len(want)]
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s point %d: cached run diverges from uncached evaluation\n cached:   %v\n uncached: %v",
					tc.sweep, i, got, want)
			}
		}
	}
}

// TestDESEngineDeterministicAcrossParallelism extends the engine's
// byte-identity contract to the discrete-event path under the compile
// cache: one shared plan and machine evaluated concurrently by 8 workers
// must reproduce the serial sweep exactly.
func TestDESEngineDeterministicAcrossParallelism(t *testing.T) {
	for _, name := range []string{"xval", "fig8b"} {
		exp, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func(parallel int) []Point {
			pts, err := Run(context.Background(), exp, Options{
				Phys: phys.Projected(), Seed: 7, Engine: "des", Parallel: parallel,
			})
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", name, parallel, err)
			}
			return pts
		}
		serial := run(1)
		parallel := run(8)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: des-engine sweep differs between -parallel 1 and 8", name)
		}
	}
}
