package explore_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/explore"
)

func nopEval(_ context.Context, _ explore.In) ([]explore.Metric, error) {
	return []explore.Metric{{Name: "one", Value: 1}}, nil
}

func TestLookupUnknown(t *testing.T) {
	_, err := explore.Lookup("no-such-experiment")
	if err == nil {
		t.Fatal("Lookup of unknown name succeeded")
	}
	if !strings.Contains(err.Error(), "no-such-experiment") {
		t.Errorf("error %q does not name the missing experiment", err)
	}
	if !strings.Contains(err.Error(), "table4") {
		t.Errorf("error %q does not list the registered experiments", err)
	}
}

func TestLookupBuiltins(t *testing.T) {
	for _, name := range []string{
		"table2", "table3", "table4", "table5",
		"fig2-makespan", "fig6a", "fig6b", "fig7", "fig8a", "fig8b",
		"pareto", "overlap-sens", "montecarlo",
	} {
		e, err := explore.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if e.Name != name {
			t.Errorf("Lookup(%q) returned experiment %q", name, e.Name)
		}
		if e.Size() < 2 {
			t.Errorf("experiment %q has trivial size %d", name, e.Size())
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := explore.Names()
	if len(names) < 13 {
		t.Fatalf("only %d registered experiments: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func TestValueKindMismatchPanics(t *testing.T) {
	mustPanic(t, "Int() on string value", func() { explore.StringV("x").Int() })
	mustPanic(t, "Float() on string value", func() { explore.StringV("x").Float() })
	mustPanic(t, "Str() on numeric value", func() { explore.IntV(1).Str() })
	// Numeric cross-reads are conversions, not bugs.
	if explore.FloatV(2.7).Int() != 2 || explore.IntV(3).Float() != 3 {
		t.Error("numeric conversions broken")
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic(t, "Register(nil)", func() { explore.Register(nil) })
	mustPanic(t, "Register with empty name", func() {
		explore.Register(&explore.Experiment{Axes: []explore.Axis{explore.Ints("i", 1)}, Eval: nopEval})
	})
	mustPanic(t, "Register without evaluator", func() {
		explore.Register(&explore.Experiment{Name: "t-no-eval", Axes: []explore.Axis{explore.Ints("i", 1)}})
	})
	mustPanic(t, "Register with empty design space", func() {
		explore.Register(&explore.Experiment{Name: "t-empty", Axes: []explore.Axis{explore.Ints("i")}, Eval: nopEval})
	})

	explore.Register(&explore.Experiment{
		Name: "t-registered", Title: "test fixture",
		Axes: []explore.Axis{explore.Ints("i", 1, 2)},
		Eval: nopEval,
	})
	if _, err := explore.Lookup("t-registered"); err != nil {
		t.Fatalf("Lookup of freshly registered experiment: %v", err)
	}
	mustPanic(t, "duplicate Register", func() {
		explore.Register(&explore.Experiment{
			Name: "t-registered",
			Axes: []explore.Axis{explore.Ints("i", 1)},
			Eval: nopEval,
		})
	})
}
