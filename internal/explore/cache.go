package explore

import (
	"context"

	"repro/internal/arch"
	"repro/internal/memo"
	"repro/internal/obs"
)

// evalCache is the per-sweep evaluation cache the runner threads through
// every In: one arch.Machine per resolved configuration, one compiled
// kernel plan per (kernel, bits), and one bound CompiledWorkload per
// (machine, workload). Machines and plans are safe for concurrent use and
// deterministic — two caches (or none at all) produce byte-identical
// sweeps, which TestCacheTransparency pins.
//
// The cache exists because a sweep's points overwhelmingly share setup
// work: every pareto point evaluates the same 256-bit adder kernel on a
// different machine, and every table row rebuilds machines whose circuit
// DAGs are identical. Compiling once per sweep turns that setup into a
// map hit.
//
// When the runner was given a metrics registry, each tier counts its
// hits and misses (cqla_evalcache_{hits,misses}_total, labeled by sweep
// and kind: machine, plan, compiled). The counters are nil — free — when
// observability is off, and a racing duplicate build counts as a miss on
// both racers, which is the truth.
type evalCache struct {
	machines memo.Map[arch.Config, *arch.Machine]
	plans    memo.Map[planKey, *arch.WorkloadPlan]
	compiled memo.Map[compiledKey, *arch.CompiledWorkload]

	machineHits, machineMisses   *obs.Counter
	planHits, planMisses         *obs.Counter
	compiledHits, compiledMisses *obs.Counter
}

// planKey identifies a kernel plan by kernel identity × width: adder and
// modexp workloads share the carry-lookahead kernel, every other kind —
// including named custom circuits — has its own (arch.Workload.Kernel).
type planKey struct {
	kernel string
	bits   int
}

// compiledKey identifies a machine-bound compilation.
type compiledKey struct {
	cfg arch.Config
	w   arch.Workload
}

// newEvalCache returns the sweep's cache; reg may be nil (no metrics).
func newEvalCache(reg *obs.Registry, sweep string) *evalCache {
	c := &evalCache{}
	if reg != nil {
		hits := reg.CounterVec("cqla_evalcache_hits_total",
			"Evaluation-cache hits by tier (machine, plan, compiled).",
			"sweep", "kind")
		misses := reg.CounterVec("cqla_evalcache_misses_total",
			"Evaluation-cache misses by tier (machine, plan, compiled).",
			"sweep", "kind")
		c.machineHits, c.machineMisses = hits.With(sweep, "machine"), misses.With(sweep, "machine")
		c.planHits, c.planMisses = hits.With(sweep, "plan"), misses.With(sweep, "plan")
		c.compiledHits, c.compiledMisses = hits.With(sweep, "compiled"), misses.With(sweep, "compiled")
	}
	return c
}

// count increments hit or miss depending on whether the memoized build
// ran; nil counters (observability off) make it a no-op.
func count(hit, miss *obs.Counter, built bool) {
	if built {
		miss.Inc()
	} else {
		hit.Inc()
	}
}

// machine returns the cached machine for the resolved options, building it
// on first use.
func (c *evalCache) machine(opts ...arch.Option) (*arch.Machine, error) {
	cfg, err := arch.Resolve(opts...)
	if err != nil {
		return nil, err
	}
	built := false
	m, err := c.machines.Do(cfg, func() (*arch.Machine, error) { built = true; return arch.New(opts...) })
	if err == nil {
		count(c.machineHits, c.machineMisses, built)
	}
	return m, err
}

// plan returns the shared kernel plan for w, compiling it on first use.
// A cold plan compile — the circuit generation and DAG build that
// dominate one-shot evaluation — is recorded as a "dag-build" span.
func (c *evalCache) plan(ctx context.Context, w arch.Workload) (*arch.WorkloadPlan, error) {
	k := planKey{kernel: w.Kernel(), bits: w.Bits}
	built := false
	p, err := c.plans.Do(k, func() (*arch.WorkloadPlan, error) {
		built = true
		_, sp := obs.StartSpan(ctx, "dag-build")
		defer sp.End()
		return arch.PlanWorkload(w)
	})
	if err == nil {
		count(c.planHits, c.planMisses, built)
	}
	return p, err
}

// compile returns the compiled workload binding w's shared plan to m,
// caching the binding per (machine config, workload). A caller-supplied
// machine that is not the cache's own instance for that config (possible
// only if the evaluator built one outside In.Machine) gets a fresh
// uncached binding, so the returned compilation always belongs to m.
func (c *evalCache) compile(ctx context.Context, m *arch.Machine, w arch.Workload) (*arch.CompiledWorkload, error) {
	p, err := c.plan(ctx, w)
	if err != nil {
		return nil, err
	}
	built := false
	cw, err := c.compiled.Do(compiledKey{cfg: m.Config(), w: w}, func() (*arch.CompiledWorkload, error) {
		built = true
		return m.CompileWith(w, p)
	})
	if err != nil {
		return nil, err
	}
	count(c.compiledHits, c.compiledMisses, built)
	if cw.Machine() != m {
		return m.CompileWith(w, p)
	}
	return cw, nil
}

// compileWith binds a caller-supplied prebuilt plan (a custom circuit from
// arch.PlanCircuit) to m, sharing the compiled tier with registry kernels.
// The plan tier is seeded with the plan so later lookups of the same
// kernel hit instead of failing to rebuild a custom circuit.
func (c *evalCache) compileWith(m *arch.Machine, plan *arch.WorkloadPlan) (*arch.CompiledWorkload, error) {
	w := plan.Workload()
	c.plans.Do(planKey{kernel: plan.Kernel(), bits: plan.Bits()}, func() (*arch.WorkloadPlan, error) {
		return plan, nil
	})
	built := false
	cw, err := c.compiled.Do(compiledKey{cfg: m.Config(), w: w}, func() (*arch.CompiledWorkload, error) {
		built = true
		return m.CompileWith(w, plan)
	})
	if err != nil {
		return nil, err
	}
	count(c.compiledHits, c.compiledMisses, built)
	if cw.Machine() != m {
		return m.CompileWith(w, plan)
	}
	return cw, nil
}

// Machine returns the unified-API machine at this design point, on the
// sweep's technology point, reusing the per-sweep cache when the runner
// provided one. Machines are cached by their resolved configuration, so
// pass codes by registry name (WithCodeName) — every built-in sweep does.
func (in In) Machine(opts ...arch.Option) (*arch.Machine, error) {
	all := append([]arch.Option{arch.WithParams(in.Phys)}, opts...)
	if in.cache != nil {
		return in.cache.machine(all...)
	}
	return arch.New(all...)
}

// EvaluateOn routes a workload through the named engine, evaluating a
// per-sweep compiled form of the workload when the runner provided a
// cache. Results are identical to Engine.Evaluate either way. With a
// tracer in ctx (cqla sweep -trace), the compile and evaluate stages are
// recorded as "plan-compile" and engine-level spans.
func (in In) EvaluateOn(ctx context.Context, m *arch.Machine, w arch.Workload, engine string) (arch.Result, error) {
	eng, err := m.Engine(engine)
	if err != nil {
		return arch.Result{}, err
	}
	if in.cache != nil {
		compileCtx, sp := obs.StartSpan(ctx, "plan-compile")
		cw, err := in.cache.compile(compileCtx, m, w)
		sp.End()
		if err != nil {
			return arch.Result{}, err
		}
		return eng.EvaluateCompiled(ctx, cw)
	}
	return eng.Evaluate(ctx, w)
}

// Evaluate is EvaluateOn with the engine the sweep was run with
// (`cqla sweep <name> -engine analytic|des`).
func (in In) Evaluate(ctx context.Context, m *arch.Machine, w arch.Workload) (arch.Result, error) {
	return in.EvaluateOn(ctx, m, w, in.Engine)
}

// EvaluatePlan routes a prebuilt workload plan — a custom circuit compiled
// once with arch.PlanCircuit — through the sweep's engine on m, sharing
// the per-sweep compiled-binding cache when the runner provided one.
func (in In) EvaluatePlan(ctx context.Context, m *arch.Machine, plan *arch.WorkloadPlan) (arch.Result, error) {
	eng, err := m.Engine(in.Engine)
	if err != nil {
		return arch.Result{}, err
	}
	_, sp := obs.StartSpan(ctx, "plan-compile")
	var cw *arch.CompiledWorkload
	if in.cache != nil {
		cw, err = in.cache.compileWith(m, plan)
	} else {
		cw, err = m.CompileWith(plan.Workload(), plan)
	}
	sp.End()
	if err != nil {
		return arch.Result{}, err
	}
	return eng.EvaluateCompiled(ctx, cw)
}
