package explore

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/arch"
)

// Report bundles a completed sweep with the metadata needed to regenerate
// it, ready for emission in any supported format.
type Report struct {
	Experiment *Experiment
	// Phys names the technology point the sweep ran under.
	Phys string
	// Seed is the base seed the sweep ran with.
	Seed int64
	// Engine names the arch evaluation engine the sweep ran through
	// (empty renders as the analytic default).
	Engine string
	// Estimator names a non-default Monte Carlo estimator the sweep ran
	// with ("bitsliced", "rare"). Empty — the default naive estimator —
	// is omitted from every format, so pre-estimator reports stay
	// byte-identical.
	Estimator string
	Points    []Point
}

// Formats lists the supported emission formats.
func Formats() []string { return []string{"text", "json", "csv"} }

// Emit writes the report in the named format.
func (r *Report) Emit(w io.Writer, format string) error {
	switch format {
	case "json":
		return r.JSON(w)
	case "csv":
		return r.CSV(w)
	case "text":
		return r.Text(w)
	}
	return fmt.Errorf("explore: unknown format %q (have %s)", format, strings.Join(Formats(), ", "))
}

// metricNames returns the union of metric names across points, in first
// appearance order — normally every point carries the same set, but a Post
// hook may annotate only some.
func (r *Report) metricNames() []string {
	var names []string
	seen := make(map[string]bool)
	for _, p := range r.Points {
		for _, m := range p.Metrics {
			if !seen[m.Name] {
				seen[m.Name] = true
				names = append(names, m.Name)
			}
		}
	}
	return names
}

func formatMetric(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// jsonQuote renders s as a JSON string via encoding/json: Go's %q escapes
// control characters as \x1f-style sequences that JSON parsers reject, so
// the hand-rolled emitter must not use it for open-registry strings.
func jsonQuote(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // a plain string never fails to marshal
		panic(err)
	}
	return string(b)
}

// formatMetricJSON is formatMetric for the JSON emitter: JSON has no
// NaN/Inf literals, so non-finite values become null rather than
// producing an unparseable document. The registry is open to new
// evaluators, so the guard lives here, not in each sweep.
func formatMetricJSON(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return formatMetric(v)
}

// engineName renders the report's engine, defaulting empty to analytic so
// pre-engine callers keep emitting truthful documents.
func (r *Report) engineName() string {
	if r.Engine == "" {
		return arch.EngineAnalytic
	}
	return r.Engine
}

// render consults the experiment's cell-override hook for text/CSV output.
func (r *Report) render(p Point, metric string, v float64) (string, bool) {
	if r.Experiment.Render == nil {
		return "", false
	}
	return r.Experiment.Render(p, metric, v)
}

// JSON writes the sweep as a self-describing JSON document sharing the
// arch.Result envelope conventions (schema_version first, engine echo).
// The encoding is hand-ordered (params in axis order, metrics in evaluator
// order) so the same sweep always produces byte-identical output, whatever
// the runner's parallelism.
func (r *Report) JSON(w io.Writer) error {
	b := bufio.NewWriter(w)
	fmt.Fprintf(b, "{\n  \"schema_version\": %d,\n  \"experiment\": %s,\n  \"title\": %s,\n  \"phys\": %s,\n  \"seed\": %d,\n  \"engine\": %s,",
		arch.SchemaVersion, jsonQuote(r.Experiment.Name), jsonQuote(r.Experiment.Title), jsonQuote(r.Phys), r.Seed, jsonQuote(r.engineName()))
	if r.Estimator != "" {
		fmt.Fprintf(b, "\n  \"estimator\": %s,", jsonQuote(r.Estimator))
	}
	b.WriteString("\n  \"points\": [")
	for i, p := range r.Points {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n    {\"params\": {")
		for j, a := range r.Experiment.Axes {
			if j > 0 {
				b.WriteString(", ")
			}
			jv, err := p.Coords[j].MarshalJSON()
			if err != nil {
				return err
			}
			fmt.Fprintf(b, "%s: %s", jsonQuote(a.Name), jv)
		}
		b.WriteString("}, \"metrics\": {")
		for j, m := range p.Metrics {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s: %s", jsonQuote(m.Name), formatMetricJSON(m.Value))
		}
		b.WriteString("}}")
	}
	b.WriteString("\n  ]\n}\n")
	return b.Flush()
}

// CSV writes one header row (axis names then metric names) and one row per
// point. Points missing a metric leave its cell empty, and so do
// non-finite values: CSV has no NaN/Inf convention downstream parsers
// agree on, so they follow the documented missing-metric rule.
func (r *Report) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	metrics := r.metricNames()
	header := make([]string, 0, len(r.Experiment.Axes)+len(metrics))
	for _, a := range r.Experiment.Axes {
		header = append(header, a.Name)
	}
	header = append(header, metrics...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range r.Points {
		row := make([]string, 0, len(header))
		for _, v := range p.Coords {
			row = append(row, v.String())
		}
		for _, name := range metrics {
			cell := ""
			if v, err := p.Metric(name); err == nil {
				if s, ok := r.render(p, name, v); ok {
					cell = s
				} else if !math.IsNaN(v) && !math.IsInf(v, 0) {
					cell = formatMetric(v)
				}
			}
			row = append(row, cell)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Text writes an aligned table: a caption line, axis columns, then metric
// columns rounded to six significant digits.
func (r *Report) Text(w io.Writer) error {
	metrics := r.metricNames()
	header := make([]string, 0, len(r.Experiment.Axes)+len(metrics))
	for _, a := range r.Experiment.Axes {
		header = append(header, a.Name)
	}
	header = append(header, metrics...)

	rows := make([][]string, 0, len(r.Points)+1)
	rows = append(rows, header)
	for _, p := range r.Points {
		row := make([]string, 0, len(header))
		for _, v := range p.Coords {
			row = append(row, v.String())
		}
		for _, name := range metrics {
			cell := "-"
			if v, err := p.Metric(name); err == nil {
				if s, ok := r.render(p, name, v); ok {
					cell = s
				} else {
					cell = strconv.FormatFloat(v, 'g', 6, 64)
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	b := bufio.NewWriter(w)
	est := ""
	if r.Estimator != "" {
		est = ", estimator " + r.Estimator
	}
	fmt.Fprintf(b, "%s: %s (%s, seed %d, engine %s%s, %d points)\n",
		r.Experiment.Name, r.Experiment.Title, r.Phys, r.Seed, r.engineName(), est, len(r.Points))
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	return b.Flush()
}
