package explore_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/phys"
)

// estimatorExp builds the montecarlo sweep for one estimator with the
// trials axis shrunk, so the determinism tests run in milliseconds while
// exercising exactly the production evaluators.
func estimatorExp(t *testing.T, estimator string, trials int) *explore.Experiment {
	t.Helper()
	exp, err := explore.NewMonteCarloExperiment(estimator)
	if err != nil {
		t.Fatal(err)
	}
	small := *exp
	small.Axes = append([]explore.Axis(nil), exp.Axes...)
	small.Axes[2] = explore.Ints("trials", trials)
	return &small
}

func estimatorJSON(t *testing.T, exp *explore.Experiment, estimator string, parallel int) string {
	t.Helper()
	pts, err := explore.Run(context.Background(), exp, explore.Options{
		Phys:     phys.Projected(),
		Seed:     7,
		Parallel: parallel,
	})
	if err != nil {
		t.Fatal(err)
	}
	est := estimator
	if est == explore.EstimatorNaive {
		est = "" // the CLI omits the default estimator from reports
	}
	var b bytes.Buffer
	r := &explore.Report{Experiment: exp, Phys: "projected", Seed: 7, Estimator: est, Points: pts}
	if err := r.JSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestEstimatorParallelByteIdentity is the acceptance contract of the
// estimator axis: for every estimator mode, the same seed produces
// byte-identical sweep JSON at any -parallel setting.
func TestEstimatorParallelByteIdentity(t *testing.T) {
	for _, est := range explore.Estimators() {
		exp := estimatorExp(t, est, 65536)
		base := estimatorJSON(t, exp, est, 1)
		if got := estimatorJSON(t, exp, est, 4); got != base {
			t.Errorf("%s: sweep JSON differs between -parallel 1 and 4", est)
		}
	}
}

// TestNaiveEstimatorIsRegisteredSweep pins the frozen naive contract: the
// naive estimator variant is the registered montecarlo sweep, bit for bit.
func TestNaiveEstimatorIsRegisteredSweep(t *testing.T) {
	reg, err := explore.Lookup("montecarlo")
	if err != nil {
		t.Fatal(err)
	}
	small := *reg
	small.Axes = append([]explore.Axis(nil), reg.Axes...)
	small.Axes[2] = explore.Ints("trials", 65536)
	want := estimatorJSON(t, &small, explore.EstimatorNaive, 1)
	got := estimatorJSON(t, estimatorExp(t, explore.EstimatorNaive, 65536), explore.EstimatorNaive, 1)
	if got != want {
		t.Error("naive estimator variant diverges from the registered montecarlo sweep")
	}
	if strings.Contains(want, `"estimator"`) {
		t.Error("default-estimator report leaked an estimator field into JSON")
	}
}

func TestNewMonteCarloExperimentUnknown(t *testing.T) {
	if _, err := explore.NewMonteCarloExperiment("exact"); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

// TestEstimatorReportErgonomics checks the censoring satellite end to end:
// unresolved points render as "<bound" in text and CSV while JSON keeps
// raw values, and non-default reports carry the estimator name.
func TestEstimatorReportErgonomics(t *testing.T) {
	// 4096 trials leave every sub-1e-3 point unresolved for the bitsliced
	// estimator, so the censored rendering must appear.
	exp := estimatorExp(t, explore.EstimatorBitSliced, 4096)
	pts, err := explore.Run(context.Background(), exp, explore.Options{Phys: phys.Projected(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := &explore.Report{Experiment: exp, Phys: "projected", Seed: 7, Estimator: explore.EstimatorBitSliced, Points: pts}
	var txt, csv, js bytes.Buffer
	if err := r.Text(&txt); err != nil {
		t.Fatal(err)
	}
	if err := r.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := r.JSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "<") {
		t.Error("text output renders no censored \"<bound\" cell for unresolved points")
	}
	if !strings.Contains(csv.String(), "<") {
		t.Error("CSV output renders no censored \"<bound\" cell for unresolved points")
	}
	if !strings.Contains(txt.String(), "estimator bitsliced") {
		t.Error("text caption omits the estimator")
	}
	if strings.Contains(js.String(), "<") {
		t.Error("JSON output censored a value; machine-readable documents must carry raw metrics")
	}
	if !strings.Contains(js.String(), `"estimator": "bitsliced"`) {
		t.Error("JSON omits the estimator field for a non-default estimator")
	}
	if !strings.Contains(js.String(), `"rate_bound"`) || !strings.Contains(js.String(), `"resolved"`) {
		t.Error("JSON lacks the resolved/rate_bound fields")
	}
}

// TestEstimatorObsCounters checks the work accounting: a sweep with a
// metrics registry records blocks decoded and trials spent, labeled by
// estimator, and recording changes no output bytes.
func TestEstimatorObsCounters(t *testing.T) {
	const trials = 65536
	exp := estimatorExp(t, explore.EstimatorBitSliced, trials)
	reg := obs.NewRegistry()
	pts, err := explore.Run(context.Background(), exp, explore.Options{
		Phys: phys.Projected(),
		Seed: 7,
		Obs:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	points := exp.Size()
	if got := reg.CounterVec("cqla_mc_trials_total", "", "estimator").With("bitsliced").Value(); got != uint64(points*trials) {
		t.Errorf("trials counter = %d, want %d", got, points*trials)
	}
	if got := reg.CounterVec("cqla_mc_blocks_total", "", "estimator").With("bitsliced").Value(); got != uint64(points*trials/64) {
		t.Errorf("blocks counter = %d, want %d", got, points*trials/64)
	}
	bare, err := explore.Run(context.Background(), exp, explore.Options{Phys: phys.Projected(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if len(pts[i].Metrics) != len(bare[i].Metrics) || pts[i].MustMetric("logical_rate") != bare[i].MustMetric("logical_rate") {
			t.Fatalf("point %d differs with observability enabled", i)
		}
	}
}
