package explore_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// bellSource is a tiny valid circuit in the text format, small enough that
// the circuit operation's block-budget sweep stays fast under -race.
const bellSource = "qubits 2\nh 0\ncnot 0 1\nmeasure 0\nmeasure 1\n"

func circuitBody(t *testing.T, source string, extra map[string]any) string {
	t.Helper()
	m := map[string]any{"circuit": source}
	for k, v := range extra {
		m[k] = v
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeCircuitRun: POST /v1/sweeps/circuit:run evaluates the inline
// circuit, repeats are cache hits, and a different circuit is a different
// cache key even though both share the sweep name "circuit".
func TestServeCircuitRun(t *testing.T) {
	srv, _ := newJobsServer(t)

	resp1, doc1 := postRun(t, srv, "circuit", circuitBody(t, bellSource, nil))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("circuit run: %s (%s)", resp1.Status, doc1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first circuit run X-Cache = %q, want miss", got)
	}
	var rep struct {
		Experiment string `json:"experiment"`
		Points     []struct {
			Metrics map[string]float64 `json:"metrics"`
		} `json:"points"`
	}
	if err := json.Unmarshal(doc1, &rep); err != nil {
		t.Fatalf("circuit run document is not a report: %v\n%s", err, doc1)
	}
	if rep.Experiment != "circuit" {
		t.Errorf("report experiment = %q, want circuit", rep.Experiment)
	}
	if len(rep.Points) == 0 {
		t.Fatal("circuit run produced no points")
	}
	if _, ok := rep.Points[0].Metrics["computation_s"]; !ok {
		t.Errorf("circuit point lacks computation_s: %v", rep.Points[0].Metrics)
	}

	resp2, doc2 := postRun(t, srv, "circuit", circuitBody(t, bellSource, nil))
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("repeat circuit run X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(doc1, doc2) {
		t.Error("repeat circuit run served different bytes")
	}

	// A different circuit must not alias in the result cache: same sweep
	// name, different source, different key.
	other := "qubits 2\nh 0\nh 1\nmeasure 0\nmeasure 1\n"
	resp3, doc3 := postRun(t, srv, "circuit", circuitBody(t, other, nil))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("second circuit: %s (%s)", resp3.Status, doc3)
	}
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("different circuit X-Cache = %q, want miss", got)
	}
}

// TestServeCircuitValidation: the circuit operation demands a circuit
// field, rejects malformed sources with the parser's position, and the
// field is invalid on registry sweeps.
func TestServeCircuitValidation(t *testing.T) {
	probeExperiments(t)
	srv, _ := newJobsServer(t)

	resp, doc := postRun(t, srv, "circuit", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("circuit op without circuit field: %s, want 400 (%s)", resp.Status, doc)
	}

	resp, doc = postRun(t, srv, "circuit", circuitBody(t, "qubits 2\ncnot 0 7\n", nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range circuit: %s, want 400", resp.Status)
	}
	if !strings.Contains(string(doc), "line 2") {
		t.Errorf("parse failure lost its position: %s", doc)
	}

	resp, doc = postRun(t, srv, "zprobe", circuitBody(t, bellSource, nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("circuit field on registry sweep: %s, want 400 (%s)", resp.Status, doc)
	}
}
