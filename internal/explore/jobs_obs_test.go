package explore_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/phys"
)

// scrape renders the registry and returns the parsed exposition.
func scrape(t *testing.T, reg *obs.Registry) map[string]*obs.Family {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("registry renders invalid exposition: %v\n%s", err, sb.String())
	}
	return fams
}

// metricValue returns the sample value for name with exactly the given
// labels, or 0 when the series does not exist (yet).
func metricValue(t *testing.T, reg *obs.Registry, name string, labels map[string]string) float64 {
	t.Helper()
	fams := scrape(t, reg)
	f := fams[name]
	if f == nil {
		// Histogram _count/_sum/_bucket samples live under the base family.
		for _, suffix := range []string{"_count", "_sum", "_bucket"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && fams[base] != nil {
				f = fams[base]
				break
			}
		}
	}
	if f == nil {
		return 0
	}
sample:
	for _, s := range f.Samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				continue sample
			}
		}
		return s.Value
	}
	return 0
}

// TestJobMetricsLifecycle drives the manager through every lifecycle edge
// — queue, run, coalesce, drain — and checks the counters are monotone
// and the phase gauges return to zero once Shutdown has drained.
func TestJobMetricsLifecycle(t *testing.T) {
	probeExperiments(t)
	reg := obs.NewRegistry()
	m := explore.NewManager(explore.WithObservability(reg), explore.WithMaxEvaluations(1))
	exp, err := explore.Lookup("zslow")
	if err != nil {
		t.Fatal(err)
	}
	spec := explore.JobSpec{Phys: phys.Projected(), Seed: 20601, Parallel: 1}

	j1, hit, err := m.Submit(exp, spec)
	if err != nil || hit {
		t.Fatalf("first submit: hit=%v err=%v", hit, err)
	}
	spec2 := spec
	spec2.Seed = 20602
	j2, _, err := m.Submit(exp, spec2)
	if err != nil {
		t.Fatal(err)
	}

	// With one evaluation slot, j1 runs (gated on zslowGate) and j2 queues.
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, reg, "cqla_jobs_running", nil) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("running gauge never reached 1")
		}
		time.Sleep(time.Millisecond)
	}
	if got := metricValue(t, reg, "cqla_jobs_queued", nil); got != 1 {
		t.Errorf("queued gauge = %g with one job waiting, want 1", got)
	}

	// An identical third submission coalesces onto j1: no new evaluation,
	// no result-cache hit.
	j3, hit, err := m.Submit(exp, spec)
	if err != nil || hit || j3 != j1 {
		t.Fatalf("coalescing submit: job=%v hit=%v err=%v", j3 == j1, hit, err)
	}
	if got := metricValue(t, reg, "cqla_jobs_coalesced_total", nil); got != 1 {
		t.Errorf("coalesced = %g, want 1", got)
	}
	if got := metricValue(t, reg, "cqla_result_cache_hits_total", nil); got != 0 {
		t.Errorf("cache hits = %g before any job finished, want 0", got)
	}

	// Release both jobs: three gated points each.
	for i := 0; i < 6; i++ {
		zslowGate <- struct{}{}
	}
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	for name, want := range map[string]float64{
		"cqla_jobs_queued":               0, // gauges drain with the manager
		"cqla_jobs_running":              0,
		"cqla_jobs_submitted_total":      3,
		"cqla_jobs_coalesced_total":      1,
		"cqla_result_cache_hits_total":   0,
		"cqla_result_cache_misses_total": 2,
	} {
		if got := metricValue(t, reg, name, nil); got != want {
			t.Errorf("%s = %g after drain, want %g", name, got, want)
		}
	}
	if got := metricValue(t, reg, "cqla_jobs_completed_total", map[string]string{"state": "done"}); got != 2 {
		t.Errorf("completed{done} = %g, want 2", got)
	}
	if got := metricValue(t, reg, "cqla_job_run_seconds_count", nil); got != 2 {
		t.Errorf("run-duration observations = %g, want 2", got)
	}
	if got := metricValue(t, reg, "cqla_job_queue_wait_seconds_count", nil); got != 2 {
		t.Errorf("queue-wait observations = %g, want 2", got)
	}
}

// TestServeCacheHitCounter: every X-Cache: hit response increments the
// result-cache hit counter exactly once.
func TestServeCacheHitCounter(t *testing.T) {
	probeExperiments(t)
	reg := obs.NewRegistry()
	srv, _ := newJobsServer(t, explore.WithObservability(reg))

	hits := func() float64 { return metricValue(t, reg, "cqla_result_cache_hits_total", nil) }
	resp, doc := postRun(t, srv, "zprobe", `{"seed": 20611}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %s (%s)", resp.Status, doc)
	}
	if got := hits(); got != 0 {
		t.Fatalf("cache hits = %g after a cold run, want 0", got)
	}
	for i := 1; i <= 2; i++ {
		resp, _ := postRun(t, srv, "zprobe", `{"seed": 20611}`)
		if got := resp.Header.Get("X-Cache"); got != "hit" {
			t.Fatalf("repeat run %d: X-Cache = %q, want hit", i, got)
		}
		if got := hits(); got != float64(i) {
			t.Errorf("cache hits = %g after %d hit responses, want %d", got, i, i)
		}
	}
}

// TestServeMetricsEndpoint: GET /metrics serves a valid Prometheus text
// exposition that, after one sweep ran, includes the job, HTTP, and
// per-sweep evaluation-latency families.
func TestServeMetricsEndpoint(t *testing.T) {
	probeExperiments(t)
	reg := obs.NewRegistry()
	srv, _ := newJobsServer(t, explore.WithObservability(reg))

	if resp, doc := postRun(t, srv, "zprobe", `{"seed": 20621}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %s (%s)", resp.Status, doc)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ExpositionContentType)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid exposition: %v", err)
	}
	for _, name := range []string{
		"cqla_jobs_submitted_total",
		"cqla_jobs_running",
		"cqla_point_eval_seconds",
		"cqla_evalcache_misses_total",
		"cqla_http_requests_total",
		"cqla_http_request_seconds",
	} {
		if fams[name] == nil {
			t.Errorf("/metrics is missing %s", name)
		}
	}
	// The run request was counted against its route pattern, not its path.
	if got := metricValue(t, reg, "cqla_http_requests_total",
		map[string]string{"route": "POST /v1/sweeps/{op}", "code": "200"}); got != 1 {
		t.Errorf("http requests for the run route = %g, want 1", got)
	}
}

// TestServeVersionEndpoint: GET /v1/version reports schema and build
// identity.
func TestServeVersionEndpoint(t *testing.T) {
	srv, _ := newJobsServer(t)
	resp, err := http.Get(srv.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/version: %s", resp.Status)
	}
	var v struct {
		SchemaVersion int    `json:"schema_version"`
		GoVersion     string `json:"go_version"`
		Module        string `json:"module"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.SchemaVersion < 1 || v.GoVersion == "" {
		t.Errorf("version response: %+v", v)
	}
}

// TestServePprofGate: the profile endpoints exist only behind WithPprof.
func TestServePprofGate(t *testing.T) {
	get := func(srv string) int {
		resp, err := http.Get(srv + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	off, _ := newJobsServer(t)
	if code := get(off.URL); code != http.StatusNotFound {
		t.Errorf("pprof without WithPprof: status %d, want 404", code)
	}
	on, _ := newJobsServer(t, explore.WithPprof(true))
	if code := get(on.URL); code != http.StatusOK {
		t.Errorf("pprof with WithPprof: status %d, want 200", code)
	}
}
