package explore

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/phys"
)

// This file is the job subsystem behind `cqla serve`: a content-addressed
// result cache, a job manager with a bounded global evaluation semaphore,
// and in-flight coalescing. Sweep output is a pure function of
// (sweep, phys, seed, engine, schema version) — parallelism only changes
// wall-clock time, never bytes — so identical requests share one
// evaluation and repeated ones are served from memory.

// ErrShuttingDown is returned by Manager.Submit once Shutdown has begun.
var ErrShuttingDown = errors.New("explore: job manager is shutting down")

// JobState is the lifecycle phase of a submitted job.
type JobState string

const (
	// JobQueued: admitted, waiting for an evaluation slot.
	JobQueued JobState = "queued"
	// JobRunning: holding an evaluation slot, points in flight.
	JobRunning JobState = "running"
	// JobDone: finished; the report document is available.
	JobDone JobState = "done"
	// JobFailed: the evaluation errored; Error carries the cause.
	JobFailed JobState = "failed"
)

// JobSpec identifies one run-to-completion sweep evaluation.
type JobSpec struct {
	// Sweep is the experiment name; Submit overwrites it from the
	// experiment so the cache key cannot disagree with the evaluator.
	Sweep string
	// Phys is the technology point the sweep runs under.
	Phys phys.Params
	// Seed is the base seed.
	Seed int64
	// Engine is the arch evaluation engine (canonicalized by Submit).
	Engine string
	// Parallel is the runner's worker count. It is deliberately excluded
	// from Key: output is byte-identical at any parallelism.
	Parallel int
	// Circuit is the text-format source of a custom-circuit run, empty for
	// registry sweeps. It is part of Key: two different circuits share the
	// sweep name "circuit" and must never alias in the result cache.
	Circuit string
}

// Key returns the spec's content address: a digest of every input the
// report document depends on, including the envelope schema version so a
// schema bump can never serve stale documents.
func (s JobSpec) Key() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v%d\x1f%s\x1f%s\x1f%d\x1f%s\x1f%s",
		arch.SchemaVersion, s.Sweep, s.Phys.Name, s.Seed, s.Engine, s.Circuit)))
	return hex.EncodeToString(sum[:12])
}

// Job is one admitted sweep evaluation. Every accessor is safe for
// concurrent use.
type Job struct {
	// ID is the manager-unique job identifier.
	ID string
	// Spec is the canonicalized request the job evaluates.
	Spec JobSpec
	// Key is Spec.Key(), the cache address of the result.
	Key string

	finished chan struct{} // closed once state is done or failed
	created  time.Time     // when Submit admitted the job

	mu      sync.Mutex
	state   JobState
	started time.Time // when the job won an evaluation slot
	done    int
	total   int
	doc     []byte
	err     error
}

// JobStatus is a point-in-time snapshot of a job, shaped for the API.
type JobStatus struct {
	ID     string   `json:"job_id"`
	Sweep  string   `json:"sweep"`
	Phys   string   `json:"phys"`
	Seed   int64    `json:"seed"`
	Engine string   `json:"engine"`
	Key    string   `json:"key"`
	State  JobState `json:"state"`
	Done   int      `json:"done"`
	Total  int      `json:"total"`
	Error  string   `json:"error,omitempty"`
}

// Status returns a consistent snapshot of the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:     j.ID,
		Sweep:  j.Spec.Sweep,
		Phys:   j.Spec.Phys.Name,
		Seed:   j.Spec.Seed,
		Engine: j.Spec.Engine,
		Key:    j.Key,
		State:  j.state,
		Done:   j.done,
		Total:  j.total,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Wait blocks until the job finishes or ctx is done, then returns the
// report document (or the job's failure, or ctx's error). The returned
// bytes are shared and must not be modified.
func (j *Job) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-j.finished:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return j.Document()
}

// Document returns the finished report bytes, the failure of a failed
// job, or an error naming the non-terminal state.
func (j *Job) Document() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobDone:
		return j.doc, nil
	case JobFailed:
		return nil, j.err
	}
	return nil, fmt.Errorf("explore: job %s is %s, not done", j.ID, j.state)
}

// markRunning moves the job from queued to running and records how long
// it waited for its evaluation slot.
func (m *Manager) markRunning(j *Job) {
	j.mu.Lock()
	j.state = JobRunning
	j.started = obs.Now()
	wait := j.started.Sub(j.created)
	j.mu.Unlock()
	m.met.queued.Dec()
	m.met.running.Inc()
	m.met.queueWait.Observe(wait.Seconds())
	m.log.Info("job running", "job", j.ID, "sweep", j.Spec.Sweep, "queue_wait_s", wait.Seconds())
}

func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.mu.Unlock()
}

func (j *Job) isFinished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == JobDone || j.state == JobFailed
}

// managerConfig carries the tunables shared by NewManager and NewServer.
type managerConfig struct {
	maxEval    int
	cacheBytes int64
	history    int
	obs        *obs.Registry
	log        *slog.Logger
	pprof      bool
}

func defaultManagerConfig() managerConfig {
	return managerConfig{maxEval: 1, cacheBytes: 64 << 20, history: 256, log: obs.NopLogger()}
}

// ManagerOption configures a Manager (and, through NewServer, a Server).
type ManagerOption func(*managerConfig)

// WithMaxEvaluations bounds how many sweep evaluations run at once; the
// default is 1, so concurrent requests queue behind one full-parallelism
// worker pool instead of multiplying pools. Values below 1 clamp to 1.
func WithMaxEvaluations(n int) ManagerOption {
	return func(c *managerConfig) {
		if n < 1 {
			n = 1
		}
		c.maxEval = n
	}
}

// WithCacheBytes sets the result cache's LRU byte budget (default 64 MiB).
// Zero or negative disables caching; documents larger than the budget are
// never cached.
func WithCacheBytes(n int64) ManagerOption {
	return func(c *managerConfig) { c.cacheBytes = n }
}

// WithJobHistory caps how many finished job records the manager retains
// for GET /v1/jobs (default 256). In-flight jobs are never evicted.
func WithJobHistory(n int) ManagerOption {
	return func(c *managerConfig) {
		if n < 1 {
			n = 1
		}
		c.history = n
	}
}

// WithObservability attaches a metrics registry. The manager records job
// lifecycle series (cqla_jobs_*, cqla_job_*_seconds, cqla_result_cache_*)
// and threads the registry into every sweep evaluation; through NewServer
// the same registry backs GET /metrics. Nil (the default) disables all of
// it at zero cost.
func WithObservability(reg *obs.Registry) ManagerOption {
	return func(c *managerConfig) { c.obs = reg }
}

// WithLogger sets the structured logger for job lifecycle and HTTP access
// logs. Nil restores the default no-op logger.
func WithLogger(l *slog.Logger) ManagerOption {
	return func(c *managerConfig) {
		if l == nil {
			l = obs.NopLogger()
		}
		c.log = l
	}
}

// WithPprof mounts net/http/pprof under /debug/pprof/ on the server built
// from these options (NewManager itself ignores it). Off by default: the
// profile endpoints can stall the process and belong behind a flag.
func WithPprof(enabled bool) ManagerOption {
	return func(c *managerConfig) { c.pprof = enabled }
}

// jobMetrics is the manager's resolved instrument set. The zero value —
// every handle nil — is the disabled state; each method call on a nil
// handle is a no-op, so the lifecycle code below carries no branches.
type jobMetrics struct {
	submitted       *obs.Counter
	completedDone   *obs.Counter
	completedFailed *obs.Counter
	coalesced       *obs.Counter
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	queued          *obs.Gauge
	running         *obs.Gauge
	queueWait       *obs.Histogram
	runDur          *obs.Histogram
}

func newJobMetrics(reg *obs.Registry) jobMetrics {
	if reg == nil {
		return jobMetrics{}
	}
	completed := reg.CounterVec("cqla_jobs_completed_total",
		"Jobs finished, by terminal state.", "state")
	return jobMetrics{
		submitted:       reg.Counter("cqla_jobs_submitted_total", "Job submissions admitted (including coalesced and cache-served ones)."),
		completedDone:   completed.With(string(JobDone)),
		completedFailed: completed.With(string(JobFailed)),
		coalesced:       reg.Counter("cqla_jobs_coalesced_total", "Submissions attached to an already-running job with the same key."),
		cacheHits:       reg.Counter("cqla_result_cache_hits_total", "Submissions served from the result cache without evaluating."),
		cacheMisses:     reg.Counter("cqla_result_cache_misses_total", "Submissions that started a new evaluation."),
		queued:          reg.Gauge("cqla_jobs_queued", "Jobs waiting for an evaluation slot."),
		running:         reg.Gauge("cqla_jobs_running", "Jobs holding an evaluation slot."),
		queueWait:       reg.Histogram("cqla_job_queue_wait_seconds", "Time from admission to winning an evaluation slot.", nil),
		runDur:          reg.Histogram("cqla_job_run_seconds", "Evaluation wall-clock time of jobs that reached running.", nil),
	}
}

// Manager runs sweep evaluations as jobs: admitted requests coalesce by
// content address, queue on a global evaluation semaphore, publish
// progress, and land their documents in an LRU result cache.
type Manager struct {
	ctx        context.Context
	cancelJobs context.CancelFunc
	sem        chan struct{}
	cache      *docCache
	history    int
	reg        *obs.Registry // threaded into every sweep evaluation
	met        jobMetrics
	log        *slog.Logger

	wg sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	seq      int
	jobs     map[string]*Job
	order    []*Job // creation order; oldest first
	inflight map[string]*Job
}

// NewManager returns a Manager ready to accept jobs.
func NewManager(opts ...ManagerOption) *Manager {
	cfg := defaultManagerConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return newManager(cfg)
}

func newManager(cfg managerConfig) *Manager {
	// Jobs outlive the requests that submit them: the async lifecycle's
	// whole point is that a client can disconnect and poll later, so the
	// manager roots its own context and cancels it on Shutdown.
	//lint:ignore-cqla ctxflow jobs run detached from request contexts by design; Shutdown cancels this root
	ctx, cancel := context.WithCancel(context.Background())
	if cfg.log == nil {
		cfg.log = obs.NopLogger()
	}
	return &Manager{
		ctx:        ctx,
		cancelJobs: cancel,
		sem:        make(chan struct{}, cfg.maxEval),
		cache:      newDocCache(cfg.cacheBytes),
		history:    cfg.history,
		reg:        cfg.obs,
		met:        newJobMetrics(cfg.obs),
		log:        cfg.log,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
	}
}

// Submit admits one evaluation of exp under spec. A request whose key is
// already in flight attaches to the running job (coalescing); a key whose
// document is cached returns an already-done job without evaluating, and
// the bool reports that cache hit. Jobs run detached from any request
// context: they are canceled only by Shutdown.
func (m *Manager) Submit(exp *Experiment, spec JobSpec) (*Job, bool, error) {
	if exp == nil {
		return nil, false, fmt.Errorf("explore: Submit with nil experiment")
	}
	spec.Sweep = exp.Name
	engine, err := arch.NormalizeEngine(spec.Engine)
	if err != nil {
		return nil, false, err
	}
	spec.Engine = engine
	key := spec.Key()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrShuttingDown
	}
	m.met.submitted.Inc()
	if j := m.inflight[key]; j != nil {
		m.met.coalesced.Inc()
		m.log.Debug("job coalesced", "job", j.ID, "sweep", spec.Sweep, "key", key)
		return j, false, nil
	}
	if doc, ok := m.cache.get(key); ok {
		m.met.cacheHits.Inc()
		j := m.newJobLocked(spec, key, exp.Size())
		j.state = JobDone
		j.done = j.total
		j.doc = doc
		close(j.finished)
		m.trimLocked()
		m.log.Debug("job served from cache", "job", j.ID, "sweep", spec.Sweep, "key", key)
		return j, true, nil
	}
	m.met.cacheMisses.Inc()
	j := m.newJobLocked(spec, key, exp.Size())
	m.inflight[key] = j
	m.met.queued.Inc()
	m.wg.Add(1)
	go m.run(j, exp)
	m.trimLocked()
	m.log.Info("job queued", "job", j.ID, "sweep", spec.Sweep, "engine", spec.Engine,
		"phys", spec.Phys.Name, "seed", spec.Seed, "key", key)
	return j, false, nil
}

// newJobLocked allocates and registers a job; m.mu must be held.
func (m *Manager) newJobLocked(spec JobSpec, key string, total int) *Job {
	m.seq++
	j := &Job{
		ID:       fmt.Sprintf("job-%06d", m.seq),
		Spec:     spec,
		Key:      key,
		finished: make(chan struct{}),
		created:  obs.Now(),
		state:    JobQueued,
		total:    total,
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j)
	return j
}

// run executes one job: acquire an evaluation slot, run the sweep with
// progress wired into the job, emit the document, publish the result.
func (m *Manager) run(j *Job, exp *Experiment) {
	defer m.wg.Done()
	select {
	case m.sem <- struct{}{}:
	case <-m.ctx.Done():
		m.finish(j, nil, m.ctx.Err())
		return
	}
	defer func() { <-m.sem }()
	m.markRunning(j)
	pts, err := Run(m.ctx, exp, Options{
		Phys:     j.Spec.Phys,
		Parallel: j.Spec.Parallel,
		Seed:     j.Spec.Seed,
		Engine:   j.Spec.Engine,
		Progress: j.setProgress,
		Obs:      m.reg,
	})
	if err != nil {
		m.finish(j, nil, err)
		return
	}
	rep := &Report{Experiment: exp, Phys: j.Spec.Phys.Name, Seed: j.Spec.Seed, Engine: j.Spec.Engine, Points: pts}
	var buf bytes.Buffer
	if err := rep.JSON(&buf); err != nil {
		m.finish(j, nil, err)
		return
	}
	m.finish(j, buf.Bytes(), nil)
}

// finish publishes the job's outcome. The cache and in-flight table are
// updated before finished is closed, so a waiter that observed completion
// can never race ahead of the cache and recompute.
func (m *Manager) finish(j *Job, doc []byte, err error) {
	j.mu.Lock()
	prev := j.state
	var ran time.Duration
	if prev == JobRunning {
		ran = obs.Since(j.started)
	}
	if err != nil {
		j.state = JobFailed
		j.err = err
	} else {
		j.state = JobDone
		j.doc = doc
		j.done = j.total
	}
	j.mu.Unlock()
	// A job that never won its slot (shutdown while queued) was still
	// counted in the queued gauge; decrement whichever phase it left so the
	// gauges drain to zero with the manager.
	switch prev {
	case JobQueued:
		m.met.queued.Dec()
	case JobRunning:
		m.met.running.Dec()
		m.met.runDur.Observe(ran.Seconds())
	}
	if err != nil {
		m.met.completedFailed.Inc()
		m.log.Warn("job failed", "job", j.ID, "sweep", j.Spec.Sweep, "run_s", ran.Seconds(), "error", err)
	} else {
		m.met.completedDone.Inc()
		m.log.Info("job done", "job", j.ID, "sweep", j.Spec.Sweep, "run_s", ran.Seconds(), "bytes", len(doc))
	}
	if err == nil {
		m.cache.put(j.Key, doc)
	}
	m.mu.Lock()
	delete(m.inflight, j.Key) // failed jobs drop out too: the next request retries
	m.trimLocked()
	m.mu.Unlock()
	close(j.finished)
}

// Job returns the identified job, if it is still retained.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns a snapshot of every retained job, newest first.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for i := len(m.order) - 1; i >= 0; i-- {
		out = append(out, m.order[i].Status())
	}
	return out
}

// trimLocked evicts the oldest finished job records beyond the history
// cap; m.mu must be held. Jobs still queued or running always survive.
func (m *Manager) trimLocked() {
	finished := 0
	for _, j := range m.order {
		if j.isFinished() {
			finished++
		}
	}
	if finished <= m.history {
		return
	}
	keep := m.order[:0]
	for _, j := range m.order {
		if finished > m.history && j.isFinished() {
			delete(m.jobs, j.ID)
			finished--
			continue
		}
		keep = append(keep, j)
	}
	m.order = keep
}

// Shutdown stops accepting new jobs and drains the admitted ones: queued
// and running jobs keep evaluating until they finish or ctx expires, at
// which point the stragglers are canceled and marked failed. It returns
// nil on a clean drain, ctx's error otherwise.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.cancelJobs()
		return nil
	case <-ctx.Done():
		m.cancelJobs()
		<-done
		return ctx.Err()
	}
}

// docCache is the content-addressed result cache: finished report
// documents keyed by JobSpec.Key under an LRU byte budget.
type docCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = most recently used
	index  map[string]*list.Element
}

type docEntry struct {
	key string
	doc []byte
}

func newDocCache(budget int64) *docCache {
	return &docCache{budget: budget, order: list.New(), index: make(map[string]*list.Element)}
}

// get returns the cached document and refreshes its recency. The bytes
// are shared and must not be modified.
func (c *docCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(e)
	return e.Value.(*docEntry).doc, true
}

// put inserts the document, evicting least-recently-used entries until
// the budget holds. Documents larger than the whole budget are not cached
// at all — one oversized sweep must not flush every other result.
func (c *docCache) put(key string, doc []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int64(len(doc)) > c.budget {
		return
	}
	if e, ok := c.index[key]; ok {
		c.order.MoveToFront(e) // racing jobs computed the same bytes; keep the first
		return
	}
	c.index[key] = c.order.PushFront(&docEntry{key: key, doc: doc})
	c.used += int64(len(doc))
	for c.used > c.budget {
		back := c.order.Back()
		ent := back.Value.(*docEntry)
		c.order.Remove(back)
		delete(c.index, ent.key)
		c.used -= int64(len(ent.doc))
	}
}
