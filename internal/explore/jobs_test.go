package explore_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/phys"
)

// The jobs-layer HTTP tests need registered experiments whose evaluators
// the tests can observe and gate. Registration is global and permanent,
// so it happens once; the z- prefix sorts them after the paper sweeps.
var (
	registerProbes sync.Once
	zprobeCalls    atomic.Int64
	zslowGate      = make(chan struct{})
)

func probeExperiments(t *testing.T) {
	t.Helper()
	registerProbes.Do(func() {
		explore.Register(&explore.Experiment{
			Name:  "zprobe",
			Title: "jobs-layer test probe (counts evaluations)",
			Axes:  []explore.Axis{explore.Ints("i", 1, 2)},
			Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
				zprobeCalls.Add(1)
				return []explore.Metric{{Name: "v", Value: float64(2 * in.Int("i"))}}, nil
			},
		})
		explore.Register(&explore.Experiment{
			Name:  "zslow",
			Title: "jobs-layer test probe (gated evaluations)",
			Axes:  []explore.Axis{explore.Ints("i", 1, 2, 3)},
			Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
				select {
				case <-zslowGate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return []explore.Metric{{Name: "v", Value: float64(in.Int("i"))}}, nil
			},
		})
	})
}

// newJobsServer starts an API server whose job manager is drained at
// cleanup, so a test that leaves a job gated cannot leak its goroutines
// into the next test.
func newJobsServer(t *testing.T, opts ...explore.ManagerOption) (*httptest.Server, *explore.Server) {
	t.Helper()
	api := explore.NewServer(opts...)
	srv := httptest.NewServer(api)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		api.Shutdown(ctx)
	})
	return srv, api
}

func postRun(t *testing.T, srv *httptest.Server, sweep, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/sweeps/"+sweep+":run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	doc, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, doc
}

// TestServeCacheHit: the second identical run is served from the result
// cache — byte-identical document, X-Cache: hit, no re-evaluation — and
// parallelism is excluded from the cache key.
func TestServeCacheHit(t *testing.T) {
	probeExperiments(t)
	srv, _ := newJobsServer(t)

	before := zprobeCalls.Load()
	resp1, doc1 := postRun(t, srv, "zprobe", `{"seed": 3}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: %s (%s)", resp1.Status, doc1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first run X-Cache = %q, want miss", got)
	}
	if n := zprobeCalls.Load() - before; n != 2 { // 2 unique points
		t.Fatalf("cold run evaluated %d points, want 2", n)
	}

	resp2, doc2 := postRun(t, srv, "zprobe", `{"seed": 3}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: %s", resp2.Status)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second run X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(doc1, doc2) {
		t.Errorf("cached document differs from cold run:\n%s\nvs\n%s", doc1, doc2)
	}
	if n := zprobeCalls.Load() - before; n != 2 {
		t.Errorf("cache hit re-evaluated: %d total evaluations, want 2", n)
	}

	// A different -parallel is the same result: parallelism is not part
	// of the key.
	resp3, doc3 := postRun(t, srv, "zprobe", `{"seed": 3, "parallel": 2}`)
	if got := resp3.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("different-parallelism run X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(doc1, doc3) {
		t.Error("different-parallelism run served different bytes")
	}

	// A different seed is a different key.
	resp4, _ := postRun(t, srv, "zprobe", `{"seed": 4}`)
	if got := resp4.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("different-seed run X-Cache = %q, want miss", got)
	}
}

// TestJobsCoalesce: a second submission of a key already in flight
// attaches to the running job instead of recomputing.
func TestJobsCoalesce(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	exp := &explore.Experiment{
		Name:  "t-coalesce",
		Title: "coalescing fixture",
		Axes:  []explore.Axis{explore.Ints("i", 1)},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			calls.Add(1)
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return []explore.Metric{{Name: "v", Value: 1}}, nil
		},
	}
	m := explore.NewManager()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	spec := explore.JobSpec{Phys: phys.Projected(), Seed: 1}
	j1, hit1, err := m.Submit(exp, spec)
	if err != nil || hit1 {
		t.Fatalf("first Submit: job=%v hit=%v err=%v", j1, hit1, err)
	}
	j2, hit2, err := m.Submit(exp, spec)
	if err != nil || hit2 {
		t.Fatalf("second Submit: hit=%v err=%v", hit2, err)
	}
	if j1 != j2 {
		t.Fatalf("in-flight submission did not coalesce: %s vs %s", j1.ID, j2.ID)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	doc, err := j1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("coalesced job evaluated %d times, want 1", n)
	}
	// After completion the key is cached: a third submission is an
	// instantly-done job with the same bytes.
	j3, hit3, err := m.Submit(exp, spec)
	if err != nil || !hit3 {
		t.Fatalf("post-completion Submit: hit=%v err=%v", hit3, err)
	}
	if j3 == j1 {
		t.Error("cache-hit submission reused the finished job record")
	}
	doc3, err := j3.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, doc3) {
		t.Error("cached document differs from the computed one")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("cache hit re-evaluated: %d calls", n)
	}
}

// TestJobsCacheBudget: a budget smaller than the document disables
// caching for it rather than evicting everything else.
func TestJobsCacheBudget(t *testing.T) {
	var calls atomic.Int64
	exp := &explore.Experiment{
		Name:  "t-budget",
		Title: "cache budget fixture",
		Axes:  []explore.Axis{explore.Ints("i", 1)},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			calls.Add(1)
			return []explore.Metric{{Name: "v", Value: 1}}, nil
		},
	}
	m := explore.NewManager(explore.WithCacheBytes(1))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	spec := explore.JobSpec{Phys: phys.Projected(), Seed: 1}
	for want := int64(1); want <= 2; want++ {
		j, hit, err := m.Submit(exp, spec)
		if err != nil || hit {
			t.Fatalf("Submit %d: hit=%v err=%v", want, hit, err)
		}
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		if n := calls.Load(); n != want {
			t.Fatalf("after run %d: %d evaluations", want, n)
		}
	}
}

// TestServeAsyncJobLifecycle is the acceptance path: 202 with a job id,
// monotone progress through queued/running, a done state whose document
// is byte-identical to what the synchronous (cached) endpoint serves.
func TestServeAsyncJobLifecycle(t *testing.T) {
	probeExperiments(t)
	srv, _ := newJobsServer(t)

	resp, body := postRun(t, srv, "zslow", `{"seed": 9, "async": true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async run: %s (%s)", resp.Status, body)
	}
	var st explore.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("202 body does not parse: %v\n%s", err, body)
	}
	if st.ID == "" || (st.State != explore.JobQueued && st.State != explore.JobRunning) {
		t.Fatalf("202 status: %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location = %q", loc)
	}
	if st.Total != 3 {
		t.Errorf("total = %d, want 3", st.Total)
	}

	// Release the three gated points and poll the job to done, checking
	// progress never regresses.
	go func() {
		for i := 0; i < 3; i++ {
			zslowGate <- struct{}{}
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	lastDone := 0
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish; last status %+v", st.ID, st)
		}
		resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			explore.JobStatus
			Report json.RawMessage `json:"report"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.Done < lastDone {
			t.Fatalf("progress went backwards: %d -> %d", lastDone, view.Done)
		}
		lastDone = view.Done
		st = view.JobStatus
		if st.State == explore.JobFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		if st.State == explore.JobDone {
			if st.Done != 3 || st.Total != 3 {
				t.Errorf("done job progress %d/%d, want 3/3", st.Done, st.Total)
			}
			if len(view.Report) == 0 {
				t.Error("done job carries no report")
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The raw report endpoint serves the document verbatim, and the
	// synchronous endpoint now serves the identical bytes from cache —
	// the async and sync paths share one contract.
	resp2, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("report endpoint: %s", resp2.Status)
	}
	respSync, docSync := postRun(t, srv, "zslow", `{"seed": 9}`)
	if respSync.StatusCode != http.StatusOK {
		t.Fatalf("sync run after async: %s", respSync.Status)
	}
	if got := respSync.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("sync run after async X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(raw, docSync) {
		t.Errorf("async report and sync document differ:\n%s\nvs\n%s", raw, docSync)
	}

	// The job shows up in the listing.
	resp3, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []explore.JobStatus `json:"jobs"`
	}
	err = json.NewDecoder(resp3.Body).Decode(&listing)
	resp3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range listing.Jobs {
		if j.ID == st.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("job %s missing from /v1/jobs (%d jobs listed)", st.ID, len(listing.Jobs))
	}
}

// TestJobsSemaphoreBounds: with one evaluation slot, two distinct jobs
// never evaluate concurrently — the second queues until the first ends.
func TestJobsSemaphoreBounds(t *testing.T) {
	var running, maxRunning atomic.Int64
	gate := make(chan struct{})
	exp := &explore.Experiment{
		Name:  "t-sem",
		Title: "semaphore fixture",
		Axes:  []explore.Axis{explore.Ints("i", 1)},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			cur := running.Add(1)
			defer running.Add(-1)
			for {
				seen := maxRunning.Load()
				if cur <= seen || maxRunning.CompareAndSwap(seen, cur) {
					break
				}
			}
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return []explore.Metric{{Name: "v", Value: float64(in.Seed)}}, nil
		},
	}
	m := explore.NewManager(explore.WithMaxEvaluations(1))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	j1, _, err := m.Submit(exp, explore.JobSpec{Phys: phys.Projected(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	j2, _, err := m.Submit(exp, explore.JobSpec{Phys: phys.Projected(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one may hold the slot; the other must still be queued.
	deadline := time.Now().Add(5 * time.Second)
	for running.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("no job reached the evaluator")
		}
		time.Sleep(time.Millisecond)
	}
	states := []explore.JobState{j1.Status().State, j2.Status().State}
	queued := 0
	for _, s := range states {
		if s == explore.JobQueued {
			queued++
		}
	}
	if queued != 1 {
		t.Errorf("job states %v, want exactly one queued", states)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	gate <- struct{}{}
	gate <- struct{}{}
	if _, err := j1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got := maxRunning.Load(); got != 1 {
		t.Errorf("max concurrent evaluations = %d, want 1", got)
	}
}

// TestJobsShutdownDrains: Shutdown rejects new work but lets the running
// job finish, and reports a clean drain.
func TestJobsShutdownDrains(t *testing.T) {
	gate := make(chan struct{})
	slow := &explore.Experiment{
		Name:  "t-drain-slow",
		Title: "drain fixture",
		Axes:  []explore.Axis{explore.Ints("i", 1)},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return []explore.Metric{{Name: "v", Value: 7}}, nil
		},
	}
	quick := &explore.Experiment{
		Name:  "t-drain-quick",
		Title: "drain fixture",
		Axes:  []explore.Axis{explore.Ints("i", 1)},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			return []explore.Metric{{Name: "v", Value: 1}}, nil
		},
	}
	m := explore.NewManager()
	j, _, err := m.Submit(slow, explore.JobSpec{Phys: phys.Projected(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- m.Shutdown(ctx)
	}()
	// Submissions are rejected once shutdown has begun.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, err := m.Submit(quick, explore.JobSpec{Phys: phys.Projected(), Seed: time.Now().UnixNano() % 1000})
		if errors.Is(err, explore.ErrShuttingDown) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("Submit still accepted after Shutdown began")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // let the running job finish
	if err := <-done; err != nil {
		t.Fatalf("Shutdown did not drain cleanly: %v", err)
	}
	doc, err := j.Document()
	if err != nil {
		t.Fatalf("drained job: %v", err)
	}
	if st := j.Status(); st.State != explore.JobDone || len(doc) == 0 {
		t.Errorf("drained job state %s, %d document bytes", st.State, len(doc))
	}
}

// TestJobSpecKey pins the cache-key contract: schema-version-qualified,
// sensitive to every output-determining input, insensitive to Parallel.
func TestJobSpecKey(t *testing.T) {
	base := explore.JobSpec{Sweep: "table4", Phys: phys.Projected(), Seed: 1, Engine: "analytic"}
	if base.Key() != base.Key() {
		t.Fatal("Key is not deterministic")
	}
	same := base
	same.Parallel = 8
	if same.Key() != base.Key() {
		t.Error("Parallel changed the key; outputs are parallelism-independent")
	}
	for name, mut := range map[string]func(*explore.JobSpec){
		"sweep":   func(s *explore.JobSpec) { s.Sweep = "table5" },
		"phys":    func(s *explore.JobSpec) { s.Phys = phys.Current() },
		"seed":    func(s *explore.JobSpec) { s.Seed = 2 },
		"engine":  func(s *explore.JobSpec) { s.Engine = "des" },
		"circuit": func(s *explore.JobSpec) { s.Circuit = "qubits 1\nh 0\n" },
	} {
		changed := base
		mut(&changed)
		if changed.Key() == base.Key() {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

// TestManagerSubmitValidation: nil experiments and bad engines are
// rejected before a job exists.
func TestManagerSubmitValidation(t *testing.T) {
	m := explore.NewManager()
	if _, _, err := m.Submit(nil, explore.JobSpec{}); err == nil {
		t.Error("Submit(nil) succeeded")
	}
	exp := &explore.Experiment{
		Name:  "t-submit-bad",
		Title: "validation fixture",
		Axes:  []explore.Axis{explore.Ints("i", 1)},
		Eval:  nopEval,
	}
	if _, _, err := m.Submit(exp, explore.JobSpec{Engine: "abacus"}); err == nil {
		t.Error("Submit with unknown engine succeeded")
	}
}

// TestServeJobEndpointErrors covers the job API's failure paths.
func TestServeJobEndpointErrors(t *testing.T) {
	srv, _ := newJobsServer(t)
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/report"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}
	// The report of an unfinished job is a conflict, not a 200 of garbage.
	probeExperiments(t)
	resp, body := postRun(t, srv, "zslow", `{"seed": 77, "async": true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async run: %s (%s)", resp.Status, body)
	}
	var st explore.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("report of unfinished job: %d, want 409", resp2.StatusCode)
	}
	// Unblock the gated points and wait the job out, so the tokens are
	// consumed inside this test rather than leaking into cleanup.
	go func() {
		for i := 0; i < 3; i++ {
			zslowGate <- struct{}{}
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", st.ID)
		}
		resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view explore.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.State == explore.JobDone || view.State == explore.JobFailed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
}
