package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/phys"
)

// In carries everything an evaluator needs at one design point: the
// coordinates (accessed by axis name), the physical technology point, and
// a per-point seed that is a pure function of (experiment, coordinates,
// base seed) — so stochastic evaluators reproduce regardless of which
// worker reaches the point first.
type In struct {
	// Phys is the ion-trap technology point of the whole sweep.
	Phys phys.Params
	// Seed is the deterministic per-point seed for stochastic evaluators.
	Seed int64
	// Engine is the canonical arch evaluation engine for the sweep
	// ("analytic" or "des"). Machine-backed experiments route their
	// evaluation through it; experiments with no machine model ignore it.
	Engine string
	// Obs, if non-nil, is the run's metrics registry. Evaluators may record
	// work counters on it (the Monte Carlo estimators count blocks decoded
	// and trials spent); nil disables recording at zero cost, and sweep
	// output is byte-identical either way.
	Obs *obs.Registry

	exp    *Experiment
	coords []Value
	cache  *evalCache
}

func (in In) value(axis string) Value {
	for i, a := range in.exp.Axes {
		if a.Name == axis {
			return in.coords[i]
		}
	}
	panic(fmt.Sprintf("explore: experiment %q has no axis %q", in.exp.Name, axis))
}

// Int returns the coordinate of the named axis as an integer.
func (in In) Int(axis string) int { return in.value(axis).Int() }

// Float returns the coordinate of the named axis as a float.
func (in In) Float(axis string) float64 { return in.value(axis).Float() }

// Str returns the coordinate of the named string axis.
func (in In) Str(axis string) string { return in.value(axis).Str() }

// Experiment is one named sweep of the design space: the axes spanning its
// cartesian product and the evaluator producing metrics at each point.
type Experiment struct {
	// Name is the registry key and the `cqla sweep <name>` argument.
	Name string
	// Title is the one-line description shown in usage listings.
	Title string
	// Axes are the swept dimensions; Run walks their cartesian product
	// with the last axis varying fastest.
	Axes []Axis
	// Eval computes the metrics at one point. It must be safe for
	// concurrent calls and should honor ctx for long evaluations.
	Eval func(ctx context.Context, in In) ([]Metric, error)
	// Post, if non-nil, runs once over the complete, ordered point set
	// after the sweep — for cross-point annotations such as Pareto
	// frontier membership. It may edit points in place and returns the
	// final set.
	Post func(pts []Point) []Point
	// Render, if non-nil, overrides the text/CSV cell for one metric at
	// one point — e.g. printing an unresolved Monte Carlo rate as
	// "<bound" instead of a bare number that looks measured. It returns
	// the replacement cell and true, or false to keep the default numeric
	// rendering. JSON output never goes through Render: machine-readable
	// documents carry the raw values.
	Render func(p Point, metric string, v float64) (string, bool)
}

// Size returns the number of points in the cartesian product.
func (e *Experiment) Size() int {
	n := 1
	for _, a := range e.Axes {
		n *= len(a.Values)
	}
	return n
}

// coordsAt decodes a cartesian-product index into one coordinate per axis,
// last axis fastest.
func (e *Experiment) coordsAt(idx int) []Value {
	coords := make([]Value, len(e.Axes))
	for i := len(e.Axes) - 1; i >= 0; i-- {
		n := len(e.Axes[i].Values)
		coords[i] = e.Axes[i].Values[idx%n]
		idx /= n
	}
	return coords
}

var registry = struct {
	sync.Mutex
	m map[string]*Experiment
}{m: make(map[string]*Experiment)}

// Register adds an experiment to the global registry. It panics on a nil
// experiment, empty name, missing evaluator, empty axes, or a duplicate
// name — all programmer errors, caught at init time.
func Register(e *Experiment) {
	if e == nil || e.Name == "" {
		panic("explore: Register with nil experiment or empty name")
	}
	if e.Eval == nil {
		panic(fmt.Sprintf("explore: experiment %q has no evaluator", e.Name))
	}
	if e.Size() == 0 {
		panic(fmt.Sprintf("explore: experiment %q has an empty design space", e.Name))
	}
	if e.Name != strings.ToLower(e.Name) {
		panic(fmt.Sprintf("explore: experiment name %q must be lower-case (Lookup is case-insensitive)", e.Name))
	}
	if e.Name == "circuit" {
		panic(`explore: the name "circuit" is reserved for custom-circuit runs (CircuitExperiment)`)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[e.Name]; dup {
		panic(fmt.Sprintf("explore: duplicate experiment %q", e.Name))
	}
	registry.m[e.Name] = e
}

// Lookup returns the named experiment or an error listing what exists.
// Matching is case-insensitive, so the CLI, the HTTP API and library
// callers share one rule instead of each lower-casing on their own.
func Lookup(name string) (*Experiment, error) {
	registry.Lock()
	defer registry.Unlock()
	e, ok := registry.m[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("explore: unknown experiment %q (have %v)", name, namesLocked())
	}
	return e, nil
}

// Names returns every registered experiment name, sorted.
func Names() []string {
	registry.Lock()
	defer registry.Unlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Experiments returns every registered experiment, sorted by name — the
// source for registry-generated usage listings.
func Experiments() []*Experiment {
	registry.Lock()
	defer registry.Unlock()
	out := make([]*Experiment, 0, len(registry.m))
	for _, n := range namesLocked() {
		out = append(out, registry.m[n])
	}
	return out
}
