// Package explore is the design-space exploration engine of the
// reproduction. The CQLA paper is at heart a sweep study — every table and
// figure walks input size × compute-block count × error-correction code ×
// physical parameters — and this package turns those sweeps into data:
//
//   - an experiment registry (Register, Lookup) naming every table and
//     figure of the paper plus free-form sweeps the paper never printed,
//     each declared as typed parameter axes and a per-point evaluator;
//   - a worker-pool runner (Run) that fans the cartesian product of the
//     axes across goroutines with deterministic per-point seeding,
//     memoized repeated points, context cancellation and progress
//     reporting — the same seed yields bit-identical results at any
//     parallelism;
//   - structured emitters (Report.JSON, Report.CSV, Report.Text) producing
//     machine-readable or aligned-table output from one []Point stream.
//
// cmd/cqla exposes the registry as `cqla sweep <name>`.
package explore

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Kind discriminates the parameter types a design-space axis can carry.
type Kind uint8

const (
	// Int parameters: input sizes, block counts, transfer widths, trials.
	Int Kind = iota
	// Float parameters: cache factors, overlap fractions, error rates.
	Float
	// String parameters: code names, encodings, policy labels.
	String
)

// String names the kind for listings and the serve endpoint.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	}
	return fmt.Sprintf("explore.Kind(%d)", uint8(k))
}

// Value is one coordinate setting along an axis: a tagged union over the
// parameter kinds of the CQLA design space.
type Value struct {
	kind Kind
	i    int
	f    float64
	s    string
}

// IntV wraps an integer parameter.
func IntV(v int) Value { return Value{kind: Int, i: v} }

// FloatV wraps a floating-point parameter.
func FloatV(v float64) Value { return Value{kind: Float, f: v} }

// StringV wraps a string parameter.
func StringV(v string) Value { return Value{kind: String, s: v} }

// Kind returns the parameter type of the value.
func (v Value) Kind() Kind { return v.kind }

// Int returns the value as an integer; float values truncate. It panics
// on a string value — like an unknown axis name, a numeric read of a
// string axis is an evaluator wiring bug, and failing loudly at the first
// point beats a full sweep of silently zeroed metrics.
func (v Value) Int() int {
	switch v.kind {
	case Float:
		return int(v.f)
	case String:
		panic(fmt.Sprintf("explore: Int() on string value %q", v.s))
	}
	return v.i
}

// Float returns the value as a float; integer values convert. It panics on
// a string value (see Int).
func (v Value) Float() float64 {
	switch v.kind {
	case Int:
		return float64(v.i)
	case String:
		panic(fmt.Sprintf("explore: Float() on string value %q", v.s))
	}
	return v.f
}

// Str returns the string payload. It panics on a numeric value (see Int).
func (v Value) Str() string {
	if v.kind != String {
		panic(fmt.Sprintf("explore: Str() on numeric value %s", v.String()))
	}
	return v.s
}

// String renders the value for keys, CSV cells and text tables. Floats use
// the shortest representation that round-trips, so the rendering is a
// faithful identity for memoization.
func (v Value) String() string {
	switch v.kind {
	case Int:
		return strconv.Itoa(v.i)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return v.s
	}
}

// MarshalJSON emits the underlying typed value (number or string). String
// values go through encoding/json, not strconv.Quote, whose control-char
// escapes are not valid JSON.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.kind == String {
		return json.Marshal(v.s)
	}
	return []byte(v.String()), nil
}

// Axis is one named, ordered dimension of a design space.
type Axis struct {
	Name   string
	Values []Value
}

// Ints declares an integer axis.
func Ints(name string, vs ...int) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, IntV(v))
	}
	return a
}

// Floats declares a floating-point axis.
func Floats(name string, vs ...float64) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, FloatV(v))
	}
	return a
}

// Strings declares a string axis.
func Strings(name string, vs ...string) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, StringV(v))
	}
	return a
}

// Metric is one named scalar an experiment computes at a point.
type Metric struct {
	Name  string
	Value float64
}

// Point is one evaluated configuration of a sweep: its coordinates in axis
// order plus the metrics the experiment computed there. Points come out of
// Run in cartesian-product order (last axis fastest), independent of how
// the worker pool scheduled them.
type Point struct {
	// Index is the point's position in the cartesian product.
	Index int
	// Coords holds one Value per experiment axis, in axis order.
	Coords []Value
	// Metrics holds the evaluator's results, in the order it returned them.
	Metrics []Metric
}

// Metric returns the named metric's value, or an error if the evaluator
// did not produce it.
func (p Point) Metric(name string) (float64, error) {
	for _, m := range p.Metrics {
		if m.Name == name {
			return m.Value, nil
		}
	}
	return 0, fmt.Errorf("explore: point %d has no metric %q", p.Index, name)
}

// MustMetric is Metric but panics on a missing name; for tests and
// post-processing hooks over metric sets the caller itself defined.
func (p Point) MustMetric(name string) float64 {
	v, err := p.Metric(name)
	if err != nil {
		panic(err)
	}
	return v
}

// key renders the point's coordinates as a memoization key: two points
// with identical coordinates share one evaluation.
func key(coords []Value) string {
	s := ""
	for i, v := range coords {
		if i > 0 {
			s += "\x1f"
		}
		s += v.String()
	}
	return s
}
