package explore

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// kindNames lists the built-in workload kinds as axis values; the kind
// string resolves back through arch.NewKind, so the axis and the kernel
// registry share one vocabulary.
func kindNames() []string {
	kinds := arch.Kinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return names
}

// workloadsExp compares every built-in kernel on one fixed machine — the
// Figure 8 reference point (Bacon-Shor, 36 blocks, 10 transfers) — across
// problem sizes. It is the sweep the paper's "varying available
// parallelism" argument calls for: the Toffoli-heavy adders, the
// rotation-cascade QFT, its communication-dominated swap variant and the
// controlled Shor stage all run through the same compile → cache → engine
// pipeline, under whichever engine `-engine` selects.
func workloadsExp() *Experiment {
	return &Experiment{
		Name:  "workloads",
		Title: "built-in kernels compared on the fixed Figure-8 machine",
		Axes: []Axis{
			Strings("workload", kindNames()...),
			Ints("size", 16, 32, 64),
		},
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			m, err := in.Machine(
				arch.WithCodeName("bacon-shor"),
				arch.WithBlocks(36),
				arch.WithTransfers(10),
			)
			if err != nil {
				return nil, err
			}
			w := arch.NewKind(arch.Kind(in.Str("workload")), in.Int("size"))
			res, err := in.Evaluate(ctx, m, w)
			if err != nil {
				return nil, err
			}
			return metricsFrom(res), nil
		},
	}
}

// workloadBlocksExp puts the workload axis on a machine-backed sweep: every
// kernel at a fixed 64-bit size across the block-budget axis the pareto
// sweep uses, showing where each workload's parallelism saturates.
func workloadBlocksExp() *Experiment {
	return &Experiment{
		Name:  "workload-blocks",
		Title: "kernel scaling across compute-block budgets, 64-bit Bacon-Shor",
		Axes: []Axis{
			Strings("workload", kindNames()...),
			Ints("blocks", 4, 9, 16, 25, 36, 49, 64),
		},
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			m, err := in.Machine(
				arch.WithCodeName("bacon-shor"),
				arch.WithBlocks(in.Int("blocks")),
				arch.WithTransfers(10),
			)
			if err != nil {
				return nil, err
			}
			w := arch.NewKind(arch.Kind(in.Str("workload")), 64)
			res, err := in.Evaluate(ctx, m, w)
			if err != nil {
				return nil, err
			}
			return metricsFrom(res), nil
		},
	}
}

// CircuitExperiment builds an unregistered experiment evaluating one custom
// circuit — typically parsed from the text format by circuit.Parse — on the
// reference machine across the block-budget axis. The circuit compiles once
// (arch.PlanCircuit); every point binds the one plan to its machine through
// the per-sweep cache, exactly as registry kernels do. Callers run it
// directly (`cqla sweep -circuit file.qc`, the serve API's circuit field);
// it is never registered, so its name cannot collide with built-ins.
func CircuitExperiment(name string, c *circuit.Circuit) (*Experiment, error) {
	plan, err := arch.PlanCircuit(name, c)
	if err != nil {
		return nil, err
	}
	stats := c.Stats()
	return &Experiment{
		Name: "circuit",
		Title: fmt.Sprintf("custom circuit %q (%d qubits, %d instructions) across block budgets",
			name, stats.Qubits, stats.Instructions),
		Axes: []Axis{
			Ints("blocks", 4, 9, 16, 25, 36, 49, 64),
		},
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			m, err := in.Machine(
				arch.WithCodeName("bacon-shor"),
				arch.WithBlocks(in.Int("blocks")),
				arch.WithTransfers(10),
			)
			if err != nil {
				return nil, err
			}
			res, err := in.EvaluatePlan(ctx, m, plan)
			if err != nil {
				return nil, err
			}
			return metricsFrom(res), nil
		},
	}, nil
}
