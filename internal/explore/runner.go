package explore

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/phys"
)

// isCancellation reports whether err is a context teardown rather than a
// substantive evaluator failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Options configures one sweep run.
type Options struct {
	// Phys is the ion-trap technology point handed to every evaluator.
	Phys phys.Params
	// Parallel is the worker count; 0 or less selects GOMAXPROCS. The
	// result is identical at any setting — only wall-clock time changes.
	Parallel int
	// Seed is the base seed that per-point seeds derive from.
	Seed int64
	// Engine selects the arch evaluation engine machine-backed experiments
	// run through: "analytic" (or empty, the default closed-form model) or
	// "des" (discrete-event simulation). Unknown names fail the run before
	// any point evaluates.
	Engine string
	// Progress, if non-nil, is called after each point completes with the
	// running count and the sweep total.
	//
	// Concurrency contract: although points evaluate on a worker pool,
	// Progress calls are funneled through the runner's single progress
	// mutex — the callback is never invoked concurrently with itself, and
	// successive calls observe a strictly increasing done count ending at
	// total. The callback may therefore mutate unsynchronized state (the
	// job manager hands Job.setProgress here; the CLI writes to stderr),
	// but it runs on a worker goroutine with the progress lock held, so it
	// must not block — a slow callback stalls every worker.
	Progress func(done, total int)
	// Obs, if non-nil, receives run metrics: per-point evaluation latency
	// (cqla_point_eval_seconds, labeled by sweep and engine) and
	// evaluation-cache hits/misses (cqla_evalcache_{hits,misses}_total,
	// labeled by sweep and kind). Instrument handles resolve once per Run;
	// the per-point cost is one clock read and a few atomic adds, and nil
	// disables everything at zero cost — sweep output is byte-identical
	// either way.
	Obs *obs.Registry
}

// Run walks the experiment's cartesian product across a worker pool and
// returns one Point per configuration, in product order. Repeated
// coordinates (axes listing the same value twice) are evaluated once and
// shared. Run returns the context's error if it is canceled mid-sweep,
// or the first evaluator error, canceling the remaining points either way.
func Run(ctx context.Context, exp *Experiment, opt Options) ([]Point, error) {
	if exp == nil {
		return nil, fmt.Errorf("explore: Run with nil experiment")
	}
	if exp.Eval == nil {
		return nil, fmt.Errorf("explore: experiment %q has no evaluator", exp.Name)
	}
	total := exp.Size()
	if total == 0 {
		return nil, fmt.Errorf("explore: experiment %q has an empty design space", exp.Name)
	}
	engine, err := arch.NormalizeEngine(opt.Engine)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}

	// Memoize repeated points: group product indices by coordinate key and
	// evaluate one representative per group.
	type group struct {
		rep  int // representative product index
		idxs []int
	}
	var uniq []*group
	seen := make(map[string]*group)
	keys := make([]string, 0, total)
	for i := 0; i < total; i++ {
		k := key(exp.coordsAt(i))
		g, ok := seen[k]
		if !ok {
			g = &group{rep: i}
			seen[k] = g
			uniq = append(uniq, g)
			keys = append(keys, k)
		}
		g.idxs = append(g.idxs, i)
	}

	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(uniq) {
		workers = len(uniq)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One evaluation cache per sweep: machines keyed on their resolved
	// options, compiled workloads shared across every point and worker.
	// Deterministic and byte-transparent — see evalCache.
	cache := newEvalCache(opt.Obs, exp.Name)

	// Observability handles resolve once here; nil stays nil all the way
	// down, so the disabled path costs a single pointer test per point.
	var pointDur *obs.Histogram
	if opt.Obs != nil {
		pointDur = opt.Obs.HistogramVec("cqla_point_eval_seconds",
			"Per-point evaluation latency of design-space sweeps.",
			nil, "sweep", "engine").With(exp.Name, engine)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	results := make([][]Metric, len(uniq))
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if runCtx.Err() != nil {
					continue
				}
				g := uniq[j]
				in := In{
					Phys:   opt.Phys,
					Seed:   pointSeed(opt.Seed, exp.Name, keys[j]),
					Engine: engine,
					Obs:    opt.Obs,
					exp:    exp,
					coords: exp.coordsAt(g.rep),
					cache:  cache,
				}
				// Span + latency sample per unique point. With no tracer in
				// ctx and a nil registry both lines below are no-ops that
				// allocate nothing.
				evalCtx, sp := obs.StartSpan(runCtx, "point")
				if sp != nil {
					sp.Annotate("sweep", exp.Name)
					sp.Annotate("coords", keys[j])
				}
				var t0 time.Time
				if pointDur != nil {
					t0 = obs.Now()
				}
				ms, err := exp.Eval(evalCtx, in)
				if pointDur != nil {
					pointDur.Observe(obs.Since(t0).Seconds())
				}
				sp.End()
				if err != nil {
					mu.Lock()
					// Prefer the root cause: a sibling evaluation collapsing
					// with context.Canceled after a real error tore the sweep
					// down must not mask that error, whichever reaches the
					// lock first.
					if firstErr == nil || (isCancellation(firstErr) && !isCancellation(err)) {
						firstErr = fmt.Errorf("explore: %s point %d: %w", exp.Name, g.rep, err)
					}
					mu.Unlock()
					cancel()
					continue
				}
				results[j] = ms
				mu.Lock()
				done += len(g.idxs)
				if opt.Progress != nil {
					opt.Progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for j := range uniq {
		select {
		case jobs <- j:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		// A cancellation-only failure is worth reporting as such only when
		// the parent context really was canceled — and then the parent's
		// own error is the truthful one.
		if isCancellation(firstErr) && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Assemble in product order; each point gets its own metric slice so a
	// Post hook can edit one member of a memoized group without aliasing
	// the others.
	pts := make([]Point, total)
	for j, g := range uniq {
		for _, i := range g.idxs {
			pts[i] = Point{
				Index:   i,
				Coords:  exp.coordsAt(i),
				Metrics: append([]Metric(nil), results[j]...),
			}
		}
	}
	if exp.Post != nil {
		pts = exp.Post(pts)
	}
	return pts, nil
}

// pointSeed derives the per-point seed from the base seed, the experiment
// name and the coordinate key — never from evaluation order — so results
// are reproducible at any parallelism.
func pointSeed(base int64, exp, key string) int64 {
	h := fnv.New64a()
	io.WriteString(h, exp)
	h.Write([]byte{0})
	io.WriteString(h, key)
	v := h.Sum64() + uint64(base)*0x9e3779b97f4a7c15
	// splitmix64 finalizer: decorrelates nearby base seeds.
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return int64(v)
}
