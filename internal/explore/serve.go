package explore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/arch"
	"repro/internal/phys"
)

// NewServer returns the registry-driven HTTP API behind `cqla serve`: a
// JSON view of every registered sweep and an endpoint that runs one and
// streams the same envelope the CLI emitters produce.
//
//	GET  /v1/sweeps              list every registered experiment
//	POST /v1/sweeps/{name}:run   run one sweep, JSON report response
//
// The run request body is optional JSON:
//
//	{"phys": "projected"|"current", "seed": 1, "parallel": 0,
//	 "engine": "analytic"|"des"}
//
// Every field defaults like the CLI flags. The sweep runs under the
// request's context, so a disconnecting client cancels the computation.
func NewServer() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sweeps", handleListSweeps)
	mux.HandleFunc("POST /v1/sweeps/{op}", handleRunSweep)
	return mux
}

// sweepInfo is one registry entry in the listing response.
type sweepInfo struct {
	Name   string     `json:"name"`
	Title  string     `json:"title"`
	Points int        `json:"points"`
	Axes   []axisInfo `json:"axes"`
}

type axisInfo struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Values []Value `json:"values"`
}

func handleListSweeps(w http.ResponseWriter, r *http.Request) {
	type listing struct {
		SchemaVersion int         `json:"schema_version"`
		Engines       []string    `json:"engines"`
		Sweeps        []sweepInfo `json:"sweeps"`
	}
	out := listing{SchemaVersion: arch.SchemaVersion, Engines: arch.EngineNames()}
	for _, e := range Experiments() {
		info := sweepInfo{Name: e.Name, Title: e.Title, Points: e.Size()}
		for _, a := range e.Axes {
			kind := Int
			if len(a.Values) > 0 {
				kind = a.Values[0].Kind()
			}
			info.Axes = append(info.Axes, axisInfo{Name: a.Name, Kind: kind.String(), Values: a.Values})
		}
		out.Sweeps = append(out.Sweeps, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// runRequest is the optional POST body of a sweep run.
type runRequest struct {
	Phys     string `json:"phys"`
	Seed     int64  `json:"seed"`
	Parallel int    `json:"parallel"`
	Engine   string `json:"engine"`
}

func handleRunSweep(w http.ResponseWriter, r *http.Request) {
	op := r.PathValue("op")
	name, ok := strings.CutSuffix(op, ":run")
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown operation %q (want {name}:run)", op))
		return
	}
	exp, err := Lookup(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	req := runRequest{Phys: "projected", Seed: 1}
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	p, err := physByName(req.Phys)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	engine, err := arch.NormalizeEngine(req.Engine)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pts, err := Run(r.Context(), exp, Options{
		Phys:     p,
		Parallel: req.Parallel,
		Seed:     req.Seed,
		Engine:   engine,
	})
	if err != nil {
		// The registry is open: an evaluator error is a server-side fault,
		// a canceled request context is the client's.
		status := http.StatusInternalServerError
		if r.Context().Err() != nil {
			status = 499 // client closed request
		}
		writeError(w, status, err)
		return
	}
	rep := &Report{Experiment: exp, Phys: p.Name, Seed: req.Seed, Engine: engine, Points: pts}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// Report.JSON is the CLI emitter: the endpoint serves byte-identical
	// documents to `cqla sweep <name> -format json`.
	if err := rep.JSON(w); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// physByName resolves the request's technology point.
func physByName(name string) (phys.Params, error) {
	switch name {
	case "", "projected":
		return phys.Projected(), nil
	case "current":
		return phys.Current(), nil
	}
	return phys.Params{}, fmt.Errorf("unknown phys %q (have projected, current)", name)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
