package explore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/phys"
)

// Server is the registry-driven HTTP API behind `cqla serve`: a JSON view
// of every registered sweep, a run endpoint, and the job API over the
// Manager in jobs.go.
//
//	GET  /v1/sweeps               list every registered experiment
//	POST /v1/sweeps/{name}:run    run one sweep (sync, or async via body)
//	GET  /v1/jobs                 list retained jobs, newest first
//	GET  /v1/jobs/{id}            job state, progress, report when done
//	GET  /v1/jobs/{id}/report     raw report document of a done job
//
// The run request body is optional JSON:
//
//	{"phys": "projected"|"current", "seed": 1, "parallel": 0,
//	 "engine": "analytic"|"des", "async": false, "circuit": ""}
//
// Every field defaults like the CLI flags. The circuit field carries a
// custom circuit in the text format of docs/workload-format.md and is
// valid only on POST /v1/sweeps/circuit:run, which evaluates it across
// block budgets exactly like `cqla sweep -circuit file.qc`. Runs are
// jobs: identical requests — same (sweep, phys, seed, engine, circuit)
// at any parallelism — coalesce onto one evaluation and repeat ones are
// served from the result cache (the X-Cache header says which). A synchronous run streams the
// finished document; an async one returns 202 with a job id to poll.
// Jobs run detached from the request context, so a disconnecting client
// no longer wastes the computation: the result still lands in the cache.
//
// With WithObservability the server also exposes GET /metrics (Prometheus
// text format backed by the same registry the job manager and sweep
// runner write to), GET /v1/version reports the binary's build identity,
// and WithPprof mounts net/http/pprof under /debug/pprof/. Every request
// is access-logged through the WithLogger logger and counted in
// cqla_http_requests_total / cqla_http_request_seconds, labeled by route
// pattern — never by raw path, so cardinality stays bounded.
type Server struct {
	mux  *http.ServeMux
	jobs *Manager
	log  *slog.Logger

	httpReqs *obs.CounterVec   // nil when observability is off
	httpDur  *obs.HistogramVec // nil when observability is off
}

// NewServer returns the HTTP API with a fresh job manager.
func NewServer(opts ...ManagerOption) *Server {
	cfg := defaultManagerConfig()
	for _, o := range opts {
		o(&cfg)
	}
	s := &Server{mux: http.NewServeMux(), jobs: newManager(cfg), log: cfg.log}
	s.mux.HandleFunc("GET /v1/sweeps", handleListSweeps)
	s.mux.HandleFunc("POST /v1/sweeps/{op}", s.handleRunSweep)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleJobReport)
	s.mux.HandleFunc("GET /v1/version", handleVersion)
	s.mux.Handle("GET /metrics", cfg.obs.MetricsHandler())
	if cfg.pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if cfg.obs != nil {
		s.httpReqs = cfg.obs.CounterVec("cqla_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "route", "code")
		s.httpDur = cfg.obs.HistogramVec("cqla_http_request_seconds",
			"HTTP request latency by route pattern.", nil, "route")
	}
	return s
}

// statusWriter records the response status for access logs and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	start := obs.Now()
	s.mux.ServeHTTP(sw, r)
	elapsed := obs.Since(start)
	if sw.status == 0 {
		sw.status = http.StatusOK // handler wrote nothing: implicit 200
	}
	// r.Pattern is the matched mux route ("POST /v1/sweeps/{op}"); an
	// unmatched request keeps the label space finite under path scanning.
	route := r.Pattern
	if route == "" {
		route = "unmatched"
	}
	if s.httpReqs != nil {
		s.httpReqs.With(route, strconv.Itoa(sw.status)).Inc()
		s.httpDur.With(route).Observe(elapsed.Seconds())
	}
	s.log.Info("http request",
		"method", r.Method, "path", r.URL.Path, "route", route,
		"status", sw.status, "dur_ms", float64(elapsed.Microseconds())/1000,
		"remote", r.RemoteAddr)
}

// handleVersion reports the binary's build identity: module version, Go
// toolchain, and the VCS revision stamped by `go build`.
func handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		SchemaVersion int `json:"schema_version"`
		obs.BuildInfo
	}{SchemaVersion: arch.SchemaVersion, BuildInfo: obs.Build()})
}

// Shutdown stops accepting jobs and drains the in-flight ones; see
// Manager.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error { return s.jobs.Shutdown(ctx) }

// sweepInfo is one registry entry in the listing response.
type sweepInfo struct {
	Name   string     `json:"name"`
	Title  string     `json:"title"`
	Points int        `json:"points"`
	Axes   []axisInfo `json:"axes"`
}

type axisInfo struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Values []Value `json:"values"`
}

func handleListSweeps(w http.ResponseWriter, r *http.Request) {
	type listing struct {
		SchemaVersion int         `json:"schema_version"`
		Engines       []string    `json:"engines"`
		Sweeps        []sweepInfo `json:"sweeps"`
	}
	out := listing{SchemaVersion: arch.SchemaVersion, Engines: arch.EngineNames()}
	for _, e := range Experiments() {
		info := sweepInfo{Name: e.Name, Title: e.Title, Points: e.Size()}
		for _, a := range e.Axes {
			kind := Int
			if len(a.Values) > 0 {
				kind = a.Values[0].Kind()
			}
			info.Axes = append(info.Axes, axisInfo{Name: a.Name, Kind: kind.String(), Values: a.Values})
		}
		out.Sweeps = append(out.Sweeps, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// runRequest is the optional POST body of a sweep run.
type runRequest struct {
	Phys     string `json:"phys"`
	Seed     int64  `json:"seed"`
	Parallel int    `json:"parallel"`
	Engine   string `json:"engine"`
	// Async makes the endpoint return 202 with a job id immediately
	// instead of streaming the finished document.
	Async bool `json:"async"`
	// Circuit is a custom circuit in the text format, evaluated across
	// block budgets. Valid only on the "circuit" operation; every other
	// sweep's output is fully determined without it.
	Circuit string `json:"circuit"`
}

// circuitSweepName is the reserved operation name for custom-circuit runs:
// POST /v1/sweeps/circuit:run with a non-empty circuit body field. Register
// panics on registry names that would collide (CircuitExperiment is never
// registered), so Lookup can only fail for it.
const circuitSweepName = "circuit"

func (s *Server) handleRunSweep(w http.ResponseWriter, r *http.Request) {
	op := r.PathValue("op")
	name, ok := strings.CutSuffix(op, ":run")
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown operation %q (want {name}:run)", op))
		return
	}
	// The body is decoded before the name resolves: the circuit operation
	// has no registry entry — its experiment is built from the body.
	req := runRequest{Phys: "projected", Seed: 1}
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if !errors.Is(err, io.EOF) { // a missing body means all-defaults
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	} else if _, err := dec.Token(); err != io.EOF {
		// A second JSON value or trailing garbage after the request object
		// is a malformed request, not ignorable padding.
		writeError(w, http.StatusBadRequest, fmt.Errorf("trailing data after request body"))
		return
	}
	var exp *Experiment
	switch {
	case strings.EqualFold(name, circuitSweepName):
		if req.Circuit == "" {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("the %s operation requires a circuit field (text format, see docs/workload-format.md)", circuitSweepName))
			return
		}
		c, err := circuit.ParseString(req.Circuit)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad circuit: %w", err))
			return
		}
		if exp, err = CircuitExperiment("request", c); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad circuit: %w", err))
			return
		}
	case req.Circuit != "":
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("the circuit field is only valid on the %s operation, not %q", circuitSweepName, name))
		return
	default:
		var err error
		exp, err = Lookup(name) // case-insensitive, matching the CLI
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
	}
	p, err := physByName(req.Phys)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	engine, err := arch.NormalizeEngine(req.Engine)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, hit, err := s.jobs.Submit(exp, JobSpec{
		Phys:     p,
		Seed:     req.Seed,
		Engine:   engine,
		Parallel: req.Parallel,
		Circuit:  req.Circuit,
	})
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrShuttingDown) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	if req.Async {
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job.Status())
		return
	}
	doc, err := job.Wait(r.Context())
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			writeError(w, 499, err) // client closed request
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, err) // server shutdown
		default:
			// The registry is open: an evaluator error is a server-side fault.
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	cacheState := "miss"
	if hit {
		cacheState = "hit"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.WriteHeader(http.StatusOK)
	// The document is Report.JSON's output: the endpoint serves
	// byte-identical documents to `cqla sweep <name> -format json`.
	w.Write(doc)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: s.jobs.Jobs()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	view := struct {
		JobStatus
		Report json.RawMessage `json:"report,omitempty"`
	}{JobStatus: j.Status()}
	if view.State == JobDone {
		if doc, err := j.Document(); err == nil {
			view.Report = doc
		}
	}
	writeJSON(w, http.StatusOK, view)
}

// handleJobReport serves the finished document verbatim — the same bytes
// the synchronous endpoint and the CLI emitter produce.
func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	st := j.Status()
	switch st.State {
	case JobDone:
		doc, err := j.Document()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(doc)
	case JobFailed:
		writeError(w, http.StatusInternalServerError, errors.New(st.Error))
	default:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", st.ID, st.State))
	}
}

// physByName resolves the request's technology point.
func physByName(name string) (phys.Params, error) {
	switch name {
	case "", "projected":
		return phys.Projected(), nil
	case "current":
		return phys.Current(), nil
	}
	return phys.Params{}, fmt.Errorf("unknown phys %q (have projected, current)", name)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
