package explore_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/explore"
	"repro/internal/phys"
)

func serveTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(explore.NewServer())
	t.Cleanup(srv.Close)
	return srv
}

func TestServeListSweeps(t *testing.T) {
	srv := serveTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sweeps: %s", resp.Status)
	}
	var doc struct {
		SchemaVersion int      `json:"schema_version"`
		Engines       []string `json:"engines"`
		Sweeps        []struct {
			Name   string `json:"name"`
			Title  string `json:"title"`
			Points int    `json:"points"`
			Axes   []struct {
				Name   string `json:"name"`
				Kind   string `json:"kind"`
				Values []any  `json:"values"`
			} `json:"axes"`
		} `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != arch.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", doc.SchemaVersion, arch.SchemaVersion)
	}
	if len(doc.Engines) != 2 {
		t.Errorf("engines = %v", doc.Engines)
	}
	names := map[string]bool{}
	for _, s := range doc.Sweeps {
		names[s.Name] = true
		if s.Points < 1 || s.Title == "" || len(s.Axes) == 0 {
			t.Errorf("degenerate listing entry: %+v", s)
		}
	}
	for _, want := range []string{"table4", "table5", "xval", "montecarlo"} {
		if !names[want] {
			t.Errorf("listing is missing %q (have %v)", want, names)
		}
	}
}

func TestServeRunSweep(t *testing.T) {
	srv := serveTestServer(t)
	resp, err := http.Post(srv.URL+"/v1/sweeps/table2:run", "application/json",
		strings.NewReader(`{"seed": 7, "engine": "analytic"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST table2:run: %s", resp.Status)
	}
	var doc struct {
		SchemaVersion int    `json:"schema_version"`
		Experiment    string `json:"experiment"`
		Seed          int64  `json:"seed"`
		Engine        string `json:"engine"`
		Points        []struct {
			Params  map[string]any     `json:"params"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "table2" || doc.Seed != 7 || doc.Engine != "analytic" {
		t.Errorf("report header: %+v", doc)
	}
	if doc.SchemaVersion != arch.SchemaVersion {
		t.Errorf("schema_version = %d", doc.SchemaVersion)
	}
	if len(doc.Points) != 4 { // 2 codes x 2 levels
		t.Fatalf("got %d points, want 4", len(doc.Points))
	}
	if doc.Points[0].Metrics["area_mm2"] <= 0 {
		t.Error("unpopulated point metrics")
	}
}

// TestServeMatchesCLIEmitter: the endpoint must serve byte-identical
// documents to the JSON emitter, so HTTP clients and file consumers share
// one contract.
func TestServeMatchesCLIEmitter(t *testing.T) {
	srv := serveTestServer(t)
	resp, err := http.Post(srv.URL+"/v1/sweeps/fig6b:run", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	exp, err := explore.Lookup("fig6b")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{Phys: phys.Projected(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	rep := &explore.Report{Experiment: exp, Phys: "projected", Seed: 1, Engine: "analytic", Points: pts}
	if err := rep.JSON(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("served document differs from CLI emitter:\n--- served ---\n%s\n--- emitter ---\n%s", got.String(), want.String())
	}
}

// TestServeCaseInsensitiveSweepName: the CLI lower-cases sweep names, so
// the HTTP endpoint must accept the same spellings — parity lives in
// Lookup itself.
func TestServeCaseInsensitiveSweepName(t *testing.T) {
	srv := serveTestServer(t)
	for _, name := range []string{"Table2", "TABLE2"} {
		resp, err := http.Post(srv.URL+"/v1/sweeps/"+name+":run", "application/json",
			strings.NewReader(`{"seed": 7}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("POST %s:run: %s, want 200", name, resp.Status)
		}
	}
}

// TestServeRejectsTrailingBody: trailing tokens after the JSON request
// object are a malformed request, not ignorable padding.
func TestServeRejectsTrailingBody(t *testing.T) {
	srv := serveTestServer(t)
	for _, body := range []string{
		`{"seed": 1}{"seed": 2}`,
		`{"seed": 1} trailing garbage`,
		`{"seed": 1} 42`,
	} {
		resp, err := http.Post(srv.URL+"/v1/sweeps/table2:run", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]string
		json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400 (%v)", body, resp.StatusCode, doc)
		}
	}
}

func TestServeErrors(t *testing.T) {
	srv := serveTestServer(t)
	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"unknown sweep", "/v1/sweeps/table99:run", "", http.StatusNotFound},
		{"missing :run", "/v1/sweeps/table4", "", http.StatusNotFound},
		{"bad engine", "/v1/sweeps/table2:run", `{"engine": "abacus"}`, http.StatusBadRequest},
		{"bad phys", "/v1/sweeps/table2:run", `{"phys": "fantasy"}`, http.StatusBadRequest},
		{"bad body", "/v1/sweeps/table2:run", `{"seed": "notanumber"}`, http.StatusBadRequest},
		{"unknown field", "/v1/sweeps/table2:run", `{"format": "csv"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]string
		json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%v)", c.name, resp.StatusCode, c.status, doc)
		}
		if doc["error"] == "" {
			t.Errorf("%s: error responses must carry an error message", c.name)
		}
	}
	// Wrong method on the run endpoint.
	resp, err := http.Get(srv.URL + "/v1/sweeps/table2:run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on run endpoint: status %d, want 405", resp.StatusCode)
	}
}
