package explore_test

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/explore"
)

func emitFixture(t *testing.T) *explore.Report {
	t.Helper()
	exp := &explore.Experiment{
		Name:  "t-emit",
		Title: "emitter fixture",
		Axes: []explore.Axis{
			explore.Ints("size", 8, 16),
			explore.Strings("code", "steane"),
			explore.Floats("factor", 1.5),
		},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			return []explore.Metric{
				{Name: "double", Value: 2 * float64(in.Int("size"))},
				{Name: "factor_echo", Value: in.Float("factor")},
			}, nil
		},
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{Parallel: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return &explore.Report{Experiment: exp, Phys: "projected", Seed: 3, Points: pts}
}

func TestEmitJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := emitFixture(t).JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Phys       string `json:"phys"`
		Seed       int64  `json:"seed"`
		Points     []struct {
			Params  map[string]any     `json:"params"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if doc.Experiment != "t-emit" || doc.Seed != 3 || doc.Phys != "projected" {
		t.Errorf("bad header: %+v", doc)
	}
	if len(doc.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(doc.Points))
	}
	p0 := doc.Points[0]
	if p0.Params["size"] != float64(8) || p0.Params["code"] != "steane" || p0.Params["factor"] != 1.5 {
		t.Errorf("typed params did not round-trip: %v", p0.Params)
	}
	if p0.Metrics["double"] != 16 {
		t.Errorf("metric double = %g, want 16", p0.Metrics["double"])
	}
}

func TestEmitCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := emitFixture(t).CSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d CSV records, want header + 2 rows", len(recs))
	}
	wantHeader := []string{"size", "code", "factor", "double", "factor_echo"}
	if strings.Join(recs[0], "|") != strings.Join(wantHeader, "|") {
		t.Errorf("header %v, want %v", recs[0], wantHeader)
	}
	if recs[1][0] != "8" || recs[1][3] != "16" {
		t.Errorf("first data row %v", recs[1])
	}
}

func TestEmitText(t *testing.T) {
	var buf bytes.Buffer
	if err := emitFixture(t).Text(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"t-emit", "emitter fixture", "seed 3", "2 points", "size", "double"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // caption + header + 2 rows
		t.Errorf("got %d text lines, want 4:\n%s", len(lines), out)
	}
}

// TestEmitJSONNonFinite: the registry is open to new evaluators, so the
// JSON emitter must keep documents parseable even when a metric comes out
// NaN or infinite.
func TestEmitJSONNonFinite(t *testing.T) {
	exp := &explore.Experiment{
		Name: "t-nonfinite",
		// Control character in the title: Go %q-style escaping would emit
		// \x1f, which JSON parsers reject.
		Title: "non-finite \x1f fixture",
		Axes:  []explore.Axis{explore.Strings("s", "ctl\x01val"), explore.Ints("i", 1)},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			return []explore.Metric{
				{Name: "inf", Value: math.Inf(1)},
				{Name: "nan", Value: math.NaN()},
				{Name: "ok", Value: 2.5},
			}, nil
		},
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r := &explore.Report{Experiment: exp, Phys: "projected", Seed: 1, Points: pts}
	if err := r.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON with non-finite metrics does not parse: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `"inf": null`) || !strings.Contains(buf.String(), `"nan": null`) {
		t.Errorf("non-finite metrics not emitted as null:\n%s", buf.String())
	}
}

// TestEmitCSVNonFinite: NaN/Inf cells break downstream CSV parsers, so
// non-finite metrics emit empty cells — the missing-metric convention.
func TestEmitCSVNonFinite(t *testing.T) {
	exp := &explore.Experiment{
		Name:  "t-csv-nonfinite",
		Title: "non-finite CSV fixture",
		Axes:  []explore.Axis{explore.Ints("i", 1)},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			return []explore.Metric{
				{Name: "inf", Value: math.Inf(1)},
				{Name: "neginf", Value: math.Inf(-1)},
				{Name: "nan", Value: math.NaN()},
				{Name: "ok", Value: 2.5},
			}, nil
		},
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r := &explore.Report{Experiment: exp, Phys: "projected", Seed: 1, Points: pts}
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d CSV records, want header + 1 row", len(recs))
	}
	// Columns: i, inf, neginf, nan, ok.
	row := recs[1]
	for col, want := range map[int]string{1: "", 2: "", 3: "", 4: "2.5"} {
		if row[col] != want {
			t.Errorf("%s cell = %q, want %q (row %v)", recs[0][col], row[col], want, row)
		}
	}
}

func TestEmitUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	err := emitFixture(t).Emit(&buf, "yaml")
	if err == nil || !strings.Contains(err.Error(), "yaml") {
		t.Fatalf("Emit with unknown format: %v", err)
	}
}
