package explore_test

import (
	"context"
	"testing"

	"repro/internal/cqla"
	"repro/internal/explore"
	"repro/internal/phys"
)

// TestTable4Golden routes the Table 4 experiment through the engine and
// demands exact (bitwise) agreement with the hand-coded serial path
// cqla.Table4 — the engine must be a faithful re-plumbing, not an
// approximation. The engine's product order is size x budget x code with
// code fastest, so each Table4Row corresponds to two consecutive points.
func TestTable4Golden(t *testing.T) {
	p := phys.Projected()
	exp, err := explore.Lookup("table4")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{Phys: p, Parallel: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := cqla.Table4(p)
	if len(pts) != 2*len(rows) {
		t.Fatalf("engine produced %d points for %d table rows", len(pts), len(rows))
	}
	for i, row := range rows {
		st, bs := pts[2*i], pts[2*i+1]
		for _, pt := range []explore.Point{st, bs} {
			if got := pt.Coords[0].Int(); got != row.InputSize {
				t.Fatalf("row %d: engine point has size %d, want %d", i, got, row.InputSize)
			}
			if got := int(pt.MustMetric("blocks")); got != row.Blocks {
				t.Fatalf("row %d: engine point has %d blocks, want %d", i, got, row.Blocks)
			}
		}
		if st.Coords[2].Str() != "steane" || bs.Coords[2].Str() != "bacon-shor" {
			t.Fatalf("row %d: unexpected code order %q, %q", i, st.Coords[2].Str(), bs.Coords[2].Str())
		}
		check := func(name string, got, want float64) {
			if got != want {
				t.Errorf("row %d (n=%d k=%d): %s = %v, want exactly %v",
					i, row.InputSize, row.Blocks, name, got, want)
			}
		}
		check("steane area", st.MustMetric("area_reduction"), row.AreaReducedSteane)
		check("steane speedup", st.MustMetric("speedup"), row.SpeedupSteane)
		check("steane gain", st.MustMetric("gain_product"), row.GainProductSteane)
		check("bacon-shor area", bs.MustMetric("area_reduction"), row.AreaReducedBS)
		check("bacon-shor speedup", bs.MustMetric("speedup"), row.SpeedupBS)
		check("bacon-shor gain", bs.MustMetric("gain_product"), row.GainProductBS)
	}
}

// TestTable5Golden routes the Table 5 experiment through the engine (and
// therefore through arch's analytic engine) and demands exact agreement
// with the hand-coded serial path cqla.Table5. The experiment's product
// order — code x transfers x size, size fastest — matches the row order of
// the hand-coded loop, so points and rows correspond one to one.
func TestTable5Golden(t *testing.T) {
	p := phys.Projected()
	exp, err := explore.Lookup("table5")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{Phys: p, Parallel: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := cqla.Table5(p)
	if len(pts) != len(rows) {
		t.Fatalf("engine produced %d points for %d table rows", len(pts), len(rows))
	}
	for i, row := range rows {
		pt := pts[i]
		if got := pt.Coords[1].Int(); got != row.ParallelTransfers {
			t.Fatalf("row %d: engine point has %d transfers, want %d", i, got, row.ParallelTransfers)
		}
		if got := pt.Coords[2].Int(); got != row.AdderSize {
			t.Fatalf("row %d: engine point has size %d, want %d", i, got, row.AdderSize)
		}
		check := func(name string, got, want float64) {
			if got != want {
				t.Errorf("row %d (%s xfer=%d n=%d): %s = %v, want exactly %v",
					i, row.Code, row.ParallelTransfers, row.AdderSize, name, got, want)
			}
		}
		check("l1_speedup", pt.MustMetric("l1_speedup"), row.L1Speedup)
		check("l2_speedup", pt.MustMetric("l2_speedup"), row.L2Speedup)
		check("adder_speedup", pt.MustMetric("adder_speedup"), row.AdderSpeedup)
		check("area_reduction", pt.MustMetric("area_reduction"), row.AreaReduced)
		check("gain_product", pt.MustMetric("gain_product"), row.GainProduct)
	}
}

// TestFig7Golden pins the cache-hit-rate sweep to the hand-coded cqla.Fig7
// path, exactly.
func TestFig7Golden(t *testing.T) {
	p := phys.Projected()
	exp, err := explore.Lookup("fig7")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{Phys: p, Parallel: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := cqla.Fig7(p)
	if len(pts) != len(rows) {
		t.Fatalf("engine produced %d points for %d figure rows", len(pts), len(rows))
	}
	for i, row := range rows {
		pt := pts[i]
		if got := pt.Coords[0].Int(); got != row.AdderSize {
			t.Fatalf("row %d: engine point has size %d, want %d", i, got, row.AdderSize)
		}
		if got := int(pt.MustMetric("cache_qubits")); got != row.CacheSize {
			t.Errorf("row %d: cache_qubits = %d, want %d", i, got, row.CacheSize)
		}
		if got := pt.MustMetric("naive_hit"); got != row.NaiveRate {
			t.Errorf("row %d: naive_hit = %v, want exactly %v", i, got, row.NaiveRate)
		}
		if got := pt.MustMetric("optimized_hit"); got != row.OptimRate {
			t.Errorf("row %d: optimized_hit = %v, want exactly %v", i, got, row.OptimRate)
		}
	}
}

// TestEngineAxisDES runs the acceptance path: table4, table5 and the new
// xval sweep all evaluate with -engine des and come back with populated
// simulation envelopes.
func TestEngineAxisDES(t *testing.T) {
	if testing.Short() {
		t.Skip("discrete-event sweeps are expensive")
	}
	p := phys.Projected()
	cases := []struct {
		sweep  string
		metric string // a simulation-only metric that must be present and positive
	}{
		{"table4", "makespan_s"},
		{"table5", "makespan_s"},
		{"xval", "des_makespan_s"},
	}
	for _, c := range cases {
		exp, err := explore.Lookup(c.sweep)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := explore.Run(context.Background(), exp, explore.Options{Phys: p, Seed: 1, Engine: "des"})
		if err != nil {
			t.Fatalf("%s -engine des: %v", c.sweep, err)
		}
		if len(pts) != exp.Size() {
			t.Fatalf("%s: %d points, want %d", c.sweep, len(pts), exp.Size())
		}
		for _, pt := range pts {
			v, err := pt.Metric(c.metric)
			if err != nil {
				t.Fatalf("%s point %d: %v (metrics %v)", c.sweep, pt.Index, err, pt.Metrics)
			}
			if v <= 0 {
				t.Errorf("%s point %d: %s = %g, want > 0", c.sweep, pt.Index, c.metric, v)
			}
		}
	}
	// The engine axis must reject unknown names before evaluating.
	exp, _ := explore.Lookup("table4")
	if _, err := explore.Run(context.Background(), exp, explore.Options{Phys: p, Engine: "abacus"}); err == nil {
		t.Error("unknown engine should fail the run")
	}
}

// TestParetoFrontierMarks sanity-checks the cross-point Post hook: at
// least one point is on the frontier, the best gain product is on it, and
// no frontier point is dominated.
func TestParetoFrontierMarks(t *testing.T) {
	if testing.Short() {
		t.Skip("pareto sweep is expensive")
	}
	exp, err := explore.Lookup("pareto")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{Phys: phys.Projected(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	frontier := 0
	bestGain, bestOn := 0.0, false
	for _, pt := range pts {
		on := pt.MustMetric("on_frontier") == 1
		if on {
			frontier++
		}
		if g := pt.MustMetric("gain_product"); g > bestGain {
			bestGain, bestOn = g, on
		}
	}
	if frontier == 0 {
		t.Fatal("no point marked on the Pareto frontier")
	}
	if !bestOn {
		t.Error("the best-gain-product point is not on the frontier")
	}
	for _, pt := range pts {
		if pt.MustMetric("on_frontier") != 1 {
			continue
		}
		for _, other := range pts {
			if other.MustMetric("area_reduction") > pt.MustMetric("area_reduction") &&
				other.MustMetric("adder_speedup") > pt.MustMetric("adder_speedup") {
				t.Fatalf("frontier point %d is dominated by point %d", pt.Index, other.Index)
			}
		}
	}
}
