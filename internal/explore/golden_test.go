package explore_test

import (
	"context"
	"testing"

	"repro/internal/cqla"
	"repro/internal/explore"
	"repro/internal/phys"
)

// TestTable4Golden routes the Table 4 experiment through the engine and
// demands exact (bitwise) agreement with the hand-coded serial path
// cqla.Table4 — the engine must be a faithful re-plumbing, not an
// approximation. The engine's product order is size x budget x code with
// code fastest, so each Table4Row corresponds to two consecutive points.
func TestTable4Golden(t *testing.T) {
	p := phys.Projected()
	exp, err := explore.Lookup("table4")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{Phys: p, Parallel: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := cqla.Table4(p)
	if len(pts) != 2*len(rows) {
		t.Fatalf("engine produced %d points for %d table rows", len(pts), len(rows))
	}
	for i, row := range rows {
		st, bs := pts[2*i], pts[2*i+1]
		for _, pt := range []explore.Point{st, bs} {
			if got := pt.Coords[0].Int(); got != row.InputSize {
				t.Fatalf("row %d: engine point has size %d, want %d", i, got, row.InputSize)
			}
			if got := int(pt.MustMetric("blocks")); got != row.Blocks {
				t.Fatalf("row %d: engine point has %d blocks, want %d", i, got, row.Blocks)
			}
		}
		if st.Coords[2].Str() != "steane" || bs.Coords[2].Str() != "bacon-shor" {
			t.Fatalf("row %d: unexpected code order %q, %q", i, st.Coords[2].Str(), bs.Coords[2].Str())
		}
		check := func(name string, got, want float64) {
			if got != want {
				t.Errorf("row %d (n=%d k=%d): %s = %v, want exactly %v",
					i, row.InputSize, row.Blocks, name, got, want)
			}
		}
		check("steane area", st.MustMetric("area_reduction"), row.AreaReducedSteane)
		check("steane speedup", st.MustMetric("speedup"), row.SpeedupSteane)
		check("steane gain", st.MustMetric("gain_product"), row.GainProductSteane)
		check("bacon-shor area", bs.MustMetric("area_reduction"), row.AreaReducedBS)
		check("bacon-shor speedup", bs.MustMetric("speedup"), row.SpeedupBS)
		check("bacon-shor gain", bs.MustMetric("gain_product"), row.GainProductBS)
	}
}

// TestParetoFrontierMarks sanity-checks the cross-point Post hook: at
// least one point is on the frontier, the best gain product is on it, and
// no frontier point is dominated.
func TestParetoFrontierMarks(t *testing.T) {
	if testing.Short() {
		t.Skip("pareto sweep is expensive")
	}
	exp, err := explore.Lookup("pareto")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{Phys: phys.Projected(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	frontier := 0
	bestGain, bestOn := 0.0, false
	for _, pt := range pts {
		on := pt.MustMetric("on_frontier") == 1
		if on {
			frontier++
		}
		if g := pt.MustMetric("gain_product"); g > bestGain {
			bestGain, bestOn = g, on
		}
	}
	if frontier == 0 {
		t.Fatal("no point marked on the Pareto frontier")
	}
	if !bestOn {
		t.Error("the best-gain-product point is not on the frontier")
	}
	for _, pt := range pts {
		if pt.MustMetric("on_frontier") != 1 {
			continue
		}
		for _, other := range pts {
			if other.MustMetric("area_reduction") > pt.MustMetric("area_reduction") &&
				other.MustMetric("adder_speedup") > pt.MustMetric("adder_speedup") {
				t.Fatalf("frontier point %d is dominated by point %d", pt.Index, other.Index)
			}
		}
	}
}
