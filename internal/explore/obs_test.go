package explore_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/phys"
)

// machineExp returns a small machine-backed experiment that exercises the
// whole evaluation-cache stack: In.Machine, the shared kernel plan, and a
// compiled evaluation per (machine, workload).
func machineExp() *explore.Experiment {
	return &explore.Experiment{
		Name: "t-obs-machine",
		Axes: []explore.Axis{explore.Ints("blocks", 2, 4, 2)}, // one duplicate
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			m, err := in.Machine(arch.WithBlocks(in.Int("blocks")), arch.WithTransfers(4))
			if err != nil {
				return nil, err
			}
			res, err := in.Evaluate(ctx, m, arch.NewAdder(64, false))
			if err != nil {
				return nil, err
			}
			return []explore.Metric{{Name: "m0", Value: res.Metrics[0].Value}}, nil
		},
	}
}

// TestProgressSerialized is the -race regression test for the Progress
// concurrency contract: the callback may freely mutate unsynchronized
// state because the runner serializes every invocation. If the runner ever
// invoked Progress from two workers at once, the plain int increments and
// slice appends below would trip the race detector.
func TestProgressSerialized(t *testing.T) {
	exp := &explore.Experiment{
		Name: "t-progress-race",
		Axes: []explore.Axis{explore.Ints("i", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)},
		Eval: nopEval,
	}
	var (
		calls int
		seen  []int
	)
	_, err := explore.Run(context.Background(), exp, explore.Options{
		Parallel: 8,
		Progress: func(done, total int) {
			calls++ // unsynchronized on purpose
			seen = append(seen, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || len(seen) == 0 {
		t.Fatal("progress callback never ran")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("done counts not strictly increasing: %v", seen)
		}
	}
	if last := seen[len(seen)-1]; last != 16 {
		t.Errorf("final done = %d, want 16", last)
	}
}

// TestRunnerPointLatencyMetric: with a registry attached, Run records one
// cqla_point_eval_seconds observation per unique point, labeled by sweep
// and engine.
func TestRunnerPointLatencyMetric(t *testing.T) {
	exp := &explore.Experiment{
		Name: "t-obs-latency",
		Axes: []explore.Axis{
			explore.Ints("a", 1, 2, 1, 2), // 4 slots, 2 unique
			explore.Ints("b", 1, 2, 3),
		},
		Eval: nopEval,
	}
	reg := obs.NewRegistry()
	if _, err := explore.Run(context.Background(), exp, explore.Options{
		Parallel: 4,
		Obs:      reg,
	}); err != nil {
		t.Fatal(err)
	}
	h := reg.HistogramVec("cqla_point_eval_seconds",
		"Per-point evaluation latency of design-space sweeps.",
		nil, "sweep", "engine").With("t-obs-latency", arch.EngineAnalytic)
	if got := h.Count(); got != 6 {
		t.Errorf("point latency observations = %d, want 6 (unique points only)", got)
	}
}

// TestRunnerEvalCacheMetrics: the per-sweep evaluation cache reports its
// hits and misses per tier when a registry is attached.
func TestRunnerEvalCacheMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	if _, err := explore.Run(context.Background(), machineExp(), explore.Options{
		Phys:     phys.Projected(),
		Parallel: 1, // serial: hit/miss splits are exact, no racing builds
		Obs:      reg,
	}); err != nil {
		t.Fatal(err)
	}
	hits := reg.CounterVec("cqla_evalcache_hits_total",
		"Evaluation-cache hits by tier (machine, plan, compiled).",
		"sweep", "kind")
	misses := reg.CounterVec("cqla_evalcache_misses_total",
		"Evaluation-cache misses by tier (machine, plan, compiled).",
		"sweep", "kind")
	at := func(v *obs.CounterVec, kind string) uint64 {
		return v.With("t-obs-machine", kind).Value()
	}
	// Two unique points (blocks=2 repeats), so two machine/compile lookups
	// sharing one kernel plan.
	if got, want := at(misses, "machine"), uint64(2); got != want {
		t.Errorf("machine misses = %d, want %d", got, want)
	}
	if got := at(hits, "machine"); got != 0 {
		t.Errorf("machine hits = %d, want 0 (all configs distinct)", got)
	}
	if got, want := at(misses, "plan"), uint64(1); got != want {
		t.Errorf("plan misses = %d, want %d", got, want)
	}
	if got, want := at(hits, "plan"), uint64(1); got != want {
		t.Errorf("plan hits = %d, want %d", got, want)
	}
	if got, want := at(misses, "compiled"), uint64(2); got != want {
		t.Errorf("compiled misses = %d, want %d", got, want)
	}
}

// TestRunObservabilityTransparent pins the acceptance criterion that
// instrumentation must not change results: the same sweep emits
// byte-identical JSON with a registry and tracer attached and without.
func TestRunObservabilityTransparent(t *testing.T) {
	run := func(reg *obs.Registry, tr *obs.Tracer) []byte {
		exp, err := explore.Lookup("table4")
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if tr != nil {
			ctx = obs.WithTracer(ctx, tr)
		}
		pts, err := explore.Run(ctx, exp, explore.Options{
			Phys: phys.Projected(), Parallel: 4, Seed: 42, Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		r := &explore.Report{Experiment: exp, Phys: "projected", Seed: 42, Points: pts}
		if err := r.JSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := run(nil, nil)
	instrumented := run(obs.NewRegistry(), obs.NewTracer())
	if !bytes.Equal(plain, instrumented) {
		t.Error("sweep JSON differs when observability is attached")
	}
}

// TestRunSpans: a tracer in the run context records per-point spans and
// the cache's compile-stage spans.
func TestRunSpans(t *testing.T) {
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := explore.Run(ctx, machineExp(), explore.Options{
		Phys:     phys.Projected(),
		Parallel: 2,
		Obs:      obs.NewRegistry(),
	}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, sp := range tr.Spans() {
		counts[sp.Name()]++
	}
	if counts["point"] != 2 {
		t.Errorf("point spans = %d, want 2 (unique points)", counts["point"])
	}
	if counts["plan-compile"] != 2 {
		t.Errorf("plan-compile spans = %d, want 2", counts["plan-compile"])
	}
	if counts["dag-build"] != 1 {
		t.Errorf("dag-build spans = %d, want 1 (shared kernel plan)", counts["dag-build"])
	}
}
