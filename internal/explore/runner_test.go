package explore_test

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/phys"
)

// sweepJSON runs a registered experiment and returns its JSON emission.
func sweepJSON(t *testing.T, name string, parallel int, seed int64) []byte {
	t.Helper()
	exp, err := explore.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{
		Phys:     phys.Projected(),
		Parallel: parallel,
		Seed:     seed,
	})
	if err != nil {
		t.Fatalf("Run(%s, parallel=%d): %v", name, parallel, err)
	}
	var buf bytes.Buffer
	r := &explore.Report{Experiment: exp, Phys: "projected", Seed: seed, Points: pts}
	if err := r.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterministicAcrossParallelism is the engine's core contract: the
// same seed produces byte-identical JSON whether one worker or eight ran
// the sweep. The montecarlo sweep is the adversarial case — it is
// stochastic, so any order-dependence in seeding would show up here.
func TestDeterministicAcrossParallelism(t *testing.T) {
	for _, name := range []string{"montecarlo", "fig6b", "overlap-sens"} {
		serial := sweepJSON(t, name, 1, 42)
		parallel := sweepJSON(t, name, 8, 42)
		if !bytes.Equal(serial, parallel) {
			t.Errorf("%s: -parallel 1 and -parallel 8 output differ with the same seed", name)
		}
	}
}

// TestSeedChangesStochasticResults guards against the opposite failure:
// the per-point seed actually reaching the evaluator.
func TestSeedChangesStochasticResults(t *testing.T) {
	a := sweepJSON(t, "montecarlo", 4, 1)
	b := sweepJSON(t, "montecarlo", 4, 2)
	if bytes.Equal(a, b) {
		t.Error("montecarlo output identical under different seeds")
	}
}

func TestCancellationMidSweep(t *testing.T) {
	started := make(chan struct{}, 1)
	exp := &explore.Experiment{
		Name: "t-cancel",
		Axes: []explore.Axis{explore.Ints("i", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done() // block until the sweep is canceled
			return nil, ctx.Err()
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	_, err := explore.Run(ctx, exp, explore.Options{Parallel: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after mid-sweep cancel returned %v; want context.Canceled", err)
	}
}

func TestEvalErrorCancelsSweep(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	exp := &explore.Experiment{
		Name: "t-error",
		Axes: []explore.Axis{explore.Ints("i", 1, 2, 3, 4, 5, 6, 7, 8)},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			calls.Add(1)
			if in.Int("i") == 3 {
				return nil, boom
			}
			return []explore.Metric{{Name: "v", Value: float64(in.Int("i"))}}, nil
		},
	}
	_, err := explore.Run(context.Background(), exp, explore.Options{Parallel: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v; want the evaluator's error", err)
	}
	if n := calls.Load(); n >= 8 {
		t.Errorf("all %d points evaluated despite an early error", n)
	}
}

// TestEvalErrorNotMaskedByCancellation: when one point hits a real
// evaluator error, sibling in-flight evaluations collapse with
// context.Canceled; whichever reaches the error slot first, Run must
// report the root cause, never "context canceled".
func TestEvalErrorNotMaskedByCancellation(t *testing.T) {
	boom := errors.New("boom")
	failing := make(chan struct{})
	exp := &explore.Experiment{
		Name: "t-mask",
		Axes: []explore.Axis{explore.Ints("i", 0, 1, 2, 3)},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			if in.Int("i") == 0 {
				close(failing)
				// Give the collapsing siblings a head start in the race to
				// record the first error.
				time.Sleep(5 * time.Millisecond)
				return nil, boom
			}
			select {
			case <-failing:
				return nil, context.Canceled
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	_, err := explore.Run(context.Background(), exp, explore.Options{Parallel: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v; want the evaluator's root-cause error %v", err, boom)
	}
}

// TestMemoization: repeated coordinates are evaluated once and every
// product slot still gets its result.
func TestMemoization(t *testing.T) {
	var calls atomic.Int64
	exp := &explore.Experiment{
		Name: "t-memo",
		Axes: []explore.Axis{
			explore.Ints("a", 1, 2, 1, 2), // duplicates on purpose
			explore.Strings("b", "x", "x", "y"),
		},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			calls.Add(1)
			return []explore.Metric{{Name: "sum", Value: float64(in.Int("a")) + float64(len(in.Str("b")))}}, nil
		},
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("got %d points; want 12", len(pts))
	}
	// 2 distinct a-values x 2 distinct b-values = 4 unique evaluations.
	if n := calls.Load(); n != 4 {
		t.Errorf("evaluator ran %d times; want 4 (memoized)", n)
	}
	for _, p := range pts {
		want := p.Coords[0].Float() + float64(len(p.Coords[1].Str()))
		if got := p.MustMetric("sum"); got != want {
			t.Errorf("point %d: sum = %g, want %g", p.Index, got, want)
		}
	}
}

func TestProgressMonotone(t *testing.T) {
	exp := &explore.Experiment{
		Name: "t-progress",
		Axes: []explore.Axis{explore.Ints("i", 1, 2, 3, 4, 5, 6, 7, 8, 9)},
		Eval: nopEval,
	}
	last, total := 0, 0
	_, err := explore.Run(context.Background(), exp, explore.Options{
		Parallel: 3,
		Progress: func(done, tot int) {
			if done <= last {
				t.Errorf("progress went %d -> %d", last, done)
			}
			last, total = done, tot
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 9 || total != 9 {
		t.Errorf("final progress %d/%d; want 9/9", last, total)
	}
}

func TestPointOrderIsProductOrder(t *testing.T) {
	exp := &explore.Experiment{
		Name: "t-order",
		Axes: []explore.Axis{
			explore.Ints("hi", 0, 1, 2),
			explore.Ints("lo", 0, 1),
		},
		Eval: func(ctx context.Context, in explore.In) ([]explore.Metric, error) {
			return []explore.Metric{{Name: "v", Value: float64(in.Int("hi")*2 + in.Int("lo"))}}, nil
		},
	}
	pts, err := explore.Run(context.Background(), exp, explore.Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if p.Index != i {
			t.Errorf("point %d has Index %d", i, p.Index)
		}
		if got := p.MustMetric("v"); got != float64(i) {
			t.Errorf("point %d out of product order: v = %g", i, got)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := explore.Run(context.Background(), nil, explore.Options{}); err == nil {
		t.Error("Run(nil experiment) succeeded")
	}
	empty := &explore.Experiment{Name: "t-run-empty", Axes: []explore.Axis{explore.Ints("i")}, Eval: nopEval}
	if _, err := explore.Run(context.Background(), empty, explore.Options{}); err == nil {
		t.Error("Run with empty design space succeeded")
	}
}
