package explore

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/cqla"
	"repro/internal/ecc"
	"repro/internal/gen"
	"repro/internal/mesh"
	"repro/internal/sched"
	"repro/internal/transfer"
)

// Built-in experiments: every sweepable table and figure of the CQLA paper
// plus scenario sweeps the paper never printed. Names match the paper
// artifacts so `cqla sweep table4` regenerates Table 4's numbers.
func init() {
	Register(table2Exp())
	Register(table3Exp())
	Register(table4Exp())
	Register(table5Exp())
	Register(fig2Exp())
	Register(fig6aExp())
	Register(fig6bExp())
	Register(fig7Exp())
	Register(fig8aExp())
	Register(fig8bExp())
	Register(paretoExp())
	Register(overlapSensExp())
	Register(monteCarloExp())
}

// codeNames lists the region codes as axis values; codeByName resolves
// them back to ecc constructors.
func codeNames() []string { return []string{"steane", "bacon-shor"} }

func codeByName(name string) (*ecc.Code, error) {
	switch name {
	case "steane":
		return ecc.Steane(), nil
	case "bacon-shor":
		return ecc.BaconShor(), nil
	}
	return nil, fmt.Errorf("unknown code %q", name)
}

// budgetBlocks resolves Table 4's per-size block budgets ("lo" and "hi"
// columns) for one input size.
func budgetBlocks(size int, budget string) (int, error) {
	pair, ok := cqla.PaperBlockCounts()[size]
	if !ok {
		return 0, fmt.Errorf("no paper block budget for %d bits", size)
	}
	switch budget {
	case "lo":
		return pair[0], nil
	case "hi":
		return pair[1], nil
	}
	return 0, fmt.Errorf("unknown budget %q", budget)
}

func table2Exp() *Experiment {
	return &Experiment{
		Name:  "table2",
		Title: "error-correction metrics per code and level (Table 2)",
		Axes: []Axis{
			Strings("code", codeNames()...),
			Ints("level", 1, 2),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			c, err := codeByName(in.Str("code"))
			if err != nil {
				return nil, err
			}
			m := c.Metrics(in.Int("level"), in.Phys)
			return []Metric{
				{"ec_time_s", m.ECTime.Seconds()},
				{"transversal_s", m.TransversalGateTime.Seconds()},
				{"area_mm2", m.AreaMM2},
				{"data_ions", float64(m.DataIons)},
				{"ancilla_ions", float64(m.AncillaIons)},
			}, nil
		},
	}
}

func table3Exp() *Experiment {
	var labels []string
	for _, e := range transfer.Encodings() {
		labels = append(labels, e.String())
	}
	byLabel := func(label string) (transfer.Encoding, error) {
		for _, e := range transfer.Encodings() {
			if e.String() == label {
				return e, nil
			}
		}
		return transfer.Encoding{}, fmt.Errorf("unknown encoding %q", label)
	}
	return &Experiment{
		Name:  "table3",
		Title: "code-transfer network latency matrix (Table 3)",
		Axes: []Axis{
			Strings("from", labels...),
			Strings("to", labels...),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			from, err := byLabel(in.Str("from"))
			if err != nil {
				return nil, err
			}
			to, err := byLabel(in.Str("to"))
			if err != nil {
				return nil, err
			}
			return []Metric{{"latency_s", transfer.MustLatency(from, to).Seconds()}}, nil
		},
	}
}

func table4Exp() *Experiment {
	return &Experiment{
		Name:  "table4",
		Title: "CQLA vs QLA specialization study (Table 4; code as an axis)",
		Axes: []Axis{
			Ints("size", cqla.PaperInputSizes()...),
			Strings("budget", "lo", "hi"),
			Strings("code", codeNames()...),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			code, err := codeByName(in.Str("code"))
			if err != nil {
				return nil, err
			}
			n := in.Int("size")
			blocks, err := budgetBlocks(n, in.Str("budget"))
			if err != nil {
				return nil, err
			}
			m := cqla.New(cqla.Config{Code: code, Params: in.Phys, ComputeBlocks: blocks, ParallelTransfers: 10})
			q := gen.NewModExp(n).LogicalQubits()
			area := m.AreaReduction(q, false)
			speed := m.SpeedupL2(n)
			return []Metric{
				{"blocks", float64(blocks)},
				{"area_reduction", area},
				{"speedup", speed},
				{"gain_product", area * speed},
			}, nil
		},
	}
}

func table5Exp() *Experiment {
	return &Experiment{
		Name:  "table5",
		Title: "memory-hierarchy speedups and gain products (Table 5)",
		Axes: []Axis{
			Strings("code", codeNames()...),
			Ints("transfers", 10, 5),
			Ints("size", cqla.Table5Sizes()...),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			code, err := codeByName(in.Str("code"))
			if err != nil {
				return nil, err
			}
			n := in.Int("size")
			blocks, err := budgetBlocks(n, "lo")
			if err != nil {
				return nil, err
			}
			m := cqla.New(cqla.Config{Code: code, Params: in.Phys, ComputeBlocks: blocks, ParallelTransfers: in.Int("transfers")})
			q := gen.NewModExp(n).LogicalQubits()
			return []Metric{
				{"blocks", float64(blocks)},
				{"l1_speedup", m.SpeedupL1(n)},
				{"l2_speedup", m.SpeedupL2(n)},
				{"adder_speedup", m.AdderSpeedup(n)},
				{"area_reduction", m.AreaReduction(q, true)},
				{"gain_product", m.GainProduct(n, q, true)},
			}, nil
		},
	}
}

func fig2Exp() *Experiment {
	// Named fig2-makespan, not fig2: the cqla command keeps a hand-laid
	// `fig2` artifact (the bar-chart parallelism profile), and a same-named
	// sweep would be shadowed by it in direct dispatch.
	return &Experiment{
		Name:  "fig2-makespan",
		Title: "64-qubit adder makespan, unlimited vs block-limited (Figure 2)",
		Axes: []Axis{
			Ints("size", 64),
			Ints("blocks", 0, 15), // 0 = unlimited parallelism
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			m := cqla.New(cqla.Config{Code: ecc.Steane(), Params: in.Phys, ComputeBlocks: 15, ParallelTransfers: 10})
			s := sched.ListSchedule(m.AdderDAG(in.Int("size")), in.Int("blocks"))
			return []Metric{{"makespan_slots", float64(s.MakespanSlots)}}, nil
		},
	}
}

func fig6aExp() *Experiment {
	return &Experiment{
		Name:  "fig6a",
		Title: "compute-block utilization curves (Figure 6a)",
		Axes: []Axis{
			Ints("size", cqla.PaperInputSizes()...),
			Ints("blocks", cqla.Fig6aBlockCounts()...),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			m := cqla.New(cqla.Config{Code: ecc.Steane(), Params: in.Phys, ComputeBlocks: 1, ParallelTransfers: 1})
			dag := m.AdderDAG(in.Int("size"))
			u := sched.UtilizationSweep(dag, []int{in.Int("blocks")})
			return []Metric{{"utilization", u[0]}}, nil
		},
	}
}

func fig6bExp() *Experiment {
	return &Experiment{
		Name:  "fig6b",
		Title: "superblock bandwidth balance (Figure 6b)",
		Axes:  []Axis{Ints("blocks", cqla.Fig6bBlockCounts()...)},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			sb := mesh.DefaultSuperblock()
			k := in.Int("blocks")
			return []Metric{
				{"available", sb.Available(k)},
				{"required_draper", sb.RequiredDraper(k)},
				{"required_worst", sb.RequiredWorst(k)},
				// crossover is Figure 6(b)'s headline number (the block
				// count where demand outgrows perimeter bandwidth); it is
				// sweep-wide, so every point carries the same value.
				{"crossover", float64(sb.Crossover())},
			}, nil
		},
	}
}

func fig7Exp() *Experiment {
	return &Experiment{
		Name:  "fig7",
		Title: "cache hit rates, naive vs optimized fetch (Figure 7)",
		Axes: []Axis{
			Ints("size", cqla.Fig7Sizes()...),
			Floats("cache_mult", 1, 1.5, 2),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			n := in.Int("size")
			blocks, err := budgetBlocks(n, "lo")
			if err != nil {
				return nil, err
			}
			ad := gen.CarryLookahead(n)
			capQ := int(in.Float("cache_mult") * float64(blocks*cqla.BlockDataQubits))
			naive := cache.Simulate(ad.Circuit, cache.Config{CacheQubits: capQ, Policy: cache.Naive})
			opt := cache.Simulate(ad.Circuit, cache.Config{CacheQubits: capQ, Policy: cache.Optimized})
			return []Metric{
				{"cache_qubits", float64(capQ)},
				{"naive_hit", naive.HitRate()},
				{"optimized_hit", opt.HitRate()},
			}, nil
		},
	}
}

func fig8aExp() *Experiment {
	return &Experiment{
		Name:  "fig8a",
		Title: "modular exponentiation computation vs communication (Figure 8a)",
		Axes:  []Axis{Ints("size", cqla.PaperInputSizes()...)},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			n := in.Int("size")
			blocks, err := budgetBlocks(n, "lo")
			if err != nil {
				return nil, err
			}
			m := cqla.New(cqla.Config{Code: ecc.BaconShor(), Params: in.Phys, ComputeBlocks: blocks, ParallelTransfers: 10})
			t := m.ModExpTimes(n)
			return []Metric{
				{"computation_s", t.Computation.Seconds()},
				{"communication_s", t.Communication.Seconds()},
			}, nil
		},
	}
}

func fig8bExp() *Experiment {
	return &Experiment{
		Name:  "fig8b",
		Title: "QFT computation vs communication (Figure 8b)",
		Axes:  []Axis{Ints("size", cqla.Fig8bSizes()...)},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			m := cqla.New(cqla.Config{Code: ecc.BaconShor(), Params: in.Phys, ComputeBlocks: 36, ParallelTransfers: 10})
			t := m.QFTTimes(in.Int("size"))
			return []Metric{
				{"computation_s", t.Computation.Seconds()},
				{"communication_s", t.Communication.Seconds()},
			}, nil
		},
	}
}

// paretoExp opens a sweep the paper never printed: the gain-product Pareto
// frontier over (compute blocks, cache factor) for the 256-bit Bacon-Shor
// working point. The Post hook marks frontier membership: a point is on
// the frontier when no other point has both more area reduction and more
// speedup.
func paretoExp() *Experiment {
	return &Experiment{
		Name:  "pareto",
		Title: "gain-product Pareto frontier over (blocks, cache factor), 256-bit Bacon-Shor",
		Axes: []Axis{
			Ints("blocks", 4, 9, 16, 25, 36, 49, 64, 81, 100),
			Floats("cache_factor", 0.5, 1, 2, 3, 4),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			const n = 256
			m := cqla.New(cqla.Config{
				Code:              ecc.BaconShor(),
				Params:            in.Phys,
				ComputeBlocks:     in.Int("blocks"),
				ParallelTransfers: 10,
				CacheFactor:       in.Float("cache_factor"),
			})
			q := gen.NewModExp(n).LogicalQubits()
			return []Metric{
				{"area_reduction", m.AreaReduction(q, true)},
				{"adder_speedup", m.AdderSpeedup(n)},
				{"gain_product", m.GainProduct(n, q, true)},
			}, nil
		},
		Post: func(pts []Point) []Point {
			for i := range pts {
				ai := pts[i].MustMetric("area_reduction")
				si := pts[i].MustMetric("adder_speedup")
				frontier := 1.0
				for j := range pts {
					if i == j {
						continue
					}
					aj := pts[j].MustMetric("area_reduction")
					sj := pts[j].MustMetric("adder_speedup")
					if aj >= ai && sj >= si && (aj > ai || sj > si) {
						frontier = 0
						break
					}
				}
				pts[i].Metrics = append(pts[i].Metrics, Metric{"on_frontier", frontier})
			}
			return pts
		},
	}
}

// overlapSensExp sweeps the transfer-overlap fraction the paper fixes at
// 0.9: how sensitive are the level-1 and blended speedups to how much
// memory<->cache transfer latency the static schedule actually hides?
func overlapSensExp() *Experiment {
	return &Experiment{
		Name:  "overlap-sens",
		Title: "speedup sensitivity to memory<->cache transfer overlap, 256-bit Bacon-Shor",
		Axes: []Axis{
			Floats("overlap", 0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99),
			Ints("transfers", 5, 10, 20),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			const n = 256
			ov := in.Float("overlap")
			if ov == 0 {
				ov = cqla.NoTransferOverlap // zero-value would mean "default"
			}
			m := cqla.New(cqla.Config{
				Code:              ecc.BaconShor(),
				Params:            in.Phys,
				ComputeBlocks:     36,
				ParallelTransfers: in.Int("transfers"),
				TransferOverlap:   ov,
			})
			return []Metric{
				{"stall_s", m.TransferStall().Seconds()},
				{"l1_speedup", m.SpeedupL1(n)},
				{"adder_speedup", m.AdderSpeedup(n)},
			}, nil
		},
	}
}

// monteCarloExp sweeps the Pauli-frame Monte Carlo error injector over
// code × physical error rate, with the per-point deterministic seed the
// runner derives — the sweep reproduces bit-for-bit at any parallelism.
func monteCarloExp() *Experiment {
	return &Experiment{
		Name:  "montecarlo",
		Title: "Monte Carlo logical X-error rate vs physical rate per code",
		Axes: []Axis{
			Strings("code", codeNames()...),
			Floats("physical_rate", 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2),
			Ints("trials", 20000),
		},
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c, err := codeByName(in.Str("code"))
			if err != nil {
				return nil, err
			}
			p := in.Float("physical_rate")
			trials := in.Int("trials")
			r := c.MonteCarloXSeeded(p, trials, in.Seed)
			logical := r.LogicalRate()
			// Rule of three: zero observed faults bounds the true logical
			// rate at ~3/trials with 95% confidence, so suppression_lb
			// stays a finite, honest lower bound at operating points the
			// trial budget cannot resolve (resolved reports which).
			resolved, bound := 1.0, logical
			if r.LogicalFaults == 0 {
				resolved, bound = 0, 3/float64(trials)
			}
			return []Metric{
				{"logical_rate", logical},
				{"logical_faults", float64(r.LogicalFaults)},
				{"suppression_lb", p / bound},
				{"resolved", resolved},
			}, nil
		},
	}
}
