package explore

import (
	"context"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cqla"
	"repro/internal/ecc"
	"repro/internal/gen"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/transfer"
)

// Montecarlo confidence-interval conventions: the 95% normal quantile for
// CI metrics and the resolution target (a point is resolved when its 95%
// CI half-width is within 10% of the estimate). They mirror the ecc
// package's internal constants so sweep metrics and estimator early
// stopping agree.
const (
	mcCIZ         = 1.96
	mcTargetRelCI = 0.10
)

// Built-in experiments: every sweepable table and figure of the CQLA paper
// plus scenario sweeps the paper never printed. Names match the paper
// artifacts so `cqla sweep table4` regenerates Table 4's numbers.
func init() {
	Register(table2Exp())
	Register(table3Exp())
	Register(table4Exp())
	Register(table5Exp())
	Register(fig2Exp())
	Register(fig6aExp())
	Register(fig6bExp())
	Register(fig7Exp())
	Register(fig8aExp())
	Register(fig8bExp())
	Register(paretoExp())
	Register(overlapSensExp())
	Register(monteCarloExp())
	Register(xvalExp())
	Register(workloadsExp())
	Register(workloadBlocksExp())
}

// metricsFrom flattens a Result envelope into sweep metrics after any
// leading extras (e.g. the resolved block budget).
func metricsFrom(res arch.Result, extra ...Metric) []Metric {
	out := append([]Metric{}, extra...)
	for _, m := range res.Metrics {
		out = append(out, Metric{m.Name, m.Value})
	}
	return out
}

// pickMetrics reads named metrics from an envelope, in order.
func pickMetrics(res arch.Result, names ...string) ([]float64, error) {
	out := make([]float64, len(names))
	for i, n := range names {
		v, err := res.Metric(n)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// codeNames lists the region codes as axis values; arch.CodeByName
// resolves them back to ecc constructors, so the axis and the machine
// builder share one registry.
func codeNames() []string { return arch.CodeNames() }

// budgetBlocks resolves Table 4's per-size block budgets ("lo" and "hi"
// columns) for one input size.
func budgetBlocks(size int, budget string) (int, error) {
	pair, ok := cqla.PaperBlockCounts()[size]
	if !ok {
		return 0, fmt.Errorf("no paper block budget for %d bits", size)
	}
	switch budget {
	case "lo":
		return pair[0], nil
	case "hi":
		return pair[1], nil
	}
	return 0, fmt.Errorf("unknown budget %q", budget)
}

func table2Exp() *Experiment {
	return &Experiment{
		Name:  "table2",
		Title: "error-correction metrics per code and level (Table 2)",
		Axes: []Axis{
			Strings("code", codeNames()...),
			Ints("level", 1, 2),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			c, err := arch.CodeByName(in.Str("code"))
			if err != nil {
				return nil, err
			}
			m := c.Metrics(in.Int("level"), in.Phys)
			return []Metric{
				{"ec_time_s", m.ECTime.Seconds()},
				{"transversal_s", m.TransversalGateTime.Seconds()},
				{"area_mm2", m.AreaMM2},
				{"data_ions", float64(m.DataIons)},
				{"ancilla_ions", float64(m.AncillaIons)},
			}, nil
		},
	}
}

func table3Exp() *Experiment {
	var labels []string
	for _, e := range transfer.Encodings() {
		labels = append(labels, e.String())
	}
	byLabel := func(label string) (transfer.Encoding, error) {
		for _, e := range transfer.Encodings() {
			if e.String() == label {
				return e, nil
			}
		}
		return transfer.Encoding{}, fmt.Errorf("unknown encoding %q", label)
	}
	return &Experiment{
		Name:  "table3",
		Title: "code-transfer network latency matrix (Table 3)",
		Axes: []Axis{
			Strings("from", labels...),
			Strings("to", labels...),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			from, err := byLabel(in.Str("from"))
			if err != nil {
				return nil, err
			}
			to, err := byLabel(in.Str("to"))
			if err != nil {
				return nil, err
			}
			return []Metric{{"latency_s", transfer.MustLatency(from, to).Seconds()}}, nil
		},
	}
}

func table4Exp() *Experiment {
	return &Experiment{
		Name:  "table4",
		Title: "CQLA vs QLA specialization study (Table 4; code as an axis)",
		Axes: []Axis{
			Ints("size", cqla.PaperInputSizes()...),
			Strings("budget", "lo", "hi"),
			Strings("code", codeNames()...),
		},
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			n := in.Int("size")
			blocks, err := budgetBlocks(n, in.Str("budget"))
			if err != nil {
				return nil, err
			}
			m, err := in.Machine(
				arch.WithCodeName(in.Str("code")),
				arch.WithBlocks(blocks),
				arch.WithTransfers(10),
			)
			if err != nil {
				return nil, err
			}
			res, err := in.Evaluate(ctx, m, arch.NewAdder(n, false))
			if err != nil {
				return nil, err
			}
			if res.Engine != arch.EngineAnalytic {
				return metricsFrom(res, Metric{"blocks", float64(blocks)}), nil
			}
			// The analytic path keeps Table 4's historical metric names —
			// the golden test demands bitwise agreement with cqla.Table4.
			v, err := pickMetrics(res, "area_reduction", "l2_speedup", "gain_product")
			if err != nil {
				return nil, err
			}
			return []Metric{
				{"blocks", float64(blocks)},
				{"area_reduction", v[0]},
				{"speedup", v[1]},
				{"gain_product", v[2]},
			}, nil
		},
	}
}

func table5Exp() *Experiment {
	return &Experiment{
		Name:  "table5",
		Title: "memory-hierarchy speedups and gain products (Table 5)",
		Axes: []Axis{
			Strings("code", codeNames()...),
			Ints("transfers", 10, 5),
			Ints("size", cqla.Table5Sizes()...),
		},
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			n := in.Int("size")
			blocks, err := budgetBlocks(n, "lo")
			if err != nil {
				return nil, err
			}
			m, err := in.Machine(
				arch.WithCodeName(in.Str("code")),
				arch.WithBlocks(blocks),
				arch.WithTransfers(in.Int("transfers")),
			)
			if err != nil {
				return nil, err
			}
			res, err := in.Evaluate(ctx, m, arch.NewAdder(n, true))
			if err != nil {
				return nil, err
			}
			if res.Engine != arch.EngineAnalytic {
				return metricsFrom(res, Metric{"blocks", float64(blocks)}), nil
			}
			v, err := pickMetrics(res, "l1_speedup", "l2_speedup", "adder_speedup", "area_reduction", "gain_product")
			if err != nil {
				return nil, err
			}
			return []Metric{
				{"blocks", float64(blocks)},
				{"l1_speedup", v[0]},
				{"l2_speedup", v[1]},
				{"adder_speedup", v[2]},
				{"area_reduction", v[3]},
				{"gain_product", v[4]},
			}, nil
		},
	}
}

func fig2Exp() *Experiment {
	// Named fig2-makespan, not fig2: the cqla command keeps a hand-laid
	// `fig2` artifact (the bar-chart parallelism profile), and a same-named
	// sweep would be shadowed by it in direct dispatch.
	return &Experiment{
		Name:  "fig2-makespan",
		Title: "64-qubit adder makespan, unlimited vs block-limited (Figure 2)",
		Axes: []Axis{
			Ints("size", 64),
			Ints("blocks", 0, 15), // 0 = unlimited parallelism
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			m := cqla.New(cqla.Config{Code: ecc.Steane(), Params: in.Phys, ComputeBlocks: 15, ParallelTransfers: 10})
			s := sched.ListSchedule(m.AdderDAG(in.Int("size")), in.Int("blocks"))
			return []Metric{{"makespan_slots", float64(s.MakespanSlots)}}, nil
		},
	}
}

func fig6aExp() *Experiment {
	return &Experiment{
		Name:  "fig6a",
		Title: "compute-block utilization curves (Figure 6a)",
		Axes: []Axis{
			Ints("size", cqla.PaperInputSizes()...),
			Ints("blocks", cqla.Fig6aBlockCounts()...),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			m := cqla.New(cqla.Config{Code: ecc.Steane(), Params: in.Phys, ComputeBlocks: 1, ParallelTransfers: 1})
			dag := m.AdderDAG(in.Int("size"))
			u := sched.UtilizationSweep(dag, []int{in.Int("blocks")})
			return []Metric{{"utilization", u[0]}}, nil
		},
	}
}

func fig6bExp() *Experiment {
	return &Experiment{
		Name:  "fig6b",
		Title: "superblock bandwidth balance (Figure 6b)",
		Axes:  []Axis{Ints("blocks", cqla.Fig6bBlockCounts()...)},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			sb := mesh.DefaultSuperblock()
			k := in.Int("blocks")
			return []Metric{
				{"available", sb.Available(k)},
				{"required_draper", sb.RequiredDraper(k)},
				{"required_worst", sb.RequiredWorst(k)},
				// crossover is Figure 6(b)'s headline number (the block
				// count where demand outgrows perimeter bandwidth); it is
				// sweep-wide, so every point carries the same value.
				{"crossover", float64(sb.Crossover())},
			}, nil
		},
	}
}

func fig7Exp() *Experiment {
	return &Experiment{
		Name:  "fig7",
		Title: "cache hit rates, naive vs optimized fetch (Figure 7)",
		Axes: []Axis{
			Ints("size", cqla.Fig7Sizes()...),
			Floats("cache_mult", 1, 1.5, 2),
		},
		Eval: func(_ context.Context, in In) ([]Metric, error) {
			n := in.Int("size")
			blocks, err := budgetBlocks(n, "lo")
			if err != nil {
				return nil, err
			}
			ad := gen.CarryLookahead(n)
			capQ := int(in.Float("cache_mult") * float64(blocks*cqla.BlockDataQubits))
			naive := cache.Simulate(ad.Circuit, cache.Config{CacheQubits: capQ, Policy: cache.Naive})
			opt := cache.Simulate(ad.Circuit, cache.Config{CacheQubits: capQ, Policy: cache.Optimized})
			return []Metric{
				{"cache_qubits", float64(capQ)},
				{"naive_hit", naive.HitRate()},
				{"optimized_hit", opt.HitRate()},
			}, nil
		},
	}
}

func fig8aExp() *Experiment {
	return &Experiment{
		Name:  "fig8a",
		Title: "modular exponentiation computation vs communication (Figure 8a)",
		Axes:  []Axis{Ints("size", cqla.PaperInputSizes()...)},
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			n := in.Int("size")
			blocks, err := budgetBlocks(n, "lo")
			if err != nil {
				return nil, err
			}
			m, err := in.Machine(
				arch.WithCodeName("bacon-shor"),
				arch.WithBlocks(blocks),
				arch.WithTransfers(10),
			)
			if err != nil {
				return nil, err
			}
			res, err := in.Evaluate(ctx, m, arch.NewModExp(n))
			if err != nil {
				return nil, err
			}
			return metricsFrom(res), nil
		},
	}
}

func fig8bExp() *Experiment {
	return &Experiment{
		Name:  "fig8b",
		Title: "QFT computation vs communication (Figure 8b)",
		Axes:  []Axis{Ints("size", cqla.Fig8bSizes()...)},
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			m, err := in.Machine(
				arch.WithCodeName("bacon-shor"),
				arch.WithBlocks(36),
				arch.WithTransfers(10),
			)
			if err != nil {
				return nil, err
			}
			res, err := in.Evaluate(ctx, m, arch.NewQFT(in.Int("size")))
			if err != nil {
				return nil, err
			}
			return metricsFrom(res), nil
		},
	}
}

// paretoExp opens a sweep the paper never printed: the gain-product Pareto
// frontier over (compute blocks, cache factor) for the 256-bit Bacon-Shor
// working point. The Post hook marks frontier membership: a point is on
// the frontier when no other point has both more area reduction and more
// speedup.
func paretoExp() *Experiment {
	return &Experiment{
		Name:  "pareto",
		Title: "gain-product Pareto frontier over (blocks, cache factor), 256-bit Bacon-Shor",
		Axes: []Axis{
			Ints("blocks", 4, 9, 16, 25, 36, 49, 64, 81, 100),
			Floats("cache_factor", 0.5, 1, 2, 3, 4),
		},
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			const n = 256
			m, err := in.Machine(
				arch.WithCodeName("bacon-shor"),
				arch.WithBlocks(in.Int("blocks")),
				arch.WithTransfers(10),
				arch.WithCacheFactor(in.Float("cache_factor")),
			)
			if err != nil {
				return nil, err
			}
			// The frontier marks compare closed-form blended speedups, so
			// this sweep always evaluates analytically whatever -engine is.
			res, err := in.EvaluateOn(ctx, m, arch.NewAdder(n, true), arch.EngineAnalytic)
			if err != nil {
				return nil, err
			}
			v, err := pickMetrics(res, "area_reduction", "adder_speedup", "gain_product")
			if err != nil {
				return nil, err
			}
			return []Metric{
				{"area_reduction", v[0]},
				{"adder_speedup", v[1]},
				{"gain_product", v[2]},
			}, nil
		},
		Post: func(pts []Point) []Point {
			for i := range pts {
				ai := pts[i].MustMetric("area_reduction")
				si := pts[i].MustMetric("adder_speedup")
				frontier := 1.0
				for j := range pts {
					if i == j {
						continue
					}
					aj := pts[j].MustMetric("area_reduction")
					sj := pts[j].MustMetric("adder_speedup")
					if aj >= ai && sj >= si && (aj > ai || sj > si) {
						frontier = 0
						break
					}
				}
				pts[i].Metrics = append(pts[i].Metrics, Metric{"on_frontier", frontier})
			}
			return pts
		},
	}
}

// overlapSensExp sweeps the transfer-overlap fraction the paper fixes at
// 0.9: how sensitive are the level-1 and blended speedups to how much
// memory<->cache transfer latency the static schedule actually hides?
func overlapSensExp() *Experiment {
	return &Experiment{
		Name:  "overlap-sens",
		Title: "speedup sensitivity to memory<->cache transfer overlap, 256-bit Bacon-Shor",
		Axes: []Axis{
			Floats("overlap", 0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99),
			Ints("transfers", 5, 10, 20),
		},
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			const n = 256
			// arch options are literal — overlap 0 means none, no sentinel
			// dance required.
			m, err := in.Machine(
				arch.WithCodeName("bacon-shor"),
				arch.WithBlocks(36),
				arch.WithTransfers(in.Int("transfers")),
				arch.WithTransferOverlap(in.Float("overlap")),
			)
			if err != nil {
				return nil, err
			}
			// Stall and blended speedup are closed-form quantities; the
			// sweep pins the analytic engine.
			res, err := in.EvaluateOn(ctx, m, arch.NewAdder(n, true), arch.EngineAnalytic)
			if err != nil {
				return nil, err
			}
			v, err := pickMetrics(res, "stall_s", "l1_speedup", "adder_speedup")
			if err != nil {
				return nil, err
			}
			return []Metric{
				{"stall_s", v[0]},
				{"l1_speedup", v[1]},
				{"adder_speedup", v[2]},
			}, nil
		},
	}
}

// xvalExp cross-validates the closed-form model against the discrete-event
// simulator on the adder kernel: both engines evaluate the same machine
// and workload through the arch API, and the sweep reports the level-2
// time from each side plus their ratio. A ratio near 1 (the DES dispatches
// FIFO rather than critical-path-first, so it trails slightly) is the
// engines agreeing; communication_hidden confirms the no-memory-wall claim
// at the same points.
func xvalExp() *Experiment {
	return &Experiment{
		Name:  "xval",
		Title: "analytic vs discrete-event cross-validation on the adder kernel",
		Axes: []Axis{
			Ints("size", 32, 64, 128),
			Strings("code", codeNames()...),
		},
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			n := in.Int("size")
			blocks, err := budgetBlocks(n, "lo")
			if err != nil {
				return nil, err
			}
			m, err := in.Machine(
				arch.WithCodeName(in.Str("code")),
				arch.WithBlocks(blocks),
				arch.WithTransfers(10),
			)
			if err != nil {
				return nil, err
			}
			w := arch.NewAdder(n, false)
			a, err := in.EvaluateOn(ctx, m, w, arch.EngineAnalytic)
			if err != nil {
				return nil, err
			}
			s, err := in.EvaluateOn(ctx, m, w, arch.EngineDES)
			if err != nil {
				return nil, err
			}
			av, err := pickMetrics(a, "l2_time_s", "l2_speedup")
			if err != nil {
				return nil, err
			}
			sv, err := pickMetrics(s, "makespan_s", "sim_speedup", "communication_hidden")
			if err != nil {
				return nil, err
			}
			return []Metric{
				{"blocks", float64(blocks)},
				{"analytic_l2_s", av[0]},
				{"des_makespan_s", sv[0]},
				{"des_over_analytic", sv[0] / av[0]},
				{"l2_speedup", av[1]},
				{"sim_speedup", sv[1]},
				{"communication_hidden", sv[2]},
			}, nil
		},
	}
}

// monteCarloExp sweeps the Pauli-frame Monte Carlo error injector over
// code × physical error rate, with the per-point deterministic seed the
// runner derives — the sweep reproduces bit-for-bit at any parallelism.
// Determinism holds at two levels: the runner derives each point's seed
// from its coordinates (never evaluation order), and MonteCarloXSeeded
// itself fans fixed-size shards with seed-derived sub-streams across a
// worker pool, so its counts are identical whether the point runs on one
// core or many. `-parallel` therefore changes wall-clock only, even
// though every evaluation is internally concurrent too.
// Monte Carlo estimator names for the montecarlo sweep (`cqla sweep
// montecarlo -estimator ...`). The registered sweep runs the naive
// estimator; NewMonteCarloExperiment builds the sweep for any of them.
const (
	// EstimatorNaive is the PR 5 scalar path: one trial per decode, RNG
	// stream and output bytes frozen for reproducibility.
	EstimatorNaive = "naive"
	// EstimatorBitSliced runs the same experiment on the transposed batch
	// engine: 64 trials per word operation, an order of magnitude more
	// trials per second, its own (equally deterministic) RNG streams.
	EstimatorBitSliced = "bitsliced"
	// EstimatorRare adds importance sampling and adaptive trial
	// allocation: the trials axis becomes a per-point budget, and points
	// the naive estimator cannot resolve report tight confidence
	// intervals.
	EstimatorRare = "rare"
)

// Estimators lists the montecarlo estimator names, default first.
func Estimators() []string {
	return []string{EstimatorNaive, EstimatorBitSliced, EstimatorRare}
}

// NewMonteCarloExperiment returns the montecarlo sweep bound to the named
// estimator (empty selects naive). All variants share the sweep name and
// axes — per-point seeds and memoization keys are identical — and differ
// only in the evaluator, so `-estimator naive` output is byte-identical
// to the registered sweep's.
func NewMonteCarloExperiment(estimator string) (*Experiment, error) {
	switch estimator {
	case "", EstimatorNaive:
		return monteCarloExp(), nil
	case EstimatorBitSliced:
		return monteCarloBatchExp(), nil
	case EstimatorRare:
		return monteCarloRareExp(), nil
	}
	return nil, fmt.Errorf("explore: unknown estimator %q (have %v)", estimator, Estimators())
}

// mcAxes is the shared design space of every montecarlo estimator. The
// trials axis is an exact trial count for naive and bitsliced and a trial
// budget for the adaptive rare-event estimator.
func mcAxes() []Axis {
	return []Axis{
		Strings("code", codeNames()...),
		Floats("physical_rate", 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2),
		Ints("trials", 1000000),
	}
}

// mcRender prints unresolved logical rates as "<bound" in text and CSV
// output — a bare 0 looks measured when it is only censored. The bound is
// the evaluator's rate_bound metric when present (bitsliced, rare), or
// the rule of three recomputed from the trials axis for the frozen naive
// metric set. Depends on mcAxes ordering: trials is the third axis.
func mcRender(pt Point, metric string, v float64) (string, bool) {
	if metric != "logical_rate" {
		return "", false
	}
	if res, err := pt.Metric("resolved"); err != nil || res != 0 {
		return "", false
	}
	bound, err := pt.Metric("rate_bound")
	if err != nil {
		bound = 3 / float64(pt.Coords[2].Int())
	}
	return "<" + formatMetric(bound), true
}

// mcRecord counts estimator work on the sweep's metrics registry:
// transposed 64-trial blocks decoded and trials spent, labeled by
// estimator. A nil registry records nothing.
func mcRecord(reg *obs.Registry, estimator string, trials int) {
	if reg == nil {
		return
	}
	reg.CounterVec("cqla_mc_blocks_total",
		"Transposed 64-trial Monte Carlo blocks decoded by sweep evaluators.",
		"estimator").With(estimator).Add(uint64((trials + 63) / 64))
	reg.CounterVec("cqla_mc_trials_total",
		"Monte Carlo trials spent by sweep evaluators (budget actually used).",
		"estimator").With(estimator).Add(uint64(trials))
}

func monteCarloExp() *Experiment {
	return &Experiment{
		Name:   "montecarlo",
		Title:  "Monte Carlo logical X-error rate vs physical rate per code",
		Axes:   mcAxes(),
		Render: mcRender,
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c, err := arch.CodeByName(in.Str("code"))
			if err != nil {
				return nil, err
			}
			p := in.Float("physical_rate")
			trials := in.Int("trials")
			r := c.MonteCarloXSeeded(p, trials, in.Seed)
			logical := r.LogicalRate()
			// Rule of three: zero observed faults bounds the true logical
			// rate at ~3/trials with 95% confidence, so suppression_lb
			// stays a finite, honest lower bound at operating points the
			// trial budget cannot resolve (resolved reports which).
			resolved, bound := 1.0, logical
			if r.LogicalFaults == 0 {
				resolved, bound = 0, 3/float64(trials)
			}
			// The metric set is frozen: naive output is byte-identical
			// across releases, which is why the bound is not emitted here.
			return []Metric{
				{"logical_rate", logical},
				{"logical_faults", float64(r.LogicalFaults)},
				{"suppression_lb", p / bound},
				{"resolved", resolved},
			}, nil
		},
	}
}

// monteCarloBatchExp is the montecarlo sweep on the bit-sliced batch
// engine: the same experiment and determinism contract, roughly an order
// of magnitude more trials per second, plus explicit confidence-interval
// metrics the frozen naive set cannot grow.
func monteCarloBatchExp() *Experiment {
	return &Experiment{
		Name:   "montecarlo",
		Title:  "Monte Carlo logical X-error rate vs physical rate per code",
		Axes:   mcAxes(),
		Render: mcRender,
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c, err := arch.CodeByName(in.Str("code"))
			if err != nil {
				return nil, err
			}
			p := in.Float("physical_rate")
			trials := in.Int("trials")
			_, sp := obs.StartSpan(ctx, "mc-bitsliced")
			r := c.MonteCarloXBatch(p, trials, in.Seed)
			sp.End()
			mcRecord(in.Obs, EstimatorBitSliced, trials)
			logical := r.LogicalRate()
			se := math.Sqrt(logical * (1 - logical) / float64(trials))
			relCI := math.Inf(1)
			if logical > 0 {
				relCI = mcCIZ * se / logical
			}
			resolved, bound := 0.0, logical+mcCIZ*se
			if relCI <= mcTargetRelCI {
				resolved = 1
			}
			if r.LogicalFaults == 0 {
				bound = 3 / float64(trials)
			}
			return []Metric{
				{"logical_rate", logical},
				{"logical_faults", float64(r.LogicalFaults)},
				{"suppression_lb", p / bound},
				{"resolved", resolved},
				{"rate_bound", bound},
				{"rel_ci_95", relCI},
			}, nil
		},
	}
}

// monteCarloRareExp is the montecarlo sweep on the importance-sampled
// adaptive estimator: the trials axis is a per-point budget, sampling is
// tilted toward a resolvable error rate and reweighted by likelihood
// ratio, and the estimator stops early once the 95% CI is within 10% of
// the estimate — resolving operating points (p ≈ 1e-5) that the naive
// estimator's rule-of-three bound only censors.
func monteCarloRareExp() *Experiment {
	return &Experiment{
		Name:   "montecarlo",
		Title:  "Monte Carlo logical X-error rate vs physical rate per code",
		Axes:   mcAxes(),
		Render: mcRender,
		Eval: func(ctx context.Context, in In) ([]Metric, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c, err := arch.CodeByName(in.Str("code"))
			if err != nil {
				return nil, err
			}
			p := in.Float("physical_rate")
			budget := in.Int("trials")
			_, sp := obs.StartSpan(ctx, "mc-rare")
			pts := c.AdaptiveMonteCarloX([]float64{p}, in.Seed, ecc.AdaptiveOptions{
				Budget:      budget,
				TargetRelCI: mcTargetRelCI,
			})
			sp.End()
			r := pts[0].Result
			mcRecord(in.Obs, EstimatorRare, r.Trials)
			resolved := 0.0
			if r.Resolved(mcTargetRelCI) {
				resolved = 1
			}
			return []Metric{
				{"logical_rate", r.LogicalRate},
				{"stderr", r.StdErr},
				{"rel_ci_95", r.RelCI()},
				{"resolved", resolved},
				{"rate_bound", r.RateBound},
				{"suppression_lb", p / r.RateBound},
				{"trials_used", float64(r.Trials)},
				{"fault_trials", float64(r.FaultTrials)},
				{"tilt_rate", r.TiltRate},
			}, nil
		},
	}
}
