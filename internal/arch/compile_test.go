package arch_test

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/arch"
)

// TestCompiledEvaluationIsByteIdentical is the cache-transparency
// contract: for both engines and every workload kind, evaluating a
// precompiled workload yields a byte-identical Result envelope to the
// one-shot Evaluate path — including when one plan is shared across
// machines, which is exactly what explore's per-sweep cache does.
func TestCompiledEvaluationIsByteIdentical(t *testing.T) {
	ctx := context.Background()
	workloads := []arch.Workload{
		arch.NewAdder(32, false),
		arch.NewAdder(32, true),
		arch.NewModExp(32),
		arch.NewQFT(24),
	}
	machines := make([]*arch.Machine, 2)
	for i, blocks := range []int{9, 16} {
		m, err := arch.New(arch.WithCodeName("bacon-shor"), arch.WithBlocks(blocks))
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
	}
	for _, w := range workloads {
		plan, err := arch.PlanWorkload(w)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range machines {
			for _, engine := range arch.EngineNames() {
				eng, err := m.Engine(engine)
				if err != nil {
					t.Fatal(err)
				}
				direct, err := eng.Evaluate(ctx, w)
				if err != nil {
					t.Fatalf("%s Evaluate(%s/%d): %v", engine, w.Kind, w.Bits, err)
				}
				cw, err := m.CompileWith(w, plan)
				if err != nil {
					t.Fatalf("CompileWith(%s/%d): %v", w.Kind, w.Bits, err)
				}
				compiled, err := eng.EvaluateCompiled(ctx, cw)
				if err != nil {
					t.Fatalf("%s EvaluateCompiled(%s/%d): %v", engine, w.Kind, w.Bits, err)
				}
				dj, _ := json.Marshal(direct)
				cj, _ := json.Marshal(compiled)
				if string(dj) != string(cj) {
					t.Errorf("%s %s/%d: compiled evaluation diverges\n direct:   %s\n compiled: %s",
						engine, w.Kind, w.Bits, dj, cj)
				}
				// Evaluate-many on one compiled workload must be stable.
				again, err := eng.EvaluateCompiled(ctx, cw)
				if err != nil {
					t.Fatal(err)
				}
				aj, _ := json.Marshal(again)
				if string(aj) != string(cj) {
					t.Errorf("%s %s/%d: repeated compiled evaluation drifts", engine, w.Kind, w.Bits)
				}
			}
		}
	}
}

// TestCompileRejectsForeignAndMismatched pins the safety rails: a compiled
// workload evaluated on another machine's engine errors, and a plan bound
// to the wrong workload errors.
func TestCompileRejectsForeignAndMismatched(t *testing.T) {
	m1, err := arch.New()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := arch.New(arch.WithBlocks(9))
	if err != nil {
		t.Fatal(err)
	}
	cw, err := m1.Compile(arch.NewAdder(16, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range arch.EngineNames() {
		eng, err := m2.Engine(engine)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.EvaluateCompiled(context.Background(), cw); err == nil {
			t.Errorf("%s: evaluating another machine's compiled workload did not error", engine)
		}
		if _, err := eng.EvaluateCompiled(context.Background(), nil); err == nil {
			t.Errorf("%s: evaluating a nil compiled workload did not error", engine)
		}
	}
	plan, err := arch.PlanWorkload(arch.NewAdder(16, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.CompileWith(arch.NewAdder(32, false), plan); err == nil {
		t.Error("binding a 16-bit plan to a 32-bit workload did not error")
	}
	if _, err := m1.CompileWith(arch.NewQFT(16), plan); err == nil {
		t.Error("binding an adder plan to a QFT workload did not error")
	}
	if _, err := m1.CompileWith(arch.NewAdder(16, false), nil); err == nil {
		t.Error("binding a nil plan did not error")
	}
	// Adder and modexp share the carry-lookahead kernel by design.
	if _, err := m1.CompileWith(arch.NewModExp(16), plan); err != nil {
		t.Errorf("binding an adder plan to a modexp workload errored: %v", err)
	}
	if _, err := arch.PlanWorkload(arch.Workload{Kind: "nope", Bits: 8}); err == nil {
		t.Error("planning an unknown workload kind did not error")
	}
}

// TestResolveMatchesNew pins Resolve's contract as a cache key: it returns
// exactly the Config a built machine echoes, and errors exactly when New
// errors.
func TestResolveMatchesNew(t *testing.T) {
	optSets := [][]arch.Option{
		{},
		{arch.WithCodeName("bacon-shor"), arch.WithBlocks(49), arch.WithCacheFactor(3)},
		{arch.WithTransferOverlap(0), arch.WithSimChannels(4), arch.WithSimResidency(500)},
	}
	for i, opts := range optSets {
		cfg, err := arch.Resolve(opts...)
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		m, err := arch.New(opts...)
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if cfg != m.Config() {
			t.Errorf("set %d: Resolve = %+v, machine echoes %+v", i, cfg, m.Config())
		}
	}
	if _, err := arch.Resolve(arch.WithBlocks(0)); err == nil {
		t.Error("Resolve accepted zero blocks")
	}
	if _, err := arch.Resolve(arch.WithCodeName("nope")); err == nil {
		t.Error("Resolve accepted an unknown code name")
	}
}

// BenchmarkCompileOnceEvalMany measures the intended hot-loop shape: one
// Machine.Compile, then repeated des-engine evaluations of the 64-bit
// adder. Compare against BenchmarkDES64BitAdder (which pays the DAG build
// per run) for the compile-once gain.
func BenchmarkCompileOnceEvalMany(b *testing.B) {
	m, err := arch.New(arch.WithCodeName("bacon-shor"), arch.WithBlocks(9))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := m.Engine(arch.EngineDES)
	if err != nil {
		b.Fatal(err)
	}
	cw, err := m.Compile(arch.NewAdder(64, false))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateCompiled(ctx, cw); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEvaluateCompiledIntoMatches pins the buffer-reusing variant to the
// allocating one: for both engines and every paper kind, writing into a
// result whose metric buffer holds stale garbage must produce the exact
// envelope EvaluateCompiled returns.
func TestEvaluateCompiledIntoMatches(t *testing.T) {
	ctx := context.Background()
	m, err := arch.New(arch.WithCodeName("bacon-shor"), arch.WithBlocks(9))
	if err != nil {
		t.Fatal(err)
	}
	workloads := []arch.Workload{
		arch.NewAdder(32, false),
		arch.NewModExp(32),
		arch.NewQFT(16),
	}
	for _, engine := range arch.EngineNames() {
		eng, err := m.Engine(engine)
		if err != nil {
			t.Fatal(err)
		}
		// One result reused across every workload, so each call must both
		// overwrite the previous metrics and shrink/grow the buffer.
		got := arch.Result{Metrics: []arch.Metric{{Name: "stale", Value: -1}}}
		for _, w := range workloads {
			cw, err := m.Compile(w)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eng.EvaluateCompiled(ctx, cw)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.EvaluateCompiledInto(ctx, cw, &got); err != nil {
				t.Fatalf("%s EvaluateCompiledInto(%s/%d): %v", engine, w.Kind, w.Bits, err)
			}
			wj, _ := json.Marshal(want)
			gj, _ := json.Marshal(got)
			if string(wj) != string(gj) {
				t.Errorf("%s %s/%d: Into variant diverges\n want: %s\n got:  %s",
					engine, w.Kind, w.Bits, wj, gj)
			}
		}
		var sink arch.Result
		if err := eng.EvaluateCompiledInto(ctx, nil, &sink); err == nil {
			t.Errorf("%s: EvaluateCompiledInto accepted a nil compile", engine)
		}
	}
}

// TestEvaluateCompiledIntoAllocationFree is the compile-once/evaluate-many
// allocation contract at the engine level: with the arena pooled at compile
// time and the metric buffer reused, a steady-state des evaluation of the
// 64-bit adder performs zero allocations.
func TestEvaluateCompiledIntoAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool allocates under the race detector; the count means nothing")
	}
	m, err := arch.New(arch.WithCodeName("bacon-shor"), arch.WithBlocks(9))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := m.Engine(arch.EngineDES)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := m.Compile(arch.NewAdder(64, false))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var res arch.Result
	if err := eng.EvaluateCompiledInto(ctx, cw, &res); err != nil { // warm buffers
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(20, func() {
		if err := eng.EvaluateCompiledInto(ctx, cw, &res); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state EvaluateCompiledInto allocates %.1f times per run, want 0", avg)
	}
}
