// Package arch is the unified architecture-evaluation API of the
// reproduction: one error-returning builder over every machine knob the
// paper sweeps, and one Engine interface with interchangeable evaluation
// backends — the closed-form analytic model (internal/cqla + internal/qla)
// and the discrete-event simulator (internal/des). Where cqla.Config keeps
// zero-value sentinels for backward compatibility (zero means "paper
// default", a negative overlap means "literally none"), arch options are
// literal: WithTransferOverlap(0) models no overlap, and omitting an
// option selects the paper default explicitly at build time.
//
// The intended flow is:
//
//	m, err := arch.New(arch.WithCodeName("bacon-shor"), arch.WithBlocks(36))
//	eng, err := m.Engine(arch.EngineDES)
//	res, err := eng.Evaluate(ctx, arch.NewAdder(256, true))
//
// Result is a versioned, JSON-stable envelope (SchemaVersion, config echo,
// ordered named metrics) shared with the explore emitters and the `cqla
// serve` endpoint, so every consumer — sweep tables, HTTP clients, golden
// tests — reads the same shape.
package arch

import (
	"fmt"

	"repro/internal/cqla"
	"repro/internal/ecc"
	"repro/internal/phys"
	"repro/internal/qla"
)

// Config is the fully resolved machine configuration echoed into every
// Result envelope. All fields are literal: no zero-value sentinels remain
// after New.
type Config struct {
	// Code is the error-correction code of the machine's regions, by
	// registry name ("steane" or "bacon-shor").
	Code string `json:"code"`
	// Phys names the ion-trap technology point ("projected" or "current").
	Phys string `json:"phys"`
	// Blocks is the number of level-2 compute blocks.
	Blocks int `json:"blocks"`
	// Transfers is the memory<->cache transfer-network width.
	Transfers int `json:"transfers"`
	// CacheFactor sizes the level-1 cache relative to the level-1 compute
	// region's data qubits.
	CacheFactor float64 `json:"cache_factor"`
	// Overlap is the fraction of transfer latency hidden by the static
	// schedule; 0 really means none.
	Overlap float64 `json:"overlap"`
	// SimChannels, if nonzero, overrides the discrete-event engine's
	// teleportation-channel count (otherwise derived from Transfers and the
	// code's per-transfer channel requirement).
	SimChannels int `json:"sim_channels,omitempty"`
	// SimResidency, if nonzero, overrides the discrete-event engine's
	// resident-qubit capacity (otherwise derived from Blocks and
	// CacheFactor).
	SimResidency int `json:"sim_residency,omitempty"`
}

// CodeNames lists the supported code names, Steane first (matching
// ecc.Codes order).
func CodeNames() []string { return []string{"steane", "bacon-shor"} }

// CodeByName resolves a registry code name to its ecc constructor.
func CodeByName(name string) (*ecc.Code, error) {
	switch name {
	case "steane":
		return ecc.Steane(), nil
	case "bacon-shor":
		return ecc.BaconShor(), nil
	}
	return nil, fmt.Errorf("arch: unknown code %q (have %v)", name, CodeNames())
}

// settings accumulates options before validation.
type settings struct {
	code         *ecc.Code
	codeName     string
	codeErr      error
	params       phys.Params
	blocks       int
	transfers    int
	cacheFactor  float64
	overlap      float64
	simChannels  int
	simResidency int
}

// Option configures one knob of the machine under construction.
type Option func(*settings)

// WithCode selects the error-correction code of the machine's regions.
func WithCode(c *ecc.Code) Option {
	return func(s *settings) {
		s.code = c
		if c != nil {
			s.codeName = codeName(c)
		}
		s.codeErr = nil
	}
}

// WithCodeName selects the code by registry name ("steane" or
// "bacon-shor"); an unknown name surfaces as New's error.
func WithCodeName(name string) Option {
	return func(s *settings) {
		c, err := CodeByName(name)
		s.code, s.codeName, s.codeErr = c, name, err
	}
}

// WithParams selects the ion-trap technology point.
func WithParams(p phys.Params) Option { return func(s *settings) { s.params = p } }

// WithBlocks sets the number of level-2 compute blocks.
func WithBlocks(n int) Option { return func(s *settings) { s.blocks = n } }

// WithTransfers sets the memory<->cache transfer-network width (the "Par
// Xfer" of Table 5).
func WithTransfers(n int) Option { return func(s *settings) { s.transfers = n } }

// WithCacheFactor sizes the level-1 cache as a multiple of the level-1
// compute region's data qubits.
func WithCacheFactor(f float64) Option { return func(s *settings) { s.cacheFactor = f } }

// WithTransferOverlap sets the fraction of memory<->cache transfer latency
// the static schedule hides. Unlike cqla.Config, zero means literally zero
// overlap — there is no sentinel.
func WithTransferOverlap(f float64) Option { return func(s *settings) { s.overlap = f } }

// WithSimChannels overrides the discrete-event engine's channel count.
func WithSimChannels(n int) Option { return func(s *settings) { s.simChannels = n } }

// WithSimResidency overrides the discrete-event engine's resident-qubit
// capacity (compute region plus cache).
func WithSimResidency(n int) Option { return func(s *settings) { s.simResidency = n } }

// Machine is a validated machine configuration with its analytic model
// instantiated; engines evaluate workloads against it.
type Machine struct {
	cfg  Config
	code *ecc.Code
	phys phys.Params
	cq   *cqla.Machine
}

// resolve applies the options to the paper-default working point and
// validates the result.
func resolve(opts []Option) (settings, error) {
	s := settings{
		code:        ecc.Steane(),
		codeName:    "steane",
		params:      phys.Projected(),
		blocks:      36,
		transfers:   10,
		cacheFactor: cqla.CacheFactor,
		overlap:     cqla.TransferOverlap,
	}
	for _, o := range opts {
		o(&s)
	}
	if s.codeErr != nil {
		return settings{}, s.codeErr
	}
	if s.code == nil {
		return settings{}, fmt.Errorf("arch: nil code")
	}
	if s.blocks < 1 {
		return settings{}, fmt.Errorf("arch: %d compute blocks, need at least 1", s.blocks)
	}
	if s.transfers < 1 {
		return settings{}, fmt.Errorf("arch: %d parallel transfers, need at least 1", s.transfers)
	}
	if s.cacheFactor <= 0 {
		return settings{}, fmt.Errorf("arch: cache factor %g, need > 0", s.cacheFactor)
	}
	if s.overlap < 0 || s.overlap > 1 {
		return settings{}, fmt.Errorf("arch: transfer overlap %g outside [0, 1]", s.overlap)
	}
	if s.simChannels < 0 {
		return settings{}, fmt.Errorf("arch: %d sim channels, need >= 0 (0 derives from transfers)", s.simChannels)
	}
	if s.simResidency < 0 {
		return settings{}, fmt.Errorf("arch: %d sim resident qubits, need >= 0 (0 derives from blocks)", s.simResidency)
	}
	return s, nil
}

// config renders the resolved settings as the Result-envelope echo.
func (s *settings) config() Config {
	return Config{
		Code:         s.codeName,
		Phys:         s.params.Name,
		Blocks:       s.blocks,
		Transfers:    s.transfers,
		CacheFactor:  s.cacheFactor,
		Overlap:      s.overlap,
		SimChannels:  s.simChannels,
		SimResidency: s.simResidency,
	}
}

// Resolve applies the options to the paper-default working point and
// returns the fully resolved, validated configuration without building the
// machine's analytic models. Because Config is a comparable value it works
// as a cache key: two option lists resolving to the same Config produce
// machines with identical behavior, which is what explore's per-sweep
// machine cache relies on. (Codes selected via WithCode rather than the
// registry render by their short name; distinct hand-built codes sharing a
// short name would collide, so cache only registry-named machines.)
func Resolve(opts ...Option) (Config, error) {
	s, err := resolve(opts)
	if err != nil {
		return Config{}, err
	}
	return s.config(), nil
}

// New builds a Machine from the paper's default working point (Steane
// code, projected parameters, 36 compute blocks, 10 parallel transfers,
// the Section 5.2 cache factor and overlap) modified by the given options.
// It returns an error — never panics — on an inconsistent configuration.
func New(opts ...Option) (*Machine, error) {
	s, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	// Translate literal overlap into cqla's sentinel encoding.
	cqOverlap := s.overlap
	if cqOverlap == 0 {
		cqOverlap = cqla.NoTransferOverlap
	}
	cq, err := cqla.NewMachine(cqla.Config{
		Code:              s.code,
		Params:            s.params,
		ComputeBlocks:     s.blocks,
		ParallelTransfers: s.transfers,
		CacheFactor:       s.cacheFactor,
		TransferOverlap:   cqOverlap,
	})
	if err != nil {
		return nil, err
	}
	return &Machine{
		cfg:  s.config(),
		code: s.code,
		phys: s.params,
		cq:   cq,
	}, nil
}

// Config returns the resolved configuration echoed into Result envelopes.
func (m *Machine) Config() Config { return m.cfg }

// Code returns the machine's error-correction code.
func (m *Machine) Code() *ecc.Code { return m.code }

// Params returns the machine's technology point.
func (m *Machine) Params() phys.Params { return m.phys }

// Analytic exposes the underlying closed-form cqla model for callers that
// need methods the engine metrics do not cover (figure drivers, floorplan
// cross-checks).
func (m *Machine) Analytic() *cqla.Machine { return m.cq }

// Baseline returns the QLA model results are normalized against.
func (m *Machine) Baseline() qla.Model { return m.cq.Baseline() }

// codeName maps a code value back to its registry name; unknown codes
// render their short name so the config echo stays informative.
func codeName(c *ecc.Code) string {
	switch c.Short {
	case ecc.Steane().Short:
		return "steane"
	case ecc.BaconShor().Short:
		return "bacon-shor"
	}
	return c.Short
}
