package arch_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/cqla"
	"repro/internal/ecc"
	"repro/internal/gen"
	"repro/internal/phys"
)

func TestNewDefaults(t *testing.T) {
	m, err := arch.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.Code != "steane" || cfg.Phys != "projected" {
		t.Errorf("default code/phys = %q/%q", cfg.Code, cfg.Phys)
	}
	if cfg.Blocks != 36 || cfg.Transfers != 10 {
		t.Errorf("default blocks/transfers = %d/%d", cfg.Blocks, cfg.Transfers)
	}
	if cfg.CacheFactor != cqla.CacheFactor || cfg.Overlap != cqla.TransferOverlap {
		t.Errorf("defaults should be the paper's: %+v", cfg)
	}
}

func TestNewErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []arch.Option
		frag string
	}{
		{"unknown code", []arch.Option{arch.WithCodeName("surface")}, "unknown code"},
		{"nil code", []arch.Option{arch.WithCode(nil)}, "nil code"},
		{"zero blocks", []arch.Option{arch.WithBlocks(0)}, "compute blocks"},
		{"negative transfers", []arch.Option{arch.WithTransfers(-1)}, "parallel transfers"},
		{"zero cache", []arch.Option{arch.WithCacheFactor(0)}, "cache factor"},
		{"overlap above one", []arch.Option{arch.WithTransferOverlap(1.5)}, "overlap"},
		{"negative sim channels", []arch.Option{arch.WithSimChannels(-2)}, "sim channels"},
		{"negative sim residency", []arch.Option{arch.WithSimResidency(-2)}, "resident"},
	}
	for _, c := range cases {
		if _, err := arch.New(c.opts...); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.frag)
		}
	}
}

// TestZeroOverlapIsLiteral: the arch API has no zero-value sentinel —
// WithTransferOverlap(0) models no overlap at all, which must stall the
// level-1 adder ten times longer than the paper's 0.9 default.
func TestZeroOverlapIsLiteral(t *testing.T) {
	noOv, err := arch.New(arch.WithTransferOverlap(0))
	if err != nil {
		t.Fatal(err)
	}
	def, err := arch.New()
	if err != nil {
		t.Fatal(err)
	}
	r := float64(noOv.Analytic().TransferStall()) / float64(def.Analytic().TransferStall())
	if r < 9.99 || r > 10.01 {
		t.Errorf("zero-overlap stall should be 10x the 0.9-overlap stall, got %.3fx", r)
	}
}

func TestEngineLookup(t *testing.T) {
	m, err := arch.New()
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]string{
		"":         arch.EngineAnalytic,
		"analytic": arch.EngineAnalytic,
		"des":      arch.EngineDES,
		"sim":      arch.EngineDES,
	} {
		eng, err := m.Engine(name)
		if err != nil {
			t.Fatalf("Engine(%q): %v", name, err)
		}
		if eng.Name() != want {
			t.Errorf("Engine(%q).Name() = %q, want %q", name, eng.Name(), want)
		}
	}
	if _, err := m.Engine("montecarlo"); err == nil {
		t.Error("unknown engine should be rejected")
	}
}

// TestAnalyticMatchesClosedForm demands bitwise agreement between the
// engine's envelope and the direct cqla computation it wraps — the API is
// a re-plumbing, not an approximation.
func TestAnalyticMatchesClosedForm(t *testing.T) {
	p := phys.Projected()
	m, err := arch.New(
		arch.WithCodeName("bacon-shor"),
		arch.WithParams(p),
		arch.WithBlocks(36),
		arch.WithTransfers(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := m.Engine(arch.EngineAnalytic)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Evaluate(context.Background(), arch.NewAdder(256, true))
	if err != nil {
		t.Fatal(err)
	}
	cm := cqla.New(cqla.Config{Code: ecc.BaconShor(), Params: p, ComputeBlocks: 36, ParallelTransfers: 10})
	q := gen.NewModExp(256).LogicalQubits()
	for name, want := range map[string]float64{
		"area_reduction": cm.AreaReduction(q, true),
		"l1_speedup":     cm.SpeedupL1(256),
		"l2_speedup":     cm.SpeedupL2(256),
		"adder_speedup":  cm.AdderSpeedup(256),
		"gain_product":   cm.GainProduct(256, q, true),
	} {
		if got := res.MustMetric(name); got != want {
			t.Errorf("%s = %v, want exactly %v", name, got, want)
		}
	}
	if res.SchemaVersion != arch.SchemaVersion || res.Engine != arch.EngineAnalytic {
		t.Errorf("envelope header: %+v", res)
	}
	if res.Config.Code != "bacon-shor" || res.Workload.Bits != 256 {
		t.Errorf("envelope echo: %+v %+v", res.Config, res.Workload)
	}
}

func TestSimEngineAdder(t *testing.T) {
	m, err := arch.New(arch.WithCodeName("bacon-shor"), arch.WithBlocks(9))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := m.Engine(arch.EngineDES)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Evaluate(context.Background(), arch.NewAdder(16, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != arch.EngineDES || len(res.Metrics) == 0 {
		t.Fatalf("unpopulated des envelope: %+v", res)
	}
	mk := res.MustMetric("makespan_s")
	if mk <= 0 {
		t.Errorf("makespan_s = %g, want > 0", mk)
	}
	if res.MustMetric("transports") <= 0 {
		t.Error("simulation should fetch operands from memory")
	}
	// The simulator can never beat the compute-only lower bound.
	if co := res.MustMetric("compute_only_s"); mk < co {
		t.Errorf("makespan %.3fs below compute-only bound %.3fs", mk, co)
	}
	hidden := res.MustMetric("communication_hidden")
	if hidden < 0 || hidden > 1 {
		t.Errorf("communication_hidden = %g outside [0,1]", hidden)
	}
}

func TestSimEngineModExpAndQFT(t *testing.T) {
	m, err := arch.New(arch.WithCodeName("bacon-shor"), arch.WithBlocks(4))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := m.Engine("sim")
	if err != nil {
		t.Fatal(err)
	}
	me, err := eng.Evaluate(context.Background(), arch.NewModExp(8))
	if err != nil {
		t.Fatal(err)
	}
	if me.MustMetric("computation_s") <= me.MustMetric("adder_makespan_s") {
		t.Error("modexp time should exceed one adder call")
	}
	qft, err := eng.Evaluate(context.Background(), arch.NewQFT(12))
	if err != nil {
		t.Fatal(err)
	}
	if qft.MustMetric("makespan_s") <= 0 {
		t.Error("QFT simulation produced no makespan")
	}
}

func TestSimEngineHonorsContext(t *testing.T) {
	m, err := arch.New(arch.WithBlocks(9))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := m.Engine(arch.EngineDES)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Evaluate(ctx, arch.NewAdder(64, false)); err == nil {
		t.Error("canceled context should abort the simulation")
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := (arch.Workload{Kind: "fft", Bits: 8}).Validate(); err == nil {
		t.Error("unknown kind should be rejected")
	}
	if err := arch.NewAdder(1, false).Validate(); err == nil {
		t.Error("1-bit adder should be rejected")
	}
	if err := arch.NewQFT(8).Validate(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
}

// TestResultJSONStable: the envelope is the serving contract — it must
// parse, carry the version, and render metrics in engine order.
func TestResultJSONStable(t *testing.T) {
	m, err := arch.New(arch.WithCodeName("steane"), arch.WithBlocks(4))
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := m.Engine("")
	res, err := eng.Evaluate(context.Background(), arch.NewAdder(32, false))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(res)
	if string(b1) != string(b2) {
		t.Error("marshaling the same result twice should be byte-identical")
	}
	var doc struct {
		SchemaVersion int                `json:"schema_version"`
		Engine        string             `json:"engine"`
		Workload      map[string]any     `json:"workload"`
		Config        map[string]any     `json:"config"`
		Metrics       map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("envelope does not parse: %v\n%s", err, b1)
	}
	if doc.SchemaVersion != arch.SchemaVersion || doc.Engine != "analytic" {
		t.Errorf("header: %+v", doc)
	}
	if doc.Config["code"] != "steane" || doc.Workload["kind"] != "adder" {
		t.Errorf("echo: %+v", doc)
	}
	if doc.Metrics["area_reduction"] == 0 {
		t.Error("metrics did not round-trip")
	}
	// Field order is part of the contract: version first, metrics last.
	s := string(b1)
	if !strings.HasPrefix(s, `{"schema_version":`) || !strings.Contains(s, `"metrics":{"area_reduction":`) {
		t.Errorf("unexpected field layout: %s", s)
	}
}
