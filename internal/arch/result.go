package arch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// SchemaVersion is the version of the Result envelope (and of the explore
// report documents that embed its fields). Bump it whenever the JSON shape
// changes incompatibly.
const SchemaVersion = 1

// Metric is one named scalar an engine computed.
type Metric struct {
	Name  string
	Value float64
}

// Result is the versioned evaluation envelope every engine returns: which
// engine produced it, what it ran, on which machine, and the metrics in
// the engine's declared order. Its JSON form is byte-stable for a given
// evaluation — field order is fixed and metrics render as an ordered
// object.
type Result struct {
	SchemaVersion int
	Engine        string
	Workload      Workload
	Config        Config
	Metrics       []Metric
}

// Metric returns the named metric's value, or an error naming what the
// engine actually produced.
func (r Result) Metric(name string) (float64, error) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, nil
		}
	}
	return 0, fmt.Errorf("arch: %s result has no metric %q", r.Engine, name)
}

// MustMetric is Metric but panics on a missing name; for tests and
// consumers selecting from metric sets they themselves defined.
func (r Result) MustMetric(name string) float64 {
	v, err := r.Metric(name)
	if err != nil {
		panic(err)
	}
	return v
}

// MarshalJSON renders the envelope with fixed field order and metrics as
// an ordered JSON object. Non-finite metric values become null — JSON has
// no NaN/Inf literals and the document must stay parseable whatever an
// engine computes.
func (r Result) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	wl, err := json.Marshal(r.Workload)
	if err != nil {
		return nil, err
	}
	cfg, err := json.Marshal(r.Config)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, `{"schema_version":%d,"engine":%s,"workload":%s,"config":%s,"metrics":{`,
		r.SchemaVersion, jsonString(r.Engine), wl, cfg)
	for i, m := range r.Metrics {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%s", jsonString(m.Name), jsonFloat(m.Value))
	}
	b.WriteString("}}")
	return b.Bytes(), nil
}

// jsonString quotes via encoding/json (Go's %q escapes control characters
// in ways JSON parsers reject).
func jsonString(s string) string {
	out, err := json.Marshal(s)
	if err != nil { // a plain string never fails to marshal
		panic(err)
	}
	return string(out)
}

// jsonFloat renders a float as the shortest round-tripping literal, with
// non-finite values as null.
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
