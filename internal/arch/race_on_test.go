//go:build race

package arch_test

// raceEnabled reports whether the race detector is compiled in.
// Allocation-count assertions are skipped under it: the race runtime
// allocates on sync.Pool operations, so AllocsPerRun measures the
// instrumentation, not the code.
const raceEnabled = true
