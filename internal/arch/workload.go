package arch

import "fmt"

// Kind names a workload family the engines know how to evaluate.
type Kind string

const (
	// KindAdder is the paper's kernel: one n-bit carry-lookahead addition,
	// evaluated inside an n-bit modular exponentiation's memory footprint.
	KindAdder Kind = "adder"
	// KindModExp is the full modular exponentiation of Shor's algorithm at
	// n bits (Figure 8a's computation-vs-communication study).
	KindModExp Kind = "modexp"
	// KindQFT is the n-qubit quantum Fourier transform (Figure 8b's
	// communication-bound contrast).
	KindQFT Kind = "qft"
)

// Workload describes what the machine is asked to run. It is part of the
// Result envelope, so its JSON field order is fixed.
type Workload struct {
	// Kind selects the workload family.
	Kind Kind `json:"kind"`
	// Bits is the problem size: adder/modexp input bits or QFT width.
	Bits int `json:"bits"`
	// Hierarchy includes the level-1 cache + compute tier in area and
	// blended-speedup metrics (Table 5's view rather than Table 4's).
	Hierarchy bool `json:"hierarchy"`
}

// NewAdder describes one n-bit addition, with or without the memory
// hierarchy's level-1 tier.
func NewAdder(bits int, hierarchy bool) Workload {
	return Workload{Kind: KindAdder, Bits: bits, Hierarchy: hierarchy}
}

// NewModExp describes an n-bit modular exponentiation.
func NewModExp(bits int) Workload { return Workload{Kind: KindModExp, Bits: bits} }

// NewQFT describes an n-qubit quantum Fourier transform.
func NewQFT(bits int) Workload { return Workload{Kind: KindQFT, Bits: bits} }

// Validate reports whether the workload is well-formed.
func (w Workload) Validate() error {
	switch w.Kind {
	case KindAdder, KindModExp, KindQFT:
	default:
		return fmt.Errorf("arch: unknown workload kind %q", w.Kind)
	}
	if w.Bits < 2 {
		return fmt.Errorf("arch: %s workload of %d bits, need at least 2", w.Kind, w.Bits)
	}
	return nil
}
