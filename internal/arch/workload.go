package arch

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/shor"
)

// Kind names a workload family the engines know how to evaluate.
type Kind string

const (
	// KindAdder is the paper's kernel: one n-bit carry-lookahead addition,
	// evaluated inside an n-bit modular exponentiation's memory footprint.
	KindAdder Kind = "adder"
	// KindModExp is the full modular exponentiation of Shor's algorithm at
	// n bits (Figure 8a's computation-vs-communication study).
	KindModExp Kind = "modexp"
	// KindQFT is the n-qubit quantum Fourier transform (Figure 8b's
	// communication-bound contrast).
	KindQFT Kind = "qft"
	// KindQFTComm is the QFT with explicit bit-reversal swap chains — the
	// communication-dominated variant of examples/qftcomm, where three-CNOT
	// swaps force nearest-neighbour data movement on top of the rotation
	// cascade.
	KindQFTComm Kind = "qftcomm"
	// KindShorStage is one controlled addition — the repeated stage of
	// Shor's modular exponentiation (shor.StageCircuit), with conditioned
	// sum writes and control fan-out on top of the carry network.
	KindShorStage Kind = "shor-stage"
	// KindCustom is a user-supplied circuit ingested via circuit.Parse;
	// custom workloads carry a Name and are compiled with PlanCircuit
	// rather than through the kernel registry.
	KindCustom Kind = "custom"
)

// kernelCircuits is the registry of built-in kernel builders keyed by kind.
// Adder and modexp are absent deliberately: they compile through the shared
// cqla.AdderPlan (the paper evaluates modular exponentiation as repeated
// additions), not through a one-shot circuit build. The map is assigned
// only at declaration and never mutated, so reads from the evaluation path
// stay pure.
var kernelCircuits = map[Kind]func(bits int) *circuit.Circuit{
	KindQFT:       func(bits int) *circuit.Circuit { return gen.QFT(bits, false) },
	KindQFTComm:   func(bits int) *circuit.Circuit { return gen.QFT(bits, true) },
	KindShorStage: shor.StageCircuit,
}

// Kinds returns the built-in workload kinds in presentation order (KindCustom
// excluded — custom workloads are constructed from a circuit, not a kind).
func Kinds() []Kind {
	return []Kind{KindAdder, KindModExp, KindQFT, KindQFTComm, KindShorStage}
}

// Workload describes what the machine is asked to run. It is part of the
// Result envelope, so its JSON field order is fixed; Name is present only
// for custom workloads, keeping built-in envelopes byte-identical to their
// historical form.
type Workload struct {
	// Kind selects the workload family.
	Kind Kind `json:"kind"`
	// Bits is the problem size: adder/modexp input bits, QFT width, or a
	// custom circuit's register width.
	Bits int `json:"bits"`
	// Hierarchy includes the level-1 cache + compute tier in area and
	// blended-speedup metrics (Table 5's view rather than Table 4's).
	Hierarchy bool `json:"hierarchy"`
	// Name identifies a custom circuit; it must be empty for built-in
	// kinds and non-empty for KindCustom.
	Name string `json:"name,omitempty"`
}

// NewAdder describes one n-bit addition, with or without the memory
// hierarchy's level-1 tier.
func NewAdder(bits int, hierarchy bool) Workload {
	return Workload{Kind: KindAdder, Bits: bits, Hierarchy: hierarchy}
}

// NewModExp describes an n-bit modular exponentiation.
func NewModExp(bits int) Workload { return Workload{Kind: KindModExp, Bits: bits} }

// NewQFT describes an n-qubit quantum Fourier transform.
func NewQFT(bits int) Workload { return Workload{Kind: KindQFT, Bits: bits} }

// NewKind describes an n-bit instance of any built-in kind — the uniform
// constructor the workload axes of sweeps use.
func NewKind(kind Kind, bits int) Workload { return Workload{Kind: kind, Bits: bits} }

// Kernel returns the identity of the kernel plan the workload compiles to —
// the key under which plans are shareable. Adder and modexp collapse onto
// the one shared carry-lookahead kernel (the paper evaluates modular
// exponentiation as repeated additions); custom workloads are distinguished
// by name.
func (w Workload) Kernel() string {
	switch w.Kind {
	case KindAdder, KindModExp:
		return string(KindAdder)
	case KindCustom:
		return "custom:" + w.Name
	default:
		return string(w.Kind)
	}
}

// Validate reports whether the workload is well-formed.
func (w Workload) Validate() error {
	switch w.Kind {
	case KindCustom:
		if w.Name == "" {
			return fmt.Errorf("arch: custom workload needs a name")
		}
		if w.Bits < 1 {
			return fmt.Errorf("arch: custom workload %q over %d qubits, need at least 1", w.Name, w.Bits)
		}
		return nil
	case KindAdder, KindModExp, KindQFT, KindQFTComm, KindShorStage:
		if w.Name != "" {
			return fmt.Errorf("arch: only custom workloads carry a name, got %q on kind %s", w.Name, w.Kind)
		}
	default:
		return fmt.Errorf("arch: unknown workload kind %q", w.Kind)
	}
	if w.Bits < 2 {
		return fmt.Errorf("arch: %s workload of %d bits, need at least 2", w.Kind, w.Bits)
	}
	return nil
}
