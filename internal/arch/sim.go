package arch

import (
	"context"
	"strconv"
	"time"

	"repro/internal/cqla"
	"repro/internal/des"
	"repro/internal/obs"
)

// simEngine evaluates workloads by discrete-event simulation: the actual
// circuit executes on explicit compute blocks, teleportation channels and
// a bounded residency set (internal/des), measuring what the closed-form
// model assumes — in particular how much memory traffic really hides
// beneath error-correction-dominated computation.
type simEngine struct{ m *Machine }

func (simEngine) Name() string { return EngineDES }

// desConfig derives the simulator's machine description from the resolved
// arch configuration: channels shrink by the code's per-transfer channel
// requirement, and the residency set is the level-2 compute region's data
// qubits plus the cache-factor-sized cache, unless overridden.
func (m *Machine) desConfig() des.Config {
	cfg := m.cfg
	channels := cfg.SimChannels
	if channels == 0 {
		channels = cfg.Transfers / m.code.ChannelsRequired()
		if channels < 1 {
			channels = 1
		}
	}
	resident := cfg.SimResidency
	if resident == 0 {
		// The cache sizing must match the analytic machine's: the level-1
		// region is capped at one superblock (cqla.Machine.Level1Blocks),
		// so past it the cache stops growing with the block budget.
		computeData := cfg.Blocks * cqla.BlockDataQubits
		cacheData := int(cfg.CacheFactor * float64(m.cq.Level1Blocks()*cqla.BlockDataQubits))
		resident = computeData + cacheData
	}
	if resident < 3 {
		resident = 3 // a Toffoli's operands must fit
	}
	return des.Config{
		Blocks:         cfg.Blocks,
		Channels:       channels,
		ResidentQubits: resident,
		SlotTime:       m.code.ECTime(2, m.phys),
		TransportTime:  m.code.TransversalGateTime(2, m.phys),
	}
}

// simulate runs the compiled kernel once and returns its stats plus the
// compute-only lower bound (the list-scheduled makespan at the same block
// count, with communication free), which anchors the communication-hidden
// metric. All setup — circuit generation, DAG construction, scheduling,
// and now the simulation arena itself — happened at compile time, so
// repeated evaluations pay only the event loop: the run replays on a
// pooled des.Runner and allocates nothing.
func (e simEngine) simulate(ctx context.Context, cw *CompiledWorkload) (des.Stats, time.Duration, error) {
	_, sp := obs.StartSpan(ctx, "sim-run")
	r := cw.runner()
	stats, err := r.Run(ctx)
	cw.runners.Put(r)
	sp.End()
	if err != nil {
		return des.Stats{}, 0, err
	}
	return stats, cw.computeOnly(), nil
}

// appendStatMetrics appends the shared simulation measurements to dst.
func appendStatMetrics(dst []Metric, stats des.Stats, computeOnly time.Duration) []Metric {
	return append(dst,
		Metric{"makespan_s", stats.Makespan.Seconds()},
		Metric{"compute_only_s", computeOnly.Seconds()},
		Metric{"communication_hidden", des.CommunicationHidden(stats, computeOnly)},
		Metric{"stall_s", stats.StallTime.Seconds()},
		Metric{"transports", float64(stats.Transports)},
		Metric{"transport_busy_s", stats.TransportBusy.Seconds()},
		Metric{"block_utilization", stats.BlockUtilization},
		Metric{"channel_utilization", stats.ChannelUtilization},
	)
}

// Evaluate compiles the workload and runs it once. Callers evaluating the
// same workload repeatedly should compile once (Machine.Compile) and call
// EvaluateCompiled — the DAG build that dominates a one-shot evaluation at
// paper sizes then happens a single time.
func (e simEngine) Evaluate(ctx context.Context, w Workload) (Result, error) {
	// The one-shot path pays circuit generation + DAG build here; the
	// span makes that cost visible next to sim-run in a -trace dump.
	_, sp := obs.StartSpan(ctx, "plan-compile")
	cw, err := e.m.Compile(w)
	sp.End()
	if err != nil {
		return Result{}, err
	}
	return e.EvaluateCompiled(ctx, cw)
}

func (e simEngine) EvaluateCompiled(ctx context.Context, cw *CompiledWorkload) (Result, error) {
	var res Result
	if err := e.EvaluateCompiledInto(ctx, cw, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// EvaluateCompiledInto evaluates a precompiled workload into out, reusing
// out's metric buffer across calls. With no tracer in ctx, a steady-state
// evaluation — pooled simulation arena, precompiled DAG, precomputed
// workload constants, recycled metrics — performs zero allocations.
func (e simEngine) EvaluateCompiledInto(ctx context.Context, cw *CompiledWorkload, out *Result) error {
	if cw == nil || cw.m != e.m {
		return errForeignCompile
	}
	ctx, sp := obs.StartSpan(ctx, "des-eval")
	defer sp.End()
	w := cw.w
	if sp != nil {
		sp.Annotate("kind", string(w.Kind))
		sp.Annotate("bits", strconv.Itoa(w.Bits))
	}
	// Every workload kind runs the same compiled kernel once; only the
	// metric decode below differs.
	stats, computeOnly, err := e.simulate(ctx, cw)
	if err != nil {
		return err
	}
	_, dec := obs.StartSpan(ctx, "decode")
	defer dec.End()
	cm := e.m.cq
	n := w.Bits
	metrics := out.Metrics[:0]
	switch w.Kind {
	case KindAdder:
		metrics = append(metrics,
			// Area has no dynamic component; the simulator reuses the
			// closed-form floorplan so its envelope stays comparable.
			Metric{"area_reduction", cm.AreaReduction(cw.adderQubits, w.Hierarchy)},
			Metric{"sim_speedup", float64(cm.QLAAdderTime(n)) / float64(stats.Makespan)},
		)
		metrics = appendStatMetrics(metrics, stats, computeOnly)
		metrics = append(metrics, Metric{"qla_time_s", cm.QLAAdderTime(n).Seconds()})
	case KindModExp:
		// The full modular-exponentiation circuit is out of simulation
		// reach at paper sizes; simulate its adder kernel and scale by the
		// sequential adder calls, as the analytic model does.
		seq := float64(cw.adderCalls) / float64(cw.concurrentAdders)
		metrics = append(metrics,
			Metric{"computation_s", seq * stats.Makespan.Seconds()},
			Metric{"adder_makespan_s", stats.Makespan.Seconds()},
			Metric{"adder_compute_only_s", computeOnly.Seconds()},
			Metric{"adder_calls", float64(cw.adderCalls)},
			Metric{"concurrent_adders", float64(cw.concurrentAdders)},
			Metric{"communication_hidden", des.CommunicationHidden(stats, computeOnly)},
			Metric{"stall_s", stats.StallTime.Seconds()},
			Metric{"transports", float64(stats.Transports)},
			Metric{"transport_busy_s", stats.TransportBusy.Seconds()},
			Metric{"block_utilization", stats.BlockUtilization},
			Metric{"channel_utilization", stats.ChannelUtilization},
		)
	default: // KindQFT and custom circuits, by Validate
		metrics = appendStatMetrics(metrics, stats, computeOnly)
	}
	*out = e.m.result(EngineDES, w, metrics)
	return nil
}
