package arch

import (
	"context"
	"strconv"
	"time"

	"repro/internal/cqla"
	"repro/internal/des"
	"repro/internal/gen"
	"repro/internal/obs"
)

// simEngine evaluates workloads by discrete-event simulation: the actual
// circuit executes on explicit compute blocks, teleportation channels and
// a bounded residency set (internal/des), measuring what the closed-form
// model assumes — in particular how much memory traffic really hides
// beneath error-correction-dominated computation.
type simEngine struct{ m *Machine }

func (simEngine) Name() string { return EngineDES }

// desConfig derives the simulator's machine description from the resolved
// arch configuration: channels shrink by the code's per-transfer channel
// requirement, and the residency set is the level-2 compute region's data
// qubits plus the cache-factor-sized cache, unless overridden.
func (m *Machine) desConfig() des.Config {
	cfg := m.cfg
	channels := cfg.SimChannels
	if channels == 0 {
		channels = cfg.Transfers / m.code.ChannelsRequired()
		if channels < 1 {
			channels = 1
		}
	}
	resident := cfg.SimResidency
	if resident == 0 {
		// The cache sizing must match the analytic machine's: the level-1
		// region is capped at one superblock (cqla.Machine.Level1Blocks),
		// so past it the cache stops growing with the block budget.
		computeData := cfg.Blocks * cqla.BlockDataQubits
		cacheData := int(cfg.CacheFactor * float64(m.cq.Level1Blocks()*cqla.BlockDataQubits))
		resident = computeData + cacheData
	}
	if resident < 3 {
		resident = 3 // a Toffoli's operands must fit
	}
	return des.Config{
		Blocks:         cfg.Blocks,
		Channels:       channels,
		ResidentQubits: resident,
		SlotTime:       m.code.ECTime(2, m.phys),
		TransportTime:  m.code.TransversalGateTime(2, m.phys),
	}
}

// simulate runs the compiled kernel once and returns its stats plus the
// compute-only lower bound (the list-scheduled makespan at the same block
// count, with communication free), which anchors the communication-hidden
// metric. All setup — circuit generation, DAG construction, scheduling —
// happened at compile time, so repeated evaluations pay only the event
// loop.
func (e simEngine) simulate(ctx context.Context, cw *CompiledWorkload) (des.Stats, time.Duration, error) {
	_, sp := obs.StartSpan(ctx, "sim-run")
	stats, err := des.RunDAG(ctx, cw.plan.DAG(), cw.desCfg)
	sp.End()
	if err != nil {
		return des.Stats{}, 0, err
	}
	return stats, cw.computeOnly(), nil
}

// statMetrics renders the shared simulation measurements.
func statMetrics(stats des.Stats, computeOnly time.Duration) []Metric {
	return []Metric{
		{"makespan_s", stats.Makespan.Seconds()},
		{"compute_only_s", computeOnly.Seconds()},
		{"communication_hidden", des.CommunicationHidden(stats, computeOnly)},
		{"stall_s", stats.StallTime.Seconds()},
		{"transports", float64(stats.Transports)},
		{"transport_busy_s", stats.TransportBusy.Seconds()},
		{"block_utilization", stats.BlockUtilization},
		{"channel_utilization", stats.ChannelUtilization},
	}
}

// Evaluate compiles the workload and runs it once. Callers evaluating the
// same workload repeatedly should compile once (Machine.Compile) and call
// EvaluateCompiled — the DAG build that dominates a one-shot evaluation at
// paper sizes then happens a single time.
func (e simEngine) Evaluate(ctx context.Context, w Workload) (Result, error) {
	// The one-shot path pays circuit generation + DAG build here; the
	// span makes that cost visible next to sim-run in a -trace dump.
	_, sp := obs.StartSpan(ctx, "plan-compile")
	cw, err := e.m.Compile(w)
	sp.End()
	if err != nil {
		return Result{}, err
	}
	return e.EvaluateCompiled(ctx, cw)
}

func (e simEngine) EvaluateCompiled(ctx context.Context, cw *CompiledWorkload) (Result, error) {
	if cw == nil || cw.m != e.m {
		return Result{}, errForeignCompile
	}
	ctx, sp := obs.StartSpan(ctx, "des-eval")
	defer sp.End()
	w := cw.w
	if sp != nil {
		sp.Annotate("kind", string(w.Kind))
		sp.Annotate("bits", strconv.Itoa(w.Bits))
	}
	// Every workload kind runs the same compiled kernel once; only the
	// metric decode below differs.
	stats, computeOnly, err := e.simulate(ctx, cw)
	if err != nil {
		return Result{}, err
	}
	_, dec := obs.StartSpan(ctx, "decode")
	defer dec.End()
	cm := e.m.cq
	n := w.Bits
	switch w.Kind {
	case KindAdder:
		q := gen.NewModExp(n).LogicalQubits()
		metrics := []Metric{
			// Area has no dynamic component; the simulator reuses the
			// closed-form floorplan so its envelope stays comparable.
			{"area_reduction", cm.AreaReduction(q, w.Hierarchy)},
			{"sim_speedup", float64(cm.QLAAdderTime(n)) / float64(stats.Makespan)},
		}
		metrics = append(metrics, statMetrics(stats, computeOnly)...)
		metrics = append(metrics, Metric{"qla_time_s", cm.QLAAdderTime(n).Seconds()})
		return e.m.result(EngineDES, w, metrics), nil
	case KindModExp:
		// The full modular-exponentiation circuit is out of simulation
		// reach at paper sizes; simulate its adder kernel and scale by the
		// sequential adder calls, as the analytic model does.
		me := gen.NewModExp(n)
		seq := float64(me.AdderCalls()) / float64(me.ConcurrentAdders())
		metrics := []Metric{
			{"computation_s", seq * stats.Makespan.Seconds()},
			{"adder_makespan_s", stats.Makespan.Seconds()},
			{"adder_compute_only_s", computeOnly.Seconds()},
			{"adder_calls", float64(me.AdderCalls())},
			{"concurrent_adders", float64(me.ConcurrentAdders())},
			{"communication_hidden", des.CommunicationHidden(stats, computeOnly)},
			{"stall_s", stats.StallTime.Seconds()},
			{"transports", float64(stats.Transports)},
			{"transport_busy_s", stats.TransportBusy.Seconds()},
			{"block_utilization", stats.BlockUtilization},
			{"channel_utilization", stats.ChannelUtilization},
		}
		return e.m.result(EngineDES, w, metrics), nil
	default: // KindQFT, by Validate
		return e.m.result(EngineDES, w, statMetrics(stats, computeOnly)), nil
	}
}
