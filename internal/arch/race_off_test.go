//go:build !race

package arch_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
