package arch

import (
	"context"
	"fmt"
)

// Engine evaluates workloads on the machine it was obtained from. The two
// implementations answer the same question two ways: "analytic" computes
// the paper's closed-form area/performance model, "des" measures a
// discrete-event execution of the actual circuit on explicit resources.
type Engine interface {
	// Name returns the engine's registry name.
	Name() string
	// Evaluate runs the workload and returns the metric envelope. It
	// honors ctx for long evaluations.
	Evaluate(ctx context.Context, w Workload) (Result, error)
	// EvaluateCompiled runs a workload the machine has already compiled
	// (Machine.Compile / Machine.CompileWith), skipping every
	// per-evaluation setup cost. The result is identical to Evaluate on
	// the same workload; the compiled input must belong to this engine's
	// machine.
	EvaluateCompiled(ctx context.Context, cw *CompiledWorkload) (Result, error)
	// EvaluateCompiledInto is EvaluateCompiled writing into out, reusing
	// out's metric buffer. On the des engine a steady-state call performs
	// no allocations; out's previous contents are fully overwritten.
	EvaluateCompiledInto(ctx context.Context, cw *CompiledWorkload, out *Result) error
}

// errForeignCompile rejects a compiled workload bound to another machine:
// its derived simulator config and schedule memos describe that machine,
// so evaluating it here would silently mix configurations.
var errForeignCompile = fmt.Errorf("arch: compiled workload belongs to a different machine")

// Engine registry names.
const (
	EngineAnalytic = "analytic"
	EngineDES      = "des"
)

// EngineNames lists the available engines, default first.
func EngineNames() []string { return []string{EngineAnalytic, EngineDES} }

// NormalizeEngine canonicalizes an engine name: empty selects the
// analytic default and "sim" aliases the discrete-event engine. Unknown
// names are errors.
func NormalizeEngine(name string) (string, error) {
	switch name {
	case "", EngineAnalytic:
		return EngineAnalytic, nil
	case EngineDES, "sim":
		return EngineDES, nil
	}
	return "", fmt.Errorf("arch: unknown engine %q (have %v)", name, EngineNames())
}

// Engine returns the named evaluation engine bound to this machine.
func (m *Machine) Engine(name string) (Engine, error) {
	canonical, err := NormalizeEngine(name)
	if err != nil {
		return nil, err
	}
	switch canonical {
	case EngineAnalytic:
		return analyticEngine{m: m}, nil
	default:
		return simEngine{m: m}, nil
	}
}

// result assembles the envelope for one evaluation of this machine.
func (m *Machine) result(engine string, w Workload, metrics []Metric) Result {
	return Result{
		SchemaVersion: SchemaVersion,
		Engine:        engine,
		Workload:      w,
		Config:        m.cfg,
		Metrics:       metrics,
	}
}
