package arch

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/cqla"
	"repro/internal/des"
	"repro/internal/gen"
	"repro/internal/memo"
	"repro/internal/sched"
)

// WorkloadPlan is the machine-independent compiled form of a workload: the
// kernel circuit the engines evaluate and its dependency DAG, plus a memo
// of list-scheduled makespans per block budget. Adder and modexp workloads
// share the carry-lookahead adder kernel (the paper evaluates modular
// exponentiation as repeated additions), so their plans are
// interchangeable at equal width; every other kind — the registry kernels
// and custom circuits from circuit.Parse — compiles to its own DAG.
//
// A plan is immutable apart from its schedule memo, which is lock-guarded;
// it is safe for concurrent use and intended to be shared — the explore
// runner compiles each (kernel, bits) pair once per sweep and binds the
// one plan to every machine that evaluates it.
type WorkloadPlan struct {
	kind Kind
	name string // custom circuit name; "" for built-in kinds
	bits int

	// adder is set for adder/modexp workloads; its DAG and schedule memo
	// are shared with the analytic model via Machine.UseAdderPlan.
	adder *cqla.AdderPlan

	// dag is set for every other kernel, with its own schedule memo.
	dag *circuit.DAG
	ms  memo.Map[int, int]
}

// PlanWorkload compiles the kernel circuit and dependency DAG for w. The
// result is machine-independent: bind it to a machine with
// Machine.CompileWith (or let Machine.Compile do both steps). Custom
// workloads carry their own circuit and are compiled with PlanCircuit
// instead.
func PlanWorkload(w Workload) (*WorkloadPlan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := &WorkloadPlan{kind: w.Kind, bits: w.Bits}
	switch w.Kind {
	case KindAdder, KindModExp:
		p.adder = cqla.NewAdderPlan(w.Bits)
	case KindCustom:
		return nil, fmt.Errorf("arch: custom workload %q has no registered kernel; compile its circuit with PlanCircuit", w.Name)
	default:
		build, ok := kernelCircuits[w.Kind]
		if !ok {
			return nil, fmt.Errorf("arch: no kernel builder for workload kind %q", w.Kind)
		}
		p.dag = circuit.BuildDAG(build(w.Bits))
	}
	return p, nil
}

// PlanCircuit compiles a user-supplied circuit (typically from
// circuit.Parse) into a workload plan under the given name. The resulting
// plan behaves exactly like a registry kernel's: bind it to machines with
// Machine.CompileWith and evaluate on either engine.
func PlanCircuit(name string, c *circuit.Circuit) (*WorkloadPlan, error) {
	if name == "" {
		return nil, fmt.Errorf("arch: custom circuit needs a name")
	}
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("arch: custom circuit %q is empty", name)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("arch: custom circuit %q: %w", name, err)
	}
	return &WorkloadPlan{
		kind: KindCustom,
		name: name,
		bits: c.NumQubits(),
		dag:  circuit.BuildDAG(c),
	}, nil
}

// Bits returns the problem width the plan was compiled for.
func (p *WorkloadPlan) Bits() int { return p.bits }

// Workload returns the canonical workload description the plan compiles:
// for custom plans this is the KindCustom workload carrying the circuit's
// name and register width.
func (p *WorkloadPlan) Workload() Workload {
	return Workload{Kind: p.kind, Bits: p.bits, Name: p.name}
}

// Kernel returns the plan's kernel identity — the cache key under which
// plans are shareable; it matches Workload.Kernel for every workload the
// plan is compatible with.
func (p *WorkloadPlan) Kernel() string { return p.Workload().Kernel() }

// DAG returns the compiled kernel dependency graph (shared storage; treat
// it as read-only).
func (p *WorkloadPlan) DAG() *circuit.DAG {
	if p.adder != nil {
		return p.adder.DAG()
	}
	return p.dag
}

// compatible reports whether the plan can evaluate w.
func (p *WorkloadPlan) compatible(w Workload) bool {
	if p.bits != w.Bits {
		return false
	}
	switch w.Kind {
	case KindAdder, KindModExp:
		return p.adder != nil
	case KindCustom:
		return p.kind == KindCustom && p.name == w.Name && p.dag != nil
	default:
		return p.kind == w.Kind && p.dag != nil
	}
}

// makespan returns the kernel's list-scheduled makespan at the given block
// budget, memoized per plan (per shared adder plan for adder kernels).
func (p *WorkloadPlan) makespan(blocks int) int {
	if p.adder != nil {
		return p.adder.Makespan(blocks)
	}
	return p.ms.Get(blocks, func() int {
		return sched.ListSchedule(p.dag, blocks).MakespanSlots
	})
}

// CompiledWorkload binds a workload plan to one machine: the validated
// workload, the shared kernel plan, and the derived discrete-event machine
// description. Compiling once and evaluating many times is the intended
// hot-loop shape — Engine.EvaluateCompiled skips every per-evaluation
// setup cost (circuit generation, DAG construction, scheduling already
// memoized in the plan), and Engine.EvaluateCompiledInto additionally
// reuses the caller's result buffers and a pooled simulation arena, so a
// steady-state des evaluation performs no allocations at all.
type CompiledWorkload struct {
	m      *Machine
	w      Workload
	plan   *WorkloadPlan
	desCfg des.Config

	// runners pools des.Runner arenas for this (DAG, config) pair so
	// concurrent evaluations each replay the event loop on a private,
	// allocation-free arena. Seeded eagerly by CompileWith, which also
	// validates the derived simulator config at compile time.
	runners sync.Pool

	// Modular-exponentiation constants for the adder/modexp metric decode,
	// precomputed so the evaluation hot loop never rebuilds gen.ModExp.
	adderQubits      int
	adderCalls       int
	concurrentAdders int
}

// runner takes a simulation arena from the pool, building a fresh one when
// the pool is empty. The config was validated when CompileWith seeded the
// pool, so construction here cannot fail.
func (cw *CompiledWorkload) runner() *des.Runner {
	if r, ok := cw.runners.Get().(*des.Runner); ok {
		return r
	}
	r, err := des.NewRunner(cw.plan.DAG(), cw.desCfg)
	if err != nil {
		panic("arch: compiled workload holds an invalid simulator config: " + err.Error())
	}
	return r
}

// Machine returns the machine the workload was compiled for.
func (cw *CompiledWorkload) Machine() *Machine { return cw.m }

// Workload returns the workload description.
func (cw *CompiledWorkload) Workload() Workload { return cw.w }

// Plan returns the underlying machine-independent plan.
func (cw *CompiledWorkload) Plan() *WorkloadPlan { return cw.plan }

// Compile validates w, compiles its kernel plan and binds it to the
// machine. For repeated evaluations of one workload family across many
// machines, compile the plan once with PlanWorkload and bind it to each
// machine with CompileWith instead. Custom workloads go through
// CompileCircuit.
func (m *Machine) Compile(w Workload) (*CompiledWorkload, error) {
	plan, err := PlanWorkload(w)
	if err != nil {
		return nil, err
	}
	return m.CompileWith(w, plan)
}

// CompileCircuit compiles a user-supplied circuit under the given name and
// binds it to the machine — Compile for workloads that carry their own
// gates instead of a registered kernel.
func (m *Machine) CompileCircuit(name string, c *circuit.Circuit) (*CompiledWorkload, error) {
	plan, err := PlanCircuit(name, c)
	if err != nil {
		return nil, err
	}
	return m.CompileWith(plan.Workload(), plan)
}

// CompileWith binds a precompiled plan to this machine. The plan's adder
// kernel (when present) also seeds the analytic model's schedule memo, so
// both engines evaluate from the one shared DAG.
func (m *Machine) CompileWith(w Workload, plan *WorkloadPlan) (*CompiledWorkload, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if plan == nil || !plan.compatible(w) {
		return nil, fmt.Errorf("arch: plan does not match workload %s/%d bits", w.Kind, w.Bits)
	}
	if plan.adder != nil {
		m.cq.UseAdderPlan(plan.adder)
	}
	cw := &CompiledWorkload{m: m, w: w, plan: plan, desCfg: m.desConfig()}
	// Building the first pooled arena now surfaces an invalid derived
	// simulator config at compile time instead of mid-evaluation.
	r, err := des.NewRunner(plan.DAG(), cw.desCfg)
	if err != nil {
		return nil, fmt.Errorf("arch: workload %s/%d bits: %w", w.Kind, w.Bits, err)
	}
	cw.runners.Put(r)
	if w.Kind == KindAdder || w.Kind == KindModExp {
		me := gen.NewModExp(w.Bits)
		cw.adderQubits = me.LogicalQubits()
		cw.adderCalls = me.AdderCalls()
		cw.concurrentAdders = me.ConcurrentAdders()
	}
	return cw, nil
}

// computeOnly returns the compute-only lower bound of the compiled kernel:
// the list-scheduled makespan at the machine's block count with
// communication free. It anchors the communication-hidden metric.
func (cw *CompiledWorkload) computeOnly() time.Duration {
	return time.Duration(cw.plan.makespan(cw.desCfg.Blocks)) * cw.desCfg.SlotTime
}
