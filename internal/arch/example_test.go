package arch_test

import (
	"context"
	"fmt"
	"log"

	"repro/internal/arch"
)

// ExampleNew evaluates the paper's best working point — the 256-bit
// Bacon-Shor CQLA with the memory hierarchy — through the analytic engine
// and reads two headline metrics from the Result envelope.
func ExampleNew() {
	m, err := arch.New(
		arch.WithCodeName("bacon-shor"),
		arch.WithBlocks(36),
		arch.WithTransfers(10),
	)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := m.Engine(arch.EngineAnalytic)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Evaluate(context.Background(), arch.NewAdder(256, true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s v%d: area x%.1f, adder speedup x%.1f\n",
		res.Engine, res.SchemaVersion,
		res.MustMetric("area_reduction"), res.MustMetric("adder_speedup"))
	// Output: analytic v1: area x7.8, adder speedup x7.6
}

// ExamplePlanWorkload compiles a registry kernel into its
// machine-independent plan: the circuit's dependency DAG, shared by every
// machine that later binds it. Adder and modexp plans are interchangeable
// (same carry-lookahead kernel); every other kind owns its DAG.
func ExamplePlanWorkload() {
	plan, err := arch.PlanWorkload(arch.NewQFT(8))
	if err != nil {
		log.Fatal(err)
	}
	d := plan.DAG()
	fmt.Printf("kernel %s at %d bits: %d serial slots, critical path %d\n",
		plan.Kernel(), plan.Bits(), d.TotalSlots(), d.Depth())
	// Output: kernel qft at 8 bits: 36 serial slots, critical path 15
}

// ExampleMachine_Compile is the intended hot-loop shape: compile a
// workload once, then evaluate the compiled form many times.
// EvaluateCompiled skips circuit generation, DAG construction and
// scheduling on every call and returns exactly what Evaluate would.
func ExampleMachine_Compile() {
	m, err := arch.New(
		arch.WithCodeName("bacon-shor"),
		arch.WithBlocks(36),
		arch.WithTransfers(10),
	)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := m.Engine(arch.EngineAnalytic)
	if err != nil {
		log.Fatal(err)
	}
	cw, err := m.Compile(arch.NewKind(arch.KindQFTComm, 64))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	again, _ := eng.EvaluateCompiled(ctx, cw)
	res, err := eng.EvaluateCompiled(ctx, cw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.0f slots, speedup x%.2f, repeatable %v\n",
		res.Workload.Kind, res.MustMetric("makespan_slots"),
		res.MustMetric("parallel_speedup"),
		res.MustMetric("makespan_slots") == again.MustMetric("makespan_slots"))
	// Output: qftcomm: 130 slots, speedup x16.74, repeatable true
}
