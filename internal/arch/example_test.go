package arch_test

import (
	"context"
	"fmt"
	"log"

	"repro/internal/arch"
)

// ExampleNew evaluates the paper's best working point — the 256-bit
// Bacon-Shor CQLA with the memory hierarchy — through the analytic engine
// and reads two headline metrics from the Result envelope.
func ExampleNew() {
	m, err := arch.New(
		arch.WithCodeName("bacon-shor"),
		arch.WithBlocks(36),
		arch.WithTransfers(10),
	)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := m.Engine(arch.EngineAnalytic)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Evaluate(context.Background(), arch.NewAdder(256, true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s v%d: area x%.1f, adder speedup x%.1f\n",
		res.Engine, res.SchemaVersion,
		res.MustMetric("area_reduction"), res.MustMetric("adder_speedup"))
	// Output: analytic v1: area x7.8, adder speedup x7.6
}
