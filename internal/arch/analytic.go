package arch

import (
	"context"
	"strconv"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
)

// analyticEngine evaluates workloads with the paper's closed-form model:
// list-scheduled makespans times error-correction slot costs for time, the
// tile model for area, the QLA of internal/qla as the normalization
// baseline. It is exact, fast, and blind to dynamic effects — the des
// engine exists to check it.
type analyticEngine struct{ m *Machine }

func (analyticEngine) Name() string { return EngineAnalytic }

// EvaluateCompiled evaluates a precompiled workload. The paper's kinds
// (adder, modexp, qft) forward to their closed forms — compilation seeds
// the machine's adder-schedule memo with the plan's shared DAG, so the
// speedup terms read a sweep-wide memo instead of rebuilding the kernel
// per machine. Every other kind, including custom circuits, is costed
// directly from the compiled plan's schedule.
func (e analyticEngine) EvaluateCompiled(ctx context.Context, cw *CompiledWorkload) (Result, error) {
	if cw == nil || cw.m != e.m {
		return Result{}, errForeignCompile
	}
	switch cw.w.Kind {
	case KindAdder, KindModExp, KindQFT:
		return e.Evaluate(ctx, cw.w)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	_, sp := obs.StartSpan(ctx, "analytic-eval")
	defer sp.End()
	if sp != nil {
		sp.Annotate("kind", string(cw.w.Kind))
		sp.Annotate("bits", strconv.Itoa(cw.w.Bits))
	}
	return e.planMetrics(cw.w, cw.plan), nil
}

// EvaluateCompiledInto is EvaluateCompiled writing into out. The closed
// forms are microseconds per call, so the analytic engine keeps the simple
// allocate-per-call evaluation underneath; the method exists so both
// engines satisfy the same compiled hot-loop interface.
func (e analyticEngine) EvaluateCompiledInto(ctx context.Context, cw *CompiledWorkload, out *Result) error {
	res, err := e.EvaluateCompiled(ctx, cw)
	if err != nil {
		return err
	}
	*out = res
	return nil
}

// planMetrics costs a compiled plan with the closed-form schedule model:
// the list-scheduled makespan at the machine's block budget, priced at the
// level-2 error-correction slot time, bracketed by the serial and
// critical-path bounds.
func (e analyticEngine) planMetrics(w Workload, plan *WorkloadPlan) Result {
	cm := e.m.cq
	slot := cm.SlotTime(2)
	d := plan.DAG()
	makespan := plan.makespan(e.m.cfg.Blocks)
	serial := d.TotalSlots()
	speedup := 1.0
	if makespan > 0 {
		speedup = float64(serial) / float64(makespan)
	}
	return e.m.result(EngineAnalytic, w, []Metric{
		{"computation_s", (time.Duration(makespan) * slot).Seconds()},
		{"critical_path_s", (time.Duration(d.Depth()) * slot).Seconds()},
		{"serial_s", (time.Duration(serial) * slot).Seconds()},
		{"parallel_speedup", speedup},
		{"makespan_slots", float64(makespan)},
	})
}

func (e analyticEngine) Evaluate(ctx context.Context, w Workload) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// With a tracer in ctx the closed-form evaluation is one span; without
	// one this line is a no-op.
	_, sp := obs.StartSpan(ctx, "analytic-eval")
	defer sp.End()
	if sp != nil {
		sp.Annotate("kind", string(w.Kind))
		sp.Annotate("bits", strconv.Itoa(w.Bits))
	}
	cm := e.m.cq
	n := w.Bits
	switch w.Kind {
	case KindAdder:
		// The addition is the kernel of an n-bit modular exponentiation,
		// whose logical-qubit footprint sets the memory size.
		q := gen.NewModExp(n).LogicalQubits()
		area := cm.AreaReduction(q, w.Hierarchy)
		l2 := cm.SpeedupL2(n)
		metrics := []Metric{
			{"area_reduction", area},
			{"l2_speedup", l2},
		}
		if w.Hierarchy {
			metrics = append(metrics,
				Metric{"l1_speedup", cm.SpeedupL1(n)},
				Metric{"adder_speedup", cm.AdderSpeedup(n)},
				Metric{"gain_product", cm.GainProduct(n, q, true)},
				Metric{"stall_s", cm.TransferStall().Seconds()},
				Metric{"l1_time_s", cm.AdderTimeL1(n).Seconds()},
			)
		} else {
			metrics = append(metrics, Metric{"gain_product", area * l2})
		}
		metrics = append(metrics,
			Metric{"l2_time_s", cm.AdderTimeL2(n).Seconds()},
			Metric{"qla_time_s", cm.QLAAdderTime(n).Seconds()},
		)
		return e.m.result(EngineAnalytic, w, metrics), nil
	case KindModExp:
		t := cm.ModExpTimes(n)
		q := gen.NewModExp(n).LogicalQubits()
		return e.m.result(EngineAnalytic, w, []Metric{
			{"computation_s", t.Computation.Seconds()},
			{"communication_s", t.Communication.Seconds()},
			{"total_s", (t.Computation + t.Communication).Seconds()},
			{"area_reduction", cm.AreaReduction(q, w.Hierarchy)},
		}), nil
	case KindQFT:
		t := cm.QFTTimes(n)
		return e.m.result(EngineAnalytic, w, []Metric{
			{"computation_s", t.Computation.Seconds()},
			{"communication_s", t.Communication.Seconds()},
			{"total_s", (t.Computation + t.Communication).Seconds()},
		}), nil
	default: // registry kernels (custom workloads fail in PlanWorkload)
		plan, err := PlanWorkload(w)
		if err != nil {
			return Result{}, err
		}
		return e.planMetrics(w, plan), nil
	}
}
