package arch

import (
	"context"
	"strconv"

	"repro/internal/gen"
	"repro/internal/obs"
)

// analyticEngine evaluates workloads with the paper's closed-form model:
// list-scheduled makespans times error-correction slot costs for time, the
// tile model for area, the QLA of internal/qla as the normalization
// baseline. It is exact, fast, and blind to dynamic effects — the des
// engine exists to check it.
type analyticEngine struct{ m *Machine }

func (analyticEngine) Name() string { return EngineAnalytic }

// EvaluateCompiled evaluates a precompiled workload. The closed-form model
// has no per-evaluation setup of its own, but compilation seeds the
// machine's adder-schedule memo with the plan's shared DAG, so the speedup
// terms below read a sweep-wide memo instead of rebuilding the kernel per
// machine.
func (e analyticEngine) EvaluateCompiled(ctx context.Context, cw *CompiledWorkload) (Result, error) {
	if cw == nil || cw.m != e.m {
		return Result{}, errForeignCompile
	}
	return e.Evaluate(ctx, cw.w)
}

func (e analyticEngine) Evaluate(ctx context.Context, w Workload) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// With a tracer in ctx the closed-form evaluation is one span; without
	// one this line is a no-op.
	_, sp := obs.StartSpan(ctx, "analytic-eval")
	defer sp.End()
	if sp != nil {
		sp.Annotate("kind", string(w.Kind))
		sp.Annotate("bits", strconv.Itoa(w.Bits))
	}
	cm := e.m.cq
	n := w.Bits
	switch w.Kind {
	case KindAdder:
		// The addition is the kernel of an n-bit modular exponentiation,
		// whose logical-qubit footprint sets the memory size.
		q := gen.NewModExp(n).LogicalQubits()
		area := cm.AreaReduction(q, w.Hierarchy)
		l2 := cm.SpeedupL2(n)
		metrics := []Metric{
			{"area_reduction", area},
			{"l2_speedup", l2},
		}
		if w.Hierarchy {
			metrics = append(metrics,
				Metric{"l1_speedup", cm.SpeedupL1(n)},
				Metric{"adder_speedup", cm.AdderSpeedup(n)},
				Metric{"gain_product", cm.GainProduct(n, q, true)},
				Metric{"stall_s", cm.TransferStall().Seconds()},
				Metric{"l1_time_s", cm.AdderTimeL1(n).Seconds()},
			)
		} else {
			metrics = append(metrics, Metric{"gain_product", area * l2})
		}
		metrics = append(metrics,
			Metric{"l2_time_s", cm.AdderTimeL2(n).Seconds()},
			Metric{"qla_time_s", cm.QLAAdderTime(n).Seconds()},
		)
		return e.m.result(EngineAnalytic, w, metrics), nil
	case KindModExp:
		t := cm.ModExpTimes(n)
		q := gen.NewModExp(n).LogicalQubits()
		return e.m.result(EngineAnalytic, w, []Metric{
			{"computation_s", t.Computation.Seconds()},
			{"communication_s", t.Communication.Seconds()},
			{"total_s", (t.Computation + t.Communication).Seconds()},
			{"area_reduction", cm.AreaReduction(q, w.Hierarchy)},
		}), nil
	default: // KindQFT, by Validate
		t := cm.QFTTimes(n)
		return e.m.result(EngineAnalytic, w, []Metric{
			{"computation_s", t.Computation.Seconds()},
			{"communication_s", t.Communication.Seconds()},
			{"total_s", (t.Computation + t.Communication).Seconds()},
		}), nil
	}
}
