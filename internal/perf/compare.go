package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"text/tabwriter"
)

// LoadReport reads a BENCH.json document written by an earlier run. It
// rejects documents from a newer schema (fields this build cannot
// interpret) and empty documents, so a truncated artifact fails loudly at
// the gate instead of producing a vacuous comparison.
func LoadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	if r.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema_version %d, this build understands <= %d", path, r.SchemaVersion, SchemaVersion)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("perf: %s contains no benchmarks", path)
	}
	return &r, nil
}

// Delta is one benchmark's baseline-to-head movement.
type Delta struct {
	Name    string
	BaseNs  float64
	HeadNs  float64
	Pct     float64 // (head-base)/base, in percent; positive = regression
	BaseAll int64   // allocs/op
	HeadAll int64
}

// Comparison is the result of Compare: per-benchmark sec/op deltas over
// the common set, the names only one side has, and the geometric-mean
// movement — the number the CI regression gate thresholds on.
type Comparison struct {
	Deltas     []Delta
	BaseOnly   []string
	HeadOnly   []string
	GeomeanPct float64
}

// Compare lines a head report up against a baseline, by benchmark name.
func Compare(base, head *Report) *Comparison {
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[r.Name] = r
	}
	c := &Comparison{}
	headSeen := make(map[string]bool, len(head.Benchmarks))
	logSum, n := 0.0, 0
	for _, h := range head.Benchmarks {
		headSeen[h.Name] = true
		b, ok := baseBy[h.Name]
		if !ok {
			c.HeadOnly = append(c.HeadOnly, h.Name)
			continue
		}
		d := Delta{
			Name:    h.Name,
			BaseNs:  b.NsPerOp,
			HeadNs:  h.NsPerOp,
			BaseAll: b.AllocsPerOp,
			HeadAll: h.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			ratio := h.NsPerOp / b.NsPerOp
			d.Pct = (ratio - 1) * 100
			logSum += math.Log(ratio)
			n++
		}
		c.Deltas = append(c.Deltas, d)
	}
	for _, b := range base.Benchmarks {
		if !headSeen[b.Name] {
			c.BaseOnly = append(c.BaseOnly, b.Name)
		}
	}
	sort.Slice(c.Deltas, func(i, j int) bool { return c.Deltas[i].Name < c.Deltas[j].Name })
	sort.Strings(c.BaseOnly)
	sort.Strings(c.HeadOnly)
	if n > 0 {
		c.GeomeanPct = (math.Exp(logSum/float64(n)) - 1) * 100
	}
	return c
}

// WriteText renders the comparison as an aligned benchstat-style table.
func (c *Comparison) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "name\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\n")
	for _, d := range c.Deltas {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.2f%%\t%d\t%d\n",
			d.Name, d.BaseNs, d.HeadNs, d.Pct, d.BaseAll, d.HeadAll)
	}
	if len(c.Deltas) > 0 {
		fmt.Fprintf(tw, "geomean\t\t\t%+.2f%%\t\t\n", c.GeomeanPct)
	}
	for _, n := range c.BaseOnly {
		fmt.Fprintf(tw, "%s\t(baseline only)\t\t\t\t\n", n)
	}
	for _, n := range c.HeadOnly {
		fmt.Fprintf(tw, "%s\t(new)\t\t\t\t\n", n)
	}
	return tw.Flush()
}
