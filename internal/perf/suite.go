package perf

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/des"
	"repro/internal/ecc"
	"repro/internal/explore"
	"repro/internal/gen"
	"repro/internal/gf2"
	"repro/internal/phys"
)

// The built-in suite covers the repository's hot paths at three scales:
// micro (one syndrome decode), meso (Monte Carlo campaigns, one simulated
// adder) and macro (a full exploration sweep). Names match the `go test`
// benchmarks they mirror — BenchmarkDES64BitAdder in internal/des is
// "DES64BitAdder" here — so bench.txt and BENCH.json line up, and the CI
// gate's pinned set can be traced in either artifact.
func init() {
	mustRegister(Benchmark{
		Name: "SyndromeDecodeSteane",
		Doc:  "one X-error decode of the Steane code through the public vector API",
		F: func(b *B) {
			c := ecc.Steane()
			e := gf2.NewVec(c.N)
			e.Set(2, true)
			e.Set(5, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.CorrectX(e)
			}
		},
	})
	mustRegister(Benchmark{
		Name: "ConcatenatedMCLevel2",
		// Mirrors internal/ecc's BenchmarkConcatenatedMCLevel2 exactly
		// (same code, rate, trial count and seed) so bench.txt and
		// BENCH.json report the same workload under the same name.
		Doc: "1000 hierarchical level-2 Monte Carlo trials, Bacon-Shor code at p=0.01",
		F: func(b *B) {
			c := ecc.BaconShor()
			rng := rand.New(rand.NewSource(5))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.ConcatenatedMonteCarloX(2, 0.01, 1000, rng)
			}
		},
	})
	mustRegister(Benchmark{
		Name: "ConcatenatedMCLevel2Steane",
		Doc:  "2000 hierarchical level-2 Monte Carlo trials, Steane code at p=1e-3",
		F: func(b *B) {
			c := ecc.Steane()
			rng := rand.New(rand.NewSource(7))
			var r ecc.MonteCarloResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r = c.ConcatenatedMonteCarloX(2, 1e-3, 2000, rng)
			}
			b.ReportMetric(float64(r.Trials), "trials")
		},
	})
	mustRegister(Benchmark{
		Name: "MonteCarloXSeededSerial",
		Doc:  "20000 seeded Monte Carlo trials on one worker (per-core throughput)",
		F: func(b *B) {
			c := ecc.Steane()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.MonteCarloXSeededParallel(1e-3, 20000, 42, 1)
			}
		},
	})
	mustRegister(Benchmark{
		Name: "MonteCarloXSeeded",
		Doc:  "20000 seeded Monte Carlo trials across the worker pool (scales with cores)",
		F: func(b *B) {
			c := ecc.Steane()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.MonteCarloXSeeded(1e-3, 20000, 42)
			}
		},
	})
	mustRegister(Benchmark{
		Name: "DES64BitAdder",
		Doc:  "discrete-event simulation of the 64-bit adder, DAG build included",
		F: func(b *B) {
			ad := gen.CarryLookahead(64)
			cfg := des.Config{Blocks: 9, Channels: 12, ResidentQubits: 700,
				SlotTime: 100 * time.Millisecond, TransportTime: 200 * time.Millisecond}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := des.Run(ad.Circuit, cfg); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
	mustRegister(Benchmark{
		Name: "DESEventLoop64BitAdder",
		Doc:  "the des event loop alone on a prebuilt 64-bit adder DAG",
		F: func(b *B) {
			ad := gen.CarryLookahead(64)
			d := circuit.BuildDAG(ad.Circuit)
			cfg := des.Config{Blocks: 9, Channels: 12, ResidentQubits: 700,
				SlotTime: 100 * time.Millisecond, TransportTime: 200 * time.Millisecond}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := des.RunDAG(context.Background(), d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
	mustRegister(Benchmark{
		Name: "AnalyticAdder256",
		Doc:  "one closed-form evaluation of the 256-bit adder on the paper's working point",
		F: func(b *B) {
			m, err := arch.New(
				arch.WithParams(phys.Projected()),
				arch.WithCodeName("bacon-shor"),
				arch.WithBlocks(36),
				arch.WithTransfers(10),
			)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := m.Engine(arch.EngineAnalytic)
			if err != nil {
				b.Fatal(err)
			}
			w := arch.NewAdder(256, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Evaluate(context.Background(), w); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
	mustRegister(Benchmark{
		Name: "ExplorePareto",
		Doc:  "the 45-point pareto sweep through the explore worker pool (macro)",
		F: func(b *B) {
			exp, err := explore.Lookup("pareto")
			if err != nil {
				b.Fatal(err)
			}
			p := phys.Projected()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := explore.Run(context.Background(), exp, explore.Options{Phys: p, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
}

// Compiled-workload pipeline benchmarks (PR 5): the before/after-sensitive
// measurements of the arena DAG build, the compile-once/evaluate-many
// shape, and the bitmask-backed public decode. Registered so the gains
// stay visible in BENCH.json and guarded by the CI regression gate.
func init() {
	mustRegister(Benchmark{
		Name: "BuildDAG",
		Doc:  "one arena build of the 64-bit adder's dependency DAG (the des setup cost)",
		F: func(b *B) {
			ad := gen.CarryLookahead(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				circuit.BuildDAG(ad.Circuit)
			}
		},
	})
	mustRegister(Benchmark{
		Name: "BuildDAGInto",
		Doc:  "rebuilding the 64-bit adder DAG into a reused arena (zero allocations)",
		F: func(b *B) {
			ad := gen.CarryLookahead(64)
			d := circuit.BuildDAG(ad.Circuit)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				circuit.BuildDAGInto(d, ad.Circuit)
			}
		},
	})
	mustRegister(Benchmark{
		Name: "CompileOnceEvalMany",
		Doc:  "one des-engine evaluation of a precompiled 64-bit adder (event loop only)",
		F: func(b *B) {
			m, err := arch.New(arch.WithCodeName("bacon-shor"), arch.WithBlocks(9))
			if err != nil {
				b.Fatal(err)
			}
			eng, err := m.Engine(arch.EngineDES)
			if err != nil {
				b.Fatal(err)
			}
			cw, err := m.Compile(arch.NewAdder(64, false))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.EvaluateCompiled(ctx, cw); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
	// Per-kernel variants of the compile-once/evaluate-many shape (PR 9):
	// every kernel the workload registry exposes, precompiled once and
	// replayed through the des event loop at 64 bits on the same 9-block
	// Bacon-Shor machine as CompileOnceEvalMany. Deliberately outside the
	// CI gate (GATE_BENCHES pins names exactly); they land in BENCH.json
	// so per-kernel cost drift stays visible across commits.
	for _, v := range []struct {
		suffix string
		kind   arch.Kind
		doc    string
	}{
		{"QFT", arch.KindQFT, "one des-engine evaluation of a precompiled 64-bit QFT rotation cascade"},
		{"QFTComm", arch.KindQFTComm, "one des-engine evaluation of a precompiled 64-bit QFT with bit-reversal swaps"},
		{"ShorStage", arch.KindShorStage, "one des-engine evaluation of a precompiled 64-bit controlled Shor adder stage"},
	} {
		w := arch.NewKind(v.kind, 64)
		mustRegister(Benchmark{
			Name: "CompileOnceEvalMany" + v.suffix,
			Doc:  v.doc,
			F: func(b *B) {
				m, err := arch.New(arch.WithCodeName("bacon-shor"), arch.WithBlocks(9))
				if err != nil {
					b.Fatal(err)
				}
				eng, err := m.Engine(arch.EngineDES)
				if err != nil {
					b.Fatal(err)
				}
				cw, err := m.Compile(w)
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.EvaluateCompiled(ctx, cw); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	mustRegister(Benchmark{
		Name: "MonteCarloBitSliced",
		// The same workload as MonteCarloXSeededSerial — one worker, 20000
		// trials, seed 42 — so the two rows in BENCH.json read directly as
		// the bit-sliced engine's speedup over the scalar decoder.
		Doc: "20000 bit-sliced Monte Carlo trials on one worker (64 trials per decode)",
		F: func(b *B) {
			c := ecc.Steane()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.MonteCarloXBatchParallel(1e-3, 20000, 42, 1)
			}
		},
	})
	mustRegister(Benchmark{
		Name: "MonteCarloRareEvent",
		Doc:  "20000 importance-sampled Monte Carlo trials at p=1e-4 on one worker",
		F: func(b *B) {
			c := ecc.Steane()
			var r ecc.RareEventResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r = c.MonteCarloXRareParallel(1e-4, 20000, 42, 1)
			}
			b.ReportMetric(float64(r.FaultTrials), "fault-trials")
		},
	})
	mustRegister(Benchmark{
		Name: "DESRunnerReuse",
		Doc:  "the des event loop replayed on a reused 64-bit adder arena (zero allocations)",
		F: func(b *B) {
			d := circuit.BuildDAG(gen.CarryLookahead(64).Circuit)
			cfg := des.Config{Blocks: 9, Channels: 12, ResidentQubits: 700,
				SlotTime: 100 * time.Millisecond, TransportTime: 200 * time.Millisecond}
			r, err := des.NewRunner(d, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Run(ctx); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
	mustRegister(Benchmark{
		Name: "PublicDecode",
		Doc:  "one public-API syndrome extraction + table decode, Steane X errors (zero allocations)",
		F: func(b *B) {
			c := ecc.Steane()
			e := gf2.NewVec(c.N)
			e.Set(2, true)
			e.Set(5, true)
			weight := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := c.SyndromeX(e)
				cor := c.DecodeX(s)
				weight += cor.Weight()
			}
			b.ReportMetric(float64(weight/b.N), "correction-weight")
		},
	})
}
