package perf

import (
	"fmt"
	"runtime"
	"time"
)

// B is the harness's benchmark context: the subset of testing.B the suite
// uses, driven by a native measurement loop instead of testing.Benchmark.
// Owning the loop buys two things the testing wrapper could not give:
// a configurable time budget (`cqla bench -benchtime`) and error-returning
// failure handling (a Fatal aborts the run with a real error instead of a
// silent zero result).
type B struct {
	// N is the iteration count for this run; the body must execute its
	// measured operation exactly N times.
	N int

	timerOn     bool
	start       time.Time
	dur         time.Duration
	startAllocs uint64
	startBytes  uint64
	netAllocs   uint64
	netBytes    uint64
	extra       map[string]float64
}

// benchFailure carries a Fatal out of a benchmark body.
type benchFailure struct{ msg string }

// StartTimer resumes timing and allocation tracking.
func (b *B) StartTimer() {
	if b.timerOn {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.startAllocs = ms.Mallocs
	b.startBytes = ms.TotalAlloc
	b.start = time.Now()
	b.timerOn = true
}

// StopTimer pauses timing and allocation tracking.
func (b *B) StopTimer() {
	if !b.timerOn {
		return
	}
	b.dur += time.Since(b.start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.netAllocs += ms.Mallocs - b.startAllocs
	b.netBytes += ms.TotalAlloc - b.startBytes
	b.timerOn = false
}

// ResetTimer zeroes the elapsed time and allocation counts; call it after
// expensive setup, exactly as with testing.B.
func (b *B) ResetTimer() {
	if b.timerOn {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		b.startAllocs = ms.Mallocs
		b.startBytes = ms.TotalAlloc
		b.start = time.Now()
	}
	b.dur = 0
	b.netAllocs = 0
	b.netBytes = 0
}

// ReportAllocs is accepted for testing.B compatibility; the harness always
// tracks allocations.
func (b *B) ReportAllocs() {}

// ReportMetric records a custom metric carried into the report, keyed by
// unit. The last run's value wins, matching testing.B.
func (b *B) ReportMetric(v float64, unit string) {
	if b.extra == nil {
		b.extra = make(map[string]float64)
	}
	b.extra[unit] = v
}

// Fatal aborts the benchmark; the harness surfaces it as the run's error.
func (b *B) Fatal(args ...interface{}) {
	panic(benchFailure{msg: fmt.Sprint(args...)})
}

// Fatalf is Fatal with formatting.
func (b *B) Fatalf(format string, args ...interface{}) {
	panic(benchFailure{msg: fmt.Sprintf(format, args...)})
}

// runN executes one timed run of n iterations.
func runN(bm Benchmark, n int) (b *B, err error) {
	b = &B{N: n}
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(benchFailure); ok {
				err = fmt.Errorf("perf: %s: %s", bm.Name, f.msg)
				return
			}
			panic(r)
		}
	}()
	// A collection between runs keeps one benchmark's garbage from being
	// billed to the next run's allocation counts.
	runtime.GC()
	b.StartTimer()
	bm.F(b)
	b.StopTimer()
	return b, nil
}

// measure calibrates the iteration count until one run fills the time
// budget, mirroring the testing package's predict-and-grow loop (at most
// 100x per step, rounded up to a readable count, capped at 1e9).
func measure(bm Benchmark, benchtime time.Duration) (Result, error) {
	const maxIters = 1_000_000_000
	n := 1
	for {
		b, err := runN(bm, n)
		if err != nil {
			return Result{}, err
		}
		if b.dur >= benchtime || n >= maxIters {
			r := Result{
				Name:       bm.Name,
				Doc:        bm.Doc,
				Iterations: b.N,
				NsPerOp:    float64(b.dur.Nanoseconds()) / float64(b.N),
			}
			if b.N > 0 {
				r.BytesPerOp = int64(b.netBytes) / int64(b.N)
				r.AllocsPerOp = int64(b.netAllocs) / int64(b.N)
			}
			if len(b.extra) > 0 {
				r.Metrics = b.extra
			}
			return r, nil
		}
		prevns := b.dur.Nanoseconds()
		if prevns <= 0 {
			prevns = 1
		}
		// Predict the goal-filling count, grow 1.2x for safety, bound the
		// jump, and always make progress.
		next := benchtime.Nanoseconds() * int64(n) / prevns
		next += next / 5
		if max := int64(n) * 100; next > max {
			next = max
		}
		if next <= int64(n) {
			next = int64(n) + 1
		}
		if next > maxIters {
			next = maxIters
		}
		n = roundUp(next)
	}
}

// roundUp rounds to the nearest count of the form 1eX, 2eX, 3eX or 5eX,
// the same readable iteration counts `go test -bench` prints.
func roundUp(n int64) int {
	base := int64(1)
	for base*10 < n {
		base *= 10
	}
	switch {
	case n <= base:
		return int(base)
	case n <= 2*base:
		return int(2 * base)
	case n <= 3*base:
		return int(3 * base)
	case n <= 5*base:
		return int(5 * base)
	default:
		return int(10 * base)
	}
}
