package perf

// MeasuredFunctions maps each registered benchmark to the fully
// qualified functions whose allocation behavior the benchmark certifies.
// The budget-aware noalloc analyzer (internal/lint) joins this table
// with a BENCH.json document: a benchmark measuring 0 allocs/op requires
// `//cqla:noalloc` on its functions, and a mapped directive whose
// benchmark now allocates is stale. Keeping the table next to the
// registry — and pinned against it by TestMeasuredFunctionsSchema —
// means renaming a benchmark breaks the build instead of silently
// dropping a budget.
//
// Symbols use the lint grammar: "import/path.Func",
// "import/path.(*Type).Method" or "import/path.(Type).Method".
//
// SyndromeDecodeSteane is deliberately unmapped: CorrectX carries the
// directive for its body, but the benchmark measures the documented
// 1-alloc (Vec, bool) return escape, which lives in the caller — mapping
// it would misreport the directive as stale.
func MeasuredFunctions() map[string][]string {
	return map[string][]string{
		"AnalyticAdder256":    {"repro/internal/arch.(analyticEngine).Evaluate"},
		"BuildDAG":            {"repro/internal/circuit.BuildDAG"},
		"BuildDAGInto":        {"repro/internal/circuit.BuildDAGInto"},
		"CompileOnceEvalMany": {"repro/internal/arch.(simEngine).EvaluateCompiled"},
		"ConcatenatedMCLevel2": {
			"repro/internal/ecc.(*Code).ConcatenatedMonteCarloX",
		},
		"ConcatenatedMCLevel2Steane": {
			"repro/internal/ecc.(*Code).ConcatenatedMonteCarloX",
		},
		"DES64BitAdder":          {"repro/internal/des.Run"},
		"DESEventLoop64BitAdder": {"repro/internal/des.RunDAG"},
		"ExplorePareto":          {"repro/internal/explore.Run"},
		"MonteCarloXSeeded":      {"repro/internal/ecc.(*Code).MonteCarloXSeeded"},
		"MonteCarloXSeededSerial": {
			"repro/internal/ecc.(*Code).MonteCarloXSeededParallel",
		},
		"PublicDecode": {
			"repro/internal/ecc.(*Code).SyndromeX",
			"repro/internal/ecc.(*Code).DecodeX",
		},
	}
}
