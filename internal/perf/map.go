package perf

// MeasuredFunctions maps each registered benchmark to the fully
// qualified functions whose allocation behavior the benchmark certifies.
// The budget-aware noalloc analyzer (internal/lint) joins this table
// with a BENCH.json document: a benchmark measuring 0 allocs/op requires
// `//cqla:noalloc` on its functions, and a mapped directive whose
// benchmark now allocates is stale. Keeping the table next to the
// registry — and pinned against it by TestMeasuredFunctionsSchema —
// means renaming a benchmark breaks the build instead of silently
// dropping a budget.
//
// Symbols use the lint grammar: "import/path.Func",
// "import/path.(*Type).Method" or "import/path.(Type).Method".
func MeasuredFunctions() map[string][]string {
	return map[string][]string{
		"AnalyticAdder256":    {"repro/internal/arch.(analyticEngine).Evaluate"},
		"BuildDAG":            {"repro/internal/circuit.BuildDAG"},
		"BuildDAGInto":        {"repro/internal/circuit.BuildDAGInto"},
		"CompileOnceEvalMany": {"repro/internal/arch.(simEngine).EvaluateCompiled"},
		"ConcatenatedMCLevel2": {
			"repro/internal/ecc.(*Code).ConcatenatedMonteCarloX",
		},
		"ConcatenatedMCLevel2Steane": {
			"repro/internal/ecc.(*Code).ConcatenatedMonteCarloX",
		},
		"DES64BitAdder":          {"repro/internal/des.Run"},
		"DESEventLoop64BitAdder": {"repro/internal/des.RunDAG"},
		"DESRunnerReuse":         {"repro/internal/des.(*Runner).Run"},
		"ExplorePareto":          {"repro/internal/explore.Run"},
		// The bit-sliced campaign is certified through its three kernels:
		// the transposed sampler/decoder, the logical-fault reduction and
		// the cached Bernoulli lane generator.
		"MonteCarloBitSliced": {
			"repro/internal/ecc.(*bitDecoder).sampleBatch",
			"repro/internal/ecc.(*bitDecoder).faultLanes",
			"repro/internal/ecc.(*mcProb).lanes",
		},
		"MonteCarloRareEvent": {
			"repro/internal/ecc.(*bitDecoder).sampleBatchHist",
		},
		"MonteCarloXSeeded": {"repro/internal/ecc.(*Code).MonteCarloXSeeded"},
		"MonteCarloXSeededSerial": {
			"repro/internal/ecc.(*Code).MonteCarloXSeededParallel",
		},
		"PublicDecode": {
			"repro/internal/ecc.(*Code).SyndromeX",
			"repro/internal/ecc.(*Code).DecodeX",
		},
		// Mappable since gf2.Vec went inline-word: the (Vec, bool) return
		// that used to escape in the caller is now a plain value.
		"SyndromeDecodeSteane": {"repro/internal/ecc.(*Code).CorrectX"},
	}
}
