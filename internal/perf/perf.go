// Package perf is the repository's machine-readable performance harness.
// It keeps a registry of named micro- and macro-benchmarks over the hot
// paths (Monte Carlo error injection, the discrete-event simulator, the
// compiled-workload pipeline, the exploration engine), runs them through a
// native calibrated measurement loop (see B), and renders the measurements
// as a versioned BENCH.json document: ns/op, B/op, allocs/op and any
// custom b.ReportMetric series per benchmark, plus enough host metadata to
// interpret a number a month later. Owning the loop (instead of wrapping
// testing.Benchmark) gives `cqla bench` a -benchtime knob, so CI can trade
// precision for wall-clock, and real error propagation from failing
// bodies. Compare reads a previous document back and prints a
// benchstat-style delta table (`cqla bench -baseline old/BENCH.json`),
// which the CI gate prefers over rebuilding the merge-base.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// SchemaVersion identifies the BENCH.json layout. Bump it on any change
// that could break a consumer: renamed fields, changed units, removed
// sections. Additive fields do not require a bump.
const SchemaVersion = 1

// Benchmark is one registered measurement.
type Benchmark struct {
	// Name identifies the benchmark in reports and filters. By convention
	// it matches the `go test` benchmark it mirrors, without the
	// "Benchmark" prefix (e.g. "DES64BitAdder").
	Name string
	// Doc is a one-line description carried into the report.
	Doc string
	// F is the benchmark body; B mirrors the testing.B API surface the
	// suite needs (N, timers, ReportMetric, Fatal).
	F func(b *B)
}

var (
	regMu    sync.Mutex
	registry []Benchmark
	regNames = map[string]bool{}
)

// Register adds a benchmark to the global registry. Names must be unique,
// non-empty and free of whitespace (they become filter targets and JSON
// keys).
func Register(b Benchmark) error {
	if b.Name == "" || strings.ContainsAny(b.Name, " \t\n") {
		return fmt.Errorf("perf: invalid benchmark name %q", b.Name)
	}
	if b.F == nil {
		return fmt.Errorf("perf: benchmark %q has no body", b.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if regNames[b.Name] {
		return fmt.Errorf("perf: benchmark %q registered twice", b.Name)
	}
	regNames[b.Name] = true
	registry = append(registry, b)
	return nil
}

// mustRegister is Register for static suite tables.
func mustRegister(b Benchmark) {
	if err := Register(b); err != nil {
		panic(err)
	}
}

// Benchmarks returns the registered benchmarks sorted by name, so every
// run (and every BENCH.json) lists them in the same order.
func Benchmarks() []Benchmark {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]Benchmark(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Result is one benchmark's measurement in the report.
type Result struct {
	Name        string  `json:"name"`
	Doc         string  `json:"doc,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics carries the benchmark's b.ReportMetric series (unit -> value),
	// e.g. domain figures of merit alongside the timing.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH.json document.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Host          string `json:"host,omitempty"`
	// Build identity: which bits produced these numbers. Module is the
	// main module path, ModVersion its version (or "(devel)"), VCSRevision
	// and VCSTime the stamped commit, VCSModified whether the working tree
	// was dirty — a dirty-tree BENCH.json is not a comparable baseline.
	Module      string    `json:"module,omitempty"`
	ModVersion  string    `json:"mod_version,omitempty"`
	VCSRevision string    `json:"vcs_revision,omitempty"`
	VCSTime     string    `json:"vcs_time,omitempty"`
	VCSModified bool      `json:"vcs_modified,omitempty"`
	StartedAt   time.Time `json:"started_at"`
	WallTimeS   float64   `json:"wall_time_s"`
	Benchmarks  []Result  `json:"benchmarks"`
}

// DefaultBenchTime is the per-benchmark time budget when Options leaves
// BenchTime zero — the same default as `go test -bench`.
const DefaultBenchTime = time.Second

// Options configures one harness run.
type Options struct {
	// Filter selects benchmarks by name; nil runs everything.
	Filter *regexp.Regexp
	// BenchTime is the per-benchmark measurement budget; zero selects
	// DefaultBenchTime. Shorter budgets trade precision for wall-clock —
	// CI's BENCH.json generation runs at 100ms.
	BenchTime time.Duration
	// Progress, if non-nil, is called after each benchmark completes.
	Progress func(done, total int, r Result)
}

// Run measures every registered benchmark matching the filter and returns
// the report. It errors when the filter matches nothing, so a typo in
// `cqla bench -filter` fails loudly instead of emitting an empty document,
// and when any benchmark body calls Fatal.
func Run(opt Options) (*Report, error) {
	return RunBenchmarks(Benchmarks(), opt)
}

// RunBenchmarks is Run over an explicit benchmark set.
func RunBenchmarks(bms []Benchmark, opt Options) (*Report, error) {
	var selected []Benchmark
	for _, bm := range bms {
		if opt.Filter == nil || opt.Filter.MatchString(bm.Name) {
			selected = append(selected, bm)
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("perf: no benchmark matches (have %s)", strings.Join(names(bms), ", "))
	}
	benchtime := opt.BenchTime
	if benchtime <= 0 {
		benchtime = DefaultBenchTime
	}
	rep := newReport()
	start := time.Now()
	for i, bm := range selected {
		r, err := measure(bm, benchtime)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
		if opt.Progress != nil {
			opt.Progress(i+1, len(selected), r)
		}
	}
	rep.WallTimeS = time.Since(start).Seconds()
	return rep, nil
}

func newReport() *Report {
	host, _ := os.Hostname()
	bi := obs.Build()
	return &Report{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Host:          host,
		Module:        bi.Module,
		ModVersion:    bi.Version,
		VCSRevision:   bi.Revision,
		VCSTime:       bi.Time,
		VCSModified:   bi.Modified,
		StartedAt:     time.Now().UTC(),
	}
}

func names(bms []Benchmark) []string {
	out := make([]string, len(bms))
	for i, bm := range bms {
		out[i] = bm.Name
	}
	return out
}

// WriteJSON renders the report as indented JSON. Benchmarks are already
// name-sorted and encoding/json sorts the metric maps, so the document is
// diff-stable run to run.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
