package perf

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// benchSink keeps the TinyAlloc allocation observable so neither the
// compiler nor a linter treats it as dead.
var benchSink []byte

// fastSuite is a pair of near-instant benchmarks for harness tests, so the
// tests don't pay for the real suite's campaigns.
func fastSuite() []Benchmark {
	return []Benchmark{
		{Name: "TinyAlloc", Doc: "allocates once per op", F: func(b *B) {
			for i := 0; i < b.N; i++ {
				benchSink = make([]byte, 64)
			}
			b.ReportMetric(42, "answer")
		}},
		{Name: "TinyNoop", F: func(b *B) {
			for i := 0; i < b.N; i++ {
			}
		}},
	}
}

// fastOpts keeps harness tests quick; correctness is budget-independent.
var fastOpts = Options{BenchTime: 10 * time.Millisecond}

func TestRegisterValidation(t *testing.T) {
	if err := Register(Benchmark{Name: "", F: func(*B) {}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register(Benchmark{Name: "has space", F: func(*B) {}}); err == nil {
		t.Error("whitespace name accepted")
	}
	if err := Register(Benchmark{Name: "NoBody"}); err == nil {
		t.Error("nil body accepted")
	}
	if err := Register(Benchmark{Name: "perf-test-dup", F: func(*B) {}}); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if err := Register(Benchmark{Name: "perf-test-dup", F: func(*B) {}}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestSuiteRegistered(t *testing.T) {
	names := map[string]bool{}
	prev := ""
	for _, bm := range Benchmarks() {
		names[bm.Name] = true
		if bm.Name < prev {
			t.Errorf("Benchmarks() not sorted: %q after %q", bm.Name, prev)
		}
		prev = bm.Name
	}
	// The CI gate's pinned set must stay registered; renaming one silently
	// un-gates it. BuildDAG/CompileOnceEvalMany/PublicDecode carry the
	// compiled-workload pipeline's gains into BENCH.json.
	for _, want := range []string{
		"ConcatenatedMCLevel2", "DES64BitAdder", "MonteCarloXSeeded", "ExplorePareto",
		"BuildDAG", "BuildDAGInto", "CompileOnceEvalMany", "PublicDecode",
	} {
		if !names[want] {
			t.Errorf("suite benchmark %q missing from registry", want)
		}
	}
}

// TestMeasuredFunctionsSchema pins the benchmark → measured-function
// table against the registry and the lint symbol grammar: a renamed
// benchmark or a typo'd symbol fails here, long before the budget-aware
// noalloc analyzer would silently drop the budget it carries.
func TestMeasuredFunctionsSchema(t *testing.T) {
	registered := map[string]bool{}
	for _, bm := range Benchmarks() {
		registered[bm.Name] = true
	}
	symbol := regexp.MustCompile(`^[\w./-]+\.(\(\*?\w+\)\.)?\w+$`)
	for bench, funcs := range MeasuredFunctions() {
		if !registered[bench] {
			t.Errorf("MeasuredFunctions maps %q, which is not a registered benchmark", bench)
		}
		if len(funcs) == 0 {
			t.Errorf("MeasuredFunctions[%q] is empty; drop the entry instead", bench)
		}
		for _, sym := range funcs {
			if !symbol.MatchString(sym) {
				t.Errorf("MeasuredFunctions[%q] symbol %q does not match the lint grammar", bench, sym)
			}
		}
	}
}

func TestRunProducesVersionedJSON(t *testing.T) {
	var progress int
	opts := fastOpts
	opts.Progress = func(done, total int, r Result) {
		progress++
		if total != 2 {
			t.Errorf("progress total = %d, want 2", total)
		}
	}
	rep, err := RunBenchmarks(fastSuite(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if progress != 2 {
		t.Errorf("progress called %d times, want 2", progress)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SchemaVersion int    `json:"schema_version"`
		GoVersion     string `json:"go_version"`
		NumCPU        int    `json:"num_cpu"`
		Benchmarks    []struct {
			Name        string             `json:"name"`
			Iterations  int                `json:"iterations"`
			NsPerOp     float64            `json:"ns_per_op"`
			AllocsPerOp int64              `json:"allocs_per_op"`
			Metrics     map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("BENCH.json does not parse: %v\n%s", err, buf.String())
	}
	if doc.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %d, want %d", doc.SchemaVersion, SchemaVersion)
	}
	if doc.GoVersion == "" || doc.NumCPU < 1 {
		t.Errorf("host metadata missing: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("%d benchmark entries, want 2", len(doc.Benchmarks))
	}
	alloc := doc.Benchmarks[0]
	if alloc.Name != "TinyAlloc" {
		t.Fatalf("first entry %q, want TinyAlloc (name-sorted)", alloc.Name)
	}
	if alloc.Iterations <= 0 || alloc.NsPerOp <= 0 {
		t.Errorf("TinyAlloc measured nothing: %+v", alloc)
	}
	if alloc.AllocsPerOp != 1 {
		t.Errorf("TinyAlloc allocs_per_op = %d, want 1 (allocation tracking must be on)", alloc.AllocsPerOp)
	}
	if alloc.Metrics["answer"] != 42 {
		t.Errorf("custom metric not carried: %v", alloc.Metrics)
	}
}

func TestRunFilter(t *testing.T) {
	opts := fastOpts
	opts.Filter = regexp.MustCompile("^TinyNoop$")
	rep, err := RunBenchmarks(fastSuite(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "TinyNoop" {
		t.Fatalf("filter selected %v", rep.Benchmarks)
	}
	opts.Filter = regexp.MustCompile("NoSuchBench")
	if _, err := RunBenchmarks(fastSuite(), opts); err == nil {
		t.Error("filter matching nothing should error")
	}
}

// TestBenchTimeScalesIterations pins the native loop's calibration: a
// larger budget must run at least as many iterations, and both runs must
// meet their budget (or prove the op so slow one iteration exceeds it).
func TestBenchTimeScalesIterations(t *testing.T) {
	busy := Benchmark{Name: "Busy", F: func(b *B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < 1000; j++ {
				benchSink = nil
			}
		}
	}}
	short, err := measure(busy, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	long, err := measure(busy, 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if long.Iterations < short.Iterations {
		t.Errorf("40ms budget ran %d iterations, 2ms ran %d", long.Iterations, short.Iterations)
	}
	if short.NsPerOp <= 0 || long.NsPerOp <= 0 {
		t.Errorf("ns/op not measured: %v / %v", short.NsPerOp, long.NsPerOp)
	}
}

// TestFatalPropagatesAsError is the native loop's failure contract: a
// Fatal inside a body surfaces as the run's error instead of a silent
// zero-valued result.
func TestFatalPropagatesAsError(t *testing.T) {
	boom := []Benchmark{{Name: "Boom", F: func(b *B) {
		b.Fatalf("exploded on iteration %d", 0)
	}}}
	_, err := RunBenchmarks(boom, fastOpts)
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("Fatal did not propagate: %v", err)
	}
	// A non-sentinel panic must not be swallowed as a measurement error.
	defer func() {
		if recover() == nil {
			t.Error("foreign panic was swallowed")
		}
	}()
	RunBenchmarks([]Benchmark{{Name: "Panic", F: func(b *B) { panic(errors.New("raw")) }}}, fastOpts)
}

func TestTimerControls(t *testing.T) {
	bm := Benchmark{Name: "Timed", F: func(b *B) {
		b.StopTimer()
		benchSink = make([]byte, 1<<16) // setup, must not be billed
		b.StartTimer()
		for i := 0; i < b.N; i++ {
		}
	}}
	r, err := measure(bm, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.AllocsPerOp != 0 {
		t.Errorf("setup allocations billed to the timed region: %d allocs/op", r.AllocsPerOp)
	}
}

func TestRoundUp(t *testing.T) {
	cases := map[int64]int{1: 1, 2: 2, 3: 3, 4: 5, 5: 5, 7: 10, 10: 10, 11: 20, 99: 100, 101: 200, 350: 500, 5001: 10000}
	for in, want := range cases {
		if got := roundUp(in); got != want {
			t.Errorf("roundUp(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestCompareAndLoad(t *testing.T) {
	base := &Report{SchemaVersion: SchemaVersion, Benchmarks: []Result{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 3},
		{Name: "B", NsPerOp: 200},
		{Name: "Gone", NsPerOp: 50},
	}}
	head := &Report{SchemaVersion: SchemaVersion, Benchmarks: []Result{
		{Name: "A", NsPerOp: 50, AllocsPerOp: 0}, // 2x faster
		{Name: "B", NsPerOp: 400},                // 2x slower
		{Name: "New", NsPerOp: 10},
	}}
	c := Compare(base, head)
	if len(c.Deltas) != 2 {
		t.Fatalf("%d common deltas, want 2", len(c.Deltas))
	}
	if c.Deltas[0].Name != "A" || c.Deltas[0].Pct != -50 {
		t.Errorf("delta A = %+v, want -50%%", c.Deltas[0])
	}
	if c.Deltas[1].Pct != 100 {
		t.Errorf("delta B = %+v, want +100%%", c.Deltas[1])
	}
	// geomean of (0.5, 2.0) is exactly 1.0: no net movement.
	if g := c.GeomeanPct; g < -1e-9 || g > 1e-9 {
		t.Errorf("geomean = %v%%, want 0", g)
	}
	if len(c.BaseOnly) != 1 || c.BaseOnly[0] != "Gone" {
		t.Errorf("BaseOnly = %v", c.BaseOnly)
	}
	if len(c.HeadOnly) != 1 || c.HeadOnly[0] != "New" {
		t.Errorf("HeadOnly = %v", c.HeadOnly)
	}
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"geomean", "-50.00%", "+100.00%", "(baseline only)", "(new)"} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}

	// Round-trip through disk via LoadReport.
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	var file bytes.Buffer
	if err := base.WriteJSON(&file); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, file.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Benchmarks) != 3 {
		t.Errorf("loaded %d benchmarks, want 3", len(loaded.Benchmarks))
	}
	if _, err := LoadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil {
		t.Error("truncated document loaded")
	}
	if err := os.WriteFile(path, []byte(`{"schema_version": 99, "benchmarks": [{"name":"A"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil {
		t.Error("future schema loaded")
	}
	if err := os.WriteFile(path, []byte(`{"schema_version": 1, "benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil {
		t.Error("empty benchmark set loaded")
	}
}
