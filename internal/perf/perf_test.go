package perf

import (
	"bytes"
	"encoding/json"
	"regexp"
	"testing"
)

// benchSink keeps the TinyAlloc allocation observable so neither the
// compiler nor a linter treats it as dead.
var benchSink []byte

// fastSuite is a pair of near-instant benchmarks for harness tests, so the
// tests don't pay for the real suite's campaigns.
func fastSuite() []Benchmark {
	return []Benchmark{
		{Name: "TinyAlloc", Doc: "allocates once per op", F: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = make([]byte, 64)
			}
			b.ReportMetric(42, "answer")
		}},
		{Name: "TinyNoop", F: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
		}},
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(Benchmark{Name: "", F: func(*testing.B) {}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register(Benchmark{Name: "has space", F: func(*testing.B) {}}); err == nil {
		t.Error("whitespace name accepted")
	}
	if err := Register(Benchmark{Name: "NoBody"}); err == nil {
		t.Error("nil body accepted")
	}
	if err := Register(Benchmark{Name: "perf-test-dup", F: func(*testing.B) {}}); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if err := Register(Benchmark{Name: "perf-test-dup", F: func(*testing.B) {}}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestSuiteRegistered(t *testing.T) {
	names := map[string]bool{}
	prev := ""
	for _, bm := range Benchmarks() {
		names[bm.Name] = true
		if bm.Name < prev {
			t.Errorf("Benchmarks() not sorted: %q after %q", bm.Name, prev)
		}
		prev = bm.Name
	}
	// The CI gate's pinned set must stay registered; renaming one silently
	// un-gates it.
	for _, want := range []string{"ConcatenatedMCLevel2", "DES64BitAdder", "MonteCarloXSeeded", "ExplorePareto"} {
		if !names[want] {
			t.Errorf("suite benchmark %q missing from registry", want)
		}
	}
}

func TestRunProducesVersionedJSON(t *testing.T) {
	var progress int
	rep, err := RunBenchmarks(fastSuite(), Options{
		Progress: func(done, total int, r Result) {
			progress++
			if total != 2 {
				t.Errorf("progress total = %d, want 2", total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if progress != 2 {
		t.Errorf("progress called %d times, want 2", progress)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SchemaVersion int    `json:"schema_version"`
		GoVersion     string `json:"go_version"`
		NumCPU        int    `json:"num_cpu"`
		Benchmarks    []struct {
			Name        string             `json:"name"`
			Iterations  int                `json:"iterations"`
			NsPerOp     float64            `json:"ns_per_op"`
			AllocsPerOp int64              `json:"allocs_per_op"`
			Metrics     map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("BENCH.json does not parse: %v\n%s", err, buf.String())
	}
	if doc.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %d, want %d", doc.SchemaVersion, SchemaVersion)
	}
	if doc.GoVersion == "" || doc.NumCPU < 1 {
		t.Errorf("host metadata missing: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("%d benchmark entries, want 2", len(doc.Benchmarks))
	}
	alloc := doc.Benchmarks[0]
	if alloc.Name != "TinyAlloc" {
		t.Fatalf("first entry %q, want TinyAlloc (name-sorted)", alloc.Name)
	}
	if alloc.Iterations <= 0 || alloc.NsPerOp <= 0 {
		t.Errorf("TinyAlloc measured nothing: %+v", alloc)
	}
	if alloc.AllocsPerOp != 1 {
		t.Errorf("TinyAlloc allocs_per_op = %d, want 1 (allocation tracking must be on)", alloc.AllocsPerOp)
	}
	if alloc.Metrics["answer"] != 42 {
		t.Errorf("custom metric not carried: %v", alloc.Metrics)
	}
}

func TestRunFilter(t *testing.T) {
	rep, err := RunBenchmarks(fastSuite(), Options{Filter: regexp.MustCompile("^TinyNoop$")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "TinyNoop" {
		t.Fatalf("filter selected %v", rep.Benchmarks)
	}
	if _, err := RunBenchmarks(fastSuite(), Options{Filter: regexp.MustCompile("NoSuchBench")}); err == nil {
		t.Error("filter matching nothing should error")
	}
}
