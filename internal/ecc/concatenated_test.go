package ecc

import (
	"math/rand"
	"testing"
)

func TestConcatenationSuppressesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, c := range Codes() {
		p := 0.01
		l1 := c.ConcatenatedMonteCarloX(1, p, 200000, rng)
		l2 := c.ConcatenatedMonteCarloX(2, p, 200000, rng)
		if l1.LogicalRate() >= p {
			t.Errorf("%s: level 1 rate %.5f not below physical %.3f", c.Short, l1.LogicalRate(), p)
		}
		if l2.LogicalRate() >= l1.LogicalRate()/5 {
			t.Errorf("%s: level 2 (%.6f) should be far below level 1 (%.5f)",
				c.Short, l2.LogicalRate(), l1.LogicalRate())
		}
	}
}

func TestConcatenationDoubleExponentialScaling(t *testing.T) {
	// Below the pseudo-threshold, level 2's failure rate should scale like
	// the square of level 1's (up to combinatorial prefactors): check that
	// p2 is within a couple of orders of magnitude of p1²·C(n,2).
	rng := rand.New(rand.NewSource(123))
	c := Steane()
	p := 0.02
	l1 := c.ConcatenatedMonteCarloX(1, p, 300000, rng).LogicalRate()
	l2 := c.ConcatenatedMonteCarloX(2, p, 300000, rng).LogicalRate()
	if l1 == 0 || l2 == 0 {
		t.Skip("insufficient statistics")
	}
	// Expected level-2 rate ~ A·l1² with A the weight-2 failure fraction.
	predicted := 21 * l1 * l1 // C(7,2) pairs
	if l2 > predicted*10 || l2 < predicted/10 {
		t.Errorf("level-2 rate %.2g not within 10x of quadratic prediction %.2g (l1=%.2g)",
			l2, predicted, l1)
	}
}

func TestConcatenationAboveThresholdHurts(t *testing.T) {
	// Far above threshold, encoding amplifies errors: level 2 should be no
	// better than level 1.
	rng := rand.New(rand.NewSource(7))
	c := Steane()
	p := 0.4
	l1 := c.ConcatenatedMonteCarloX(1, p, 50000, rng).LogicalRate()
	l2 := c.ConcatenatedMonteCarloX(2, p, 50000, rng).LogicalRate()
	if l2 < l1/2 {
		t.Errorf("above threshold, level 2 (%.3f) should not beat level 1 (%.3f)", l2, l1)
	}
}

func TestPseudoThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, c := range Codes() {
		th := c.PseudoThresholdX(20000, rng)
		// Code-capacity pseudo-thresholds for distance-3 CSS codes sit in
		// the percent range — far above the circuit-level thresholds of
		// Table 2's analysis, as expected for this idealized noise model.
		if th < 0.005 || th > 0.35 {
			t.Errorf("%s: pseudo-threshold %.4f outside plausible range", c.Short, th)
		}
		// Below it, encoding helps.
		below := c.MonteCarloX(th/4, 100000, rng)
		if below.LogicalRate() >= th/4 {
			t.Errorf("%s: encoding should help at p=%.4f", c.Short, th/4)
		}
	}
}

func TestConcatenatedPanicsOnLevelZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Steane().ConcatenatedMonteCarloX(0, 0.01, 10, rand.New(rand.NewSource(1)))
}

func BenchmarkConcatenatedMCLevel2(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	c := BaconShor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ConcatenatedMonteCarloX(2, 0.01, 1000, rng)
	}
}
