package ecc

import "math/rand"

// ConcatenatedMonteCarloX estimates the logical X failure rate of this code
// concatenated to the given level, by hierarchical sampling: a level-L
// block consists of N level-(L-1) blocks, each of which fails independently
// with the empirically sampled lower-level rate; the level-L decoder then
// corrects the pattern of sub-block faults. Level 0 "blocks" are physical
// qubits failing with probability p.
//
// This is the code-capacity concatenation experiment that backs the
// double-exponential reliability claim the CQLA's level-mixing relies on:
// each added level squares the (normalized) failure probability.
//
//cqla:noalloc
func (c *Code) ConcatenatedMonteCarloX(level int, p float64, trials int, rng *rand.Rand) MonteCarloResult {
	if level < 1 {
		panic("ecc: concatenation level must be >= 1")
	}
	res := MonteCarloResult{Trials: trials, PhysicalRate: p}
	for t := 0; t < trials; t++ {
		if c.sampleBlockFaultX(level, p, rng) {
			res.LogicalFaults++
		}
	}
	return res
}

// sampleBlockFaultX samples whether one level-`level` block suffers a
// logical X fault, by recursively sampling its sub-blocks and decoding.
// It runs on the precomputed bit decoder — one packed error word per block,
// no allocations — and draws rng values in the same order the vector-based
// implementation did, so a fixed stream reproduces the historical counts.
func (c *Code) sampleBlockFaultX(level int, p float64, rng *rand.Rand) bool {
	var e uint64
	for q := 0; q < c.N; q++ {
		var failed bool
		if level == 1 {
			failed = rng.Float64() < p
		} else {
			failed = c.sampleBlockFaultX(level-1, p, rng)
		}
		if failed {
			e |= 1 << uint(q)
		}
	}
	return c.bitX.fault(e)
}

// PseudoThresholdX estimates the code's level-1 pseudo-threshold for X
// errors: the physical rate at which one level of encoding stops helping
// (logical rate equals physical rate). It bisects on the Monte Carlo
// estimate; trials bounds the per-point sample count.
func (c *Code) PseudoThresholdX(trials int, rng *rand.Rand) float64 {
	lo, hi := 1e-4, 0.5
	for i := 0; i < 18; i++ {
		mid := (lo + hi) / 2
		r := c.MonteCarloX(mid, trials, rng)
		if r.LogicalRate() < mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
