package ecc

import (
	"math"
	"testing"

	"repro/internal/phys"
)

// roundsTo1SigDigit reports whether got rounds to the same one-significant-
// digit value the paper reports. Table 2 states "all numbers are estimates
// and are thus rounded to only one significant digit".
func roundsTo1SigDigit(got, paper float64) bool {
	if paper == 0 {
		return got == 0
	}
	mag := math.Pow(10, math.Floor(math.Log10(math.Abs(paper))))
	return math.Abs(got-paper) <= 0.5*mag+1e-12
}

func TestTable2ECTimes(t *testing.T) {
	p := phys.Projected()
	cases := []struct {
		code  *Code
		level int
		paper float64 // seconds
	}{
		{Steane(), 1, 3.1e-3},
		{Steane(), 2, 0.3},
		{BaconShor(), 1, 1.2e-3},
		{BaconShor(), 2, 0.1},
	}
	for _, c := range cases {
		got := c.code.ECTime(c.level, p).Seconds()
		if !roundsTo1SigDigit(got, c.paper) {
			t.Errorf("%s L%d EC time = %.4g s, paper %.4g s", c.code.Short, c.level, got, c.paper)
		}
	}
}

func TestTable2TransversalGateTimes(t *testing.T) {
	p := phys.Projected()
	cases := []struct {
		code  *Code
		level int
		paper float64
	}{
		{Steane(), 1, 6.2e-3},
		{Steane(), 2, 0.5},
		{BaconShor(), 1, 2.4e-3},
		{BaconShor(), 2, 0.2},
	}
	for _, c := range cases {
		got := c.code.TransversalGateTime(c.level, p).Seconds()
		if !roundsTo1SigDigit(got, c.paper) {
			t.Errorf("%s L%d transversal gate = %.4g s, paper %.4g s", c.code.Short, c.level, got, c.paper)
		}
	}
}

func TestTable2QubitSizes(t *testing.T) {
	p := phys.Projected()
	cases := []struct {
		code  *Code
		level int
		paper float64 // mm²
	}{
		{Steane(), 1, 0.2},
		{Steane(), 2, 3.4},
		{BaconShor(), 1, 0.1},
		{BaconShor(), 2, 2.4},
	}
	for _, c := range cases {
		got := c.code.AreaMM2(c.level, p)
		if !roundsTo1SigDigit(got, c.paper) {
			t.Errorf("%s L%d area = %.4g mm², paper %.4g mm²", c.code.Short, c.level, got, c.paper)
		}
	}
}

func TestTable2QubitCounts(t *testing.T) {
	cases := []struct {
		code        *Code
		level       int
		data, ancil int
		ancilTol    int // Bacon-Shor L2 ancilla: paper 298, closed form 297
	}{
		{Steane(), 1, 7, 21, 0},
		{Steane(), 2, 49, 441, 0},
		{BaconShor(), 1, 9, 12, 0},
		{BaconShor(), 2, 81, 298, 1},
	}
	for _, c := range cases {
		if got := c.code.DataIons(c.level); got != c.data {
			t.Errorf("%s L%d data ions = %d, paper %d", c.code.Short, c.level, got, c.data)
		}
		if got := c.code.AncillaIons(c.level); abs(got-c.ancil) > c.ancilTol {
			t.Errorf("%s L%d ancilla ions = %d, paper %d (tol %d)", c.code.Short, c.level, got, c.ancil, c.ancilTol)
		}
	}
}

func TestECTimeGrowsExponentially(t *testing.T) {
	p := phys.Projected()
	for _, c := range Codes() {
		t1 := c.ECTime(1, p)
		t2 := c.ECTime(2, p)
		t3 := c.ECTime(3, p)
		if ratio := float64(t2) / float64(t1); ratio < 50 {
			t.Errorf("%s EC L2/L1 ratio %.1f, expected ~two orders of magnitude", c.Short, ratio)
		}
		if t3 <= t2 {
			t.Errorf("%s EC time not increasing at L3", c.Short)
		}
	}
}

func TestBaconShorFasterAndSmallerThanSteane(t *testing.T) {
	// The paper's central claim about the [[9,1,3]] code: though it uses
	// more data qubits, it needs far fewer EC resources, so it is both
	// faster and smaller at every level.
	p := phys.Projected()
	st, bs := Steane(), BaconShor()
	for level := 1; level <= 2; level++ {
		if bs.ECTime(level, p) >= st.ECTime(level, p) {
			t.Errorf("L%d: Bacon-Shor EC not faster", level)
		}
		if bs.AreaMM2(level, p) >= st.AreaMM2(level, p) {
			t.Errorf("L%d: Bacon-Shor not smaller", level)
		}
		if bs.TotalIons(level) >= st.TotalIons(level) {
			t.Errorf("L%d: Bacon-Shor uses more ions in total", level)
		}
		if bs.DataIons(level) <= st.DataIons(level) {
			t.Errorf("L%d: Bacon-Shor should have more data ions", level)
		}
	}
}

func TestMetricsBundle(t *testing.T) {
	p := phys.Projected()
	m := Steane().Metrics(2, p)
	if m.Code != "[[7,1,3]]" || m.Level != 2 {
		t.Errorf("metrics identity wrong: %+v", m)
	}
	if m.TotalIons() != 490 {
		t.Errorf("Steane L2 total ions = %d, want 490", m.TotalIons())
	}
	if m.ECTime <= 0 || m.TransversalGateTime <= m.ECTime {
		t.Errorf("inconsistent times: %+v", m)
	}
}

func TestLogicalFailureRateEquation1(t *testing.T) {
	// Direct check of Pf = (pth/r^L)(p0/pth)^(2^L).
	c := Steane()
	p0 := 3e-7
	pth := c.Threshold()
	for _, level := range []int{1, 2, 3} {
		want := pth / math.Pow(DefaultCommDistance, float64(level)) *
			math.Pow(p0/pth, math.Pow(2, float64(level)))
		got := c.LogicalFailureRate(level, p0, DefaultCommDistance)
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("L%d: got %g want %g", level, got, want)
		}
	}
	if got := c.LogicalFailureRate(0, p0, DefaultCommDistance); got != p0 {
		t.Errorf("L0 should return p0, got %g", got)
	}
}

func TestFailureRateDoubleExponentialSuppression(t *testing.T) {
	p0 := phys.Projected().AverageFailure()
	for _, c := range Codes() {
		p1 := c.LogicalFailureRate(1, p0, DefaultCommDistance)
		p2 := c.LogicalFailureRate(2, p0, DefaultCommDistance)
		if p1 >= p0 {
			t.Errorf("%s: level 1 does not improve on physical rate below threshold", c.Short)
		}
		if p2 >= p1*p1*1e6 { // double-exponential: p2 ~ p1² (up to prefactors)
			t.Errorf("%s: suppression not double-exponential: p1=%g p2=%g", c.Short, p1, p2)
		}
	}
}

func TestBelowThreshold(t *testing.T) {
	p0 := phys.Projected().AverageFailure()
	for _, c := range Codes() {
		if !c.BelowThreshold(p0) {
			t.Errorf("%s: projected parameters should be below threshold", c.Short)
		}
		if c.BelowThreshold(1e-2) {
			t.Errorf("%s: 1%% failure should be above threshold", c.Short)
		}
	}
}

func TestBaconShorHigherThreshold(t *testing.T) {
	if BaconShor().Threshold() <= Steane().Threshold() {
		t.Error("paper: Bacon-Shor analysis is more favourable due to a higher threshold")
	}
}

func TestMinLevelFor(t *testing.T) {
	c := Steane()
	p0 := phys.Projected().AverageFailure()
	// Factoring a 1024-bit number needs roughly KQ ~ 1e15 operations; the
	// QLA work found level 2 sufficient with projected parameters.
	level := c.MinLevelFor(1e-15, p0, 4)
	if level != 2 {
		t.Errorf("min level for 1e-15 = %d, want 2", level)
	}
	if got := c.MinLevelFor(1e-50, p0, 2); got != -1 {
		t.Errorf("unreachable target should return -1, got %d", got)
	}
}

func TestECTimePanicsOnBadLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Steane().ECTime(0, phys.Projected())
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
