// Package ecc implements the quantum error-correction layer of the CQLA
// reproduction: stabilizer descriptions and minimum-weight syndrome decoding
// for the Steane [[7,1,3]] and Bacon-Shor [[9,1,3]] codes, the
// concatenation-level resource metrics of Table 2 (error-correction time,
// transversal gate time, physical area, qubit counts), the Gottesman
// logical-failure-rate estimate, and a Pauli-frame Monte Carlo error
// injector used to validate the distance-3 claims.
package ecc

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/gf2"
)

// Code is a CSS stabilizer code [[n, k, d]] together with the timing and
// layout profile the CQLA architecture model needs.
//
// Conventions: HZ rows are supports of Z-type stabilizer generators (they
// detect X errors: syndrome = HZ·e for an X-error support vector e). HX rows
// are supports of X-type generators (they detect Z errors). LZ is the
// support of a Z-type logical operator; a residual X-error is a logical
// fault exactly when it anticommutes with LZ (odd overlap). Symmetrically
// for LX and Z errors.
type Code struct {
	// Name identifies the code in reports, e.g. "Steane [[7,1,3]]".
	Name string
	// Short is the compact label used in the paper's tables, e.g. "[[7,1,3]]".
	Short string

	N, K, D int

	HX, HZ *gf2.Matrix
	LX, LZ gf2.Vec

	profile resourceProfile

	decodeX map[uint64]gf2.Vec // Z-syndrome -> X correction
	decodeZ map[uint64]gf2.Vec // X-syndrome -> Z correction

	bitX bitDecoder // allocation-free X-error decoding (Monte Carlo hot path)
	bitZ bitDecoder // allocation-free Z-error decoding
}

// bitDecoder is the hot-path decoding engine for one error type: the
// parity-check rows, the total syndrome->correction table and the logical
// operator are all hoisted into packed uint64 masks at construction, so one
// decode is a handful of popcounts and a table index — no vectors, no map
// lookups, no allocations. It is valid for any code this package can build
// (buildLookup caps N at 20 physical qubits, well inside one word).
type bitDecoder struct {
	rows    []uint64 // check-matrix rows as bit masks
	table   []uint64 // dense syndrome -> minimum-weight correction mask
	valid   []bool   // achievable syndromes (the lookup table's domain)
	logical uint64   // support of the logical operator the residual must commute with

	// flipBits is the whole syndrome->fault-flip function as one bitset:
	// bit s = parity(table[s] & logical), i.e. whether the correction for
	// syndrome s flips the error's parity against the logical operator.
	// With at most mcMaxSyndromeBits rows the function fits one word, and
	// the bit-sliced batch engine (bitslice.go) evaluates it across 64
	// trials per operation without touching the table.
	flipBits uint64
	// flipWork/flipCompl pick the cheaper minterm evaluation: when more
	// than half the syndromes flip (Steane: 7 of 8), the engine sums the
	// minterms of the non-flipping set and complements the result.
	flipWork  uint64
	flipCompl bool
}

func newBitDecoder(h *gf2.Matrix, lookup map[uint64]gf2.Vec, logical gf2.Vec) bitDecoder {
	d := bitDecoder{rows: make([]uint64, h.Rows()), logical: logical.Uint64()}
	for i := range d.rows {
		d.rows[i] = h.Row(i).Uint64()
	}
	// Unachievable syndromes stay zero in the dense table; they cannot be
	// produced by any error pattern, so the hot path never indexes them.
	// The validity bitset exists for DecodeX/DecodeZ, whose contract is to
	// fail loudly on a syndrome outside the lookup domain rather than
	// return a zero correction.
	d.table = make([]uint64, 1<<uint(len(d.rows)))
	d.valid = make([]bool, len(d.table))
	for s, cor := range lookup {
		d.table[s] = cor.Uint64()
		d.valid[s] = true
	}
	if d.batchOK() {
		for s, cor := range d.table {
			d.flipBits |= uint64(bits.OnesCount64(cor&d.logical)&1) << uint(s)
		}
		domain := ^uint64(0) >> uint(64-len(d.table))
		d.flipWork = d.flipBits
		if bits.OnesCount64(d.flipBits) > len(d.table)/2 {
			d.flipWork = ^d.flipBits & domain
			d.flipCompl = true
		}
	}
	return d
}

// syndromeBits computes the packed syndrome of the error mask e.
//
//cqla:noalloc
func (d *bitDecoder) syndromeBits(e uint64) uint64 {
	var s uint64
	for i, r := range d.rows {
		s |= uint64(bits.OnesCount64(e&r)&1) << uint(i)
	}
	return s
}

// correct decodes the error mask e and returns the residual after applying
// the minimum-weight correction, plus whether that residual is a logical
// fault. It is the packed equivalent of Code.CorrectX/CorrectZ.
//
//cqla:noalloc
func (d *bitDecoder) correct(e uint64) (residual uint64, logicalFault bool) {
	r := e ^ d.table[d.syndromeBits(e)]
	return r, bits.OnesCount64(r&d.logical)&1 == 1
}

// fault decodes the error mask e and reports whether the residual after
// applying the minimum-weight correction is a logical fault.
//
//cqla:noalloc
func (d *bitDecoder) fault(e uint64) bool {
	_, f := d.correct(e)
	return f
}

// resourceProfile carries the code-specific constants of the CQLA timing and
// area model. Each constant is calibrated so that Metrics reproduces Table 2
// of the paper under the projected physical parameters; the breakdown
// reflects the structural reasons one code beats the other (Bacon-Shor's
// syndrome extraction needs no ancilla verification, hence the much smaller
// cycle count).
type resourceProfile struct {
	// syndromeCycles breaks one level-1 syndrome extraction into phases,
	// measured in fundamental clock cycles.
	syndromeCycles syndromePhases

	// upperECSteps is the number of serialized level-(L-1) logical gate
	// times that one level-L syndrome extraction occupies (ancilla block
	// preparation, transversal interaction and measurement expressed in
	// lower-level logical operations).
	upperECSteps int

	// upperGateSteps is the number of level-(L-1) logical gate times that
	// the interaction portion of one level-L transversal gate occupies
	// (shuttling the partner block in, 7 or 9 pairwise couplings, shuttling
	// out).
	upperGateSteps int

	// ancillaL1 is the number of physical ancilla ions accompanying a
	// level-1 logical qubit sized for maximum-speed error correction.
	ancillaL1 int

	// ancillaGrowth determines ancilla counts at higher levels; see
	// AncillaIons for the per-code closed forms.
	ancillaGrowth int

	// layoutFactor converts summed trapping-region area into realized
	// layout area (access channels, junction sharing, dead space).
	layoutFactor float64

	// threshold is the fault-tolerance threshold failure rate for this
	// code accounting for movement and gates (Steane value from Svore,
	// Terhal & DiVincenzo; the Bacon-Shor value reflects its reported
	// higher threshold).
	threshold float64

	// teleportDataQubits is the number of lower-level qubits that must be
	// teleported to move one logical qubit (only data qubits move; the
	// paper notes Bacon-Shor needs more bandwidth for exactly this reason).
	teleportDataQubits int

	// channelsRequired is the interconnect bandwidth, in channels, needed
	// to fully overlap communication with error correction (1 for Steane,
	// 3 for Bacon-Shor; Section 5.1 of the paper).
	channelsRequired int
}

// syndromePhases decomposes a level-1 syndrome extraction into its phases,
// in fundamental cycles. Total() is the per-syndrome cycle count; a full EC
// round extracts both a bit-flip and a phase-flip syndrome.
type syndromePhases struct {
	Prepare  int // encode the ancilla block into the logical |0>/|+> state
	Verify   int // verify the ancilla (zero for Bacon-Shor)
	Interact int // transversal CNOTs between data and ancilla
	Measure  int // read out the ancilla block
	Shuttle  int // ballistic transport between data and ancilla regions
}

// Total returns the cycle count of one syndrome extraction.
func (s syndromePhases) Total() int {
	return s.Prepare + s.Verify + s.Interact + s.Measure + s.Shuttle
}

// Steane returns the Steane [[7,1,3]] code: the smallest CSS code with
// transversal implementations of every gate used in concatenated error
// correction. Its check matrices are the Hamming(7,4) parity checks and its
// logical operators act on all seven qubits.
func Steane() *Code {
	h := gf2.MustMatrix(
		"1010101",
		"0110011",
		"0001111",
	)
	all := gf2.VecFromBits([]int{1, 1, 1, 1, 1, 1, 1})
	c := &Code{
		Name:  "Steane [[7,1,3]]",
		Short: "[[7,1,3]]",
		N:     7, K: 1, D: 3,
		HX: h.Clone(),
		HZ: h.Clone(),
		LX: all.Clone(),
		LZ: all.Clone(),
		profile: resourceProfile{
			// 155 cycles/syndrome -> 2x155x10µs = 3.1 ms level-1 EC (Table 2).
			syndromeCycles: syndromePhases{
				Prepare: 30, Verify: 40, Interact: 14, Measure: 1, Shuttle: 70,
			},
			upperECSteps:       24, // EC(2) = 2x24xTG(1) = 0.2976 s ~ 0.3 s
			upperGateSteps:     32, // TG(2) = 32xTG(1) + EC(2) ~ 0.5 s
			ancillaL1:          21,
			ancillaGrowth:      21,
			layoutFactor:       2.8,
			threshold:          7.5e-5,
			teleportDataQubits: 7,
			channelsRequired:   1,
		},
	}
	c.buildDecoders()
	return c
}

// BaconShor returns the [[9,1,3]] code in its gauge-fixed (Shor) stabilizer
// presentation: six weight-2 Z-type generators (adjacent pairs within each
// row of the 3x3 qubit grid) and two weight-6 X-type generators (adjacent
// row pairs). The subsystem structure is what makes its error correction
// cheap — syndrome extraction needs only weight-2 gauge measurements and no
// ancilla verification — and the resource profile reflects that.
func BaconShor() *Code {
	hz := gf2.MustMatrix(
		"110000000",
		"011000000",
		"000110000",
		"000011000",
		"000000110",
		"000000011",
	)
	hx := gf2.MustMatrix(
		"111111000",
		"000111111",
	)
	c := &Code{
		Name:  "Bacon-Shor [[9,1,3]]",
		Short: "[[9,1,3]]",
		N:     9, K: 1, D: 3,
		HX: hx,
		HZ: hz,
		// Logical X is Z-type for the Shor code (one Z per row);
		// logical Z is X-type (X across the first row). What the decoder
		// needs is the support of the operator each error type must
		// commute with: X errors against LZ's support, Z errors against
		// LX's support.
		LZ: gf2.VecFromBits([]int{1, 0, 0, 1, 0, 0, 1, 0, 0}),
		LX: gf2.VecFromBits([]int{1, 1, 1, 0, 0, 0, 0, 0, 0}),
		profile: resourceProfile{
			// 60 cycles/syndrome -> 2x60x10µs = 1.2 ms level-1 EC. No
			// verification phase: Bacon-Shor syndrome extraction uses bare
			// two-qubit gauge measurements.
			syndromeCycles: syndromePhases{
				Prepare: 12, Verify: 0, Interact: 18, Measure: 1, Shuttle: 29,
			},
			upperECSteps:       21, // EC(2) = 2x21xTG(1) = 0.1008 s ~ 0.1 s
			upperGateSteps:     42, // TG(2) = 42xTG(1) + EC(2) ~ 0.2 s
			ancillaL1:          12,
			ancillaGrowth:      18, // total ions scale x18 per level
			layoutFactor:       2.5,
			threshold:          1.25e-4,
			teleportDataQubits: 9,
			channelsRequired:   3,
		},
	}
	c.buildDecoders()
	return c
}

// Codes returns the two codes the paper evaluates, Steane first.
func Codes() []*Code {
	return []*Code{Steane(), BaconShor()}
}

// buildDecoders constructs minimum-weight lookup tables mapping syndromes to
// corrections, by enumerating errors in order of increasing weight.
func (c *Code) buildDecoders() {
	c.decodeX = buildLookup(c.HZ)
	c.decodeZ = buildLookup(c.HX)
	c.bitX = newBitDecoder(c.HZ, c.decodeX, c.LZ)
	c.bitZ = newBitDecoder(c.HX, c.decodeZ, c.LX)
}

func buildLookup(h *gf2.Matrix) map[uint64]gf2.Vec {
	n := h.Cols()
	if n > 20 {
		panic("ecc: lookup decoding supports at most 20 physical qubits")
	}
	// Enumerate every error pattern in order of increasing weight so each
	// syndrome maps to a minimum-weight correction. The table must be total
	// over achievable syndromes (rank(h) can equal the row count, as for
	// Bacon-Shor's six Z-generators, where some syndromes require weight-3
	// corrections).
	type pattern struct {
		bits   uint64
		weight int
	}
	patterns := make([]pattern, 0, 1<<uint(n))
	for b := uint64(0); b < 1<<uint(n); b++ {
		w := 0
		for x := b; x != 0; x &= x - 1 {
			w++
		}
		patterns = append(patterns, pattern{b, w})
	}
	sort.Slice(patterns, func(i, j int) bool {
		if patterns[i].weight != patterns[j].weight {
			return patterns[i].weight < patterns[j].weight
		}
		return patterns[i].bits < patterns[j].bits
	})
	table := make(map[uint64]gf2.Vec)
	for _, p := range patterns {
		e := gf2.NewVec(n)
		for i := 0; i < n; i++ {
			if p.bits>>uint(i)&1 == 1 {
				e.Set(i, true)
			}
		}
		s := h.MulVec(e).Uint64()
		if _, ok := table[s]; !ok {
			table[s] = e
		}
	}
	return table
}

// The public vector API below is backed by the packed bitDecoder whenever
// the code fits one 64-bit word — true for every code this package can
// construct (buildLookup caps N at 20 physical qubits). The vector-algebra
// expressions remain as the in-worker fallback for inputs the packed path
// cannot take, and as the oracle the exhaustive equivalence tests compare
// against.
//
// The shims are shaped for the compiler's inlining budget: each is exactly
// one worker call plus one gf2.RawWord construction. Since gf2.Vec stores
// small vectors in an inline word, RawWord is a plain struct literal —
// nothing to heap-allocate even when a shim's result escapes — so the
// whole public decode path, CorrectX/CorrectZ included, runs at zero
// allocations (TestPublicDecodeAllocationFree pins this). The per-side
// delegators are marked go:noinline so the shims pay a fixed call, not the
// delegator's inlined body.
//
// Results wider than 64 bits cannot arise from any constructible code; the
// workers fail loudly if a hypothetical wider code ever materializes
// rather than silently truncating.

// SyndromeX returns the syndrome of an X-error support vector.
//
//cqla:noalloc
func (c *Code) SyndromeX(e gf2.Vec) gf2.Vec {
	m, n := c.syndromeXPacked(e)
	return gf2.RawWord(n, m)
}

// SyndromeZ returns the syndrome of a Z-error support vector.
//
//cqla:noalloc
func (c *Code) SyndromeZ(e gf2.Vec) gf2.Vec {
	m, n := c.syndromeZPacked(e)
	return gf2.RawWord(n, m)
}

// DecodeX returns the minimum-weight X correction for a Z-syndrome.
//
//cqla:noalloc
func (c *Code) DecodeX(syndrome gf2.Vec) gf2.Vec {
	m, n := c.decodeXPacked(syndrome)
	return gf2.RawWord(n, m)
}

// DecodeZ returns the minimum-weight Z correction for an X-syndrome.
//
//cqla:noalloc
func (c *Code) DecodeZ(syndrome gf2.Vec) gf2.Vec {
	m, n := c.decodeZPacked(syndrome)
	return gf2.RawWord(n, m)
}

// CorrectX applies decoding to an X-error vector and reports whether the
// residual error is a logical fault (anticommutes with the Z-type logical
// operator).
//
//cqla:noalloc
func (c *Code) CorrectX(e gf2.Vec) (residual gf2.Vec, logicalFault bool) {
	m, fault := c.correctXPacked(e)
	return gf2.RawWord(c.N, m), fault
}

// CorrectZ is CorrectX for phase-flip errors.
//
//cqla:noalloc
func (c *Code) CorrectZ(e gf2.Vec) (residual gf2.Vec, logicalFault bool) {
	m, fault := c.correctZPacked(e)
	return gf2.RawWord(c.N, m), fault
}

//go:noinline
func (c *Code) syndromeXPacked(e gf2.Vec) (uint64, int) {
	return c.syndromePacked(e, &c.bitX, c.HZ)
}

//go:noinline
func (c *Code) syndromeZPacked(e gf2.Vec) (uint64, int) {
	return c.syndromePacked(e, &c.bitZ, c.HX)
}

//go:noinline
func (c *Code) decodeXPacked(syndrome gf2.Vec) (uint64, int) {
	return c.decodePacked(syndrome, &c.bitX, c.decodeX, c.HZ.Rows(), "X")
}

//go:noinline
func (c *Code) decodeZPacked(syndrome gf2.Vec) (uint64, int) {
	return c.decodePacked(syndrome, &c.bitZ, c.decodeZ, c.HX.Rows(), "Z")
}

//go:noinline
func (c *Code) correctXPacked(e gf2.Vec) (uint64, bool) {
	return c.correctPacked(e, &c.bitX, c.decodeX, c.HZ, c.LZ)
}

//go:noinline
func (c *Code) correctZPacked(e gf2.Vec) (uint64, bool) {
	return c.correctPacked(e, &c.bitZ, c.decodeZ, c.HX, c.LX)
}

func (c *Code) syndromePacked(e gf2.Vec, d *bitDecoder, h *gf2.Matrix) (uint64, int) {
	if c.N <= 64 && e.Len() == c.N {
		return d.syndromeBits(e.Uint64()), h.Rows()
	}
	// Vector fallback; MulVec panics on an operand-length mismatch exactly
	// as the pre-packed API did.
	return packVec(h.MulVec(e))
}

func (c *Code) decodePacked(syndrome gf2.Vec, d *bitDecoder, lookup map[uint64]gf2.Vec, rows int, kind string) (uint64, int) {
	if c.N <= 64 && syndrome.Len() == rows {
		s := syndrome.Uint64()
		if !d.valid[s] {
			// Cannot happen for a total table, but fail loudly if it does.
			// Stringify eagerly: passing the vector itself into the panic
			// would make the parameter escape and cost the warm path its
			// allocation-freedom.
			panic(fmt.Sprintf("ecc: %s has no %s correction for syndrome %s", c.Name, kind, syndrome.String()))
		}
		return d.table[s], c.N
	}
	cor, ok := lookup[syndrome.Uint64()]
	if !ok {
		panic(fmt.Sprintf("ecc: %s has no %s correction for syndrome %s", c.Name, kind, syndrome.String()))
	}
	// Packing copies the correction by value, so the shim hands back a
	// fresh vector — callers can mutate it, as they always could.
	return packVec(cor)
}

func (c *Code) correctPacked(e gf2.Vec, d *bitDecoder, lookup map[uint64]gf2.Vec, h *gf2.Matrix, logical gf2.Vec) (uint64, bool) {
	if c.N <= 64 && e.Len() == c.N {
		return d.correct(e.Uint64())
	}
	cor, ok := lookup[h.MulVec(e).Uint64()]
	if !ok {
		panic(fmt.Sprintf("ecc: %s has no correction for error %s", c.Name, e.String()))
	}
	residual := e.Clone()
	residual.Xor(cor)
	m, _ := packVec(residual)
	return m, residual.Dot(logical)
}

// packVec re-packs a vector-path result for the shim constructors.
func packVec(v gf2.Vec) (uint64, int) {
	if v.Len() > 64 {
		panic("ecc: packed decode supports results up to 64 bits")
	}
	return v.Uint64(), v.Len()
}

// Validate checks the internal consistency of the stabilizer data: CSS
// commutation between X- and Z-type generators, generator independence,
// logical operators commuting with all stabilizers while anticommuting with
// each other, and N-K independent generators in total.
func (c *Code) Validate() error {
	if c.HX.Cols() != c.N || c.HZ.Cols() != c.N {
		return fmt.Errorf("ecc: %s check matrices have wrong width", c.Name)
	}
	for i := 0; i < c.HX.Rows(); i++ {
		for j := 0; j < c.HZ.Rows(); j++ {
			if c.HX.Row(i).Dot(c.HZ.Row(j)) {
				return fmt.Errorf("ecc: %s X-generator %d anticommutes with Z-generator %d", c.Name, i, j)
			}
		}
	}
	if got, want := c.HX.Rank()+c.HZ.Rank(), c.N-c.K; got != want {
		return fmt.Errorf("ecc: %s has %d independent generators, want %d", c.Name, got, want)
	}
	for i := 0; i < c.HZ.Rows(); i++ {
		if c.HZ.Row(i).Dot(c.LX) {
			return fmt.Errorf("ecc: %s logical X anticommutes with Z-generator %d", c.Name, i)
		}
	}
	for i := 0; i < c.HX.Rows(); i++ {
		if c.HX.Row(i).Dot(c.LZ) {
			return fmt.Errorf("ecc: %s logical Z anticommutes with X-generator %d", c.Name, i)
		}
	}
	if !c.LX.Dot(c.LZ) {
		return fmt.Errorf("ecc: %s logical X and Z commute; they must anticommute", c.Name)
	}
	return nil
}

// Threshold returns the fault-tolerance threshold failure rate assumed for
// this code.
func (c *Code) Threshold() float64 { return c.profile.threshold }

// ChannelsRequired returns the interconnect bandwidth, in channels, needed
// to overlap this code's communication with its error correction.
func (c *Code) ChannelsRequired() int { return c.profile.channelsRequired }

// TeleportDataQubits returns how many sub-block qubits must be teleported
// to move one logical qubit of this code between regions.
func (c *Code) TeleportDataQubits() int { return c.profile.teleportDataQubits }
