package ecc

import (
	"testing"
	"time"

	"repro/internal/phys"
)

// TestECTimeScalesWithCycleTime: the timing model is cycle-accurate at
// level 1, so slowing the clock slows error correction proportionally at
// every level.
func TestECTimeScalesWithCycleTime(t *testing.T) {
	fast := phys.Projected()
	slow := phys.Projected()
	slow.CycleTime = 2 * fast.CycleTime
	for _, c := range Codes() {
		for level := 1; level <= 2; level++ {
			tf := c.ECTime(level, fast)
			ts := c.ECTime(level, slow)
			if ts != 2*tf {
				t.Errorf("%s L%d: %v -> %v, want exactly 2x", c.Short, level, tf, ts)
			}
		}
	}
}

// TestAreaScalesWithTrapSize: area goes as the square of the trap pitch.
func TestAreaScalesWithTrapSize(t *testing.T) {
	small := phys.Projected()
	big := phys.Projected()
	big.TrapSizeMicron = 2 * small.TrapSizeMicron
	for _, c := range Codes() {
		a1 := c.AreaMM2(2, small)
		a2 := c.AreaMM2(2, big)
		if ratio := a2 / a1; ratio < 3.999 || ratio > 4.001 {
			t.Errorf("%s: area ratio %.3f, want 4 (quadratic in pitch)", c.Short, ratio)
		}
	}
}

// TestCurrentParametersAreHopeless reproduces the paper's implicit premise:
// at currently demonstrated failure rates no amount of concatenation
// reaches a useful logical failure rate.
func TestCurrentParametersAreHopeless(t *testing.T) {
	p0 := phys.Current().AverageFailure()
	for _, c := range Codes() {
		if c.BelowThreshold(p0) {
			t.Errorf("%s: current p0=%.3g should exceed threshold %.3g", c.Short, p0, c.Threshold())
		}
		// Above threshold, "encoding" makes each level worse.
		p1 := c.LogicalFailureRate(1, p0, DefaultCommDistance)
		p2 := c.LogicalFailureRate(2, p0, DefaultCommDistance)
		if p2 < p1 {
			t.Errorf("%s: concatenation should not help above threshold (p1=%.3g p2=%.3g)", c.Short, p1, p2)
		}
	}
}

// TestSensitivityToCNOTFailure: degrade only the two-qubit gate by 100x and
// watch the level-2 logical rate blow up by ~the fourth power of the
// p0 increase (2^L exponent with L=2).
func TestSensitivityToCNOTFailure(t *testing.T) {
	good := phys.Projected()
	bad := phys.Projected()
	op := bad.Op(phys.DoubleGate)
	op.FailureRate *= 100
	bad.SetOp(phys.DoubleGate, op)

	c := Steane()
	pGood := c.LogicalFailureRate(2, good.AverageFailure(), DefaultCommDistance)
	pBad := c.LogicalFailureRate(2, bad.AverageFailure(), DefaultCommDistance)
	p0Ratio := bad.AverageFailure() / good.AverageFailure()
	expect := pGood * p0Ratio * p0Ratio * p0Ratio * p0Ratio
	if pBad < expect*0.99 || pBad > expect*1.01 {
		t.Errorf("L2 rate %.3g, want %.3g (quartic in p0)", pBad, expect)
	}
}

// TestTransversalGateAlwaysExceedsEC: a logical gate includes its trailing
// error correction, so it can never be faster.
func TestTransversalGateAlwaysExceedsEC(t *testing.T) {
	p := phys.Projected()
	for _, c := range Codes() {
		for level := 1; level <= 3; level++ {
			if c.TransversalGateTime(level, p) <= c.ECTime(level, p) {
				t.Errorf("%s L%d: gate %v <= EC %v", c.Short, level,
					c.TransversalGateTime(level, p), c.ECTime(level, p))
			}
		}
	}
}

// TestMetricsAtHigherLevels: the closed forms extend to level 3 sanely.
func TestMetricsAtHigherLevels(t *testing.T) {
	p := phys.Projected()
	for _, c := range Codes() {
		m2 := c.Metrics(2, p)
		m3 := c.Metrics(3, p)
		if m3.DataIons != m2.DataIons*c.N {
			t.Errorf("%s: L3 data ions %d, want %d", c.Short, m3.DataIons, m2.DataIons*c.N)
		}
		if m3.ECTime < 10*m2.ECTime {
			t.Errorf("%s: L3 EC time should dwarf L2", c.Short)
		}
		if m3.AreaMM2 <= m2.AreaMM2 {
			t.Errorf("%s: L3 area should exceed L2", c.Short)
		}
	}
}

func TestECTimeDeterministic(t *testing.T) {
	p := phys.Projected()
	c := BaconShor()
	var prev time.Duration
	for i := 0; i < 3; i++ {
		got := c.ECTime(2, p)
		if i > 0 && got != prev {
			t.Fatal("EC time not deterministic")
		}
		prev = got
	}
}
