package ecc

import (
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Rare-event estimation on top of the bit-sliced batch engine.
//
// Below p ≈ 3e-4 the naive estimator needs billions of trials to observe a
// logical fault: at physical rate p a distance-3 code fails at ~O(p²).
// Importance sampling fixes the economics: sample error patterns at a tilted
// physical rate q > p where faults are common, and reweight each faulted
// trial by the likelihood ratio of its pattern under p versus q. For
// i.i.d. bit-flip noise that ratio depends only on the pattern's weight k,
//
//	w(k) = (p/q)^k · ((1-p)/(1-q))^(n-k),
//
// so the whole campaign reduces to an integer histogram of faulted trials
// by error weight. Integer histograms merge across blocks and workers by
// addition, which is what makes the floating-point estimate — computed once,
// in fixed order, from the merged histogram — byte-identical at any
// parallelism. The estimator is exactly unbiased for any q: E_q[w·1_fault] =
// P_p(fault), term by term over patterns.

// mcTiltRate is the tilted sampling rate of the rare-event estimator: far
// enough below threshold that the fault mix still reflects the low-p regime
// (weight-2 patterns dominate), high enough that faults arrive every few
// hundred trials. Rates at or above the tilt sample untilted (w ≡ 1).
const mcTiltRate = 0.02

// mcCIZ is the normal quantile behind every confidence-interval field: 1.96
// standard errors ≈ a 95% interval.
const mcCIZ = 1.96

// tiltRate returns the sampling rate the rare-event estimator uses for a
// target physical rate p. It is a pure function of p, part of the
// determinism contract.
func tiltRate(p float64) float64 {
	if p >= mcTiltRate {
		return p
	}
	return mcTiltRate
}

// weightHist counts faulted trials by error weight (n ≤ mcMaxQubits).
type weightHist [mcMaxQubits + 1]int64

// RareEventResult summarizes an importance-sampled Monte Carlo campaign.
type RareEventResult struct {
	Trials       int     // trials spent
	PhysicalRate float64 // target rate p the estimate is for
	TiltRate     float64 // rate q the patterns were sampled at
	FaultTrials  int     // raw faulted trials observed at the tilt
	LogicalRate  float64 // importance-sampled estimate of the logical rate at p
	StdErr       float64 // standard error of LogicalRate
	RateBound    float64 // 95% upper bound on the logical rate (rule-of-three when no faults)
}

// RelCI returns the half-width of the 95% confidence interval relative to
// the estimate (+Inf when no faults were observed).
func (r RareEventResult) RelCI() float64 {
	if r.LogicalRate <= 0 {
		return math.Inf(1)
	}
	return mcCIZ * r.StdErr / r.LogicalRate
}

// Resolved reports whether the estimate is statistically resolved: at least
// one fault observed and a relative CI no wider than target.
func (r RareEventResult) Resolved(target float64) bool {
	return r.FaultTrials > 0 && r.RelCI() <= target
}

// weightAt returns the likelihood ratio of a weight-k pattern under p
// versus the tilt q.
func weightAt(n, k int, p, q float64) float64 {
	if p == q {
		return 1
	}
	return math.Pow(p/q, float64(k)) * math.Pow((1-p)/(1-q), float64(n-k))
}

// rareFromHist turns a merged weight histogram into the estimate. All
// floating-point work happens here, once, in ascending-k order — the
// parallel paths only ever add integers.
func rareFromHist(n, minFaultWeight int, p, q float64, trials int, hist *weightHist) RareEventResult {
	res := RareEventResult{Trials: trials, PhysicalRate: p, TiltRate: q}
	var sumW, sumW2 float64
	for k := 0; k <= n; k++ {
		cnt := hist[k]
		if cnt == 0 {
			continue
		}
		res.FaultTrials += int(cnt)
		w := weightAt(n, k, p, q)
		sumW += float64(cnt) * w
		sumW2 += float64(cnt) * w * w
	}
	if trials <= 0 {
		return res
	}
	T := float64(trials)
	mean := sumW / T
	res.LogicalRate = mean
	if v := sumW2/T - mean*mean; v > 0 {
		res.StdErr = math.Sqrt(v / T)
	}
	if res.FaultTrials == 0 {
		// Rule of three at the tilt, mapped through the heaviest likelihood
		// ratio a faulting pattern can carry: a distance-d code needs at
		// least (d+1)/2 errors to fault, and w(k) decreases in k for p < q.
		res.RateBound = weightAt(n, minFaultWeight, p, q) * 3 / T
	} else {
		res.RateBound = res.LogicalRate + mcCIZ*res.StdErr
	}
	return res
}

// sampleBatchHist is sampleBatch with weight accounting: faulted trials land
// in hist binned by error weight instead of a flat count. The per-block
// weight tally is a vertical (bit-sliced) counter: qubit lanes are summed
// into five carry-save bit planes, and only faulted trials de-transpose
// their 5-bit weight. Returns the faulted-trial count.
//
//cqla:noalloc
func (d *bitDecoder) sampleBatchHist(n int, pr *mcProb, lo, hi, trials int, seed int64, hist *weightHist) int {
	faults := 0
	var lanes [mcMaxQubits]uint64
	for b := lo; b < hi; b++ {
		s := mcStream{state: uint64(shardSeed(seed, b))}
		for q := 0; q < n; q++ {
			lanes[q] = pr.lanes(&s)
		}
		f := d.faultLanes(&lanes)
		if rem := trials - b*mcBatchLanes; rem < mcBatchLanes {
			f &= ^uint64(0) >> uint(mcBatchLanes-rem)
		}
		if f == 0 {
			continue
		}
		faults += bits.OnesCount64(f)
		var plane [5]uint64
		for q := 0; q < n; q++ {
			x := lanes[q]
			for j := 0; j < len(plane) && x != 0; j++ {
				carry := plane[j] & x
				plane[j] ^= x
				x = carry
			}
		}
		for m := f; m != 0; m &= m - 1 {
			t := uint(bits.TrailingZeros64(m))
			k := plane[0]>>t&1 |
				plane[1]>>t&1<<1 |
				plane[2]>>t&1<<2 |
				plane[3]>>t&1<<3 |
				plane[4]>>t&1<<4
			hist[k]++
		}
	}
	return faults
}

// sampleBatchHistParallel fans hist shards across a worker pool and returns
// the merged histogram; worker histograms merge under a mutex by integer
// addition, so the merged histogram — and everything computed from it — is
// identical at any worker count. It owns its accumulator (the escape into
// the worker closures happens here), which keeps the serial kernel's
// callers allocation-free.
func (d *bitDecoder) sampleBatchHistParallel(n int, pr mcProb, lo, hi, trials int, seed int64, workers int) weightHist {
	var hist weightHist
	shards := (hi - lo + mcBatchShardBlocks - 1) / mcBatchShardBlocks
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		d.sampleBatchHist(n, &pr, lo, hi, trials, seed, &hist)
		return hist
	}
	var mu sync.Mutex
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := pr
			var local weightHist
			for {
				s := int(atomic.AddInt64(&next, 1)) - 1
				if s >= shards {
					break
				}
				slo := lo + s*mcBatchShardBlocks
				shi := slo + mcBatchShardBlocks
				if shi > hi {
					shi = hi
				}
				d.sampleBatchHist(n, &p, slo, shi, trials, seed, &local)
			}
			mu.Lock()
			for k := range local {
				hist[k] += local[k]
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return hist
}

// MonteCarloXRare estimates the X-error logical rate at p with the
// importance-sampled batch engine on the full trial budget. Same seeding
// and determinism contract as MonteCarloXBatch: the same (p, trials, seed)
// produces the byte-identical result at any parallelism.
func (c *Code) MonteCarloXRare(p float64, trials int, seed int64) RareEventResult {
	return c.monteCarloRare(p, trials, seed, 0, &c.bitX)
}

// MonteCarloZRare is MonteCarloXRare for phase-flip errors.
func (c *Code) MonteCarloZRare(p float64, trials int, seed int64) RareEventResult {
	return c.monteCarloRare(p, trials, seed, 0, &c.bitZ)
}

// MonteCarloXRareParallel is MonteCarloXRare with an explicit worker count
// (0 or less selects GOMAXPROCS).
func (c *Code) MonteCarloXRareParallel(p float64, trials int, seed int64, workers int) RareEventResult {
	return c.monteCarloRare(p, trials, seed, workers, &c.bitX)
}

// MonteCarloZRareParallel is MonteCarloXRareParallel for phase-flip errors.
func (c *Code) MonteCarloZRareParallel(p float64, trials int, seed int64, workers int) RareEventResult {
	return c.monteCarloRare(p, trials, seed, workers, &c.bitZ)
}

func (c *Code) monteCarloRare(p float64, trials int, seed int64, workers int, d *bitDecoder) RareEventResult {
	q := tiltRate(p)
	if trials < 0 {
		trials = 0
	}
	var hist weightHist
	if trials > 0 {
		d.requireBatch(c.Name)
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		pr := makeProb(q)
		blocks := (trials + mcBatchLanes - 1) / mcBatchLanes
		if workers == 1 {
			d.sampleBatchHist(c.N, &pr, 0, blocks, trials, seed, &hist)
		} else {
			hist = d.sampleBatchHistParallel(c.N, pr, 0, blocks, trials, seed, workers)
		}
	}
	return rareFromHist(c.N, c.minFaultWeight(), p, q, trials, &hist)
}

// minFaultWeight is the smallest error weight that can defeat the decoder:
// (d+1)/2 for a distance-d code.
func (c *Code) minFaultWeight() int { return (c.D + 1) / 2 }

// AdaptiveOptions configures the adaptive trial allocator.
type AdaptiveOptions struct {
	// Budget is the global trial budget shared by all points (default 1e6).
	Budget int
	// Chunk is the trial grant per allocation step, rounded up to a whole
	// number of 64-trial blocks (default 65536).
	Chunk int
	// TargetRelCI is the relative confidence-interval width at which a
	// point counts as resolved (default 0.10).
	TargetRelCI float64
	// Workers bounds the parallelism inside each grant (0 = GOMAXPROCS).
	// The allocation sequence and every estimate are identical at any
	// setting.
	Workers int
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.Budget <= 0 {
		o.Budget = 1000000
	}
	if o.Chunk <= 0 {
		o.Chunk = 65536
	}
	o.Chunk = (o.Chunk + mcBatchLanes - 1) / mcBatchLanes * mcBatchLanes
	if o.TargetRelCI <= 0 {
		o.TargetRelCI = 0.10
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// AdaptivePoint is one physical rate's share of an adaptive campaign.
type AdaptivePoint struct {
	PhysicalRate float64
	Result       RareEventResult
}

// AdaptiveMonteCarloX spreads a global trial budget across physical-rate
// points, always feeding the point whose relative confidence interval is
// widest, and stops early once every point is resolved to the target. Each
// point continues its own seeded block sequence across grants, and grant
// decisions depend only on accumulated integer histograms, so the whole
// campaign — allocation sequence included — is reproducible at any worker
// count. Points that have not yet faulted count as maximally unresolved and
// round-robin by spent trials, so a pathologically quiet point cannot
// starve the rest of the sweep.
func (c *Code) AdaptiveMonteCarloX(rates []float64, seed int64, opt AdaptiveOptions) []AdaptivePoint {
	return c.adaptiveMonteCarlo(rates, seed, opt, &c.bitX)
}

// AdaptiveMonteCarloZ is AdaptiveMonteCarloX for phase-flip errors.
func (c *Code) AdaptiveMonteCarloZ(rates []float64, seed int64, opt AdaptiveOptions) []AdaptivePoint {
	return c.adaptiveMonteCarlo(rates, seed, opt, &c.bitZ)
}

func (c *Code) adaptiveMonteCarlo(rates []float64, seed int64, opt AdaptiveOptions, d *bitDecoder) []AdaptivePoint {
	opt = opt.withDefaults()
	pts := make([]AdaptivePoint, len(rates))
	for i, p := range rates {
		pts[i].PhysicalRate = p
		pts[i].Result = rareFromHist(c.N, c.minFaultWeight(), p, tiltRate(p), 0, &weightHist{})
	}
	if len(rates) == 0 {
		return pts
	}
	d.requireBatch(c.Name)
	hists := make([]weightHist, len(rates))
	spent := 0
	grant := func(i, g int) {
		p := rates[i]
		q := tiltRate(p)
		pr := makeProb(q)
		lo := pts[i].Result.Trials / mcBatchLanes
		hi := lo + g/mcBatchLanes
		trials := pts[i].Result.Trials + g
		h := d.sampleBatchHistParallel(c.N, pr, lo, hi, trials, shardSeed(seed, i), opt.Workers)
		for k := range h {
			hists[i][k] += h[k]
		}
		pts[i].Result = rareFromHist(c.N, c.minFaultWeight(), p, q, trials, &hists[i])
		spent += g
	}
	for spent < opt.Budget {
		g := opt.Budget - spent
		if g > opt.Chunk {
			g = opt.Chunk
		}
		g = g / mcBatchLanes * mcBatchLanes
		if g == 0 {
			break
		}
		// Seeding pass: every point gets one chunk, in order, before the
		// allocator starts chasing the widest interval.
		best := -1
		for i := range pts {
			if pts[i].Result.Trials == 0 {
				best = i
				break
			}
		}
		if best < 0 {
			bestPri := math.Inf(-1)
			for i := range pts {
				r := pts[i].Result
				if r.Resolved(opt.TargetRelCI) {
					continue
				}
				pri := r.RelCI()
				if best < 0 || pri > bestPri ||
					(pri == bestPri && r.Trials < pts[best].Result.Trials) {
					best, bestPri = i, pri
				}
			}
			if best < 0 {
				break // every point resolved: stop early, return the budget
			}
		}
		grant(best, g)
	}
	return pts
}
