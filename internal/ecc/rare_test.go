package ecc

import (
	"math"
	"runtime"
	"testing"
)

// TestRareParallelDeterminism extends the seeded determinism contract to
// the importance-sampled estimator: the full result — estimate, standard
// error and bound included — must be byte-identical at parallelism 1, 4 and
// NumCPU, because every float is computed once from the merged integer
// histogram. CI runs this under -race.
func TestRareParallelDeterminism(t *testing.T) {
	const (
		p      = 1e-4
		trials = 3*mcShardTrials + 517
		seed   = 99
	)
	for _, c := range Codes() {
		workers := []int{1, 4, runtime.NumCPU()}
		baseX := c.MonteCarloXRareParallel(p, trials, seed, workers[0])
		baseZ := c.MonteCarloZRareParallel(p, trials, seed, workers[0])
		if baseX.FaultTrials == 0 {
			t.Errorf("%s: no faults at tilt %g over %d trials; the test is vacuous", c.Name, baseX.TiltRate, trials)
		}
		for _, w := range workers[1:] {
			if got := c.MonteCarloXRareParallel(p, trials, seed, w); got != baseX {
				t.Errorf("%s: X results differ at %d workers: %+v vs %+v", c.Name, w, got, baseX)
			}
			if got := c.MonteCarloZRareParallel(p, trials, seed, w); got != baseZ {
				t.Errorf("%s: Z results differ at %d workers: %+v vs %+v", c.Name, w, got, baseZ)
			}
		}
		if got := c.MonteCarloXRare(p, trials, seed); got != baseX {
			t.Errorf("%s: MonteCarloXRare differs from the 1-worker result: %+v vs %+v", c.Name, got, baseX)
		}
	}
}

// TestRareUntiltedMatchesBatch pins the estimator's p == q degenerate case:
// at a rate above the tilt floor the rare estimator samples untilted from
// the same per-block streams as the batch engine, so its raw fault count
// must equal MonteCarloXBatch's exactly and its estimate must be the plain
// fault fraction.
func TestRareUntiltedMatchesBatch(t *testing.T) {
	const (
		p      = 0.05
		trials = 2*mcShardTrials + 91
		seed   = 17
	)
	for _, c := range Codes() {
		b := c.MonteCarloXBatch(p, trials, seed)
		r := c.MonteCarloXRare(p, trials, seed)
		if r.TiltRate != p {
			t.Errorf("%s: tilt %g for p=%g above the floor", c.Name, r.TiltRate, p)
		}
		if r.FaultTrials != b.LogicalFaults {
			t.Errorf("%s: untilted rare saw %d faults, batch saw %d", c.Name, r.FaultTrials, b.LogicalFaults)
		}
		if want := b.LogicalRate(); r.LogicalRate != want {
			t.Errorf("%s: untilted rare estimate %g, batch rate %g", c.Name, r.LogicalRate, want)
		}
	}
}

// TestRareUnbiasedAgainstNaive is the statistical heart of the satellite:
// at a physical rate the naive estimator can resolve, the tilted
// importance-sampled estimate must agree with the naive estimate within
// combined counting error. p = 0.01 sits below the tilt floor, so the rare
// estimator genuinely samples at q = 0.02 and reweights.
func TestRareUnbiasedAgainstNaive(t *testing.T) {
	const (
		p      = 0.01
		trials = 400000
		seed   = 8
	)
	for _, c := range Codes() {
		naive := c.MonteCarloXBatch(p, trials, seed)
		rare := c.MonteCarloXRare(p, trials, seed+1) // independent streams
		if rare.TiltRate != mcTiltRate {
			t.Fatalf("%s: expected tilted sampling at %g, got %g", c.Name, mcTiltRate, rare.TiltRate)
		}
		nr := naive.LogicalRate()
		naiveSE := math.Sqrt(nr * (1 - nr) / trials)
		se := math.Hypot(naiveSE, rare.StdErr)
		if diff := math.Abs(nr - rare.LogicalRate); diff > 6*se {
			t.Errorf("%s: naive %g vs importance-sampled %g differ by %.1f combined standard errors",
				c.Name, nr, rare.LogicalRate, diff/se)
		}
		if !rare.Resolved(0.1) {
			t.Errorf("%s: rare estimator unresolved at p=%g over %d trials: relCI=%g",
				c.Name, p, trials, rare.RelCI())
		}
	}
}

// TestRareResolvesDeepPoints is the acceptance criterion of the tentpole's
// statistics layer: at p = 1e-5 — where the naive estimator would need
// ~10^11 trials — the adaptive rare-event estimator must deliver a relative
// CI of at most 10% well inside the 1M-trial budget.
func TestRareResolvesDeepPoints(t *testing.T) {
	for _, c := range Codes() {
		pts := c.AdaptiveMonteCarloX([]float64{1e-5}, 42, AdaptiveOptions{Budget: 1000000})
		r := pts[0].Result
		if !r.Resolved(0.1) {
			t.Fatalf("%s: p=1e-5 unresolved after %d trials: relCI=%g", c.Name, r.Trials, r.RelCI())
		}
		if r.Trials >= 1000000 {
			t.Errorf("%s: early stopping never kicked in (%d trials)", c.Name, r.Trials)
		}
		// The estimate must sit in the physically sensible range: below the
		// physical rate (error correction helps at 1e-5) and above zero.
		if r.LogicalRate <= 0 || r.LogicalRate >= 1e-5 {
			t.Errorf("%s: implausible logical rate %g at p=1e-5", c.Name, r.LogicalRate)
		}
	}
}

// TestAdaptiveAllocation exercises the global allocator: a mixed sweep
// must resolve every point within budget, spend more trials on harder
// points only while they are unresolved, stop early, and allocate
// identically at any worker count.
func TestAdaptiveAllocation(t *testing.T) {
	c := Steane()
	rates := []float64{3e-3, 1e-4, 1e-5}
	opt := AdaptiveOptions{Budget: 1000000, Workers: 1}
	pts := c.AdaptiveMonteCarloX(rates, 7, opt)
	total := 0
	for i, pt := range pts {
		r := pt.Result
		if pt.PhysicalRate != rates[i] {
			t.Errorf("point %d echoes rate %g", i, pt.PhysicalRate)
		}
		if !r.Resolved(0.1) {
			t.Errorf("p=%g unresolved: relCI=%g after %d trials", pt.PhysicalRate, r.RelCI(), r.Trials)
		}
		if r.Trials%mcBatchLanes != 0 {
			t.Errorf("p=%g: %d trials is not a whole number of blocks", pt.PhysicalRate, r.Trials)
		}
		total += r.Trials
	}
	if total > opt.Budget {
		t.Errorf("allocator overspent: %d > %d", total, opt.Budget)
	}
	if total == opt.Budget {
		t.Error("allocator never stopped early on a fully resolved sweep")
	}
	for _, w := range []int{4, runtime.NumCPU()} {
		opt.Workers = w
		got := c.AdaptiveMonteCarloX(rates, 7, opt)
		for i := range got {
			if got[i] != pts[i] {
				t.Errorf("workers=%d: point %d differs: %+v vs %+v", w, i, got[i], pts[i])
			}
		}
	}
}

// TestAdaptiveDegenerateInputs covers the allocator's edges: no points, a
// zero budget smaller than one block, and a seed change steering every
// stream.
func TestAdaptiveDegenerateInputs(t *testing.T) {
	c := BaconShor()
	if pts := c.AdaptiveMonteCarloX(nil, 1, AdaptiveOptions{}); len(pts) != 0 {
		t.Errorf("no rates produced %d points", len(pts))
	}
	pts := c.AdaptiveMonteCarloX([]float64{1e-3}, 1, AdaptiveOptions{Budget: 63})
	if got := pts[0].Result.Trials; got != 0 {
		t.Errorf("sub-block budget spent %d trials", got)
	}
	a := c.AdaptiveMonteCarloX([]float64{1e-4}, 1, AdaptiveOptions{Budget: 1 << 17})
	b := c.AdaptiveMonteCarloX([]float64{1e-4}, 2, AdaptiveOptions{Budget: 1 << 17})
	if a[0].Result.FaultTrials == b[0].Result.FaultTrials && a[0].Result.LogicalRate == b[0].Result.LogicalRate {
		t.Error("different seeds produced identical adaptive results")
	}
}

// TestRareHistKernelAllocationFree pins the importance-sampling kernel to
// the same steady-state contract as the plain batch path.
func TestRareHistKernelAllocationFree(t *testing.T) {
	for _, c := range Codes() {
		if avg := testing.AllocsPerRun(50, func() {
			c.MonteCarloXRareParallel(1e-4, 4096, 21, 1)
		}); avg != 0 {
			t.Errorf("%s: rare Monte Carlo allocates %.1f times per run, want 0", c.Name, avg)
		}
	}
}
