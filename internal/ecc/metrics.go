package ecc

import (
	"fmt"
	"math"
	"time"

	"repro/internal/phys"
)

// Metrics carries the architecture-level figures of merit for one code at
// one concatenation level — the rows of Table 2 in the paper.
type Metrics struct {
	Code  string
	Level int

	// ECTime is the duration of one full (bit-flip + phase-flip) error
	// correction round.
	ECTime time.Duration

	// TransversalGateTime is the duration of one logical transversal gate
	// including the error correction that must follow it.
	TransversalGateTime time.Duration

	// AreaMM2 is the physical footprint of one logical qubit, including
	// its error-correction ancilla, in mm².
	AreaMM2 float64

	// DataIons and AncillaIons are the physical qubit counts making up the
	// logical qubit ("Size, number of logical qubits" rows of Table 2).
	DataIons    int
	AncillaIons int
}

// TotalIons returns data plus ancilla physical qubits.
func (m Metrics) TotalIons() int { return m.DataIons + m.AncillaIons }

// ECTime returns the duration of one full error-correction round (both
// syndromes) at the given concatenation level under the given technology.
//
// Level 1 is extracted directly from the phase breakdown of the syndrome
// schedule. At higher levels each syndrome is a sequence of lower-level
// logical operations, so time multiplies by the per-level step count times
// the lower-level transversal gate time — this is the exponential growth in
// EC time the memory-hierarchy design exploits.
func (c *Code) ECTime(level int, p phys.Params) time.Duration {
	if level < 1 {
		panic(fmt.Sprintf("ecc: invalid concatenation level %d", level))
	}
	if level == 1 {
		perSyndrome := c.profile.syndromeCycles.Total()
		return p.Duration(2 * perSyndrome)
	}
	lower := c.TransversalGateTime(level-1, p)
	return time.Duration(2*c.profile.upperECSteps) * lower
}

// TransversalGateTime returns the duration of a logical transversal gate at
// the given level, including the mandatory trailing error correction. At
// level 1 the interaction itself is shuttle-dominated and costs about as
// much as the error correction that follows; at higher levels it is a
// sequence of level-(L-1) logical gates.
func (c *Code) TransversalGateTime(level int, p phys.Params) time.Duration {
	if level < 1 {
		panic(fmt.Sprintf("ecc: invalid concatenation level %d", level))
	}
	ec := c.ECTime(level, p)
	if level == 1 {
		interact := p.Duration(2 * c.profile.syndromeCycles.Total())
		return interact + ec
	}
	interact := time.Duration(c.profile.upperGateSteps) * c.TransversalGateTime(level-1, p)
	return interact + ec
}

// DataIons returns the number of physical data qubits in one level-L
// logical qubit: N^L.
func (c *Code) DataIons(level int) int {
	return intPow(c.N, level)
}

// AncillaIons returns the number of physical ancilla qubits accompanying a
// level-L logical qubit in a compute-grade (fast error correction) tile.
//
// Steane: ancilla triple the block at every level (7 EC + 7 verification +
// 7 cat-state ions per block), giving 21^L. Bacon-Shor: the block of
// (9 data + 12 ancilla) = 21 ions grows by a factor 18 per level (9 data +
// 9 ancilla units), giving 18^(L-1)x21 total ions.
func (c *Code) AncillaIons(level int) int {
	switch c.Short {
	case "[[7,1,3]]":
		return intPow(c.profile.ancillaGrowth, level)
	case "[[9,1,3]]":
		total := 21 * intPow(c.profile.ancillaGrowth, level-1)
		return total - c.DataIons(level)
	default:
		// Generic fallback: ancilla scale like (N + ancillaL1)^L - N^L.
		return intPow(c.N+c.profile.ancillaL1, level) - c.DataIons(level)
	}
}

// TotalIons returns data plus ancilla physical qubits at the given level.
func (c *Code) TotalIons(level int) int {
	return c.DataIons(level) + c.AncillaIons(level)
}

// AreaMM2 returns the layout footprint of one logical qubit at the given
// level: every physical ion occupies one trapping region, inflated by the
// code's layout factor for access channels and junction sharing.
func (c *Code) AreaMM2(level int, p phys.Params) float64 {
	return float64(c.TotalIons(level)) * p.RegionAreaMM2() * c.profile.layoutFactor
}

// Metrics assembles the full Table 2 row set for this code at one level.
func (c *Code) Metrics(level int, p phys.Params) Metrics {
	return Metrics{
		Code:                c.Short,
		Level:               level,
		ECTime:              c.ECTime(level, p),
		TransversalGateTime: c.TransversalGateTime(level, p),
		AreaMM2:             c.AreaMM2(level, p),
		DataIons:            c.DataIons(level),
		AncillaIons:         c.AncillaIons(level),
	}
}

// LogicalFailureRate evaluates Gottesman's local-architecture estimate
// (Equation 1 of the paper) for the failure probability of one logical
// operation at concatenation level L:
//
//	Pf = (pth / r^L) x (p0/pth)^(2^L)
//
// where p0 is the effective physical component failure rate, pth the code's
// threshold, and r the communication distance between level-1 blocks in
// cells (12 in the QLA floorplan).
func (c *Code) LogicalFailureRate(level int, p0 float64, r float64) float64 {
	if level < 0 {
		panic(fmt.Sprintf("ecc: invalid level %d", level))
	}
	if level == 0 {
		return p0
	}
	pth := c.profile.threshold
	exp := math.Pow(2, float64(level))
	return pth / math.Pow(r, float64(level)) * math.Pow(p0/pth, exp)
}

// DefaultCommDistance is the average communication distance, in cells,
// between level-1 blocks in the QLA floorplan (the r of Equation 1).
const DefaultCommDistance = 12.0

// BelowThreshold reports whether the physical failure rate is under this
// code's fault-tolerance threshold, the precondition for concatenation to
// help at all.
func (c *Code) BelowThreshold(p0 float64) bool {
	return p0 < c.profile.threshold
}

// MinLevelFor returns the smallest concatenation level whose logical
// failure rate meets the target (e.g. 1/KQ for an application with K time
// steps and Q logical qubits), or -1 if no level up to maxLevel does.
func (c *Code) MinLevelFor(target, p0 float64, maxLevel int) int {
	for l := 1; l <= maxLevel; l++ {
		if c.LogicalFailureRate(l, p0, DefaultCommDistance) <= target {
			return l
		}
	}
	return -1
}

func intPow(base, exp int) int {
	result := 1
	for i := 0; i < exp; i++ {
		result *= base
	}
	return result
}
