package ecc

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/gf2"
)

// TestBitDecoderMatchesLookup pins the hot-path bit decoder to the
// reference vector implementation over the complete error space: for every
// one of the 2^N X- and Z-error patterns of both codes, the packed decode
// must agree with CorrectX/CorrectZ on whether the pattern is a logical
// fault. This is the exhaustive guarantee that the Monte Carlo rework
// changed the speed of decoding, not its meaning.
func TestBitDecoderMatchesLookup(t *testing.T) {
	for _, c := range Codes() {
		for e := uint64(0); e < 1<<uint(c.N); e++ {
			v := gf2.NewVec(c.N)
			for q := 0; q < c.N; q++ {
				if e>>uint(q)&1 == 1 {
					v.Set(q, true)
				}
			}
			_, wantX := c.CorrectX(v)
			if got := c.bitX.fault(e); got != wantX {
				t.Fatalf("%s: bitX.fault(%0*b) = %v, CorrectX says %v", c.Name, c.N, e, got, wantX)
			}
			_, wantZ := c.CorrectZ(v)
			if got := c.bitZ.fault(e); got != wantZ {
				t.Fatalf("%s: bitZ.fault(%0*b) = %v, CorrectZ says %v", c.Name, c.N, e, got, wantZ)
			}
		}
	}
}

// TestMonteCarloTrialLoopAllocationFree is the before/after assertion of
// the hot-loop fix: the decoder setup (check rows, syndrome table, logical
// mask) is hoisted into the Code at construction, so the per-trial work —
// error sampling, syndrome extraction, table decode, logical-fault test —
// must not allocate at all. The old implementation allocated four times
// per trial (error vector, syndrome vector, two correction clones).
func TestMonteCarloTrialLoopAllocationFree(t *testing.T) {
	for _, c := range Codes() {
		rng := rand.New(rand.NewSource(11))
		if avg := testing.AllocsPerRun(50, func() {
			c.MonteCarloX(0.01, 200, rng)
		}); avg != 0 {
			t.Errorf("%s: MonteCarloX allocates %.1f times per 200-trial run, want 0", c.Name, avg)
		}
		if avg := testing.AllocsPerRun(50, func() {
			c.ConcatenatedMonteCarloX(2, 0.01, 20, rng)
		}); avg != 0 {
			t.Errorf("%s: ConcatenatedMonteCarloX allocates %.1f times per 20-trial run, want 0", c.Name, avg)
		}
	}
}

// TestMonteCarloSeededParallelDeterminism is the contract the explore
// runner's byte-identical-JSON guarantee rests on: the same (p, trials,
// seed) must produce identical logical-error counts at parallelism 1, 4
// and NumCPU. The trial budget spans several shards plus a ragged tail so
// the shard layout itself is exercised. CI runs this under -race, which
// also vets the worker pool's sharing discipline.
func TestMonteCarloSeededParallelDeterminism(t *testing.T) {
	const (
		p      = 0.02
		trials = 3*mcShardTrials + 517
		seed   = 99
	)
	for _, c := range Codes() {
		workers := []int{1, 4, runtime.NumCPU()}
		baseX := c.MonteCarloXSeededParallel(p, trials, seed, workers[0])
		baseZ := c.MonteCarloZSeededParallel(p, trials, seed, workers[0])
		if baseX.LogicalFaults == 0 {
			t.Errorf("%s: no faults at p=%g over %d trials; the test is vacuous", c.Name, p, trials)
		}
		for _, w := range workers[1:] {
			if got := c.MonteCarloXSeededParallel(p, trials, seed, w); got != baseX {
				t.Errorf("%s: X counts differ at %d workers: %+v vs %+v", c.Name, w, got, baseX)
			}
			if got := c.MonteCarloZSeededParallel(p, trials, seed, w); got != baseZ {
				t.Errorf("%s: Z counts differ at %d workers: %+v vs %+v", c.Name, w, got, baseZ)
			}
		}
		// The default entry points choose GOMAXPROCS; they must land on the
		// same counts as every explicit worker count.
		if got := c.MonteCarloXSeeded(p, trials, seed); got != baseX {
			t.Errorf("%s: MonteCarloXSeeded differs from the 1-worker result: %+v vs %+v", c.Name, got, baseX)
		}
	}
}

// TestMonteCarloSeededSeedSensitivity guards the opposite failure: the
// seed must actually steer the shard streams.
func TestMonteCarloSeededSeedSensitivity(t *testing.T) {
	c := Steane()
	a := c.MonteCarloXSeeded(0.05, 2*mcShardTrials, 1)
	b := c.MonteCarloXSeeded(0.05, 2*mcShardTrials, 2)
	if a == b {
		t.Error("different seeds produced identical Monte Carlo counts")
	}
}

// TestMonteCarloSeededDegenerateBudgets covers the shard-layout edges: a
// zero budget, a sub-shard budget and an exact multiple of the shard size.
func TestMonteCarloSeededDegenerateBudgets(t *testing.T) {
	c := BaconShor()
	if got := c.MonteCarloXSeeded(0.1, 0, 5); got.LogicalFaults != 0 || got.Trials != 0 {
		t.Errorf("zero budget: %+v", got)
	}
	for _, trials := range []int{1, 37, mcShardTrials, 2 * mcShardTrials} {
		a := c.MonteCarloXSeededParallel(0.1, trials, 7, 1)
		b := c.MonteCarloXSeededParallel(0.1, trials, 7, 3)
		if a != b {
			t.Errorf("trials=%d: counts differ across worker counts: %+v vs %+v", trials, a, b)
		}
		if a.Trials != trials {
			t.Errorf("trials=%d: result echoes %d", trials, a.Trials)
		}
	}
}
