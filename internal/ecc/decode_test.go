package ecc

import (
	"testing"

	"repro/internal/gf2"
)

// vecFromMask expands a packed error mask into a support vector.
func vecFromMask(n int, mask uint64) gf2.Vec {
	v := gf2.NewVec(n)
	for i := 0; i < n; i++ {
		if mask>>uint(i)&1 == 1 {
			v.Set(i, true)
		}
	}
	return v
}

// TestPublicDecodeMatchesVectorPath exhaustively checks, over every one of
// the 2^N error patterns of both codes and both error types, that the
// bitmask-backed public API returns bit-identical syndromes, corrections,
// residuals and fault verdicts to the plain vector-algebra expressions it
// replaced.
func TestPublicDecodeMatchesVectorPath(t *testing.T) {
	for _, c := range Codes() {
		type side struct {
			name    string
			h       *gf2.Matrix
			lookup  map[uint64]gf2.Vec
			logical gf2.Vec
			syn     func(gf2.Vec) gf2.Vec
			dec     func(gf2.Vec) gf2.Vec
			cor     func(gf2.Vec) (gf2.Vec, bool)
		}
		sides := []side{
			{"X", c.HZ, c.decodeX, c.LZ, c.SyndromeX, c.DecodeX, c.CorrectX},
			{"Z", c.HX, c.decodeZ, c.LX, c.SyndromeZ, c.DecodeZ, c.CorrectZ},
		}
		for _, s := range sides {
			for mask := uint64(0); mask < 1<<uint(c.N); mask++ {
				e := vecFromMask(c.N, mask)
				wantSyn := s.h.MulVec(e)
				gotSyn := s.syn(e)
				if !gotSyn.Equal(wantSyn) {
					t.Fatalf("%s Syndrome%s(%s) = %s, want %s", c.Short, s.name, e, gotSyn, wantSyn)
				}
				wantCor, ok := s.lookup[wantSyn.Uint64()]
				if !ok {
					t.Fatalf("%s: lookup table not total at syndrome %s", c.Short, wantSyn)
				}
				gotCor := s.dec(gotSyn)
				if !gotCor.Equal(wantCor) {
					t.Fatalf("%s Decode%s(%s) = %s, want %s", c.Short, s.name, gotSyn, gotCor, wantCor)
				}
				wantRes := e.Clone()
				wantRes.Xor(wantCor)
				wantFault := wantRes.Dot(s.logical)
				gotRes, gotFault := s.cor(e)
				if !gotRes.Equal(wantRes) || gotFault != wantFault {
					t.Fatalf("%s Correct%s(%s) = (%s, %v), want (%s, %v)",
						c.Short, s.name, e, gotRes, gotFault, wantRes, wantFault)
				}
			}
		}
	}
}

// TestPublicDecodeAllocationFree is the tentpole assertion: the public
// decode path — syndrome extraction, table decode, and the full
// CorrectX/CorrectZ round — performs zero allocations when its results
// stay on the caller's stack, for both error types. gf2.Vec's inline-word
// representation is what closes the last gap: a small vector is a value,
// so even the (vector, bool) pair CorrectX returns costs nothing.
func TestPublicDecodeAllocationFree(t *testing.T) {
	for _, c := range Codes() {
		e := gf2.NewVec(c.N)
		e.Set(1, true)
		e.Set(4, true)
		var sink int
		if n := testing.AllocsPerRun(200, func() {
			s := c.SyndromeX(e)
			cor := c.DecodeX(s)
			sink += cor.Weight()
		}); n != 0 {
			t.Errorf("%s SyndromeX+DecodeX: %v allocs/run, want 0", c.Short, n)
		}
		if n := testing.AllocsPerRun(200, func() {
			s := c.SyndromeZ(e)
			cor := c.DecodeZ(s)
			sink += cor.Weight()
		}); n != 0 {
			t.Errorf("%s SyndromeZ+DecodeZ: %v allocs/run, want 0", c.Short, n)
		}
		if n := testing.AllocsPerRun(200, func() {
			if _, fault := c.CorrectX(e); fault {
				sink++
			}
		}); n != 0 {
			t.Errorf("%s CorrectX: %v allocs/run, want 0", c.Short, n)
		}
		if n := testing.AllocsPerRun(200, func() {
			if _, fault := c.CorrectZ(e); fault {
				sink++
			}
		}); n != 0 {
			t.Errorf("%s CorrectZ: %v allocs/run, want 0", c.Short, n)
		}
	}
}

// TestDecodePanicsOnUnachievableSyndrome pins the loud-failure contract of
// the dense-table path: a syndrome outside the lookup domain must panic,
// not decode to a zero correction.
func TestDecodePanicsOnUnachievableSyndrome(t *testing.T) {
	c := BaconShor() // HX has 2 rows but rank 2; all 4 X-syndromes achievable
	// The Z-side table of Bacon-Shor is total over 2^6 syndromes (rank 6),
	// so manufacture an unachievable one on Steane instead: HZ has 3 rows
	// of rank 3 — total too. Use a syndrome wider than the row count to hit
	// the fallback validation through the vector path instead.
	_ = c
	st := Steane()
	// Every 3-bit syndrome of Steane is achievable (the Hamming code is
	// perfect), so totality means no panic can fire on honest input; check
	// the valid bitset agrees with the lookup map domain instead.
	for s := range st.bitX.table {
		_, inMap := st.decodeX[uint64(s)]
		if st.bitX.valid[s] != inMap {
			t.Fatalf("valid[%d] = %v, lookup map has it: %v", s, st.bitX.valid[s], inMap)
		}
	}
	for s := range c.bitZ.table {
		_, inMap := c.decodeZ[uint64(s)]
		if c.bitZ.valid[s] != inMap {
			t.Fatalf("bacon-shor valid[%d] = %v, lookup map has it: %v", s, c.bitZ.valid[s], inMap)
		}
	}
}

// BenchmarkPublicDecode measures the public-API decode path — syndrome
// extraction plus table decode — which the bitmask backing makes
// allocation-free for stack-resident results.
func BenchmarkPublicDecode(b *testing.B) {
	c := Steane()
	e := gf2.NewVec(c.N)
	e.Set(2, true)
	e.Set(5, true)
	weight := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := c.SyndromeX(e)
		cor := c.DecodeX(s)
		weight += cor.Weight()
	}
	if weight < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkPublicCorrect measures the full correction round (decode plus
// residual construction), allocation-free since gf2.Vec went inline-word.
func BenchmarkPublicCorrect(b *testing.B) {
	c := Steane()
	e := gf2.NewVec(c.N)
	e.Set(2, true)
	e.Set(5, true)
	faults := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, fault := c.CorrectX(e); fault {
			faults++
		}
	}
	if faults < 0 {
		b.Fatal("impossible")
	}
}

// mustPanic runs f and reports whether it panicked.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

// TestVectorFallbackPaths exercises the in-worker vector fallbacks the
// packed fast paths guard: wrong-length operands panic exactly as the
// pre-packed API did (inside MulVec), and a wrong-length syndrome still
// resolves through the lookup map when its packed value is a real
// syndrome.
func TestVectorFallbackPaths(t *testing.T) {
	c := Steane()
	wrong := gf2.NewVec(c.N + 1)
	mustPanic(t, "SyndromeX(wrong length)", func() { c.SyndromeX(wrong) })
	mustPanic(t, "SyndromeZ(wrong length)", func() { c.SyndromeZ(wrong) })
	mustPanic(t, "CorrectX(wrong length)", func() { c.CorrectX(wrong) })
	mustPanic(t, "CorrectZ(wrong length)", func() { c.CorrectZ(wrong) })

	// A 5-bit zero "syndrome" has packed value 0 — a real syndrome — so
	// the historical map path returns the identity correction.
	odd := gf2.NewVec(5)
	if cor := c.DecodeX(odd); !cor.IsZero() || cor.Len() != c.N {
		t.Errorf("DecodeX(odd-length zero syndrome) = %s, want zero correction", cor)
	}
	if cor := c.DecodeZ(odd); !cor.IsZero() || cor.Len() != c.N {
		t.Errorf("DecodeZ(odd-length zero syndrome) = %s, want zero correction", cor)
	}
	// A packed value no achievable syndrome uses must fail loudly.
	bogus := gf2.NewVec(10)
	for i := 0; i < 10; i++ {
		bogus.Set(i, true)
	}
	mustPanic(t, "DecodeX(unachievable syndrome)", func() { c.DecodeX(bogus) })
	mustPanic(t, "DecodeZ(unachievable syndrome)", func() { c.DecodeZ(bogus) })
}

// TestMonteCarloZSeededMatchesParallel covers the Z-side seeded entry
// point and its parallel-consistency contract.
func TestMonteCarloZSeededMatchesParallel(t *testing.T) {
	c := BaconShor()
	serial := c.MonteCarloZSeededParallel(0.02, 9000, 3, 1)
	pooled := c.MonteCarloZSeeded(0.02, 9000, 3)
	if serial != pooled {
		t.Errorf("Z-side seeded counts differ: serial %+v, pooled %+v", serial, pooled)
	}
	if serial.LogicalRate() < 0 || serial.LogicalRate() > 1 {
		t.Errorf("logical rate %v outside [0,1]", serial.LogicalRate())
	}
	if (MonteCarloResult{}).LogicalRate() != 0 {
		t.Error("zero-trial LogicalRate should be 0")
	}
}
