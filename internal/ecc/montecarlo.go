package ecc

import (
	"math/rand"

	"repro/internal/gf2"
)

// MonteCarloResult summarizes a Pauli-frame error-injection experiment.
type MonteCarloResult struct {
	Trials        int
	PhysicalRate  float64
	LogicalFaults int
}

// LogicalRate returns the observed logical fault probability.
func (r MonteCarloResult) LogicalRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.LogicalFaults) / float64(r.Trials)
}

// MonteCarloX injects independent X errors with probability p on each
// physical qubit of one code block, runs the decoder, and counts logical
// faults. It is a code-capacity (perfect-syndrome-extraction) model: enough
// to validate the distance of the code and the quadratic suppression of
// logical errors below threshold, which is what the concatenation math of
// the architecture model relies on.
func (c *Code) MonteCarloX(p float64, trials int, rng *rand.Rand) MonteCarloResult {
	return c.monteCarlo(p, trials, rng, c.CorrectX)
}

// MonteCarloZ is MonteCarloX for phase-flip errors.
func (c *Code) MonteCarloZ(p float64, trials int, rng *rand.Rand) MonteCarloResult {
	return c.monteCarlo(p, trials, rng, c.CorrectZ)
}

// MonteCarloXSeeded runs MonteCarloX on a private source seeded with seed,
// so concurrent design-space sweeps can evaluate points in any order and
// still reproduce: the same (p, trials, seed) always returns the same
// counts.
func (c *Code) MonteCarloXSeeded(p float64, trials int, seed int64) MonteCarloResult {
	return c.MonteCarloX(p, trials, rand.New(rand.NewSource(seed)))
}

// MonteCarloZSeeded is MonteCarloXSeeded for phase-flip errors.
func (c *Code) MonteCarloZSeeded(p float64, trials int, seed int64) MonteCarloResult {
	return c.MonteCarloZ(p, trials, rand.New(rand.NewSource(seed)))
}

func (c *Code) monteCarlo(p float64, trials int, rng *rand.Rand, correct func(gf2.Vec) (gf2.Vec, bool)) MonteCarloResult {
	res := MonteCarloResult{Trials: trials, PhysicalRate: p}
	for t := 0; t < trials; t++ {
		e := gf2.NewVec(c.N)
		for q := 0; q < c.N; q++ {
			if rng.Float64() < p {
				e.Set(q, true)
			}
		}
		if _, fault := correct(e); fault {
			res.LogicalFaults++
		}
	}
	return res
}

// CorrectsAllWeight1 exhaustively verifies that every single-qubit X and Z
// error is corrected without a logical fault — the operational meaning of
// distance 3.
func (c *Code) CorrectsAllWeight1() bool {
	for q := 0; q < c.N; q++ {
		e := gf2.NewVec(c.N)
		e.Set(q, true)
		if _, fault := c.CorrectX(e); fault {
			return false
		}
		if _, fault := c.CorrectZ(e); fault {
			return false
		}
	}
	return true
}

// Weight2FailureCount returns how many of the C(n,2) weight-2 X errors
// produce a logical fault after decoding. For a distance-3 code this must
// be nonzero (some weight-2 errors are miscorrected into logical
// operators), which is what bounds the code to single-error correction.
func (c *Code) Weight2FailureCount() int {
	fails := 0
	for i := 0; i < c.N; i++ {
		for j := i + 1; j < c.N; j++ {
			e := gf2.NewVec(c.N)
			e.Set(i, true)
			e.Set(j, true)
			if _, fault := c.CorrectX(e); fault {
				fails++
			}
		}
	}
	return fails
}
