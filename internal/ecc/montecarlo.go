package ecc

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/gf2"
)

// MonteCarloResult summarizes a Pauli-frame error-injection experiment.
type MonteCarloResult struct {
	Trials        int
	PhysicalRate  float64
	LogicalFaults int
}

// LogicalRate returns the observed logical fault probability.
func (r MonteCarloResult) LogicalRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.LogicalFaults) / float64(r.Trials)
}

// MonteCarloX injects independent X errors with probability p on each
// physical qubit of one code block, runs the decoder, and counts logical
// faults. It is a code-capacity (perfect-syndrome-extraction) model: enough
// to validate the distance of the code and the quadratic suppression of
// logical errors below threshold, which is what the concatenation math of
// the architecture model relies on.
//
// The trial loop runs entirely on the code's precomputed bit decoder: it
// performs no allocations, draws exactly one rng value per physical qubit
// per trial, and a given rng stream produces the same counts it always has.
func (c *Code) MonteCarloX(p float64, trials int, rng *rand.Rand) MonteCarloResult {
	return c.monteCarlo(p, trials, rng, &c.bitX)
}

// MonteCarloZ is MonteCarloX for phase-flip errors.
func (c *Code) MonteCarloZ(p float64, trials int, rng *rand.Rand) MonteCarloResult {
	return c.monteCarlo(p, trials, rng, &c.bitZ)
}

// MonteCarloXSeeded runs the X-error injection experiment from a seed, so
// concurrent design-space sweeps can evaluate points in any order and still
// reproduce: the same (p, trials, seed) always returns the same counts.
//
// The trial budget is split into fixed-size shards, each with a sub-seed
// derived from (seed, shard index) alone, and the shards are fanned across
// a worker pool. Because the shard layout depends only on trials — never on
// worker count or scheduling order — the summed counts are identical at any
// parallelism, mirroring the explore runner's determinism contract.
func (c *Code) MonteCarloXSeeded(p float64, trials int, seed int64) MonteCarloResult {
	return c.monteCarloSeeded(p, trials, seed, 0, &c.bitX)
}

// MonteCarloZSeeded is MonteCarloXSeeded for phase-flip errors.
func (c *Code) MonteCarloZSeeded(p float64, trials int, seed int64) MonteCarloResult {
	return c.monteCarloSeeded(p, trials, seed, 0, &c.bitZ)
}

// MonteCarloXSeededParallel is MonteCarloXSeeded with an explicit worker
// count (0 or less selects GOMAXPROCS). The result is identical at any
// setting — only wall-clock time changes.
func (c *Code) MonteCarloXSeededParallel(p float64, trials int, seed int64, workers int) MonteCarloResult {
	return c.monteCarloSeeded(p, trials, seed, workers, &c.bitX)
}

// MonteCarloZSeededParallel is MonteCarloXSeededParallel for phase-flip
// errors.
func (c *Code) MonteCarloZSeededParallel(p float64, trials int, seed int64, workers int) MonteCarloResult {
	return c.monteCarloSeeded(p, trials, seed, workers, &c.bitZ)
}

func (c *Code) monteCarlo(p float64, trials int, rng *rand.Rand, d *bitDecoder) MonteCarloResult {
	return MonteCarloResult{
		Trials:        trials,
		PhysicalRate:  p,
		LogicalFaults: d.sample(c.N, p, trials, rng),
	}
}

// sample runs trials independent injection+decode rounds on one rng stream
// and returns the logical-fault count. It is the Monte Carlo inner loop:
// error masks are built bit by bit (one Float64 per qubit, preserving the
// historical stream consumption) and decoded without allocating.
//
//cqla:noalloc
func (d *bitDecoder) sample(n int, p float64, trials int, rng *rand.Rand) int {
	faults := 0
	for t := 0; t < trials; t++ {
		var e uint64
		for q := 0; q < n; q++ {
			if rng.Float64() < p {
				e |= 1 << uint(q)
			}
		}
		if d.fault(e) {
			faults++
		}
	}
	return faults
}

// mcShardTrials is the fixed shard size of the seeded Monte Carlo paths.
// The shard layout is a pure function of the trial budget, which is what
// makes the parallel result reproducible: workers race over shard indices,
// not trial ranges.
const mcShardTrials = 4096

func (c *Code) monteCarloSeeded(p float64, trials int, seed int64, workers int, d *bitDecoder) MonteCarloResult {
	res := MonteCarloResult{Trials: trials, PhysicalRate: p}
	if trials <= 0 {
		return res
	}
	shards := (trials + mcShardTrials - 1) / mcShardTrials
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	counts := make([]int, shards)
	run := func(s int) {
		size := mcShardTrials
		if rem := trials - s*mcShardTrials; rem < size {
			size = rem
		}
		rng := rand.New(rand.NewSource(shardSeed(seed, s)))
		counts[s] = d.sample(c.N, p, size, rng)
	}
	if workers == 1 {
		for s := 0; s < shards; s++ {
			run(s)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(atomic.AddInt64(&next, 1)) - 1
					if s >= shards {
						return
					}
					run(s)
				}
			}()
		}
		wg.Wait()
	}
	for _, f := range counts {
		res.LogicalFaults += f
	}
	return res
}

// shardSeed derives the shard's private seed from the base seed and the
// shard index with a splitmix64 finalizer, so neighbouring shards (and
// neighbouring base seeds) get decorrelated streams.
func shardSeed(seed int64, shard int) int64 {
	v := uint64(seed)*0x9e3779b97f4a7c15 + uint64(shard) + 1
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return int64(v)
}

// CorrectsAllWeight1 exhaustively verifies that every single-qubit X and Z
// error is corrected without a logical fault — the operational meaning of
// distance 3.
func (c *Code) CorrectsAllWeight1() bool {
	for q := 0; q < c.N; q++ {
		e := gf2.NewVec(c.N)
		e.Set(q, true)
		if _, fault := c.CorrectX(e); fault {
			return false
		}
		if _, fault := c.CorrectZ(e); fault {
			return false
		}
	}
	return true
}

// Weight2FailureCount returns how many of the C(n,2) weight-2 X errors
// produce a logical fault after decoding. For a distance-3 code this must
// be nonzero (some weight-2 errors are miscorrected into logical
// operators), which is what bounds the code to single-error correction.
func (c *Code) Weight2FailureCount() int {
	fails := 0
	for i := 0; i < c.N; i++ {
		for j := i + 1; j < c.N; j++ {
			e := gf2.NewVec(c.N)
			e.Set(i, true)
			e.Set(j, true)
			if _, fault := c.CorrectX(e); fault {
				fails++
			}
		}
	}
	return fails
}
