package ecc_test

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/gf2"
	"repro/internal/phys"
)

func mustVec(s string) gf2.Vec {
	v, err := gf2.VecFromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Example regenerates the headline rows of Table 2.
func Example() {
	p := phys.Projected()
	for _, c := range ecc.Codes() {
		fmt.Printf("%s: L2 EC %.2g s, area %.2g mm²\n",
			c.Short, c.ECTime(2, p).Seconds(), c.AreaMM2(2, p))
	}
	// Output:
	// [[7,1,3]]: L2 EC 0.3 s, area 3.4 mm²
	// [[9,1,3]]: L2 EC 0.1 s, area 2.4 mm²
}

// ExampleCode_CorrectX shows single-error correction on the Steane code.
func ExampleCode_CorrectX() {
	c := ecc.Steane()
	e := mustVec("0010000") // X error on qubit 2
	residual, fault := c.CorrectX(e)
	fmt.Printf("residual weight: %d, logical fault: %v\n", residual.Weight(), fault)
	// Output:
	// residual weight: 0, logical fault: false
}
