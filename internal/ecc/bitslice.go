package ecc

import (
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Bit-sliced batch Monte Carlo engine.
//
// The scalar bitDecoder packs one trial's error pattern into a uint64 word
// (one bit per qubit). The batch engine transposes that layout: one uint64
// lane per *qubit*, with 64 independent trials across the bit positions. In
// the transposed frame every step of the trial loop becomes a whole-word
// operation on 64 trials at once:
//
//	sampling      one Bernoulli(p) draw per qubit lane (a handful of
//	              splitmix64 words decide all 64 trials exactly)
//	syndrome      syndrome row i = XOR of the qubit lanes in check row i
//	table lookup  a minterm mux over the precomputed flip bitset (below)
//	fault check   fault lane = logical-parity lane XOR correction-flip lane
//
// The syndrome->correction table itself never materializes per trial: what
// the fault check needs from the correction is only its parity against the
// logical operator, and with at most 6 syndrome bits the whole function
// {syndrome -> parity(table[s] & logical)} fits in one uint64 (flipBits).
// Evaluating that boolean function over the syndrome lanes is a sum of
// minterms: for each set bit s of flipBits, AND together the syndrome lanes
// (or their complements) selected by s's bits and OR the product into the
// flip lane. Everything runs on fixed-size stack arrays: zero allocations.

const (
	// mcBatchLanes is the number of trials held per machine word.
	mcBatchLanes = 64
	// mcMaxQubits bounds the transposed lane array; buildLookup caps any
	// constructible code at 20 physical qubits.
	mcMaxQubits = 20
	// mcMaxSyndromeBits bounds the syndrome lane array. Both paper codes
	// fit (Steane: 3 rows; Bacon-Shor: 6 Z-rows, 2 X-rows), and it is
	// exactly the widest syndrome whose flip function fits one uint64.
	mcMaxSyndromeBits = 6
	// mcBatchShardBlocks groups 64-trial blocks into work items for the
	// parallel fan-out, sized to match the scalar path's 4096-trial shards.
	mcBatchShardBlocks = mcShardTrials / mcBatchLanes
)

// mcStream is a splitmix64 generator: the per-block PRNG of the batch
// engine. Each 64-trial block owns a private stream seeded from (seed, block
// index) alone, which is what makes the batch estimate independent of worker
// count and scheduling order.
type mcStream struct{ state uint64 }

//cqla:noalloc
func (s *mcStream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	v := s.state
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// bernoulliLanes draws 64 independent Bernoulli(p) samples, one per bit of
// the returned word. It compares a uniform U in [0,1) against p bit by bit,
// MSB first: each random word supplies the next binary digit of all 64
// uniforms at once, and a trial is decided the moment its digit differs from
// p's. The comparison is exact — p's float64 value has a finite binary
// expansion, so P(bit set) is exactly p, not a truncation — and the
// still-undecided mask empties geometrically, so ~6-7 random words decide
// all 64 trials regardless of how small p is (the scalar path spends 64
// Float64 draws on the same 64 samples).
//
//cqla:noalloc
func bernoulliLanes(s *mcStream, p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	var lt uint64    // trials decided as U < p
	eq := ^uint64(0) // trials still tied with p's expansion
	rem := p         // unconsumed tail of p's binary expansion
	for eq != 0 && rem > 0 {
		rem *= 2
		u := s.next()
		if rem >= 1 {
			rem--
			// p's digit is 1: a 0-digit uniform drops below p.
			lt |= eq &^ u
			eq &= u
		} else {
			// p's digit is 0: a 1-digit uniform rises above p.
			eq &^= u
		}
	}
	// Trials still tied when p's expansion ends satisfy U >= p.
	return lt
}

// mcProb caches p's binary expansion for the batch inner loop. When the
// expansion fits one word (every p >= 2^-11, and shorter mantissas below
// that) the sampler walks precomputed digit bits instead of re-deriving them
// with float arithmetic per iteration; the word sequence consumed from the
// stream — and therefore the sampled lanes — is identical either way.
type mcProb struct {
	p      float64
	digits uint64 // expansion digits, MSB-first from bit 63
	nd     int    // digit count through the last set digit; 0 = use bernoulliLanes
	z      int    // leading zero digits (p < 2^-z): a branch-free eq-kill run
}

func makeProb(p float64) mcProb {
	pr := mcProb{p: p}
	if p <= 0 || p >= 1 {
		return pr
	}
	frac, exp := math.Frexp(p) // p = frac * 2^exp, frac in [0.5, 1)
	z := -exp                  // leading zero digits of the expansion
	mant := uint64(frac * (1 << 53))
	tz := bits.TrailingZeros64(mant)
	if nd := z + 53 - tz; nd <= 64 {
		pr.digits = mant >> uint(tz) << uint(64-nd)
		pr.nd = nd
		pr.z = z
	}
	return pr
}

// lanes draws 64 Bernoulli(p) samples like bernoulliLanes, from the cached
// digit word when available. The leading zero digits of a small p can only
// retire still-tied trials as U >= p, so that run skips the digit test.
//
//cqla:noalloc
func (pr *mcProb) lanes(s *mcStream) uint64 {
	if pr.nd == 0 {
		return bernoulliLanes(s, pr.p)
	}
	eq := ^uint64(0)
	i := 0
	for ; i < pr.z && eq != 0; i++ {
		eq &^= s.next()
	}
	var lt uint64
	for ; i < pr.nd && eq != 0; i++ {
		u := s.next()
		if pr.digits>>uint(63-i)&1 == 1 {
			lt |= eq &^ u
			eq &= u
		} else {
			eq &^= u
		}
	}
	return lt
}

// batchOK reports whether this decoder supports the transposed batch path
// (syndrome narrow enough for the one-word flip function).
func (d *bitDecoder) batchOK() bool {
	return len(d.rows) <= mcMaxSyndromeBits
}

// requireBatch fails loudly if a hypothetical wide code ever reaches the
// batch entry points; every code this package can construct qualifies.
func (d *bitDecoder) requireBatch(name string) {
	if !d.batchOK() {
		panic("ecc: batch Monte Carlo requires at most 6 syndrome bits: " + name)
	}
}

// faultLanes decodes one transposed block: given one lane per qubit it
// returns the fault lane, bit t set iff trial t's residual after the
// minimum-weight correction anticommutes with the logical operator.
//
//cqla:noalloc
func (d *bitDecoder) faultLanes(lanes *[mcMaxQubits]uint64) uint64 {
	var srows [mcMaxSyndromeBits]uint64
	nr := len(d.rows)
	for i := 0; i < nr; i++ {
		var s uint64
		for m := d.rows[i]; m != 0; m &= m - 1 {
			s ^= lanes[bits.TrailingZeros64(m)]
		}
		srows[i] = s
	}
	// Parity of the raw error against the logical operator; the correction's
	// contribution is folded in from the precomputed flip function.
	var l uint64
	for m := d.logical; m != 0; m &= m - 1 {
		l ^= lanes[bits.TrailingZeros64(m)]
	}
	// Minterms partition syndrome space, so the flip lane is the OR of the
	// minterms of the flipping syndromes — or the complement of the OR over
	// the non-flipping ones, whichever set is smaller (flipWork). The inner
	// product is branch-free: bit i of s selects srows[i] or its complement
	// via the 0/^0 mask (s>>i&1)-1.
	var flip uint64
	for w := d.flipWork; w != 0; w &= w - 1 {
		s := uint(bits.TrailingZeros64(w))
		m := ^uint64(0)
		for i := 0; i < nr; i++ {
			m &= srows[i] ^ (uint64(s>>uint(i)&1) - 1)
		}
		flip |= m
	}
	if d.flipCompl {
		flip = ^flip
	}
	return l ^ flip
}

// sampleBatch runs the transposed trial loop over blocks [lo, hi) and
// returns the logical-fault count. Block b draws its lanes from a private
// splitmix64 stream seeded by (seed, b); trials caps the final block so a
// budget that is not a multiple of 64 keeps its exact size.
//
//cqla:noalloc
func (d *bitDecoder) sampleBatch(n int, p float64, lo, hi, trials int, seed int64) int {
	faults := 0
	pr := makeProb(p)
	var lanes [mcMaxQubits]uint64
	for b := lo; b < hi; b++ {
		s := mcStream{state: uint64(shardSeed(seed, b))}
		for q := 0; q < n; q++ {
			lanes[q] = pr.lanes(&s)
		}
		f := d.faultLanes(&lanes)
		if rem := trials - b*mcBatchLanes; rem < mcBatchLanes {
			f &= ^uint64(0) >> uint(mcBatchLanes-rem)
		}
		faults += bits.OnesCount64(f)
	}
	return faults
}

// sampleBatchParallel fans shards of blocks across a worker pool. Faults are
// summed with integer atomics, so the total is identical at any worker
// count; only wall-clock time changes.
func (d *bitDecoder) sampleBatchParallel(n int, p float64, blocks, trials int, seed int64, workers, shards int) int {
	var next, faults int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(atomic.AddInt64(&next, 1)) - 1
				if s >= shards {
					return
				}
				lo := s * mcBatchShardBlocks
				hi := lo + mcBatchShardBlocks
				if hi > blocks {
					hi = blocks
				}
				atomic.AddInt64(&faults, int64(d.sampleBatch(n, p, lo, hi, trials, seed)))
			}
		}()
	}
	wg.Wait()
	return int(faults)
}

// MonteCarloXBatch is MonteCarloXSeeded on the bit-sliced engine: same
// experiment, same determinism contract (same (p, trials, seed) ⇒ same
// counts at any parallelism), ~an order of magnitude more trials per second.
// The batch engine owns its own RNG streams, so its counts differ from the
// scalar path's for the same seed — both are valid draws from the same
// distribution, and each is individually reproducible.
func (c *Code) MonteCarloXBatch(p float64, trials int, seed int64) MonteCarloResult {
	return c.monteCarloBatch(p, trials, seed, 0, &c.bitX)
}

// MonteCarloZBatch is MonteCarloXBatch for phase-flip errors.
func (c *Code) MonteCarloZBatch(p float64, trials int, seed int64) MonteCarloResult {
	return c.monteCarloBatch(p, trials, seed, 0, &c.bitZ)
}

// MonteCarloXBatchParallel is MonteCarloXBatch with an explicit worker count
// (0 or less selects GOMAXPROCS). The result is identical at any setting.
func (c *Code) MonteCarloXBatchParallel(p float64, trials int, seed int64, workers int) MonteCarloResult {
	return c.monteCarloBatch(p, trials, seed, workers, &c.bitX)
}

// MonteCarloZBatchParallel is MonteCarloXBatchParallel for phase-flip errors.
func (c *Code) MonteCarloZBatchParallel(p float64, trials int, seed int64, workers int) MonteCarloResult {
	return c.monteCarloBatch(p, trials, seed, workers, &c.bitZ)
}

func (c *Code) monteCarloBatch(p float64, trials int, seed int64, workers int, d *bitDecoder) MonteCarloResult {
	res := MonteCarloResult{Trials: trials, PhysicalRate: p}
	if trials <= 0 {
		return res
	}
	d.requireBatch(c.Name)
	blocks := (trials + mcBatchLanes - 1) / mcBatchLanes
	shards := (blocks + mcBatchShardBlocks - 1) / mcBatchShardBlocks
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	if workers == 1 {
		res.LogicalFaults = d.sampleBatch(c.N, p, 0, blocks, trials, seed)
	} else {
		res.LogicalFaults = d.sampleBatchParallel(c.N, p, blocks, trials, seed, workers, shards)
	}
	return res
}
