package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf2"
)

func TestCodesValidate(t *testing.T) {
	for _, c := range Codes() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestCodeParameters(t *testing.T) {
	st := Steane()
	if st.N != 7 || st.K != 1 || st.D != 3 {
		t.Errorf("Steane params [[%d,%d,%d]]", st.N, st.K, st.D)
	}
	bs := BaconShor()
	if bs.N != 9 || bs.K != 1 || bs.D != 3 {
		t.Errorf("Bacon-Shor params [[%d,%d,%d]]", bs.N, bs.K, bs.D)
	}
}

func TestDistanceThreeCorrectsAllWeight1(t *testing.T) {
	for _, c := range Codes() {
		if !c.CorrectsAllWeight1() {
			t.Errorf("%s fails on a weight-1 error", c.Name)
		}
	}
}

func TestSomeWeight2ErrorsFail(t *testing.T) {
	// Distance 3 means weight-2 errors cannot all be corrected.
	for _, c := range Codes() {
		if c.Weight2FailureCount() == 0 {
			t.Errorf("%s corrected every weight-2 error; distance would be >= 5", c.Name)
		}
	}
}

func TestZeroSyndromeZeroCorrection(t *testing.T) {
	for _, c := range Codes() {
		zero := gf2.NewVec(c.HZ.Rows())
		if !c.DecodeX(zero).IsZero() {
			t.Errorf("%s: trivial syndrome got nonzero X correction", c.Name)
		}
		zeroX := gf2.NewVec(c.HX.Rows())
		if !c.DecodeZ(zeroX).IsZero() {
			t.Errorf("%s: trivial syndrome got nonzero Z correction", c.Name)
		}
	}
}

func TestStabilizerErrorsAreHarmless(t *testing.T) {
	// An "error" equal to a stabilizer generator is not an error at all:
	// the decoder must return a residual that is not a logical fault.
	for _, c := range Codes() {
		for i := 0; i < c.HZ.Rows(); i++ {
			// Z-type generator as a Z error.
			if _, fault := c.CorrectZ(c.HZ.Row(i).Clone()); fault {
				t.Errorf("%s: Z-stabilizer %d decoded to a logical fault", c.Name, i)
			}
		}
		for i := 0; i < c.HX.Rows(); i++ {
			if _, fault := c.CorrectX(c.HX.Row(i).Clone()); fault {
				t.Errorf("%s: X-stabilizer %d decoded to a logical fault", c.Name, i)
			}
		}
	}
}

func TestLogicalOperatorIsDetectedAsFault(t *testing.T) {
	// Injecting a bare logical operator has trivial syndrome and must
	// register as a logical fault.
	for _, c := range Codes() {
		if !c.SyndromeX(c.LX).IsZero() {
			t.Errorf("%s: logical X has nonzero syndrome", c.Name)
		}
		if _, fault := c.CorrectX(c.LX.Clone()); !fault {
			t.Errorf("%s: logical X not flagged as fault", c.Name)
		}
		if !c.SyndromeZ(c.LZ).IsZero() {
			t.Errorf("%s: logical Z has nonzero syndrome", c.Name)
		}
		if _, fault := c.CorrectZ(c.LZ.Clone()); !fault {
			t.Errorf("%s: logical Z not flagged as fault", c.Name)
		}
	}
}

// Property: the decoder's correction always reproduces the observed
// syndrome, for arbitrary error patterns.
func TestDecoderMatchesSyndromeProperty(t *testing.T) {
	for _, c := range Codes() {
		c := c
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			e := gf2.NewVec(c.N)
			for q := 0; q < c.N; q++ {
				if rng.Intn(2) == 1 {
					e.Set(q, true)
				}
			}
			s := c.SyndromeX(e)
			cor := c.DecodeX(s)
			return c.SyndromeX(cor).Equal(s)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

// Property: residual after correction always has trivial syndrome.
func TestResidualHasTrivialSyndromeProperty(t *testing.T) {
	for _, c := range Codes() {
		c := c
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			e := gf2.NewVec(c.N)
			for q := 0; q < c.N; q++ {
				if rng.Intn(3) == 0 {
					e.Set(q, true)
				}
			}
			residual, _ := c.CorrectX(e)
			return c.SyndromeX(residual).IsZero()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestMonteCarloSuppression(t *testing.T) {
	// Below threshold the logical rate must be well below the physical
	// rate, and must drop superlinearly as p decreases.
	rng := rand.New(rand.NewSource(42))
	for _, c := range Codes() {
		hi := c.MonteCarloX(0.02, 200000, rng)
		lo := c.MonteCarloX(0.002, 200000, rng)
		if hi.LogicalRate() >= hi.PhysicalRate {
			t.Errorf("%s: logical rate %.5f not below physical %.5f", c.Name, hi.LogicalRate(), hi.PhysicalRate)
		}
		// Quadratic suppression: a 10x drop in p should give ~100x drop in
		// logical rate; allow a generous factor for MC noise.
		if lo.LogicalRate() > hi.LogicalRate()/20 {
			t.Errorf("%s: suppression too weak: %.6f -> %.6f", c.Name, hi.LogicalRate(), lo.LogicalRate())
		}
	}
}

func TestMonteCarloZeroErrorRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range Codes() {
		res := c.MonteCarloZ(0, 1000, rng)
		if res.LogicalFaults != 0 {
			t.Errorf("%s: faults with zero physical error rate", c.Name)
		}
	}
}

func TestChannelsRequired(t *testing.T) {
	// Section 5.1: one channel suffices for Steane, Bacon-Shor needs three.
	if got := Steane().ChannelsRequired(); got != 1 {
		t.Errorf("Steane channels = %d, want 1", got)
	}
	if got := BaconShor().ChannelsRequired(); got != 3 {
		t.Errorf("Bacon-Shor channels = %d, want 3", got)
	}
}

func TestTeleportDataQubits(t *testing.T) {
	if Steane().TeleportDataQubits() != 7 || BaconShor().TeleportDataQubits() != 9 {
		t.Error("teleport data-qubit counts do not match block sizes")
	}
}
