package ecc

import (
	"math"
	"math/bits"
	"runtime"
	"testing"
)

// transposeLanes loads 64 packed error masks (one trial per element, one bit
// per qubit) into the transposed frame the batch kernel consumes (one lane
// per qubit, one trial per bit).
func transposeLanes(n int, masks *[mcBatchLanes]uint64, lanes *[mcMaxQubits]uint64) {
	*lanes = [mcMaxQubits]uint64{}
	for t, e := range masks {
		for q := 0; q < n; q++ {
			lanes[q] |= (e >> uint(q) & 1) << uint(t)
		}
	}
}

// TestBatchFaultLanesMatchesScalar is the exhaustive equivalence guarantee
// of the transposed engine: every one of the 2^N X- and Z-error patterns of
// both codes, loaded 64 at a time into transposed lanes, must produce
// exactly the fault bit the scalar bitDecoder assigns it. The bit-sliced
// rework changed the throughput of the trial loop, not the decoder's
// meaning.
func TestBatchFaultLanesMatchesScalar(t *testing.T) {
	for _, c := range Codes() {
		for _, side := range []struct {
			name string
			d    *bitDecoder
		}{{"X", &c.bitX}, {"Z", &c.bitZ}} {
			var masks [mcBatchLanes]uint64
			var lanes [mcMaxQubits]uint64
			total := uint64(1) << uint(c.N)
			for base := uint64(0); base < total; base += mcBatchLanes {
				for t := range masks {
					masks[t] = (base + uint64(t)) % total
				}
				transposeLanes(c.N, &masks, &lanes)
				got := side.d.faultLanes(&lanes)
				for tr, e := range masks {
					want := side.d.fault(e)
					if fault := got>>uint(tr)&1 == 1; fault != want {
						t.Fatalf("%s %s: pattern %0*b: batch says fault=%v, scalar says %v",
							c.Name, side.name, c.N, e, fault, want)
					}
				}
			}
		}
	}
}

// TestBernoulliLanesExact checks the bitwise comparator's edges and its
// statistical meaning: degenerate probabilities are exact, and for a range
// of rates spanning four decades the empirical lane frequency over a large
// draw stays within five standard errors of p. The comparator consumes one
// stream word per binary digit of p only while trials remain undecided, so
// small p must not cost more than moderate p.
func TestBernoulliLanesExact(t *testing.T) {
	s := mcStream{state: 123}
	if got := bernoulliLanes(&s, 0); got != 0 {
		t.Errorf("p=0 produced %064b", got)
	}
	if got := bernoulliLanes(&s, 1); got != ^uint64(0) {
		t.Errorf("p=1 produced %064b", got)
	}
	for _, p := range []float64{1e-4, 1e-3, 1e-2, 0.1, 0.5, 0.9} {
		const words = 40000 // 2.56M samples
		s := mcStream{state: 0xfeed}
		ones := 0
		for i := 0; i < words; i++ {
			ones += bits.OnesCount64(bernoulliLanes(&s, p))
		}
		n := float64(words * 64)
		se := math.Sqrt(p * (1 - p) / n)
		if got := float64(ones) / n; math.Abs(got-p) > 5*se {
			t.Errorf("p=%g: empirical rate %g is %.1f standard errors off",
				p, got, math.Abs(got-p)/se)
		}
	}
}

// TestMonteCarloBatchMatchesScalarStatistically cross-checks the two
// engines as estimators: at a well-resolved physical rate their logical-rate
// estimates must agree within combined counting error. (The engines own
// different RNG streams, so the counts themselves legitimately differ.)
func TestMonteCarloBatchMatchesScalarStatistically(t *testing.T) {
	const (
		p      = 0.01
		trials = 400000
		seed   = 3
	)
	for _, c := range Codes() {
		a := c.MonteCarloXSeeded(p, trials, seed)
		b := c.MonteCarloXBatch(p, trials, seed)
		ra, rb := a.LogicalRate(), b.LogicalRate()
		se := math.Sqrt((ra*(1-ra) + rb*(1-rb)) / trials)
		if math.Abs(ra-rb) > 6*se {
			t.Errorf("%s: scalar rate %g vs batch rate %g differ by %.1f standard errors",
				c.Name, ra, rb, math.Abs(ra-rb)/se)
		}
		if b.Trials != trials || b.PhysicalRate != p {
			t.Errorf("%s: batch result echoes %+v", c.Name, b)
		}
	}
}

// TestMonteCarloBatchParallelDeterminism extends the seeded determinism
// contract to the batch engine: identical counts at parallelism 1, 4 and
// NumCPU, over a budget with a ragged 64-trial tail block. CI runs this
// under -race, which also vets the atomic fan-out.
func TestMonteCarloBatchParallelDeterminism(t *testing.T) {
	const (
		p      = 0.02
		trials = 3*mcShardTrials + 517
		seed   = 99
	)
	for _, c := range Codes() {
		workers := []int{1, 4, runtime.NumCPU()}
		baseX := c.MonteCarloXBatchParallel(p, trials, seed, workers[0])
		baseZ := c.MonteCarloZBatchParallel(p, trials, seed, workers[0])
		if baseX.LogicalFaults == 0 {
			t.Errorf("%s: no faults at p=%g over %d trials; the test is vacuous", c.Name, p, trials)
		}
		for _, w := range workers[1:] {
			if got := c.MonteCarloXBatchParallel(p, trials, seed, w); got != baseX {
				t.Errorf("%s: X counts differ at %d workers: %+v vs %+v", c.Name, w, got, baseX)
			}
			if got := c.MonteCarloZBatchParallel(p, trials, seed, w); got != baseZ {
				t.Errorf("%s: Z counts differ at %d workers: %+v vs %+v", c.Name, w, got, baseZ)
			}
		}
		if got := c.MonteCarloXBatch(p, trials, seed); got != baseX {
			t.Errorf("%s: MonteCarloXBatch differs from the 1-worker result: %+v vs %+v", c.Name, got, baseX)
		}
	}
}

// TestMonteCarloBatchSeedSensitivity guards the opposite failure: the seed
// must steer the block streams.
func TestMonteCarloBatchSeedSensitivity(t *testing.T) {
	c := Steane()
	a := c.MonteCarloXBatch(0.05, 2*mcShardTrials, 1)
	b := c.MonteCarloXBatch(0.05, 2*mcShardTrials, 2)
	if a == b {
		t.Error("different seeds produced identical batch Monte Carlo counts")
	}
}

// TestMonteCarloBatchDegenerateBudgets covers the block-layout edges: zero
// budget, sub-block budgets, exact block and shard multiples. Tail masking
// must make a 37-trial budget mean exactly 37 trials.
func TestMonteCarloBatchDegenerateBudgets(t *testing.T) {
	c := BaconShor()
	if got := c.MonteCarloXBatch(0.1, 0, 5); got.LogicalFaults != 0 || got.Trials != 0 {
		t.Errorf("zero budget: %+v", got)
	}
	for _, trials := range []int{1, 37, mcBatchLanes, mcBatchLanes + 1, mcShardTrials, 2*mcShardTrials + 63} {
		a := c.MonteCarloXBatchParallel(0.1, trials, 7, 1)
		b := c.MonteCarloXBatchParallel(0.1, trials, 7, 3)
		if a != b {
			t.Errorf("trials=%d: counts differ across worker counts: %+v vs %+v", trials, a, b)
		}
		if a.Trials != trials {
			t.Errorf("trials=%d: result echoes %d", trials, a.Trials)
		}
		if a.LogicalFaults > trials {
			t.Errorf("trials=%d: %d faults exceed the budget (tail mask broken)", trials, a.LogicalFaults)
		}
	}
	// At p=1 every trial of a distance-3 code faults… only if the all-ones
	// pattern is a logical fault; pin tail masking directly instead: a
	// 1-trial budget can contribute at most 1 fault even at p=1.
	if got := c.MonteCarloXBatch(1, 1, 9); got.LogicalFaults > 1 {
		t.Errorf("p=1, 1 trial: %d faults", got.LogicalFaults)
	}
}

// TestMonteCarloBatchAllocationFree pins the tentpole's steady-state
// contract: the serial batch path — sampling, syndrome lanes, flip mux,
// popcount — performs zero allocations.
func TestMonteCarloBatchAllocationFree(t *testing.T) {
	for _, c := range Codes() {
		if avg := testing.AllocsPerRun(50, func() {
			c.MonteCarloXBatchParallel(0.01, 4096, 21, 1)
		}); avg != 0 {
			t.Errorf("%s: batch Monte Carlo allocates %.1f times per run, want 0", c.Name, avg)
		}
	}
}
