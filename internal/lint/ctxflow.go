package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxFlow enforces context discipline in library (internal/...) code:
//
//   - context.Background() and context.TODO() are forbidden — library
//     code accepts a context from its caller. Minting a fresh root
//     context severs cancellation: the PR 3 runner-error masking bug was
//     exactly a context seam nobody could see. (Deliberate detachment —
//     the job manager's request-independent lifecycle — documents itself
//     with a suppression.)
//   - A nil context must never be passed where a callee expects one:
//     ctx.Value / ctx.Done on it panic far from the call site.
//   - A function that takes a context must thread it: a context
//     parameter that is never mentioned while the body calls
//     context-accepting callees means those callees run detached from
//     the caller's cancellation, silently.
var ctxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "library code accepts contexts from callers, never passes nil contexts, and threads received contexts to context-accepting callees",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if !ctxScoped(p.Cfg, p.Pkg.Path) {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgCall(p.Pkg.Info, call); ok && path == "context" && (name == "Background" || name == "TODO") {
				p.Reportf(call.Pos(), "context.%s in library code severs cancellation; accept a context from the caller", name)
			}
			checkNilContextArg(p, call)
			return true
		})
	}
	for _, fn := range funcDecls(p.Pkg) {
		checkContextThreading(p, fn)
	}
}

func ctxScoped(cfg Config, path string) bool {
	if cfg.CtxExempt[path] {
		return false
	}
	for _, prefix := range cfg.CtxPrefixes {
		if strings.HasPrefix(path, prefix) {
			return true
		}
	}
	return false
}

// checkNilContextArg flags literal nil passed for a context parameter.
func checkNilContextArg(p *Pass, call *ast.CallExpr) {
	sig := calleeSignature(p.Pkg.Info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		if !isNilIdent(arg) {
			continue
		}
		if isContextType(paramTypeAt(sig, i)) {
			p.Reportf(arg.Pos(), "nil passed for a context.Context parameter; pass the caller's context")
		}
	}
}

// paramTypeAt returns the type of parameter position i, unwrapping the
// variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() && i >= n-1 {
		if s, ok := params.At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return params.At(i).Type()
	}
	return nil
}

// checkContextThreading flags a function whose context parameter is never
// used while its body calls context-accepting callees.
func checkContextThreading(p *Pass, fn *ast.FuncDecl) {
	if fn.Type.Params == nil {
		return
	}
	var ctxObjs []types.Object
	for _, field := range fn.Type.Params.List {
		tv, ok := p.Pkg.Info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := p.Pkg.Info.Defs[name]; obj != nil {
				ctxObjs = append(ctxObjs, obj)
			}
		}
	}
	if len(ctxObjs) == 0 {
		return
	}
	used := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Pkg.Info.Uses[id]
		for _, c := range ctxObjs {
			if obj == c {
				used = true
			}
		}
		return !used
	})
	if used {
		return
	}
	// The parameter is dead. That alone is tolerated (interface
	// satisfaction); calling a context-accepting callee without it is not.
	var firstCallee *ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if firstCallee != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig := calleeSignature(p.Pkg.Info, call)
		if sig == nil {
			return true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if isContextType(sig.Params().At(i).Type()) {
				firstCallee = call
				return false
			}
		}
		return true
	})
	if firstCallee != nil {
		p.Reportf(firstCallee.Pos(), "%s receives a context but never threads it; this call runs detached from the caller's cancellation", fn.Name.Name)
	}
}
