package lint

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// FixSource inserts a `//lint:ignore-cqla <rule> TODO(triage): <msg>`
// suppression stub above each finding's line and returns the rewritten
// source. Stubs for the same line stack on consecutive lines (the
// suppression matcher scans the whole run), duplicate (line, rule) pairs
// collapse to one stub, and each stub copies the flagged line's
// indentation so gofmt is a no-op. FixSource is pure; ApplyFix does the
// file IO.
func FixSource(src []byte, findings []Finding) []byte {
	if len(findings) == 0 {
		return src
	}
	// line -> rule -> first message; one stub per (line, rule).
	byLine := make(map[int]map[string]string)
	for _, f := range findings {
		if f.Pos.Line <= 0 {
			continue
		}
		rules := byLine[f.Pos.Line]
		if rules == nil {
			rules = make(map[string]string)
			byLine[f.Pos.Line] = rules
		}
		if _, ok := rules[f.Rule]; !ok {
			rules[f.Rule] = f.Msg
		}
	}
	lines := strings.Split(string(src), "\n")
	nums := make([]int, 0, len(byLine))
	for n := range byLine {
		if n <= len(lines) {
			nums = append(nums, n)
		}
	}
	// Bottom-up so earlier insertions do not shift later line numbers.
	sort.Sort(sort.Reverse(sort.IntSlice(nums)))
	for _, n := range nums {
		target := lines[n-1]
		indent := target[:len(target)-len(strings.TrimLeft(target, " \t"))]
		rules := make([]string, 0, len(byLine[n]))
		for r := range byLine[n] {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		stubs := make([]string, 0, len(rules))
		for _, r := range rules {
			stubs = append(stubs, fmt.Sprintf("%s//lint:ignore-cqla %s TODO(triage): %s", indent, r, sanitizeReason(byLine[n][r])))
		}
		lines = append(lines[:n-1], append(stubs, lines[n-1:]...)...)
	}
	return []byte(strings.Join(lines, "\n"))
}

// sanitizeReason keeps a finding message legal inside a line comment.
func sanitizeReason(msg string) string {
	msg = strings.ReplaceAll(msg, "\r", " ")
	msg = strings.ReplaceAll(msg, "\n", " ")
	return strings.TrimSpace(msg)
}

// ApplyFix writes suppression stubs for every finding that points into a
// Go source file and reports how many files were rewritten and how many
// findings were stubbed. Findings without a .go position (the
// budget-noalloc document diagnostics) cannot be stubbed and are returned
// as the remainder.
func ApplyFix(findings []Finding) (files, stubbed int, remainder []Finding, err error) {
	byFile := make(map[string][]Finding)
	for _, f := range findings {
		if strings.HasSuffix(f.Pos.Filename, ".go") && f.Pos.Line > 0 {
			byFile[f.Pos.Filename] = append(byFile[f.Pos.Filename], f)
		} else {
			remainder = append(remainder, f)
		}
	}
	names := make([]string, 0, len(byFile))
	for name := range byFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src, readErr := os.ReadFile(name)
		if readErr != nil {
			return files, stubbed, remainder, readErr
		}
		fixed := FixSource(src, byFile[name])
		if string(fixed) == string(src) {
			continue
		}
		if writeErr := os.WriteFile(name, fixed, 0o644); writeErr != nil {
			return files, stubbed, remainder, writeErr
		}
		files++
		stubbed += len(byFile[name])
	}
	return files, stubbed, remainder, nil
}
