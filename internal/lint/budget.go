package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
)

// LoadBudgets reads a BENCH.json document produced by `cqla bench`
// (internal/perf schema) and returns benchmark name -> measured
// allocs/op. Only the fields the budget-noalloc analyzer needs are
// decoded, so the perf schema can grow without touching the lint layer.
func LoadBudgets(path string) (map[string]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		SchemaVersion int `json:"schema_version"`
		Benchmarks    []struct {
			Name        string `json:"name"`
			AllocsPerOp int64  `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %v", path, err)
	}
	if doc.SchemaVersion < 1 {
		return nil, fmt.Errorf("lint: %s: missing or unsupported schema_version %d", path, doc.SchemaVersion)
	}
	budgets := make(map[string]int64, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		budgets[b.Name] = b.AllocsPerOp
	}
	return budgets, nil
}

// budgetNoAlloc reconciles the `//cqla:noalloc` annotation set with the
// measured BENCH.json numbers, so the annotations are generated from
// measurement rather than memory:
//
//   - every benchmark measuring 0 allocs/op must map (through
//     Config.MeasuredFuncs) to functions that carry the directive;
//   - a mapped function carrying the directive while every benchmark
//     that measures it now allocates is stale — fix the regression or
//     drop the directive;
//   - a zero-alloc benchmark with no mapping entry, or a mapping naming a
//     function that does not exist in its (loaded) package, is a schema
//     hole reported against the document itself.
//
// Mappings into packages outside the current load are skipped, so
// cqlalint over a package subset stays quiet about code it cannot see.
var budgetNoAlloc = &Analyzer{
	Name:  "budget-noalloc",
	Doc:   "BENCH.json zero-alloc benchmarks and //cqla:noalloc directives must agree",
	Run:   runBudgetNoAlloc,
	Suite: true,
}

func runBudgetNoAlloc(p *Pass) {
	cfg := p.Cfg
	if cfg.Budgets == nil || len(cfg.MeasuredFuncs) == 0 {
		return
	}
	docPos := token.Position{Filename: cfg.BudgetPath, Line: 1}

	// Every zero-alloc benchmark needs a mapping entry, or its budget is
	// enforced by nothing.
	benches := make([]string, 0, len(cfg.Budgets))
	for name := range cfg.Budgets {
		benches = append(benches, name)
	}
	sort.Strings(benches)
	for _, name := range benches {
		if cfg.Budgets[name] == 0 && len(cfg.MeasuredFuncs[name]) == 0 {
			p.reportAt(docPos, "benchmark %s measures 0 allocs/op but has no measured-function mapping; its budget is unenforced", name)
		}
	}

	// symbol -> the benchmarks that measure it.
	measuredBy := make(map[string][]string)
	for bench, syms := range cfg.MeasuredFuncs {
		for _, sym := range syms {
			measuredBy[sym] = append(measuredBy[sym], bench)
		}
	}

	loaded := make(map[string]bool, len(p.All))
	seen := make(map[string]*ast.FuncDecl)
	pkgOf := make(map[string]*Package)
	for _, pkg := range p.All {
		loaded[pkg.Path] = true
		for _, fn := range funcDecls(pkg) {
			sym := declSymbol(pkg, fn)
			if _, mapped := measuredBy[sym]; mapped {
				seen[sym] = fn
				pkgOf[sym] = pkg
			}
		}
	}

	syms := make([]string, 0, len(measuredBy))
	for sym := range measuredBy {
		syms = append(syms, sym)
	}
	sort.Strings(syms)
	for _, sym := range syms {
		if !loaded[symbolPkg(sym)] {
			continue
		}
		fn, ok := seen[sym]
		if !ok {
			p.reportAt(docPos, "measured-function mapping names %s, which does not exist; the budget it carries is enforced by nothing", sym)
			continue
		}
		min, measured := minAllocs(cfg.Budgets, measuredBy[sym])
		if !measured {
			continue // its benchmarks are absent from this document
		}
		has := hasNoallocDirective(fn)
		pos := pkgOf[sym].Fset.Position(fn.Pos())
		switch {
		case min == 0 && !has:
			p.reportAt(pos, "%s is measured at 0 allocs/op by benchmark %s but carries no //cqla:noalloc directive", fn.Name.Name, firstZero(cfg.Budgets, measuredBy[sym]))
		case min > 0 && has:
			p.reportAt(pos, "%s carries //cqla:noalloc but its benchmark now measures %d allocs/op; fix the regression or drop the directive", fn.Name.Name, min)
		}
	}
}

// minAllocs returns the smallest allocs/op among the named benchmarks
// present in the document.
func minAllocs(budgets map[string]int64, benches []string) (int64, bool) {
	var min int64
	found := false
	for _, b := range benches {
		v, ok := budgets[b]
		if !ok {
			continue
		}
		if !found || v < min {
			min = v
		}
		found = true
	}
	return min, found
}

// firstZero names one benchmark that measured the function at zero, for
// the diagnostic.
func firstZero(budgets map[string]int64, benches []string) string {
	sorted := append([]string(nil), benches...)
	sort.Strings(sorted)
	for _, b := range sorted {
		if v, ok := budgets[b]; ok && v == 0 {
			return b
		}
	}
	return sorted[0]
}
