package lint

import (
	"os"
	"strings"
	"testing"

	"repro/internal/perf"
)

// TestRepositoryClean is the self-check: the suite under its shipping
// configuration — including the budget-aware noalloc coupling to the
// checked-in BENCH.json — finds nothing in the repository. Every rule
// the analyzers enforce is therefore a property of the tree at every
// commit, not a one-time cleanup.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading the repository: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Budgets, err = LoadBudgets("../../BENCH.json")
	if err != nil {
		t.Fatalf("loading the checked-in BENCH.json: %v", err)
	}
	cfg.BudgetPath = "../../BENCH.json"
	cfg.MeasuredFuncs = perf.MeasuredFunctions()
	for _, f := range Run(cfg, pkgs) {
		t.Errorf("%s", f.StringRelative(cwd))
	}

	// The coupling cuts both ways: remapping a zero-alloc benchmark to a
	// function without the directive must fail, which is exactly what
	// deleting a //cqla:noalloc directive from the real mapping does.
	broken := cfg
	broken.MeasuredFuncs = make(map[string][]string, len(cfg.MeasuredFuncs))
	for k, v := range cfg.MeasuredFuncs {
		broken.MeasuredFuncs[k] = v
	}
	broken.MeasuredFuncs["BuildDAGInto"] = []string{"repro/internal/circuit.BuildDAG"}
	got := Run(broken, pkgs)
	if len(got) != 1 || !strings.Contains(got[0].Msg, "carries no //cqla:noalloc directive") {
		t.Errorf("deleting a directive (simulated by remapping) produced %v, want exactly one missing-directive finding", got)
	}
}
