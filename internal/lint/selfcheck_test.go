package lint

import (
	"os"
	"testing"
)

// TestRepositoryClean is the self-check: the suite under its shipping
// configuration finds nothing in the repository. Every rule the
// analyzers enforce is therefore a property of the tree at every commit,
// not a one-time cleanup.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading the repository: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(DefaultConfig(), pkgs) {
		t.Errorf("%s", f.StringRelative(cwd))
	}
}
