package lint

import (
	"go/ast"
	"go/types"
)

// noAlloc checks every function carrying the `//cqla:noalloc` directive
// for constructs known to allocate, so the hot paths the PR 4/5
// benchmarks proved allocation-free stay that way on every edit — not
// just where an AllocsPerRun assertion happens to execute.
//
// Flagged constructs:
//
//   - make, new, goroutine launches, and slice/map composite literals
//     (including &T{...}) — unconditional heap traffic.
//   - fmt.* calls — formatting allocates on every path.
//   - string concatenation (non-constant `+` on strings) and
//     string<->[]byte/[]rune conversions.
//   - func literals that capture enclosing variables — the closure and
//     its captured cells move to the heap.
//   - interface boxing at call sites: passing a concrete value where the
//     callee takes an interface heap-allocates the box. (panic's operand
//     is exempt: the failure path's allocation is moot.)
//   - appends, unless the destination is self-appended pre-allocated
//     storage: `x = append(x, ...)` where x is a struct field, a
//     parameter, or a local slice made with an explicit capacity, or an
//     `append(buf[:0], ...)`-style reuse of an existing backing array.
//
// Cold-path allocations inside a noalloc function (arena growth on first
// use, panic formatting) are waived case by case with
// `//lint:ignore-cqla noalloc <reason>`, keeping every exception written
// down next to the code that needs it.
var noAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions marked //cqla:noalloc must not contain known-allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) {
	for _, fn := range funcDecls(p.Pkg) {
		if hasNoallocDirective(fn) {
			checkNoAllocBody(p, fn)
			checkNoAllocAppends(p, fn)
		}
	}
}

func checkNoAllocBody(p *Pass, fn *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			p.Reportf(node.Pos(), "go statement in noalloc function %s: launching a goroutine allocates", fn.Name.Name)
		case *ast.FuncLit:
			reportClosureCaptures(p, fn, node)
		case *ast.CompositeLit:
			if tv, ok := info.Types[node]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					p.Reportf(node.Pos(), "%s literal in noalloc function %s allocates", typeKindName(tv.Type), fn.Name.Name)
				}
			}
		case *ast.UnaryExpr:
			if node.Op.String() == "&" {
				if _, ok := node.X.(*ast.CompositeLit); ok {
					p.Reportf(node.Pos(), "address of composite literal in noalloc function %s allocates", fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if node.Op.String() == "+" {
				if tv, ok := info.Types[node]; ok && tv.Value == nil && isStringType(tv.Type) {
					p.Reportf(node.Pos(), "string concatenation in noalloc function %s allocates", fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkNoAllocCall(p, fn, node)
		}
		return true
	})
}

func checkNoAllocCall(p *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := p.Pkg.Info
	switch {
	case builtinCall(info, call, "make"):
		p.Reportf(call.Pos(), "make in noalloc function %s allocates", fn.Name.Name)
		return
	case builtinCall(info, call, "new"):
		p.Reportf(call.Pos(), "new in noalloc function %s allocates", fn.Name.Name)
		return
	case builtinCall(info, call, "append"):
		// Self-appends to pre-allocated storage are the reuse idiom the
		// hot paths are built on and are checked by checkNoAllocAppend
		// from the enclosing statement; nothing to do here — the
		// assignment form decides.
		return
	}
	if path, name, ok := pkgCall(info, call); ok && path == "fmt" {
		p.Reportf(call.Pos(), "fmt.%s in noalloc function %s allocates; format off the hot path", name, fn.Name.Name)
		return
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkAllocatingConversion(p, fn, call, tv.Type)
		return
	}
	checkInterfaceBoxing(p, fn, call)
}

// checkAllocatingConversion flags string<->[]byte/[]rune conversions,
// which copy into fresh storage.
func checkAllocatingConversion(p *Pass, fn *ast.FuncDecl, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src, ok := p.Pkg.Info.Types[call.Args[0]]
	if !ok || src.Value != nil {
		return
	}
	if isStringType(target) && isByteOrRuneSlice(src.Type) || isByteOrRuneSlice(target) && isStringType(src.Type) {
		p.Reportf(call.Pos(), "string/slice conversion in noalloc function %s allocates a copy", fn.Name.Name)
	}
}

// checkInterfaceBoxing flags concrete values passed where the callee's
// signature takes an interface.
func checkInterfaceBoxing(p *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := p.Pkg.Info
	if builtinCall(info, call, "panic") {
		return // the failure path's box is moot
	}
	sig := calleeSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		param := paramTypeAt(sig, i)
		if param == nil || !types.IsInterface(param) {
			continue
		}
		// A generic type parameter's underlying type is its constraint
		// interface, but instantiation substitutes a concrete type — no
		// box is built.
		if _, isTypeParam := param.(*types.TypeParam); isTypeParam {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.IsNil() || types.IsInterface(tv.Type.Underlying()) {
			continue
		}
		if _, isTypeParam := tv.Type.(*types.TypeParam); isTypeParam {
			continue
		}
		p.Reportf(arg.Pos(), "argument boxes %s into interface %s in noalloc function %s", tv.Type, param, fn.Name.Name)
	}
}

// reportClosureCaptures flags variables a func literal captures from the
// enclosing function.
func reportClosureCaptures(p *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) {
	info := p.Pkg.Info
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || reported[obj] {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal. Package-level variables are shared, not captured.
		if obj.Pos() >= fn.Pos() && obj.Pos() < fn.End() && (obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			reported[obj] = true
			p.Reportf(id.Pos(), "closure captures %s in noalloc function %s; the capture allocates", obj.Name(), fn.Name.Name)
		}
		return true
	})
}

// checkNoAllocAppends classifies every append in the function by the
// statement it appears in — a second walk so the assignment context is
// visible when deciding whether an append reuses pre-allocated storage.
func checkNoAllocAppends(p *Pass, fn *ast.FuncDecl) {
	info := p.Pkg.Info
	// Collect locals declared with an explicit capacity: make(T, n, c).
	preallocated := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok.String() != ":=" {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !builtinCall(info, call, "make") || len(call.Args) < 3 || i >= len(assign.Lhs) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					preallocated[obj] = true
				}
			}
		}
		return true
	})

	seen := make(map[*ast.CallExpr]bool)
	markSelfAppend := func(lhs ast.Expr, call *ast.CallExpr) {
		if !builtinCall(info, call, "append") || len(call.Args) == 0 {
			return
		}
		seen[call] = true
		dst := call.Args[0]
		// append(buf[:0], ...) reuses buf's backing array.
		if slice, ok := dst.(*ast.SliceExpr); ok {
			if isZeroReslice(slice) {
				return
			}
			dst = slice.X
		}
		if !sameStorage(info, lhs, dst) {
			p.Reportf(call.Pos(), "append writes into a different destination in noalloc function %s; growing a fresh slice allocates", fn.Name.Name)
			return
		}
		// Self-append to a field (`h.a = append(h.a, v)`) is the
		// pre-sized-by-constructor arena idiom: allowed. For a plain
		// identifier, the storage must be a caller-provided parameter or
		// a local made with an explicit capacity.
		d, ok := dst.(*ast.Ident)
		if !ok {
			return
		}
		obj := identObj(info, d)
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); ok && isParamOf(v, fn) {
			return // caller-provided buffer
		}
		if !preallocated[obj] {
			p.Reportf(call.Pos(), "append into %s, which has no pre-allocated capacity, in noalloc function %s", d.Name, fn.Name.Name)
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && i < len(assign.Lhs) {
				markSelfAppend(assign.Lhs[i], call)
			}
		}
		return true
	})
	// Appends not consumed by a simple assignment (passed on, returned,
	// fresh-defined) escape into new storage.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !builtinCall(info, call, "append") || seen[call] {
			return true
		}
		p.Reportf(call.Pos(), "append result escapes into new storage in noalloc function %s", fn.Name.Name)
		return true
	})
}

// isZeroReslice reports x[:0] / x[0:0]-style reslices.
func isZeroReslice(s *ast.SliceExpr) bool {
	if s.High == nil {
		return false
	}
	lit, ok := s.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// sameStorage reports whether lhs and dst name the same variable or the
// same field of the same base identifier — the `x = append(x, ...)`
// self-append shape.
func sameStorage(info *types.Info, lhs, dst ast.Expr) bool {
	switch l := lhs.(type) {
	case *ast.Ident:
		d, ok := dst.(*ast.Ident)
		if !ok {
			return false
		}
		lo, do := identObj(info, l), identObj(info, d)
		return lo != nil && lo == do
	case *ast.SelectorExpr:
		d, ok := dst.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		lb, okL := l.X.(*ast.Ident)
		db, okD := d.X.(*ast.Ident)
		if !okL || !okD {
			return false
		}
		return identObj(info, lb) == identObj(info, db) && l.Sel.Name == d.Sel.Name
	}
	return false
}

func isParamOf(v *types.Var, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	pos := v.Pos()
	return pos >= fn.Type.Params.Pos() && pos <= fn.Type.Params.End()
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func typeKindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
