package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFixSource(t *testing.T) {
	src := []byte(strings.Join([]string{
		"package p",
		"",
		"func f() {",
		"\tbad()",
		"}",
		"",
	}, "\n"))
	findings := []Finding{
		{Rule: "determinism", Msg: "first"},
		{Rule: "noalloc", Msg: "second"},
		{Rule: "determinism", Msg: "duplicate rule on the same line collapses"},
	}
	for i := range findings {
		findings[i].Pos.Filename = "p.go"
		findings[i].Pos.Line = 4
	}
	got := string(FixSource(src, findings))
	want := strings.Join([]string{
		"package p",
		"",
		"func f() {",
		"\t//lint:ignore-cqla determinism TODO(triage): first",
		"\t//lint:ignore-cqla noalloc TODO(triage): second",
		"\tbad()",
		"}",
		"",
	}, "\n")
	if got != want {
		t.Errorf("FixSource:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if out := FixSource(src, nil); string(out) != string(src) {
		t.Error("FixSource without findings rewrote the source")
	}
}

// TestFixRoundTrip is the acceptance loop: run the suite on a dirty
// package in a throwaway module, apply -fix, and the next run is clean;
// apply -fix again and no byte changes. The stacked stubs also prove the
// suppression matcher accepts a run of waiver lines above one statement.
func TestFixRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixmod\n\ngo 1.21\n")
	src := strings.Join([]string{
		"package fixmod",
		"",
		`import "time"`,
		"",
		"// Stamp reads the wall clock once.",
		"func Stamp() int64 {",
		"\treturn time.Now().UnixNano()",
		"}",
		"",
		"// Twice reads it twice on one line: one stub must cover both.",
		"func Twice() int64 {",
		"\treturn time.Now().UnixNano() + time.Now().Unix()",
		"}",
		"",
	}, "\n")
	path := filepath.Join(dir, "fixmod.go")
	writeFile(t, path, src)
	cfg := Config{DeterminismPkgs: map[string]bool{"fixmod": true}}

	load := func() []*Package {
		pkgs, err := Load(dir, "./...")
		if err != nil {
			t.Fatalf("loading the temp module: %v", err)
		}
		return pkgs
	}

	findings := Run(cfg, load())
	if len(findings) != 3 {
		t.Fatalf("dirty fixture produced %d findings, want 3: %v", len(findings), findings)
	}
	files, stubbed, remainder, err := ApplyFix(findings)
	if err != nil {
		t.Fatal(err)
	}
	if files != 1 || stubbed != 3 || len(remainder) != 0 {
		t.Errorf("ApplyFix = %d files, %d stubbed, %d remainder", files, stubbed, len(remainder))
	}

	after := readFile(t, path)
	if got := Run(cfg, load()); len(got) != 0 {
		t.Errorf("fixed fixture still has findings: %v", got)
	}

	// Idempotence: a second fix pass sees no findings and writes nothing.
	files, stubbed, _, err = ApplyFix(Run(cfg, load()))
	if err != nil {
		t.Fatal(err)
	}
	if files != 0 || stubbed != 0 {
		t.Errorf("second ApplyFix rewrote %d files (%d stubs)", files, stubbed)
	}
	if again := readFile(t, path); again != after {
		t.Errorf("second fix pass changed bytes:\n--- first ---\n%s--- second ---\n%s", after, again)
	}

	// Every stub carries a reason, so none of them is itself a finding.
	if !strings.Contains(after, "//lint:ignore-cqla determinism TODO(triage):") {
		t.Errorf("stub missing from fixed source:\n%s", after)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
