package lint

import (
	"go/ast"
	"go/types"
)

// determinism enforces the repository's byte-identical-output contract on
// the packages that feed sweep documents: the same seed must produce the
// same bytes at any parallelism, on any run, on any machine.
//
// Three rule groups:
//
//   - No calls into the global math/rand stream: the global source is
//     shared mutable state seeded per process, so any call through it
//     couples a point's result to scheduling order. Randomness must flow
//     through a seeded *rand.Rand threaded from the sweep point.
//   - No wall-clock reads (time.Now, time.Since): sweep-path results must
//     be a pure function of their inputs. Timing belongs to the
//     observability and perf layers (obs.Now/obs.Since), which are fenced
//     off from result documents.
//   - No map-iteration order escaping into slices: a slice appended to
//     from inside `range m` accumulates values in nondeterministic order;
//     it must be sorted before it escapes the function.
var determinism = &Analyzer{
	Name: "determinism",
	Doc:  "sweep-path packages must not read the wall clock, the global math/rand stream, or leak map iteration order",
	Run:  runDeterminism,
}

// randConstructors are the math/rand functions that build independent
// generators rather than drawing from the global stream.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	if !p.Cfg.DeterminismPkgs[p.Pkg.Path] {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgCall(p.Pkg.Info, call)
			if !ok {
				return true
			}
			switch {
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
				p.Reportf(call.Pos(), "call to global math/rand.%s couples the result to process-wide state; draw from a seeded *rand.Rand threaded from the sweep point", name)
			case path == "time" && (name == "Now" || name == "Since"):
				p.Reportf(call.Pos(), "time.%s in deterministic sweep-path code; wall-clock reads belong to internal/obs (obs.Now, obs.Since) or internal/perf", name)
			}
			return true
		})
	}
	for _, fn := range funcDecls(p.Pkg) {
		checkMapOrderEscapes(p, fn)
	}
}

// checkMapOrderEscapes flags slices that accumulate values from inside a
// map range without a later sort.* / slices.Sort* call over the same
// variable in the same function.
func checkMapOrderEscapes(p *Pass, fn *ast.FuncDecl) {
	// Pass 1: every ordering call (sort.*, slices.Sort*) and the objects
	// its arguments mention, keyed for the "sorted later" lookup.
	type orderingCall struct {
		end  int // file offset of the call; appends before it are fixed
		objs map[types.Object]bool
	}
	var orderings []orderingCall
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, _, ok := pkgCall(p.Pkg.Info, call)
		if !ok || (path != "sort" && path != "slices") {
			return true
		}
		oc := orderingCall{end: int(call.End()), objs: make(map[types.Object]bool)}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj := identObj(p.Pkg.Info, id); obj != nil {
						oc.objs[obj] = true
					}
				}
				return true
			})
		}
		orderings = append(orderings, oc)
		return true
	})
	sortedAfter := func(obj types.Object, pos int) bool {
		for _, oc := range orderings {
			if oc.end > pos && oc.objs[obj] {
				return true
			}
		}
		return false
	}

	// Pass 2: appends to outer slices from inside a map range.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(bn ast.Node) bool {
			assign, ok := bn.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				return true
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok || !builtinCall(p.Pkg.Info, call, "append") {
				return true
			}
			id, ok := assign.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := identObj(p.Pkg.Info, id)
			if obj == nil || obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
				return true // declared inside the range: cannot outlive it unsorted
			}
			if sortedAfter(obj, int(call.End())) {
				return true
			}
			p.Reportf(call.Pos(), "%s accumulates map-iteration values in nondeterministic order; sort it before it escapes", id.Name)
			return true
		})
		return true
	})
}
