package lint

import (
	"go/ast"
	"go/types"
)

// goLeak flags fire-and-forget goroutines in the serving and
// observability packages before the distributed tier multiplies them. A
// `go` statement passes if the goroutine is provably stoppable by at
// least one of:
//
//   - context: a context.Context flows in as a call argument, or the
//     goroutine body references one (a captured ctx, a ctx field on the
//     receiver);
//   - channel: the body selects, receives from, or ranges over a channel,
//     so closing it ends the goroutine;
//   - WaitGroup: the body calls (sync.WaitGroup).Done and some function
//     in the spawning package calls Wait (the join point is reachable),
//     or the body itself is the waiter.
//
// The body is the func literal when the statement launches one, or the
// resolved declaration for a same-package call (`go m.run(j)`). A target
// that resolves to neither — a cross-package call or a func value — is
// flagged unless a context argument flows in, since nothing about its
// lifetime can be proven here.
var goLeak = &Analyzer{
	Name: "goleak",
	Doc:  "go statements in serving packages must be cancellable or WaitGroup-tracked",
	Run:  runGoLeak,
}

func runGoLeak(p *Pass) {
	if !p.Cfg.GoleakPkgs[p.Pkg.Path] {
		return
	}
	info := p.Pkg.Info

	// The join-point precondition: a Wait call anywhere in the package
	// makes Done-tracked goroutines collectable.
	pkgHasWait := false
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, fn := range funcDecls(p.Pkg) {
		if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
			decls[obj] = fn
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(info, call, "Wait") {
				pkgHasWait = true
			}
			return true
		})
	}

	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(p, gs, decls, pkgHasWait)
			return true
		})
	}
}

func checkGoStmt(p *Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl, pkgHasWait bool) {
	info := p.Pkg.Info
	for _, arg := range gs.Call.Args {
		if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
			return // cancellation flows in explicitly
		}
	}

	var body *ast.BlockStmt
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if callee := calleeFunc(info, gs.Call); callee != nil {
			if fn := decls[callee]; fn != nil {
				body = fn.Body
			}
		}
	}
	if body == nil {
		p.Reportf(gs.Pos(), "goroutine target cannot be resolved in this package and receives no context; its lifetime is unprovable")
		return
	}
	if goroutineIsBounded(info, body, pkgHasWait) {
		return
	}
	p.Reportf(gs.Pos(), "fire-and-forget goroutine: no context, no done-channel select or receive, and no WaitGroup with a reachable Wait")
}

// goroutineIsBounded scans one goroutine body for any of the accepted
// cancellation signals.
func goroutineIsBounded(info *types.Info, body *ast.BlockStmt, pkgHasWait bool) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch node := n.(type) {
		case *ast.SelectStmt:
			bounded = true
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				bounded = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					bounded = true
				}
			}
		case *ast.Ident, *ast.SelectorExpr:
			if tv, ok := info.Types[n.(ast.Expr)]; ok && isContextType(tv.Type) {
				bounded = true
			}
		case *ast.CallExpr:
			if isWaitGroupCall(info, node, "Wait") {
				bounded = true // the goroutine is itself the joiner
			}
			if pkgHasWait && isWaitGroupCall(info, node, "Done") {
				bounded = true
			}
		}
		return !bounded
	})
	return bounded
}

// isWaitGroupCall reports a method call named name on a sync.WaitGroup
// receiver.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	named, _ := namedIn(recvType(fn), "sync")
	return named != nil && named.Obj().Name() == "WaitGroup"
}

// recvType returns the receiver type of a method, nil for functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}
