package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// purity pins the paper's core contract: the analytic model is a pure
// function of its inputs. Everything reachable from an engine's
// Evaluate/EvaluateCompiled in the analytic-model packages is walked as a
// call graph over the loaded type info, and three classes of impurity are
// flagged:
//
//   - package-level mutable state: writes always; reads when the variable
//     is assigned anywhere in the model packages or is a sync primitive
//     (an effectively-constant sentinel assigned only at its declaration
//     is allowed);
//   - environment and file IO: calls into os, io/ioutil or os/exec;
//   - racy memoization: mutating a receiver's map without a preceding
//     mutex Lock in the same function body.
//
// The documented memoization layer (PurityExemptPkgs/PurityExemptTypes)
// is excluded: its types exist precisely to make caching safe, and their
// own tests cover that. Calls leaving PurityPkgs are trusted — foreign
// packages are governed by their own analyzers. This is the precision vet
// cannot offer: an unreachable helper may do anything, while a sin three
// calls deep under Evaluate is still a finding at the line that commits
// it.
var purity = &Analyzer{
	Name:  "purity",
	Doc:   "code reachable from Engine.Evaluate/EvaluateCompiled must be a pure function of its inputs",
	Run:   runPurity,
	Suite: true,
}

// impureIOPkgs are the packages whose mere invocation makes an
// evaluation depend on something other than its arguments.
var impureIOPkgs = map[string]bool{
	"os":        true,
	"io/ioutil": true,
	"os/exec":   true,
}

// purityScope is the precomputed view of the model packages the walk
// resolves against.
type purityScope struct {
	p *Pass
	// decls indexes every function declaration in PurityPkgs by its
	// cross-package symbol, so a *types.Func imported from export data
	// and the declaring package's own object meet on one key.
	decls map[string]declIn
	// mutated holds the symbols ("path.var") of package-level variables
	// assigned, incremented or address-taken anywhere in PurityPkgs —
	// reading one of these from the evaluation path is impure.
	mutated map[string]bool
}

type declIn struct {
	pkg *Package
	fn  *ast.FuncDecl
}

func runPurity(p *Pass) {
	cfg := p.Cfg
	if len(cfg.PurityPkgs) == 0 || len(cfg.PurityEntries) == 0 {
		return
	}
	scope := &purityScope{
		p:       p,
		decls:   make(map[string]declIn),
		mutated: make(map[string]bool),
	}
	var entries []string
	for _, pkg := range p.All {
		if !cfg.PurityPkgs[pkg.Path] {
			continue
		}
		for _, fn := range funcDecls(pkg) {
			sym := declSymbol(pkg, fn)
			if sym == "" {
				continue
			}
			scope.decls[sym] = declIn{pkg: pkg, fn: fn}
			if fn.Recv != nil && cfg.PurityEntries[fn.Name.Name] &&
				!cfg.PurityExemptTypes[pkg.Path+"."+declRecvName(fn)] {
				entries = append(entries, sym)
			}
			scope.recordMutations(pkg, fn)
		}
	}
	sort.Strings(entries)

	visited := make(map[string]bool)
	queue := entries
	for len(queue) > 0 {
		sym := queue[0]
		queue = queue[1:]
		if visited[sym] {
			continue
		}
		visited[sym] = true
		d := scope.decls[sym]
		queue = append(queue, scope.checkFunc(d.pkg, d.fn)...)
	}
}

// recordMutations notes every package-level variable of a model package
// that fn assigns, increments or takes the address of.
func (s *purityScope) recordMutations(pkg *Package, fn *ast.FuncDecl) {
	note := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if v := pkgLevelVar(identObj(pkg.Info, id)); v != nil {
			s.mutated[v.Pkg().Path()+"."+v.Name()] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(node.X)
		case *ast.UnaryExpr:
			if node.Op.String() == "&" {
				note(node.X)
			}
		}
		return true
	})
}

// checkFunc flags the impurities committed directly by fn and returns the
// symbols of the model-package callees the walk must visit next.
func (s *purityScope) checkFunc(pkg *Package, fn *ast.FuncDecl) []string {
	cfg := s.p.Cfg
	info := pkg.Info
	var next []string

	// The write/read classification needs to know which identifier uses
	// sit on an assignment's left side.
	written := make(map[*ast.Ident]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					written[id] = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := node.X.(*ast.Ident); ok {
				written[id] = true
			}
		}
		return true
	})

	// One finding per (variable, access kind) per function keeps a hot
	// loop over a global from flooding the report.
	type accessKey struct {
		sym   string
		write bool
	}
	reported := make(map[accessKey]bool)

	lockBefore := mutexLockPositions(info, fn)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.Ident:
			v := pkgLevelVar(identObj(info, node))
			if v == nil || !cfg.PurityPkgs[v.Pkg().Path()] {
				return true
			}
			sym := v.Pkg().Path() + "." + v.Name()
			write := written[node]
			if !write && !s.mutated[sym] && !isSyncType(v.Type()) {
				return true // effectively constant: read-only sentinel
			}
			key := accessKey{sym: sym, write: write}
			if reported[key] {
				return true
			}
			reported[key] = true
			verb := "reads"
			if write {
				verb = "writes"
			}
			s.p.Reportf(node.Pos(), "%s %s package-level mutable state %s; the analytic model must be a pure function of its inputs", fn.Name.Name, verb, v.Name())
		case *ast.CallExpr:
			next = append(next, s.checkCall(pkg, fn, node)...)
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				s.checkReceiverMapWrite(pkg, fn, lhs, lockBefore)
			}
		}
		return true
	})
	return next
}

// checkCall classifies one call: impure IO, an exempt memo call, or a
// model-package callee to descend into. delete(recv.m, k) is routed to
// the receiver-map check.
func (s *purityScope) checkCall(pkg *Package, fn *ast.FuncDecl, call *ast.CallExpr) []string {
	cfg := s.p.Cfg
	info := pkg.Info
	if builtinCall(info, call, "delete") && len(call.Args) > 0 {
		s.checkReceiverMapWrite(pkg, fn, call.Args[0], mutexLockPositions(info, fn))
		return nil
	}
	callee := calleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil {
		return nil
	}
	path := callee.Pkg().Path()
	if impureIOPkgs[path] {
		s.p.Reportf(call.Pos(), "%s calls %s.%s; the evaluation path must not read the environment or touch files", fn.Name.Name, path, callee.Name())
		return nil
	}
	if !cfg.PurityPkgs[path] || cfg.PurityExemptPkgs[path] {
		return nil
	}
	if recv := receiverTypeName(callee); recv != "" && cfg.PurityExemptTypes[path+"."+recv] {
		return nil
	}
	sym := funcSymbol(callee)
	if sym == "" {
		return nil
	}
	if _, ok := s.decls[sym]; !ok {
		return nil // interface method or declaration outside the load
	}
	return []string{sym}
}

// checkReceiverMapWrite flags `recv.field[k] = v` (and delete on the
// same shape) when no mutex Lock call appears earlier in the function —
// the memoization race the exempt types exist to prevent.
func (s *purityScope) checkReceiverMapWrite(pkg *Package, fn *ast.FuncDecl, target ast.Expr, lockBefore func(n ast.Node) bool) {
	idx, ok := target.(*ast.IndexExpr)
	if !ok {
		return
	}
	info := pkg.Info
	tv, ok := info.Types[idx.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	recv := receiverObject(info, fn)
	if recv == nil || !rootsAt(info, idx.X, recv) {
		return
	}
	if lockBefore(idx) {
		return // write under a held mutex: the allowed memo idiom
	}
	s.p.Reportf(idx.Pos(), "%s mutates its receiver's map outside a held mutex; concurrent evaluations race", fn.Name.Name)
}

// declRecvName returns the bare receiver type name of a method
// declaration, "" for plain functions.
func declRecvName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	switch x := t.(type) {
	case *ast.IndexExpr:
		t = x.X
	case *ast.IndexListExpr:
		t = x.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// receiverObject returns the declared receiver variable of fn, if any.
func receiverObject(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fn.Recv.List[0].Names[0]]
}

// rootsAt reports whether the expression is the receiver itself or a
// selector chain rooted at it (recv.m, recv.a.b).
func rootsAt(info *types.Info, e ast.Expr, recv types.Object) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return identObj(info, x) == recv
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// mutexLockPositions returns a predicate reporting whether any `.Lock()`
// call textually precedes the node inside fn — the coarse but readable
// stand-in for lock-held analysis: the memo idiom takes the lock at the
// top and defers the unlock.
func mutexLockPositions(info *types.Info, fn *ast.FuncDecl) func(n ast.Node) bool {
	var locks []int
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			locks = append(locks, int(call.Pos()))
		}
		return true
	})
	return func(n ast.Node) bool {
		for _, l := range locks {
			if l < int(n.Pos()) {
				return true
			}
		}
		return false
	}
}

// pkgLevelVar reports obj as a package-level variable, nil otherwise.
func pkgLevelVar(obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// receiverTypeName returns the bare receiver type name of a method, ""
// for plain functions.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// isSyncType reports types from sync/sync.atomic — primitives whose very
// presence at package level is shared mutable state even when the
// variable itself is never reassigned.
func isSyncType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "sync" || strings.HasPrefix(path, "sync/")
}
