package lint

import (
	"go/ast"
	"go/types"
)

// obsGuard pins the observability layer's disabled-is-free contract from
// both sides:
//
//   - Inside the obs package, every exported method on a pointer receiver
//     must begin with a nil-receiver guard (`if x == nil { ... }`) or
//     consist of a single statement forwarding to another method on the
//     same receiver (which carries the guard). The nil handle IS the
//     disabled mode; one unguarded method turns "observability off" into
//     a panic at the first instrumented call site.
//   - Outside the obs package, code must never reach through an obs
//     handle pointer into its fields: a field access dereferences the
//     handle, so the nil (disabled) handle crashes exactly where a
//     method call would have been free.
var obsGuard = &Analyzer{
	Name: "obsguard",
	Doc:  "obs exported pointer-receiver methods begin with a nil guard; obs handles are never dereferenced field-wise elsewhere",
	Run:  runObsGuard,
}

func runObsGuard(p *Pass) {
	if p.Cfg.ObsPkg == "" {
		return
	}
	if p.Pkg.Path == p.Cfg.ObsPkg {
		checkObsMethods(p)
		return
	}
	checkObsFieldAccess(p)
}

func checkObsMethods(p *Pass) {
	for _, fn := range funcDecls(p.Pkg) {
		if fn.Recv == nil || !fn.Name.IsExported() || len(fn.Recv.List) != 1 {
			continue
		}
		if _, isPtr := fn.Recv.List[0].Type.(*ast.StarExpr); !isPtr {
			continue
		}
		recv := receiverName(fn)
		if recv == "" {
			p.Reportf(fn.Pos(), "exported method %s has an unnamed pointer receiver and cannot nil-guard it; name the receiver and guard it", fn.Name.Name)
			continue
		}
		if beginsWithNilGuard(fn, recv) || forwardsToReceiver(fn, recv) {
			continue
		}
		p.Reportf(fn.Pos(), "exported method (%s).%s must begin with a nil-receiver guard: a nil handle is the disabled mode and every operation on it must be a no-op", recvTypeName(fn), fn.Name.Name)
	}
}

func receiverName(fn *ast.FuncDecl) string {
	names := fn.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return ""
	}
	return names[0].Name
}

func recvTypeName(fn *ast.FuncDecl) string {
	star := fn.Recv.List[0].Type.(*ast.StarExpr)
	switch t := star.X.(type) {
	case *ast.Ident:
		return "*" + t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return "*" + id.Name
		}
	}
	return "*?"
}

// beginsWithNilGuard reports whether the first statement is an if whose
// condition checks `recv == nil` (possibly or-ed with more conditions)
// and whose body bails out with a return.
func beginsWithNilGuard(fn *ast.FuncDecl, recv string) bool {
	if len(fn.Body.List) == 0 {
		return false
	}
	ifStmt, ok := fn.Body.List[0].(*ast.IfStmt)
	if !ok || !condChecksNil(ifStmt.Cond, recv) || len(ifStmt.Body.List) == 0 {
		return false
	}
	_, isReturn := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

func condChecksNil(cond ast.Expr, recv string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op.String() != "==" {
			return true
		}
		if isIdentNamed(be.X, recv) && isNilIdent(be.Y) || isIdentNamed(be.Y, recv) && isNilIdent(be.X) {
			found = true
		}
		return true
	})
	return found
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool { return isIdentNamed(e, "nil") }

// forwardsToReceiver reports whether the whole body is one statement
// delegating to a method on the same receiver — `func (c *Counter) Inc()
// { c.Add(1) }` inherits Add's guard.
func forwardsToReceiver(fn *ast.FuncDecl, recv string) bool {
	if len(fn.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := fn.Body.List[0].(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			call, _ = s.Results[0].(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && isIdentNamed(sel.X, recv)
}

// checkObsFieldAccess flags field selections through obs handle pointers
// in every non-obs package.
func checkObsFieldAccess(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := p.Pkg.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			recvType := selection.Recv()
			if _, isPtr := recvType.(*types.Pointer); !isPtr {
				return true
			}
			named, inObs := namedIn(recvType, p.Cfg.ObsPkg)
			if !inObs {
				return true
			}
			p.Reportf(sel.Sel.Pos(), "direct field access (*%s.%s).%s dereferences an obs handle; a nil (disabled) handle panics here — use the nil-safe methods", obsPkgBase(p.Cfg.ObsPkg), named.Obj().Name(), sel.Sel.Name)
			return true
		})
	}
}

func obsPkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
