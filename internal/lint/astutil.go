package lint

import (
	"go/ast"
	"go/types"
)

// pkgCall resolves a call through a package selector (`pkg.Fn(...)`) to
// the imported package path and function name. ok is false for method
// calls, locals, conversions and builtins.
func pkgCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	ident, okIdent := sel.X.(*ast.Ident)
	if !okIdent {
		return "", "", false
	}
	pkgName, okPkg := info.Uses[ident].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}

// builtinCall reports whether the call invokes the named predeclared
// builtin (append, make, new, panic, ...).
func builtinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != name {
		return false
	}
	b, ok := info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == name
}

// calleeSignature returns the signature of a call's target, or nil for
// builtins and type conversions.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// namedIn unwraps pointers and reports the named type and whether it is
// declared in the package with the given import path.
func namedIn(t types.Type, pkgPath string) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, false
	}
	return named, named.Obj().Pkg().Path() == pkgPath
}

// identObj resolves an identifier to its object through uses then defs.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				out = append(out, fn)
			}
		}
	}
	return out
}
