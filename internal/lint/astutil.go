package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgCall resolves a call through a package selector (`pkg.Fn(...)`) to
// the imported package path and function name. ok is false for method
// calls, locals, conversions and builtins.
func pkgCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	ident, okIdent := sel.X.(*ast.Ident)
	if !okIdent {
		return "", "", false
	}
	pkgName, okPkg := info.Uses[ident].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}

// builtinCall reports whether the call invokes the named predeclared
// builtin (append, make, new, panic, ...).
func builtinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != name {
		return false
	}
	b, ok := info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == name
}

// calleeSignature returns the signature of a call's target, or nil for
// builtins and type conversions.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// namedIn unwraps pointers and reports the named type and whether it is
// declared in the package with the given import path.
func namedIn(t types.Type, pkgPath string) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, false
	}
	return named, named.Obj().Pkg().Path() == pkgPath
}

// identObj resolves an identifier to its object through uses then defs.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// calleeFunc resolves a call expression to the declared function or
// method it invokes, normalized to the generic origin. Nil for builtins,
// conversions, func-typed values and interface-less cases the type info
// cannot name.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
		case *ast.IndexExpr: // generic instantiation f[T](...)
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		case *ast.Ident:
			if fn, ok := info.Uses[f].(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		default:
			return nil
		}
	}
}

// funcSymbol renders a declared function as a stable cross-package
// symbol: "import/path.Func", "import/path.(*Type).Method" or
// "import/path.(Type).Method". Empty for interface methods and functions
// without a package (builtins, error.Error) — identities the call-graph
// walk cannot pin to a declaration.
func funcSymbol(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
		ptr = "*"
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "" // interface method or unnamed receiver
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return ""
	}
	return fn.Pkg().Path() + ".(" + ptr + named.Obj().Name() + ")." + fn.Name()
}

// declSymbol renders a function declaration in pkg with the same grammar
// as funcSymbol, so AST-side and types-side lookups meet on one key.
func declSymbol(pkg *Package, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return pkg.Path + "." + fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	ptr := ""
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
		ptr = "*"
	}
	switch x := t.(type) {
	case *ast.IndexExpr: // generic receiver Type[T]
		t = x.X
	case *ast.IndexListExpr:
		t = x.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return ""
	}
	return pkg.Path + ".(" + ptr + id.Name + ")." + fn.Name.Name
}

// symbolPkg extracts the import path from a funcSymbol-grammar string.
func symbolPkg(sym string) string {
	if i := strings.Index(sym, ".("); i >= 0 {
		return sym[:i]
	}
	if i := strings.LastIndex(sym, "."); i >= 0 {
		return sym[:i]
	}
	return sym
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				out = append(out, fn)
			}
		}
	}
	return out
}
