package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// fixturePrefix is the import-path prefix of the fixture packages. The
// testdata directory is invisible to `./...` wildcards, so the fixtures
// never leak into a real build — the loader reaches them by explicit
// relative path.
const fixturePrefix = "repro/internal/lint/testdata/src/"

func loadFixtures(t *testing.T, names ...string) []*Package {
	t.Helper()
	patterns := make([]string, len(names))
	for i, n := range names {
		patterns[i] = "./testdata/src/" + n
	}
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", names, err)
	}
	return pkgs
}

// runGolden runs the suite under cfg and compares the rendered findings
// against testdata/golden/<name>. `go test -update` rewrites the file.
func runGolden(t *testing.T, name string, cfg Config, pkgs []*Package) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range Run(cfg, pkgs) {
		b.WriteString(f.StringRelative(cwd))
		b.WriteByte('\n')
	}
	got := b.String()

	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -update` after intentional changes): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from %s (run `go test -update` after intentional changes)\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestDeterminismGolden(t *testing.T) {
	pkgs := loadFixtures(t, "determfix")
	cfg := Config{DeterminismPkgs: map[string]bool{fixturePrefix + "determfix": true}}
	runGolden(t, "determinism.golden", cfg, pkgs)
}

func TestObsGuardGolden(t *testing.T) {
	pkgs := loadFixtures(t, "obsfix", "obsusefix")
	cfg := Config{ObsPkg: fixturePrefix + "obsfix"}
	runGolden(t, "obsguard.golden", cfg, pkgs)
}

func TestCtxFlowGolden(t *testing.T) {
	pkgs := loadFixtures(t, "ctxfix")
	cfg := Config{CtxPrefixes: []string{fixturePrefix + "ctxfix"}}
	runGolden(t, "ctxflow.golden", cfg, pkgs)
}

func TestNoAllocGolden(t *testing.T) {
	pkgs := loadFixtures(t, "noallocfix")
	runGolden(t, "noalloc.golden", Config{}, pkgs)
}

func TestSuppressGolden(t *testing.T) {
	pkgs := loadFixtures(t, "suppressfix")
	runGolden(t, "suppress.golden", Config{}, pkgs)
}

// TestDeterminismScoping pins that the analyzer only fires inside the
// configured package set: the same fixture under an empty config is
// silent.
func TestDeterminismScoping(t *testing.T) {
	pkgs := loadFixtures(t, "determfix")
	if got := Run(Config{}, pkgs); len(got) != 0 {
		t.Errorf("out-of-scope package produced findings: %v", got)
	}
}

// TestCtxExempt pins that CtxExempt removes a package the prefixes would
// otherwise cover.
func TestCtxExempt(t *testing.T) {
	pkgs := loadFixtures(t, "ctxfix")
	cfg := Config{
		CtxPrefixes: []string{fixturePrefix + "ctxfix"},
		CtxExempt:   map[string]bool{fixturePrefix + "ctxfix": true},
	}
	if got := Run(cfg, pkgs); len(got) != 0 {
		t.Errorf("exempt package produced findings: %v", got)
	}
}

func TestParseSuppression(t *testing.T) {
	cases := []struct {
		text         string
		rule, reason string
		ok           bool
	}{
		{"//lint:ignore-cqla noalloc arena growth", "noalloc", "arena growth", true},
		{"//lint:ignore-cqla noalloc", "noalloc", "", true},
		{"//lint:ignore-cqla", "", "", true},
		{"// an ordinary comment", "", "", false},
		{"//lint:ignore SA1019 the staticcheck spelling", "", "", false},
	}
	for _, c := range cases {
		rule, reason, ok := parseSuppression(c.text)
		if rule != c.rule || reason != c.reason || ok != c.ok {
			t.Errorf("parseSuppression(%q) = %q, %q, %v; want %q, %q, %v",
				c.text, rule, reason, ok, c.rule, c.reason, c.ok)
		}
	}
}

func TestStringRelative(t *testing.T) {
	f := Finding{Rule: "determinism", Msg: "m"}
	f.Pos.Filename = "/a/b/c.go"
	f.Pos.Line = 7
	if got := f.StringRelative("/a"); got != "b/c.go:7: [determinism] m" {
		t.Errorf("relative form = %q", got)
	}
	if got := f.StringRelative("/x/y"); got != "/a/b/c.go:7: [determinism] m" {
		t.Errorf("outside-dir form = %q", got)
	}
	if got := f.StringRelative(""); got != "/a/b/c.go:7: [determinism] m" {
		t.Errorf("empty-dir form = %q", got)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(".", "./testdata/src/nosuchpkg"); err == nil {
		t.Error("loading a nonexistent package succeeded")
	}
}

func TestAnalyzersListed(t *testing.T) {
	want := []string{"determinism", "obsguard", "ctxflow", "noalloc"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc line", a.Name)
		}
	}
}
