package lint

import (
	"encoding/json"
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// fixturePrefix is the import-path prefix of the fixture packages. The
// testdata directory is invisible to `./...` wildcards, so the fixtures
// never leak into a real build — the loader reaches them by explicit
// relative path.
const fixturePrefix = "repro/internal/lint/testdata/src/"

func loadFixtures(t *testing.T, names ...string) []*Package {
	t.Helper()
	patterns := make([]string, len(names))
	for i, n := range names {
		patterns[i] = "./testdata/src/" + n
	}
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", names, err)
	}
	return pkgs
}

// runGolden runs the suite under cfg and compares the rendered findings
// against testdata/golden/<name>. `go test -update` rewrites the file.
func runGolden(t *testing.T, name string, cfg Config, pkgs []*Package) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range Run(cfg, pkgs) {
		b.WriteString(f.StringRelative(cwd))
		b.WriteByte('\n')
	}
	got := b.String()

	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -update` after intentional changes): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from %s (run `go test -update` after intentional changes)\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestDeterminismGolden(t *testing.T) {
	pkgs := loadFixtures(t, "determfix")
	cfg := Config{DeterminismPkgs: map[string]bool{fixturePrefix + "determfix": true}}
	runGolden(t, "determinism.golden", cfg, pkgs)
}

func TestObsGuardGolden(t *testing.T) {
	pkgs := loadFixtures(t, "obsfix", "obsusefix")
	cfg := Config{ObsPkg: fixturePrefix + "obsfix"}
	runGolden(t, "obsguard.golden", cfg, pkgs)
}

func TestCtxFlowGolden(t *testing.T) {
	pkgs := loadFixtures(t, "ctxfix")
	cfg := Config{CtxPrefixes: []string{fixturePrefix + "ctxfix"}}
	runGolden(t, "ctxflow.golden", cfg, pkgs)
}

func TestNoAllocGolden(t *testing.T) {
	pkgs := loadFixtures(t, "noallocfix")
	runGolden(t, "noalloc.golden", Config{}, pkgs)
}

func TestSuppressGolden(t *testing.T) {
	pkgs := loadFixtures(t, "suppressfix")
	runGolden(t, "suppress.golden", Config{}, pkgs)
}

func TestPurityGolden(t *testing.T) {
	pkgs := loadFixtures(t, "purefix")
	cfg := Config{
		PurityPkgs:        map[string]bool{fixturePrefix + "purefix": true},
		PurityEntries:     map[string]bool{"Evaluate": true, "EvaluateCompiled": true},
		PurityExemptTypes: map[string]bool{fixturePrefix + "purefix.Plan": true},
	}
	runGolden(t, "purity.golden", cfg, pkgs)
}

func TestGoLeakGolden(t *testing.T) {
	pkgs := loadFixtures(t, "goleakfix")
	cfg := Config{GoleakPkgs: map[string]bool{fixturePrefix + "goleakfix": true}}
	runGolden(t, "goleak.golden", cfg, pkgs)
}

func budgetFixtureConfig(t *testing.T) Config {
	t.Helper()
	budgets, err := LoadBudgets("testdata/bench/budgetfix.json")
	if err != nil {
		t.Fatalf("loading the budget fixture: %v", err)
	}
	return Config{
		Budgets:    budgets,
		BudgetPath: "testdata/bench/budgetfix.json",
		MeasuredFuncs: map[string][]string{
			"Fast":    {fixturePrefix + "budgetfix.Fast"},
			"Missing": {fixturePrefix + "budgetfix.Missing"},
			"Stale":   {fixturePrefix + "budgetfix.Stale"},
			// Skipped maps to a function that does not exist in the loaded
			// package: a schema hole reported against the document.
			"Skipped": {fixturePrefix + "budgetfix.Gone"},
			// Elsewhere maps into a package outside this load; the
			// analyzer must stay silent about code it cannot see.
			"Elsewhere": {"repro/internal/unloaded.Fn"},
			// Orphan (0 allocs/op) has no entry at all -> document finding.
		},
	}
}

func TestBudgetNoAllocGolden(t *testing.T) {
	pkgs := loadFixtures(t, "budgetfix")
	runGolden(t, "budget-noalloc.golden", budgetFixtureConfig(t), pkgs)
}

// TestBudgetDisabled pins that a nil budget map turns the analyzer off
// entirely — the driver's behavior when no BENCH.json is present.
func TestBudgetDisabled(t *testing.T) {
	pkgs := loadFixtures(t, "budgetfix")
	if got := Run(Config{}, pkgs); len(got) != 0 {
		t.Errorf("budget analyzer fired without budgets: %v", got)
	}
}

func TestLoadBudgets(t *testing.T) {
	budgets, err := LoadBudgets("testdata/bench/budgetfix.json")
	if err != nil {
		t.Fatal(err)
	}
	if budgets["Fast"] != 0 || budgets["Stale"] != 3 {
		t.Errorf("budgets = %v", budgets)
	}
	if _, err := LoadBudgets("testdata/bench/nosuch.json"); err == nil {
		t.Error("missing document loaded without error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBudgets(bad); err == nil {
		t.Error("document without schema_version loaded without error")
	}
}

// TestDeterminismScoping pins that the analyzer only fires inside the
// configured package set: the same fixture under an empty config is
// silent.
func TestDeterminismScoping(t *testing.T) {
	pkgs := loadFixtures(t, "determfix")
	if got := Run(Config{}, pkgs); len(got) != 0 {
		t.Errorf("out-of-scope package produced findings: %v", got)
	}
}

// TestCtxExempt pins that CtxExempt removes a package the prefixes would
// otherwise cover.
func TestCtxExempt(t *testing.T) {
	pkgs := loadFixtures(t, "ctxfix")
	cfg := Config{
		CtxPrefixes: []string{fixturePrefix + "ctxfix"},
		CtxExempt:   map[string]bool{fixturePrefix + "ctxfix": true},
	}
	if got := Run(cfg, pkgs); len(got) != 0 {
		t.Errorf("exempt package produced findings: %v", got)
	}
}

func TestParseSuppression(t *testing.T) {
	cases := []struct {
		text   string
		rules  []string
		reason string
		ok     bool
	}{
		{"//lint:ignore-cqla noalloc arena growth", []string{"noalloc"}, "arena growth", true},
		{"//lint:ignore-cqla noalloc", []string{"noalloc"}, "", true},
		{"//lint:ignore-cqla", nil, "", true},
		{"//lint:ignore-cqla determinism,noalloc one reason for both", []string{"determinism", "noalloc"}, "one reason for both", true},
		{"//lint:ignore-cqla determinism, noalloc trailing comma splits on spaces too", []string{"determinism"}, "noalloc trailing comma splits on spaces too", true},
		{"//lint:ignore-cqla noalloc crlf reason\r", []string{"noalloc"}, "crlf reason", true},
		{"// an ordinary comment", nil, "", false},
		{"//lint:ignore SA1019 the staticcheck spelling", nil, "", false},
		// A waiver inside a block comment is commentary, not a waiver.
		{"/* //lint:ignore-cqla noalloc hidden in a block comment */", nil, "", false},
	}
	for _, c := range cases {
		rules, reason, ok := parseSuppression(c.text)
		if strings.Join(rules, "|") != strings.Join(c.rules, "|") || reason != c.reason || ok != c.ok {
			t.Errorf("parseSuppression(%q) = %v, %q, %v; want %v, %q, %v",
				c.text, rules, reason, ok, c.rules, c.reason, c.ok)
		}
	}
}

// parseSynthetic builds a one-file Package straight from source text —
// no type checking — so suppression handling can be probed with inputs
// (CRLF endings) that a checked-in, gofmt-gated fixture cannot carry.
func parseSynthetic(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing synthetic source: %v", err)
	}
	return &Package{Path: "synthetic", Fset: fset, Files: []*ast.File{f}}
}

func TestSuppressionCRLF(t *testing.T) {
	src := "package p\r\n" +
		"\r\n" +
		"func f() {\r\n" +
		"\t//lint:ignore-cqla determinism windows checkout keeps CRLF\r\n" +
		"\tg()\r\n" +
		"}\r\n" +
		"\r\n" +
		"func g() {}\r\n"
	pkg := parseSynthetic(t, src)
	if bad := badSuppressions(pkg); len(bad) != 0 {
		t.Errorf("CRLF waiver parsed as malformed: %v", bad)
	}
	sups := collectSuppressions([]*Package{pkg})
	f := Finding{Rule: "determinism"}
	f.Pos.Filename = "synthetic.go"
	f.Pos.Line = 5
	if !sups.matches(f) {
		t.Error("CRLF waiver did not suppress the line below it")
	}
}

func TestSuppressionBlockComment(t *testing.T) {
	src := "package p\n" +
		"\n" +
		"func f() {\n" +
		"\t/* //lint:ignore-cqla determinism hidden in a block comment */\n" +
		"\tg()\n" +
		"}\n" +
		"\n" +
		"func g() {}\n"
	pkg := parseSynthetic(t, src)
	sups := collectSuppressions([]*Package{pkg})
	f := Finding{Rule: "determinism"}
	f.Pos.Filename = "synthetic.go"
	for _, line := range []int{4, 5} {
		f.Pos.Line = line
		if sups.matches(f) {
			t.Errorf("block-comment text suppressed a finding on line %d", line)
		}
	}
	if bad := badSuppressions(pkg); len(bad) != 0 {
		t.Errorf("block-comment text reported as malformed waiver: %v", bad)
	}
}

func TestSuppressionStackedAndMultiRule(t *testing.T) {
	src := "package p\n" +
		"\n" +
		"func f() {\n" +
		"\t//lint:ignore-cqla determinism stub one\n" +
		"\t//lint:ignore-cqla noalloc stub two\n" +
		"\t//lint:ignore-cqla ctxflow,obsguard one waiver, two rules\n" +
		"\tg()\n" +
		"}\n" +
		"\n" +
		"func g() {}\n"
	pkg := parseSynthetic(t, src)
	sups := collectSuppressions([]*Package{pkg})
	f := Finding{}
	f.Pos.Filename = "synthetic.go"
	f.Pos.Line = 7
	for _, rule := range []string{"determinism", "noalloc", "ctxflow", "obsguard"} {
		f.Rule = rule
		if !sups.matches(f) {
			t.Errorf("stacked waiver run did not suppress rule %q on the statement line", rule)
		}
	}
	// The run must not bleed past an interposed non-waiver line.
	f.Pos.Line = 10
	f.Rule = "determinism"
	if sups.matches(f) {
		t.Error("waiver run suppressed a finding beyond the statement it covers")
	}
}

func TestWriteJSON(t *testing.T) {
	f := Finding{Rule: "purity", Msg: "reads counter"}
	f.Pos.Filename = "/repo/a.go"
	f.Pos.Line = 12
	f.Pos.Column = 3
	var b strings.Builder
	if err := WriteJSON(&b, "/repo", []Finding{f}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SchemaVersion int `json:"schema_version"`
		Findings      []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.SchemaVersion != FindingsSchemaVersion {
		t.Errorf("schema_version = %d, want %d", doc.SchemaVersion, FindingsSchemaVersion)
	}
	if len(doc.Findings) != 1 || doc.Findings[0].File != "a.go" || doc.Findings[0].Line != 12 ||
		doc.Findings[0].Column != 3 || doc.Findings[0].Rule != "purity" || doc.Findings[0].Message != "reads counter" {
		t.Errorf("findings = %+v", doc.Findings)
	}

	b.Reset()
	if err := WriteJSON(&b, "/repo", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"findings": []`) {
		t.Errorf("empty run must still emit a complete document, got %s", b.String())
	}
}

func TestWriteGitHub(t *testing.T) {
	f := Finding{Rule: "goleak", Msg: "100% fire-and-forget,\nsecond line"}
	f.Pos.Filename = "/repo/pkg/a.go"
	f.Pos.Line = 9
	var b strings.Builder
	if err := WriteGitHub(&b, "/repo", []Finding{f}); err != nil {
		t.Fatal(err)
	}
	want := "::error file=pkg/a.go,line=9,title=cqlalint/goleak::100%25 fire-and-forget,%0Asecond line\n"
	if b.String() != want {
		t.Errorf("github format:\n got %q\nwant %q", b.String(), want)
	}
}

func TestStringRelative(t *testing.T) {
	f := Finding{Rule: "determinism", Msg: "m"}
	f.Pos.Filename = "/a/b/c.go"
	f.Pos.Line = 7
	if got := f.StringRelative("/a"); got != "b/c.go:7: [determinism] m" {
		t.Errorf("relative form = %q", got)
	}
	if got := f.StringRelative("/x/y"); got != "/a/b/c.go:7: [determinism] m" {
		t.Errorf("outside-dir form = %q", got)
	}
	if got := f.StringRelative(""); got != "/a/b/c.go:7: [determinism] m" {
		t.Errorf("empty-dir form = %q", got)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(".", "./testdata/src/nosuchpkg"); err == nil {
		t.Error("loading a nonexistent package succeeded")
	}

	// A package that fails to type-check comes back as a LoadError whose
	// diagnostics carry file:line positions — the exit-2 path CI logs.
	_, err := Load(".", "./testdata/src/brokenfix")
	le, ok := err.(*LoadError)
	if !ok {
		t.Fatalf("broken package returned %T (%v), want *LoadError", err, err)
	}
	if len(le.Diags) == 0 {
		t.Fatal("LoadError carries no diagnostics")
	}
	if d := le.Diags[0]; !strings.Contains(d, "brokenfix.go:6") || !strings.Contains(d, "undefinedType") {
		t.Errorf("diagnostic lacks position or cause: %q", d)
	}
	if !strings.Contains(le.Error(), "undefinedType") {
		t.Errorf("LoadError.Error() = %q", le.Error())
	}
}

func TestAnalyzersListed(t *testing.T) {
	want := []string{"determinism", "obsguard", "ctxflow", "noalloc", "purity", "goleak", "budget-noalloc"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc line", a.Name)
		}
	}
}
