// Package lint is the repository's static-analysis suite: vet-style
// analyzers over the package tree enforcing invariants the test suite can
// only spot-check dynamically — deterministic sweep output, nil-safe
// observability handles, context discipline, and the allocation budget of
// the proven hot paths.
//
// Seven analyzers ship today:
//
//   - determinism: packages that feed sweep output must not read the wall
//     clock or the global math/rand stream, and values accumulated from a
//     map iteration must be sorted before they escape.
//   - obsguard: every exported pointer-receiver method in internal/obs
//     begins with a nil-receiver guard (or forwards to one that does), and
//     code outside obs never reaches into an obs handle's fields.
//   - ctxflow: internal packages accept contexts from their callers
//     instead of minting context.Background()/TODO(), never pass a nil
//     context, and thread a received context to context-accepting callees.
//   - noalloc: functions annotated `//cqla:noalloc` are scanned for
//     known-allocating constructs, making the AllocsPerRun == 0 benchmarks
//     a compile-time property of every edit rather than a runtime spot
//     check.
//   - purity: no function reachable from an engine Evaluate entry point in
//     the analytic-model packages may touch package-level mutable state,
//     call into os/file IO, or mutate its receiver's maps outside a held
//     mutex (a call-graph walk; the documented memo types are exempt).
//   - goleak: every `go` statement in the serving and observability
//     packages must be cancellable — a context, a done-channel select, or
//     a WaitGroup with a reachable Wait.
//   - budget-noalloc: the `//cqla:noalloc` annotation set is reconciled
//     against a measured BENCH.json — every zero-alloc benchmark's
//     function carries the directive, and no mapped directive outlives a
//     benchmark that now allocates.
//
// Findings print as `file:line: [rule] message`. A finding is suppressed
// by a `//lint:ignore-cqla <rule> <reason>` comment on the same line or
// the line directly above (a run of consecutive waiver lines counts as
// one block, so stacked `-fix` stubs all apply); `<rule>` may be a
// comma-separated list and the reason is mandatory. The cmd/cqlalint
// driver runs the suite over `./...` and exits non-zero on any finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the rule (analyzer) that fired,
// and a human-readable message.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// StringRelative formats the finding as `file:line: [rule] message` with
// the file path relative to dir when possible (absolute otherwise).
func (f Finding) StringRelative(dir string) string {
	return fmt.Sprintf("%s:%d: [%s] %s", relName(dir, f.Pos.Filename), f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one named rule family run over every loaded package.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and suppression
	// comments.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(p *Pass)
	// Suite marks analyzers that need the whole load at once (call-graph
	// walks, cross-package reconciliation). They run exactly once per Run
	// with Pass.All populated, instead of once per package.
	Suite bool
}

// Analyzers is the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{determinism, obsGuard, ctxFlow, noAlloc, purity, goLeak, budgetNoAlloc}
}

// Config scopes the analyzers to concrete package paths. The zero value
// checks nothing; DefaultConfig returns the repository wiring, and tests
// point the same analyzers at fixture packages.
type Config struct {
	// DeterminismPkgs are the import paths of the packages that feed
	// sweep output, where the determinism analyzer applies.
	DeterminismPkgs map[string]bool
	// ObsPkg is the import path of the observability package whose
	// exported pointer-receiver methods must be nil-guarded and whose
	// handle fields are off-limits elsewhere.
	ObsPkg string
	// CtxPrefixes are import-path prefixes (library code) where the
	// ctxflow analyzer applies.
	CtxPrefixes []string
	// CtxExempt removes individual packages from the ctxflow scope (the
	// perf harness runs detached by design).
	CtxExempt map[string]bool
	// PurityPkgs are the analytic-model packages the purity call-graph
	// walk covers; calls leaving the set are trusted (they are modeled by
	// their own packages' rules).
	PurityPkgs map[string]bool
	// PurityEntries are the method names whose declarations in PurityPkgs
	// root the walk (Evaluate/EvaluateCompiled on the engines).
	PurityEntries map[string]bool
	// PurityExemptPkgs are packages whose functions the walk never
	// descends into — the documented memoization layer.
	PurityExemptPkgs map[string]bool
	// PurityExemptTypes are `path.Type` receiver types whose methods are
	// exempt (cqla.AdderPlan caches its own makespans by design).
	PurityExemptTypes map[string]bool
	// GoleakPkgs are the packages where every `go` statement must be
	// provably cancellable or WaitGroup-tracked.
	GoleakPkgs map[string]bool
	// Budgets maps benchmark name -> measured allocs/op, as loaded from a
	// BENCH.json by LoadBudgets. Nil disables the budget-noalloc analyzer.
	Budgets map[string]int64
	// BudgetPath is the document Budgets came from, used to position
	// findings that have no source location (a benchmark with no mapping).
	BudgetPath string
	// MeasuredFuncs maps benchmark name -> the fully qualified functions
	// the benchmark measures (perf.MeasuredFunctions in the repository
	// wiring). Symbols use the form "import/path.Func" or
	// "import/path.(*Type).Method".
	MeasuredFuncs map[string][]string
}

// DefaultConfig is the repository wiring of the suite.
func DefaultConfig() Config {
	return Config{
		DeterminismPkgs: map[string]bool{
			"repro/internal/explore": true,
			"repro/internal/arch":    true,
			"repro/internal/cqla":    true,
			"repro/internal/ecc":     true,
			"repro/internal/des":     true,
			"repro/internal/circuit": true,
			"repro/internal/qla":     true,
		},
		ObsPkg:      "repro/internal/obs",
		CtxPrefixes: []string{"repro/internal/"},
		// The perf harness measures library entry points from a detached
		// benchmark loop; minting its own contexts is its job.
		CtxExempt: map[string]bool{"repro/internal/perf": true},
		PurityPkgs: map[string]bool{
			"repro/internal/qla":  true,
			"repro/internal/cqla": true,
			"repro/internal/arch": true,
		},
		PurityEntries: map[string]bool{"Evaluate": true, "EvaluateCompiled": true},
		// internal/memo is the documented concurrency-safe cache layer;
		// AdderPlan memoizes its own makespans behind it.
		PurityExemptPkgs:  map[string]bool{"repro/internal/memo": true},
		PurityExemptTypes: map[string]bool{"repro/internal/cqla.AdderPlan": true},
		GoleakPkgs: map[string]bool{
			"repro/internal/explore": true,
			"repro/internal/arch":    true,
			"repro/internal/obs":     true,
		},
	}
}

// Pass hands one package to one analyzer and collects its findings.
type Pass struct {
	Pkg *Package
	// All is every package in the load, for Suite analyzers that walk
	// across package boundaries. Per-package analyzers may ignore it.
	All      []*Package
	Cfg      Config
	rule     string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// reportAt records a finding at an already-resolved position — for suite
// analyzers whose diagnostics may point outside any loaded source file
// (the BENCH.json document itself).
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:  pos,
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Run executes the full suite over the packages, drops suppressed
// findings, and returns the rest sorted by position.
func Run(cfg Config, pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			if a.Suite {
				continue
			}
			a.Run(&Pass{Pkg: pkg, All: pkgs, Cfg: cfg, rule: a.Name, findings: &findings})
		}
		findings = append(findings, badSuppressions(pkg)...)
	}
	if len(pkgs) > 0 {
		for _, a := range Analyzers() {
			if !a.Suite {
				continue
			}
			a.Run(&Pass{Pkg: pkgs[0], All: pkgs, Cfg: cfg, rule: a.Name, findings: &findings})
		}
	}
	sups := collectSuppressions(pkgs)
	kept := findings[:0]
	for _, f := range findings {
		if !sups.matches(f) {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return kept
}

// suppressionPrefix introduces an in-source waiver. The rule name and a
// non-empty reason are both required: an unexplained suppression is a
// finding of its own.
const suppressionPrefix = "//lint:ignore-cqla"

// suppressions maps file -> line -> rule names waived on that line. A
// comment on line L waives findings on L (trailing comment) and on the
// first non-waiver line below a run of consecutive waiver lines — so
// several stacked stubs (as `-fix` writes for multi-rule lines) all apply
// to the statement beneath them.
type suppressions map[string]map[int][]string

func (s suppressions) matches(f Finding) bool {
	lines := s[f.Pos.Filename]
	for _, rule := range lines[f.Pos.Line] {
		if rule == f.Rule {
			return true
		}
	}
	// Scan upward through the contiguous run of waiver-bearing lines
	// directly above the finding.
	for l := f.Pos.Line - 1; len(lines[l]) > 0; l-- {
		for _, rule := range lines[l] {
			if rule == f.Rule {
				return true
			}
		}
	}
	return false
}

func collectSuppressions(pkgs []*Package) suppressions {
	s := make(suppressions)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rules, _, ok := parseSuppression(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					lines := s[pos.Filename]
					if lines == nil {
						lines = make(map[int][]string)
						s[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], rules...)
				}
			}
		}
	}
	return s
}

// parseSuppression splits a suppression comment into its rule list and
// reason. The rule field may name several rules separated by commas; line
// endings are tolerated so CRLF sources parse identically. ok is false
// for comments that are not suppressions at all — including waiver-shaped
// text inside /* block comments */, which never suppresses; a malformed
// suppression (no rule or no reason) returns ok with an empty field.
func parseSuppression(text string) (rules []string, reason string, ok bool) {
	if !strings.HasPrefix(text, suppressionPrefix) {
		return nil, "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, suppressionPrefix))
	ruleField, reason, _ := strings.Cut(rest, " ")
	for _, r := range strings.Split(ruleField, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	return rules, strings.TrimSpace(reason), true
}

// badSuppressions flags suppression comments missing a rule or a reason —
// a waiver that does not say what it waives, or why, pins nothing.
func badSuppressions(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rules, reason, ok := parseSuppression(c.Text)
				if !ok || (len(rules) > 0 && reason != "") {
					continue
				}
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(c.Pos()),
					Rule: "suppress",
					Msg:  "suppression must name a rule and give a reason: //lint:ignore-cqla <rule> <reason>",
				})
			}
		}
	}
	return out
}

// noallocDirective marks a function whose body must not allocate in the
// steady state; the noalloc analyzer checks every function carrying it.
const noallocDirective = "//cqla:noalloc"

// hasNoallocDirective reports whether the function declaration carries
// the `//cqla:noalloc` directive in its doc comment.
func hasNoallocDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == noallocDirective {
			return true
		}
	}
	return false
}
