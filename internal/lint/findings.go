package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// FindingsSchemaVersion versions the `-format json` document. Consumers
// reject documents with a version they do not know.
const FindingsSchemaVersion = 1

// jsonFinding is one finding in the machine-readable document. The field
// set is the stable contract: file (relative to the invocation directory
// when possible), 1-based line and column, rule, and message.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column,omitempty"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// WriteJSON renders the findings as the versioned JSON document:
//
//	{"schema_version": 1, "findings": [{"file", "line", "column", "rule", "message"}, ...]}
//
// File paths are made relative to dir when possible, matching the text
// format. An empty findings list still produces a complete document.
func WriteJSON(w io.Writer, dir string, findings []Finding) error {
	doc := struct {
		SchemaVersion int           `json:"schema_version"`
		Findings      []jsonFinding `json:"findings"`
	}{SchemaVersion: FindingsSchemaVersion, Findings: make([]jsonFinding, 0, len(findings))}
	for _, f := range findings {
		doc.Findings = append(doc.Findings, jsonFinding{
			File:    relName(dir, f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteGitHub renders the findings as GitHub Actions workflow commands
// (`::error file=…,line=…`), so a CI run annotates the offending lines on
// the PR diff instead of burying them in a log.
func WriteGitHub(w io.Writer, dir string, findings []Finding) error {
	for _, f := range findings {
		_, err := fmt.Fprintf(w, "::error file=%s,line=%d,title=cqlalint/%s::%s\n",
			githubEscapeProperty(relName(dir, f.Pos.Filename)), f.Pos.Line,
			githubEscapeProperty(f.Rule), githubEscapeData(f.Msg))
		if err != nil {
			return err
		}
	}
	return nil
}

// relName is the path-relativization shared by every output format: the
// path relative to dir when it is inside dir, unchanged otherwise.
func relName(dir, name string) string {
	if dir == "" {
		return name
	}
	rel, err := filepath.Rel(dir, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}

// githubEscapeData escapes a workflow-command message per the Actions
// toolkit rules.
func githubEscapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// githubEscapeProperty escapes a workflow-command property value, which
// additionally reserves ':' and ','.
func githubEscapeProperty(s string) string {
	s = githubEscapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
