// Package obsusefix consumes obsfix handles from the outside, where
// only the nil-safe method surface is allowed.
package obsusefix

import "repro/internal/lint/testdata/src/obsfix"

// Read reaches into the handle's fields: panics on the nil handle.
func Read(h *obsfix.Handle) int {
	return h.Count
}

// ReadSafe goes through the guarded method.
func ReadSafe(h *obsfix.Handle) int {
	return h.Good()
}
