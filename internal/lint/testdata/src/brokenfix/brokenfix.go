// Package brokenfix deliberately fails to type-check: the loader must
// surface the failure as a positioned diagnostic, not one opaque string.
package brokenfix

// F names a type that does not exist.
func F() undefinedType {
	return nil
}
