// Package determfix exercises the determinism analyzer: wall-clock
// reads, draws from the global math/rand stream, and map-iteration order
// escaping into a slice — all constructs go vet and staticcheck accept
// without comment.
package determfix

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock on the sweep path.
func Stamp() time.Time {
	return time.Now()
}

// Elapsed reads the wall clock through time.Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// Draw pulls from the process-global math/rand stream.
func Draw() int {
	return rand.Intn(6)
}

// DrawSeeded threads a seeded generator: the approved pattern.
func DrawSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Keys leaks map-iteration order into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys sorts before the slice escapes: allowed.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Inner appends into a slice that cannot outlive the iteration.
func Inner(m map[string]int) int {
	total := 0
	for k := range m {
		row := []byte(nil)
		row = append(row, k...)
		total += len(row)
	}
	return total
}

// Waived demonstrates an explained suppression.
func Waived() time.Time {
	//lint:ignore-cqla determinism fixture demonstrating an explained waiver
	return time.Now()
}
