// Package suppressfix exercises the suppression-comment grammar: a
// waiver must name a rule and give a reason.
package suppressfix

// Covered carries two malformed waivers — one missing its reason, one
// missing everything.
func Covered() int {
	//lint:ignore-cqla noalloc
	n := 1
	//lint:ignore-cqla
	n++
	return n
}
