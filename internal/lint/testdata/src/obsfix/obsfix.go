// Package obsfix is an obs-shaped fixture: nil-safe handles whose
// exported pointer-receiver methods must begin with a nil guard (or
// forward to one that does).
package obsfix

// Handle is a nil-safe observability handle; nil is the disabled mode.
type Handle struct {
	// Count is exported only so the companion fixture can demonstrate
	// the field-access rule.
	Count int
}

// Good begins with the required guard.
func (h *Handle) Good() int {
	if h == nil {
		return 0
	}
	return h.Count
}

// Forward is a single-statement delegation and inherits Good's guard.
func (h *Handle) Forward() int {
	return h.Good()
}

// Bad dereferences the receiver unguarded.
func (h *Handle) Bad() int {
	return h.Count
}

// Unnamed cannot guard a receiver it does not name.
func (*Handle) Unnamed() {}

// stamp's exported method has a value receiver: out of scope.
type stamp struct{ n int }

// N cannot be called on a nil receiver in the first place.
func (s stamp) N() int { return s.n }

// bump is unexported: internal callers own the nil check.
func (h *Handle) bump() int { return h.Count }
