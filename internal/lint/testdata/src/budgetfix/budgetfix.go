// Package budgetfix exercises the budget-aware noalloc analyzer against
// testdata/bench/budgetfix.json: directives and measurements must agree
// in both directions, and helpers without benchmarks stay unconstrained.
package budgetfix

// Fast is measured at 0 allocs/op and carries the directive: consistent.
//
//cqla:noalloc
func Fast(x int) int {
	return x * 2
}

// Missing is measured at 0 allocs/op but lacks the directive — the
// regression the analyzer exists to catch.
func Missing(x int) int {
	return x + 1
}

// Stale carries the directive while its benchmark now allocates; either
// the measurement regressed or the annotation is stale.
//
//cqla:noalloc
func Stale(x int) int {
	return x - 1
}

// Unmeasured carries the directive with no benchmark mapping — allowed:
// internal helpers are proven through their callers' benchmarks, and the
// body-level noalloc analyzer still covers them.
//
//cqla:noalloc
func Unmeasured(x int) int {
	return -x
}
