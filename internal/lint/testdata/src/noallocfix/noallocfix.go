// Package noallocfix exercises the noalloc analyzer: every construct it
// flags, and every reuse idiom it deliberately allows.
package noallocfix

import "fmt"

type ring struct {
	buf []int
}

type point struct {
	x, y int
}

func sink(v interface{}) { _ = v }

// Push self-appends into arena storage: the approved idiom.
//
//cqla:noalloc
func (r *ring) Push(v int) {
	r.buf = append(r.buf, v)
}

// Fill appends into a caller-provided buffer: allowed.
//
//cqla:noalloc
func Fill(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

// Reuse rewinds an existing backing array: allowed.
//
//cqla:noalloc
func Reuse(buf []int, n int) []int {
	buf = append(buf[:0], n)
	return buf
}

// Prealloc appends into a local with explicit capacity.
//
//cqla:noalloc
func Prealloc(n int) []int {
	//lint:ignore-cqla noalloc one-time setup buffer for the fixture
	buf := make([]int, 0, 8)
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

// Grow appends into storage with no pre-allocated capacity.
//
//cqla:noalloc
func Grow(n int) []int {
	var s []int
	s = append(s, n)
	return s
}

// Divert appends one slice onto another.
//
//cqla:noalloc
func Divert(a, b []int) []int {
	a = append(b, 1)
	return a
}

// Escape never assigns the append result back.
//
//cqla:noalloc
func Escape(buf []int, n int) int {
	return len(append(buf, n))
}

// Allocs collects the unconditional allocators.
//
//cqla:noalloc
func Allocs(n int) {
	_ = make([]int, n)
	_ = new(int)
	_ = []int{n}
	_ = map[string]int{}
	_ = &point{n, n}
	go func() {}()
}

// Format allocates on every path.
//
//cqla:noalloc
func Format(n int) string {
	return fmt.Sprintf("%d", n)
}

// Concat allocates for the joined string; constant folding is exempt.
//
//cqla:noalloc
func Concat(a, b string) string {
	const tag = "x" + "y"
	_ = tag
	return a + b
}

// Convert copies between string and byte-slice storage.
//
//cqla:noalloc
func Convert(s string, b []byte) (int, int) {
	return len([]byte(s)), len(string(b))
}

// Box passes a concrete value where the callee takes an interface; the
// nil literal and the failure path are exempt.
//
//cqla:noalloc
func Box(n int) {
	sink(n)
	sink(nil)
	if n < 0 {
		panic("negative")
	}
}

// Capture closes over an enclosing variable.
//
//cqla:noalloc
func Capture(n int) func() int {
	return func() int { return n }
}

// unchecked carries no directive: the same constructs pass unflagged.
func unchecked(n int) string {
	_ = make([]int, n)
	return fmt.Sprintf("%d", n)
}
