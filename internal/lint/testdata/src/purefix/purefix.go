// Package purefix exercises the purity analyzer: impure state reachable
// from the Evaluate entry points is flagged, effectively-constant
// sentinels and lock-guarded memoization are allowed, and code the walk
// cannot reach stays unflagged however impure it is.
package purefix

import (
	"errors"
	"os"
	"sync"
)

// counter is assigned below, so any access from the evaluation path is a
// hidden input or output of the model.
var counter int

// errNegative is assigned only at its declaration — an effectively
// constant sentinel the walk must allow.
var errNegative = errors.New("purefix: negative input")

// totals is a package-level sync primitive: shared state by construction,
// even though nothing ever reassigns the variable itself.
var totals sync.Mutex

// Engine is the fixture's model; Evaluate/EvaluateCompiled root the walk.
type Engine struct {
	memo map[int]float64
	mu   sync.Mutex
}

// Evaluate commits one of each direct impurity, then exercises the
// allowed idioms through memoized and uses.
func (e *Engine) Evaluate(n int) (float64, error) {
	if n < 0 {
		return 0, errNegative // allowed: read-only sentinel
	}
	counter++                // write to package state
	base := float64(counter) // read of mutated package state
	e.memo[n] = base         // receiver map write outside any lock
	totals.Lock()            // use of a package-level sync primitive
	totals.Unlock()
	return base + e.uses(&Plan{ms: map[int]int{}}, n), nil
}

// EvaluateCompiled reaches an impurity only transitively.
func (e *Engine) EvaluateCompiled(n int) float64 {
	return indirect(n)
}

// helper is one call deep: its environment read is still a finding.
func helper(n int) float64 {
	if os.Getenv("PUREFIX_SCALE") != "" {
		return 2 * float64(n)
	}
	return float64(n)
}

// indirect makes the walk two levels deep before the impurity.
func indirect(n int) float64 {
	return helper(n) + 1
}

// memoized is the allowed idiom: the receiver map write happens under the
// receiver's own mutex.
func (e *Engine) memoized(n int) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.memo[n]; ok {
		return v
	}
	e.memo[n] = float64(n * n)
	return e.memo[n]
}

// uses ties the allowed memoization and the exempt Plan into the walk.
func (e *Engine) uses(p *Plan, n int) float64 {
	p.Put(n, n)
	return e.memoized(n)
}

// Plan is the exempt memoization type: its map writes are by design, and
// the walk must not descend into its methods.
type Plan struct {
	ms map[int]int
}

// Put mutates freely; the exemption covers it.
func (p *Plan) Put(k, v int) {
	p.ms[k] = v
}

// Evaluate on Plan matches an entry name, but the type exemption must
// keep it out of the walk's roots.
func (p *Plan) Evaluate(k int) int {
	counter = k // would be a finding if the walk started here
	return p.ms[k]
}

// Reset does everything the analyzer forbids, but no entry point reaches
// it: the walk's precision is that it stays silent here.
func Reset() {
	counter = 0
	os.Setenv("PUREFIX_SCALE", "")
	totals.Lock()
	totals.Unlock()
}
