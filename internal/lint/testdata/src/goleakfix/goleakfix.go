// Package goleakfix exercises the goleak analyzer: fire-and-forget
// goroutines are flagged, while every accepted cancellation signal —
// context flow, done-channel selects and receives, channel draining, and
// WaitGroup tracking with a reachable Wait — stays silent.
package goleakfix

import (
	"context"
	"sync"
)

// Leak is the plain offense: nothing can ever stop this goroutine.
func Leak() {
	go func() {
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// LeakCall launches a same-package function with no cancellation signal;
// the analyzer resolves the declaration and flags the statement.
func LeakCall() {
	go spin()
}

func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

// WithContextArg passes a context into the goroutine explicitly.
func WithContextArg(ctx context.Context) {
	go func(c context.Context) {
		<-c.Done()
	}(ctx)
}

// CapturesContext references the enclosing context from the body.
func CapturesContext(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// SelectsQuit selects on a done channel; closing it ends the goroutine.
func SelectsQuit(quit chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-quit:
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

// Drains ranges over a channel; the sender closing it is the signal.
func Drains(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// Tracked is WaitGroup-tracked, and the Wait below is in this package.
func Tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// server mirrors the jobs-manager shape: the goroutine body is a method
// whose cancellation comes from a context field on the receiver.
type server struct {
	ctx context.Context
	wg  sync.WaitGroup
}

// Run resolves `go s.loop()` to the method declaration below.
func (s *server) Run() {
	go s.loop()
}

func (s *server) loop() {
	<-s.ctx.Done()
}

// Joiner is the goroutine that performs the Wait itself — the shutdown
// notifier idiom.
func (s *server) Joiner(done chan struct{}) {
	go func() {
		s.wg.Wait()
		close(done)
	}()
}
