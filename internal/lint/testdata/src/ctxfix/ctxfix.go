// Package ctxfix exercises the ctxflow analyzer: minted root contexts,
// nil contexts handed to callees, and context parameters that never
// reach the context-accepting calls below them.
package ctxfix

import "context"

type runner struct {
	ctx context.Context
}

func work(ctx context.Context) {
	_ = ctx
}

func workv(n int, ctxs ...context.Context) {
	_, _ = n, ctxs
}

// Mint severs cancellation by making a root context.
func Mint() {
	work(context.Background())
}

// Todo is the same defect spelled TODO.
func Todo() {
	work(context.TODO())
}

// PassNil panics far from here, when the callee reads the context.
func PassNil() {
	work(nil)
}

// PassNilVariadic exercises the variadic parameter tail.
func PassNilVariadic() {
	workv(1, nil)
}

// Detached takes a context and then runs its callee off a stored one.
func (r *runner) Detached(ctx context.Context) {
	work(r.ctx)
}

// Threaded forwards its context: the approved shape.
func Threaded(ctx context.Context) {
	work(ctx)
}

// NoCallees has a dead context parameter but no context-accepting
// callee; interface satisfaction tolerates the dead parameter.
func NoCallees(ctx context.Context, n int) int {
	return n + 1
}

// Waived documents deliberate detachment.
func Waived() {
	//lint:ignore-cqla ctxflow fixture demonstrating documented detachment
	work(context.Background())
}
