package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package: the unit every
// analyzer operates on.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file in the load.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the expression types, uses/defs and selections the
	// analyzers resolve against.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Name       string
	Error      *listedError
}

// listedError is go list's own diagnostic for a package it could not
// resolve (missing directory, no Go files).
type listedError struct {
	Pos string
	Err string
}

// LoadError reports load failures — parse errors, type-check errors, and
// unresolvable patterns — as positioned diagnostics so a CI log points at
// the offending line instead of printing one opaque string.
type LoadError struct {
	// Diags are "file:line:col: message" strings in source order.
	Diags []string
}

func (e *LoadError) Error() string {
	switch len(e.Diags) {
	case 0:
		return "lint: load failed"
	case 1:
		return "lint: " + e.Diags[0]
	}
	return fmt.Sprintf("lint: %d load errors:\n  %s", len(e.Diags), strings.Join(e.Diags, "\n  "))
}

// Load resolves the patterns with the go tool and returns the matched
// packages parsed and type-checked. Dependencies — including the standard
// library — are imported from compiler export data produced by
// `go list -export`, so only the matched packages themselves are parsed;
// the loader needs nothing beyond the standard library and an installed
// go toolchain.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadTags(dir, "", patterns...)
}

// LoadTags is Load with a build-tag list (comma-separated, as the go
// tool's -tags flag takes it) applied to package resolution, so trees
// with tag-gated files lint the same configuration they build.
func LoadTags(dir, tags string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, tags, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var roots []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			roots = append(roots, lp)
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	var diags []string
	pkgs := make([]*Package, 0, len(roots))
	for _, lp := range roots {
		if lp.Error != nil && len(lp.GoFiles) == 0 {
			// Nothing to parse: surface go list's own diagnostic. (A root
			// with Go files proceeds to the parser and type-checker, whose
			// positions beat go list's summary.)
			diags = append(diags, listDiag(lp))
			continue
		}
		pkg, checkDiags := check(fset, imp, lp)
		if len(checkDiags) > 0 {
			diags = append(diags, checkDiags...)
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	if len(diags) > 0 {
		return nil, &LoadError{Diags: diags}
	}
	return pkgs, nil
}

// listDiag formats a go list package error, keeping its position prefix
// when one exists.
func listDiag(lp *listedPackage) string {
	msg := strings.TrimSpace(lp.Error.Err)
	if lp.Error.Pos != "" {
		return lp.Error.Pos + ": " + msg
	}
	return lp.ImportPath + ": " + msg
}

// goList shells out to `go list -e -deps -export -json`, which both
// enumerates the package graph and materializes export data for every
// dependency in the build cache. -e keeps broken root packages in the
// output so their files reach our parser and type-checker, which produce
// positioned diagnostics.
func goList(dir, tags string, patterns []string) ([]*listedPackage, error) {
	args := []string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Name,Error",
	}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// check parses and type-checks one listed package. On failure it returns
// the positioned diagnostics instead of a package.
func check(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, []string) {
	var diags []string
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if el, ok := err.(scanner.ErrorList); ok {
				for _, e := range el {
					diags = append(diags, fmt.Sprintf("%s: %s", e.Pos, e.Msg))
				}
			} else {
				diags = append(diags, fmt.Sprintf("parsing %s: %v", name, err))
			}
			continue
		}
		files = append(files, f)
	}
	if len(diags) > 0 {
		return nil, diags
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp, Error: func(err error) {
		if te, ok := err.(types.Error); ok {
			diags = append(diags, fmt.Sprintf("%s: %s", te.Fset.Position(te.Pos), te.Msg))
			return
		}
		diags = append(diags, err.Error())
	}}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil && len(diags) == 0 {
		diags = append(diags, fmt.Sprintf("type-checking %s: %v", lp.ImportPath, err))
	}
	if len(diags) > 0 {
		return nil, diags
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
