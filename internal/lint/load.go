package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package: the unit every
// analyzer operates on.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file in the load.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the expression types, uses/defs and selections the
	// analyzers resolve against.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Name       string
}

// Load resolves the patterns with the go tool and returns the matched
// packages parsed and type-checked. Dependencies — including the standard
// library — are imported from compiler export data produced by
// `go list -export`, so only the matched packages themselves are parsed;
// the loader needs nothing beyond the standard library and an installed
// go toolchain.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var roots []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			roots = append(roots, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*Package, 0, len(roots))
	for _, lp := range roots {
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList shells out to `go list -deps -export -json`, which both
// enumerates the package graph and materializes export data for every
// dependency in the build cache.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Name",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
