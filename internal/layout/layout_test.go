package layout

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ecc"
	"repro/internal/phys"
)

func build(t *testing.T, bits, blocks int, hierarchy bool) *Floorplan {
	t.Helper()
	f, err := Build(Config{
		Code:          ecc.BaconShor(),
		Params:        phys.Projected(),
		InputBits:     bits,
		ComputeBlocks: blocks,
		Hierarchy:     hierarchy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBuildFlat(t *testing.T) {
	f := build(t, 256, 36, false)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Regions) != 2 {
		t.Fatalf("flat floorplan has %d regions, want 2", len(f.Regions))
	}
	if _, ok := f.Region(Memory); !ok {
		t.Error("missing memory region")
	}
	if _, ok := f.Region(Cache); ok {
		t.Error("flat floorplan should not have a cache")
	}
}

func TestBuildHierarchy(t *testing.T) {
	f := build(t, 256, 36, true)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Regions) != 5 {
		t.Fatalf("hierarchy floorplan has %d regions, want 5", len(f.Regions))
	}
	// Strip order: memory first, level-2 compute last.
	if f.Regions[0].Kind != Memory || f.Regions[len(f.Regions)-1].Kind != ComputeL2 {
		t.Error("strip ordering wrong")
	}
	// The level-2 compute region is the largest strip (its 1:2 ancilla
	// provisioning is what the dense memory avoids paying), with memory
	// second.
	mem, _ := f.Region(Memory)
	l2, _ := f.Region(ComputeL2)
	if l2.AreaMM2() <= mem.AreaMM2() {
		t.Error("level-2 compute should out-size memory at this working point")
	}
	if mem.AreaMM2() < 0.1*f.TotalAreaMM2() {
		t.Errorf("memory share = %.2f of die, implausibly small", mem.AreaMM2()/f.TotalAreaMM2())
	}
}

func TestDieAspect(t *testing.T) {
	f := build(t, 1024, 100, true)
	aspect := f.WidthMM / f.HeightMM
	if aspect < 1.5 || aspect > 2.5 {
		t.Errorf("die aspect = %.2f, want ~2", aspect)
	}
}

func TestAreasMatchConfiguredModel(t *testing.T) {
	// The floorplan realizes exactly the cqla area model.
	f := build(t, 256, 36, false)
	if math.Abs(f.TotalAreaMM2()-f.WidthMM*f.HeightMM)/f.TotalAreaMM2() > 1e-6 {
		t.Error("strips do not tile the die")
	}
}

func TestHierarchyAddsArea(t *testing.T) {
	flat := build(t, 256, 36, false)
	hier := build(t, 256, 36, true)
	if hier.TotalAreaMM2() <= flat.TotalAreaMM2() {
		t.Error("hierarchy should add area")
	}
	// But not much: the level-1 tier is cheap (its qubits are 20x smaller).
	if hier.TotalAreaMM2() > 1.35*flat.TotalAreaMM2() {
		t.Errorf("hierarchy overhead = %.2fx", hier.TotalAreaMM2()/flat.TotalAreaMM2())
	}
}

func TestASCIIRendering(t *testing.T) {
	f := build(t, 256, 36, true)
	art := f.ASCII(60)
	for _, glyph := range []string{"M", "T", "$", "1", "2"} {
		if !strings.Contains(art, glyph) {
			t.Errorf("ASCII missing glyph %q:\n%s", glyph, art)
		}
	}
	if !strings.Contains(art, "mm²") {
		t.Error("ASCII missing legend")
	}
	// Tiny width still renders.
	if f.ASCII(3) == "" {
		t.Error("clamped width should render")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := Build(Config{Code: ecc.Steane(), Params: phys.Projected(), InputBits: 0, ComputeBlocks: 4}); err == nil {
		t.Error("zero bits should fail")
	}
}

// Property: floorplans validate for any sane configuration, and area grows
// monotonically with input size.
func TestFloorplanValidityProperty(t *testing.T) {
	f := func(bitsSeed, blocksSeed uint8, hierarchy bool) bool {
		bits := 16 + int(bitsSeed)%1009
		blocks := 1 + int(blocksSeed)%150
		fp, err := Build(Config{
			Code:          ecc.Steane(),
			Params:        phys.Projected(),
			InputBits:     bits,
			ComputeBlocks: blocks,
			Hierarchy:     hierarchy,
		})
		if err != nil {
			return false
		}
		return fp.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRegionKindString(t *testing.T) {
	if Memory.String() != "memory (L2)" || Cache.String() != "cache (L1)" {
		t.Error("region names wrong")
	}
	if RegionKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}
