// Package layout produces the CQLA's physical floorplan: the arrangement of
// the dense level-2 memory, the code-transfer networks, the level-1 cache,
// and the level-1 and level-2 compute regions on the ion-trap substrate
// (Figure 3(b) of the paper). The floorplan realizes the area model of
// internal/cqla as placed rectangles, checks that regions tile without
// overlap, and renders an ASCII schematic for inspection.
package layout

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cqla"
	"repro/internal/ecc"
	"repro/internal/gen"
	"repro/internal/phys"
)

// RegionKind identifies a floorplan region.
type RegionKind int

const (
	// Memory is the dense level-2 storage region.
	Memory RegionKind = iota
	// Transfer is the code-teleportation strip between encoding levels.
	Transfer
	// Cache is the level-1 staging region.
	Cache
	// ComputeL1 is the fast level-1 compute region.
	ComputeL1
	// ComputeL2 is the level-2 compute region.
	ComputeL2
)

var regionNames = map[RegionKind]string{
	Memory:    "memory (L2)",
	Transfer:  "transfer network",
	Cache:     "cache (L1)",
	ComputeL1: "compute (L1)",
	ComputeL2: "compute (L2)",
}

var regionGlyphs = map[RegionKind]byte{
	Memory:    'M',
	Transfer:  'T',
	Cache:     '$',
	ComputeL1: '1',
	ComputeL2: '2',
}

// String names the region kind.
func (k RegionKind) String() string {
	if s, ok := regionNames[k]; ok {
		return s
	}
	return fmt.Sprintf("layout.RegionKind(%d)", int(k))
}

// Region is a placed rectangle in millimetres.
type Region struct {
	Kind       RegionKind
	X, Y, W, H float64
}

// AreaMM2 returns the region's area.
func (r Region) AreaMM2() float64 { return r.W * r.H }

// Floorplan is a complete CQLA placement.
type Floorplan struct {
	WidthMM, HeightMM float64
	Regions           []Region
}

// Config selects what to floorplan.
type Config struct {
	Code          *ecc.Code
	Params        phys.Params
	InputBits     int // modular-exponentiation width; sets memory size
	ComputeBlocks int
	Hierarchy     bool // include the level-1 tier
}

// Build computes the floorplan: regions are laid out as vertical strips in
// memory-hierarchy order (memory, transfer, cache, level-1 compute,
// level-2 compute), sharing a common height chosen to keep the die roughly
// 2:1. Strip widths follow each region's area in the cqla model.
func Build(cfg Config) (*Floorplan, error) {
	if cfg.Code == nil || cfg.InputBits < 1 || cfg.ComputeBlocks < 1 {
		return nil, fmt.Errorf("layout: invalid config %+v", cfg)
	}
	m := cqla.New(cqla.Config{
		Code:              cfg.Code,
		Params:            cfg.Params,
		ComputeBlocks:     cfg.ComputeBlocks,
		ParallelTransfers: 10,
	})
	qubits := gen.NewModExp(cfg.InputBits).LogicalQubits()

	regionArea := map[RegionKind]float64{
		Memory:    float64(qubits) * m.MemoryTileAreaMM2(),
		ComputeL2: m.ComputeAreaMM2(),
	}
	if cfg.Hierarchy {
		l1Qubit := cfg.Code.AreaMM2(1, cfg.Params)
		l1Blocks := m.Level1Blocks()
		regionArea[ComputeL1] = float64(l1Blocks) * float64(cqla.BlockDataQubits+cqla.BlockAncillaQubits) * l1Qubit * cqla.ComputeInterconnectFactor
		regionArea[Cache] = cqla.CacheFactor * float64(l1Blocks*cqla.BlockDataQubits) * l1Qubit
		regionArea[Transfer] = float64(m.Config().ParallelTransfers) * (cfg.Code.AreaMM2(2, cfg.Params) + l1Qubit)
	}

	total := 0.0
	for _, a := range regionArea {
		total += a
	}
	// Common strip height for a ~2:1 die.
	height := math.Sqrt(total / 2)
	fp := &Floorplan{HeightMM: height}
	order := []RegionKind{Memory, Transfer, Cache, ComputeL1, ComputeL2}
	x := 0.0
	for _, kind := range order {
		area, ok := regionArea[kind]
		if !ok || area == 0 {
			continue
		}
		w := area / height
		fp.Regions = append(fp.Regions, Region{Kind: kind, X: x, Y: 0, W: w, H: height})
		x += w
	}
	fp.WidthMM = x
	return fp, nil
}

// TotalAreaMM2 returns the sum of region areas.
func (f *Floorplan) TotalAreaMM2() float64 {
	sum := 0.0
	for _, r := range f.Regions {
		sum += r.AreaMM2()
	}
	return sum
}

// Region returns the placed rectangle of a kind, if present.
func (f *Floorplan) Region(kind RegionKind) (Region, bool) {
	for _, r := range f.Regions {
		if r.Kind == kind {
			return r, true
		}
	}
	return Region{}, false
}

// Validate checks structural soundness: positive dimensions, regions within
// the die, and no pairwise overlap.
func (f *Floorplan) Validate() error {
	for i, r := range f.Regions {
		if r.W <= 0 || r.H <= 0 {
			return fmt.Errorf("layout: region %v has non-positive dimensions", r.Kind)
		}
		if r.X < -1e-9 || r.Y < -1e-9 || r.X+r.W > f.WidthMM+1e-9 || r.Y+r.H > f.HeightMM+1e-9 {
			return fmt.Errorf("layout: region %v escapes the die", r.Kind)
		}
		for j := i + 1; j < len(f.Regions); j++ {
			o := f.Regions[j]
			if r.X < o.X+o.W-1e-9 && o.X < r.X+r.W-1e-9 &&
				r.Y < o.Y+o.H-1e-9 && o.Y < r.Y+r.H-1e-9 {
				return fmt.Errorf("layout: regions %v and %v overlap", r.Kind, o.Kind)
			}
		}
	}
	return nil
}

// ASCII renders the floorplan as a fixed-width schematic with one glyph per
// region (M memory, T transfer, $ cache, 1/2 compute levels), plus a
// legend with dimensions.
func (f *Floorplan) ASCII(cols int) string {
	if cols < 10 {
		cols = 10
	}
	rows := cols / 4
	if rows < 4 {
		rows = 4
	}
	grid := make([][]byte, rows)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", cols))
	}
	for _, r := range f.Regions {
		x0 := int(r.X / f.WidthMM * float64(cols))
		x1 := int((r.X + r.W) / f.WidthMM * float64(cols))
		if x1 <= x0 {
			x1 = x0 + 1
		}
		if x1 > cols {
			x1 = cols
		}
		for y := 0; y < rows; y++ {
			for x := x0; x < x1; x++ {
				grid[y][x] = regionGlyphs[r.Kind]
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "die: %.1f x %.1f mm (%.0f mm²)\n", f.WidthMM, f.HeightMM, f.TotalAreaMM2())
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	for _, r := range f.Regions {
		fmt.Fprintf(&sb, "%c %-18s %7.1f mm² (%.1f x %.1f mm)\n",
			regionGlyphs[r.Kind], r.Kind, r.AreaMM2(), r.W, r.H)
	}
	return sb.String()
}
