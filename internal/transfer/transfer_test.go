package transfer

import (
	"testing"
	"time"

	"repro/internal/ecc"
)

func sec(f float64) time.Duration { return time.Duration(f * float64(time.Second)) }

func TestTable3Matrix(t *testing.T) {
	// Every cell of Table 3.
	encs := Encodings()
	want := [4][4]float64{
		{0, 0.6, 0.02, 0.2},
		{1.3, 0, 1.3, 1.5},
		{0.01, 0.5, 0, 0.1},
		{0.4, 0.9, 0.4, 0},
	}
	for i, from := range encs {
		for j, to := range encs {
			got, err := Latency(from, to)
			if err != nil {
				t.Fatal(err)
			}
			if got != sec(want[i][j]) {
				t.Errorf("%v -> %v = %v, want %v s", from, to, got, want[i][j])
			}
		}
	}
}

func TestDiagonalFree(t *testing.T) {
	for _, e := range Encodings() {
		if d := MustLatency(e, e); d != 0 {
			t.Errorf("%v -> %v should be free, got %v", e, e, d)
		}
	}
}

func TestDownwardTransfersCostMore(t *testing.T) {
	// Leaving level 2 requires preparing and verifying the large encoded
	// cat state at the source; Table 3 shows every L2 -> L1 transfer
	// costing more than the corresponding L1 -> L2 direction's reverse
	// within the same code.
	st := Enc(ecc.Steane(), 0) // placeholder; build explicit encodings below
	_ = st
	s1 := Encoding{Code: "[[7,1,3]]", Level: 1}
	s2 := Encoding{Code: "[[7,1,3]]", Level: 2}
	b1 := Encoding{Code: "[[9,1,3]]", Level: 1}
	b2 := Encoding{Code: "[[9,1,3]]", Level: 2}
	if MustLatency(s2, s1) <= MustLatency(s1, s2) {
		t.Error("Steane L2->L1 should cost more than L1->L2")
	}
	if MustLatency(b2, b1) <= MustLatency(b1, b2) {
		t.Error("Bacon-Shor L2->L1 should cost more than L1->L2")
	}
}

func TestSameLevelCrossCodeIsCheap(t *testing.T) {
	s1 := Encoding{Code: "[[7,1,3]]", Level: 1}
	b1 := Encoding{Code: "[[9,1,3]]", Level: 1}
	if MustLatency(s1, b1) > sec(0.05) || MustLatency(b1, s1) > sec(0.05) {
		t.Error("L1 cross-code transfers should be tens of milliseconds")
	}
}

func TestBaconShorRoundTripCheaperThanSteane(t *testing.T) {
	// The hierarchy's per-qubit price: demote to L1 and promote back.
	st := RoundTrip(Encoding{Code: "[[7,1,3]]", Level: 2}, Encoding{Code: "[[7,1,3]]", Level: 1})
	bs := RoundTrip(Encoding{Code: "[[9,1,3]]", Level: 2}, Encoding{Code: "[[9,1,3]]", Level: 1})
	if st != sec(1.9) {
		t.Errorf("Steane round trip = %v, want 1.9s", st)
	}
	if bs != sec(0.5) {
		t.Errorf("Bacon-Shor round trip = %v, want 0.5s", bs)
	}
	if bs >= st {
		t.Error("Bacon-Shor round trip should be cheaper")
	}
}

func TestEncFromCode(t *testing.T) {
	e := Enc(ecc.BaconShor(), 2)
	if e.String() != "9-L2" {
		t.Errorf("label = %q", e.String())
	}
	if Enc(ecc.Steane(), 1).String() != "7-L1" {
		t.Error("Steane label wrong")
	}
}

func TestLatencyUnsupportedEncoding(t *testing.T) {
	if _, err := Latency(Encoding{Code: "[[5,1,3]]", Level: 1}, Encoding{Code: "[[7,1,3]]", Level: 1}); err == nil {
		t.Error("expected error for unsupported code")
	}
	if _, err := Latency(Encoding{Code: "[[7,1,3]]", Level: 3}, Encoding{Code: "[[7,1,3]]", Level: 1}); err == nil {
		t.Error("expected error for unsupported level")
	}
}

func TestBatchTimeParallelism(t *testing.T) {
	from := Encoding{Code: "[[7,1,3]]", Level: 2}
	to := Encoding{Code: "[[7,1,3]]", Level: 1}
	nw5 := NewNetwork(5)
	nw10 := NewNetwork(10)
	// 20 qubits: 4 batches at width 5, 2 batches at width 10.
	if got := nw5.BatchTime(20, from, to); got != 4*sec(1.3) {
		t.Errorf("width-5 batch time = %v", got)
	}
	if got := nw10.BatchTime(20, from, to); got != 2*sec(1.3) {
		t.Errorf("width-10 batch time = %v", got)
	}
	if nw10.BatchTime(0, from, to) != 0 {
		t.Error("zero qubits should take zero time")
	}
	// Ceiling behaviour.
	if got := nw10.BatchTime(11, from, to); got != 2*sec(1.3) {
		t.Errorf("11 qubits over 10 channels = %v, want 2 batches", got)
	}
}

func TestNewNetworkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNetwork(0)
}
