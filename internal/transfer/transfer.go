// Package transfer models the code-transfer (code teleportation) networks
// of the CQLA memory hierarchy: the machinery that moves a logical qubit
// between error-correcting codes and concatenation levels without decoding
// it. A correlated ancilla pair is prepared spanning the two encodings via
// a multi-qubit cat state, the data interacts with its equivalently encoded
// half through a transversal CNOT, and measurement recreates the state in
// the destination encoding (Figure 5 of the paper).
//
// The pairwise latencies reproduce Table 3. They are kept as an explicit
// calibrated matrix because the paper publishes them as constants; the
// structural decomposition (cat-state preparation at the slower encoding
// dominates, hence downward transfers from level 2 cost more than upward
// transfers into level 2) is what the accessors expose.
package transfer

import (
	"fmt"
	"time"

	"repro/internal/ecc"
)

// Encoding identifies one side of a transfer: a code at a concatenation
// level.
type Encoding struct {
	Code  string // ecc.Code.Short, e.g. "[[7,1,3]]"
	Level int
}

// String renders the paper's compact labels, e.g. "7-L2".
func (e Encoding) String() string {
	var c string
	switch e.Code {
	case "[[7,1,3]]":
		c = "7"
	case "[[9,1,3]]":
		c = "9"
	default:
		c = e.Code
	}
	return fmt.Sprintf("%s-L%d", c, e.Level)
}

// Enc is a convenience constructor from an ecc.Code.
func Enc(c *ecc.Code, level int) Encoding {
	return Encoding{Code: c.Short, Level: level}
}

// index orders the four encodings as in Table 3: 7-L1, 7-L2, 9-L1, 9-L2.
func index(e Encoding) (int, error) {
	switch e.Code {
	case "[[7,1,3]]":
		switch e.Level {
		case 1:
			return 0, nil
		case 2:
			return 1, nil
		}
	case "[[9,1,3]]":
		switch e.Level {
		case 1:
			return 2, nil
		case 2:
			return 3, nil
		}
	}
	return 0, fmt.Errorf("transfer: unsupported encoding %v", e)
}

// table3 holds Table 3 of the paper in seconds: row = source, column =
// destination, order 7-L1, 7-L2, 9-L1, 9-L2.
var table3 = [4][4]float64{
	{0, 0.6, 0.02, 0.2},
	{1.3, 0, 1.3, 1.5},
	{0.01, 0.5, 0, 0.1},
	{0.4, 0.9, 0.4, 0},
}

// Network is the code-transfer fabric between the CQLA's memory, cache and
// compute regions.
type Network struct {
	// ParallelTransfers is the number of logical qubits that can be in
	// flight simultaneously between memory and cache (the "Par Xfer"
	// parameter of Table 5).
	ParallelTransfers int
}

// NewNetwork returns a transfer network supporting the given number of
// simultaneous transfers; the paper studies 5 and 10.
func NewNetwork(parallel int) *Network {
	if parallel < 1 {
		panic("transfer: need at least one transfer channel")
	}
	return &Network{ParallelTransfers: parallel}
}

// Latency returns the time to teleport one logical qubit from one encoding
// to another. Transfers within the same encoding are free at this
// granularity (ordinary data teleportation handles them and is overlapped
// with error correction).
func Latency(from, to Encoding) (time.Duration, error) {
	i, err := index(from)
	if err != nil {
		return 0, err
	}
	j, err := index(to)
	if err != nil {
		return 0, err
	}
	return time.Duration(table3[i][j] * float64(time.Second)), nil
}

// MustLatency is Latency that panics on unsupported encodings.
func MustLatency(from, to Encoding) time.Duration {
	d, err := Latency(from, to)
	if err != nil {
		panic(err)
	}
	return d
}

// RoundTrip returns the cost of demoting a qubit from `high` to `low` and
// promoting it back — the per-qubit price of running one addition in the
// fast level-1 region.
func RoundTrip(high, low Encoding) time.Duration {
	return MustLatency(high, low) + MustLatency(low, high)
}

// BatchTime returns the time to move n logical qubits from one encoding to
// another through this network, with ParallelTransfers qubits in flight at
// once.
func (nw *Network) BatchTime(n int, from, to Encoding) time.Duration {
	if n <= 0 {
		return 0
	}
	lat := MustLatency(from, to)
	batches := (n + nw.ParallelTransfers - 1) / nw.ParallelTransfers
	return time.Duration(batches) * lat
}

// Encodings lists the four encodings of Table 3, in table order.
func Encodings() []Encoding {
	return []Encoding{
		{Code: "[[7,1,3]]", Level: 1},
		{Code: "[[7,1,3]]", Level: 2},
		{Code: "[[9,1,3]]", Level: 1},
		{Code: "[[9,1,3]]", Level: 2},
	}
}
