package phys

import (
	"math"
	"testing"
	"time"
)

func TestProjectedMatchesTable1(t *testing.T) {
	p := Projected()
	cases := []struct {
		op   Op
		time time.Duration
		fail float64
	}{
		{SingleGate, 1 * time.Microsecond, 1e-8},
		{DoubleGate, 10 * time.Microsecond, 1e-7},
		{Measure, 10 * time.Microsecond, 1e-8},
		{Move, 10 * time.Microsecond, 1e-6},
		{Split, 100 * time.Nanosecond, 0},
		{Cool, 100 * time.Nanosecond, 0},
	}
	for _, c := range cases {
		got := p.Op(c.op)
		if got.Time != c.time {
			t.Errorf("%v time = %v, want %v", c.op, got.Time, c.time)
		}
		if got.FailureRate != c.fail {
			t.Errorf("%v failure = %g, want %g", c.op, got.FailureRate, c.fail)
		}
	}
}

func TestCurrentMatchesTable1(t *testing.T) {
	p := Current()
	if got := p.Op(SingleGate); got.Time != time.Microsecond || got.FailureRate != 1e-4 {
		t.Errorf("single gate = %+v", got)
	}
	if got := p.Op(DoubleGate); got.FailureRate != 0.03 {
		t.Errorf("double gate failure = %g, want 0.03", got.FailureRate)
	}
	if got := p.Op(Measure); got.Time != 200*time.Microsecond || got.FailureRate != 0.01 {
		t.Errorf("measure = %+v", got)
	}
	if p.TrapSizeMicron != 200 {
		t.Errorf("current trap size = %g, want 200", p.TrapSizeMicron)
	}
}

func TestRegionGeometry(t *testing.T) {
	p := Projected()
	if got := p.RegionPitchMicron(); got != 50 {
		t.Errorf("region pitch = %g µm, want 50 (5 µm traps x 10 electrodes)", got)
	}
	area := p.RegionAreaMM2()
	if area < 0.0024 || area > 0.0026 {
		t.Errorf("region area = %g mm², want 0.0025", area)
	}
}

func TestCyclesRounding(t *testing.T) {
	p := Projected()
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1 * time.Nanosecond, 1},
		{10 * time.Microsecond, 1},
		{11 * time.Microsecond, 2},
		{100 * time.Microsecond, 10},
		{1540 * time.Microsecond, 154},
	}
	for _, c := range cases {
		if got := p.Cycles(c.d); got != c.want {
			t.Errorf("Cycles(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDurationRoundTrip(t *testing.T) {
	p := Projected()
	for _, cycles := range []int{1, 10, 154, 30000} {
		d := p.Duration(cycles)
		if got := p.Cycles(d); got != cycles {
			t.Errorf("Cycles(Duration(%d)) = %d", cycles, got)
		}
	}
}

func TestMoveFailureScalesWithDistance(t *testing.T) {
	p := Projected()
	if got, want := p.MoveFailure(50), 50*5e-8; math.Abs(got-want) > 1e-18 {
		t.Errorf("MoveFailure(50) = %g, want %g", got, want)
	}
	if got := p.MoveFailure(1e12); got != 1 {
		t.Errorf("MoveFailure should clamp to 1, got %g", got)
	}
}

func TestAverageFailureProjected(t *testing.T) {
	p := Projected()
	want := (1e-8 + 1e-7 + 1e-8 + 1e-6) / 4
	if got := p.AverageFailure(); math.Abs(got-want) > 1e-18 {
		t.Errorf("AverageFailure = %g, want %g", got, want)
	}
}

func TestValidate(t *testing.T) {
	for _, p := range []Params{Current(), Projected()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := Projected()
	bad.CycleTime = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cycle time should not validate")
	}
	bad2 := Projected()
	bad2.SetOp(Measure, OpParams{Time: time.Microsecond, FailureRate: 2})
	if err := bad2.Validate(); err == nil {
		t.Error("failure rate > 1 should not validate")
	}
}

func TestSetOpOverride(t *testing.T) {
	p := Projected()
	p.SetOp(DoubleGate, OpParams{Time: 5 * time.Microsecond, FailureRate: 1e-9})
	if got := p.Op(DoubleGate); got.FailureRate != 1e-9 {
		t.Errorf("override not applied: %+v", got)
	}
}

func TestOpString(t *testing.T) {
	if SingleGate.String() != "single-gate" || Move.String() != "move" {
		t.Error("unexpected op names")
	}
	if Op(99).String() == "" {
		t.Error("out-of-range op should still render")
	}
}

func TestOpsEnumerates(t *testing.T) {
	ops := Ops()
	if len(ops) != int(numOps) {
		t.Fatalf("Ops() has %d entries, want %d", len(ops), numOps)
	}
	for i, o := range ops {
		if int(o) != i {
			t.Errorf("Ops()[%d] = %v", i, o)
		}
	}
}

func TestOpBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid op")
		}
	}()
	Projected().Op(Op(-1))
}
