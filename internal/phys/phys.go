// Package phys models the physical layer of a trapped-ion quantum computer:
// the basic operations (gates, measurement, ballistic shuttling, splitting,
// sympathetic cooling), their durations and failure rates, and the geometry
// of the electrode array. The two parameter sets correspond to the two
// columns of Table 1 in the CQLA paper (ISCA 2006): currently achieved
// values measured at NIST with 9Be+ ions, and the projected values used for
// the architecture study (10-15 year ARDA roadmap extrapolation).
//
// All higher layers of the simulator consume physical behaviour exclusively
// through this package, so swapping in a different technology (neutral
// atoms, superconducting qubits with movable couplers, ...) only requires a
// new Params value.
package phys

import (
	"fmt"
	"time"
)

// Op enumerates the fundamental physical operations of the ion-trap
// microarchitecture. Each Op completes within a whole number of fundamental
// clock cycles (see Params.CycleTime).
type Op int

const (
	// SingleGate is a one-qubit rotation implemented by a laser pulse on a
	// single trapped ion.
	SingleGate Op = iota
	// DoubleGate is a two-qubit entangling gate (e.g. a geometric phase
	// gate) between two ions sharing a trapping region.
	DoubleGate
	// Measure is the projective readout of one ion by state-dependent
	// fluorescence.
	Measure
	// Move is a ballistic shuttle of one ion from a trapping region to an
	// adjacent one.
	Move
	// Split separates two ions held in the same trapping region so that one
	// of them can be shuttled away.
	Split
	// Cool is one round of sympathetic cooling using a refrigerant ion.
	Cool

	numOps
)

var opNames = [numOps]string{
	SingleGate: "single-gate",
	DoubleGate: "double-gate",
	Measure:    "measure",
	Move:       "move",
	Split:      "split",
	Cool:       "cool",
}

// String returns the conventional lower-case name of the operation.
func (o Op) String() string {
	if o < 0 || o >= numOps {
		return fmt.Sprintf("phys.Op(%d)", int(o))
	}
	return opNames[o]
}

// Ops returns every fundamental operation, in declaration order.
func Ops() []Op {
	ops := make([]Op, numOps)
	for i := range ops {
		ops[i] = Op(i)
	}
	return ops
}

// OpParams carries the duration and failure probability of one fundamental
// operation. A zero FailureRate means the operation is treated as error-free
// at this modeling granularity (the paper does not quote failure rates for
// splitting and cooling; their errors are folded into movement).
type OpParams struct {
	Time        time.Duration
	FailureRate float64
}

// Params is a complete description of an ion-trap technology point.
type Params struct {
	// Name identifies the parameter set in reports ("current", "projected").
	Name string

	// ops holds duration and failure rate per fundamental operation.
	ops [numOps]OpParams

	// MoveFailurePerMicron is the per-micron failure probability of
	// ballistic transport; Table 1 quotes movement failure this way.
	MoveFailurePerMicron float64

	// MemoryTime is the idle coherence lifetime of a trapped-ion qubit.
	MemoryTime time.Duration

	// TrapSizeMicron is the pitch of a single trap electrode in microns.
	TrapSizeMicron float64

	// ElectrodesPerRegion is the number of electrodes making up one
	// trapping region (including its share of the crossing junction).
	ElectrodesPerRegion int

	// CycleTime is the fundamental time step of the microarchitecture: the
	// duration within which any unencoded logic operation, basic move, or
	// measurement completes. The CQLA study uses 10 µs.
	CycleTime time.Duration
}

// Current returns the experimentally demonstrated parameter set from
// Table 1 (NIST, 9Be+ data ions with 24Mg+ sympathetic cooling).
func Current() Params {
	p := Params{
		Name:                 "current",
		MoveFailurePerMicron: 0.005,
		MemoryTime:           10 * time.Second,
		TrapSizeMicron:       200,
		ElectrodesPerRegion:  10,
		CycleTime:            200 * time.Microsecond,
	}
	p.ops[SingleGate] = OpParams{1 * time.Microsecond, 1e-4}
	p.ops[DoubleGate] = OpParams{10 * time.Microsecond, 0.03}
	p.ops[Measure] = OpParams{200 * time.Microsecond, 0.01}
	p.ops[Move] = OpParams{20 * time.Microsecond, 0.005 * 200}
	p.ops[Split] = OpParams{200 * time.Microsecond, 0}
	p.ops[Cool] = OpParams{200 * time.Microsecond, 0}
	return p
}

// Projected returns the forward-looking parameter set used throughout the
// CQLA analysis: 10 µs fundamental cycle, 1e-8 single-qubit and measurement
// failure, 1e-7 two-qubit gate failure, and movement failure on the order of
// 1e-6 per fundamental move across a 5 µm trap.
func Projected() Params {
	p := Params{
		Name:                 "projected",
		MoveFailurePerMicron: 5e-8,
		MemoryTime:           100 * time.Second,
		TrapSizeMicron:       5,
		ElectrodesPerRegion:  10,
		CycleTime:            10 * time.Microsecond,
	}
	p.ops[SingleGate] = OpParams{1 * time.Microsecond, 1e-8}
	p.ops[DoubleGate] = OpParams{10 * time.Microsecond, 1e-7}
	p.ops[Measure] = OpParams{10 * time.Microsecond, 1e-8}
	// One fundamental move spans a trapping region (~20 µm of transport
	// within a 50 µm pitch region); the paper budgets order 1e-6 each.
	p.ops[Move] = OpParams{10 * time.Microsecond, 1e-6}
	p.ops[Split] = OpParams{100 * time.Nanosecond, 0}
	p.ops[Cool] = OpParams{100 * time.Nanosecond, 0}
	return p
}

// Op returns the duration and failure rate of the given operation.
func (p Params) Op(o Op) OpParams {
	if o < 0 || o >= numOps {
		panic(fmt.Sprintf("phys: invalid op %d", int(o)))
	}
	return p.ops[o]
}

// SetOp overrides the parameters of one operation; it is intended for
// sensitivity studies ("what if CNOTs were 10x worse?").
func (p *Params) SetOp(o Op, v OpParams) {
	if o < 0 || o >= numOps {
		panic(fmt.Sprintf("phys: invalid op %d", int(o)))
	}
	p.ops[o] = v
}

// RegionPitchMicron is the linear dimension of one trapping region including
// its share of the crossing junction: electrode pitch times electrode count.
// With projected parameters this is the 50 µm used for area estimates.
func (p Params) RegionPitchMicron() float64 {
	return p.TrapSizeMicron * float64(p.ElectrodesPerRegion)
}

// RegionAreaMM2 is the area of a single trapping region in mm².
func (p Params) RegionAreaMM2() float64 {
	pitch := p.RegionPitchMicron() / 1000.0 // mm
	return pitch * pitch
}

// Cycles converts a duration to a whole number of fundamental clock cycles,
// rounding up; every physical operation occupies at least one cycle.
func (p Params) Cycles(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	n := int((d + p.CycleTime - 1) / p.CycleTime)
	if n < 1 {
		n = 1
	}
	return n
}

// Duration converts a cycle count back to wall-clock time.
func (p Params) Duration(cycles int) time.Duration {
	return time.Duration(cycles) * p.CycleTime
}

// MoveFailure returns the failure probability of transporting an ion over
// the given distance in microns, from the per-micron rate.
func (p Params) MoveFailure(distanceMicron float64) float64 {
	f := p.MoveFailurePerMicron * distanceMicron
	if f > 1 {
		f = 1
	}
	return f
}

// AverageFailure returns the arithmetic mean of the failure probabilities of
// the gate-like operations (single gate, double gate, measure, move). The
// fidelity analysis (Gottesman's estimate, Eq. 1 of the paper) takes this
// mean as the effective per-component failure probability p0.
func (p Params) AverageFailure() float64 {
	ops := []Op{SingleGate, DoubleGate, Measure, Move}
	sum := 0.0
	for _, o := range ops {
		sum += p.ops[o].FailureRate
	}
	return sum / float64(len(ops))
}

// Validate reports whether the parameter set is internally consistent:
// positive durations and a cycle time no shorter than the longest
// single-cycle operation would require.
func (p Params) Validate() error {
	if p.CycleTime <= 0 {
		return fmt.Errorf("phys: non-positive cycle time %v", p.CycleTime)
	}
	if p.TrapSizeMicron <= 0 {
		return fmt.Errorf("phys: non-positive trap size %v", p.TrapSizeMicron)
	}
	if p.ElectrodesPerRegion <= 0 {
		return fmt.Errorf("phys: non-positive electrodes per region %d", p.ElectrodesPerRegion)
	}
	for o := Op(0); o < numOps; o++ {
		op := p.ops[o]
		if op.Time <= 0 {
			return fmt.Errorf("phys: non-positive duration for %v", o)
		}
		if op.FailureRate < 0 || op.FailureRate > 1 {
			return fmt.Errorf("phys: failure rate %g for %v outside [0,1]", op.FailureRate, o)
		}
	}
	return nil
}
