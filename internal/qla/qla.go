// Package qla models the baseline Quantum Logic Array — the authors' prior
// homogeneous "sea of qubits" architecture (MICRO-38) that every CQLA
// result in Tables 4 and 5 is normalized against. In the QLA every logical
// data qubit carries two logical ancilla qubits (a 1:2 data:ancilla ratio),
// computation can happen anywhere, and the floorplan surrounds every tile
// with teleportation channels and repeater islands to sustain maximal
// parallelism; its gain product is 1.0 by definition.
package qla

import (
	"time"

	"repro/internal/ecc"
	"repro/internal/phys"
)

// AncillaPerData is the QLA's logical ancilla provisioning per data qubit.
const AncillaPerData = 2

// InterconnectFactor inflates per-tile area for the channels and
// teleportation islands that maximal parallelism requires on every side of
// every tile (calibrated so the specialization factors of Table 4 are
// reproduced; see DESIGN.md).
const InterconnectFactor = 3.5

// Model is a QLA instance: a code (always Steane in the paper) at a
// concatenation level on a technology point.
type Model struct {
	Code   *ecc.Code
	Level  int
	Params phys.Params
}

// New returns the paper's baseline: Steane [[7,1,3]] at level 2 on
// projected ion-trap parameters.
func New() Model { return NewWith(phys.Projected()) }

// NewWith returns the baseline at the given technology point, so a CQLA
// evaluated on currently demonstrated parameters is normalized against a
// QLA built from the same technology rather than always the projected one.
func NewWith(p phys.Params) Model {
	return Model{Code: ecc.Steane(), Level: 2, Params: p}
}

// TileAreaMM2 returns the area of one logical data qubit with its two
// logical ancilla and surrounding interconnect.
func (m Model) TileAreaMM2() float64 {
	return (1 + AncillaPerData) * m.Code.AreaMM2(m.Level, m.Params) * InterconnectFactor
}

// AreaMM2 returns the floorplan area for the given number of logical data
// qubits.
func (m Model) AreaMM2(logicalQubits int) float64 {
	return float64(logicalQubits) * m.TileAreaMM2()
}

// SlotTime returns the duration of one two-qubit-gate slot: computation is
// dominated by the error correction following every logical gate, and
// communication is fully overlapped with it by the integrated repeater
// interconnect.
func (m Model) SlotTime() time.Duration {
	return m.Code.ECTime(m.Level, m.Params)
}

// AdderTime returns the QLA execution time of a circuit with the given
// critical-path length in slots: with computation possible at every qubit,
// the QLA achieves the unlimited-parallelism schedule.
func (m Model) AdderTime(depthSlots int) time.Duration {
	return time.Duration(depthSlots) * m.SlotTime()
}

// GainProduct is 1.0: the QLA is the normalization point.
const GainProduct = 1.0
