package qla

import (
	"testing"
	"time"
)

func TestBaselineIdentity(t *testing.T) {
	m := New()
	if m.Code.Short != "[[7,1,3]]" || m.Level != 2 {
		t.Errorf("baseline should be Steane at level 2, got %s L%d", m.Code.Short, m.Level)
	}
}

func TestSlotTimeIsLevel2EC(t *testing.T) {
	m := New()
	want := m.Code.ECTime(2, m.Params)
	if m.SlotTime() != want {
		t.Errorf("slot time %v, want %v", m.SlotTime(), want)
	}
	// ~0.3 s per slot with projected parameters.
	if s := m.SlotTime().Seconds(); s < 0.25 || s > 0.35 {
		t.Errorf("slot time = %g s, expected ~0.3", s)
	}
}

func TestAreaScalesLinearly(t *testing.T) {
	m := New()
	a1 := m.AreaMM2(100)
	a2 := m.AreaMM2(200)
	if a2 != 2*a1 {
		t.Errorf("area not linear: %g vs %g", a1, a2)
	}
	// One tile = 3 logical qubits x 3.4 mm² x interconnect factor.
	tile := m.TileAreaMM2()
	if tile < 30 || tile > 40 {
		t.Errorf("tile area = %g mm², expected ~36", tile)
	}
}

func TestQLAFactorsOneSquareMeter(t *testing.T) {
	// The paper's motivating number: ~1 m² to factor a 1024-bit number.
	// With Q = 5n+3 logical qubits the homogeneous QLA floorplan lands at
	// that order of magnitude.
	m := New()
	area := m.AreaMM2(5*1024 + 3)
	square := area / 1e6 // m²
	if square < 0.1 || square > 1.0 {
		t.Errorf("1024-bit QLA area = %.3f m², expected a few tenths", square)
	}
}

func TestAdderTime(t *testing.T) {
	m := New()
	if got := m.AdderTime(100); got != 100*m.SlotTime() {
		t.Errorf("adder time = %v", got)
	}
	if m.AdderTime(0) != time.Duration(0) {
		t.Error("zero depth should take zero time")
	}
}
