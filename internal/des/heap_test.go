package des

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/gen"
)

// TestMinHeapPopsTotalOrder drives the event heap with adversarial
// interleaved pushes and pops and checks that it always yields the
// minimum under the simulator's (at, seq) total order.
func TestMinHeapPopsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := newMinHeap[event](4, eventLess)
	var live []event
	seq := 0
	popMin := func() {
		sort.Slice(live, func(i, j int) bool { return eventLess(live[i], live[j]) })
		want := live[0]
		live = live[1:]
		if got := h.pop(); got != want {
			t.Fatalf("pop = %+v, want %+v", got, want)
		}
	}
	for round := 0; round < 2000; round++ {
		if h.len() == 0 || rng.Intn(3) > 0 {
			seq++
			// Coarse timestamps force plenty of equal-time ties so the seq
			// tiebreaker is exercised, not just the primary key.
			e := event{at: time.Duration(rng.Intn(50)), kind: eventKind(rng.Intn(2)), id: rng.Intn(10), seq: seq}
			h.push(e)
			live = append(live, e)
		} else {
			popMin()
		}
	}
	for h.len() > 0 {
		popMin()
	}
	if len(live) != 0 {
		t.Fatalf("%d events never popped", len(live))
	}
}

// TestIntQueueFIFO checks ordering and the in-place compaction path.
func TestIntQueueFIFO(t *testing.T) {
	q := newIntQueue(4)
	next, want := 0, 0
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 5000; round++ {
		if q.len() == 0 || rng.Intn(3) > 0 {
			q.push(next)
			next++
		} else {
			if got := q.pop(); got != want {
				t.Fatalf("pop = %d, want %d", got, want)
			}
			want++
		}
		if q.len() != next-want {
			t.Fatalf("len = %d, want %d", q.len(), next-want)
		}
		if q.len() > 0 && q.peek() != want {
			t.Fatalf("peek = %d, want %d", q.peek(), want)
		}
	}
}

// TestRunDAGMatchesRun: the prebuilt-DAG entry point must be the same
// simulation, not a variant.
func TestRunDAGMatchesRun(t *testing.T) {
	ad := gen.CarryLookahead(16)
	c := cfg(4, 2, 60)
	viaRun, err := Run(ad.Circuit, c)
	if err != nil {
		t.Fatal(err)
	}
	viaDAG, err := RunDAG(context.Background(), circuit.BuildDAG(ad.Circuit), c)
	if err != nil {
		t.Fatal(err)
	}
	if viaRun != viaDAG {
		t.Errorf("RunDAG stats %+v differ from Run stats %+v", viaDAG, viaRun)
	}
}

// TestRunDeterministic: repeated runs of the same configuration must agree
// exactly — the event order is a total order, never map-iteration or
// scheduling dependent.
func TestRunDeterministic(t *testing.T) {
	ad := gen.CarryLookahead(32)
	c := cfg(9, 3, 50)
	first, err := Run(ad.Circuit, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(ad.Circuit, c)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d diverged: %+v vs %+v", i, again, first)
		}
	}
}

// TestRunDAGValidates: the validation errors must fire on the RunDAG entry
// point too, not only on Run.
func TestRunDAGValidates(t *testing.T) {
	c := circuit.New(1)
	c.AddH(0)
	d := circuit.BuildDAG(c)
	if _, err := RunDAG(context.Background(), d, Config{Blocks: 0, Channels: 1, ResidentQubits: 4, SlotTime: time.Second}); err == nil {
		t.Error("RunDAG accepted a blockless machine")
	}
}
