package des

import (
	"context"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
)

// TestRunnerMatchesRunDAG pins the refactor: a reused Runner must produce
// statistics identical to a fresh RunDAG on every run, across several
// circuits and machine shapes.
func TestRunnerMatchesRunDAG(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		c    *circuit.Circuit
		cfg  Config
	}{
		{"adder8-tight", gen.CarryLookahead(8).Circuit, cfg(2, 1, 6)},
		{"adder16", gen.CarryLookahead(16).Circuit, cfg(4, 4, 60)},
		{"adder64", gen.CarryLookahead(64).Circuit, cfg(9, 12, 700)},
	}
	for _, tc := range cases {
		d := circuit.BuildDAG(tc.c)
		want, err := RunDAG(ctx, d, tc.cfg)
		if err != nil {
			t.Fatalf("%s: RunDAG: %v", tc.name, err)
		}
		r, err := NewRunner(d, tc.cfg)
		if err != nil {
			t.Fatalf("%s: NewRunner: %v", tc.name, err)
		}
		for run := 0; run < 3; run++ {
			got, err := r.Run(ctx)
			if err != nil {
				t.Fatalf("%s run %d: %v", tc.name, run, err)
			}
			if got != want {
				t.Errorf("%s run %d: stats %+v, want %+v", tc.name, run, got, want)
			}
		}
	}
}

// TestRunnerRejectsInvalidConfig keeps validation at construction time, so
// a pooled Runner can never be built around a config Run would refuse.
func TestRunnerRejectsInvalidConfig(t *testing.T) {
	d := circuit.BuildDAG(gen.CarryLookahead(8).Circuit)
	if _, err := NewRunner(d, Config{}); err == nil {
		t.Fatal("NewRunner accepted a zero config")
	}
}

// TestRunnerCancellation verifies a reused Runner still honors context
// cancellation mid-run and recovers cleanly on the next run.
func TestRunnerCancellation(t *testing.T) {
	d := circuit.BuildDAG(gen.CarryLookahead(64).Circuit)
	r, err := NewRunner(d, cfg(9, 12, 700))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(ctx); err == nil {
		t.Fatal("cancelled run returned no error")
	}
	want, err := RunDAG(context.Background(), d, cfg(9, 12, 700))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("run after cancellation: stats %+v, want %+v", got, want)
	}
}

// TestRunnerAllocationFree is the satellite's contract: after the first run
// grows the waiter lists to their high-water mark, replaying the 64-bit
// adder performs zero allocations.
func TestRunnerAllocationFree(t *testing.T) {
	d := circuit.BuildDAG(gen.CarryLookahead(64).Circuit)
	r, err := NewRunner(d, cfg(9, 12, 700))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Run(ctx); err != nil { // warm the waiter backing arrays
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(20, func() {
		if _, err := r.Run(ctx); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state Run allocates %.1f times per run, want 0", avg)
	}
}

// BenchmarkDESRunnerReuse is BenchmarkDES64BitAdder in compile-once/
// evaluate-many form: the DAG is built and the arena allocated once, and
// each iteration only replays the event loop.
func BenchmarkDESRunnerReuse(b *testing.B) {
	d := circuit.BuildDAG(gen.CarryLookahead(64).Circuit)
	r, err := NewRunner(d, cfg(9, 12, 700))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
