// Package des is a discrete-event simulator for the CQLA executing a
// logical circuit. Where internal/sched computes idealized makespans, des
// models the machine's resources explicitly: compute blocks execute
// instructions, teleportation channels move operands from memory into the
// compute region, and a bounded residency set (compute blocks plus cache)
// evicts cold qubits back to memory. It measures how much communication
// actually hides beneath error-correction-dominated computation — the
// paper's "quantum computers do not suffer from the memory wall" claim.
package des

import (
	"container/heap"
	"container/list"
	"context"
	"fmt"
	"time"

	"repro/internal/circuit"
)

// Config describes the machine the circuit runs on.
type Config struct {
	// Blocks is the number of compute blocks (concurrent instructions).
	Blocks int
	// Channels is the number of teleportation channels into the compute
	// region (concurrent operand transports).
	Channels int
	// ResidentQubits is the logical-qubit capacity of the compute region
	// plus cache; beyond it, least-recently-used qubits are evicted to
	// memory and must be re-fetched.
	ResidentQubits int
	// SlotTime is the duration of one two-qubit-gate slot (the error
	// correction following each logical gate).
	SlotTime time.Duration
	// TransportTime is the duration of one logical-qubit teleport between
	// memory and the compute region.
	TransportTime time.Duration
}

// Stats reports the simulated execution.
type Stats struct {
	Makespan    time.Duration
	ComputeBusy time.Duration // summed instruction execution time
	Transports  int           // operand fetches from memory
	// TransportBusy is the summed channel occupancy.
	TransportBusy time.Duration
	// StallTime integrates (over time) the number of instructions that
	// were dependency-ready with a free block available but waiting on
	// operand transport.
	StallTime time.Duration
	// BlockUtilization is ComputeBusy / (Blocks x Makespan).
	BlockUtilization float64
	// ChannelUtilization is TransportBusy / (Channels x Makespan).
	ChannelUtilization float64
}

type eventKind int

const (
	evInstrDone eventKind = iota
	evFetchDone
)

type event struct {
	at   time.Duration
	kind eventKind
	id   int // instruction index or fetched qubit
	seq  int // tiebreaker for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// residency tracks which logical qubits are inside the compute region,
// with LRU eviction over unpinned qubits.
type residency struct {
	capacity int
	order    *list.List
	index    map[int]*list.Element
	pins     map[int]int
}

func newResidency(capacity int) *residency {
	return &residency{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[int]*list.Element),
		pins:     make(map[int]int),
	}
}

func (r *residency) contains(q int) bool { _, ok := r.index[q]; return ok }

func (r *residency) touch(q int) {
	if e, ok := r.index[q]; ok {
		r.order.MoveToFront(e)
	}
}

// admit inserts q, evicting the LRU unpinned qubit if over capacity. It
// reports false when no eviction candidate exists (capacity exhausted by
// pinned qubits) — the caller must retry after pins release.
func (r *residency) admit(q int) bool {
	if r.contains(q) {
		r.touch(q)
		return true
	}
	for r.order.Len() >= r.capacity {
		victim := -1
		for e := r.order.Back(); e != nil; e = e.Prev() {
			cand := e.Value.(int)
			if r.pins[cand] == 0 {
				victim = cand
				break
			}
		}
		if victim < 0 {
			return false
		}
		r.order.Remove(r.index[victim])
		delete(r.index, victim)
	}
	r.index[q] = r.order.PushFront(q)
	return true
}

func (r *residency) pin(q int)   { r.pins[q]++ }
func (r *residency) unpin(q int) { r.pins[q]-- }

// Run simulates the circuit on the configured machine and returns the
// measured statistics. All qubits start in memory.
func Run(c *circuit.Circuit, cfg Config) (Stats, error) {
	return RunContext(context.Background(), c, cfg)
}

// RunContext is Run with cancellation: a long simulation aborts with the
// context's error at the next event-loop check.
func RunContext(ctx context.Context, c *circuit.Circuit, cfg Config) (Stats, error) {
	if cfg.Blocks < 1 || cfg.Channels < 1 {
		return Stats{}, fmt.Errorf("des: need at least one block and one channel")
	}
	if cfg.ResidentQubits < 3 {
		return Stats{}, fmt.Errorf("des: residency capacity %d cannot hold a Toffoli's operands", cfg.ResidentQubits)
	}
	if cfg.SlotTime <= 0 || cfg.TransportTime < 0 {
		return Stats{}, fmt.Errorf("des: invalid timing %v/%v", cfg.SlotTime, cfg.TransportTime)
	}
	d := circuit.BuildDAG(c)
	n := c.Len()

	// Staging window: only a bounded number of dependency-ready
	// instructions hold operand pins at once, which keeps pin pressure
	// below the residency capacity and guarantees forward progress.
	winCap := cfg.ResidentQubits/3 - cfg.Blocks
	if winCap < 1 {
		winCap = 1
	}

	remaining := make([]int, n) // unmet dependencies
	missing := make([]int, n)   // operands not yet resident (window members)
	pending := []int{}          // dependency-ready, not yet staged
	window := 0                 // staged instructions currently holding pins
	fetchQueue := []int{}       // qubits waiting for a channel
	readyRun := []int{}         // staged with all operands resident
	inFetch := map[int][]int{}  // qubit -> staged instructions awaiting it
	res := newResidency(cfg.ResidentQubits)
	var events eventQueue
	seq := 0
	now := time.Duration(0)
	freeBlocks := cfg.Blocks
	freeChannels := cfg.Channels
	stats := Stats{}
	done := 0
	lastStallCheck := time.Duration(0)
	stalledInstrs := 0

	push := func(at time.Duration, kind eventKind, id int) {
		seq++
		heap.Push(&events, event{at: at, kind: kind, id: id, seq: seq})
	}

	// stage admits pending instructions into the window, pinning their
	// operands and enqueueing fetches for the missing ones.
	stage := func() {
		for window < winCap && len(pending) > 0 {
			i := pending[0]
			pending = pending[1:]
			window++
			miss := 0
			for _, q := range c.Instr(i).Operands() {
				res.pin(q)
				if res.contains(q) {
					res.touch(q)
					continue
				}
				miss++
				waiters := inFetch[q]
				inFetch[q] = append(waiters, i)
				if len(waiters) == 0 {
					fetchQueue = append(fetchQueue, q)
				}
			}
			missing[i] = miss
			if miss == 0 {
				readyRun = append(readyRun, i)
			}
		}
	}

	startFetches := func() {
		for freeChannels > 0 && len(fetchQueue) > 0 {
			q := fetchQueue[0]
			if !res.admit(q) {
				break // all residents pinned; retried after pins release
			}
			fetchQueue = fetchQueue[1:]
			freeChannels--
			stats.Transports++
			stats.TransportBusy += cfg.TransportTime
			push(now+cfg.TransportTime, evFetchDone, q)
		}
	}

	startInstrs := func() {
		for freeBlocks > 0 && len(readyRun) > 0 {
			i := readyRun[0]
			readyRun = readyRun[1:]
			window-- // leaves the staging window; pins persist until done
			freeBlocks--
			dur := time.Duration(c.Instr(i).Slots()) * cfg.SlotTime
			stats.ComputeBusy += dur
			push(now+dur, evInstrDone, i)
		}
	}

	accountStall := func(t time.Duration) {
		if stalled := stalledInstrs; stalled > 0 && freeBlocks > 0 {
			win := t - lastStallCheck
			m := stalled
			if m > freeBlocks {
				m = freeBlocks
			}
			stats.StallTime += time.Duration(m) * win
		}
		lastStallCheck = t
	}

	pump := func() {
		// Iterate to a fixed point: staging can unblock fetches, fetch
		// admission can unblock staging.
		for {
			before := len(fetchQueue) + len(readyRun) + len(pending) + freeBlocks + freeChannels
			stage()
			startFetches()
			startInstrs()
			after := len(fetchQueue) + len(readyRun) + len(pending) + freeBlocks + freeChannels
			if before == after {
				return
			}
		}
	}

	for i := 0; i < n; i++ {
		remaining[i] = len(d.Deps(i))
		if remaining[i] == 0 {
			pending = append(pending, i)
		}
	}
	pump()
	stalledInstrs = len(pending) + window

	loops := 0
	for events.Len() > 0 {
		if loops++; loops&1023 == 1 {
			if err := ctx.Err(); err != nil {
				return Stats{}, err
			}
		}
		ev := heap.Pop(&events).(event)
		accountStall(ev.at)
		now = ev.at
		switch ev.kind {
		case evFetchDone:
			freeChannels++
			q := ev.id
			waiters := inFetch[q]
			delete(inFetch, q)
			for _, i := range waiters {
				missing[i]--
				if missing[i] == 0 {
					readyRun = append(readyRun, i)
				}
			}
		case evInstrDone:
			freeBlocks++
			done++
			i := ev.id
			for _, q := range c.Instr(i).Operands() {
				res.unpin(q)
			}
			for _, s := range d.Succs(i) {
				remaining[s]--
				if remaining[s] == 0 {
					pending = append(pending, s)
				}
			}
		}
		pump()
		stalledInstrs = len(pending) + window
		if events.Len() == 0 && done < n {
			return Stats{}, fmt.Errorf("des: deadlock after %d/%d instructions", done, n)
		}
	}
	stats.Makespan = now
	stats.BlockUtilization = utilization(stats.ComputeBusy, cfg.Blocks, stats.Makespan)
	stats.ChannelUtilization = utilization(stats.TransportBusy, cfg.Channels, stats.Makespan)
	if done != n {
		return Stats{}, fmt.Errorf("des: finished %d of %d instructions", done, n)
	}
	return stats, nil
}

// utilization returns busy / (units × span) computed entirely in float64:
// forming the denominator in int truncates time.Duration to 32 bits on
// 32-bit platforms and overflows int64 once units × span passes ~2⁶³ ns,
// both of which long simulations on many blocks can reach.
func utilization(busy time.Duration, units int, span time.Duration) float64 {
	if units <= 0 || span <= 0 {
		return 0
	}
	return busy.Seconds() / (float64(units) * span.Seconds())
}

// CommunicationHidden returns the fraction of transport time that did not
// extend the makespan beyond the compute-only lower bound: 1 means
// communication fully overlapped with computation.
func CommunicationHidden(s Stats, computeOnly time.Duration) float64 {
	if s.TransportBusy == 0 {
		return 1
	}
	exposed := s.Makespan - computeOnly
	if exposed < 0 {
		exposed = 0
	}
	if exposed >= s.TransportBusy {
		return 0
	}
	return 1 - float64(exposed)/float64(s.TransportBusy)
}
