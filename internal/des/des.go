// Package des is a discrete-event simulator for the CQLA executing a
// logical circuit. Where internal/sched computes idealized makespans, des
// models the machine's resources explicitly: compute blocks execute
// instructions, teleportation channels move operands from memory into the
// compute region, and a bounded residency set (compute blocks plus cache)
// evicts cold qubits back to memory. It measures how much communication
// actually hides beneath error-correction-dominated computation — the
// paper's "quantum computers do not suffer from the memory wall" claim.
//
// The simulator is built for the hot path: the event queue is a concrete
// generic heap over a pre-sized arena (no interface boxing), the residency
// set is an intrusive array-backed LRU list, and every per-instruction and
// per-qubit table is allocated once up front, so a run's allocation cost is
// a fixed setup independent of how many events it processes.
package des

import (
	"context"
	"fmt"
	"time"

	"repro/internal/circuit"
)

// Config describes the machine the circuit runs on.
type Config struct {
	// Blocks is the number of compute blocks (concurrent instructions).
	Blocks int
	// Channels is the number of teleportation channels into the compute
	// region (concurrent operand transports).
	Channels int
	// ResidentQubits is the logical-qubit capacity of the compute region
	// plus cache; beyond it, least-recently-used qubits are evicted to
	// memory and must be re-fetched.
	ResidentQubits int
	// SlotTime is the duration of one two-qubit-gate slot (the error
	// correction following each logical gate).
	SlotTime time.Duration
	// TransportTime is the duration of one logical-qubit teleport between
	// memory and the compute region.
	TransportTime time.Duration
}

// Stats reports the simulated execution.
type Stats struct {
	Makespan    time.Duration
	ComputeBusy time.Duration // summed instruction execution time
	Transports  int           // operand fetches from memory
	// TransportBusy is the summed channel occupancy.
	TransportBusy time.Duration
	// StallTime integrates (over time) the number of instructions that
	// were dependency-ready with a free block available but waiting on
	// operand transport.
	StallTime time.Duration
	// BlockUtilization is ComputeBusy / (Blocks x Makespan).
	BlockUtilization float64
	// ChannelUtilization is TransportBusy / (Channels x Makespan).
	ChannelUtilization float64
}

type eventKind int

const (
	evInstrDone eventKind = iota
	evFetchDone
)

type event struct {
	at   time.Duration
	kind eventKind
	id   int // instruction index or fetched qubit
	seq  int // tiebreaker for determinism
}

// eventLess orders events by time with the sequence number breaking ties —
// a total order, so the pop sequence (and with it every statistic) is
// independent of heap internals.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// residency tracks which logical qubits are inside the compute region,
// with LRU eviction over unpinned qubits. Qubit ids index directly into
// the intrusive prev/next arrays, so membership tests, touches and
// evictions run without hashing or node allocation.
type residency struct {
	capacity   int
	size       int
	head, tail int // most- and least-recently-used resident qubit, -1 if empty
	prev, next []int32
	resident   []bool
	pins       []int32
}

func newResidency(capacity, numQubits int) *residency {
	return &residency{
		capacity: capacity,
		head:     -1,
		tail:     -1,
		prev:     make([]int32, numQubits),
		next:     make([]int32, numQubits),
		resident: make([]bool, numQubits),
		pins:     make([]int32, numQubits),
	}
}

func (r *residency) contains(q int) bool { return r.resident[q] }

func (r *residency) unlink(q int) {
	p, n := r.prev[q], r.next[q]
	if p >= 0 {
		r.next[p] = n
	} else {
		r.head = int(n)
	}
	if n >= 0 {
		r.prev[n] = p
	} else {
		r.tail = int(p)
	}
	r.resident[q] = false
	r.size--
}

func (r *residency) pushFront(q int) {
	r.prev[q] = -1
	r.next[q] = int32(r.head)
	if r.head >= 0 {
		r.prev[r.head] = int32(q)
	} else {
		r.tail = q
	}
	r.head = q
	r.resident[q] = true
	r.size++
}

func (r *residency) touch(q int) {
	if r.resident[q] && r.head != q {
		r.unlink(q)
		r.pushFront(q)
	}
}

// admit inserts q, evicting the LRU unpinned qubit if over capacity. It
// reports false when no eviction candidate exists (capacity exhausted by
// pinned qubits) — the caller must retry after pins release.
func (r *residency) admit(q int) bool {
	if r.resident[q] {
		r.touch(q)
		return true
	}
	for r.size >= r.capacity {
		victim := -1
		for v := r.tail; v >= 0; v = int(r.prev[v]) {
			if r.pins[v] == 0 {
				victim = v
				break
			}
		}
		if victim < 0 {
			return false
		}
		r.unlink(victim)
	}
	r.pushFront(q)
	return true
}

func (r *residency) pin(q int)   { r.pins[q]++ }
func (r *residency) unpin(q int) { r.pins[q]-- }

// Run simulates the circuit on the configured machine and returns the
// measured statistics. All qubits start in memory.
func Run(c *circuit.Circuit, cfg Config) (Stats, error) {
	//lint:ignore-cqla ctxflow Run is the uncancellable convenience API; callers needing teardown use RunContext
	return RunContext(context.Background(), c, cfg)
}

// RunContext is Run with cancellation: a long simulation aborts with the
// context's error at the next event-loop check.
func RunContext(ctx context.Context, c *circuit.Circuit, cfg Config) (Stats, error) {
	if err := validate(cfg); err != nil {
		return Stats{}, err
	}
	return RunDAG(ctx, circuit.BuildDAG(c), cfg)
}

func validate(cfg Config) error {
	if cfg.Blocks < 1 || cfg.Channels < 1 {
		return fmt.Errorf("des: need at least one block and one channel")
	}
	if cfg.ResidentQubits < 3 {
		return fmt.Errorf("des: residency capacity %d cannot hold a Toffoli's operands", cfg.ResidentQubits)
	}
	if cfg.SlotTime <= 0 || cfg.TransportTime < 0 {
		return fmt.Errorf("des: invalid timing %v/%v", cfg.SlotTime, cfg.TransportTime)
	}
	return nil
}

// RunDAG simulates a circuit whose dependency DAG the caller has already
// built, avoiding a rebuild when the same DAG also feeds other analyses
// (the arch des engine schedules the identical DAG for its compute-only
// lower bound). It builds a single-use Runner; callers replaying the same
// DAG many times should hold a Runner (or a pool of them) and call Run
// directly, which amortizes the arena to zero steady-state allocations.
func RunDAG(ctx context.Context, d *circuit.DAG, cfg Config) (Stats, error) {
	r, err := NewRunner(d, cfg)
	if err != nil {
		return Stats{}, err
	}
	return r.Run(ctx)
}

// utilization returns busy / (units × span) computed entirely in float64:
// forming the denominator in int truncates time.Duration to 32 bits on
// 32-bit platforms and overflows int64 once units × span passes ~2⁶³ ns,
// both of which long simulations on many blocks can reach.
func utilization(busy time.Duration, units int, span time.Duration) float64 {
	if units <= 0 || span <= 0 {
		return 0
	}
	return busy.Seconds() / (float64(units) * span.Seconds())
}

// CommunicationHidden returns the fraction of transport time that did not
// extend the makespan beyond the compute-only lower bound: 1 means
// communication fully overlapped with computation.
func CommunicationHidden(s Stats, computeOnly time.Duration) float64 {
	if s.TransportBusy == 0 {
		return 1
	}
	exposed := s.Makespan - computeOnly
	if exposed < 0 {
		exposed = 0
	}
	if exposed >= s.TransportBusy {
		return 0
	}
	return 1 - float64(exposed)/float64(s.TransportBusy)
}
