package des

import (
	"context"
	"fmt"
	"time"

	"repro/internal/circuit"
)

// Runner is a reusable simulation arena bound to one (DAG, Config) pair:
// every per-instruction and per-qubit table RunDAG used to allocate — the
// dependency counters, the staging queues, the waiter lists, the residency
// LRU and the event heap — lives in the Runner and is rewound between runs.
// The first Run grows the waiter backing arrays to the circuit's high-water
// mark; after that a run performs no allocations at all, which is what the
// compile-once/evaluate-many arch engine needs to replay a precompiled
// workload allocation-free.
//
// A Runner is not safe for concurrent use; the arch engine keeps a pool.
type Runner struct {
	d      *circuit.DAG
	c      *circuit.Circuit
	cfg    Config
	winCap int

	remaining  []int // unmet dependencies
	missing    []int // operands not yet resident (window members)
	pending    *intQueue
	fetchQueue *intQueue
	readyRun   *intQueue
	waiters    [][]int32 // qubit -> staged instructions awaiting it
	res        *residency
	events     *minHeap[event]

	// Per-run mutable state, rewound by reset.
	seq            int
	now            time.Duration
	freeBlocks     int
	freeChannels   int
	window         int
	stats          Stats
	done           int
	lastStallCheck time.Duration
	stalledInstrs  int
}

// NewRunner validates the configuration and allocates every table one run
// of d's circuit needs. The staging window and event-arena sizing match
// RunDAG exactly; so does every statistic a Run produces.
func NewRunner(d *circuit.DAG, cfg Config) (*Runner, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	c := d.Circuit()
	n, nq := c.Len(), c.NumQubits()
	// Staging window: only a bounded number of dependency-ready
	// instructions hold operand pins at once, which keeps pin pressure
	// below the residency capacity and guarantees forward progress.
	winCap := cfg.ResidentQubits/3 - cfg.Blocks
	if winCap < 1 {
		winCap = 1
	}
	return &Runner{
		d:          d,
		c:          c,
		cfg:        cfg,
		winCap:     winCap,
		remaining:  make([]int, n),
		missing:    make([]int, n),
		pending:    newIntQueue(n),
		fetchQueue: newIntQueue(nq),
		readyRun:   newIntQueue(n),
		waiters:    make([][]int32, nq),
		res:        newResidency(cfg.ResidentQubits, nq),
		// Outstanding events are bounded by busy resources: one evInstrDone
		// per occupied block plus one evFetchDone per occupied channel.
		events: newMinHeap[event](cfg.Blocks+cfg.Channels, eventLess),
	}, nil
}

// reset rewinds the arena to the start-of-run state: queues emptied onto
// their retained backing arrays, residency and counters zeroed, dependency
// counts recomputed, source instructions staged as pending.
//
//cqla:noalloc
func (r *Runner) reset() {
	r.pending.reset()
	r.fetchQueue.reset()
	r.readyRun.reset()
	for q := range r.waiters {
		r.waiters[q] = r.waiters[q][:0] // keep the backing array across runs
	}
	r.res.reset()
	r.events.reset()
	r.seq = 0
	r.now = 0
	r.freeBlocks = r.cfg.Blocks
	r.freeChannels = r.cfg.Channels
	r.window = 0
	r.stats = Stats{}
	r.done = 0
	r.lastStallCheck = 0
	r.stalledInstrs = 0
	for i := 0; i < r.c.Len(); i++ {
		r.remaining[i] = len(r.d.Deps(i))
		if r.remaining[i] == 0 {
			r.pending.push(i)
		}
	}
}

//cqla:noalloc
func (r *Runner) pushEvent(at time.Duration, kind eventKind, id int) {
	r.seq++
	r.events.push(event{at: at, kind: kind, id: id, seq: r.seq})
}

// stage admits pending instructions into the window, pinning their
// operands and enqueueing fetches for the missing ones.
//
//cqla:noalloc
func (r *Runner) stage() {
	for r.window < r.winCap && r.pending.len() > 0 {
		i := r.pending.pop()
		r.window++
		miss := 0
		for _, q := range r.c.Instr(i).Operands() {
			r.res.pin(q)
			if r.res.contains(q) {
				r.res.touch(q)
				continue
			}
			miss++
			if len(r.waiters[q]) == 0 {
				r.fetchQueue.push(q)
			}
			//lint:ignore-cqla noalloc waiter lists reach their high-water mark on the first run and reuse the backing array after
			r.waiters[q] = append(r.waiters[q], int32(i))
		}
		r.missing[i] = miss
		if miss == 0 {
			r.readyRun.push(i)
		}
	}
}

//cqla:noalloc
func (r *Runner) startFetches() {
	for r.freeChannels > 0 && r.fetchQueue.len() > 0 {
		q := r.fetchQueue.peek()
		if !r.res.admit(q) {
			break // all residents pinned; retried after pins release
		}
		r.fetchQueue.pop()
		r.freeChannels--
		r.stats.Transports++
		r.stats.TransportBusy += r.cfg.TransportTime
		r.pushEvent(r.now+r.cfg.TransportTime, evFetchDone, q)
	}
}

//cqla:noalloc
func (r *Runner) startInstrs() {
	for r.freeBlocks > 0 && r.readyRun.len() > 0 {
		i := r.readyRun.pop()
		r.window-- // leaves the staging window; pins persist until done
		r.freeBlocks--
		dur := time.Duration(r.c.Instr(i).Slots()) * r.cfg.SlotTime
		r.stats.ComputeBusy += dur
		r.pushEvent(r.now+dur, evInstrDone, i)
	}
}

//cqla:noalloc
func (r *Runner) accountStall(t time.Duration) {
	if stalled := r.stalledInstrs; stalled > 0 && r.freeBlocks > 0 {
		win := t - r.lastStallCheck
		m := stalled
		if m > r.freeBlocks {
			m = r.freeBlocks
		}
		r.stats.StallTime += time.Duration(m) * win
	}
	r.lastStallCheck = t
}

// pump iterates staging, fetch starts and instruction starts to a fixed
// point: staging can unblock fetches, fetch admission can unblock staging.
//
//cqla:noalloc
func (r *Runner) pump() {
	for {
		before := r.fetchQueue.len() + r.readyRun.len() + r.pending.len() + r.freeBlocks + r.freeChannels
		r.stage()
		r.startFetches()
		r.startInstrs()
		after := r.fetchQueue.len() + r.readyRun.len() + r.pending.len() + r.freeBlocks + r.freeChannels
		if before == after {
			return
		}
	}
}

// Run simulates the circuit on the configured machine and returns the
// measured statistics. It may be called any number of times; every run
// starts from the same all-qubits-in-memory state and produces the same
// statistics RunDAG does.
//
//cqla:noalloc
func (r *Runner) Run(ctx context.Context) (Stats, error) {
	r.reset()
	n := r.c.Len()
	r.pump()
	r.stalledInstrs = r.pending.len() + r.window
	loops := 0
	for r.events.len() > 0 {
		if loops++; loops&1023 == 1 {
			if err := ctx.Err(); err != nil {
				return Stats{}, err
			}
		}
		ev := r.events.pop()
		r.accountStall(ev.at)
		r.now = ev.at
		switch ev.kind {
		case evFetchDone:
			r.freeChannels++
			q := ev.id
			for _, i := range r.waiters[q] {
				r.missing[i]--
				if r.missing[i] == 0 {
					r.readyRun.push(int(i))
				}
			}
			r.waiters[q] = r.waiters[q][:0] // keep the backing array for refetches
		case evInstrDone:
			r.freeBlocks++
			r.done++
			i := ev.id
			for _, q := range r.c.Instr(i).Operands() {
				r.res.unpin(q)
			}
			for _, s := range r.d.Succs(i) {
				r.remaining[s]--
				if r.remaining[s] == 0 {
					r.pending.push(s)
				}
			}
		}
		r.pump()
		r.stalledInstrs = r.pending.len() + r.window
		if r.events.len() == 0 && r.done < n {
			//lint:ignore-cqla noalloc deadlock reporting is a terminal failure path
			return Stats{}, fmt.Errorf("des: deadlock after %d/%d instructions", r.done, n)
		}
	}
	r.stats.Makespan = r.now
	r.stats.BlockUtilization = utilization(r.stats.ComputeBusy, r.cfg.Blocks, r.stats.Makespan)
	r.stats.ChannelUtilization = utilization(r.stats.TransportBusy, r.cfg.Channels, r.stats.Makespan)
	if r.done != n {
		//lint:ignore-cqla noalloc incomplete-run reporting is a terminal failure path
		return Stats{}, fmt.Errorf("des: finished %d of %d instructions", r.done, n)
	}
	return r.stats, nil
}

func (q *intQueue) reset() {
	q.buf = q.buf[:0]
	q.head = 0
}

func (h *minHeap[T]) reset() {
	h.a = h.a[:0]
}

// reset returns the residency set to empty with no pins. The intrusive
// prev/next links need no clearing: they are only read for resident qubits.
func (r *residency) reset() {
	r.size = 0
	r.head, r.tail = -1, -1
	for i := range r.resident {
		r.resident[i] = false
		r.pins[i] = 0
	}
}
