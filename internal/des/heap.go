package des

// minHeap is a generic binary min-heap over a pre-sized arena. It replaces
// container/heap on the simulator's hot path: the element type is concrete,
// so push and pop move values directly instead of boxing every event into
// an interface{}, and the backing array is allocated once at the caller's
// known high-water mark (one outstanding event per busy block or channel)
// so steady-state operation never touches the allocator.
//
// The comparator must induce a total order for the simulator to be
// deterministic; events carry a unique sequence number for exactly that.
type minHeap[T any] struct {
	a    []T
	less func(a, b T) bool
}

func newMinHeap[T any](capacity int, less func(a, b T) bool) *minHeap[T] {
	return &minHeap[T]{a: make([]T, 0, capacity), less: less}
}

func (h *minHeap[T]) len() int { return len(h.a) }

//cqla:noalloc
func (h *minHeap[T]) push(v T) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.a[i], h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

//cqla:noalloc
func (h *minHeap[T]) pop() T {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	var zero T
	h.a[last] = zero // release references held by pointer-carrying types
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(h.a[l], h.a[smallest]) {
			smallest = l
		}
		if r < last && h.less(h.a[r], h.a[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
}

// intQueue is a FIFO of ints over a reusable backing slice. Pops advance a
// head index instead of reslicing away the prefix (the old `q = q[1:]`
// idiom strands capacity and forces append to reallocate), and the dead
// prefix is recycled when it outgrows the live region, so a queue sized at
// construction never allocates again.
type intQueue struct {
	buf  []int
	head int
}

func newIntQueue(capacity int) *intQueue {
	return &intQueue{buf: make([]int, 0, capacity)}
}

func (q *intQueue) len() int { return len(q.buf) - q.head }

//cqla:noalloc
func (q *intQueue) push(v int) {
	if q.head == len(q.buf) {
		q.buf, q.head = q.buf[:0], 0
	} else if q.head > len(q.buf)-q.head {
		n := copy(q.buf, q.buf[q.head:])
		q.buf, q.head = q.buf[:n], 0
	}
	q.buf = append(q.buf, v)
}

//cqla:noalloc
func (q *intQueue) pop() int {
	v := q.buf[q.head]
	q.head++
	return v
}

func (q *intQueue) peek() int { return q.buf[q.head] }
