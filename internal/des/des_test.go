package des

import (
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/ecc"
	"repro/internal/gen"
	"repro/internal/phys"
	"repro/internal/sched"
)

func cfg(blocks, channels, resident int) Config {
	return Config{
		Blocks:         blocks,
		Channels:       channels,
		ResidentQubits: resident,
		SlotTime:       100 * time.Millisecond,
		TransportTime:  200 * time.Millisecond,
	}
}

func TestSerialChain(t *testing.T) {
	c := circuit.New(1)
	for i := 0; i < 5; i++ {
		c.AddH(0)
	}
	s, err := Run(c, cfg(2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	// One fetch (200ms) then five serial gates (500ms).
	want := 200*time.Millisecond + 5*100*time.Millisecond
	if s.Makespan != want {
		t.Errorf("makespan = %v, want %v", s.Makespan, want)
	}
	if s.Transports != 1 {
		t.Errorf("transports = %d, want 1", s.Transports)
	}
}

func TestComputeBusyConserved(t *testing.T) {
	ad := gen.CarryLookahead(8)
	s, err := Run(ad.Circuit, cfg(4, 4, 100))
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(ad.Circuit.Stats().TotalSlots) * (100 * time.Millisecond)
	if s.ComputeBusy != want {
		t.Errorf("compute busy = %v, want %v", s.ComputeBusy, want)
	}
	if s.BlockUtilization <= 0 || s.BlockUtilization > 1 {
		t.Errorf("block utilization = %g", s.BlockUtilization)
	}
	if s.ChannelUtilization <= 0 || s.ChannelUtilization > 1 {
		t.Errorf("channel utilization = %g", s.ChannelUtilization)
	}
}

func TestEveryQubitFetchedAtLeastOnce(t *testing.T) {
	ad := gen.CarryLookahead(4)
	s, err := Run(ad.Circuit, cfg(4, 4, 1000))
	if err != nil {
		t.Fatal(err)
	}
	// Capacity is ample, so each touched qubit is fetched exactly once.
	touched := map[int]bool{}
	for _, in := range ad.Circuit.Instrs() {
		for _, q := range in.Operands() {
			touched[q] = true
		}
	}
	if s.Transports != len(touched) {
		t.Errorf("transports = %d, want %d (one per touched qubit)", s.Transports, len(touched))
	}
}

func TestTightResidencyForcesRefetches(t *testing.T) {
	ad := gen.CarryLookahead(8)
	ample, err := Run(ad.Circuit, cfg(2, 2, 1000))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Run(ad.Circuit, cfg(2, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if tight.Transports <= ample.Transports {
		t.Errorf("tight residency should refetch: %d vs %d", tight.Transports, ample.Transports)
	}
	if tight.Makespan < ample.Makespan {
		t.Error("tight residency cannot be faster")
	}
}

func TestMoreChannelsNeverSlower(t *testing.T) {
	ad := gen.CarryLookahead(16)
	var prev time.Duration
	for i, ch := range []int{1, 2, 4, 8} {
		s, err := Run(ad.Circuit, cfg(4, ch, 60))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && s.Makespan > prev {
			t.Errorf("channels=%d slower than fewer channels: %v > %v", ch, s.Makespan, prev)
		}
		prev = s.Makespan
	}
}

func TestNoMemoryWall(t *testing.T) {
	// The paper's claim: with EC-dominated slot times, communication hides
	// under computation. Run the 32-bit adder on a Bacon-Shor level-2
	// machine (slot 0.1 s, transport 0.2 s) with the paper's 2-channel
	// perimeter scaled to the block count, and check that most transport
	// time is hidden.
	p := phys.Projected()
	bs := ecc.BaconShor()
	ad := gen.CarryLookahead(32)
	machineCfg := Config{
		Blocks:         9,
		Channels:       12, // 2 per block edge on the superblock perimeter
		ResidentQubits: 500,
		SlotTime:       bs.ECTime(2, p),
		TransportTime:  bs.TransversalGateTime(2, p),
	}
	s, err := Run(ad.Circuit, machineCfg)
	if err != nil {
		t.Fatal(err)
	}
	computeOnly := time.Duration(sched.ListSchedule(circuit.BuildDAG(ad.Circuit), 9).MakespanSlots) * machineCfg.SlotTime
	hidden := CommunicationHidden(s, computeOnly)
	if hidden < 0.8 {
		t.Errorf("only %.0f%% of communication hidden; the paper overlaps nearly all of it", 100*hidden)
	}
	// Total slowdown from communication stays small.
	if float64(s.Makespan) > 1.25*float64(computeOnly) {
		t.Errorf("communication inflated makespan %.2fx over compute-only", float64(s.Makespan)/float64(computeOnly))
	}
}

func TestStallTimeVisibleWhenStarved(t *testing.T) {
	// One channel and huge transport cost: instructions stall on operands.
	ad := gen.CarryLookahead(8)
	c := Config{
		Blocks:         4,
		Channels:       1,
		ResidentQubits: 100,
		SlotTime:       time.Millisecond,
		TransportTime:  time.Second,
	}
	s, err := Run(ad.Circuit, c)
	if err != nil {
		t.Fatal(err)
	}
	if s.StallTime == 0 {
		t.Error("starved machine should record stall time")
	}
	if s.ChannelUtilization < 0.9 {
		t.Errorf("the single channel should be saturated, got %.2f", s.ChannelUtilization)
	}
}

func TestRunValidation(t *testing.T) {
	c := circuit.New(1)
	c.AddH(0)
	bad := []Config{
		{Blocks: 0, Channels: 1, ResidentQubits: 4, SlotTime: time.Second},
		{Blocks: 1, Channels: 0, ResidentQubits: 4, SlotTime: time.Second},
		{Blocks: 1, Channels: 1, ResidentQubits: 2, SlotTime: time.Second},
		{Blocks: 1, Channels: 1, ResidentQubits: 4, SlotTime: 0},
	}
	for i, b := range bad {
		if _, err := Run(c, b); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestEmptyCircuit(t *testing.T) {
	s, err := Run(circuit.New(3), cfg(2, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 0 || s.Transports != 0 {
		t.Errorf("empty run: %+v", s)
	}
}

func TestDESMatchesSchedulerWhenCommunicationFree(t *testing.T) {
	// With zero transport time the DES must reproduce the list scheduler's
	// makespan on a serial-friendly workload.
	ad := gen.CarryLookahead(16)
	c := Config{
		Blocks:         5,
		Channels:       4,
		ResidentQubits: 10000,
		SlotTime:       time.Second,
		TransportTime:  0,
	}
	s, err := Run(ad.Circuit, c)
	if err != nil {
		t.Fatal(err)
	}
	ms := sched.ListSchedule(circuit.BuildDAG(ad.Circuit), 5).MakespanSlots
	got := int(s.Makespan / time.Second)
	// Both are greedy list schedules; allow small tie-breaking divergence.
	if diff := got - ms; diff < -ms/10 || diff > ms/10 {
		t.Errorf("DES makespan %d slots vs scheduler %d", got, ms)
	}
}

// TestUtilizationLargeMakespan: the old int arithmetic
// (busy / (units × int(span))) truncated the span to 32 bits on 32-bit
// platforms and overflows int64 once units × span passes ~2⁶³ ns. The
// chosen values put units × span at ~1.7e19 ns — past int64 — with every
// operand an exact power of two, so the float64 result must be exactly
// one half.
func TestUtilizationLargeMakespan(t *testing.T) {
	span := 4096 * time.Second // 2¹² s
	units := 1 << 22
	busy := time.Duration(1<<21) * 4096 * time.Second // units/2 × span
	if got := utilization(busy, units, span); got != 0.5 {
		t.Errorf("utilization(%v, %d, %v) = %v, want exactly 0.5", busy, units, span, got)
	}
}

func TestUtilizationSmallAndDegenerate(t *testing.T) {
	if got := utilization(3*time.Second, 2, 3*time.Second); got != 0.5 {
		t.Errorf("utilization(3s, 2, 3s) = %v, want 0.5", got)
	}
	if got := utilization(time.Second, 0, time.Second); got != 0 {
		t.Errorf("utilization with zero units = %v, want 0", got)
	}
	if got := utilization(time.Second, 4, 0); got != 0 {
		t.Errorf("utilization with zero span = %v, want 0", got)
	}
}

func BenchmarkDES64BitAdder(b *testing.B) {
	ad := gen.CarryLookahead(64)
	c := cfg(9, 12, 700)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ad.Circuit, c); err != nil {
			b.Fatal(err)
		}
	}
}
