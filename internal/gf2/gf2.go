// Package gf2 provides dense linear algebra over GF(2), the two-element
// field. It is the substrate for the stabilizer-code machinery in
// internal/ecc: parity-check matrices, syndrome computation, rank and
// null-space calculations all reduce to GF(2) row operations.
//
// Vectors and matrices are stored as packed 64-bit words, so the row
// operations used by Gaussian elimination are word-parallel.
package gf2

import (
	"fmt"
	"strings"
)

// Vec is a bit vector over GF(2) with a fixed length.
type Vec struct {
	n     int
	words []uint64
}

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec {
	if n < 0 {
		panic("gf2: negative vector length")
	}
	return Vec{n: n, words: make([]uint64, (n+63)/64)}
}

// Word builds a vector of length n (1 <= n <= 64) from the low n bits of w,
// bit i of the integer becoming bit i of the vector — the inverse of
// Uint64. It is deliberately tiny so it inlines: a caller that keeps the
// result on its stack pays no allocation, which is what makes the packed
// decode fast paths in internal/ecc allocation-free.
func Word(n int, w uint64) Vec {
	if n < 1 || n > 64 {
		panic("gf2: Word length outside [1,64]")
	}
	if n < 64 {
		w &= uint64(1)<<uint(n) - 1
	}
	return RawWord(n, w)
}

// RawWord is Word without validation or masking: n must be in [1, 64] and
// w must have no bits set at position n or above, or the resulting vector
// is corrupt. It exists for proven-safe hot paths (the packed decoders in
// internal/ecc) whose enclosing functions must stay within the compiler's
// inlining budget — RawWord's entire job is to be so small that a caller
// keeping the result on its stack pays no allocation. Everyone else should
// call Word.
func RawWord(n int, w uint64) Vec {
	return Vec{n: n, words: []uint64{w}}
}

// VecFromBits builds a vector from a slice of 0/1 ints.
func VecFromBits(bits []int) Vec {
	v := NewVec(len(bits))
	for i, b := range bits {
		if b != 0 {
			v.Set(i, true)
		}
	}
	return v
}

// VecFromString parses a vector from a string of '0' and '1' runes,
// ignoring spaces.
func VecFromString(s string) (Vec, error) {
	s = strings.ReplaceAll(s, " ", "")
	v := NewVec(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return Vec{}, fmt.Errorf("gf2: invalid bit character %q", r)
		}
	}
	return v, nil
}

// Len returns the vector's length in bits.
func (v Vec) Len() int { return v.n }

// Bit returns the bit at index i.
func (v Vec) Bit(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: bit index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i/64]>>(uint(i)%64)&1 == 1
}

// Set assigns the bit at index i.
func (v Vec) Set(i int, b bool) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: bit index %d out of range [0,%d)", i, v.n))
	}
	mask := uint64(1) << (uint(i) % 64)
	if b {
		v.words[i/64] |= mask
	} else {
		v.words[i/64] &^= mask
	}
}

// Flip toggles the bit at index i.
func (v Vec) Flip(i int) { v.Set(i, !v.Bit(i)) }

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := NewVec(v.n)
	copy(w.words, v.words)
	return w
}

// Xor sets v = v XOR u in place; the lengths must match.
func (v Vec) Xor(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: length mismatch %d vs %d", v.n, u.n))
	}
	for i := range v.words {
		v.words[i] ^= u.words[i]
	}
}

// And sets v = v AND u in place; the lengths must match.
func (v Vec) And(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: length mismatch %d vs %d", v.n, u.n))
	}
	for i := range v.words {
		v.words[i] &= u.words[i]
	}
}

// Dot returns the GF(2) inner product of v and u (the parity of the
// popcount of their AND).
func (v Vec) Dot(u Vec) bool {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: length mismatch %d vs %d", v.n, u.n))
	}
	var acc uint64
	for i := range v.words {
		acc ^= v.words[i] & u.words[i]
	}
	return popcount(acc)%2 == 1
}

// Weight returns the Hamming weight of v.
func (v Vec) Weight() int {
	w := 0
	for _, word := range v.words {
		w += popcount(word)
	}
	return w
}

// IsZero reports whether every bit of v is zero.
func (v Vec) IsZero() bool {
	for _, word := range v.words {
		if word != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and u have the same length and bits.
func (v Vec) Equal(u Vec) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// Support returns the indices of the set bits, in increasing order.
func (v Vec) Support() []int {
	var idx []int
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Uint64 packs the first min(64, Len) bits of v into a uint64, bit i of the
// vector becoming bit i of the integer. It is convenient as a map key for
// syndrome lookup tables of small codes.
func (v Vec) Uint64() uint64 {
	if v.n == 0 {
		return 0
	}
	w := v.words[0]
	if v.n < 64 {
		w &= (uint64(1) << uint(v.n)) - 1
	}
	return w
}

// String renders the vector as a bit string, most significant index last.
func (v Vec) String() string {
	var sb strings.Builder
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func popcount(x uint64) int {
	// Kernighan-free SWAR popcount; math/bits would work too but keeping
	// the package dependency-light makes it trivially portable.
	x = x - ((x >> 1) & 0x5555555555555555)
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

// Matrix is a dense GF(2) matrix stored as a slice of row vectors.
type Matrix struct {
	rows, cols int
	data       []Vec
}

// NewMatrix returns a zero matrix with the given dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("gf2: negative matrix dimension")
	}
	m := &Matrix{rows: rows, cols: cols, data: make([]Vec, rows)}
	for i := range m.data {
		m.data[i] = NewVec(cols)
	}
	return m
}

// MatrixFromStrings parses one row per string of '0'/'1' characters. All
// rows must have equal length.
func MatrixFromStrings(rows ...string) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	m := &Matrix{rows: len(rows)}
	for i, s := range rows {
		v, err := VecFromString(s)
		if err != nil {
			return nil, fmt.Errorf("gf2: row %d: %w", i, err)
		}
		if i == 0 {
			m.cols = v.Len()
		} else if v.Len() != m.cols {
			return nil, fmt.Errorf("gf2: row %d has length %d, want %d", i, v.Len(), m.cols)
		}
		m.data = append(m.data, v)
	}
	return m, nil
}

// MustMatrix is MatrixFromStrings that panics on error; for static tables.
func MustMatrix(rows ...string) *Matrix {
	m, err := MatrixFromStrings(rows...)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns the i-th row vector (shared storage, not a copy).
func (m *Matrix) Row(i int) Vec {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("gf2: row index %d out of range [0,%d)", i, m.rows))
	}
	return m.data[i]
}

// At returns the bit at (row i, column j).
func (m *Matrix) At(i, j int) bool { return m.Row(i).Bit(j) }

// Set assigns the bit at (row i, column j).
func (m *Matrix) Set(i, j int, b bool) { m.Row(i).Set(j, b) }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]Vec, m.rows)}
	for i, r := range m.data {
		c.data[i] = r.Clone()
	}
	return c
}

// MulVec returns m·v over GF(2); v must have length Cols, and the result
// has length Rows. For a parity-check matrix this is exactly the syndrome
// of the error vector v.
func (m *Matrix) MulVec(v Vec) Vec {
	if v.Len() != m.cols {
		panic(fmt.Sprintf("gf2: vector length %d, want %d", v.Len(), m.cols))
	}
	out := NewVec(m.rows)
	for i, row := range m.data {
		if row.Dot(v) {
			out.Set(i, true)
		}
	}
	return out
}

// Rank returns the GF(2) rank of the matrix. The receiver is not modified.
func (m *Matrix) Rank() int {
	work := m.Clone()
	rank := 0
	for col := 0; col < work.cols && rank < work.rows; col++ {
		pivot := -1
		for r := rank; r < work.rows; r++ {
			if work.data[r].Bit(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work.data[rank], work.data[pivot] = work.data[pivot], work.data[rank]
		for r := 0; r < work.rows; r++ {
			if r != rank && work.data[r].Bit(col) {
				work.data[r].Xor(work.data[rank])
			}
		}
		rank++
	}
	return rank
}

// NullSpace returns a basis of the right null space of m: every returned
// vector x satisfies m·x = 0. For a stabilizer parity-check matrix the null
// space spans the code (up to logical operators).
func (m *Matrix) NullSpace() []Vec {
	work := m.Clone()
	pivotCol := make([]int, 0, work.rows)
	rank := 0
	for col := 0; col < work.cols && rank < work.rows; col++ {
		pivot := -1
		for r := rank; r < work.rows; r++ {
			if work.data[r].Bit(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work.data[rank], work.data[pivot] = work.data[pivot], work.data[rank]
		for r := 0; r < work.rows; r++ {
			if r != rank && work.data[r].Bit(col) {
				work.data[r].Xor(work.data[rank])
			}
		}
		pivotCol = append(pivotCol, col)
		rank++
	}
	isPivot := make([]bool, work.cols)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	var basis []Vec
	for free := 0; free < work.cols; free++ {
		if isPivot[free] {
			continue
		}
		x := NewVec(work.cols)
		x.Set(free, true)
		for r, pc := range pivotCol {
			if work.data[r].Bit(free) {
				x.Set(pc, true)
			}
		}
		basis = append(basis, x)
	}
	return basis
}

// String renders the matrix one row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i, r := range m.data {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(r.String())
	}
	return sb.String()
}
