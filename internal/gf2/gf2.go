// Package gf2 provides dense linear algebra over GF(2), the two-element
// field. It is the substrate for the stabilizer-code machinery in
// internal/ecc: parity-check matrices, syndrome computation, rank and
// null-space calculations all reduce to GF(2) row operations.
//
// Vectors and matrices are stored as packed 64-bit words, so the row
// operations used by Gaussian elimination are word-parallel.
package gf2

import (
	"fmt"
	"strings"
)

// Vec is a bit vector over GF(2) with a fixed length.
//
// Vectors of at most 64 bits — every vector the stabilizer machinery in
// internal/ecc touches — live entirely in the inline word: constructing,
// copying or returning one never allocates. Wider vectors spill into a
// heap-backed word slice.
//
// The small-vector representation makes mutation methods (Set, Flip, Xor,
// And) pointer-receiver methods: a value copy of a small vector is an
// independent vector, so mutating a copy could never write back. Wide
// vectors share their backing slice across value copies; treat copies as
// read-only views and use Clone for an independent wide vector.
type Vec struct {
	n    int
	word uint64   // the bits, when n <= 64
	ext  []uint64 // the packed words, when n > 64; nil otherwise
}

// small reports whether the vector fits the inline word.
func (v Vec) small() bool { return v.n <= 64 }

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec {
	if n < 0 {
		panic("gf2: negative vector length")
	}
	if n <= 64 {
		return Vec{n: n}
	}
	return Vec{n: n, ext: make([]uint64, (n+63)/64)}
}

// Word builds a vector of length n (1 <= n <= 64) from the low n bits of w,
// bit i of the integer becoming bit i of the vector — the inverse of
// Uint64. It is deliberately tiny so it inlines and never allocates: the
// result is one inline word on the caller's stack, which is what keeps the
// packed decode paths in internal/ecc allocation-free.
func Word(n int, w uint64) Vec {
	if n < 1 || n > 64 {
		panic("gf2: Word length outside [1,64]")
	}
	if n < 64 {
		w &= uint64(1)<<uint(n) - 1
	}
	return RawWord(n, w)
}

// RawWord is Word without validation or masking: n must be in [1, 64] and
// w must have no bits set at position n or above, or the resulting vector
// is corrupt. It exists for proven-safe hot paths (the packed decoders in
// internal/ecc) whose enclosing functions must stay within the compiler's
// inlining budget — RawWord is a two-field struct literal, free to build
// and free to return. Everyone else should call Word.
func RawWord(n int, w uint64) Vec {
	return Vec{n: n, word: w}
}

// VecFromBits builds a vector from a slice of 0/1 ints.
func VecFromBits(bits []int) Vec {
	v := NewVec(len(bits))
	for i, b := range bits {
		if b != 0 {
			v.Set(i, true)
		}
	}
	return v
}

// VecFromString parses a vector from a string of '0' and '1' runes,
// ignoring spaces.
func VecFromString(s string) (Vec, error) {
	s = strings.ReplaceAll(s, " ", "")
	v := NewVec(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return Vec{}, fmt.Errorf("gf2: invalid bit character %q", r)
		}
	}
	return v, nil
}

// Len returns the vector's length in bits.
func (v Vec) Len() int { return v.n }

// Bit returns the bit at index i.
func (v Vec) Bit(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: bit index %d out of range [0,%d)", i, v.n))
	}
	if v.small() {
		return v.word>>uint(i)&1 == 1
	}
	return v.ext[i/64]>>(uint(i)%64)&1 == 1
}

// Set assigns the bit at index i.
func (v *Vec) Set(i int, b bool) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: bit index %d out of range [0,%d)", i, v.n))
	}
	mask := uint64(1) << (uint(i) % 64)
	switch {
	case v.small() && b:
		v.word |= mask
	case v.small():
		v.word &^= mask
	case b:
		v.ext[i/64] |= mask
	default:
		v.ext[i/64] &^= mask
	}
}

// Flip toggles the bit at index i.
func (v *Vec) Flip(i int) { v.Set(i, !v.Bit(i)) }

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	if v.small() {
		return v // the value copy is already independent
	}
	w := NewVec(v.n)
	copy(w.ext, v.ext)
	return w
}

// Xor sets v = v XOR u in place; the lengths must match.
func (v *Vec) Xor(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: length mismatch %d vs %d", v.n, u.n))
	}
	if v.small() {
		v.word ^= u.word
		return
	}
	for i := range v.ext {
		v.ext[i] ^= u.ext[i]
	}
}

// And sets v = v AND u in place; the lengths must match.
func (v *Vec) And(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: length mismatch %d vs %d", v.n, u.n))
	}
	if v.small() {
		v.word &= u.word
		return
	}
	for i := range v.ext {
		v.ext[i] &= u.ext[i]
	}
}

// Dot returns the GF(2) inner product of v and u (the parity of the
// popcount of their AND).
func (v Vec) Dot(u Vec) bool {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: length mismatch %d vs %d", v.n, u.n))
	}
	if v.small() {
		return popcount(v.word&u.word)%2 == 1
	}
	var acc uint64
	for i := range v.ext {
		acc ^= v.ext[i] & u.ext[i]
	}
	return popcount(acc)%2 == 1
}

// Weight returns the Hamming weight of v.
func (v Vec) Weight() int {
	if v.small() {
		return popcount(v.word)
	}
	w := 0
	for _, word := range v.ext {
		w += popcount(word)
	}
	return w
}

// IsZero reports whether every bit of v is zero.
func (v Vec) IsZero() bool {
	if v.small() {
		return v.word == 0
	}
	for _, word := range v.ext {
		if word != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and u have the same length and bits.
func (v Vec) Equal(u Vec) bool {
	if v.n != u.n {
		return false
	}
	if v.small() {
		return v.word == u.word
	}
	for i := range v.ext {
		if v.ext[i] != u.ext[i] {
			return false
		}
	}
	return true
}

// Support returns the indices of the set bits, in increasing order.
func (v Vec) Support() []int {
	var idx []int
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Uint64 packs the first min(64, Len) bits of v into a uint64, bit i of the
// vector becoming bit i of the integer. It is convenient as a map key for
// syndrome lookup tables of small codes.
func (v Vec) Uint64() uint64 {
	if v.n == 0 {
		return 0
	}
	if !v.small() {
		return v.ext[0]
	}
	w := v.word
	if v.n < 64 {
		w &= (uint64(1) << uint(v.n)) - 1
	}
	return w
}

// String renders the vector as a bit string, most significant index last.
func (v Vec) String() string {
	var sb strings.Builder
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func popcount(x uint64) int {
	// Kernighan-free SWAR popcount; math/bits would work too but keeping
	// the package dependency-light makes it trivially portable.
	x = x - ((x >> 1) & 0x5555555555555555)
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

// Matrix is a dense GF(2) matrix stored as a slice of row vectors.
type Matrix struct {
	rows, cols int
	data       []Vec
}

// NewMatrix returns a zero matrix with the given dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("gf2: negative matrix dimension")
	}
	m := &Matrix{rows: rows, cols: cols, data: make([]Vec, rows)}
	for i := range m.data {
		m.data[i] = NewVec(cols)
	}
	return m
}

// MatrixFromStrings parses one row per string of '0'/'1' characters. All
// rows must have equal length.
func MatrixFromStrings(rows ...string) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	m := &Matrix{rows: len(rows)}
	for i, s := range rows {
		v, err := VecFromString(s)
		if err != nil {
			return nil, fmt.Errorf("gf2: row %d: %w", i, err)
		}
		if i == 0 {
			m.cols = v.Len()
		} else if v.Len() != m.cols {
			return nil, fmt.Errorf("gf2: row %d has length %d, want %d", i, v.Len(), m.cols)
		}
		m.data = append(m.data, v)
	}
	return m, nil
}

// MustMatrix is MatrixFromStrings that panics on error; for static tables.
func MustMatrix(rows ...string) *Matrix {
	m, err := MatrixFromStrings(rows...)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns the i-th row vector. Treat it as read-only: a row of at
// most 64 columns is an independent value copy (mutations never write
// back), while a wider row still shares the matrix's storage. Mutate
// through Matrix.Set instead.
func (m *Matrix) Row(i int) Vec {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("gf2: row index %d out of range [0,%d)", i, m.rows))
	}
	return m.data[i]
}

// At returns the bit at (row i, column j).
func (m *Matrix) At(i, j int) bool { return m.Row(i).Bit(j) }

// Set assigns the bit at (row i, column j).
func (m *Matrix) Set(i, j int, b bool) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("gf2: row index %d out of range [0,%d)", i, m.rows))
	}
	m.data[i].Set(j, b)
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]Vec, m.rows)}
	for i, r := range m.data {
		c.data[i] = r.Clone()
	}
	return c
}

// MulVec returns m·v over GF(2); v must have length Cols, and the result
// has length Rows. For a parity-check matrix this is exactly the syndrome
// of the error vector v.
func (m *Matrix) MulVec(v Vec) Vec {
	if v.Len() != m.cols {
		panic(fmt.Sprintf("gf2: vector length %d, want %d", v.Len(), m.cols))
	}
	out := NewVec(m.rows)
	for i, row := range m.data {
		if row.Dot(v) {
			out.Set(i, true)
		}
	}
	return out
}

// Rank returns the GF(2) rank of the matrix. The receiver is not modified.
func (m *Matrix) Rank() int {
	work := m.Clone()
	rank := 0
	for col := 0; col < work.cols && rank < work.rows; col++ {
		pivot := -1
		for r := rank; r < work.rows; r++ {
			if work.data[r].Bit(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work.data[rank], work.data[pivot] = work.data[pivot], work.data[rank]
		for r := 0; r < work.rows; r++ {
			if r != rank && work.data[r].Bit(col) {
				work.data[r].Xor(work.data[rank])
			}
		}
		rank++
	}
	return rank
}

// NullSpace returns a basis of the right null space of m: every returned
// vector x satisfies m·x = 0. For a stabilizer parity-check matrix the null
// space spans the code (up to logical operators).
func (m *Matrix) NullSpace() []Vec {
	work := m.Clone()
	pivotCol := make([]int, 0, work.rows)
	rank := 0
	for col := 0; col < work.cols && rank < work.rows; col++ {
		pivot := -1
		for r := rank; r < work.rows; r++ {
			if work.data[r].Bit(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work.data[rank], work.data[pivot] = work.data[pivot], work.data[rank]
		for r := 0; r < work.rows; r++ {
			if r != rank && work.data[r].Bit(col) {
				work.data[r].Xor(work.data[rank])
			}
		}
		pivotCol = append(pivotCol, col)
		rank++
	}
	isPivot := make([]bool, work.cols)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	var basis []Vec
	for free := 0; free < work.cols; free++ {
		if isPivot[free] {
			continue
		}
		x := NewVec(work.cols)
		x.Set(free, true)
		for r, pc := range pivotCol {
			if work.data[r].Bit(free) {
				x.Set(pc, true)
			}
		}
		basis = append(basis, x)
	}
	return basis
}

// String renders the matrix one row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i, r := range m.data {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(r.String())
	}
	return sb.String()
}
