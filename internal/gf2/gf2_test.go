package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := NewVec(130)
	if v.Len() != 130 {
		t.Fatalf("len = %d", v.Len())
	}
	if !v.IsZero() {
		t.Error("new vec should be zero")
	}
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	if v.Weight() != 3 {
		t.Errorf("weight = %d, want 3", v.Weight())
	}
	if !v.Bit(64) || v.Bit(63) {
		t.Error("bit placement wrong across word boundary")
	}
	v.Flip(64)
	if v.Bit(64) {
		t.Error("flip did not clear")
	}
}

func TestVecFromBitsAndString(t *testing.T) {
	v := VecFromBits([]int{1, 0, 1, 1})
	if v.String() != "1011" {
		t.Errorf("String = %q", v.String())
	}
	u, err := VecFromString("10 11")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(u) {
		t.Error("parse mismatch")
	}
	if _, err := VecFromString("10x1"); err == nil {
		t.Error("invalid character should error")
	}
}

func TestXorDotWeight(t *testing.T) {
	a := VecFromBits([]int{1, 1, 0, 1})
	b := VecFromBits([]int{0, 1, 1, 1})
	if !a.Dot(b) {
		// common support {1,3}: parity 0 -> false. Recompute expectation:
		// a&b = 0,1,0,1 -> weight 2 -> even -> Dot false.
	} else {
		t.Error("dot of even overlap should be false")
	}
	a.Xor(b)
	if a.String() != "1010" {
		t.Errorf("xor = %q", a.String())
	}
}

func TestSupportAndUint64(t *testing.T) {
	v := VecFromBits([]int{0, 1, 0, 0, 1})
	sup := v.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 4 {
		t.Errorf("support = %v", sup)
	}
	if v.Uint64() != 0b10010 {
		t.Errorf("uint64 = %b", v.Uint64())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := VecFromBits([]int{1, 0, 1})
	b := a.Clone()
	b.Flip(0)
	if !a.Bit(0) {
		t.Error("clone shares storage")
	}
}

func TestMatrixParseAndAccess(t *testing.T) {
	m := MustMatrix(
		"1010101",
		"0110011",
		"0001111",
	)
	if m.Rows() != 3 || m.Cols() != 7 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	if !m.At(0, 0) || m.At(0, 1) {
		t.Error("parse placed bits wrong")
	}
	m.Set(0, 1, true)
	if !m.At(0, 1) {
		t.Error("Set failed")
	}
	if _, err := MatrixFromStrings("101", "10"); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestMulVecIsSyndrome(t *testing.T) {
	// Hamming(7,4) check matrix; e_i should produce the binary of i+1 in
	// column-index form. Columns here are 1..7 in binary (rows are the
	// bit-planes).
	h := MustMatrix(
		"1010101",
		"0110011",
		"0001111",
	)
	for i := 0; i < 7; i++ {
		e := NewVec(7)
		e.Set(i, true)
		s := h.MulVec(e)
		got := 0
		if s.Bit(0) {
			got |= 1
		}
		if s.Bit(1) {
			got |= 2
		}
		if s.Bit(2) {
			got |= 4
		}
		if got != i+1 {
			t.Errorf("syndrome of e%d = %d, want %d", i, got, i+1)
		}
	}
}

func TestRank(t *testing.T) {
	m := MustMatrix(
		"1010101",
		"0110011",
		"0001111",
	)
	if r := m.Rank(); r != 3 {
		t.Errorf("rank = %d, want 3", r)
	}
	dep := MustMatrix(
		"110",
		"011",
		"101", // = row0 XOR row1
	)
	if r := dep.Rank(); r != 2 {
		t.Errorf("rank = %d, want 2", r)
	}
	if NewMatrix(0, 5).Rank() != 0 {
		t.Error("empty matrix rank should be 0")
	}
}

func TestNullSpace(t *testing.T) {
	m := MustMatrix(
		"1010101",
		"0110011",
		"0001111",
	)
	basis := m.NullSpace()
	if len(basis) != 4 { // dim null = 7 - rank 3
		t.Fatalf("null space dim = %d, want 4", len(basis))
	}
	for i, x := range basis {
		if !m.MulVec(x).IsZero() {
			t.Errorf("basis[%d] not in null space", i)
		}
		if x.IsZero() {
			t.Errorf("basis[%d] is zero", i)
		}
	}
	// Basis vectors must be linearly independent: stack them and check rank.
	stack := NewMatrix(len(basis), m.Cols())
	for i, x := range basis {
		for j := 0; j < m.Cols(); j++ {
			stack.Set(i, j, x.Bit(j))
		}
	}
	if stack.Rank() != len(basis) {
		t.Error("null space basis is linearly dependent")
	}
}

func TestRankDoesNotMutate(t *testing.T) {
	m := MustMatrix("110", "011")
	before := m.String()
	m.Rank()
	if m.String() != before {
		t.Error("Rank mutated the matrix")
	}
}

// Property: for random vectors, (a xor b) dot c == (a dot c) xor (b dot c) —
// bilinearity of the GF(2) inner product.
func TestDotBilinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b, c := randVec(rng, n), randVec(rng, n), randVec(rng, n)
		ab := a.Clone()
		ab.Xor(b)
		return ab.Dot(c) == (a.Dot(c) != b.Dot(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: weight(a xor b) = weight(a) + weight(b) - 2*weight(a and b).
func TestXorWeightProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, b := randVec(rng, n), randVec(rng, n)
		and := a.Clone()
		and.And(b)
		xor := a.Clone()
		xor.Xor(b)
		return xor.Weight() == a.Weight()+b.Weight()-2*and.Weight()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MulVec is linear: H(a xor b) = Ha xor Hb.
func TestMulVecLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(60)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.Intn(2) == 1)
			}
		}
		a, b := randVec(rng, cols), randVec(rng, cols)
		ab := a.Clone()
		ab.Xor(b)
		lhs := m.MulVec(ab)
		rhs := m.MulVec(a)
		rhs.Xor(m.MulVec(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randVec(rng *rand.Rand, n int) Vec {
	v := NewVec(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(64, 1024)
	for i := 0; i < 64; i++ {
		for j := 0; j < 1024; j++ {
			m.Set(i, j, rng.Intn(2) == 1)
		}
	}
	v := randVec(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(v)
	}
}
