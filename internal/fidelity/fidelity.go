// Package fidelity implements the fault-tolerance accounting that licenses
// the CQLA's memory hierarchy: an application of size S = K·Q (K time
// steps over Q logical qubits) tolerates a per-operation logical failure
// rate of at most 1/KQ, and the fraction of work allowed at the fast but
// less reliable level-1 encoding follows from Gottesman's local-gate
// estimate (Equation 1 of the paper) at each level.
package fidelity

import (
	"fmt"

	"repro/internal/ecc"
)

// AppSize describes an application's fault-tolerance demand.
type AppSize struct {
	// K is the number of logical time steps.
	K float64
	// Q is the number of logical qubits.
	Q float64
}

// ModExpAppSize estimates the size of an n-bit modular exponentiation:
// Q = 5n+3 logical qubits and K = 2n² adder-level macro time steps. The
// budget is allocated at the paper's granularity — one "operation" per
// logical qubit per addition — which is what makes its statement "if all
// operations were equally divided between level 1 and level 2 the system
// will maintain its fidelity" come out true for the 1024-bit instance
// (KQ ~ 10^10 against a level-1 failure rate of ~10^-10).
func ModExpAppSize(n int) AppSize {
	adders := 2 * float64(n) * float64(n)
	return AppSize{K: adders, Q: 5*float64(n) + 3}
}

// Target returns the admissible per-operation failure probability 1/KQ.
func (a AppSize) Target() float64 {
	kq := a.K * a.Q
	if kq <= 0 {
		panic(fmt.Sprintf("fidelity: non-positive application size %+v", a))
	}
	return 1 / kq
}

// Budget evaluates level mixes for one code under one physical failure rate.
type Budget struct {
	Code *ecc.Code
	// P0 is the effective physical component failure probability.
	P0 float64
	// CommDistance is the r of Equation 1 (cells between level-1 blocks).
	CommDistance float64
}

// NewBudget returns a budget with the QLA floorplan's communication
// distance.
func NewBudget(code *ecc.Code, p0 float64) Budget {
	return Budget{Code: code, P0: p0, CommDistance: ecc.DefaultCommDistance}
}

// FailureAt returns the logical failure rate per operation at a level.
func (b Budget) FailureAt(level int) float64 {
	return b.Code.LogicalFailureRate(level, b.P0, b.CommDistance)
}

// MaxLevel1Fraction returns the largest fraction f of operations that can
// run at level 1 (the rest at level 2) while the mean per-operation failure
// stays within target: f·Pf(1) + (1-f)·Pf(2) <= target. The result is
// clamped to [0, 1]; 0 means even pure level-2 operation misses the target.
func (b Budget) MaxLevel1Fraction(target float64) float64 {
	p1, p2 := b.FailureAt(1), b.FailureAt(2)
	if p2 > target {
		return 0
	}
	if p1 <= target {
		return 1
	}
	f := (target - p2) / (p1 - p2)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// MixFailure returns the mean per-operation failure when opsL1 operations
// run at level 1 for every opsL2 at level 2 (the paper performs one level-1
// addition for every two level-2 additions).
func (b Budget) MixFailure(opsL1, opsL2 int) float64 {
	if opsL1 < 0 || opsL2 < 0 || opsL1+opsL2 == 0 {
		panic(fmt.Sprintf("fidelity: invalid mix %d:%d", opsL1, opsL2))
	}
	total := float64(opsL1 + opsL2)
	return (float64(opsL1)*b.FailureAt(1) + float64(opsL2)*b.FailureAt(2)) / total
}

// MixMeetsTarget reports whether the opsL1:opsL2 mix keeps the mean failure
// within the application's budget.
func (b Budget) MixMeetsTarget(opsL1, opsL2 int, app AppSize) bool {
	return b.MixFailure(opsL1, opsL2) <= app.Target()
}

// Level1TimeFraction converts an operation mix into a time fraction given
// the per-operation durations at each level: the paper's observation that
// level-1 error correction takes ~1% of the level-2 time means an equal
// operation split spends only ~2% of wall-clock time at level 1.
func Level1TimeFraction(opsL1, opsL2 int, timeL1, timeL2 float64) float64 {
	t1 := float64(opsL1) * timeL1
	t2 := float64(opsL2) * timeL2
	if t1+t2 == 0 {
		return 0
	}
	return t1 / (t1 + t2)
}
