package fidelity

import (
	"math"
	"testing"

	"repro/internal/ecc"
	"repro/internal/phys"
)

func steaneBudget() Budget {
	return NewBudget(ecc.Steane(), phys.Projected().AverageFailure())
}

func TestTargetIsReciprocalKQ(t *testing.T) {
	app := AppSize{K: 1e8, Q: 5e3}
	if got := app.Target(); math.Abs(got-1/(1e8*5e3))/got > 1e-12 {
		t.Errorf("target = %g", got)
	}
}

func TestModExpAppSizeScale(t *testing.T) {
	app := ModExpAppSize(1024)
	if app.Q != 5*1024+3 {
		t.Errorf("Q = %g", app.Q)
	}
	kq := app.K * app.Q
	// The 1024-bit analysis operates around KQ ~ 10^10 at the paper's
	// adder-level budget granularity.
	if kq < 1e9 || kq > 1e12 {
		t.Errorf("KQ = %g outside expected scale", kq)
	}
}

func TestFailureDecreasesWithLevel(t *testing.T) {
	b := steaneBudget()
	if !(b.FailureAt(2) < b.FailureAt(1) && b.FailureAt(1) < b.P0) {
		t.Errorf("failure not decreasing: p0=%g p1=%g p2=%g", b.P0, b.FailureAt(1), b.FailureAt(2))
	}
}

func TestMaxLevel1FractionBoundaries(t *testing.T) {
	b := steaneBudget()
	p1, p2 := b.FailureAt(1), b.FailureAt(2)
	// Target below even the level-2 rate: nothing is allowed.
	if f := b.MaxLevel1Fraction(p2 / 10); f != 0 {
		t.Errorf("unreachable target allowed f=%g", f)
	}
	// Target above the level-1 rate: everything may run at level 1.
	if f := b.MaxLevel1Fraction(p1 * 10); f != 1 {
		t.Errorf("loose target gave f=%g", f)
	}
	// A target midway allows an interior fraction, and the resulting mix
	// exactly meets the budget.
	target := (p1 + p2) / 2
	f := b.MaxLevel1Fraction(target)
	if f <= 0 || f >= 1 {
		t.Fatalf("interior target gave f=%g", f)
	}
	mean := f*p1 + (1-f)*p2
	if math.Abs(mean-target)/target > 1e-9 {
		t.Errorf("fraction %g gives mean %g, target %g", f, mean, target)
	}
}

func TestPaperLevel1MixIsSafe(t *testing.T) {
	// The paper's policy: one level-1 addition for every two level-2
	// additions "to comfortably maintain the fidelity of the system", for
	// the 1024-bit modular exponentiation.
	app := ModExpAppSize(1024)
	for _, c := range ecc.Codes() {
		b := NewBudget(c, phys.Projected().AverageFailure())
		if !b.MixMeetsTarget(1, 2, app) {
			t.Errorf("%s: the 1:2 mix should meet the 1024-bit budget (mix %g vs target %g)",
				c.Short, b.MixFailure(1, 2), app.Target())
		}
	}
}

func TestBaconShorAllowsLargerLevel1Share(t *testing.T) {
	// "The Bacon-Shor ECC ... results are more favourable due to a higher
	// threshold." Compare at a demanding budget so neither code saturates
	// at fraction 1.
	p0 := phys.Projected().AverageFailure()
	target := 1e-11
	st := NewBudget(ecc.Steane(), p0).MaxLevel1Fraction(target)
	bs := NewBudget(ecc.BaconShor(), p0).MaxLevel1Fraction(target)
	if bs <= st {
		t.Errorf("Bacon-Shor fraction %g should exceed Steane %g", bs, st)
	}
	if st <= 0 || bs >= 1 {
		t.Errorf("expected interior fractions, got st=%g bs=%g", st, bs)
	}
}

func TestMixFailureWeighting(t *testing.T) {
	b := steaneBudget()
	p1, p2 := b.FailureAt(1), b.FailureAt(2)
	got := b.MixFailure(1, 2)
	want := (p1 + 2*p2) / 3
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("mix failure = %g, want %g", got, want)
	}
	if got := b.MixFailure(0, 5); math.Abs(got-p2)/p2 > 1e-12 {
		t.Errorf("pure level-2 mix = %g, want %g", got, p2)
	}
}

func TestLevel1TimeFraction(t *testing.T) {
	// Equal operation split with level-1 ops costing 1% of level-2 ops:
	// ~1% of wall-clock time at level 1 (the paper quotes ~2% as the safe
	// ceiling).
	f := Level1TimeFraction(1, 1, 0.0031, 0.3)
	if f < 0.005 || f > 0.02 {
		t.Errorf("time fraction = %g, want ~1%%", f)
	}
	if Level1TimeFraction(0, 3, 1, 1) != 0 {
		t.Error("no level-1 ops should give zero fraction")
	}
	if Level1TimeFraction(0, 0, 1, 1) != 0 {
		t.Error("empty mix should give zero")
	}
}

func TestPaperTwoPercentClaim(t *testing.T) {
	// Section 5.2: with projected parameters the Steane system may spend
	// only a small share of execution time at level 1; the 1:2 addition mix
	// with level-1 additions ~100x faster lands well inside it.
	b := steaneBudget()
	app := ModExpAppSize(1024)
	maxOps := b.MaxLevel1Fraction(app.Target())
	// Convert the allowed operation fraction to a time fraction.
	tf := Level1TimeFraction(1, 2, 0.0031, 0.3)
	if tf > maxOps {
		// Time fraction is tiny; the ops budget must accommodate it.
		t.Errorf("1:2 mix time fraction %g exceeds allowed ops fraction %g", tf, maxOps)
	}
}

func TestMixPanicsOnBadInput(t *testing.T) {
	b := steaneBudget()
	for _, f := range []func(){
		func() { b.MixFailure(-1, 2) },
		func() { b.MixFailure(0, 0) },
		func() { AppSize{K: 0, Q: 10}.Target() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
