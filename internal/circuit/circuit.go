// Package circuit defines the logical instruction set of the CQLA study and
// the circuit intermediate representation shared by the generators, the
// schedulers, the cache simulator and the functional validator.
//
// An instruction is a logical gate on logical qubits — the paper's
// "assembly language" input to its simulator. Costs are expressed in
// two-qubit-gate slots: single- and two-qubit transversal gates take one
// slot (one logical gate followed by one error-correction round); a
// fault-tolerant Toffoli takes fifteen (Section 5.1 of the paper).
package circuit

import (
	"fmt"
	"math"
)

// Kind enumerates logical gate kinds.
type Kind int

const (
	// X is the logical bit-flip.
	X Kind = iota
	// Z is the logical phase-flip.
	Z
	// H is the logical Hadamard.
	H
	// S is the logical phase gate.
	S
	// T is the logical π/8 gate.
	T
	// Tdg is the inverse of T.
	Tdg
	// CNOT is the logical controlled-NOT (qubit 0 controls qubit 1).
	CNOT
	// CZ is the logical controlled-Z.
	CZ
	// CPhase is a controlled phase rotation by Angle (used by the QFT).
	CPhase
	// Toffoli is the doubly-controlled NOT (qubits 0,1 control qubit 2).
	Toffoli
	// Measure is a computational-basis readout.
	Measure

	numKinds
)

var kindInfo = [numKinds]struct {
	name   string
	arity  int
	slots  int
	twoQEq int // equivalent number of physical-level two-qubit gate rounds
}{
	X:       {"x", 1, 1, 1},
	Z:       {"z", 1, 1, 1},
	H:       {"h", 1, 1, 1},
	S:       {"s", 1, 1, 1},
	T:       {"t", 1, 1, 1},
	Tdg:     {"tdg", 1, 1, 1},
	CNOT:    {"cnot", 2, 1, 1},
	CZ:      {"cz", 2, 1, 1},
	CPhase:  {"cphase", 2, 1, 1},
	Toffoli: {"toffoli", 3, ToffoliSlots, ToffoliSlots},
	Measure: {"measure", 1, 1, 1},
}

// ToffoliSlots is the cost of a fault-tolerant Toffoli in two-qubit-gate
// slots: "the time to perform a single fault-tolerant toffoli is equal to
// the time for fifteen two qubit gates, each of which is followed by an
// error-correction step".
const ToffoliSlots = 15

// String returns the lower-case mnemonic of the kind.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("circuit.Kind(%d)", int(k))
	}
	return kindInfo[k].name
}

// Arity returns the number of qubit operands the kind takes.
func (k Kind) Arity() int { return kindInfo[k].arity }

// Slots returns the kind's duration in two-qubit-gate slots.
func (k Kind) Slots() int { return kindInfo[k].slots }

// Instr is one logical instruction. Qubits is Arity() logical qubit
// indices; Angle is used only by CPhase.
type Instr struct {
	Kind   Kind
	Qubits [3]int
	Angle  float64
}

// NewInstr builds an instruction, validating arity and operand distinctness.
func NewInstr(k Kind, qubits ...int) Instr {
	if len(qubits) != k.Arity() {
		panic(fmt.Sprintf("circuit: %v takes %d operands, got %d", k, k.Arity(), len(qubits)))
	}
	var in Instr
	in.Kind = k
	for i, q := range qubits {
		if q < 0 {
			panic(fmt.Sprintf("circuit: negative qubit %d", q))
		}
		for j := 0; j < i; j++ {
			if qubits[j] == q {
				panic(fmt.Sprintf("circuit: %v operands must be distinct, got %v", k, qubits))
			}
		}
		in.Qubits[i] = q
	}
	return in
}

// Operands returns the active qubit operands as a slice.
func (in Instr) Operands() []int {
	return in.Qubits[:in.Kind.Arity()]
}

// Slots returns the instruction's duration in two-qubit-gate slots.
func (in Instr) Slots() int { return in.Kind.Slots() }

// Touches reports whether the instruction reads or writes qubit q.
func (in Instr) Touches(q int) bool {
	for _, o := range in.Operands() {
		if o == q {
			return true
		}
	}
	return false
}

// String renders the instruction in the text format ("toffoli 0 1 2").
func (in Instr) String() string {
	s := in.Kind.String()
	for _, q := range in.Operands() {
		s += fmt.Sprintf(" %d", q)
	}
	if in.Kind == CPhase {
		s += fmt.Sprintf(" %.17g", in.Angle)
	}
	return s
}

// Circuit is an ordered list of logical instructions over a register of
// logical qubits.
type Circuit struct {
	numQubits int
	instrs    []Instr
}

// New returns an empty circuit over n logical qubits.
func New(n int) *Circuit {
	if n < 0 {
		panic("circuit: negative qubit count")
	}
	return &Circuit{numQubits: n}
}

// NumQubits returns the register width.
func (c *Circuit) NumQubits() int { return c.numQubits }

// Len returns the instruction count.
func (c *Circuit) Len() int { return len(c.instrs) }

// Instr returns the i-th instruction.
func (c *Circuit) Instr(i int) Instr { return c.instrs[i] }

// Instrs returns the instruction list (shared storage; callers must not
// mutate).
func (c *Circuit) Instrs() []Instr { return c.instrs }

// Append adds an instruction, growing the register if an operand exceeds it.
func (c *Circuit) Append(in Instr) {
	for _, q := range in.Operands() {
		if q >= c.numQubits {
			c.numQubits = q + 1
		}
	}
	c.instrs = append(c.instrs, in)
}

// AppendAll appends every instruction of other (register widened as needed).
func (c *Circuit) AppendAll(other *Circuit) {
	for _, in := range other.instrs {
		c.Append(in)
	}
}

// Convenience emitters.

// AddX appends a logical X on q.
func (c *Circuit) AddX(q int) { c.Append(NewInstr(X, q)) }

// AddZ appends a logical Z on q.
func (c *Circuit) AddZ(q int) { c.Append(NewInstr(Z, q)) }

// AddH appends a logical H on q.
func (c *Circuit) AddH(q int) { c.Append(NewInstr(H, q)) }

// AddS appends a logical S on q.
func (c *Circuit) AddS(q int) { c.Append(NewInstr(S, q)) }

// AddT appends a logical T on q.
func (c *Circuit) AddT(q int) { c.Append(NewInstr(T, q)) }

// AddTdg appends the inverse π/8 gate on q.
func (c *Circuit) AddTdg(q int) { c.Append(NewInstr(Tdg, q)) }

// AddCNOT appends a CNOT with the given control and target.
func (c *Circuit) AddCNOT(control, target int) { c.Append(NewInstr(CNOT, control, target)) }

// AddCZ appends a CZ between a and b.
func (c *Circuit) AddCZ(a, b int) { c.Append(NewInstr(CZ, a, b)) }

// AddCPhase appends a controlled phase rotation of angle theta.
func (c *Circuit) AddCPhase(control, target int, theta float64) {
	in := NewInstr(CPhase, control, target)
	in.Angle = theta
	c.Append(in)
}

// AddToffoli appends a Toffoli with controls c1, c2 and the given target.
func (c *Circuit) AddToffoli(c1, c2, target int) {
	c.Append(NewInstr(Toffoli, c1, c2, target))
}

// AddMeasure appends a measurement of q.
func (c *Circuit) AddMeasure(q int) { c.Append(NewInstr(Measure, q)) }

// Stats summarizes a circuit's composition and serial cost.
type Stats struct {
	Qubits       int
	Instructions int
	Toffolis     int
	TwoQubit     int
	SingleQubit  int
	Measurements int
	// TotalSlots is the serial execution cost in two-qubit-gate slots.
	TotalSlots int
}

// Stats computes summary statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{Qubits: c.numQubits, Instructions: len(c.instrs)}
	for _, in := range c.instrs {
		s.TotalSlots += in.Slots()
		switch in.Kind {
		case Toffoli:
			s.Toffolis++
		case CNOT, CZ, CPhase:
			s.TwoQubit++
		case Measure:
			s.Measurements++
		default:
			s.SingleQubit++
		}
	}
	return s
}

// Reversed returns the inverse circuit: instructions in reverse order with
// each gate inverted. Panics if the circuit contains measurements.
func (c *Circuit) Reversed() *Circuit {
	r := New(c.numQubits)
	for i := len(c.instrs) - 1; i >= 0; i-- {
		in := c.instrs[i]
		switch in.Kind {
		case Measure:
			panic("circuit: cannot reverse a measurement")
		case T:
			in.Kind = Tdg
		case Tdg:
			in.Kind = T
		case S:
			// S† = Z·S (diag(1,i) composed with diag(1,-1) is diag(1,-i)).
			r.AddZ(in.Qubits[0])
			r.AddS(in.Qubits[0])
			continue
		case CPhase:
			in.Angle = -in.Angle
		}
		r.Append(in)
	}
	return r
}

// Validate checks operand ranges and arities.
func (c *Circuit) Validate() error {
	for i, in := range c.instrs {
		if in.Kind < 0 || in.Kind >= numKinds {
			return fmt.Errorf("circuit: instruction %d has invalid kind %d", i, int(in.Kind))
		}
		for _, q := range in.Operands() {
			if q < 0 || q >= c.numQubits {
				return fmt.Errorf("circuit: instruction %d operand %d out of range [0,%d)", i, q, c.numQubits)
			}
		}
		if in.Kind == CPhase && (math.IsNaN(in.Angle) || math.IsInf(in.Angle, 0)) {
			return fmt.Errorf("circuit: instruction %d has invalid angle", i)
		}
	}
	return nil
}
