package circuit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestInstrConstruction(t *testing.T) {
	in := NewInstr(Toffoli, 1, 2, 3)
	if in.Kind != Toffoli || len(in.Operands()) != 3 {
		t.Fatalf("bad instr %+v", in)
	}
	if in.Slots() != ToffoliSlots {
		t.Errorf("toffoli slots = %d, want %d", in.Slots(), ToffoliSlots)
	}
	if NewInstr(CNOT, 0, 1).Slots() != 1 {
		t.Error("cnot should take one slot")
	}
	if !in.Touches(2) || in.Touches(0) {
		t.Error("Touches wrong")
	}
}

func TestInstrPanics(t *testing.T) {
	cases := []func(){
		func() { NewInstr(CNOT, 0) },       // wrong arity
		func() { NewInstr(CNOT, 1, 1) },    // duplicate operands
		func() { NewInstr(X, -1) },         // negative qubit
		func() { NewInstr(Toffoli, 0, 1) }, // wrong arity
		func() { NewInstr(Measure, 0, 1) }, // wrong arity
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCircuitBuilderAndStats(t *testing.T) {
	c := New(4)
	c.AddH(0)
	c.AddCNOT(0, 1)
	c.AddToffoli(0, 1, 2)
	c.AddT(3)
	c.AddMeasure(2)
	s := c.Stats()
	if s.Instructions != 5 || s.Toffolis != 1 || s.TwoQubit != 1 || s.SingleQubit != 2 || s.Measurements != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.TotalSlots != 1+1+ToffoliSlots+1+1 {
		t.Errorf("total slots = %d", s.TotalSlots)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestAppendGrowsRegister(t *testing.T) {
	c := New(1)
	c.AddCNOT(0, 7)
	if c.NumQubits() != 8 {
		t.Errorf("register = %d, want 8", c.NumQubits())
	}
}

func TestDAGSerialChain(t *testing.T) {
	c := New(1)
	c.AddH(0)
	c.AddT(0)
	c.AddH(0)
	d := BuildDAG(c)
	if d.Depth() != 3 {
		t.Errorf("depth = %d, want 3", d.Depth())
	}
	if d.MaxParallelism() != 1 {
		t.Errorf("parallelism = %d, want 1", d.MaxParallelism())
	}
}

func TestDAGIndependentGates(t *testing.T) {
	c := New(4)
	for q := 0; q < 4; q++ {
		c.AddH(q)
	}
	d := BuildDAG(c)
	if d.Depth() != 1 {
		t.Errorf("depth = %d, want 1", d.Depth())
	}
	if d.MaxParallelism() != 4 {
		t.Errorf("parallelism = %d, want 4", d.MaxParallelism())
	}
}

func TestDAGToffoliWeight(t *testing.T) {
	c := New(3)
	c.AddToffoli(0, 1, 2)
	c.AddX(2) // depends on the toffoli
	d := BuildDAG(c)
	if d.ASAPStart(1) != ToffoliSlots {
		t.Errorf("X starts at %d, want %d", d.ASAPStart(1), ToffoliSlots)
	}
	if d.Depth() != ToffoliSlots+1 {
		t.Errorf("depth = %d", d.Depth())
	}
}

func TestDAGSharedControlSerializes(t *testing.T) {
	c := New(3)
	c.AddCNOT(0, 1)
	c.AddCNOT(0, 2) // shares the control qubit
	d := BuildDAG(c)
	if d.Depth() != 2 {
		t.Errorf("depth = %d, want 2 (shared control must serialize)", d.Depth())
	}
}

func TestProfileConservesWork(t *testing.T) {
	c := New(6)
	c.AddToffoli(0, 1, 2)
	c.AddCNOT(3, 4)
	c.AddH(5)
	c.AddCNOT(2, 3)
	d := BuildDAG(c)
	sum := 0
	for _, w := range d.Profile() {
		sum += w
	}
	if sum != d.TotalSlots() {
		t.Errorf("profile area %d != total slots %d", sum, d.TotalSlots())
	}
}

func TestGateLevelProfile(t *testing.T) {
	c := New(3)
	c.AddH(0)
	c.AddH(1)
	c.AddCNOT(0, 1)
	d := BuildDAG(c)
	prof := d.GateLevelProfile()
	if len(prof) != 2 || prof[0] != 2 || prof[1] != 1 {
		t.Errorf("gate-level profile = %v", prof)
	}
}

func TestReadySets(t *testing.T) {
	c := New(4)
	c.AddH(0)
	c.AddCNOT(0, 1)
	c.AddH(2)
	d := BuildDAG(c)
	sets := d.ReadySets()
	if len(sets) != 2 || len(sets[0]) != 2 || len(sets[1]) != 1 {
		t.Errorf("ready sets = %v", sets)
	}
}

func TestTextRoundTrip(t *testing.T) {
	c := New(5)
	c.AddH(0)
	c.AddCNOT(0, 1)
	c.AddToffoli(0, 1, 4)
	c.AddCPhase(2, 3, math.Pi/8)
	c.AddMeasure(4)
	text := EncodeToString(c)
	got, err := DecodeString(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumQubits() != 5 || got.Len() != c.Len() {
		t.Fatalf("round trip lost structure: %d qubits, %d instrs", got.NumQubits(), got.Len())
	}
	for i := range c.Instrs() {
		a, b := c.Instr(i), got.Instr(i)
		if a.Kind != b.Kind || a.Qubits != b.Qubits || a.Angle != b.Angle {
			t.Errorf("instr %d: %v != %v", i, a, b)
		}
	}
}

func TestDecodeComments(t *testing.T) {
	src := "# adder fragment\nqubits 3\n\ncnot 0 1\n# comment\ntoffoli 0 1 2\n"
	c, err := DecodeString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"cnot 0 1",                // missing header
		"qubits 2\nqubits 3",      // duplicate header
		"qubits x",                // bad count
		"qubits 2\nbogus 0",       // unknown mnemonic
		"qubits 2\ncnot 0",        // missing operand
		"qubits 2\ncnot 0 z",      // bad operand
		"qubits 2\ncphase 0 1 zz", // bad angle
		"",                        // empty
	}
	for _, src := range cases {
		if _, err := DecodeString(src); err == nil {
			t.Errorf("decoding %q should fail", src)
		}
	}
}

func TestReversedInvertsCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := New(4)
	c.AddH(0)
	c.AddT(1)
	c.AddS(2)
	c.AddCNOT(0, 1)
	c.AddCPhase(1, 2, math.Pi/3)
	c.AddToffoli(0, 1, 3)
	full := New(4)
	full.AppendAll(c)
	full.AppendAll(c.Reversed())
	s, err := Simulate(full, 0b0110, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p := s.Probability(0b0110); math.Abs(p-1) > 1e-9 {
		t.Errorf("C·C⁻¹ not identity: P = %g", p)
	}
}

func TestReversedRejectsMeasure(t *testing.T) {
	c := New(1)
	c.AddMeasure(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Reversed()
}

func TestSimulateBellPair(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := New(2)
	c.AddH(0)
	c.AddCNOT(0, 1)
	s, err := Simulate(c, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0b00)-0.5) > 1e-9 || math.Abs(s.Probability(0b11)-0.5) > 1e-9 {
		t.Error("Bell pair amplitudes wrong")
	}
}

func TestSimulateRejectsWideCircuits(t *testing.T) {
	c := New(31)
	if _, err := Simulate(c, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("expected width error")
	}
}

// Property: DAG depth is between the longest per-qubit serial load and the
// total work, for random circuits.
func TestDepthBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		c := New(n)
		for i := 0; i < 40; i++ {
			switch rng.Intn(3) {
			case 0:
				c.AddH(rng.Intn(n))
			case 1:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					c.AddCNOT(a, b)
				}
			case 2:
				a, b, d := rng.Intn(n), rng.Intn(n), rng.Intn(n)
				if a != b && b != d && a != d {
					c.AddToffoli(a, b, d)
				}
			}
		}
		dag := BuildDAG(c)
		// Longest per-qubit load lower-bounds the depth.
		load := make([]int, n)
		for _, in := range c.Instrs() {
			for _, q := range in.Operands() {
				load[q] += in.Slots()
			}
		}
		maxLoad := 0
		for _, l := range load {
			if l > maxLoad {
				maxLoad = l
			}
		}
		return dag.Depth() >= maxLoad && dag.Depth() <= dag.TotalSlots()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: text round-trip preserves every instruction for random circuits.
func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		c := New(n)
		for i := 0; i < 30; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				c.AddT(a)
			case 1:
				if a != b {
					c.AddCNOT(a, b)
				}
			case 2:
				if a != b {
					c.AddCPhase(a, b, rng.Float64()*math.Pi)
				}
			case 3:
				c.AddH(a)
			}
		}
		got, err := DecodeString(EncodeToString(c))
		if err != nil || got.Len() != c.Len() {
			return false
		}
		for i := range c.Instrs() {
			x, y := c.Instr(i), got.Instr(i)
			if x.Kind != y.Kind || x.Qubits != y.Qubits || x.Angle != y.Angle {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	c := New(2)
	c.instrs = append(c.instrs, Instr{Kind: CNOT, Qubits: [3]int{0, 5, 0}})
	if err := c.Validate(); err == nil {
		t.Error("expected range error")
	}
	c2 := New(2)
	c2.instrs = append(c2.instrs, Instr{Kind: CPhase, Qubits: [3]int{0, 1, 0}, Angle: math.NaN()})
	if err := c2.Validate(); err == nil {
		t.Error("expected angle error")
	}
}

func TestEncodeDecodeViaWriter(t *testing.T) {
	c := New(2)
	c.AddCNOT(0, 1)
	var sb strings.Builder
	if err := Encode(&sb, c); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "qubits 2\n") {
		t.Errorf("missing header: %q", sb.String())
	}
}
