package circuit

import (
	"errors"
	"strings"
	"testing"
)

// TestParseErrorPaths pins every diagnostic in docs/workload-format.md to a
// positioned *ParseError.
func TestParseErrorPaths(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
		wantMsg  string
	}{
		{"empty file", "", 0, "missing qubits header"},
		{"comments only", "# nothing here\n\n", 0, "missing qubits header"},
		{"instruction before header", "cnot 0 1\n", 1, "instruction before qubits header"},
		{"duplicate header", "qubits 2\nqubits 3\n", 2, "duplicate qubits header"},
		{"malformed header", "qubits\n", 1, "malformed qubits header"},
		{"header extra field", "qubits 2 3\n", 1, "malformed qubits header"},
		{"bad count", "qubits x\n", 1, `invalid qubit count "x"`},
		{"negative count", "qubits -1\n", 1, `invalid qubit count "-1"`},
		{"unknown mnemonic", "qubits 2\nbogus 0\n", 2, `unknown mnemonic "bogus"`},
		{"arity short", "qubits 2\ncnot 0\n", 2, "cnot takes 2 fields, got 1"},
		{"arity long", "qubits 2\nh 0 1\n", 2, "h takes 1 fields, got 2"},
		{"missing angle", "qubits 2\ncphase 0 1\n", 2, "cphase takes 3 fields, got 2"},
		{"bad operand", "qubits 2\ncnot 0 z\n", 2, `invalid qubit "z"`},
		{"negative operand", "qubits 2\ncnot 0 -1\n", 2, `invalid qubit "-1"`},
		{"operand out of range", "qubits 2\ncnot 0 2\n", 2, "qubit 2 outside the declared register [0,2)"},
		{"duplicate operand", "qubits 2\ncnot 0 0\n", 2, "cnot operands must be distinct, got 0 twice"},
		{"toffoli duplicate operand", "qubits 3\ntoffoli 0 1 1\n", 2, "toffoli operands must be distinct, got 1 twice"},
		{"bad angle", "qubits 2\ncphase 0 1 zz\n", 2, `invalid angle "zz"`},
		{"nan angle", "qubits 2\ncphase 0 1 NaN\n", 2, `invalid angle "NaN"`},
		{"inf angle", "qubits 2\ncphase 0 1 +Inf\n", 2, `invalid angle "+Inf"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.src)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse(%q) = %v, want *ParseError", tc.src, err)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("line = %d, want %d (err %v)", pe.Line, tc.wantLine, err)
			}
			if pe.Msg != tc.wantMsg {
				t.Errorf("msg = %q, want %q", pe.Msg, tc.wantMsg)
			}
		})
	}
}

// TestParseNeverPanics covers the inputs that used to reach NewInstr's
// panics through Decode (e.g. a gate wired back onto its own operand).
func TestParseNeverPanics(t *testing.T) {
	srcs := []string{
		"qubits 2\ncnot 0 0\n",
		"qubits 3\ntoffoli 2 2 2\n",
		"qubits 2\ncz 1 1\n",
		"qubits 1\ncnot 0 -3\n",
	}
	for _, src := range srcs {
		if _, err := ParseString(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorString(t *testing.T) {
	if got := (&ParseError{Msg: "missing qubits header"}).Error(); got != "circuit: missing qubits header" {
		t.Errorf("unpositioned error = %q", got)
	}
	if got := (&ParseError{Line: 3, Msg: "boom"}).Error(); got != "circuit: line 3: boom" {
		t.Errorf("positioned error = %q", got)
	}
}

// TestFormatCanonical pins the exact bytes Format emits: header first, one
// instruction per line, cphase angle in %.17g.
func TestFormatCanonical(t *testing.T) {
	c := New(3)
	c.AddH(0)
	c.AddCPhase(0, 1, 0.5)
	c.AddToffoli(0, 1, 2)
	want := "qubits 3\nh 0\ncphase 0 1 0.5\ntoffoli 0 1 2\n"
	if got := FormatString(c); got != want {
		t.Errorf("FormatString = %q, want %q", got, want)
	}
}

// TestParseFormatFixedPoint checks that Format output is a fixed point:
// parsing a canonical document and re-formatting reproduces it byte for
// byte, and whitespace/comment variations normalize to the same bytes.
func TestParseFormatFixedPoint(t *testing.T) {
	src := "# messy input\n\n  qubits 4  \n\th   0\n cnot 0 1\ncphase 2 3 3.1415926535897931\n"
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	canonical := FormatString(c)
	c2, err := ParseString(canonical)
	if err != nil {
		t.Fatalf("re-parsing canonical form: %v", err)
	}
	if again := FormatString(c2); again != canonical {
		t.Errorf("Format not a fixed point:\n%q\n%q", canonical, again)
	}
}

// TestParseSatisfiesValidate checks the Parse postcondition.
func TestParseSatisfiesValidate(t *testing.T) {
	c, err := ParseString("qubits 3\nh 0\ncnot 0 1\ntoffoli 0 1 2\nmeasure 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("parsed circuit fails Validate: %v", err)
	}
}

// FuzzParse asserts that Parse never panics and that every accepted input
// has a canonical form that is a Parse/Format fixed point preserving the
// full instruction list.
func FuzzParse(f *testing.F) {
	f.Add("qubits 2\ncnot 0 1\n")
	f.Add("qubits 4\nh 0\ncphase 0 1 0.78539816339744828\nmeasure 3\n")
	f.Add("# comment\nqubits 3\n\ntoffoli 0 1 2\n")
	f.Add("qubits 2\ncnot 0 0\n")
	f.Add("qubits 0\n")
	f.Add("cnot 0 1")
	f.Add("qubits 2\ncphase 0 1 NaN\n")
	f.Add(strings.Repeat("qubits 2\n", 2))
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse returned a non-ParseError: %v", err)
			}
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted circuit fails Validate: %v", err)
		}
		canonical := FormatString(c)
		c2, err := ParseString(canonical)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%q", err, canonical)
		}
		if c2.NumQubits() != c.NumQubits() || c2.Len() != c.Len() {
			t.Fatalf("round trip lost structure: %d/%d qubits, %d/%d instrs",
				c.NumQubits(), c2.NumQubits(), c.Len(), c2.Len())
		}
		for i := range c.Instrs() {
			a, b := c.Instr(i), c2.Instr(i)
			if a.Kind != b.Kind || a.Qubits != b.Qubits || a.Angle != b.Angle {
				t.Fatalf("instr %d: %v != %v", i, a, b)
			}
		}
		if again := FormatString(c2); again != canonical {
			t.Fatalf("Format not a fixed point:\n%q\n%q", canonical, again)
		}
	})
}
