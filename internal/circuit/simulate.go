package circuit

import (
	"fmt"
	"math/rand"

	"repro/internal/quantum"
)

// Simulate executes the circuit on a dense state-vector register and
// returns it; measurement outcomes collapse the state using rng. The
// circuit must be narrow enough for dense simulation (<= 30 qubits) — this
// is the validation path proving the generated adder and QFT circuits
// compute the right functions.
func Simulate(c *Circuit, initial uint64, rng *rand.Rand) (*quantum.State, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.NumQubits() > 30 {
		return nil, fmt.Errorf("circuit: %d qubits exceeds dense simulation limit", c.NumQubits())
	}
	s := quantum.NewBasisState(c.NumQubits(), initial)
	for _, in := range c.Instrs() {
		applyInstr(s, in, rng)
	}
	return s, nil
}

// SimulateState applies the circuit to an existing state in place.
func SimulateState(c *Circuit, s *quantum.State, rng *rand.Rand) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if s.NumQubits() < c.NumQubits() {
		return fmt.Errorf("circuit: state has %d qubits, circuit needs %d", s.NumQubits(), c.NumQubits())
	}
	for _, in := range c.Instrs() {
		applyInstr(s, in, rng)
	}
	return nil
}

func applyInstr(s *quantum.State, in Instr, rng *rand.Rand) {
	q := in.Qubits
	switch in.Kind {
	case X:
		s.X(q[0])
	case Z:
		s.Z(q[0])
	case H:
		s.H(q[0])
	case S:
		s.S(q[0])
	case T:
		s.T(q[0])
	case Tdg:
		s.Tdg(q[0])
	case CNOT:
		s.CNOT(q[0], q[1])
	case CZ:
		s.CZ(q[0], q[1])
	case CPhase:
		s.CPhase(q[0], q[1], in.Angle)
	case Toffoli:
		s.Toffoli(q[0], q[1], q[2])
	case Measure:
		s.Measure(q[0], rng)
	default:
		panic(fmt.Sprintf("circuit: unhandled kind %v", in.Kind))
	}
}
