package circuit

// DAG is the data-dependency graph of a circuit: instruction j depends on
// instruction i when they share a qubit and i precedes j in program order
// (quantum gates on a common qubit never commute at this modeling
// granularity, so any shared operand serializes).
type DAG struct {
	c     *Circuit
	deps  [][]int // deps[i] = indices of instructions i depends on
	succs [][]int // succs[i] = indices of instructions depending on i
	asap  []int   // earliest start slot of each instruction
	depth int     // critical path length in slots
}

// BuildDAG constructs the dependency graph and ASAP schedule of c.
func BuildDAG(c *Circuit) *DAG {
	d := &DAG{
		c:     c,
		deps:  make([][]int, c.Len()),
		succs: make([][]int, c.Len()),
		asap:  make([]int, c.Len()),
	}
	last := make([]int, c.NumQubits()) // last instruction touching each qubit
	for i := range last {
		last[i] = -1
	}
	for i, in := range c.Instrs() {
		seen := map[int]bool{}
		for _, q := range in.Operands() {
			if p := last[q]; p >= 0 && !seen[p] {
				seen[p] = true
				d.deps[i] = append(d.deps[i], p)
				d.succs[p] = append(d.succs[p], i)
			}
			last[q] = i
		}
		start := 0
		for _, p := range d.deps[i] {
			if end := d.asap[p] + c.Instr(p).Slots(); end > start {
				start = end
			}
		}
		d.asap[i] = start
		if end := start + in.Slots(); end > d.depth {
			d.depth = end
		}
	}
	return d
}

// Circuit returns the underlying circuit.
func (d *DAG) Circuit() *Circuit { return d.c }

// Deps returns the dependency list of instruction i.
func (d *DAG) Deps(i int) []int { return d.deps[i] }

// Succs returns the successors of instruction i.
func (d *DAG) Succs(i int) []int { return d.succs[i] }

// ASAPStart returns the earliest possible start slot of instruction i under
// unlimited resources.
func (d *DAG) ASAPStart(i int) int { return d.asap[i] }

// Depth returns the critical-path length in two-qubit-gate slots: the
// makespan achievable with unlimited compute resources. This is the
// "Unlimited Resources" curve's extent in Figure 2.
func (d *DAG) Depth() int { return d.depth }

// TotalSlots returns the serial work of the circuit in slots.
func (d *DAG) TotalSlots() int {
	total := 0
	for _, in := range d.c.Instrs() {
		total += in.Slots()
	}
	return total
}

// MaxParallelism returns the peak number of simultaneously executing
// instructions in the ASAP schedule.
func (d *DAG) MaxParallelism() int {
	peak := 0
	for _, w := range d.Profile() {
		if w > peak {
			peak = w
		}
	}
	return peak
}

// Profile returns, for each slot of the ASAP (unlimited-resource) schedule,
// the number of instructions executing during that slot — the
// "Unlimited Resources" series of Figure 2.
func (d *DAG) Profile() []int {
	prof := make([]int, d.depth)
	for i, in := range d.c.Instrs() {
		for t := d.asap[i]; t < d.asap[i]+in.Slots(); t++ {
			prof[t]++
		}
	}
	return prof
}

// GateLevelProfile buckets instructions by dependency level rather than by
// slot time: level(i) = 1 + max level of dependencies. It returns the
// number of gates at each level. This is the application-parallelism view
// in which a Toffoli counts as one gate.
func (d *DAG) GateLevelProfile() []int {
	level := make([]int, d.c.Len())
	maxLevel := 0
	for i := range d.c.Instrs() {
		l := 0
		for _, p := range d.deps[i] {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[i] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	prof := make([]int, maxLevel+1)
	for _, l := range level {
		prof[l]++
	}
	return prof
}

// ReadySets returns the instructions grouped by dependency level; level 0
// instructions are initially ready. Used by the cache simulator's
// dependency-aware fetch.
func (d *DAG) ReadySets() [][]int {
	level := make([]int, d.c.Len())
	maxLevel := 0
	for i := range d.c.Instrs() {
		l := 0
		for _, p := range d.deps[i] {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[i] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	sets := make([][]int, maxLevel+1)
	for i, l := range level {
		sets[l] = append(sets[l], i)
	}
	return sets
}
