package circuit

// DAG is the data-dependency graph of a circuit: instruction j depends on
// instruction i when they share a qubit and i precedes j in program order
// (quantum gates on a common qubit never commute at this modeling
// granularity, so any shared operand serializes).
//
// The graph is stored arena-style: every dependency and successor list is a
// window into one flat index slice addressed through an offset table, so a
// build performs a fixed, small number of allocations regardless of circuit
// size, and BuildDAGInto can rebuild into an existing DAG with none at all.
// The accessor API (Deps, Succs, ASAPStart, Profile, ...) is unchanged from
// the per-instruction-slice representation it replaced.
type DAG struct {
	c *Circuit

	// arena is the single backing allocation all index slices below are
	// carved from; it is retained so BuildDAGInto can reuse its capacity.
	arena []int

	deps    []int // flat dependency lists, deps[depOff[i]:depOff[i+1]]
	succs   []int // flat successor lists, succs[succOff[i]:succOff[i+1]]
	depOff  []int // len(c.Len())+1 offsets into deps
	succOff []int // len(c.Len())+1 offsets into succs
	asap    []int // earliest start slot of each instruction
	depth   int   // critical path length in slots

	// scratch holds the last-instruction-per-qubit table during builds; it
	// is dead outside BuildDAGInto and retained only to amortize reuse.
	scratch []int
}

// BuildDAG constructs the dependency graph and ASAP schedule of c.
func BuildDAG(c *Circuit) *DAG {
	return BuildDAGInto(new(DAG), c)
}

// BuildDAGInto rebuilds d as the dependency graph of c, reusing d's arena
// when its capacity suffices, and returns d. A DAG rebuilt over circuits of
// non-increasing size allocates nothing, which makes repeated compilation
// (one DAG per worker, many circuits) free of per-build garbage.
//
//cqla:noalloc
func BuildDAGInto(d *DAG, c *Circuit) *DAG {
	n := c.Len()
	nq := c.NumQubits()
	d.c = c
	d.depth = 0

	if cap(d.scratch) < nq {
		//lint:ignore-cqla noalloc arena growth on first build or a larger circuit; steady-state rebuilds reuse capacity
		d.scratch = make([]int, nq)
	}
	last := d.scratch[:nq]
	for q := range last {
		last[q] = -1
	}

	// Pass 1: count dependency edges. An instruction's dependencies are the
	// distinct last-writers of its operands (arity <= 3, so deduplication is
	// a couple of comparisons), and every dependency edge is also exactly
	// one successor edge.
	edges := 0
	instrs := c.Instrs()
	for i := range instrs {
		d0, d1 := -1, -1
		for _, q := range instrs[i].Operands() {
			if p := last[q]; p >= 0 && p != d0 && p != d1 {
				if d0 < 0 {
					d0 = p
				} else {
					d1 = p
				}
				edges++
			}
			last[q] = i
		}
	}

	// Carve every index slice from one arena: the two flat edge lists, the
	// two offset tables and the ASAP schedule.
	need := 2*edges + 2*(n+1) + n
	if cap(d.arena) < need {
		//lint:ignore-cqla noalloc arena growth on first build or a larger circuit; steady-state rebuilds reuse capacity
		d.arena = make([]int, need)
	}
	a := d.arena[:need]
	d.deps, a = a[:edges], a[edges:]
	d.succs, a = a[:edges], a[edges:]
	d.depOff, a = a[:n+1], a[n+1:]
	d.succOff, a = a[:n+1], a[n+1:]
	d.asap = a[:n]

	// Pass 2: fill the dependency lists (in first-occurrence operand order,
	// matching the historical append order), accumulate successor counts,
	// and compute the ASAP schedule — deps[i] is complete by the time it is
	// read, because dependencies always precede their dependents.
	for q := range last {
		last[q] = -1
	}
	for i := range d.succOff {
		d.succOff[i] = 0
	}
	pos := 0
	for i := range instrs {
		d.depOff[i] = pos
		for _, q := range instrs[i].Operands() {
			if p := last[q]; p >= 0 && !contains(d.deps[d.depOff[i]:pos], p) {
				d.deps[pos] = p
				pos++
				d.succOff[p+1]++
			}
			last[q] = i
		}
		start := 0
		for _, p := range d.deps[d.depOff[i]:pos] {
			if end := d.asap[p] + instrs[p].Slots(); end > start {
				start = end
			}
		}
		d.asap[i] = start
		if end := start + instrs[i].Slots(); end > d.depth {
			d.depth = end
		}
	}
	d.depOff[n] = pos

	// Pass 3: place successor edges. Prefix-summing the counts turns
	// succOff into placement cursors; walking the dependency lists in
	// instruction order fills each successor list in ascending order, after
	// which the cursors have shifted one slot left and are restored.
	for i := 1; i <= n; i++ {
		d.succOff[i] += d.succOff[i-1]
	}
	for i := 0; i < n; i++ {
		for _, p := range d.deps[d.depOff[i]:d.depOff[i+1]] {
			d.succs[d.succOff[p]] = i
			d.succOff[p]++
		}
	}
	copy(d.succOff[1:], d.succOff[:n])
	d.succOff[0] = 0
	return d
}

// contains reports whether the (at most two-element) dependency window
// already holds p.
func contains(deps []int, p int) bool {
	for _, v := range deps {
		if v == p {
			return true
		}
	}
	return false
}

// Circuit returns the underlying circuit.
func (d *DAG) Circuit() *Circuit { return d.c }

// Deps returns the dependency list of instruction i.
func (d *DAG) Deps(i int) []int { return d.deps[d.depOff[i]:d.depOff[i+1]] }

// Succs returns the successors of instruction i.
func (d *DAG) Succs(i int) []int { return d.succs[d.succOff[i]:d.succOff[i+1]] }

// ASAPStart returns the earliest possible start slot of instruction i under
// unlimited resources.
func (d *DAG) ASAPStart(i int) int { return d.asap[i] }

// Depth returns the critical-path length in two-qubit-gate slots: the
// makespan achievable with unlimited compute resources. This is the
// "Unlimited Resources" curve's extent in Figure 2.
func (d *DAG) Depth() int { return d.depth }

// TotalSlots returns the serial work of the circuit in slots.
func (d *DAG) TotalSlots() int {
	total := 0
	for _, in := range d.c.Instrs() {
		total += in.Slots()
	}
	return total
}

// MaxParallelism returns the peak number of simultaneously executing
// instructions in the ASAP schedule.
func (d *DAG) MaxParallelism() int {
	peak := 0
	for _, w := range d.Profile() {
		if w > peak {
			peak = w
		}
	}
	return peak
}

// Profile returns, for each slot of the ASAP (unlimited-resource) schedule,
// the number of instructions executing during that slot — the
// "Unlimited Resources" series of Figure 2.
func (d *DAG) Profile() []int {
	prof := make([]int, d.depth)
	for i, in := range d.c.Instrs() {
		for t := d.asap[i]; t < d.asap[i]+in.Slots(); t++ {
			prof[t]++
		}
	}
	return prof
}

// GateLevelProfile buckets instructions by dependency level rather than by
// slot time: level(i) = 1 + max level of dependencies. It returns the
// number of gates at each level. This is the application-parallelism view
// in which a Toffoli counts as one gate.
func (d *DAG) GateLevelProfile() []int {
	level := make([]int, d.c.Len())
	maxLevel := 0
	for i := range d.c.Instrs() {
		l := 0
		for _, p := range d.Deps(i) {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[i] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	prof := make([]int, maxLevel+1)
	for _, l := range level {
		prof[l]++
	}
	return prof
}

// ReadySets returns the instructions grouped by dependency level; level 0
// instructions are initially ready. Used by the cache simulator's
// dependency-aware fetch.
func (d *DAG) ReadySets() [][]int {
	level := make([]int, d.c.Len())
	maxLevel := 0
	for i := range d.c.Instrs() {
		l := 0
		for _, p := range d.Deps(i) {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[i] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	sets := make([][]int, maxLevel+1)
	for i, l := range level {
		sets[l] = append(sets[l], i)
	}
	return sets
}
