package circuit

import (
	"math/rand"
	"reflect"
	"testing"
)

// refDAG is the pre-arena reference construction: per-instruction slice
// appends with a map-based dedup, kept verbatim as the oracle the arena
// build must match edge for edge, in order.
type refDAG struct {
	deps  [][]int
	succs [][]int
	asap  []int
	depth int
}

func buildRef(c *Circuit) *refDAG {
	d := &refDAG{
		deps:  make([][]int, c.Len()),
		succs: make([][]int, c.Len()),
		asap:  make([]int, c.Len()),
	}
	last := make([]int, c.NumQubits())
	for i := range last {
		last[i] = -1
	}
	for i, in := range c.Instrs() {
		seen := map[int]bool{}
		for _, q := range in.Operands() {
			if p := last[q]; p >= 0 && !seen[p] {
				seen[p] = true
				d.deps[i] = append(d.deps[i], p)
				d.succs[p] = append(d.succs[p], i)
			}
			last[q] = i
		}
		start := 0
		for _, p := range d.deps[i] {
			if end := d.asap[p] + c.Instr(p).Slots(); end > start {
				start = end
			}
		}
		d.asap[i] = start
		if end := start + in.Slots(); end > d.depth {
			d.depth = end
		}
	}
	return d
}

// randomCircuit emits a gate soup over nq qubits: enough Toffolis to
// exercise three-operand dedup, and repeated operands on one instruction
// are impossible by construction (NewInstr enforces distinctness).
func randomCircuit(rng *rand.Rand, nq, instrs int) *Circuit {
	c := New(nq)
	for i := 0; i < instrs; i++ {
		q1 := rng.Intn(nq)
		q2 := (q1 + 1 + rng.Intn(nq-1)) % nq
		switch rng.Intn(4) {
		case 0:
			c.AddH(q1)
		case 1:
			c.AddCNOT(q1, q2)
		case 2:
			q3 := q1
			for q3 == q1 || q3 == q2 {
				q3 = rng.Intn(nq)
			}
			c.AddToffoli(q1, q2, q3)
		default:
			c.AddCZ(q1, q2)
		}
	}
	return c
}

// sharedOperandCircuit makes two operands of one instruction share a
// last-writer, the case the dedup buffer exists for.
func sharedOperandCircuit() *Circuit {
	c := New(3)
	c.AddCNOT(0, 1)       // instr 0 writes qubits 0 and 1
	c.AddToffoli(0, 1, 2) // both controls depend on instr 0: one edge, not two
	c.AddCNOT(1, 2)       // two operands, same last writer again
	return c
}

func equivalent(t *testing.T, name string, c *Circuit) {
	t.Helper()
	got := BuildDAG(c)
	want := buildRef(c)
	if got.Depth() != want.depth {
		t.Errorf("%s: depth %d, want %d", name, got.Depth(), want.depth)
	}
	for i := 0; i < c.Len(); i++ {
		if g, w := got.Deps(i), want.deps[i]; !sameInts(g, w) {
			t.Errorf("%s: Deps(%d) = %v, want %v", name, i, g, w)
		}
		if g, w := got.Succs(i), want.succs[i]; !sameInts(g, w) {
			t.Errorf("%s: Succs(%d) = %v, want %v", name, i, g, w)
		}
		if got.ASAPStart(i) != want.asap[i] {
			t.Errorf("%s: ASAPStart(%d) = %d, want %d", name, i, got.ASAPStart(i), want.asap[i])
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestArenaDAGMatchesReference pins the arena build to the historical
// construction: identical edges in identical order, identical schedule.
func TestArenaDAGMatchesReference(t *testing.T) {
	equivalent(t, "empty", New(2))
	equivalent(t, "shared-operand", sharedOperandCircuit())
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nq := 3 + rng.Intn(12)
		c := randomCircuit(rng, nq, 1+rng.Intn(200))
		equivalent(t, "random", c)
	}
}

// TestBuildDAGIntoReuses proves the rebuild path reuses the arena: after
// one build at a given size, rebuilding over same-or-smaller circuits
// performs zero allocations.
func TestBuildDAGIntoReuses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	big := randomCircuit(rng, 10, 300)
	small := randomCircuit(rng, 8, 100)
	d := BuildDAG(big)
	if n := testing.AllocsPerRun(100, func() { BuildDAGInto(d, big) }); n != 0 {
		t.Errorf("BuildDAGInto same circuit: %v allocs/run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { BuildDAGInto(d, small) }); n != 0 {
		t.Errorf("BuildDAGInto smaller circuit: %v allocs/run, want 0", n)
	}
	// The rebuilt graph must be indistinguishable from a fresh build.
	BuildDAGInto(d, small)
	fresh := BuildDAG(small)
	for i := 0; i < small.Len(); i++ {
		if !sameInts(d.Deps(i), fresh.Deps(i)) || !sameInts(d.Succs(i), fresh.Succs(i)) {
			t.Fatalf("rebuilt DAG diverges from fresh build at instruction %d", i)
		}
	}
	if !reflect.DeepEqual(d.Profile(), fresh.Profile()) {
		t.Error("rebuilt DAG profile diverges from fresh build")
	}
}

// TestBuildDAGAllocationBudget guards the tentpole: a fresh build is a
// handful of allocations (struct, arena, scratch), not thousands of
// per-instruction appends.
func TestBuildDAGAllocationBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCircuit(rng, 16, 2000)
	if n := testing.AllocsPerRun(20, func() { BuildDAG(c) }); n > 4 {
		t.Errorf("BuildDAG: %v allocs/run, want <= 4", n)
	}
}

// BenchmarkBuildDAG measures a fresh arena build of the 64-bit
// carry-lookahead adder's dependency graph — the setup cost that dominated
// one-shot des evaluations before the arena rework. The gen package is out
// of reach from here, so the workload is a same-order random soup.
func BenchmarkBuildDAG(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := randomCircuit(rng, 384, 2400) // ~64-bit adder dimensions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDAG(c)
	}
}

// BenchmarkBuildDAGInto is the amortized path: rebuilding into one DAG.
func BenchmarkBuildDAGInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := randomCircuit(rng, 384, 2400)
	d := BuildDAG(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDAGInto(d, c)
	}
}
