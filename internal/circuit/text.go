package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file implements the repository's line-oriented text circuit format —
// the "assembly language" the paper describes as its simulator input. The
// normative specification (grammar, gate set, error cases, a worked
// example) lives in docs/workload-format.md; Parse and Format are its
// reference implementation and every other entry point (Encode, Decode,
// cmd/qcirc, the serve API's circuit field) delegates to them.
//
// The format, in brief:
//
//	qubits N                     header, exactly once, before any gate
//	<mnemonic> <q...> [angle]    one instruction per line
//	# ...                        comment; blank lines are ignored
//
// Operands are distinct qubit indices in [0, N); cphase carries one extra
// finite angle field, rendered as %.17g so float64 values round-trip
// exactly.

// ParseError is a positioned syntax or validity error from Parse, carrying
// the 1-based line number the problem was found on.
type ParseError struct {
	Line int
	Msg  string
}

// Error renders the error in the historical "circuit: line N: ..." shape.
func (e *ParseError) Error() string {
	if e.Line == 0 {
		return "circuit: " + e.Msg
	}
	return fmt.Sprintf("circuit: line %d: %s", e.Line, e.Msg)
}

func parseErrorf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Format writes the circuit in canonical text form: the qubits header
// followed by one instruction per line, exactly as Instr.String renders
// them. Format output always re-parses to an equal circuit, and parsing
// then formatting any valid document yields the canonical bytes — the
// `qcirc gen | qcirc fmt` round trip is the identity.
func Format(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "qubits %d\n", c.NumQubits()); err != nil {
		return err
	}
	for _, in := range c.Instrs() {
		if _, err := fmt.Fprintln(bw, in.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FormatString renders the canonical text form as a string.
func FormatString(c *Circuit) string {
	var sb strings.Builder
	if err := Format(&sb, c); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return sb.String()
}

// Encode writes the circuit in the text format; it is Format under the
// encoder/decoder naming the package started with.
func Encode(w io.Writer, c *Circuit) error { return Format(w, c) }

// EncodeToString renders the circuit text format as a string.
func EncodeToString(c *Circuit) string { return FormatString(c) }

// Parse reads one circuit from the text format. Every malformed input —
// missing or duplicate header, unknown mnemonic, wrong operand count,
// out-of-range or repeated operands, bad angle — returns a *ParseError
// naming the offending line; Parse never panics on untrusted input. The
// returned circuit additionally satisfies Validate.
func Parse(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var c *Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "qubits" {
			if c != nil {
				return nil, parseErrorf(lineNo, "duplicate qubits header")
			}
			if len(fields) != 2 {
				return nil, parseErrorf(lineNo, "malformed qubits header")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, parseErrorf(lineNo, "invalid qubit count %q", fields[1])
			}
			c = New(n)
			continue
		}
		if c == nil {
			return nil, parseErrorf(lineNo, "instruction before qubits header")
		}
		in, err := parseInstr(fields, c.NumQubits(), lineNo)
		if err != nil {
			return nil, err
		}
		c.Append(in)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, &ParseError{Msg: "missing qubits header"}
	}
	return c, nil
}

// parseInstr validates and decodes one instruction line. It performs every
// check NewInstr would panic on — arity, operand range, operand
// distinctness (a two-qubit gate wired back onto its own operand, like
// "cnot 0 0", is a self-cycle, not a gate) — as positioned errors.
func parseInstr(fields []string, numQubits, lineNo int) (Instr, error) {
	kind, ok := kindByName(fields[0])
	if !ok {
		return Instr{}, parseErrorf(lineNo, "unknown mnemonic %q", fields[0])
	}
	wantOperands := kind.Arity()
	wantFields := 1 + wantOperands
	if kind == CPhase {
		wantFields++
	}
	if len(fields) != wantFields {
		return Instr{}, parseErrorf(lineNo, "%s takes %d fields, got %d", fields[0], wantFields-1, len(fields)-1)
	}
	var in Instr
	in.Kind = kind
	for i := 0; i < wantOperands; i++ {
		q, err := strconv.Atoi(fields[1+i])
		if err != nil || q < 0 {
			return Instr{}, parseErrorf(lineNo, "invalid qubit %q", fields[1+i])
		}
		if q >= numQubits {
			return Instr{}, parseErrorf(lineNo, "qubit %d outside the declared register [0,%d)", q, numQubits)
		}
		for j := 0; j < i; j++ {
			if in.Qubits[j] == q {
				return Instr{}, parseErrorf(lineNo, "%s operands must be distinct, got %s twice", fields[0], fields[1+i])
			}
		}
		in.Qubits[i] = q
	}
	if kind == CPhase {
		angle, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil || math.IsNaN(angle) || math.IsInf(angle, 0) {
			return Instr{}, parseErrorf(lineNo, "invalid angle %q", fields[len(fields)-1])
		}
		in.Angle = angle
	}
	return in, nil
}

// ParseString parses the text format from a string.
func ParseString(s string) (*Circuit, error) {
	return Parse(strings.NewReader(s))
}

// Decode parses the text format produced by Encode; it is Parse under the
// encoder/decoder naming the package started with.
func Decode(r io.Reader) (*Circuit, error) { return Parse(r) }

// DecodeString parses the text format from a string.
func DecodeString(s string) (*Circuit, error) { return ParseString(s) }

func kindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if kindInfo[k].name == name {
			return k, true
		}
	}
	return 0, false
}
