package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Encode writes the circuit in the line-oriented text format the paper
// describes as its simulator input: one instruction per line, a mnemonic
// followed by logical qubit operands ("toffoli 3 4 11"), with a header
// line declaring the register width. Lines starting with '#' are comments.
func Encode(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "qubits %d\n", c.NumQubits()); err != nil {
		return err
	}
	for _, in := range c.Instrs() {
		if _, err := fmt.Fprintln(bw, in.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeToString renders the circuit text format as a string.
func EncodeToString(c *Circuit) string {
	var sb strings.Builder
	if err := Encode(&sb, c); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return sb.String()
}

// Decode parses the text format produced by Encode.
func Decode(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var c *Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "qubits" {
			if c != nil {
				return nil, fmt.Errorf("circuit: line %d: duplicate qubits header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("circuit: line %d: malformed qubits header", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("circuit: line %d: invalid qubit count %q", lineNo, fields[1])
			}
			c = New(n)
			continue
		}
		if c == nil {
			return nil, fmt.Errorf("circuit: line %d: instruction before qubits header", lineNo)
		}
		kind, ok := kindByName(fields[0])
		if !ok {
			return nil, fmt.Errorf("circuit: line %d: unknown mnemonic %q", lineNo, fields[0])
		}
		wantOperands := kind.Arity()
		wantFields := 1 + wantOperands
		if kind == CPhase {
			wantFields++
		}
		if len(fields) != wantFields {
			return nil, fmt.Errorf("circuit: line %d: %s takes %d fields, got %d", lineNo, fields[0], wantFields-1, len(fields)-1)
		}
		qubits := make([]int, wantOperands)
		for i := 0; i < wantOperands; i++ {
			q, err := strconv.Atoi(fields[1+i])
			if err != nil || q < 0 {
				return nil, fmt.Errorf("circuit: line %d: invalid qubit %q", lineNo, fields[1+i])
			}
			qubits[i] = q
		}
		in := NewInstr(kind, qubits...)
		if kind == CPhase {
			angle, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				return nil, fmt.Errorf("circuit: line %d: invalid angle %q", lineNo, fields[len(fields)-1])
			}
			in.Angle = angle
		}
		c.Append(in)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("circuit: missing qubits header")
	}
	return c, nil
}

// DecodeString parses the text format from a string.
func DecodeString(s string) (*Circuit, error) {
	return Decode(strings.NewReader(s))
}

func kindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if kindInfo[k].name == name {
			return k, true
		}
	}
	return 0, false
}
