package circuit_test

import (
	"fmt"
	"log"

	"repro/internal/circuit"
)

// ExampleParse shows the text-format round trip the toolchain is built
// on: Parse is strict (positions in errors, no partial circuits), Format
// emits the canonical form, and formatting a parsed circuit reproduces
// canonical input byte for byte — `qcirc gen | qcirc fmt` is the identity.
// The format is specified in docs/workload-format.md.
func ExampleParse() {
	const source = `# Bell pair: H then CNOT, both qubits measured.
qubits 2
h 0
cnot 0 1
measure 0
measure 1
`
	c, err := circuit.ParseString(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(circuit.FormatString(c))

	// Parse errors carry the line they happened on.
	_, err = circuit.ParseString("qubits 2\ncnot 0 7\n")
	fmt.Println(err)
	// Output:
	// qubits 2
	// h 0
	// cnot 0 1
	// measure 0
	// measure 1
	// circuit: line 2: qubit 7 outside the declared register [0,2)
}
