package shor

import (
	"repro/internal/circuit"
	"repro/internal/gen"
)

// StageCircuit returns the repeated stage of Shor's modular exponentiation
// at n bits: one controlled carry-lookahead addition, the unit the paper
// schedules ("quantum modular exponentiation is performed by repeated
// quantum additions"). It is the kernel behind the arch package's
// "shor-stage" workload kind — Toffoli-heavy like the plain adder but with
// the extra conditioned sum writes and control fan-out, so it exercises a
// different parallelism profile than the unconditioned kernel.
func StageCircuit(n int) *circuit.Circuit {
	return gen.ControlledCarryLookahead(n).Circuit
}

// StageCalls returns how many times the stage runs in one full n-bit
// modular exponentiation (2n controlled multiplications of n additions
// each), for scaling per-stage metrics up to the whole algorithm.
func StageCalls(n int) int {
	return gen.NewModExp(n).AdderCalls()
}
