// Package shor implements Shor's factoring algorithm end to end at small
// scale: quantum order finding by phase estimation over a modular
// multiplication oracle, the continued-fraction classical post-processing,
// and the factor extraction loop. The CQLA paper treats Shor's algorithm as
// its driving workload; this package demonstrates that the repository's
// circuit and simulation substrate actually runs it, factoring numbers like
// 15, 21 and 35 in the dense simulator.
package shor

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/quantum"
)

// GCD returns the greatest common divisor of a and b.
func GCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ModPow returns base^exp mod m (m > 0) by square and multiply.
func ModPow(base, exp, m uint64) uint64 {
	if m == 0 {
		panic("shor: modulus zero")
	}
	result := uint64(1) % m
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = mulMod(result, base, m)
		}
		base = mulMod(base, base, m)
		exp >>= 1
	}
	return result
}

// mulMod multiplies modulo m without overflow for operands < 2^32; the
// package only handles small moduli, enforced by Factor.
func mulMod(a, b, m uint64) uint64 {
	return a * b % m
}

// MultiplicativeOrder returns the least r > 0 with a^r = 1 mod N, or 0 if
// gcd(a, N) != 1.
func MultiplicativeOrder(a, n uint64) uint64 {
	if GCD(a, n) != 1 {
		return 0
	}
	v := a % n
	for r := uint64(1); r <= n; r++ {
		if v == 1 {
			return r
		}
		v = mulMod(v, a%n, n)
	}
	return 0
}

// Convergents returns the continued-fraction convergents p/q of num/den
// with q <= maxDen, in order of increasing denominator.
func Convergents(num, den, maxDen uint64) [][2]uint64 {
	if den == 0 {
		panic("shor: zero denominator")
	}
	var out [][2]uint64
	// h/k track the convergents; standard recurrence.
	var h0, h1 uint64 = 1, 0
	var k0, k1 uint64 = 0, 1
	a, b := num, den
	for b != 0 {
		q := a / b
		a, b = b, a%b
		h0, h1 = q*h0+h1, h0
		k0, k1 = q*k0+k1, k0
		if k0 > maxDen {
			break
		}
		out = append(out, [2]uint64{h0, k0})
	}
	return out
}

// PeriodCandidates extracts period guesses from a phase-estimation
// measurement: measured/2^tQubits ~ s/r for some s, so the convergent
// denominators (and small multiples) are candidate periods.
func PeriodCandidates(measured uint64, tQubits int, n uint64) []uint64 {
	if measured == 0 {
		return nil
	}
	den := uint64(1) << uint(tQubits)
	var cands []uint64
	for _, c := range Convergents(measured, den, n) {
		r := c[1]
		if r == 0 {
			continue
		}
		for mult := uint64(1); mult*r <= n && mult <= 4; mult++ {
			cands = append(cands, mult*r)
		}
	}
	return cands
}

// OrderFindingResult reports one quantum order-finding run.
type OrderFindingResult struct {
	A        uint64
	N        uint64
	TQubits  int
	Measured uint64
	Period   uint64 // 0 when post-processing failed
}

// FindOrder runs quantum phase estimation for the order of a modulo n:
// a 2·len(n)-qubit exponent register in uniform superposition controls
// successive squarings of the modular multiplication oracle on the work
// register, an inverse QFT concentrates the phase, and continued fractions
// recover the period from the measurement. Requires gcd(a, n) = 1.
func FindOrder(a, n uint64, rng *rand.Rand) (OrderFindingResult, error) {
	if n < 3 || a < 2 || a >= n {
		return OrderFindingResult{}, fmt.Errorf("shor: invalid (a=%d, n=%d)", a, n)
	}
	if GCD(a, n) != 1 {
		return OrderFindingResult{}, fmt.Errorf("shor: gcd(%d, %d) != 1", a, n)
	}
	workBits := bitLen(n)
	tQubits := 2 * workBits
	total := workBits + tQubits
	if total > 26 {
		return OrderFindingResult{}, fmt.Errorf("shor: %d qubits exceeds simulation budget", total)
	}

	// Work register holds |1⟩; exponent register in uniform superposition.
	st := quantum.NewBasisState(total, 1)
	workTargets := make([]int, workBits)
	for i := range workTargets {
		workTargets[i] = i
	}
	for q := workBits; q < total; q++ {
		st.H(q)
	}

	// Controlled-U^(2^k): U|x⟩ = |a·x mod n⟩ on x < n, identity above.
	factor := a % n
	for k := 0; k < tQubits; k++ {
		f := factor
		st.ApplyControlledPermutation(workBits+k, workTargets, func(x uint64) uint64 {
			if x >= n {
				return x
			}
			return mulMod(x, f, n)
		})
		factor = mulMod(factor, factor, n)
	}

	// Inverse QFT on the exponent register, then measure it.
	applyInverseQFT(st, workBits, tQubits)
	var measured uint64
	for k := 0; k < tQubits; k++ {
		if st.Measure(workBits+k, rng) == 1 {
			measured |= 1 << uint(k)
		}
	}

	res := OrderFindingResult{A: a, N: n, TQubits: tQubits, Measured: measured}
	for _, r := range PeriodCandidates(measured, tQubits, n) {
		if ModPow(a, r, n) == 1 {
			res.Period = r
			break
		}
	}
	return res, nil
}

// applyInverseQFT applies the inverse QFT to qubits [offset, offset+width),
// treating qubit offset as the least significant. The circuit comes from
// gen.InverseQFT and is shifted into place.
func applyInverseQFT(st *quantum.State, offset, width int) {
	c := gen.InverseQFT(width, true)
	for _, in := range c.Instrs() {
		switch in.Kind.String() {
		case "h":
			st.H(offset + in.Qubits[0])
		case "cphase":
			st.CPhase(offset+in.Qubits[0], offset+in.Qubits[1], in.Angle)
		case "cnot":
			st.CNOT(offset+in.Qubits[0], offset+in.Qubits[1])
		case "z":
			st.Z(offset + in.Qubits[0])
		case "s":
			st.S(offset + in.Qubits[0])
		default:
			panic(fmt.Sprintf("shor: unexpected gate %v in inverse QFT", in.Kind))
		}
	}
}

// FactorResult reports a successful factorization.
type FactorResult struct {
	N        uint64
	P, Q     uint64
	A        uint64 // the base that succeeded
	Period   uint64
	Attempts int
}

// Factor factors an odd composite n (non-prime-power) by Shor's algorithm,
// retrying with fresh random bases until the quantum subroutine yields an
// even period whose half-power is a nontrivial square root of unity.
func Factor(n uint64, rng *rand.Rand, maxAttempts int) (FactorResult, error) {
	if n < 15 || n%2 == 0 {
		return FactorResult{}, fmt.Errorf("shor: n=%d must be an odd composite >= 15", n)
	}
	if bitLen(n)*3 > 26 {
		return FactorResult{}, fmt.Errorf("shor: n=%d too wide for dense simulation", n)
	}
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		a := 2 + rng.Uint64()%(n-3)
		if g := GCD(a, n); g != 1 {
			// Lucky classical factor.
			return FactorResult{N: n, P: g, Q: n / g, A: a, Attempts: attempt}, nil
		}
		of, err := FindOrder(a, n, rng)
		if err != nil {
			return FactorResult{}, err
		}
		r := of.Period
		if r == 0 || r%2 == 1 {
			continue
		}
		half := ModPow(a, r/2, n)
		if half == n-1 {
			continue
		}
		p := GCD(half-1, n)
		q := GCD(half+1, n)
		if p > 1 && p < n {
			return FactorResult{N: n, P: p, Q: n / p, A: a, Period: r, Attempts: attempt}, nil
		}
		if q > 1 && q < n {
			return FactorResult{N: n, P: q, Q: n / q, A: a, Period: r, Attempts: attempt}, nil
		}
	}
	return FactorResult{}, fmt.Errorf("shor: no factor of %d found in %d attempts", n, maxAttempts)
}

func bitLen(x uint64) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}
