package shor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{12, 8, 4}, {15, 5, 5}, {7, 13, 1}, {0, 9, 9}, {9, 0, 9}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestModPow(t *testing.T) {
	cases := []struct{ b, e, m, want uint64 }{
		{2, 10, 1000, 24},
		{7, 0, 15, 1},
		{7, 4, 15, ModPow(7, 4, 15)},
		{3, 5, 7, 5}, // 243 mod 7
		{10, 3, 1, 0},
	}
	for _, c := range cases {
		if got := ModPow(c.b, c.e, c.m); got != c.want {
			t.Errorf("ModPow(%d,%d,%d) = %d, want %d", c.b, c.e, c.m, got, c.want)
		}
	}
}

// Property: ModPow(b, e1+e2, m) = ModPow(b,e1,m)*ModPow(b,e2,m) mod m.
func TestModPowHomomorphism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 2 + rng.Uint64()%1000
		e1 := rng.Uint64() % 50
		e2 := rng.Uint64() % 50
		m := 2 + rng.Uint64()%10000
		lhs := ModPow(b, e1+e2, m)
		rhs := ModPow(b, e1, m) * ModPow(b, e2, m) % m
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiplicativeOrder(t *testing.T) {
	cases := []struct{ a, n, want uint64 }{
		{7, 15, 4},
		{2, 15, 4},
		{4, 15, 2},
		{2, 21, 6},
		{5, 21, 6},
		{3, 15, 0}, // gcd != 1
	}
	for _, c := range cases {
		if got := MultiplicativeOrder(c.a, c.n); got != c.want {
			t.Errorf("order(%d mod %d) = %d, want %d", c.a, c.n, got, c.want)
		}
	}
}

func TestConvergents(t *testing.T) {
	// 649/200 = [3; 4, 12, 4]: convergents 3/1, 13/4, 159/49, 649/200.
	cs := Convergents(649, 200, 200)
	want := [][2]uint64{{3, 1}, {13, 4}, {159, 49}, {649, 200}}
	if len(cs) != len(want) {
		t.Fatalf("got %v", cs)
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Errorf("convergent %d = %v, want %v", i, cs[i], want[i])
		}
	}
	// Denominator cap.
	capped := Convergents(649, 200, 50)
	if len(capped) != 3 {
		t.Errorf("capped convergents = %v", capped)
	}
}

func TestPeriodCandidatesRecoverKnownPeriod(t *testing.T) {
	// Order of 7 mod 15 is 4. Phase estimation with 8 exponent qubits on a
	// perfect run measures s·(256/4) = 64s; every nonzero measurement must
	// yield 4 among the candidates.
	for _, measured := range []uint64{64, 128, 192} {
		cands := PeriodCandidates(measured, 8, 15)
		found := false
		for _, r := range cands {
			if r == 4 {
				found = true
			}
		}
		if !found {
			t.Errorf("measured %d: candidates %v missing period 4", measured, cands)
		}
	}
	if PeriodCandidates(0, 8, 15) != nil {
		t.Error("zero measurement should yield no candidates")
	}
}

func TestFindOrderN15(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Try a few runs: each either recovers the true order or fails
	// post-processing (measured s shared a factor with r); at least half
	// should succeed.
	successes := 0
	for trial := 0; trial < 8; trial++ {
		res, err := FindOrder(7, 15, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Period != 0 {
			if ModPow(7, res.Period, 15) != 1 {
				t.Fatalf("claimed period %d is wrong", res.Period)
			}
			successes++
		}
	}
	if successes < 4 {
		t.Errorf("only %d/8 order-finding runs succeeded", successes)
	}
}

func TestFindOrderValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := FindOrder(1, 15, rng); err == nil {
		t.Error("a=1 should be rejected")
	}
	if _, err := FindOrder(5, 15, rng); err == nil {
		t.Error("gcd(5,15)!=1 should be rejected")
	}
	if _, err := FindOrder(3, 1<<20, rng); err == nil {
		t.Error("too-wide modulus should be rejected")
	}
}

func TestFactor15(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	res, err := Factor(15, rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.P*res.Q != 15 || res.P == 1 || res.Q == 1 {
		t.Errorf("Factor(15) = %d x %d", res.P, res.Q)
	}
}

func TestFactor21(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	res, err := Factor(21, rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.P*res.Q != 21 || res.P == 1 {
		t.Errorf("Factor(21) = %d x %d", res.P, res.Q)
	}
}

func TestFactor35(t *testing.T) {
	if testing.Short() {
		t.Skip("18-qubit simulation")
	}
	rng := rand.New(rand.NewSource(3))
	res, err := Factor(35, rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.P*res.Q != 35 || res.P == 1 {
		t.Errorf("Factor(35) = %d x %d", res.P, res.Q)
	}
}

func TestFactorRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []uint64{9, 14, 1 << 30} {
		if _, err := Factor(n, rng, 3); err == nil {
			t.Errorf("Factor(%d) should be rejected", n)
		}
	}
}
