package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/gen"
)

func chain(n int) *circuit.DAG {
	c := circuit.New(1)
	for i := 0; i < n; i++ {
		c.AddH(0)
	}
	return circuit.BuildDAG(c)
}

func independent(n int) *circuit.DAG {
	c := circuit.New(n)
	for i := 0; i < n; i++ {
		c.AddH(i)
	}
	return circuit.BuildDAG(c)
}

func TestScheduleSerialChain(t *testing.T) {
	d := chain(5)
	r := ListSchedule(d, 3)
	if r.MakespanSlots != 5 {
		t.Errorf("makespan = %d, want 5", r.MakespanSlots)
	}
	if err := r.Validate(d); err != nil {
		t.Error(err)
	}
}

func TestScheduleIndependentGatesLimited(t *testing.T) {
	d := independent(10)
	r := ListSchedule(d, 3)
	if r.MakespanSlots != 4 { // ceil(10/3)
		t.Errorf("makespan = %d, want 4", r.MakespanSlots)
	}
	if u := r.Utilization(); u < 0.8 || u > 0.84 {
		t.Errorf("utilization = %g, want 10/12", u)
	}
	if err := r.Validate(d); err != nil {
		t.Error(err)
	}
}

func TestUnlimitedEqualsASAP(t *testing.T) {
	d := circuit.BuildDAG(gen.CarryLookahead(16).Circuit)
	r := ListSchedule(d, 0)
	if r.MakespanSlots != d.Depth() {
		t.Errorf("unlimited makespan %d != depth %d", r.MakespanSlots, d.Depth())
	}
}

func TestSingleBlockIsSerial(t *testing.T) {
	d := circuit.BuildDAG(gen.CarryLookahead(8).Circuit)
	r := ListSchedule(d, 1)
	if r.MakespanSlots != r.BusySlots {
		t.Errorf("1-block makespan %d != total work %d", r.MakespanSlots, r.BusySlots)
	}
	if u := r.Utilization(); u != 1 {
		t.Errorf("1-block utilization = %g", u)
	}
}

func TestMakespanMonotoneInBlocks(t *testing.T) {
	d := circuit.BuildDAG(gen.CarryLookahead(32).Circuit)
	prev := -1
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		m := ListSchedule(d, k).MakespanSlots
		if prev >= 0 && m > prev {
			t.Errorf("makespan increased from %d to %d at k=%d", prev, m, k)
		}
		prev = m
	}
}

func TestUtilizationDecreasesWithBlocks(t *testing.T) {
	// Figure 6(a): utilization falls as compute blocks are added.
	d := circuit.BuildDAG(gen.CarryLookahead(64).Circuit)
	utils := UtilizationSweep(d, []int{4, 16, 36, 64, 100, 144, 196})
	for i := 1; i < len(utils); i++ {
		if utils[i] > utils[i-1]+1e-9 {
			t.Errorf("utilization rose from %.3f to %.3f", utils[i-1], utils[i])
		}
	}
	if utils[0] < 0.9 {
		t.Errorf("4-block utilization for 64-bit adder = %.3f, expected near 1", utils[0])
	}
}

func TestFigure2FewBlocksSuffice(t *testing.T) {
	// The paper's Figure 2 claim: limiting the 64-qubit adder to a small
	// fixed number of compute blocks (15 in the paper) leaves the total
	// runtime essentially unchanged. Our adder carries the explicit
	// uncompute network (~2x the Toffolis of the authors' in-place
	// variant), so its knee sits slightly higher: 15 blocks still reach
	// ~80% of unlimited speed and ~25 blocks reach parity.
	d := circuit.BuildDAG(gen.CarryLookahead(64).Circuit)
	if s := SpeedupVsUnlimited(d, 15); s < 0.75 {
		t.Errorf("15 blocks reach only %.2f of unlimited speed", s)
	}
	if s := SpeedupVsUnlimited(d, 25); s < 0.98 {
		t.Errorf("25 blocks reach only %.2f of unlimited speed", s)
	}
	// And with far fewer blocks the adder does slow down.
	if s2 := SpeedupVsUnlimited(d, 2); s2 > 0.5 {
		t.Errorf("2 blocks should clearly hurt, got %.2f", s2)
	}
}

func TestKneeBlocks(t *testing.T) {
	d := circuit.BuildDAG(gen.CarryLookahead(64).Circuit)
	knee := KneeBlocks(d, 0.02)
	if knee < 2 || knee > 40 {
		t.Errorf("knee = %d blocks, expected a small count (paper: ~15)", knee)
	}
	// The knee must actually meet the tolerance.
	m := ListSchedule(d, knee).MakespanSlots
	if float64(m) > 1.021*float64(d.Depth()) {
		t.Errorf("knee schedule %d exceeds tolerance vs depth %d", m, d.Depth())
	}
	// And one block fewer must not.
	if knee > 1 {
		m2 := ListSchedule(d, knee-1).MakespanSlots
		if float64(m2) <= 1.02*float64(d.Depth()) {
			t.Errorf("knee not minimal: %d blocks already suffice", knee-1)
		}
	}
}

func TestProfileAreaEqualsWork(t *testing.T) {
	d := circuit.BuildDAG(gen.CarryLookahead(16).Circuit)
	r := ListSchedule(d, 5)
	sum := 0
	for _, w := range r.Profile(d.Circuit()) {
		sum += w
	}
	if sum != r.BusySlots {
		t.Errorf("profile area %d != busy slots %d", sum, r.BusySlots)
	}
}

func TestPeakParallelismRespectsBudget(t *testing.T) {
	d := circuit.BuildDAG(gen.CarryLookahead(32).Circuit)
	for _, k := range []int{1, 3, 7, 15} {
		r := ListSchedule(d, k)
		if p := r.PeakParallelism(d.Circuit()); p > k {
			t.Errorf("peak %d exceeds budget %d", p, k)
		}
	}
}

func TestEmptyCircuit(t *testing.T) {
	d := circuit.BuildDAG(circuit.New(3))
	r := ListSchedule(d, 4)
	if r.MakespanSlots != 0 || r.BusySlots != 0 {
		t.Errorf("empty schedule: %+v", r)
	}
}

// Property: schedules are valid (dependencies respected, budget respected)
// and makespan lies between critical path and serial work, for random DAGs.
func TestScheduleValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		c := circuit.New(n)
		for i := 0; i < 60; i++ {
			a, b, d := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				c.AddT(a)
			case 1:
				if a != b {
					c.AddCNOT(a, b)
				}
			case 2:
				if a != b && b != d && a != d {
					c.AddToffoli(a, b, d)
				}
			}
		}
		dag := circuit.BuildDAG(c)
		k := 1 + rng.Intn(6)
		r := ListSchedule(dag, k)
		if r.Validate(dag) != nil {
			return false
		}
		if r.MakespanSlots < dag.Depth() {
			return false
		}
		if r.MakespanSlots > r.BusySlots {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: work is conserved regardless of block budget.
func TestWorkConservationProperty(t *testing.T) {
	d := circuit.BuildDAG(gen.CarryLookahead(24).Circuit)
	want := d.TotalSlots()
	for _, k := range []int{1, 2, 5, 11, 50, 0} {
		if got := ListSchedule(d, k).BusySlots; got != want {
			t.Errorf("k=%d: busy slots %d, want %d", k, got, want)
		}
	}
}

func BenchmarkSchedule1024Adder100Blocks(b *testing.B) {
	d := circuit.BuildDAG(gen.CarryLookahead(1024).Circuit)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ListSchedule(d, 100)
	}
}
