package sched

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
)

// TestKneeMonotoneInTolerance: a looser tolerance never needs more blocks.
func TestKneeMonotoneInTolerance(t *testing.T) {
	d := circuit.BuildDAG(gen.CarryLookahead(64).Circuit)
	k1 := KneeBlocks(d, 0.01)
	k5 := KneeBlocks(d, 0.05)
	k20 := KneeBlocks(d, 0.20)
	if !(k20 <= k5 && k5 <= k1) {
		t.Errorf("knees not monotone: 1%%=%d 5%%=%d 20%%=%d", k1, k5, k20)
	}
}

// TestKneeGrowsWithAdderSize: wider adders expose more parallelism and
// need more blocks to capture it — the paper's Table 4 scaling of block
// budgets with input size.
func TestKneeGrowsWithAdderSize(t *testing.T) {
	var prev int
	for i, n := range []int{16, 64, 256} {
		d := circuit.BuildDAG(gen.CarryLookahead(n).Circuit)
		k := KneeBlocks(d, 0.02)
		if i > 0 && k <= prev {
			t.Errorf("knee(%d) = %d not above knee of previous size (%d)", n, k, prev)
		}
		prev = k
	}
}

// TestKneeEmptyCircuit handles the degenerate case.
func TestKneeEmptyCircuit(t *testing.T) {
	if k := KneeBlocks(circuit.BuildDAG(circuit.New(2)), 0.02); k != 0 {
		t.Errorf("empty knee = %d", k)
	}
}

// TestRippleHasNoParallelismToCapture: the ripple-carry adder's knee is a
// single block — the ablation argument for the carry-lookahead choice.
func TestRippleHasNoParallelismToCapture(t *testing.T) {
	d := circuit.BuildDAG(gen.RippleCarry(64).Circuit)
	k := KneeBlocks(d, 0.10)
	if k > 3 {
		t.Errorf("ripple knee = %d blocks; it is a serial chain", k)
	}
	// And limited blocks cost it almost nothing.
	if s := SpeedupVsUnlimited(d, 2); s < 0.9 {
		t.Errorf("2 blocks slow the ripple adder to %.2f", s)
	}
}

// TestPriorityPrefersCriticalPath: with one free block and a choice
// between a critical-path gate and a side gate, the scheduler must pick
// the critical one.
func TestPriorityPrefersCriticalPath(t *testing.T) {
	c := circuit.New(3)
	c.AddH(2) // side gate, no successors
	c.AddT(0) // head of a long chain
	c.AddT(0)
	c.AddT(0)
	c.AddCNOT(0, 1)
	d := circuit.BuildDAG(c)
	r := ListSchedule(d, 1)
	// The chain head (instr 1) must start at slot 0; the side gate waits.
	if r.Start[1] != 0 {
		t.Errorf("critical chain starts at %d, want 0", r.Start[1])
	}
	if r.Start[0] == 0 {
		t.Error("side gate should not preempt the critical path")
	}
	if r.MakespanSlots != 5 {
		t.Errorf("makespan = %d, want 5", r.MakespanSlots)
	}
}
