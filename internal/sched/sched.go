// Package sched schedules logical circuits onto a bounded set of compute
// blocks. Each CQLA compute block (nine logical data qubits plus eighteen
// logical ancilla) hosts one logical gate at a time: a transversal one- or
// two-qubit gate occupies its block for one slot, a fault-tolerant Toffoli
// for fifteen. The scheduler is the substrate for the paper's parallelism
// study: Figure 2 (gates in parallel over time, unlimited vs 15 blocks),
// Figure 6(a) (utilization vs block count) and the speedup columns of
// Table 4.
package sched

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Result is the outcome of scheduling one circuit onto a block budget.
type Result struct {
	// Blocks is the compute-block budget (0 = unlimited).
	Blocks int
	// MakespanSlots is the schedule length in two-qubit-gate slots.
	MakespanSlots int
	// BusySlots is the total block-occupancy (the circuit's serial work).
	BusySlots int
	// Start holds each instruction's scheduled start slot.
	Start []int
}

// Utilization returns busy block-slots over available block-slots — the
// y-axis of Figure 6(a). For unlimited blocks it uses the peak concurrency
// as the denominator's width.
func (r Result) Utilization() float64 {
	if r.MakespanSlots == 0 || r.Blocks == 0 {
		return 0
	}
	return float64(r.BusySlots) / float64(r.Blocks*r.MakespanSlots)
}

// Profile returns the number of instructions in flight at each slot — the
// series plotted in Figure 2.
func (r Result) Profile(c *circuit.Circuit) []int {
	prof := make([]int, r.MakespanSlots)
	for i, in := range c.Instrs() {
		for t := r.Start[i]; t < r.Start[i]+in.Slots(); t++ {
			prof[t]++
		}
	}
	return prof
}

// PeakParallelism returns the maximum number of concurrently executing
// instructions in the schedule.
func (r Result) PeakParallelism(c *circuit.Circuit) int {
	peak := 0
	for _, w := range r.Profile(c) {
		if w > peak {
			peak = w
		}
	}
	return peak
}

// ListSchedule runs critical-path-first list scheduling of the circuit onto
// the given number of compute blocks; blocks <= 0 means unlimited (the
// schedule then equals the ASAP schedule). Instructions become ready when
// every dependency has completed; among ready instructions the one with the
// longest remaining path to the circuit's end is dispatched first.
func ListSchedule(d *circuit.DAG, blocks int) Result {
	c := d.Circuit()
	n := c.Len()
	res := Result{Blocks: blocks, Start: make([]int, n)}
	for _, in := range c.Instrs() {
		res.BusySlots += in.Slots()
	}
	if n == 0 {
		return res
	}
	if blocks <= 0 {
		// Unlimited resources: ASAP.
		res.Blocks = 0
		for i := range res.Start {
			res.Start[i] = d.ASAPStart(i)
			if end := res.Start[i] + c.Instr(i).Slots(); end > res.MakespanSlots {
				res.MakespanSlots = end
			}
		}
		return res
	}

	prio := criticalPathPriority(d)
	remainingDeps := make([]int, n)
	ready := &prioQueue{prio: prio}
	for i := 0; i < n; i++ {
		remainingDeps[i] = len(d.Deps(i))
		if remainingDeps[i] == 0 {
			heap.Push(ready, i)
		}
	}

	running := &finishQueue{}
	now := 0
	free := blocks
	scheduled := 0
	for scheduled < n {
		// Dispatch as many ready instructions as blocks allow.
		for free > 0 && ready.Len() > 0 {
			i := heap.Pop(ready).(int)
			res.Start[i] = now
			end := now + c.Instr(i).Slots()
			heap.Push(running, finishEntry{end, i})
			free--
			scheduled++
			if end > res.MakespanSlots {
				res.MakespanSlots = end
			}
		}
		if running.Len() == 0 {
			if ready.Len() == 0 && scheduled < n {
				panic("sched: deadlock — dependency cycle in DAG")
			}
			continue
		}
		// Advance to the next completion and release its successors.
		now = (*running)[0].end
		for running.Len() > 0 && (*running)[0].end == now {
			e := heap.Pop(running).(finishEntry)
			free++
			for _, s := range d.Succs(e.instr) {
				remainingDeps[s]--
				if remainingDeps[s] == 0 {
					heap.Push(ready, s)
				}
			}
		}
	}
	return res
}

// criticalPathPriority computes, for every instruction, the length in slots
// of the longest dependent chain starting at it (inclusive).
func criticalPathPriority(d *circuit.DAG) []int {
	c := d.Circuit()
	n := c.Len()
	prio := make([]int, n)
	// Instructions are appended in topological order, so a reverse sweep
	// sees all successors first.
	for i := n - 1; i >= 0; i-- {
		longest := 0
		for _, s := range d.Succs(i) {
			if prio[s] > longest {
				longest = prio[s]
			}
		}
		prio[i] = longest + c.Instr(i).Slots()
	}
	return prio
}

type prioQueue struct {
	items []int
	prio  []int
}

func (q *prioQueue) Len() int { return len(q.items) }
func (q *prioQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.prio[a] != q.prio[b] {
		return q.prio[a] > q.prio[b]
	}
	return a < b
}
func (q *prioQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *prioQueue) Push(x interface{}) { q.items = append(q.items, x.(int)) }
func (q *prioQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	x := old[n-1]
	q.items = old[:n-1]
	return x
}

type finishEntry struct {
	end   int
	instr int
}

type finishQueue []finishEntry

func (q finishQueue) Len() int { return len(q) }
func (q finishQueue) Less(i, j int) bool {
	if q[i].end != q[j].end {
		return q[i].end < q[j].end
	}
	return q[i].instr < q[j].instr
}
func (q finishQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *finishQueue) Push(x interface{}) { *q = append(*q, x.(finishEntry)) }
func (q *finishQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// UtilizationSweep schedules the circuit at each block budget and returns
// the utilizations — one curve of Figure 6(a).
func UtilizationSweep(d *circuit.DAG, blockCounts []int) []float64 {
	out := make([]float64, len(blockCounts))
	for i, k := range blockCounts {
		out[i] = ListSchedule(d, k).Utilization()
	}
	return out
}

// SpeedupVsUnlimited returns makespan(unlimited)/makespan(blocks): 1.0 when
// the block budget captures all available parallelism. Figure 2's message
// is that 15 blocks suffice for the 64-qubit adder.
func SpeedupVsUnlimited(d *circuit.DAG, blocks int) float64 {
	limited := ListSchedule(d, blocks)
	if limited.MakespanSlots == 0 {
		return 1
	}
	return float64(d.Depth()) / float64(limited.MakespanSlots)
}

// KneeBlocks returns the smallest block count whose makespan is within
// tolerance of the unlimited-resource makespan (e.g. tolerance 0.02 accepts
// a 2% slowdown). It binary-searches on the monotone makespan curve.
func KneeBlocks(d *circuit.DAG, tolerance float64) int {
	if d.Circuit().Len() == 0 {
		return 0
	}
	target := int(math.Ceil(float64(d.Depth()) * (1 + tolerance)))
	lo, hi := 1, 1
	for ListSchedule(d, hi).MakespanSlots > target {
		hi *= 2
		if hi > d.Circuit().Len() {
			hi = d.Circuit().Len()
			break
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if ListSchedule(d, mid).MakespanSlots <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Validate checks that a schedule respects dependencies and the block
// budget; used by the property tests.
func (r Result) Validate(d *circuit.DAG) error {
	c := d.Circuit()
	for i := range c.Instrs() {
		for _, p := range d.Deps(i) {
			if r.Start[i] < r.Start[p]+c.Instr(p).Slots() {
				return fmt.Errorf("sched: instr %d starts at %d before dep %d finishes at %d",
					i, r.Start[i], p, r.Start[p]+c.Instr(p).Slots())
			}
		}
	}
	if r.Blocks > 0 {
		for t, w := range r.Profile(c) {
			if w > r.Blocks {
				return fmt.Errorf("sched: %d instructions in flight at slot %d with only %d blocks", w, t, r.Blocks)
			}
		}
	}
	return nil
}
