// Package core is the top-level facade over the CQLA architecture model —
// the paper's primary contribution. It re-exposes the types of
// internal/cqla under the canonical location so that tools and examples
// depend on one import; the substrate packages (phys, ecc, gen, sched,
// mesh, transfer, cache, fidelity, qla) remain directly importable for
// finer-grained use.
package core

import (
	"repro/internal/cqla"
	"repro/internal/ecc"
	"repro/internal/phys"
)

// Config selects a CQLA instance; see cqla.Config.
type Config = cqla.Config

// Machine is a configured CQLA; see cqla.Machine.
type Machine = cqla.Machine

// New constructs a Machine.
func New(cfg Config) *Machine { return cqla.New(cfg) }

// DefaultSteane returns the paper's Steane-coded CQLA at a given compute
// block budget on projected ion-trap parameters.
func DefaultSteane(blocks int) *Machine {
	return cqla.New(cqla.Config{
		Code:              ecc.Steane(),
		Params:            phys.Projected(),
		ComputeBlocks:     blocks,
		ParallelTransfers: 10,
	})
}

// DefaultBaconShor returns the paper's best configuration: Bacon-Shor
// [[9,1,3]] regions with ten parallel memory<->cache transfers.
func DefaultBaconShor(blocks int) *Machine {
	return cqla.New(cqla.Config{
		Code:              ecc.BaconShor(),
		Params:            phys.Projected(),
		ComputeBlocks:     blocks,
		ParallelTransfers: 10,
	})
}
