package core

import "testing"

func TestDefaults(t *testing.T) {
	st := DefaultSteane(36)
	if st.Config().Code.Short != "[[7,1,3]]" {
		t.Error("DefaultSteane should use the Steane code")
	}
	bs := DefaultBaconShor(36)
	if bs.Config().Code.Short != "[[9,1,3]]" {
		t.Error("DefaultBaconShor should use the Bacon-Shor code")
	}
	if bs.Config().ParallelTransfers != 10 {
		t.Error("default transfer width should be 10")
	}
	// The headline ordering: the Bacon-Shor machine dominates on the gain
	// product.
	q := 5*256 + 3
	if bs.GainProduct(256, q, true) <= st.GainProduct(256, q, true) {
		t.Error("Bacon-Shor should dominate the gain product")
	}
}

func TestNewPassthrough(t *testing.T) {
	m := New(DefaultSteane(9).Config())
	if m.Config().ComputeBlocks != 9 {
		t.Error("config did not pass through")
	}
}
