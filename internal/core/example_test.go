package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
)

// Example sizes the paper's best configuration for a 256-bit workload and
// prints its headline figures of merit.
func Example() {
	machine := core.DefaultBaconShor(36)
	qubits := gen.NewModExp(256).LogicalQubits()
	fmt.Printf("area reduction: %.1fx\n", machine.AreaReduction(qubits, false))
	fmt.Printf("L2 speedup:     %.2fx\n", machine.SpeedupL2(256))
	fmt.Printf("gain product:   %.1f\n", machine.GainProduct(256, qubits, false))
	// Output:
	// area reduction: 8.3x
	// L2 speedup:     1.92x
	// gain product:   16.0
}
