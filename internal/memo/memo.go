// Package memo provides the one concurrency-safe memoization shape the
// compiled-workload pipeline uses everywhere: look up under a lock, build
// outside it (builds are deterministic, so concurrent first callers may
// duplicate work harmlessly), and keep the first inserted value so every
// caller shares one instance. Machine caches, kernel plans and schedule
// memos across explore, cqla and arch are all instances of this Map.
package memo

import "sync"

// Map is a lazily-initialized, mutex-guarded memo table. The zero value
// is ready to use, so it embeds in structs without a constructor.
type Map[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

// Do returns the memoized value for k, invoking build on first use. The
// lock is never held across build: deterministic builders may race on a
// cold key, and the first stored result wins so all callers converge on
// one shared instance. A build error is returned without caching, so a
// later call may retry.
func (c *Map[K, V]) Do(k K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	v, ok := c.m[k]
	c.mu.Unlock()
	if ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		var zero V
		return zero, err
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]V)
	}
	if prior, ok := c.m[k]; ok {
		v = prior
	} else {
		c.m[k] = v
	}
	c.mu.Unlock()
	return v, nil
}

// Get returns the memoized value for k from an infallible builder.
func (c *Map[K, V]) Get(k K, build func() V) V {
	v, _ := c.Do(k, func() (V, error) { return build(), nil })
	return v
}

// Seed stores v for k unless a value is already memoized (first wins,
// matching Do). It returns the value that ended up in the table.
func (c *Map[K, V]) Seed(k K, v V) V {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[K]V)
	}
	if prior, ok := c.m[k]; ok {
		return prior
	}
	c.m[k] = v
	return v
}
