package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoMemoizes(t *testing.T) {
	var c Map[int, *int]
	var builds int
	v1, err := c.Do(1, func() (*int, error) { builds++; n := 10; return &n, nil })
	if err != nil || *v1 != 10 {
		t.Fatalf("Do = (%v, %v)", v1, err)
	}
	v2, err := c.Do(1, func() (*int, error) { builds++; n := 99; return &n, nil })
	if err != nil || v2 != v1 {
		t.Fatalf("second Do returned a different instance")
	}
	if builds != 1 {
		t.Errorf("built %d times, want 1", builds)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	var c Map[string, int]
	boom := errors.New("boom")
	if _, err := c.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("error not surfaced: %v", err)
	}
	v, err := c.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after error = (%d, %v), want (7, nil)", v, err)
	}
}

func TestSeedFirstWins(t *testing.T) {
	var c Map[int, string]
	if got := c.Seed(1, "a"); got != "a" {
		t.Fatalf("Seed on empty = %q", got)
	}
	if got := c.Seed(1, "b"); got != "a" {
		t.Errorf("Seed did not keep the first value: %q", got)
	}
	if got := c.Get(1, func() string { return "c" }); got != "a" {
		t.Errorf("Get after Seed = %q, want a", got)
	}
}

// TestConcurrentConverges proves every racing caller observes one shared
// instance, whichever build won.
func TestConcurrentConverges(t *testing.T) {
	var c Map[int, *int]
	var wg sync.WaitGroup
	var builds atomic.Int64
	results := make([]*int, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Get(5, func() *int { builds.Add(1); n := i; return &n })
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different instance", i)
		}
	}
	if builds.Load() < 1 {
		t.Error("no build ran")
	}
}
