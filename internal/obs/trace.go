package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// Tracer records a tree of timed spans against one monotonic clock (the
// tracer's creation instant), cheap enough to leave wired into the
// evaluation stack: a disabled (nil) tracer costs a context lookup per
// StartSpan and allocates nothing. WriteChromeTrace exports the recorded
// spans as Chrome trace_event JSON for chrome://tracing / Perfetto —
// `cqla sweep -trace out.json` is the CLI surface.
//
// Spans form lanes for display: a root span opens a new lane (Chrome
// "tid"); children inherit their parent's lane, so concurrent sweep
// points render as parallel rows with their compile/run stages nested
// inside.
type Tracer struct {
	epoch time.Time // monotonic reference; all span times are offsets

	mu    sync.Mutex
	spans []*Span
	lanes int
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is one recorded operation. Start/End pairs are explicit; a span
// is not safe for concurrent mutation, but distinct spans of one tracer
// are. Methods on a nil span are no-ops, so instrumented code never
// branches on whether tracing is enabled.
type Span struct {
	t      *Tracer
	name   string
	id     int
	parent int // span id, -1 for roots
	lane   int
	start  time.Duration
	dur    time.Duration // 0 until End
	ended  bool
	attrs  []spanAttr
}

type spanAttr struct{ k, v string }

// start records a new span; parent may be nil for a root.
func (t *Tracer) start(name string, parent *Span) *Span {
	s := &Span{t: t, name: name, parent: -1, start: time.Since(t.epoch)}
	t.mu.Lock()
	s.id = len(t.spans)
	if parent != nil {
		s.parent = parent.id
		s.lane = parent.lane
	} else {
		s.lane = t.lanes
		t.lanes++
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// End closes the span at the tracer's current clock. Ending a span twice
// keeps the first duration.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.t.epoch) - s.start
}

// Annotate attaches a key/value pair carried into the exported args.
func (s *Span) Annotate(k, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, spanAttr{k, v})
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration (0 on nil or an unended span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// ctxKey discriminates the context values this package stores.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context carrying the tracer; StartSpan below it
// records spans. A nil tracer returns ctx unchanged, keeping the
// disabled path allocation-free.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// StartSpan opens a span under the context's current span (or as a new
// root lane) and returns a context carrying it for child spans. Without
// a tracer in ctx it returns (ctx, nil) at zero cost beyond the lookup —
// and the nil span's End/Annotate are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey).(*Span)
	var t *Tracer
	if parent != nil {
		t = parent.t
	} else {
		t = TracerFrom(ctx)
	}
	if t == nil {
		return ctx, nil
	}
	s := t.start(name, parent)
	return context.WithValue(ctx, spanKey, s), s
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a snapshot of the recorded spans in start order. The
// returned spans are shared; read-only.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// chromeEvent is one trace_event record ("X" = complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds since epoch
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports the recorded spans as a Chrome trace_event
// JSON array (the format chrome://tracing and Perfetto load directly).
// Spans never ended are exported with their duration up to now. Call
// after the traced work has completed — export takes the tracer lock but
// does not synchronize with spans still being mutated.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		// The disabled tracer exports an empty — but valid — trace.
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	now := time.Since(t.epoch)
	for i, s := range t.Spans() {
		dur := s.dur
		if !s.ended {
			dur = now - s.start
		}
		ev := chromeEvent{
			Name: s.name,
			Cat:  "cqla",
			Ph:   "X",
			Ts:   float64(s.start) / float64(time.Microsecond),
			Dur:  float64(dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  s.lane,
		}
		if len(s.attrs) > 0 || s.parent >= 0 {
			ev.Args = make(map[string]string, len(s.attrs)+2)
			for _, a := range s.attrs {
				ev.Args[a.k] = a.v
			}
			if s.parent >= 0 {
				ev.Args["parent_span"] = strconv.Itoa(s.parent)
			}
			ev.Args["span_id"] = strconv.Itoa(s.id)
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if i > 0 {
			bw.WriteString(",\n ")
		}
		bw.Write(b)
	}
	bw.WriteString("]\n")
	return bw.Flush()
}
