package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of the Prometheus text
// exposition format this package writes.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus serializes every registered family in the Prometheus
// text exposition format, families sorted by name and series by label
// values, so the output is deterministic for a fixed metric state.
// A nil registry writes nothing (an empty, valid exposition).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		entries := make([]*seriesEntry, len(keys))
		for i, k := range keys {
			entries[i] = f.series[k]
		}
		f.mu.Unlock()
		if len(entries) == 0 {
			continue // a family no series ever resolved has nothing to say
		}
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for _, e := range entries {
			switch m := e.metric.(type) {
			case *Counter:
				writeSample(bw, f.name, f.labels, e.values, "", "", formatUint(m.Value()))
			case *Gauge:
				writeSample(bw, f.name, f.labels, e.values, "", "", strconv.FormatInt(m.Value(), 10))
			case *Histogram:
				var cum uint64
				for i := range m.counts {
					cum += m.counts[i].Load()
					le := "+Inf"
					if i < len(m.upper) {
						le = formatFloat(m.upper[i])
					}
					writeSample(bw, f.name+"_bucket", f.labels, e.values, "le", le, formatUint(cum))
				}
				writeSample(bw, f.name+"_sum", f.labels, e.values, "", "", formatFloat(m.Sum()))
				writeSample(bw, f.name+"_count", f.labels, e.values, "", "", formatUint(cum))
			}
		}
	}
	return bw.Flush()
}

// MetricsHandler returns an http.Handler serving the registry in the
// text exposition format — the body behind GET /metrics. A nil registry
// serves an empty exposition, so wiring is unconditional.
//
//lint:ignore-cqla obsguard a nil registry must still return a working handler (serving the empty exposition); the closure is nil-safe through WritePrometheus's guard
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ExpositionContentType)
		r.WritePrometheus(w)
	})
}

// writeSample emits one sample line: name{labels,extraK="extraV"} value.
func writeSample(bw *bufio.Writer, name string, labels, values []string, extraK, extraV, val string) {
	bw.WriteString(name)
	if len(labels) > 0 || extraK != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if extraK != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraK)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraV))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(val)
	bw.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition grammar.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a help string per the exposition grammar.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatFloat renders a float sample the way Prometheus expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
