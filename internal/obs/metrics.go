// Package obs is the repository's zero-dependency observability layer:
// a metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms, with label support) that serializes to the Prometheus text
// exposition format, a lightweight span tracer exporting Chrome
// trace_event JSON, structured-logging helpers over log/slog, and build
// identity read once from the Go build info.
//
// Everything is designed around two regimes:
//
//   - Disabled (the default): a nil *Registry or *Tracer propagates nil
//     through every constructor, and every mutating method on a nil
//     handle is a no-op. Instrumented code needs no conditionals and the
//     hot path costs a nil check — no allocations, no atomics, no locks.
//   - Enabled: handle resolution (Registry.Counter, Vec.With) happens at
//     setup time; the per-event operations (Counter.Add, Gauge.Set,
//     Histogram.Observe) are single atomic updates with zero allocations,
//     safe for concurrent use.
//
// `cqla serve` exposes a Registry at GET /metrics; `cqla sweep -trace`
// exports a Tracer; ParseExposition validates scraped output.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType discriminates the exposition families.
type metricType uint8

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// DefBuckets are the default latency buckets (seconds), matching the
// Prometheus client default: they span sub-millisecond cache hits to
// multi-second discrete-event sweeps.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry is a set of metric families. The zero value is not useful;
// call NewRegistry. A nil *Registry is the disabled mode: every
// constructor returns a nil handle whose methods are no-ops.
//
// Families are idempotent: registering the same (name, type, labels,
// buckets) again returns the existing family, so independent subsystems
// (the job manager, the sweep runner) can share one registry without
// coordinating registration order. A name re-registered with a different
// shape panics — that is a wiring bug, caught at startup.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty, ready-to-use registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one named metric across all its label combinations.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*seriesEntry // label-value key -> series
}

// seriesEntry pairs one label-value tuple with its metric instance
// (*Counter, *Gauge or *Histogram). Keeping the values here — rather
// than parsing them back out of the map key — makes exposition a plain
// read, exact for any label value.
type seriesEntry struct {
	values []string
	metric any
}

// validName matches the Prometheus metric-name grammar (without the
// colon, which is reserved for recording rules).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup returns the family, creating it on first use. Shape mismatches
// panic: two call sites disagreeing on a metric's type or labels is a
// bug no amount of runtime handling fixes.
func (r *Registry) lookup(name, help string, typ metricType, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: metric %q has invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*seriesEntry),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// with returns the series metric for the label values, creating it with
// mk on first use. The key joins escaped values with \x1f so distinct
// value tuples always map to distinct keys.
func (f *family) with(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := joinKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s.metric
	}
	s := &seriesEntry{values: append([]string(nil), values...), metric: mk()}
	f.series[key] = s
	return s.metric
}

func joinKey(values []string) string {
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(strings.ReplaceAll(strings.ReplaceAll(v, `\`, `\\`), "\x1f", `\u`))
	}
	return b.String()
}

// Counter is a monotonically increasing count. The nil Counter ignores
// every operation, so disabled instrumentation needs no branches.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down: queue depths, in-flight
// counts. The nil Gauge ignores every operation.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: per-bucket atomic counts
// plus a CAS-maintained float64 sum. Observe is allocation-free and safe
// for concurrent use; the nil Histogram ignores every operation.
type Histogram struct {
	upper  []float64       // ascending upper bounds; an implicit +Inf follows
	counts []atomic.Uint64 // len(upper)+1, non-cumulative
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		upper:  buckets,
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one measurement.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are ~a dozen entries, and the scan has no
	// bounds-check or closure overhead a binary search would add.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// CounterVec is a counter family over label values.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family over label values.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family over label values.
type HistogramVec struct{ f *family }

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or finds) a counter family with the given label
// names. Resolve concrete series with With at setup time, not per event.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, counterType, labels, nil)}
}

// With returns the counter for the label values, creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.with(values, func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or finds) a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, gaugeType, labels, nil)}
}

// With returns the gauge for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.with(values, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram registers (or finds) an unlabeled histogram. A nil buckets
// slice selects DefBuckets; bounds must be ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers (or finds) a histogram family. A nil buckets
// slice selects DefBuckets; bounds must be ascending.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: metric %q buckets are not ascending", name))
		}
	}
	return &HistogramVec{f: r.lookup(name, help, histogramType, labels, buckets)}
}

// With returns the histogram for the label values, creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	f := v.f
	return f.with(values, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// families returns a name-sorted snapshot of the registered families,
// for deterministic exposition.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
