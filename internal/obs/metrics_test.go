package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same series.
	if again := r.Counter("test_total", "a counter"); again.Value() != 5 {
		t.Errorf("re-registered counter = %d, want the same series (5)", again.Value())
	}

	g := r.Gauge("test_depth", "a gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "a histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Errorf("sum = %g, want 106", got)
	}
	// Bucket occupancy: le=1 gets {0.5, 1}, le=2 gets {1.5}, le=4 gets
	// {3}, +Inf gets {100}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("test_by_sweep_total", "labeled", "sweep", "engine")
	vec.With("pareto", "analytic").Add(3)
	vec.With("pareto", "des").Inc()
	if got := vec.With("pareto", "analytic").Value(); got != 3 {
		t.Errorf("series = %d, want 3", got)
	}
	if got := vec.With("pareto", "des").Value(); got != 1 {
		t.Errorf("series = %d, want 1", got)
	}
	// Distinct tuples that would collide under naive joining stay distinct.
	a := vec.With("a\x1fb", "c")
	b := vec.With("a", "b\x1fc")
	a.Add(10)
	if got := b.Value(); got != 0 {
		t.Errorf("label tuples collided: %d", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(3)
	if c != nil || c.Value() != 0 {
		t.Error("nil registry produced a live counter")
	}
	g := r.GaugeVec("x", "", "l").With("v")
	g.Set(9)
	if g.Value() != 0 {
		t.Error("nil gauge stored a value")
	}
	h := r.HistogramVec("x_seconds", "", nil, "l").With("v")
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram observed")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry exposition: %q, %v", sb.String(), err)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("alloc_total", "", "l").With("v")
	g := r.Gauge("alloc_depth", "")
	h := r.Histogram("alloc_seconds", "", nil)
	var nilC *Counter
	var nilH *Histogram
	cases := map[string]func(){
		"Counter.Add":       func() { c.Add(1) },
		"Gauge.Set":         func() { g.Set(3) },
		"Histogram.Observe": func() { h.Observe(0.42) },
		"nil Counter.Inc":   func() { nilC.Inc() },
		"nil Hist.Observe":  func() { nilH.Observe(1) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, allocs)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	h := r.Histogram("conc_seconds", "", []float64{0.5})
	vec := r.GaugeVec("conc_depth", "", "worker")
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := vec.With(string(rune('a' + w)))
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(1)
				g.Set(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
	if got := h.Count(); got != workers*each {
		t.Errorf("histogram count = %d, want %d", got, workers*each)
	}
	if got := h.Sum(); got != workers*each {
		t.Errorf("histogram sum = %g, want %d", got, workers*each)
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	cases := map[string]func(){
		"type mismatch":   func() { r.Gauge("dup_total", "") },
		"label mismatch":  func() { r.CounterVec("dup_total", "", "l") },
		"bad name":        func() { r.Counter("bad-name", "") },
		"empty name":      func() { r.Counter("", "") },
		"digit first":     func() { r.Counter("0abc", "") },
		"bad label":       func() { r.CounterVec("ok_total", "", "0l") },
		"bad buckets":     func() { r.Histogram("h_seconds", "", []float64{2, 1}) },
		"cardinality":     func() { r.CounterVec("card_total", "", "a").With("x", "y") },
		"bucket mismatch": func() { r.Histogram("hb_seconds", "", []float64{1}); r.Histogram("hb_seconds", "", []float64{2}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "warn": "WARN",
		"error": "ERROR", "bogus": "INFO",
	} {
		if got := ParseLevel(in).String(); got != want {
			t.Errorf("ParseLevel(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	// Must not panic and must not write anywhere observable.
	NopLogger().Info("dropped", "k", "v")
}

func TestNewLoggerFormats(t *testing.T) {
	var text, js strings.Builder
	NewLogger(&text, ParseLevel("info"), false).Info("hello", "k", "v")
	NewLogger(&js, ParseLevel("info"), true).Info("hello", "k", "v")
	if !strings.Contains(text.String(), "msg=hello") {
		t.Errorf("text log: %q", text.String())
	}
	if !strings.Contains(js.String(), `"msg":"hello"`) {
		t.Errorf("json log: %q", js.String())
	}
	var quiet strings.Builder
	NewLogger(&quiet, ParseLevel("error"), false).Info("dropped")
	if quiet.Len() != 0 {
		t.Errorf("level filter leaked: %q", quiet.String())
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Error("BuildInfo.GoVersion is empty; debug.ReadBuildInfo should always report the toolchain")
	}
	if b.Module == "" {
		t.Error("BuildInfo.Module is empty in a module-mode test binary")
	}
	// Memoized: identical on the second read.
	if b2 := Build(); b2 != b {
		t.Errorf("Build() not stable: %+v vs %+v", b, b2)
	}
}

func TestSpanTimingMonotonic(t *testing.T) {
	tr := NewTracer()
	_, s := StartSpan(WithTracer(t.Context(), tr), "work")
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() < 2*time.Millisecond {
		t.Errorf("span duration %v, want >= 2ms", s.Duration())
	}
	d := s.Duration()
	s.End() // second End keeps the first duration
	if s.Duration() != d {
		t.Error("double End changed the duration")
	}
}
