package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// populate builds a registry exercising every family type, label shapes
// and escaping.
func populate() *Registry {
	r := NewRegistry()
	r.Counter("jobs_total", "total jobs").Add(42)
	v := r.CounterVec("cache_total", "cache outcomes", "result")
	v.With("hit").Add(7)
	v.With("miss").Add(3)
	r.Gauge("queue_depth", "jobs waiting").Set(2)
	h := r.HistogramVec("eval_seconds", "latency", []float64{0.1, 1}, "sweep")
	hh := h.With("pareto")
	hh.Observe(0.05)
	hh.Observe(0.5)
	hh.Observe(30)
	r.CounterVec("weird_total", `help with \ and
newline`, "label").With("quote\" back\\ nl\n").Inc()
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := populate().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# HELP jobs_total total jobs\n# TYPE jobs_total counter\njobs_total 42\n",
		`cache_total{result="hit"} 7`,
		`cache_total{result="miss"} 3`,
		"# TYPE queue_depth gauge\nqueue_depth 2\n",
		`eval_seconds_bucket{sweep="pareto",le="0.1"} 1`,
		`eval_seconds_bucket{sweep="pareto",le="1"} 2`,
		`eval_seconds_bucket{sweep="pareto",le="+Inf"} 3`,
		`eval_seconds_sum{sweep="pareto"} 30.55`,
		`eval_seconds_count{sweep="pareto"} 3`,
		`# HELP weird_total help with \\ and\nnewline`,
		`weird_total{label="quote\" back\\ nl\n"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
	// Deterministic: a second serialization is byte-identical.
	var sb2 strings.Builder
	r := populate()
	r.WritePrometheus(&sb2)
	var sb3 strings.Builder
	r.WritePrometheus(&sb3)
	if sb2.String() != sb3.String() {
		t.Error("exposition is not deterministic for a fixed state")
	}
}

// TestExpositionRoundTrip is the acceptance pin: everything the writer
// produces, the validating parser accepts and reads back exactly.
func TestExpositionRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := populate().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse of our own exposition failed: %v\n%s", err, sb.String())
	}
	if f := fams["jobs_total"]; f == nil || f.Type != "counter" || f.Help != "total jobs" ||
		len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Errorf("jobs_total round-trip: %+v", fams["jobs_total"])
	}
	if f := fams["cache_total"]; f == nil || len(f.Samples) != 2 {
		t.Fatalf("cache_total round-trip: %+v", fams["cache_total"])
	} else {
		byLabel := map[string]float64{}
		for _, s := range f.Samples {
			byLabel[s.Labels["result"]] = s.Value
		}
		if byLabel["hit"] != 7 || byLabel["miss"] != 3 {
			t.Errorf("cache_total samples: %v", byLabel)
		}
	}
	f := fams["eval_seconds"]
	if f == nil || f.Type != "histogram" {
		t.Fatalf("eval_seconds family: %+v", f)
	}
	var sum, count float64
	infSeen := false
	for _, s := range f.Samples {
		switch s.Name {
		case "eval_seconds_sum":
			sum = s.Value
		case "eval_seconds_count":
			count = s.Value
		case "eval_seconds_bucket":
			if s.Labels["le"] == "+Inf" {
				infSeen = true
				if !math.IsInf(mustLe(t, s), 1) {
					t.Error("le=+Inf did not parse as +Inf")
				}
			}
		}
	}
	if sum != 30.55 || count != 3 || !infSeen {
		t.Errorf("histogram round-trip: sum=%g count=%g inf=%v", sum, count, infSeen)
	}
	// Escaped label values come back exactly.
	w := fams["weird_total"]
	if w == nil || len(w.Samples) != 1 || w.Samples[0].Labels["label"] != "quote\" back\\ nl\n" {
		t.Errorf("escaped label round-trip: %+v", w)
	}
	if w.Help != "help with \\ and\nnewline" {
		t.Errorf("escaped help round-trip: %q", w.Help)
	}
}

func mustLe(t *testing.T, s Sample) float64 {
	t.Helper()
	v, err := parseValue(s.Labels["le"])
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestMetricsHandler(t *testing.T) {
	r := populate()
	srv := httptest.NewServer(r.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ExpositionContentType {
		t.Errorf("Content-Type = %q", got)
	}
	fams, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) == 0 {
		t.Error("handler served no families")
	}
	// A nil registry serves an empty-but-valid exposition.
	var nilReg *Registry
	srv2 := httptest.NewServer(nilReg.MetricsHandler())
	defer srv2.Close()
	resp2, err := srv2.Client().Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	fams2, err := ParseExposition(resp2.Body)
	if err != nil || len(fams2) != 0 {
		t.Errorf("nil-registry handler: %d families, err %v", len(fams2), err)
	}
}

func TestEmptyFamilyOmitted(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("never_resolved_total", "no series", "l") // no With call
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if strings.Contains(sb.String(), "never_resolved_total") {
		t.Errorf("family with no series was exposed:\n%s", sb.String())
	}
}

func TestFormatFloat(t *testing.T) {
	for v, want := range map[float64]string{
		1.5:              "1.5",
		30.55:            "30.55",
		math.Inf(1):      "+Inf",
		math.Inf(-1):     "-Inf",
		0.00025:          "0.00025",
		1000000000000000: "1e+15",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}
