package obs

import (
	"runtime/debug"
	"sync"
)

// BuildInfo is the build identity of the running binary, read once from
// the Go build metadata. It stamps BENCH.json documents and the
// GET /v1/version endpoint so a measurement or a scraped metric is
// attributable to the commit that produced it.
type BuildInfo struct {
	// Module is the main module path (e.g. "repro").
	Module string `json:"module,omitempty"`
	// Version is the main module version; "(devel)" for plain builds.
	Version string `json:"version,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit hash, when the build embedded one
	// (builds from a git checkout do; `go test` binaries may not).
	Revision string `json:"vcs_revision,omitempty"`
	// Time is the VCS commit timestamp (RFC 3339).
	Time string `json:"vcs_time,omitempty"`
	// Modified reports an unclean working tree at build time.
	Modified bool `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity. The read is memoized: the
// underlying debug.ReadBuildInfo walks the binary once.
func Build() BuildInfo {
	buildOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		buildInfo.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
