package obs

import "time"

// Now and Since are the stack's wall-clock indirection. Every
// wall-clock read outside this package and internal/perf goes through
// them: the cqlalint determinism analyzer fences time.Now/time.Since out
// of the sweep-path packages, so clock reads that exist only to feed
// metrics, traces and job timestamps are declared as such by routing
// here — and a future fake clock for tests has exactly one seam to hook.

// Now returns the current wall-clock time.
func Now() time.Time { return time.Now() }

// Since returns the elapsed wall-clock time since t.
func Since(t time.Time) time.Duration { return time.Since(t) }
