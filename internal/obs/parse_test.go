package obs

import (
	"os"
	"strings"
	"testing"
)

func TestParseExpositionErrors(t *testing.T) {
	cases := map[string]string{
		"bad type":           "# TYPE x frobnicator\n",
		"type after samples": "x_total 1\n# TYPE x_total counter\n",
		"empty type":         "# TYPE x_total\n",
		"bad value":          "x_total one\n",
		"bad name":           "-x 1\n",
		"trailing garbage":   "x_total 1 2 3\n",
		"bad timestamp":      "x_total 1 soon\n",
		"unterminated block": `x_total{l="v" 1` + "\n",
		"unquoted label":     "x_total{l=v} 1\n",
		"bad escape":         `x_total{l="\q"} 1` + "\n",
		"dangling escape":    `x_total{l="\` + "\n",
		"bad label name":     `x_total{0l="v"} 1` + "\n",
		"duplicate label":    `x_total{l="a",l="b"} 1` + "\n",
		"bucket decrease": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" + "h_count 3\nh_sum 1\n",
		"missing inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + "h_count 5\nh_sum 1\n",
		"count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\n" + "h_count 4\nh_sum 1\n",
		"bucket without le": "# TYPE h histogram\n" + "h_bucket 5\n" +
			`h_bucket{le="+Inf"} 5` + "\n" + "h_count 5\nh_sum 1\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, in)
		}
	}
}

func TestParseExpositionLenient(t *testing.T) {
	// Things the format allows that our writer never produces: free-form
	// comments, timestamps, untyped samples, blank lines, label blocks
	// with trailing commas, HELP-only families.
	in := strings.Join([]string{
		"# a free-form comment",
		"",
		"# HELP lonely_metric only help, no type",
		"lonely_metric 3",
		"bare_metric{a=\"1\",} 2 1700000000000",
		"# TYPE typed_total counter",
		"typed_total 9",
	}, "\n") + "\n"
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f := fams["lonely_metric"]; f == nil || f.Type != "untyped" || f.Help == "" || len(f.Samples) != 1 {
		t.Errorf("lonely_metric: %+v", fams["lonely_metric"])
	}
	if f := fams["bare_metric"]; f == nil || len(f.Samples) != 1 || f.Samples[0].Labels["a"] != "1" {
		t.Errorf("bare_metric: %+v", fams["bare_metric"])
	}
	if f := fams["typed_total"]; f == nil || f.Type != "counter" || f.Samples[0].Value != 9 {
		t.Errorf("typed_total: %+v", fams["typed_total"])
	}
}

func TestParseSummaryQuantiles(t *testing.T) {
	in := "# TYPE rpc_seconds summary\n" +
		`rpc_seconds{quantile="0.5"} 0.1` + "\n" +
		"rpc_seconds_sum 10\nrpc_seconds_count 100\n"
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f := fams["rpc_seconds"]; f == nil || len(f.Samples) != 3 {
		t.Errorf("summary family: %+v", fams["rpc_seconds"])
	}
}

// TestLintMetricsFile validates a scraped /metrics document named by
// OBS_METRICS_FILE — the CI smoke-scrape invokes it against output of a
// real `cqla serve` process. Without the env var it is skipped.
func TestLintMetricsFile(t *testing.T) {
	path := os.Getenv("OBS_METRICS_FILE")
	if path == "" {
		t.Skip("OBS_METRICS_FILE not set; this test lints a scraped exposition file")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fams, err := ParseExposition(f)
	if err != nil {
		t.Fatalf("scraped exposition is invalid: %v", err)
	}
	if len(fams) == 0 {
		t.Fatal("scraped exposition has no metric families")
	}
	// The serve-tier families the scrape must include after one job ran.
	for _, name := range []string{
		"cqla_jobs_submitted_total",
		"cqla_jobs_running",
		"cqla_point_eval_seconds",
		"cqla_http_requests_total",
	} {
		if fams[name] == nil {
			t.Errorf("scraped exposition is missing %s", name)
		}
	}
	t.Logf("scraped exposition: %d families", len(fams))
}
