package obs

import (
	"io"
	"log/slog"
)

// NewLogger returns a structured logger writing to w at the given level,
// in logfmt-style text or JSON (`cqla serve -log-format`). It is the one
// logger constructor the stack shares, so every subsystem logs the same
// shape.
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// NopLogger returns a logger that discards everything — the default for
// library components (the job manager, the HTTP API) whose callers did
// not wire logging, so call sites never nil-check.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// ParseLevel maps the CLI level names onto slog levels; unknown names
// fall back to info.
func ParseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
