package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeAndLanes(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx1, root1 := StartSpan(ctx, "sweep")
	_, child := StartSpan(ctx1, "point")
	child.Annotate("coords", "64")
	child.End()
	root1.End()
	_, root2 := StartSpan(ctx, "other")
	root2.End()

	spans := tr.Spans()
	if len(spans) != 3 || tr.Len() != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	if spans[0].Name() != "sweep" || spans[1].Name() != "point" || spans[2].Name() != "other" {
		t.Errorf("span order: %s, %s, %s", spans[0].Name(), spans[1].Name(), spans[2].Name())
	}
	if spans[1].parent != spans[0].id {
		t.Errorf("child parent = %d, want %d", spans[1].parent, spans[0].id)
	}
	if spans[1].lane != spans[0].lane {
		t.Error("child did not inherit its parent's lane")
	}
	if spans[2].lane == spans[0].lane {
		t.Error("second root shares the first root's lane")
	}
	if spans[2].parent != -1 {
		t.Errorf("root parent = %d, want -1", spans[2].parent)
	}
}

func TestStartSpanWithoutTracer(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "ignored")
	if s != nil || ctx2 != ctx {
		t.Error("StartSpan without a tracer must return (ctx, nil)")
	}
	s.End()
	s.Annotate("k", "v")
	if s.Name() != "" || s.Duration() != 0 {
		t.Error("nil span accessors must return zero values")
	}
	if TracerFrom(ctx) != nil {
		t.Error("TracerFrom on a bare context")
	}
	if WithTracer(ctx, nil) != ctx {
		t.Error("WithTracer(nil) must return ctx unchanged")
	}
	var nilT *Tracer
	if nilT.Len() != 0 || nilT.Spans() != nil {
		t.Error("nil tracer accessors")
	}
}

func TestStartSpanNoTracerAllocationFree(t *testing.T) {
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(200, func() {
		ctx2, s := StartSpan(ctx, "x")
		s.End()
		_ = ctx2
	}); allocs != 0 {
		t.Errorf("disabled StartSpan allocates %.1f per op, want 0", allocs)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx1, root := StartSpan(ctx, "sweep")
	_, child := StartSpan(ctx1, "point")
	child.Annotate("coords", "n=64")
	child.End()
	root.End()
	_, unended := StartSpan(ctx, "dangling")
	_ = unended // deliberately never ended

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 3 {
		t.Fatalf("%d events, want 3", len(events))
	}
	for _, ev := range events {
		if ev.Ph != "X" || ev.Pid != 1 {
			t.Errorf("event %q: ph=%q pid=%d", ev.Name, ev.Ph, ev.Pid)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Errorf("event %q: negative time ts=%g dur=%g", ev.Name, ev.Ts, ev.Dur)
		}
	}
	if events[1].Args["coords"] != "n=64" {
		t.Errorf("child args: %v", events[1].Args)
	}
	if events[1].Args["parent_span"] != "0" {
		t.Errorf("child parent_span: %v", events[1].Args)
	}
	if events[0].Tid != events[1].Tid {
		t.Error("child rendered on a different lane than its parent")
	}

	// A nil tracer writes an empty, valid JSON array.
	var nilT *Tracer
	var empty strings.Builder
	if err := nilT.WriteChromeTrace(&empty); err != nil {
		t.Fatal(err)
	}
	var nothing []any
	if err := json.Unmarshal([]byte(empty.String()), &nothing); err != nil || len(nothing) != 0 {
		t.Errorf("nil tracer trace: %q (%v)", empty.String(), err)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx1, root := StartSpan(ctx, "worker")
			_, inner := StartSpan(ctx1, "stage")
			inner.End()
			root.End()
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 2*n {
		t.Errorf("recorded %d spans, want %d", got, 2*n)
	}
	// Every span got a unique id and children inherited lanes.
	seen := map[int]bool{}
	for _, s := range tr.Spans() {
		if seen[s.id] {
			t.Fatalf("duplicate span id %d", s.id)
		}
		seen[s.id] = true
	}
}
