package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is a validating parser for the Prometheus text exposition
// format (version 0.0.4) — the consumer side of WritePrometheus. It
// exists so tests and the CI smoke-scrape can assert that what
// GET /metrics serves is not merely non-empty but well-formed: TYPE
// lines precede their samples, sample names belong to their family,
// values parse, histogram buckets are cumulative and end at le="+Inf"
// with a matching _count.

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// histogram suffix.
	Name string
	// Labels holds the sample's label pairs (including "le").
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
}

// Family is one parsed metric family: its metadata and samples in file
// order.
type Family struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | summary | untyped
	Samples []Sample
}

// ParseExposition parses and validates a text exposition. It returns the
// families keyed by name, or the first format error with its line number.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	var cur *Family
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			f := fams[name]
			if f == nil {
				f = &Family{Name: name, Type: "untyped"}
				fams[name] = f
			}
			if fields[1] == "HELP" {
				if len(fields) == 4 {
					f.Help = unescapeHelp(fields[3])
				}
				cur = f
				continue
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: TYPE without a type", lineno)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineno, fields[3])
			}
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineno, name)
			}
			f.Type = fields[3]
			cur = f
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		fam := familyFor(fams, cur, s.Name)
		if fam == nil {
			// A bare sample with no preceding metadata: untyped family.
			fam = &Family{Name: s.Name, Type: "untyped"}
			fams[s.Name] = fam
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyFor resolves which family a sample line belongs to: the current
// family when the name matches it (histogram suffixes included),
// otherwise an exact-name family if one was declared. A nil return means
// the sample introduces a new untyped family.
func familyFor(fams map[string]*Family, cur *Family, name string) *Family {
	if cur != nil && nameBelongs(cur, name) {
		return cur
	}
	return fams[name]
}

func nameBelongs(f *Family, sample string) bool {
	if sample == f.Name {
		return true
	}
	if f.Type != "histogram" && f.Type != "summary" {
		return false
	}
	rest, ok := strings.CutPrefix(sample, f.Name)
	if !ok {
		return false
	}
	return rest == "_bucket" || rest == "_sum" || rest == "_count"
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want 'value [timestamp]' after %q, got %q", s.Name, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at in[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(in string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(in) && (in[i] == ' ' || in[i] == ',') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(in) && in[i] != '=' {
			i++
		}
		if i == len(in) {
			return 0, fmt.Errorf("unterminated label block %q", in)
		}
		name := in[start:i]
		if !validName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i++ // '='
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("label %s: want quoted value", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return 0, fmt.Errorf("label %s: unterminated value", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return 0, fmt.Errorf("label %s: dangling escape", name)
				}
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case 'n':
					b.WriteByte('\n')
				case '"':
					b.WriteByte('"')
				default:
					return 0, fmt.Errorf("label %s: bad escape \\%c", name, in[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = b.String()
	}
}

func parseValue(s string) (float64, error) {
	// strconv.ParseFloat accepts "+Inf", "-Inf" and "NaN" directly.
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// validateHistogram checks the histogram sample contract per label set:
// cumulative non-decreasing buckets, a final le="+Inf" bucket, and a
// _count equal to it.
func validateHistogram(f *Family) error {
	type state struct {
		last     float64
		haveInf  bool
		infCount float64
		count    float64
		haveCnt  bool
	}
	states := map[string]*state{}
	get := func(s Sample) *state {
		key := labelKeyWithout(s.Labels, "le")
		st := states[key]
		if st == nil {
			st = &state{}
			states[key] = st
		}
		return st
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			st := get(s)
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket sample without le label", f.Name)
			}
			if s.Value < st.last {
				return fmt.Errorf("%s{le=%q}: cumulative bucket count decreased", f.Name, le)
			}
			st.last = s.Value
			if le == "+Inf" {
				st.haveInf = true
				st.infCount = s.Value
			}
		case f.Name + "_count":
			st := get(s)
			st.haveCnt = true
			st.count = s.Value
		}
	}
	for _, st := range states {
		if !st.haveInf {
			return fmt.Errorf("%s: histogram without le=\"+Inf\" bucket", f.Name)
		}
		if st.haveCnt && st.count != st.infCount {
			return fmt.Errorf("%s: _count %g != +Inf bucket %g", f.Name, st.count, st.infCount)
		}
	}
	return nil
}

// labelKeyWithout renders the label set minus one key, for grouping a
// histogram's samples by series.
func labelKeyWithout(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	// Insertion sort: label sets are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(0x1f)
	}
	return b.String()
}

func unescapeHelp(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	v = strings.ReplaceAll(v, `\n`, "\n")
	return strings.ReplaceAll(v, `\\`, `\`)
}
