package gen

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// QFT generates the quantum Fourier transform on n qubits: the
// communication-heavy, computation-light half of Shor's algorithm (Section
// 6 of the paper — it requires all-to-all personalized communication but
// uses only one- and two-qubit gates).
//
// With bitReversal true the output bit order matches the standard DFT
// convention (three-CNOT swaps are appended); without it the output is bit
// reversed, which is how the QFT is usually composed inside larger
// algorithms.
func QFT(n int, bitReversal bool) *circuit.Circuit {
	if n < 1 {
		panic(fmt.Sprintf("gen: QFT width %d < 1", n))
	}
	c := circuit.New(n)
	for i := n - 1; i >= 0; i-- {
		c.AddH(i)
		for j := i - 1; j >= 0; j-- {
			c.AddCPhase(j, i, math.Pi/math.Pow(2, float64(i-j)))
		}
	}
	if bitReversal {
		for i := 0; i < n/2; i++ {
			appendSwap(c, i, n-1-i)
		}
	}
	return c
}

// InverseQFT generates the inverse transform (the piece that actually
// appears at the end of Shor's period finding).
func InverseQFT(n int, bitReversal bool) *circuit.Circuit {
	return QFT(n, bitReversal).Reversed()
}

func appendSwap(c *circuit.Circuit, a, b int) {
	c.AddCNOT(a, b)
	c.AddCNOT(b, a)
	c.AddCNOT(a, b)
}

// QFTGateCount returns the two-qubit gate count of an n-qubit QFT without
// bit reversal: n(n-1)/2 controlled rotations.
func QFTGateCount(n int) int {
	return n * (n - 1) / 2
}
