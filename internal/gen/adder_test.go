package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
)

// encodeInput places operand bits at the adder's register positions.
func encodeInput(ad *Adder, a, b uint64) uint64 {
	var v uint64
	for i := 0; i < ad.N; i++ {
		if a>>uint(i)&1 == 1 {
			v |= 1 << uint(ad.A[i])
		}
		if b>>uint(i)&1 == 1 {
			v |= 1 << uint(ad.B[i])
		}
	}
	return v
}

// checkAdder simulates the adder on (a, b) and verifies the sum register
// holds a+b, inputs are preserved (out-of-place) or replaced by the sum
// (in-place), and every ancilla returned to zero.
func checkAdder(t *testing.T, ad *Adder, a, b uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	s, err := circuit.Simulate(ad.Circuit, encodeInput(ad, a, b), rng)
	if err != nil {
		t.Fatalf("%s n=%d: %v", ad.Name, ad.N, err)
	}
	out, p := s.DominantBasisState()
	if math.Abs(p-1) > 1e-9 {
		t.Fatalf("%s n=%d (%d+%d): output not deterministic, p=%g", ad.Name, ad.N, a, b, p)
	}
	var sum uint64
	for i, q := range ad.Sum {
		if out>>uint(q)&1 == 1 {
			sum |= 1 << uint(i)
		}
	}
	if want := a + b; sum != want {
		t.Errorf("%s n=%d: %d+%d = %d, want %d", ad.Name, ad.N, a, b, sum, want)
	}
	var gotA uint64
	for i, q := range ad.A {
		if out>>uint(q)&1 == 1 {
			gotA |= 1 << uint(i)
		}
	}
	if gotA != a {
		t.Errorf("%s n=%d: input A corrupted: %d -> %d", ad.Name, ad.N, a, gotA)
	}
	for _, q := range ad.Ancilla {
		if out>>uint(q)&1 == 1 {
			t.Errorf("%s n=%d (%d+%d): ancilla qubit %d not restored to 0", ad.Name, ad.N, a, b, q)
		}
	}
}

func TestCarryLookaheadExhaustiveSmall(t *testing.T) {
	for n := 1; n <= 2; n++ {
		ad := CarryLookahead(n)
		for a := uint64(0); a < 1<<uint(n); a++ {
			for b := uint64(0); b < 1<<uint(n); b++ {
				checkAdder(t, ad, a, b)
			}
		}
	}
}

func TestCarryLookahead3Bit(t *testing.T) {
	if testing.Short() {
		t.Skip("3-bit lookahead simulation is slow")
	}
	ad := CarryLookahead(3)
	cases := [][2]uint64{
		{0, 0}, {7, 7}, {5, 3}, {4, 4}, {1, 6}, {7, 1}, {2, 5}, {6, 6},
	}
	for _, c := range cases {
		checkAdder(t, ad, c[0], c[1])
	}
}

func TestRippleCarryExhaustiveSmall(t *testing.T) {
	for n := 1; n <= 3; n++ {
		ad := RippleCarry(n)
		for a := uint64(0); a < 1<<uint(n); a++ {
			for b := uint64(0); b < 1<<uint(n); b++ {
				checkAdder(t, ad, a, b)
			}
		}
	}
}

func TestRippleCarryRandomWide(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{6, 8} {
		ad := RippleCarry(n)
		for trial := 0; trial < 12; trial++ {
			a := rng.Uint64() % (1 << uint(n))
			b := rng.Uint64() % (1 << uint(n))
			checkAdder(t, ad, a, b)
		}
		// Edge cases: max+max produces the carry-out.
		checkAdder(t, ad, 1<<uint(n)-1, 1<<uint(n)-1)
		checkAdder(t, ad, 0, 0)
	}
}

func TestAddersAgreeOnStats(t *testing.T) {
	// The resource shapes the architecture model depends on.
	for _, n := range []int{8, 16, 32, 64, 128} {
		cla := CarryLookahead(n)
		st := cla.Circuit.Stats()
		// 8n-6 from g/tree/carry networks and their uncompute, minus two per
		// level of the leftmost spine whose carry-in is the constant zero.
		spine := 0
		for s := 1; s < n; s *= 2 {
			spine++
		}
		if want := 8*n - 6 - 2*spine; st.Toffolis != want {
			t.Errorf("CLA(%d) toffolis = %d, want %d", n, st.Toffolis, want)
		}
		if st.Qubits != 8*n-2 {
			t.Errorf("CLA(%d) qubits = %d, want %d", n, st.Qubits, 8*n-2)
		}
		rip := RippleCarry(n)
		rs := rip.Circuit.Stats()
		if rs.Toffolis != 2*n {
			t.Errorf("ripple(%d) toffolis = %d, want %d", n, rs.Toffolis, 2*n)
		}
		if rs.Qubits != 2*n+2 {
			t.Errorf("ripple(%d) qubits = %d, want %d", n, rs.Qubits, 2*n+2)
		}
	}
}

func TestLookaheadLogDepthVsRippleLinearDepth(t *testing.T) {
	// The motivating fact of the whole architecture: the lookahead adder's
	// critical path grows logarithmically, the ripple's linearly.
	depth := func(c *circuit.Circuit) int { return circuit.BuildDAG(c).Depth() }
	d64 := depth(CarryLookahead(64).Circuit)
	d128 := depth(CarryLookahead(128).Circuit)
	if float64(d128) > 1.4*float64(d64) {
		t.Errorf("lookahead depth not logarithmic: d(64)=%d d(128)=%d", d64, d128)
	}
	r64 := depth(RippleCarry(64).Circuit)
	r128 := depth(RippleCarry(128).Circuit)
	if r128 < 2*r64-depth(RippleCarry(1).Circuit) {
		t.Errorf("ripple depth not linear: d(64)=%d d(128)=%d", r64, r128)
	}
	if d64 >= r64 {
		t.Errorf("lookahead (%d) should be shallower than ripple (%d) at 64 bits", d64, r64)
	}
}

func TestLookaheadParallelismGrowsWithWidth(t *testing.T) {
	p32 := circuit.BuildDAG(CarryLookahead(32).Circuit).MaxParallelism()
	p128 := circuit.BuildDAG(CarryLookahead(128).Circuit).MaxParallelism()
	if p128 <= p32 {
		t.Errorf("peak parallelism should grow with width: %d vs %d", p32, p128)
	}
	if p32 < 8 {
		t.Errorf("32-bit adder peak parallelism only %d", p32)
	}
}

func TestAdderCircuitsValidate(t *testing.T) {
	for _, n := range []int{1, 2, 7, 33, 100} {
		if err := CarryLookahead(n).Circuit.Validate(); err != nil {
			t.Errorf("CLA(%d): %v", n, err)
		}
		if err := RippleCarry(n).Circuit.Validate(); err != nil {
			t.Errorf("ripple(%d): %v", n, err)
		}
	}
}

func TestNonPowerOfTwoWidths(t *testing.T) {
	// The segment tree must handle widths that are not powers of two.
	for _, n := range []int{3, 5, 6, 7} {
		ad := CarryLookahead(n)
		if err := ad.Circuit.Validate(); err != nil {
			t.Fatalf("CLA(%d): %v", n, err)
		}
		if len(ad.Sum) != n+1 {
			t.Errorf("CLA(%d): sum width %d", n, len(ad.Sum))
		}
	}
}

func TestAdderPanicsOnZeroWidth(t *testing.T) {
	for _, f := range []func(){func() { CarryLookahead(0) }, func() { RippleCarry(0) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkGenerateCLA1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CarryLookahead(1024)
	}
}
