// Package gen generates the logical circuits the CQLA study schedules: the
// Draper carry-lookahead adder (the kernel of Shor's modular
// exponentiation), a CDKM ripple-carry adder used as an ablation baseline,
// the quantum Fourier transform, and the modular-exponentiation composition
// model. Every generator is validated functionally against the dense
// state-vector simulator in the package tests.
package gen

import (
	"fmt"

	"repro/internal/circuit"
)

// Adder bundles a generated addition circuit with its register layout, so
// callers (tests, examples, the architecture model) can set inputs and read
// outputs by logical qubit index.
type Adder struct {
	// Name identifies the construction ("carry-lookahead", "ripple-carry").
	Name string
	// N is the operand width in bits.
	N int
	// A and B are the qubit indices of the input registers, least
	// significant bit first. For in-place adders the sum replaces B.
	A, B []int
	// Sum is the qubit indices of the (n+1)-bit result, least significant
	// first. For in-place adders Sum aliases B plus the carry-out qubit.
	Sum []int
	// Ancilla lists every ancilla qubit; all must return to |0⟩.
	Ancilla []int
	// Circuit is the generated instruction sequence.
	Circuit *circuit.Circuit
}

// claNode is one segment-tree node of the Brent-Kung style carry-lookahead
// network: it owns the qubits holding the carry-generate (G) and
// carry-propagate (P) of its bit span.
type claNode struct {
	lo, hi      int
	g, p        int
	left, right *claNode
	cmid        int // carry qubit feeding the right child's span, -1 at leaves
}

// CarryLookahead generates an out-of-place Draper-style carry-lookahead
// adder: Sum = A + B with A and B preserved and all ancilla returned to
// |0⟩. Carries are computed by a logarithmic-depth tree of Toffoli gates
// over (generate, propagate) pairs — the construction whose limited
// parallelism motivates the CQLA's small number of compute blocks — then
// uncomputed by the mirrored network.
//
// Resource shape: 8n-2 qubits, 8n-6 Toffoli gates, O(log n) Toffoli depth.
func CarryLookahead(n int) *Adder {
	if n < 1 {
		panic(fmt.Sprintf("gen: adder width %d < 1", n))
	}
	next := 0
	alloc := func(k int) []int {
		r := make([]int, k)
		for i := range r {
			r[i] = next
			next++
		}
		return r
	}
	a := alloc(n)
	b := alloc(n)
	sum := alloc(n + 1)
	p := alloc(n)
	g := alloc(n)

	var ancilla []int
	ancilla = append(ancilla, p...)
	ancilla = append(ancilla, g...)
	allocOne := func() int {
		q := next
		next++
		ancilla = append(ancilla, q)
		return q
	}

	// Phase circuits; the uncompute phases are their reverses (every gate
	// involved is self-inverse).
	gp := circuit.New(0)    // generate/propagate computation
	sweep := circuit.New(0) // tree up-sweep + carry down-sweep
	sums := circuit.New(0)  // CNOTs into the sum register (not uncomputed)

	for i := 0; i < n; i++ {
		gp.AddCNOT(a[i], p[i])
		gp.AddCNOT(b[i], p[i])
		gp.AddToffoli(a[i], b[i], g[i])
	}

	// Up-sweep: combine child (G,P) spans bottom-up.
	//   G[lo,hi) = G_right XOR P_right·G_left
	//   P[lo,hi) = P_right·P_left
	var build func(lo, hi int) *claNode
	build = func(lo, hi int) *claNode {
		if hi-lo == 1 {
			return &claNode{lo: lo, hi: hi, g: g[lo], p: p[lo], cmid: -1}
		}
		mid := lo + (hi-lo+1)/2
		left := build(lo, mid)
		right := build(mid, hi)
		node := &claNode{lo: lo, hi: hi, left: left, right: right, cmid: -1}
		node.g = allocOne()
		node.p = allocOne()
		sweep.AddToffoli(right.p, left.g, node.g)
		sweep.AddCNOT(right.g, node.g)
		sweep.AddToffoli(right.p, left.p, node.p)
		return node
	}
	root := build(0, n)

	// Down-sweep: distribute carries top-down. A node whose span starts at
	// lo receives the carry into bit lo (carryIn = -1 encodes the zero
	// carry into bit 0); the carry into the right child's span is
	//   c[mid] = G_left XOR P_left·carryIn.
	carryInto := make([]int, n) // qubit holding carry into bit i, -1 for zero
	var down func(node *claNode, carryIn int)
	down = func(node *claNode, carryIn int) {
		if node.left == nil {
			carryInto[node.lo] = carryIn
			return
		}
		cmid := allocOne()
		node.cmid = cmid
		sweep.AddCNOT(node.left.g, cmid)
		if carryIn >= 0 {
			sweep.AddToffoli(node.left.p, carryIn, cmid)
		}
		down(node.left, carryIn)
		down(node.right, cmid)
	}
	down(root, -1)

	// Sum: s[i] = p[i] XOR c[i]; the carry out of the whole register is the
	// root's generate (its carry-in is zero).
	for i := 0; i < n; i++ {
		sums.AddCNOT(p[i], sum[i])
		if carryInto[i] >= 0 {
			sums.AddCNOT(carryInto[i], sum[i])
		}
	}
	sums.AddCNOT(root.g, sum[n])

	c := circuit.New(next)
	c.AppendAll(gp)
	c.AppendAll(sweep)
	c.AppendAll(sums)
	c.AppendAll(sweep.Reversed())
	c.AppendAll(gp.Reversed())

	return &Adder{
		Name:    "carry-lookahead",
		N:       n,
		A:       a,
		B:       b,
		Sum:     sum,
		Ancilla: ancilla,
		Circuit: c,
	}
}

// RippleCarry generates the CDKM in-place ripple-carry adder
// (Cuccaro-Draper-Kutin-Moulton): B <- A + B using a single ancilla and a
// carry-out qubit, with 2n Toffolis on an O(n)-depth chain. It is the
// serial baseline against which the lookahead adder's parallelism is
// ablated.
func RippleCarry(n int) *Adder {
	if n < 1 {
		panic(fmt.Sprintf("gen: adder width %d < 1", n))
	}
	next := 0
	alloc := func(k int) []int {
		r := make([]int, k)
		for i := range r {
			r[i] = next
			next++
		}
		return r
	}
	a := alloc(n)
	b := alloc(n)
	carryIn := next // scratch ancilla, returns to |0⟩
	next++
	carryOut := next
	next++

	c := circuit.New(next)
	maj := func(x, y, z int) {
		c.AddCNOT(z, y)
		c.AddCNOT(z, x)
		c.AddToffoli(x, y, z)
	}
	uma := func(x, y, z int) {
		c.AddToffoli(x, y, z)
		c.AddCNOT(z, x)
		c.AddCNOT(x, y)
	}

	maj(carryIn, b[0], a[0])
	for i := 1; i < n; i++ {
		maj(a[i-1], b[i], a[i])
	}
	c.AddCNOT(a[n-1], carryOut)
	for i := n - 1; i >= 1; i-- {
		uma(a[i-1], b[i], a[i])
	}
	uma(carryIn, b[0], a[0])

	sum := make([]int, 0, n+1)
	sum = append(sum, b...)
	sum = append(sum, carryOut)
	return &Adder{
		Name:    "ripple-carry",
		N:       n,
		A:       a,
		B:       b,
		Sum:     sum,
		Ancilla: []int{carryIn},
		Circuit: c,
	}
}
