package gen

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/quantum"
)

// dftAmplitudes returns the exact DFT of the basis state |x⟩ over n qubits.
func dftAmplitudes(n int, x uint64) []complex128 {
	size := uint64(1) << uint(n)
	amps := make([]complex128, size)
	norm := 1 / math.Sqrt(float64(size))
	for k := uint64(0); k < size; k++ {
		theta := 2 * math.Pi * float64(x) * float64(k) / float64(size)
		amps[k] = complex(norm, 0) * cmplx.Exp(complex(0, theta))
	}
	return amps
}

func TestQFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 4, 5} {
		c := QFT(n, true)
		for trial := 0; trial < 4; trial++ {
			x := rng.Uint64() % (1 << uint(n))
			s, err := circuit.Simulate(c, x, rng)
			if err != nil {
				t.Fatal(err)
			}
			want := dftAmplitudes(n, x)
			for k, w := range want {
				got := s.Amplitude(uint64(k))
				if cmplx.Abs(got-w) > 1e-9 {
					t.Fatalf("QFT(%d)|%d⟩: amplitude[%d] = %v, want %v", n, x, k, got, w)
					break
				}
			}
		}
	}
}

func TestInverseQFTUndoesQFT(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{2, 4, 6} {
		full := circuit.New(n)
		full.AppendAll(QFT(n, true))
		full.AppendAll(InverseQFT(n, true))
		x := rng.Uint64() % (1 << uint(n))
		s, err := circuit.Simulate(full, x, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p := s.Probability(x); math.Abs(p-1) > 1e-9 {
			t.Errorf("QFT⁻¹·QFT |%d⟩ on %d qubits: P = %g", x, n, p)
		}
	}
}

func TestQFTWithoutReversalIsBitReversedDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 4
	c := QFT(n, false)
	x := uint64(5)
	s, err := circuit.Simulate(c, x, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := dftAmplitudes(n, x)
	for k := uint64(0); k < 1<<uint(n); k++ {
		rk := reverseBits(k, n)
		if cmplx.Abs(s.Amplitude(rk)-want[k]) > 1e-9 {
			t.Fatalf("no-reversal QFT: amplitude[%d] (rev %d) mismatch", k, rk)
		}
	}
}

func reverseBits(x uint64, n int) uint64 {
	var r uint64
	for i := 0; i < n; i++ {
		if x>>uint(i)&1 == 1 {
			r |= 1 << uint(n-1-i)
		}
	}
	return r
}

func TestQFTOnSuperposition(t *testing.T) {
	// QFT of the uniform superposition is |0...0⟩.
	rng := rand.New(rand.NewSource(19))
	n := 4
	st := quantum.NewState(n)
	for q := 0; q < n; q++ {
		st.H(q)
	}
	if err := circuit.SimulateState(InverseQFT(n, true), st, rng); err != nil {
		t.Fatal(err)
	}
	if p := st.Probability(0); math.Abs(p-1) > 1e-9 {
		t.Errorf("QFT⁻¹ of uniform superposition: P(|0⟩) = %g", p)
	}
}

func TestQFTGateCount(t *testing.T) {
	for _, n := range []int{2, 8, 100, 1000} {
		c := QFT(n, false)
		stats := c.Stats()
		if stats.TwoQubit != QFTGateCount(n) {
			t.Errorf("QFT(%d): %d two-qubit gates, want %d", n, stats.TwoQubit, QFTGateCount(n))
		}
		if stats.SingleQubit != n {
			t.Errorf("QFT(%d): %d Hadamards, want %d", n, stats.SingleQubit, n)
		}
		if stats.Toffolis != 0 {
			t.Errorf("QFT(%d): unexpected Toffolis", n)
		}
	}
}

func TestQFTDepthLinear(t *testing.T) {
	// QFT depth is O(n) even though it has O(n²) gates: the structure the
	// paper exploits when it calls QFT "computation light".
	d100 := circuit.BuildDAG(QFT(100, false)).Depth()
	d200 := circuit.BuildDAG(QFT(200, false)).Depth()
	if d200 > 3*d100 {
		t.Errorf("QFT depth growing superlinearly: d(100)=%d d(200)=%d", d100, d200)
	}
}

func TestModExpComposition(t *testing.T) {
	m := NewModExp(1024)
	if m.ExponentBits() != 2048 {
		t.Errorf("exponent bits = %d", m.ExponentBits())
	}
	if m.Multiplications() != 2048 {
		t.Errorf("multiplications = %d", m.Multiplications())
	}
	if m.AdderCalls() != 2048*1024 {
		t.Errorf("adder calls = %d", m.AdderCalls())
	}
	if m.LogicalQubits() != 5*1024+3 {
		t.Errorf("logical qubits = %d", m.LogicalQubits())
	}
	if m.ConcurrentAdders() != 64 {
		t.Errorf("concurrent adders = %d", m.ConcurrentAdders())
	}
	if NewModExp(8).ConcurrentAdders() != 1 {
		t.Error("small modexp should have one concurrent adder")
	}
}

func TestQFTPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	QFT(0, false)
}
