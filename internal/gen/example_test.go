package gen_test

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/gen"
)

// ExampleCarryLookahead shows the resource shape of the paper's adder.
func ExampleCarryLookahead() {
	ad := gen.CarryLookahead(64)
	st := ad.Circuit.Stats()
	d := circuit.BuildDAG(ad.Circuit)
	fmt.Printf("qubits: %d\n", st.Qubits)
	fmt.Printf("toffolis: %d\n", st.Toffolis)
	fmt.Printf("depth: %d slots\n", d.Depth())
	// Output:
	// qubits: 510
	// toffolis: 494
	// depth: 518 slots
}

// ExampleQFT shows the gate counts of the communication-heavy workload.
func ExampleQFT() {
	c := gen.QFT(8, false)
	fmt.Printf("two-qubit gates: %d\n", c.Stats().TwoQubit)
	fmt.Printf("depth: %d slots\n", circuit.BuildDAG(c).Depth())
	// Output:
	// two-qubit gates: 28
	// depth: 15 slots
}
