package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
)

// checkControlled simulates the controlled adder with the control set or
// clear and verifies the conditional semantics.
func checkControlled(t *testing.T, ad *ControlledAdder, a, b uint64, ctrl bool) {
	t.Helper()
	input := encodeInput(&ad.Adder, a, b)
	if ctrl {
		input |= 1 << uint(ad.Control)
	}
	rng := rand.New(rand.NewSource(1))
	s, err := circuit.Simulate(ad.Circuit, input, rng)
	if err != nil {
		t.Fatal(err)
	}
	out, p := s.DominantBasisState()
	if math.Abs(p-1) > 1e-9 {
		t.Fatalf("non-deterministic output p=%g", p)
	}
	var sum uint64
	for i, q := range ad.Sum {
		if out>>uint(q)&1 == 1 {
			sum |= 1 << uint(i)
		}
	}
	want := uint64(0)
	if ctrl {
		want = a + b
	}
	if sum != want {
		t.Errorf("ctrl=%v: %d+%d -> sum %d, want %d", ctrl, a, b, sum, want)
	}
	for _, q := range ad.Ancilla {
		if out>>uint(q)&1 == 1 {
			t.Errorf("ctrl=%v: ancilla %d dirty", ctrl, q)
		}
	}
	if ctrlBit := out>>uint(ad.Control)&1 == 1; ctrlBit != ctrl {
		t.Error("control qubit modified")
	}
}

func TestControlledAdderSemantics(t *testing.T) {
	ad := ControlledCarryLookahead(2)
	for a := uint64(0); a < 4; a++ {
		for b := uint64(0); b < 4; b++ {
			checkControlled(t, ad, a, b, true)
			checkControlled(t, ad, a, b, false)
		}
	}
}

func TestControlledAdderStructure(t *testing.T) {
	n := 64
	plain := CarryLookahead(n)
	ctrl := ControlledCarryLookahead(n)
	ps, cs := plain.Circuit.Stats(), ctrl.Circuit.Stats()
	// The control qubit plus its fan-out copies; sum-phase CNOTs became
	// Toffolis.
	if cs.Qubits != ps.Qubits+1+n/8 {
		t.Errorf("qubits %d, want %d", cs.Qubits, ps.Qubits+1+n/8)
	}
	extraToffolis := cs.Toffolis - ps.Toffolis
	// CNOT delta: converted sum writes minus the 2*(n/8) fan-out CNOTs.
	lostCNOTs := ps.TwoQubit - (cs.TwoQubit - 2*(n/8))
	if extraToffolis != lostCNOTs || extraToffolis == 0 {
		t.Errorf("conversion mismatch: +%d toffolis, -%d cnots", extraToffolis, lostCNOTs)
	}
	// Sum writes: n p-CNOTs + carry CNOTs + carry-out = about 2n+1.
	if extraToffolis < n || extraToffolis > 2*n+1 {
		t.Errorf("converted %d gates, expected ~2n", extraToffolis)
	}
	if err := ctrl.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestControlledAdderDepthComparable(t *testing.T) {
	// The paper schedules controlled and plain additions identically; the
	// control must not change the depth's asymptotics (the converted gates
	// sit on the sum fan-out, adding a constant number of slot levels).
	n := 128
	dPlain := circuit.BuildDAG(CarryLookahead(n).Circuit).Depth()
	dCtrl := circuit.BuildDAG(ControlledCarryLookahead(n).Circuit).Depth()
	if float64(dCtrl) > 3.0*float64(dPlain) {
		t.Errorf("controlled depth %d vs plain %d", dCtrl, dPlain)
	}
}
