package gen

// ModExp is the composition model for quantum modular exponentiation, the
// dominant part of Shor's algorithm. The paper never schedules the full
// exponentiation gate-by-gate (for 1024 bits that is ~10^9 gates); it
// treats it as repeated quantum additions ("quantum modular exponentiation
// is performed by repeated quantum additions") and reports the average time
// per adder. This model records the composition constants.
type ModExp struct {
	// N is the modulus width in bits.
	N int
}

// NewModExp returns the composition model for factoring an N-bit modulus.
func NewModExp(n int) ModExp {
	if n < 1 {
		panic("gen: modexp width < 1")
	}
	return ModExp{N: n}
}

// ExponentBits returns the exponent register width (2n for period finding).
func (m ModExp) ExponentBits() int { return 2 * m.N }

// Multiplications returns the number of controlled modular multiplications:
// one per exponent bit.
func (m ModExp) Multiplications() int { return m.ExponentBits() }

// AdditionsPerMultiplication returns the number of modular additions inside
// one controlled modular multiplication (one partial product per operand
// bit).
func (m ModExp) AdditionsPerMultiplication() int { return m.N }

// AdderCalls returns the total number of n-bit additions in one modular
// exponentiation: 2n multiplications x n additions each. (Each modular
// addition also involves comparison/subtraction steps; those are
// carry-lookahead networks of the same shape and are folded into the
// per-adder time.)
func (m ModExp) AdderCalls() int { return m.Multiplications() * m.AdditionsPerMultiplication() }

// ConcurrentAdders returns how many additions can proceed simultaneously:
// partial-product additions within one multiplication can be tree-summed,
// giving parallelism that grows with operand width. The model uses n/16
// (at least 1), matching the compute-block provisioning the paper chooses
// (roughly one block per ~10 operand bits).
func (m ModExp) ConcurrentAdders() int {
	c := m.N / 16
	if c < 1 {
		c = 1
	}
	return c
}

// LogicalQubits returns the total logical data qubits resident in memory
// during modular exponentiation: the standard 5n+3 circuit footprint
// (exponent excluded — it is consumed by the semiclassical QFT).
func (m ModExp) LogicalQubits() int { return 5*m.N + 3 }
