package gen

import (
	"fmt"

	"repro/internal/circuit"
)

// ControlledCarryLookahead generates the conditioned form of the
// carry-lookahead adder used inside modular exponentiation: Sum = A + B
// when the control qubit is 1, Sum = B's value (i.e. A treated as zero)
// when it is 0 — realized by conditioning only the sum-register writes.
// The carry network runs unconditionally and uncomputes either way, so the
// control adds one Toffoli per sum CNOT but leaves the network's depth
// untouched, which is why the paper can treat controlled and plain
// additions as the same scheduling unit.
//
// The returned Adder's Control field holds the control qubit index.
func ControlledCarryLookahead(n int) *ControlledAdder {
	if n < 1 {
		panic(fmt.Sprintf("gen: adder width %d < 1", n))
	}
	base := CarryLookahead(n)
	control := base.Circuit.NumQubits() // append the control qubit

	// A single control qubit would serialize every conditioned write, so
	// it is fanned out into copies with a CNOT chain (legitimate for
	// conditioning X-basis writes: the copies carry the control's value in
	// the computational basis) and the Toffolis draw controls round-robin.
	copies := n / 8
	if copies < 1 {
		copies = 1
	}
	fan := make([]int, copies)
	for i := range fan {
		fan[i] = control + 1 + i
	}
	c := circuit.New(control + 1 + copies)
	for _, f := range fan {
		c.AddCNOT(control, f)
	}

	// Rebuild with conditioned sum writes: every CNOT targeting the sum
	// register becomes a Toffoli conjoined with a control copy; everything
	// else is unchanged.
	inSum := make(map[int]bool, len(base.Sum))
	for _, q := range base.Sum {
		inSum[q] = true
	}
	next := 0
	for _, in := range base.Circuit.Instrs() {
		if in.Kind.String() == "cnot" && inSum[in.Qubits[1]] {
			c.AddToffoli(fan[next%copies], in.Qubits[0], in.Qubits[1])
			next++
			continue
		}
		c.Append(in)
	}
	for i := copies - 1; i >= 0; i-- {
		c.AddCNOT(control, fan[i])
	}

	ancilla := append([]int(nil), base.Ancilla...)
	ancilla = append(ancilla, fan...)
	return &ControlledAdder{
		Adder: Adder{
			Name:    "controlled-carry-lookahead",
			N:       n,
			A:       base.A,
			B:       base.B,
			Sum:     base.Sum,
			Ancilla: ancilla,
			Circuit: c,
		},
		Control: control,
	}
}

// ControlledAdder is an Adder with a control qubit gating the sum writes.
type ControlledAdder struct {
	Adder
	Control int
}
