// Hierarchy: the quantum memory hierarchy in action. This example dissects
// where the level-1 tier's speedup comes from: it runs the qubit-cache
// simulator on a real adder instruction stream under both fetch policies,
// converts the miss traffic into code-transfer stalls at several transfer
// network widths, and shows the resulting per-addition speedups and the
// fidelity budget that caps how often the fast tier may be used.
//
// Run with: go run ./examples/hierarchy
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cqla"
	"repro/internal/ecc"
	"repro/internal/fidelity"
	"repro/internal/gen"
	"repro/internal/phys"
	"repro/internal/transfer"
)

func main() {
	const bits = 256
	p := phys.Projected()
	ad := gen.CarryLookahead(bits)
	pe := 36 * cqla.BlockDataQubits // one superblock's data qubits

	fmt.Printf("Memory hierarchy study on the %d-bit carry-lookahead adder\n\n", bits)

	// 1. The cache: policy beats capacity.
	fmt.Println("cache hit rates (LRU):")
	fmt.Printf("  %-12s %-10s %-10s\n", "capacity", "naive", "optimized")
	for _, mult := range []float64{1, 1.5, 2} {
		capQ := int(mult * float64(pe))
		naive := cache.Simulate(ad.Circuit, cache.Config{CacheQubits: capQ, Policy: cache.Naive})
		opt := cache.Simulate(ad.Circuit, cache.Config{CacheQubits: capQ, Policy: cache.Optimized})
		fmt.Printf("  %-12s %-10.1f %-10.1f\n",
			fmt.Sprintf("%.1fxPE", mult), 100*naive.HitRate(), 100*opt.HitRate())
	}

	// 2. The transfer network: what a miss costs.
	fmt.Println("\ncode-transfer round trips (Table 3):")
	for _, c := range ecc.Codes() {
		rt := transfer.RoundTrip(transfer.Enc(c, 2), transfer.Enc(c, 1))
		fmt.Printf("  %-22s %.1f s per qubit (needs %d channel(s) per transfer)\n",
			c.Name, rt.Seconds(), c.ChannelsRequired())
	}

	// 3. Putting it together: per-addition speedups by network width.
	fmt.Println("\nper-addition speedup vs QLA (Bacon-Shor, 36 blocks):")
	fmt.Printf("  %-8s %-10s %-10s %-12s\n", "xfers", "L1", "L2", "1:2 mix")
	for _, par := range []int{2, 5, 10, 20} {
		m := cqla.New(cqla.Config{Code: ecc.BaconShor(), Params: p, ComputeBlocks: 36, ParallelTransfers: par})
		fmt.Printf("  %-8d %-10.1f %-10.2f %-12.2f\n",
			par, m.SpeedupL1(bits), m.SpeedupL2(bits), m.AdderSpeedup(bits))
	}

	// 4. The fidelity ceiling on level-1 usage.
	app := fidelity.ModExpAppSize(1024)
	fmt.Println("\nfidelity budget for the 1024-bit workload:")
	for _, c := range ecc.Codes() {
		b := fidelity.NewBudget(c, p.AverageFailure())
		frac := b.MaxLevel1Fraction(app.Target())
		fmt.Printf("  %-22s max level-1 operation share %.0f%%; 1:2 mix safe=%v\n",
			c.Name, 100*frac, b.MixMeetsTarget(1, 2, app))
	}
	tf := fidelity.Level1TimeFraction(1, 2,
		ecc.BaconShor().ECTime(1, p).Seconds(), ecc.BaconShor().ECTime(2, p).Seconds())
	fmt.Printf("  (the 1:2 mix spends only %.1f%% of wall-clock time at level 1)\n", 100*tf)
}
