// Shor: an end-to-end resource estimate for factoring an N-bit modulus on
// the CQLA — the workload the paper's whole design targets. For each
// architecture (homogeneous QLA, Steane CQLA, Bacon-Shor CQLA with the
// memory hierarchy) it reports the logical qubit count, floorplan area,
// the time of one modular exponentiation, and whether the fault-tolerance
// budget holds at the paper's 1:2 level-mix policy.
//
// Run with: go run ./examples/shor [bits]
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/cqla"
	"repro/internal/ecc"
	"repro/internal/fidelity"
	"repro/internal/gen"
	"repro/internal/phys"
)

func main() {
	bits := 1024
	if len(os.Args) > 1 {
		b, err := strconv.Atoi(os.Args[1])
		if err != nil || b < 8 {
			fmt.Fprintf(os.Stderr, "usage: shor [bits>=8]\n")
			os.Exit(2)
		}
		bits = b
	}
	p := phys.Projected()
	me := gen.NewModExp(bits)
	app := fidelity.ModExpAppSize(bits)
	blocks := cqla.PaperBlockCounts()
	k := nearestBlocks(blocks, bits)

	fmt.Printf("Factoring a %d-bit modulus (Shor's algorithm)\n", bits)
	fmt.Printf("  logical data qubits: %d\n", me.LogicalQubits())
	fmt.Printf("  modular multiplications: %d (%d additions each)\n",
		me.Multiplications(), me.AdditionsPerMultiplication())
	fmt.Printf("  fault-tolerance target: %.2g per logical operation (KQ = %.2g)\n\n",
		app.Target(), app.K*app.Q)

	for _, code := range ecc.Codes() {
		m := cqla.New(cqla.Config{Code: code, Params: p, ComputeBlocks: k, ParallelTransfers: 10})
		budget := fidelity.NewBudget(code, p.AverageFailure())
		level := code.MinLevelFor(app.Target(), p.AverageFailure(), 4)
		times := m.ModExpTimes(bits)
		fmt.Printf("CQLA with %s (%d compute blocks):\n", code.Name, k)
		fmt.Printf("  concatenation level required: L%d (logical failure %.2g)\n",
			level, code.LogicalFailureRate(level, p.AverageFailure(), ecc.DefaultCommDistance))
		fmt.Printf("  area: %.2f m² (%.1fx denser than QLA)\n",
			m.AreaMM2(me.LogicalQubits(), true)/1e6, m.AreaReduction(me.LogicalQubits(), true))
		fmt.Printf("  one addition: %.1f s at L2, %.1f s at L1 (incl. transfers)\n",
			m.AdderTimeL2(bits).Seconds(), m.AdderTimeL1(bits).Seconds())
		fmt.Printf("  modular exponentiation: %.0f hours compute, %.0f hours communication\n",
			times.Computation.Hours(), times.Communication.Hours())
		safe := budget.MixMeetsTarget(1, 2, app)
		fmt.Printf("  1:2 level-mix fidelity check: safe=%v (mix failure %.2g vs target %.2g)\n",
			safe, budget.MixFailure(1, 2), app.Target())
		fmt.Printf("  gain product vs QLA: %.1f\n\n",
			m.GainProduct(bits, me.LogicalQubits(), true))
	}
}

// nearestBlocks picks the paper's block budget for the closest studied
// input size.
func nearestBlocks(table map[int][2]int, bits int) int {
	bestSize, bestDiff := 0, 1<<30
	for size := range table {
		d := size - bits
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			bestSize, bestDiff = size, d
		}
	}
	return table[bestSize][0]
}
