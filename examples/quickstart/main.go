// Quickstart: generate a quantum adder, prove it adds, and place it on a
// CQLA. This walks the library's main path end to end:
//
//  1. gen builds the Draper-style carry-lookahead adder circuit;
//  2. circuit+quantum verify it functionally on a state vector;
//  3. sched maps it onto a bounded set of compute blocks;
//  4. core/cqla turns the schedule into area and time against the QLA
//     baseline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sched"
)

func main() {
	// 1. Functional proof on a small instance: 2+3 on a 2-bit adder.
	small := gen.CarryLookahead(2)
	input := uint64(0)
	a, b := uint64(2), uint64(3)
	for i := 0; i < small.N; i++ {
		if a>>uint(i)&1 == 1 {
			input |= 1 << uint(small.A[i])
		}
		if b>>uint(i)&1 == 1 {
			input |= 1 << uint(small.B[i])
		}
	}
	state, err := circuit.Simulate(small.Circuit, input, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	out, p := state.DominantBasisState()
	var sum uint64
	for i, q := range small.Sum {
		if out>>uint(q)&1 == 1 {
			sum |= 1 << uint(i)
		}
	}
	fmt.Printf("state-vector check: %d + %d = %d (probability %.3f)\n", a, b, sum, p)

	// 2. The architecture-scale instance: a 64-bit adder.
	adder := gen.CarryLookahead(64)
	stats := adder.Circuit.Stats()
	dag := circuit.BuildDAG(adder.Circuit)
	fmt.Printf("\n64-bit carry-lookahead adder: %d logical qubits, %d instructions (%d Toffolis)\n",
		stats.Qubits, stats.Instructions, stats.Toffolis)
	fmt.Printf("critical path %d slots; peak parallelism %d gates\n", dag.Depth(), dag.MaxParallelism())

	// 3. Schedule onto a handful of compute blocks.
	for _, blocks := range []int{4, 15, 25} {
		r := sched.ListSchedule(dag, blocks)
		fmt.Printf("  %2d blocks: makespan %4d slots, utilization %.2f\n",
			blocks, r.MakespanSlots, r.Utilization())
	}

	// 4. Size the machine.
	machine := core.DefaultBaconShor(15)
	qubits := 5*64 + 3 // modular-exponentiation footprint
	fmt.Printf("\nCQLA (Bacon-Shor, 15 blocks) for a 64-bit workload:\n")
	fmt.Printf("  area        %8.1f mm²  (QLA baseline %.1f mm², %.1fx denser)\n",
		machine.AreaMM2(qubits, false), machine.Baseline().AreaMM2(qubits),
		machine.AreaReduction(qubits, false))
	fmt.Printf("  adder time  %8.1f s    (QLA %.1f s, speedup %.2fx)\n",
		machine.AdderTimeL2(64).Seconds(), machine.QLAAdderTime(64).Seconds(),
		machine.SpeedupL2(64))
	fmt.Printf("  gain product %.1f (QLA = 1.0)\n", machine.GainProduct(64, qubits, false))
}
