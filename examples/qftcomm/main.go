// QFT communication: the stress test for the CQLA's interconnect. The
// quantum Fourier transform needs all-to-all personalized communication but
// only cheap one- and two-qubit gates, so it probes the architecture where
// the adder does not. This example validates a small QFT functionally,
// then scales the communication analysis: transport times, purification,
// mesh all-to-all costs, and the computation/communication balance of
// Figure 8(b).
//
// Run with: go run ./examples/qftcomm
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/cqla"
	"repro/internal/ecc"
	"repro/internal/gen"
	"repro/internal/mesh"
	"repro/internal/phys"
)

func main() {
	p := phys.Projected()
	bs := ecc.BaconShor()

	// 1. Functional check: QFT then inverse QFT is the identity.
	n := 6
	round := circuit.New(n)
	round.AppendAll(gen.QFT(n, true))
	round.AppendAll(gen.InverseQFT(n, true))
	state, err := circuit.Simulate(round, 0b101101, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QFT·QFT⁻¹ on |101101⟩: P(identity) = %.6f\n\n", state.Probability(0b101101))

	// 2. What one logical transport costs, and why it is distance-free.
	fmt.Println("logical qubit transport (teleportation through repeater islands):")
	for _, level := range []int{1, 2} {
		fmt.Printf("  level %d: %.3g s per hop-independent transport\n",
			level, mesh.TransportTime(bs, level, p).Seconds())
	}
	fmt.Printf("  EPR purification: fidelity 0.90 -> %.4f after one round; %d rounds reach 0.999\n\n",
		mesh.PurifyFidelity(0.90), mesh.PurificationRounds(0.90, 0.999))

	// 3. All-to-all on the mesh.
	fmt.Println("all-to-all personalized communication on the mesh (level 2):")
	for _, q := range []int{64, 256, 1024} {
		m := mesh.NewMeshFor(q)
		fmt.Printf("  %4d qubits on a %dx%d mesh: %6.0f s (bisection %d links)\n",
			q, m.Rows, m.Cols, mesh.AllToAllTime(q, bs, 2, p).Seconds(), m.Bisection())
	}

	// 4. Figure 8(b): the QFT's computation/communication balance.
	machine := cqla.New(cqla.Config{Code: bs, Params: p, ComputeBlocks: 36, ParallelTransfers: 10})
	fmt.Println("\nQFT computation vs communication (Figure 8b):")
	fmt.Printf("  %-8s %-14s %-14s %-8s\n", "size", "compute (s)", "comm (s)", "ratio")
	for _, q := range []int{100, 250, 500, 1000} {
		t := machine.QFTTimes(q)
		fmt.Printf("  %-8d %-14.0f %-14.0f %.2f\n",
			q, t.Computation.Seconds(), t.Communication.Seconds(),
			float64(t.Communication)/float64(t.Computation))
	}
	fmt.Println("\ncommunication tracks computation but never dominates: the CQLA has no memory wall.")
}
