package repro_bench

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/cqla"
	"repro/internal/des"
	"repro/internal/ecc"
	"repro/internal/fidelity"
	"repro/internal/gen"
	"repro/internal/layout"
	"repro/internal/phys"
	"repro/internal/qla"
	"repro/internal/sched"
	"repro/internal/shor"
	"repro/internal/transfer"
)

// TestHeadlineClaims asserts the paper's abstract, end to end: "up to a
// factor of thirteen savings in area due to specialization" and "increase
// time performance by a factor of eight" via the memory hierarchy.
func TestHeadlineClaims(t *testing.T) {
	bestArea, bestSpeed := 0.0, 0.0
	for _, n := range cqla.PaperInputSizes() {
		k := cqla.PaperBlockCounts()[n][0]
		m := core.DefaultBaconShor(k)
		q := gen.NewModExp(n).LogicalQubits()
		if f := m.AreaReduction(q, false); f > bestArea {
			bestArea = f
		}
		if s := m.AdderSpeedup(n); s > bestSpeed {
			bestSpeed = s
		}
	}
	if bestArea < 9 {
		t.Errorf("best area factor %.1f; the paper claims up to 13", bestArea)
	}
	if bestSpeed < 6 {
		t.Errorf("best adder speedup %.1f; the paper claims about 8", bestSpeed)
	}
}

// TestPipelineConsistency checks that the three performance views agree:
// the scheduler's makespan, the machine model built on it, and the
// discrete-event simulator with communication disabled.
func TestPipelineConsistency(t *testing.T) {
	n, blocks := 32, 9
	m := core.DefaultBaconShor(blocks)
	dag := m.AdderDAG(n)
	ms := sched.ListSchedule(dag, blocks).MakespanSlots
	if got := m.AdderTimeL2(n); got != time.Duration(ms)*m.SlotTime(2) {
		t.Errorf("machine adder time %v != makespan x slot %v", got, time.Duration(ms)*m.SlotTime(2))
	}
	stats, err := des.Run(dag.Circuit(), des.Config{
		Blocks:         blocks,
		Channels:       8,
		ResidentQubits: 10000,
		SlotTime:       m.SlotTime(2),
		TransportTime:  0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ideal := time.Duration(ms) * m.SlotTime(2)
	ratio := float64(stats.Makespan) / float64(ideal)
	// The DES dispatches FIFO rather than critical-path-first, so it may
	// trail the list scheduler slightly; it can never beat it by much.
	if ratio < 0.95 || ratio > 1.25 {
		t.Errorf("DES makespan %v vs scheduler %v (ratio %.2f)", stats.Makespan, ideal, ratio)
	}
}

// TestNoMemoryWallEndToEnd runs the DES with real Table 2 / Table 3
// derived timings and confirms the paper's overlap argument on the full
// 64-bit adder.
func TestNoMemoryWallEndToEnd(t *testing.T) {
	p := phys.Projected()
	bs := ecc.BaconShor()
	ad := gen.CarryLookahead(64)
	stats, err := des.Run(ad.Circuit, des.Config{
		Blocks:         9,
		Channels:       12,
		ResidentQubits: 2 * ad.Circuit.NumQubits(),
		SlotTime:       bs.ECTime(2, p),
		TransportTime:  bs.TransversalGateTime(2, p),
	})
	if err != nil {
		t.Fatal(err)
	}
	computeOnly := time.Duration(sched.ListSchedule(circuit.BuildDAG(ad.Circuit), 9).MakespanSlots) * bs.ECTime(2, p)
	if hidden := des.CommunicationHidden(stats, computeOnly); hidden < 0.75 {
		t.Errorf("only %.0f%% of communication hidden", 100*hidden)
	}
}

// TestAreaModelMatchesFloorplan ties the analytic area model to the placed
// floorplan.
func TestAreaModelMatchesFloorplan(t *testing.T) {
	m := core.DefaultBaconShor(36)
	q := gen.NewModExp(256).LogicalQubits()
	fp, err := layout.Build(layout.Config{
		Code:          ecc.BaconShor(),
		Params:        phys.Projected(),
		InputBits:     256,
		ComputeBlocks: 36,
		Hierarchy:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := m.AreaMM2(q, true)
	placed := fp.TotalAreaMM2()
	if diff := (placed - model) / model; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("floorplan %.1f mm² vs model %.1f mm²", placed, model)
	}
}

// TestCurrentTechnologyIsBelowRequirements reproduces the paper's framing:
// currently demonstrated parameters sit above both codes' thresholds, so
// the architecture study must use the projected point.
func TestCurrentTechnologyIsBelowRequirements(t *testing.T) {
	p0now := phys.Current().AverageFailure()
	p0future := phys.Projected().AverageFailure()
	for _, c := range ecc.Codes() {
		if c.BelowThreshold(p0now) {
			t.Errorf("%s: current technology should be above threshold", c.Short)
		}
		if !c.BelowThreshold(p0future) {
			t.Errorf("%s: projected technology should be below threshold", c.Short)
		}
	}
	app := fidelity.ModExpAppSize(1024)
	if lvl := ecc.Steane().MinLevelFor(app.Target(), p0now, 4); lvl != -1 {
		t.Error("no concatenation level should rescue current parameters")
	}
}

// TestGainProductBaselineIsOne sanity-checks the normalization: a machine
// configured like the QLA itself (Steane everywhere, enough blocks to run
// at full parallelism, QLA-style 1:2 provisioning) should land near gain
// product 1 on the time axis.
func TestGainProductBaselineIsOne(t *testing.T) {
	n := 64
	m := core.DefaultSteane(64) // far past the knee
	s := m.SpeedupL2(n)
	if s < 0.95 || s > 1.0001 {
		t.Errorf("speedup with ample blocks = %.3f, want ~1", s)
	}
	_ = qla.GainProduct
}

// TestShorOnSimulatedCQLAWorkload closes the loop: the machine the paper
// sizes is for Shor's algorithm, and the repository actually runs Shor's
// algorithm (at toy scale) on the same circuit substrate.
func TestShorOnSimulatedCQLAWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	res, err := shor.Factor(15, rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.P*res.Q != 15 {
		t.Fatalf("Factor(15) = %d x %d", res.P, res.Q)
	}
	// And the architecture knows what the full-scale version costs.
	m := core.DefaultBaconShor(100)
	times := m.ModExpTimes(1024)
	if times.Computation <= 0 || times.Communication >= times.Computation {
		t.Errorf("1024-bit modexp estimate inconsistent: %+v", times)
	}
}

// TestTransferMatrixFeedsHierarchyModel checks that the Table 3 numbers
// actually drive the Table 5 stall model.
func TestTransferMatrixFeedsHierarchyModel(t *testing.T) {
	m := core.DefaultBaconShor(36)
	rt := transfer.RoundTrip(
		transfer.Enc(ecc.BaconShor(), 2),
		transfer.Enc(ecc.BaconShor(), 1),
	)
	stall := m.TransferStall()
	if stall <= 0 {
		t.Fatal("no stall modeled")
	}
	// Stall = (1-overlap) x batches x roundTrip: divisible structure.
	batches := float64(stall) / ((1 - cqla.TransferOverlap) * float64(rt))
	if batches < 1 || batches != float64(int(batches+0.5)) {
		// Allow floating rounding: check near-integer.
		if diff := batches - float64(int(batches+0.5)); diff > 1e-6 || diff < -1e-6 {
			t.Errorf("stall %v is not an integer number of round-trip batches (%.4f)", stall, batches)
		}
	}
}
