// Command cqlalint runs the repository's static-analysis suite
// (internal/lint) over the named package patterns and reports findings as
// `file:line: [rule] message`. It exits 0 when the tree is clean, 1 when
// any finding remains, and 2 on a load failure.
//
// Usage:
//
//	cqlalint [-list] [packages]
//
// With no patterns it analyzes ./... . Suppress an individual finding
// with a `//lint:ignore-cqla <rule> <reason>` comment on the same line or
// the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cqlalint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqlalint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqlalint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(lint.DefaultConfig(), pkgs)
	for _, f := range findings {
		fmt.Println(f.StringRelative(cwd))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cqlalint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
