// Command cqlalint runs the repository's static-analysis suite
// (internal/lint) over the named package patterns. It exits 0 when the
// tree is clean, 1 when any finding remains, and 2 on a load failure
// (load errors print to stderr with file:line positions).
//
// Usage:
//
//	cqlalint [-list] [-format text|json|github] [-fix] [-tags list] [-bench file] [packages]
//
// With no patterns it analyzes ./... . Output formats: text prints
// `file:line: [rule] message`; json emits the versioned findings
// document; github emits `::error file=…,line=…` workflow commands so CI
// findings annotate the PR diff.
//
// -bench names a BENCH.json document for the budget-aware noalloc
// analyzer; the default "BENCH.json" is skipped silently when absent, an
// explicit path must exist. -fix writes a
// `//lint:ignore-cqla <rule> TODO(triage): <finding>` stub above each
// finding for staged adoption on big refactors; rerunning cqlalint then
// reports clean, and rerunning -fix changes nothing. Suppress an
// individual finding permanently with a
// `//lint:ignore-cqla <rule> <reason>` comment on the same line or the
// line directly above it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"

	"repro/internal/lint"
	"repro/internal/perf"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	format := flag.String("format", "text", "findings output: text, json, or github")
	fix := flag.Bool("fix", false, "write //lint:ignore-cqla TODO(triage) stubs for the findings and exit 0")
	tags := flag.String("tags", "", "comma-separated build tags passed to the go list loader")
	bench := flag.String("bench", "BENCH.json", "BENCH.json document for the budget-aware noalloc analyzer (\"\" disables)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cqlalint [-list] [-format text|json|github] [-fix] [-tags list] [-bench file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqlalint: %v\n", err)
		os.Exit(2)
	}

	cfg := lint.DefaultConfig()
	if *bench != "" {
		budgets, err := lint.LoadBudgets(*bench)
		switch {
		case err == nil:
			cfg.Budgets = budgets
			cfg.BudgetPath = *bench
			cfg.MeasuredFuncs = perf.MeasuredFunctions()
		case errors.Is(err, fs.ErrNotExist) && !flagWasSet("bench"):
			// No checked-in BENCH.json here: the budget analyzer stays off.
		default:
			fmt.Fprintf(os.Stderr, "cqlalint: %v\n", err)
			os.Exit(2)
		}
	}

	pkgs, err := lint.LoadTags(cwd, *tags, patterns...)
	if err != nil {
		var le *lint.LoadError
		if errors.As(err, &le) {
			for _, d := range le.Diags {
				fmt.Fprintf(os.Stderr, "%s\n", d)
			}
			fmt.Fprintf(os.Stderr, "cqlalint: %d load error(s)\n", len(le.Diags))
		} else {
			fmt.Fprintf(os.Stderr, "cqlalint: %v\n", err)
		}
		os.Exit(2)
	}
	findings := lint.Run(cfg, pkgs)

	if *fix && len(findings) > 0 {
		files, stubbed, remainder, err := lint.ApplyFix(findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cqlalint: -fix: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("cqlalint: wrote %d suppression stub(s) across %d file(s); rerun cqlalint to verify, then triage the TODOs\n", stubbed, files)
		for _, f := range remainder {
			fmt.Println(f.StringRelative(cwd))
		}
		if len(remainder) > 0 {
			fmt.Fprintf(os.Stderr, "cqlalint: %d finding(s) have no source position and cannot be stubbed\n", len(remainder))
			os.Exit(1)
		}
		return
	}

	switch *format {
	case "text":
		for _, f := range findings {
			fmt.Println(f.StringRelative(cwd))
		}
	case "json":
		if err := lint.WriteJSON(os.Stdout, cwd, findings); err != nil {
			fmt.Fprintf(os.Stderr, "cqlalint: %v\n", err)
			os.Exit(2)
		}
	case "github":
		if err := lint.WriteGitHub(os.Stdout, cwd, findings); err != nil {
			fmt.Fprintf(os.Stderr, "cqlalint: %v\n", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "cqlalint: unknown -format %q (want text, json, or github)\n", *format)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cqlalint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// flagWasSet reports whether the named flag appeared on the command line
// (as opposed to holding its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
