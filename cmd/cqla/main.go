// Command cqla regenerates every table and figure of the CQLA paper
// (Thaker et al., ISCA 2006) from the architecture model in this
// repository, and runs open design-space sweeps through the exploration
// engine in internal/explore.
//
// Usage:
//
//	cqla [-current] <experiment>
//	cqla sweep <name> [-format text|json|csv] [-engine analytic|des] [-parallel N] [-seed S] [-trace out.json]
//	cqla sweep -circuit file.qc [same flags]
//	cqla serve [-addr :8400] [-pprof] [-log-level info] [-log-format text|json]
//	cqla bench [-filter re] [-out BENCH.json] [-benchtime d] [-baseline old.json [-gate pct]]
//
// Most experiments live in the explore registry and accept either form:
// the first prints an aligned text table, the second adds machine-readable
// output, an evaluation-engine switch (the closed-form model or the
// discrete-event simulator, both behind the internal/arch API), a
// worker-pool parallelism knob and deterministic seeding. `cqla serve`
// exposes the same registry over HTTP. A few artifacts whose output is not
// a point set (the Figure 2 parallelism profile, the ASCII floorplan, the
// discrete-event overlap check) keep hand-laid layouts.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/cqla"
	"repro/internal/ecc"
	"repro/internal/explore"
	"repro/internal/gen"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/phys"
)

// specials are the artifacts that are not point sweeps: their output is a
// profile, a floorplan drawing or a simulation trace, so they bypass the
// exploration engine.
var specials = map[string]func(phys.Params){
	"table1":    table1,
	"fig2":      fig2,
	"floorplan": floorplan,
	"overlap":   overlap,
}

var specialOrder = []string{"table1", "fig2", "floorplan", "overlap"}

func main() {
	flag.Usage = usage
	current := flag.Bool("current", false, "use currently demonstrated ion-trap parameters instead of projected")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	name := strings.ToLower(flag.Arg(0))
	if name == "sweep" {
		runSweep(flag.Args()[1:], *current)
		return
	}
	if name == "serve" {
		runServe(flag.Args()[1:])
		return
	}
	if name == "bench" {
		runBench(flag.Args()[1:])
		return
	}
	if flag.NArg() > 1 {
		fmt.Fprintf(os.Stderr, "cqla: unexpected arguments after %q: %q (for sweep flags use: cqla sweep %s [flags])\n\n", name, flag.Args()[1:], name)
		usage()
		os.Exit(2)
	}
	p := phys.Projected()
	if *current {
		p = phys.Current()
	}
	switch {
	case name == "all":
		runAll(p)
	case specials[name] != nil:
		specials[name](p)
	default:
		exp, err := explore.Lookup(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cqla: unknown experiment %q\n\n", name)
			usage()
			os.Exit(2)
		}
		emitSweep(exp, p, "text", arch.EngineAnalytic, "", 0, 1, false, "")
	}
}

// runAll regenerates every artifact: the hand-laid specials first, then
// every registered sweep as a text table.
func runAll(p phys.Params) {
	for _, k := range specialOrder {
		fmt.Printf("==== %s ====\n", k)
		specials[k](p)
		fmt.Println()
	}
	for _, e := range explore.Experiments() {
		fmt.Printf("==== sweep %s ====\n", e.Name)
		emitSweep(e, p, "text", arch.EngineAnalytic, "", 0, 1, false, "")
		fmt.Println()
	}
}

// runSweep handles `cqla sweep <name> [flags]` and
// `cqla sweep -circuit file.qc [flags]`.
func runSweep(args []string, current bool) {
	fs := flag.NewFlagSet("cqla sweep", flag.ExitOnError)
	format := fs.String("format", "text", "output format: text, json or csv")
	engine := fs.String("engine", "analytic", "evaluation engine for machine-backed sweeps: analytic or des")
	estimator := fs.String("estimator", "naive", "montecarlo estimator: naive (scalar), bitsliced (64-trial batch) or rare (importance sampling + adaptive budget); montecarlo sweep only")
	parallel := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "base seed for stochastic sweeps")
	cur := fs.Bool("current", current, "use currently demonstrated ion-trap parameters instead of projected")
	progress := fs.Bool("progress", false, "report point completion on stderr")
	trace := fs.String("trace", "", "write a Chrome trace_event JSON of the sweep to this path (open in chrome://tracing or https://ui.perfetto.dev)")
	circuitPath := fs.String("circuit", "", "sweep a custom circuit file (text format, see docs/workload-format.md) across block budgets instead of a registered sweep")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cqla sweep <name> [flags]\n       cqla sweep -circuit file.qc [flags]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nSweeps:\n")
		listSweeps(os.Stderr)
	}
	// A leading flag is allowed only for the -circuit form; a registered
	// sweep is always named first.
	name := ""
	if len(args) >= 1 && !strings.HasPrefix(args[0], "-") {
		name = strings.ToLower(args[0])
		args = args[1:]
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "cqla: unexpected arguments after sweep name: %q\n\n", fs.Args())
		fs.Usage()
		os.Exit(2)
	}
	var exp *explore.Experiment
	switch {
	case *circuitPath != "" && name != "":
		fmt.Fprintf(os.Stderr, "cqla: use either a sweep name or -circuit, not both\n\n")
		fs.Usage()
		os.Exit(2)
	case *circuitPath != "":
		var err error
		if exp, err = circuitExperiment(*circuitPath); err != nil {
			fmt.Fprintf(os.Stderr, "cqla: %v\n", err)
			os.Exit(2)
		}
	case name == "":
		fs.Usage()
		os.Exit(2)
	default:
		var err error
		if exp, err = explore.Lookup(name); err != nil {
			fmt.Fprintf(os.Stderr, "cqla: unknown sweep %q\n\nSweeps:\n", name)
			listSweeps(os.Stderr)
			os.Exit(2)
		}
	}
	if !validFormat(*format) {
		fmt.Fprintf(os.Stderr, "cqla: unknown format %q (have %s)\n", *format, strings.Join(explore.Formats(), ", "))
		os.Exit(2)
	}
	eng, err := arch.NormalizeEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqla: %v\n", err)
		os.Exit(2)
	}
	// The estimator axis only applies to the montecarlo sweep; a non-default
	// value swaps in that sweep's estimator-specific evaluator.
	est := ""
	if *estimator != "" && *estimator != explore.EstimatorNaive {
		if name != "montecarlo" {
			fmt.Fprintf(os.Stderr, "cqla: -estimator applies only to the montecarlo sweep, not %q\n", exp.Name)
			os.Exit(2)
		}
		var err error
		if exp, err = explore.NewMonteCarloExperiment(*estimator); err != nil {
			fmt.Fprintf(os.Stderr, "cqla: %v\n", err)
			os.Exit(2)
		}
		est = *estimator
	}
	p := phys.Projected()
	if *cur {
		p = phys.Current()
	}
	emitSweep(exp, p, *format, eng, est, *parallel, *seed, *progress, *trace)
}

// runServe handles `cqla serve [flags]`: the registry-driven HTTP API
// behind a production-shaped http.Server — read/write timeouts, a job
// manager with result caching, and signal-driven graceful shutdown that
// drains in-flight jobs before exit.
func runServe(args []string) {
	fs := flag.NewFlagSet("cqla serve", flag.ExitOnError)
	addr := fs.String("addr", ":8400", "listen address")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "result-cache LRU budget in bytes (0 disables caching)")
	maxEval := fs.Int("max-evaluations", 1, "sweep evaluations running at once; further jobs queue")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs and requests")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: cqla serve [flags]

Serves the sweep registry as a JSON API:
  GET  /v1/sweeps              list registered sweeps
  POST /v1/sweeps/{name}:run   run one; body {"phys","seed","parallel","engine","async"}
  GET  /v1/jobs                list jobs, newest first
  GET  /v1/jobs/{id}           job state, progress, report when done
  GET  /v1/jobs/{id}/report    raw report document of a done job
  GET  /v1/version             schema version and build identity
  GET  /metrics                Prometheus text exposition (jobs, caches,
                               per-sweep evaluation latency, HTTP)
  /debug/pprof/...             Go profiling endpoints (with -pprof)

Identical runs — same (sweep, phys, seed, engine) at any parallelism —
coalesce onto one evaluation and repeats are served from an in-memory LRU
cache (the X-Cache response header says which). An {"async": true} run
returns 202 with a job id to poll. SIGINT/SIGTERM drains in-flight jobs
for up to -drain before exiting. Requests and job lifecycles are logged
to stderr as structured logs (-log-level, -log-format).

Flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "cqla: unexpected arguments: %q\n\n", fs.Args())
		fs.Usage()
		os.Exit(2)
	}
	if *logFormat != "text" && *logFormat != "json" {
		fmt.Fprintf(os.Stderr, "cqla: unknown -log-format %q (have text, json)\n", *logFormat)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel), *logFormat == "json")
	api := explore.NewServer(
		explore.WithCacheBytes(*cacheBytes),
		explore.WithMaxEvaluations(*maxEval),
		explore.WithObservability(obs.NewRegistry()),
		explore.WithLogger(logger),
		explore.WithPprof(*pprofOn),
	)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second, // request bodies are tiny JSON
		// Synchronous runs stream only after the sweep finishes, so the
		// write timeout bounds slow clients, not slow sweeps — but a very
		// long sweep should still use {"async": true}.
		WriteTimeout: 10 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("cqla: serving %d sweeps on %s", len(explore.Names()), *addr)
	select {
	case err := <-errc:
		log.Fatal(err) // listen failure: bad address, port in use
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("cqla: signal received; draining jobs (up to %v)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := api.Shutdown(sctx); err != nil {
			log.Printf("cqla: job drain incomplete: %v", err)
		}
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("cqla: server shutdown: %v", err)
		}
	}
}

// runBench handles `cqla bench [flags]`: the perf harness over the
// registered benchmark suite, emitting the versioned BENCH.json document
// and, with -baseline, a benchstat-style delta table against a previous
// document (the CI regression gate's preferred path).
func runBench(args []string) {
	fs := flag.NewFlagSet("cqla bench", flag.ExitOnError)
	filter := fs.String("filter", "", "regexp selecting benchmarks by name (default: all)")
	out := fs.String("out", "", "write BENCH.json to this path (default: stdout)")
	list := fs.Bool("list", false, "list registered benchmarks and exit")
	benchtime := fs.Duration("benchtime", perf.DefaultBenchTime, "per-benchmark measurement budget")
	baseline := fs.String("baseline", "", "compare against a previous BENCH.json and print a delta table")
	gate := fs.Float64("gate", 0, "with -baseline: exit nonzero when the sec/op geomean regresses more than this percent (0 disables)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: cqla bench [-filter re] [-out BENCH.json] [-benchtime d] [-baseline old.json [-gate pct]] [-list]

Runs the registered performance suite through the native measurement loop
and writes a versioned, machine-readable report (schema_version %d):
ns/op, B/op, allocs/op and custom metrics per benchmark, plus host
metadata. -benchtime trades precision for wall clock (CI uses 100ms).
Progress goes to stderr, the JSON document to -out (or stdout).

With -baseline, a benchstat-style sec/op delta table against the previous
document is printed to stderr, and -gate N fails the run when the
geometric-mean regression exceeds N%% — the CI gate's fast path, replacing
a full merge-base rebuild whenever a baseline artifact exists.

Flags:
`, perf.SchemaVersion)
		fs.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nBenchmarks:\n")
		listBenchmarks(os.Stderr)
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "cqla: unexpected arguments: %q\n\n", fs.Args())
		fs.Usage()
		os.Exit(2)
	}
	if *list {
		listBenchmarks(os.Stdout)
		return
	}
	if *gate != 0 && *baseline == "" {
		log.Fatal("cqla: -gate requires -baseline")
	}
	if *gate < 0 {
		// A negative threshold would silently disable enforcement below;
		// reject it so a sign typo cannot masquerade as an active gate.
		log.Fatalf("cqla: -gate %g must be >= 0", *gate)
	}
	var base *perf.Report
	if *baseline != "" {
		// Load before the measurement campaign: a bad baseline path should
		// fail in milliseconds, not after the suite ran.
		var err error
		if base, err = perf.LoadReport(*baseline); err != nil {
			log.Fatalf("cqla: %v", err)
		}
	}
	opt := perf.Options{
		BenchTime: *benchtime,
		Progress: func(done, total int, r perf.Result) {
			fmt.Fprintf(os.Stderr, "cqla: bench %d/%d %-30s %12.0f ns/op %8d allocs/op\n",
				done, total, r.Name, r.NsPerOp, r.AllocsPerOp)
		},
	}
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			log.Fatalf("cqla: bad -filter: %v", err)
		}
		opt.Filter = re
	}
	rep, err := perf.Run(opt)
	if err != nil {
		log.Fatalf("cqla: %v", err)
	}
	if *out == "" || *out == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			log.Fatalf("cqla: write report: %v", err)
		}
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("cqla: %v", err)
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			// Leave no truncated document behind: a half-written BENCH.json
			// at the target path reads as a valid-looking artifact to CI.
			os.Remove(*out)
			log.Fatalf("cqla: write report %s: %v", *out, werr)
		}
	}
	if base == nil {
		return
	}
	cmp := perf.Compare(base, rep)
	fmt.Fprintf(os.Stderr, "\ncqla: delta vs %s\n", *baseline)
	if err := cmp.WriteText(os.Stderr); err != nil {
		log.Fatalf("cqla: %v", err)
	}
	if len(cmp.Deltas) == 0 {
		// A disjoint benchmark set cannot be gated; fail loudly rather
		// than report a vacuous pass.
		log.Fatalf("cqla: baseline %s shares no benchmarks with this build", *baseline)
	}
	if *gate > 0 && cmp.GeomeanPct > *gate {
		log.Fatalf("cqla: sec/op geomean regressed %+.2f%% (> %g%% gate)", cmp.GeomeanPct, *gate)
	}
}

// circuitExperiment loads a text-format circuit file and wraps it in the
// block-budget sweep CircuitExperiment defines; the workload is named after
// the file.
func circuitExperiment(path string) (*explore.Experiment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c, perr := circuit.Parse(f)
	if cerr := f.Close(); perr == nil {
		perr = cerr
	}
	if perr != nil {
		return nil, fmt.Errorf("%s: %w", path, perr)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return explore.CircuitExperiment(name, c)
}

// listBenchmarks prints the perf registry, so newly registered benchmarks
// appear in usage output automatically.
func listBenchmarks(w io.Writer) {
	for _, bm := range perf.Benchmarks() {
		fmt.Fprintf(w, "  %-30s %s\n", bm.Name, bm.Doc)
	}
}

// emitSweep runs one registered experiment through the exploration engine
// and writes it to stdout in the requested format. A non-empty trace path
// records every evaluation stage as Chrome trace_event JSON.
func emitSweep(exp *explore.Experiment, p phys.Params, format, engine, estimator string, parallel int, seed int64, progress bool, trace string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var tracer *obs.Tracer
	if trace != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	opts := explore.Options{Phys: p, Parallel: parallel, Seed: seed, Engine: engine}
	if progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcqla: %s %d/%d points", exp.Name, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	pts, err := explore.Run(ctx, exp, opts)
	if err != nil {
		if progress {
			fmt.Fprintln(os.Stderr) // terminate the \r-rewritten progress line
		}
		log.Fatalf("cqla: sweep %s: %v", exp.Name, err)
	}
	if tracer != nil {
		if err := writeTrace(trace, tracer); err != nil {
			log.Fatalf("cqla: %v", err)
		}
		fmt.Fprintf(os.Stderr, "cqla: wrote %d spans to %s\n", tracer.Len(), trace)
	}
	r := &explore.Report{Experiment: exp, Phys: p.Name, Seed: seed, Engine: engine, Estimator: estimator, Points: pts}
	if err := r.Emit(os.Stdout, format); err != nil {
		log.Fatalf("cqla: emit %s: %v", exp.Name, err)
	}
}

// writeTrace dumps the recorded spans as Chrome trace_event JSON.
func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tracer.WriteChromeTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("write trace %s: %w", path, werr)
	}
	return nil
}

// validFormat rejects unknown -format values before the sweep runs,
// rather than after minutes of computation at emission time.
func validFormat(format string) bool {
	for _, f := range explore.Formats() {
		if f == format {
			return true
		}
	}
	return false
}

// listSweeps prints the registry listing, so newly registered experiments
// appear in usage output automatically.
func listSweeps(w io.Writer) {
	for _, e := range explore.Experiments() {
		fmt.Fprintf(w, "  %-14s %s (%d points)\n", e.Name, e.Title, e.Size())
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: cqla [-current] <experiment>
       cqla sweep <name> [-format text|json|csv] [-engine analytic|des] [-parallel N] [-seed S] [-trace out.json]
       cqla sweep -circuit file.qc [same flags]
       cqla serve [-addr :8400] [-pprof] [-log-level info] [-log-format text|json]
       cqla bench [-filter re] [-out BENCH.json] [-benchtime d] [-baseline old.json [-gate pct]]

Hand-laid artifacts:
  table1     physical operation parameters (Table 1)
  fig2       parallelism profile of the 64-qubit adder (Figure 2)
  floorplan  ASCII floorplan of the 256-bit Bacon-Shor CQLA (Figure 3b)
  overlap    discrete-event check of the communication-overlap claim
  all        everything: the artifacts above plus every registered sweep

Registered sweeps (run directly for a text table, or through
`+"`cqla sweep <name>`"+` for json/csv output, -engine, -parallel and
-seed; `+"`cqla serve`"+` exposes the same registry over HTTP):
`)
	listSweeps(os.Stderr)
}

func table1(p phys.Params) {
	fmt.Printf("Physical parameters (%s)\n", p.Name)
	fmt.Printf("%-14s %-12s %s\n", "Operation", "Time", "Failure rate")
	for _, op := range phys.Ops() {
		o := p.Op(op)
		fmt.Printf("%-14s %-12v %.3g\n", op, o.Time, o.FailureRate)
	}
	fmt.Printf("%-14s %-12v\n", "memory time", p.MemoryTime)
	fmt.Printf("%-14s %g µm (%d electrodes -> %.0f µm regions)\n",
		"trap size", p.TrapSizeMicron, p.ElectrodesPerRegion, p.RegionPitchMicron())
	fmt.Printf("%-14s %v\n", "clock cycle", p.CycleTime)
}

func fig2(p phys.Params) {
	m := cqla.New(cqla.Config{Code: ecc.Steane(), Params: p, ComputeBlocks: 15, ParallelTransfers: 10})
	f := cqla.Fig2(m, 64, 15)
	fmt.Printf("64-qubit adder: unlimited %d slots, 15 blocks %d slots (%.2fx)\n",
		f.UnlimitedSlots, f.LimitedSlots, float64(f.LimitedSlots)/float64(f.UnlimitedSlots))
	fmt.Println("slot  unlimited  15-blocks")
	step := len(f.UnlimitedProfile) / 24
	if step < 1 {
		step = 1
	}
	for t := 0; t < f.LimitedSlots; t += step {
		u, l := 0, 0
		if t < len(f.UnlimitedProfile) {
			u = f.UnlimitedProfile[t]
		}
		if t < len(f.LimitedProfile) {
			l = f.LimitedProfile[t]
		}
		fmt.Printf("%-5d %-10s %-10s\n", t, bar(u), bar(l))
	}
}

func bar(n int) string {
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n)
}

func floorplan(p phys.Params) {
	f, err := layout.Build(layout.Config{
		Code:          ecc.BaconShor(),
		Params:        p,
		InputBits:     256,
		ComputeBlocks: 36,
		Hierarchy:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f.ASCII(72))
}

// overlap checks the communication-overlap claim through the unified
// evaluation API: the same 64-bit adder workload runs on the des engine at
// increasing channel counts.
func overlap(p phys.Params) {
	ad := gen.CarryLookahead(64)
	fmt.Println("discrete-event execution of the 64-bit adder (Bacon-Shor L2, 9 blocks):")
	fmt.Printf("%-10s %-12s %-12s %-10s %-10s\n", "channels", "makespan", "stall", "hidden", "chan-util")
	computeOnly := 0.0
	for _, ch := range []int{1, 2, 4, 8, 12} {
		m, err := arch.New(
			arch.WithCodeName("bacon-shor"),
			arch.WithParams(p),
			arch.WithBlocks(9),
			arch.WithSimChannels(ch),
			arch.WithSimResidency(2*ad.Circuit.NumQubits()),
		)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := m.Engine(arch.EngineDES)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Evaluate(context.Background(), arch.NewAdder(64, false))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-12.1f %-12.1f %-10.2f %-10.2f\n",
			ch, res.MustMetric("makespan_s"), res.MustMetric("stall_s"),
			res.MustMetric("communication_hidden"), res.MustMetric("channel_utilization"))
		computeOnly = res.MustMetric("compute_only_s")
	}
	fmt.Printf("compute-only lower bound: %.1f s\n", computeOnly)
}
