// Command cqla regenerates every table and figure of the CQLA paper
// (Thaker et al., ISCA 2006) from the architecture model in this
// repository.
//
// Usage:
//
//	cqla <experiment> [flags]
//
// Experiments: table1 table2 table3 table4 table5 fig2 fig6a fig6b fig7
// fig8a fig8b all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/cqla"
	"repro/internal/des"
	"repro/internal/ecc"
	"repro/internal/gen"
	"repro/internal/layout"
	"repro/internal/phys"
	"repro/internal/sched"
)

func main() {
	flag.Usage = usage
	current := flag.Bool("current", false, "use currently demonstrated ion-trap parameters instead of projected")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	p := phys.Projected()
	if *current {
		p = phys.Current()
	}
	name := strings.ToLower(flag.Arg(0))
	experiments := map[string]func(phys.Params){
		"table1":    table1,
		"table2":    table2,
		"table3":    table3,
		"table4":    table4,
		"table5":    table5,
		"fig2":      fig2,
		"fig6a":     fig6a,
		"fig6b":     fig6b,
		"fig7":      fig7,
		"fig8a":     fig8a,
		"fig8b":     fig8b,
		"floorplan": floorplan,
		"overlap":   overlap,
	}
	if name == "all" {
		for _, k := range []string{"table1", "table2", "table3", "table4", "table5", "fig2", "fig6a", "fig6b", "fig7", "fig8a", "fig8b", "floorplan", "overlap"} {
			fmt.Printf("==== %s ====\n", k)
			experiments[k](p)
			fmt.Println()
		}
		return
	}
	run, ok := experiments[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "cqla: unknown experiment %q\n\n", name)
		usage()
		os.Exit(2)
	}
	run(p)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: cqla [-current] <experiment>

Experiments (each regenerates one table or figure of the paper):
  table1   physical operation parameters (Table 1)
  table2   error-correction metric summary (Table 2)
  table3   code-transfer network latencies (Table 3)
  table4   CQLA specialization vs QLA for modular exponentiation (Table 4)
  table5   memory-hierarchy speedups and gain products (Table 5)
  fig2     parallelism profile of the 64-qubit adder (Figure 2)
  fig6a    compute-block utilization curves (Figure 6a)
  fig6b    superblock bandwidth crossover (Figure 6b)
  fig7     cache hit rates, naive vs optimized fetch (Figure 7)
  fig8a    modular exponentiation computation vs communication (Figure 8a)
  fig8b    QFT computation vs communication (Figure 8b)
  floorplan  ASCII floorplan of the 256-bit Bacon-Shor CQLA (Figure 3b)
  overlap    discrete-event check of the communication-overlap claim
  all      everything above in sequence
`)
}

func table1(p phys.Params) {
	fmt.Printf("Physical parameters (%s)\n", p.Name)
	fmt.Printf("%-14s %-12s %s\n", "Operation", "Time", "Failure rate")
	for _, op := range phys.Ops() {
		o := p.Op(op)
		fmt.Printf("%-14s %-12v %.3g\n", op, o.Time, o.FailureRate)
	}
	fmt.Printf("%-14s %-12v\n", "memory time", p.MemoryTime)
	fmt.Printf("%-14s %g µm (%d electrodes -> %.0f µm regions)\n",
		"trap size", p.TrapSizeMicron, p.ElectrodesPerRegion, p.RegionPitchMicron())
	fmt.Printf("%-14s %v\n", "clock cycle", p.CycleTime)
}

func table2(p phys.Params) {
	fmt.Printf("%-12s %-6s %-12s %-14s %-12s %-8s %-8s\n",
		"Code", "Level", "EC time", "Transversal", "Area (mm²)", "Data", "Ancilla")
	for _, m := range cqla.Table2Rows(p) {
		fmt.Printf("%-12s L%-5d %-12.4g %-14.4g %-12.3g %-8d %-8d\n",
			m.Code, m.Level, m.ECTime.Seconds(), m.TransversalGateTime.Seconds(),
			m.AreaMM2, m.DataIons, m.AncillaIons)
	}
}

func table3(phys.Params) {
	encs, m := cqla.Table3Matrix()
	fmt.Printf("%-10s", "(seconds)")
	for _, e := range encs {
		fmt.Printf("%-8s", e)
	}
	fmt.Println()
	for i, from := range encs {
		fmt.Printf("%-10s", from)
		for j := range encs {
			fmt.Printf("%-8.3g", m[i][j].Seconds())
		}
		fmt.Println()
	}
}

func table4(p phys.Params) {
	fmt.Print(cqla.FormatTable4(cqla.Table4(p)))
}

func table5(p phys.Params) {
	fmt.Print(cqla.FormatTable5(cqla.Table5(p)))
}

func fig2(p phys.Params) {
	m := cqla.New(cqla.Config{Code: ecc.Steane(), Params: p, ComputeBlocks: 15, ParallelTransfers: 10})
	f := cqla.Fig2(m, 64, 15)
	fmt.Printf("64-qubit adder: unlimited %d slots, 15 blocks %d slots (%.2fx)\n",
		f.UnlimitedSlots, f.LimitedSlots, float64(f.LimitedSlots)/float64(f.UnlimitedSlots))
	fmt.Println("slot  unlimited  15-blocks")
	step := len(f.UnlimitedProfile) / 24
	if step < 1 {
		step = 1
	}
	for t := 0; t < f.LimitedSlots; t += step {
		u, l := 0, 0
		if t < len(f.UnlimitedProfile) {
			u = f.UnlimitedProfile[t]
		}
		if t < len(f.LimitedProfile) {
			l = f.LimitedProfile[t]
		}
		fmt.Printf("%-5d %-10s %-10s\n", t, bar(u), bar(l))
	}
}

func bar(n int) string {
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n)
}

func fig6a(p phys.Params) {
	curves := cqla.Fig6a(p)
	fmt.Printf("%-8s", "blocks")
	for _, c := range curves {
		fmt.Printf("%-9s", fmt.Sprintf("%d-bit", c.AdderSize))
	}
	fmt.Println()
	for i, k := range cqla.Fig6aBlockCounts() {
		fmt.Printf("%-8d", k)
		for _, c := range curves {
			fmt.Printf("%-9.3f", c.Utilizations[i])
		}
		fmt.Println()
	}
}

func fig6b(phys.Params) {
	f := cqla.Fig6b()
	fmt.Printf("superblock crossover: %d compute blocks\n", f.Crossover)
	fmt.Printf("%-8s %-12s %-12s %-12s\n", "blocks", "available", "req-draper", "req-worst")
	for i, k := range f.Blocks {
		fmt.Printf("%-8d %-12.1f %-12.1f %-12.1f\n", k, f.Available[i], f.RequiredDraper[i], f.RequiredWorst[i])
	}
}

func fig7(p phys.Params) {
	fmt.Printf("%-8s %-10s %-8s %-10s %-10s\n", "adder", "cache", "xPE", "naive", "optimized")
	for _, r := range cqla.Fig7(p) {
		fmt.Printf("%-8d %-10d %-8.1f %-10.1f %-10.1f\n",
			r.AdderSize, r.CacheSize, r.Multiplier, 100*r.NaiveRate, 100*r.OptimRate)
	}
}

func fig8a(p phys.Params) {
	fmt.Printf("%-8s %-16s %-16s\n", "bits", "computation(h)", "communication(h)")
	for _, a := range cqla.Fig8a(p) {
		fmt.Printf("%-8d %-16.1f %-16.1f\n", a.ProblemSize, a.Computation.Hours(), a.Communication.Hours())
	}
}

func floorplan(p phys.Params) {
	f, err := layout.Build(layout.Config{
		Code:          ecc.BaconShor(),
		Params:        p,
		InputBits:     256,
		ComputeBlocks: 36,
		Hierarchy:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f.ASCII(72))
}

func overlap(p phys.Params) {
	bs := ecc.BaconShor()
	ad := gen.CarryLookahead(64)
	fmt.Println("discrete-event execution of the 64-bit adder (Bacon-Shor L2, 9 blocks):")
	fmt.Printf("%-10s %-12s %-12s %-10s %-10s\n", "channels", "makespan", "stall", "hidden", "chan-util")
	dag := circuit.BuildDAG(ad.Circuit)
	computeOnly := time.Duration(sched.ListSchedule(dag, 9).MakespanSlots) * bs.ECTime(2, p)
	for _, ch := range []int{1, 2, 4, 8, 12} {
		stats, err := des.Run(ad.Circuit, des.Config{
			Blocks:         9,
			Channels:       ch,
			ResidentQubits: 2 * ad.Circuit.NumQubits(),
			SlotTime:       bs.ECTime(2, p),
			TransportTime:  bs.TransversalGateTime(2, p),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-12.1f %-12.1f %-10.2f %-10.2f\n",
			ch, stats.Makespan.Seconds(), stats.StallTime.Seconds(),
			des.CommunicationHidden(stats, computeOnly), stats.ChannelUtilization)
	}
	fmt.Printf("compute-only lower bound: %.1f s\n", computeOnly.Seconds())
}

func fig8b(p phys.Params) {
	fmt.Printf("%-8s %-16s %-16s\n", "size", "computation(s)", "communication(s)")
	for _, a := range cqla.Fig8b(p) {
		fmt.Printf("%-8d %-16.0f %-16.0f\n", a.ProblemSize, a.Computation.Seconds(), a.Communication.Seconds())
	}
}
