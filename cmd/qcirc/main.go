// Command qcirc generates, analyzes, schedules and simulates logical
// quantum circuits in the repository's line-oriented text format — the
// "assembly language" the paper's simulator consumes.
//
// Usage:
//
//	qcirc gen   -kind adder|ripple|qft|qftcomm|shor-stage -n N   emit a circuit to stdout
//	qcirc fmt                                    canonicalize a circuit (stdin to stdout)
//	qcirc parse                                  validate a circuit, print a summary
//	qcirc stats                                  read a circuit, print stats
//	qcirc sched -blocks K                        schedule onto K blocks
//	qcirc sim   -a X -b Y -n N -kind adder       simulate an adder
//
// gen | fmt | parse is the round-trip invariant: gen emits canonical text,
// fmt reproduces it byte for byte, parse accepts it. The format is
// specified in docs/workload-format.md.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/sched"
	"repro/internal/shor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = runGen(args)
	case "fmt":
		err = runFmt(args)
	case "parse":
		err = runParse(args)
	case "stats":
		err = runStats(args)
	case "sched":
		err = runSched(args)
	case "sim":
		err = runSim(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qcirc %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: qcirc <gen|fmt|parse|stats|sched|sim> [flags]

  gen   -kind adder|ripple|qft|qftcomm|shor-stage -n N   generate a circuit (text to stdout)
  fmt                                  canonicalize a circuit (stdin to stdout)
  parse                                validate a circuit from stdin, print a summary
  stats                                circuit stats (text from stdin)
  sched -blocks K                      list-schedule stdin onto K blocks
  sim   -kind adder|ripple -n N -a X -b Y   simulate an addition`)
}

// buildCircuit shares the arch kernel registry's vocabulary: qft is the
// pure rotation cascade, qftcomm adds the bit-reversal swap chains,
// shor-stage is the controlled addition of modular exponentiation. ripple
// is qcirc-only (a generator comparison, not an arch workload kind).
func buildCircuit(kind string, n int) (*circuit.Circuit, error) {
	switch kind {
	case "adder":
		return gen.CarryLookahead(n).Circuit, nil
	case "ripple":
		return gen.RippleCarry(n).Circuit, nil
	case "qft":
		return gen.QFT(n, false), nil
	case "qftcomm":
		return gen.QFT(n, true), nil
	case "shor-stage":
		return shor.StageCircuit(n), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "adder", "circuit kind: adder, ripple, qft, qftcomm, shor-stage")
	n := fs.Int("n", 8, "width in bits/qubits")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := buildCircuit(*kind, *n)
	if err != nil {
		return err
	}
	return circuit.Encode(os.Stdout, c)
}

func runFmt(args []string) error {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := circuit.Parse(os.Stdin)
	if err != nil {
		return err
	}
	return circuit.Format(os.Stdout, c)
}

func runParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := circuit.Parse(os.Stdin)
	if err != nil {
		return err
	}
	s := c.Stats()
	fmt.Printf("ok: %d qubits, %d instructions, %d slots serial\n",
		s.Qubits, s.Instructions, s.TotalSlots)
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := circuit.Decode(os.Stdin)
	if err != nil {
		return err
	}
	s := c.Stats()
	d := circuit.BuildDAG(c)
	fmt.Printf("qubits        %d\n", s.Qubits)
	fmt.Printf("instructions  %d\n", s.Instructions)
	fmt.Printf("toffolis      %d\n", s.Toffolis)
	fmt.Printf("two-qubit     %d\n", s.TwoQubit)
	fmt.Printf("single-qubit  %d\n", s.SingleQubit)
	fmt.Printf("total slots   %d\n", s.TotalSlots)
	fmt.Printf("depth (slots) %d\n", d.Depth())
	fmt.Printf("peak parallel %d\n", d.MaxParallelism())
	return nil
}

func runSched(args []string) error {
	fs := flag.NewFlagSet("sched", flag.ExitOnError)
	blocks := fs.Int("blocks", 15, "compute block budget (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := circuit.Decode(os.Stdin)
	if err != nil {
		return err
	}
	d := circuit.BuildDAG(c)
	r := sched.ListSchedule(d, *blocks)
	fmt.Printf("blocks      %d\n", *blocks)
	fmt.Printf("makespan    %d slots (critical path %d)\n", r.MakespanSlots, d.Depth())
	fmt.Printf("utilization %.3f\n", r.Utilization())
	fmt.Printf("knee(2%%)    %d blocks\n", sched.KneeBlocks(d, 0.02))
	return nil
}

func runSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	kind := fs.String("kind", "adder", "adder kind: adder, ripple")
	n := fs.Int("n", 2, "operand width in bits")
	a := fs.Uint64("a", 1, "first operand")
	b := fs.Uint64("b", 2, "second operand")
	seed := fs.Int64("seed", 1, "measurement RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ad *gen.Adder
	switch *kind {
	case "adder":
		ad = gen.CarryLookahead(*n)
	case "ripple":
		ad = gen.RippleCarry(*n)
	default:
		return fmt.Errorf("unknown adder kind %q", *kind)
	}
	if *a >= 1<<uint(*n) || *b >= 1<<uint(*n) {
		return fmt.Errorf("operands must fit in %d bits", *n)
	}
	if ad.Circuit.NumQubits() > 26 {
		return fmt.Errorf("%d qubits exceeds the simulation budget; use a smaller -n", ad.Circuit.NumQubits())
	}
	var input uint64
	for i := 0; i < ad.N; i++ {
		if *a>>uint(i)&1 == 1 {
			input |= 1 << uint(ad.A[i])
		}
		if *b>>uint(i)&1 == 1 {
			input |= 1 << uint(ad.B[i])
		}
	}
	st, err := circuit.Simulate(ad.Circuit, input, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	out, p := st.DominantBasisState()
	var sum uint64
	for i, q := range ad.Sum {
		if out>>uint(q)&1 == 1 {
			sum |= 1 << uint(i)
		}
	}
	fmt.Printf("%d + %d = %d (probability %.6f, %s, %d qubits)\n",
		*a, *b, sum, p, ad.Name, ad.Circuit.NumQubits())
	return nil
}
